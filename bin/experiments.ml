(* Regenerates every figure-level experiment (E1..E10 of DESIGN.md).

   The paper has no performance tables; its "evaluation" is the invariant
   catalogue holding over every reachable state of the composed model, and
   the necessity of each mechanism.  Each experiment below prints a block
   whose results are recorded in EXPERIMENTS.md.

   Usage: experiments.exe [quick|full] [--obs=SPEC] [E<n> ...]
   - quick (default): bounds sized for a couple of minutes total
   - full: the larger grid used for the numbers in EXPERIMENTS.md
   - --obs=off|pretty|json:FILE (or RELAXING_OBS): observability sink for
     checker heartbeats, per-invariant cost, and per-experiment records *)

let quick = ref true
let obs = ref Obs.Reporter.null

let section n title =
  Fmt.pr "@.=== %s — %s ===@." n title;
  Obs.Reporter.emit !obs "experiment"
    [ ("name", Obs.Json.String n); ("title", Obs.Json.String title) ]

let result_line label (o : _ Check.Explore.outcome) =
  Fmt.pr "  %-44s %a@." label Check.Explore.pp_outcome o

let check_expectation ~expect_violation label (o : _ Check.Explore.outcome) =
  let got = o.Check.Explore.violation <> None in
  if got = expect_violation then Fmt.pr "  %-44s as expected@." ("-> " ^ label)
  else Fmt.pr "  %-44s UNEXPECTED (%s)@." ("-> " ^ label)
      (if got then "violation found" else "no violation found")

(* Scenario exploration runs under the full reduction stack (symmetry +
   POR), like the bin/ checkers: the state counts in EXPERIMENTS.md are
   the reduced ones.  Experiments that install custom invariants not
   closed under the mutator permutation (E3's early-observation probe,
   E4's ghost-bit structure, E8's final-value collector) call
   {!Check.Explore.run} directly and stay unreduced. *)
let explore ?safety_only sc =
  let max_states = if !quick then 3_000_000 else 40_000_000 in
  Core.Scenario.explore ~max_states ~reduce:Reduce.Mode.All ?safety_only ~obs:!obs sc

(* -- E1: Fig. 1, grey protection / the deletion barrier ------------------- *)

let e1 () =
  section "E1" "Fig. 1: grey protection and the deletion barrier";
  let sc = Core.Scenario.chain in
  let o = explore sc in
  result_line ("paper collector on " ^ sc.Core.Scenario.label) o;
  check_expectation ~expect_violation:false "weak tricolor + safety hold" o;
  let v = Option.get (Core.Variants.by_name "no-deletion-barrier") in
  let sc' = Core.Scenario.witness_for v in
  let o' = explore ~safety_only:true sc' in
  result_line ("ablation " ^ sc'.Core.Scenario.label) o';
  check_expectation ~expect_violation:true "hiding scenario reachable without the barrier" o';
  match o'.Check.Explore.violation with
  | Some tr ->
    Fmt.pr "  counterexample schedule (%d atomic actions), last 12:@." (Check.Trace.length tr);
    let steps = tr.Check.Trace.steps in
    let tail =
      let n = List.length steps in
      List.filteri (fun i _ -> i >= n - 12) steps
    in
    let names = Array.init 3 (Cimp.System.name tr.Check.Trace.initial) in
    List.iter
      (fun (s : _ Check.Trace.step) ->
        Fmt.pr "    %a@." (Cimp.System.pp_event names) s.Check.Trace.event)
      tail
  | None -> ()

(* -- E2: Fig. 2, the collector cycle -------------------------------------- *)

let e2 () =
  section "E2" "Fig. 2: collector control loop, per-line invariants";
  List.iter
    (fun sc ->
      let o = explore sc in
      result_line sc.Core.Scenario.label o;
      check_expectation ~expect_violation:false "all line-comment invariants hold" o)
    [ Core.Scenario.baseline; Core.Scenario.two_cycles ];
  (* Deep randomized run: thousands of cycles with the unbounded collector. *)
  let sc =
    Core.Scenario.make ~label:"unbounded-random" ~n_refs:4 ~n_fields:2 ~max_cycles:0
      ~max_mut_ops:0 ~buf_bound:2 ~shape:"chain3" ~mut_mfence:true ()
  in
  let steps = if !quick then 30_000 else 300_000 in
  let w = Core.Scenario.random_walk ~steps ~obs:!obs sc in
  Fmt.pr "  %-44s %a@." "random deep run (4 refs, 2 fields, unbounded)" Check.Random_walk.pp_outcome w

(* -- E3: Fig. 3, phase/handshake protocol ---------------------------------- *)

let e3 () =
  section "E3" "Fig. 3: control-state transitions and handshake phases";
  let sc = Core.Scenario.two_mutators in
  let o = explore sc in
  result_line sc.Core.Scenario.label o;
  check_expectation ~expect_violation:false "sys_phase_inv + fA/fM relation hold" o;
  (* Stale observation is possible: a mutator can read the *new* phase
     before its handshake (TSO lets control state leak early).  We confirm
     by asking the checker to prove it impossible and expecting a
     "violation" (i.e. the behaviour is reachable). *)
  let sc = Core.Scenario.baseline in
  let model = Core.Scenario.model sc in
  let cfg = sc.Core.Scenario.cfg in
  let never_early sys =
    let sd = Core.Model.sys_data sys cfg in
    not
      (sd.Core.State.s_hs_type = Core.Types.Hs_nop2
      && List.nth sd.Core.State.s_hs_pending 0
      && (Core.Model.mut_data sys cfg 0).Core.State.m_mark.Core.State.mk_fM
         = sd.Core.State.s_mem.Core.State.fM)
  in
  let o =
    Check.Explore.run ~max_states:(if !quick then 2_000_000 else 10_000_000)
      ~invariants:[ ("mutator-never-sees-new-fM-early", never_early) ]
      model.Core.Model.system
  in
  result_line "reachability: mutator reads flipped fM pre-handshake" o;
  check_expectation ~expect_violation:true "early observation reachable (Fig. 3's TSO arrows)" o

(* -- E4: Fig. 4, handshake anatomy ----------------------------------------- *)

let e4 () =
  section "E4" "Fig. 4: handshake anatomy (bits, ghost counters, fences)";
  let sc = Core.Scenario.two_mutators in
  let cfg = sc.Core.Scenario.cfg in
  let model = Core.Scenario.model sc in
  (* Structural handshake invariants: a pending bit implies an active round;
     a mutator that completed the round is recorded with the round's type. *)
  let bits_inv sys =
    let sd = Core.Model.sys_data sys cfg in
    List.for_all2
      (fun pending done_ -> not (pending && done_))
      sd.Core.State.s_hs_pending sd.Core.State.s_hs_done
  in
  let o =
    Check.Explore.run ~max_states:(if !quick then 3_000_000 else 40_000_000)
      ~invariants:
        (("hs-pending-xor-done", bits_inv) :: Core.Scenario.invariants sc)
      model.Core.Model.system
  in
  result_line "handshake ghost structure (2 mutators)" o;
  check_expectation ~expect_violation:false "bits and ghost counters consistent" o

(* -- E5: Fig. 5, the mark operation and the CAS race ----------------------- *)

let e5 () =
  section "E5" "Fig. 5: racy marking, CAS exclusivity, valid_W_inv";
  let sc = Core.Scenario.two_mutators in
  let o = explore sc in
  result_line "2 mutators race their barriers and root marking" o;
  check_expectation ~expect_violation:false "valid_W_inv + disjoint work-lists hold" o;
  let v = Option.get (Core.Variants.by_name "no-cas") in
  let sc' = Core.Scenario.witness_for v in
  let o' = explore sc' in
  result_line ("ablation " ^ sc'.Core.Scenario.label) o';
  (match o'.Check.Explore.violation with
  | Some tr when List.mem tr.Check.Trace.broken [ "worklists_disjoint"; "valid_W_inv" ] ->
    Fmt.pr "  -> grey exclusivity broken (%s)             as expected@." tr.Check.Trace.broken
  | Some tr -> Fmt.pr "  -> unexpected first violation: %s@." tr.Check.Trace.broken
  | None -> Fmt.pr "  -> UNEXPECTED: no violation@.");
  let o'' = explore ~safety_only:true sc' in
  result_line "ablation, safety only" o'';
  check_expectation ~expect_violation:false
    "marking stays idempotent: safety survives the lost CAS" o''

(* -- E6: Fig. 6, mutator operations and barrier phases ---------------------- *)

let e6 () =
  section "E6" "Fig. 6: mutator ops, marked_insertions/deletions per phase";
  let sc = Core.Scenario.fig1 in
  let o = explore sc in
  result_line sc.Core.Scenario.label o;
  check_expectation ~expect_violation:false "barrier phase invariants hold" o;
  let v = Option.get (Core.Variants.by_name "no-insertion-barrier") in
  let sc' = Core.Scenario.witness_for v in
  let o' = explore ~safety_only:true sc' in
  result_line ("ablation " ^ sc'.Core.Scenario.label) o';
  check_expectation ~expect_violation:true "unmarked insertion escapes the snapshot" o';
  let v = Option.get (Core.Variants.by_name "alloc-white") in
  let sc'' = Core.Scenario.witness_for v in
  let o'' = explore ~safety_only:true sc'' in
  result_line ("ablation " ^ sc''.Core.Scenario.label) o'';
  check_expectation ~expect_violation:true "white allocation during marking is swept" o''

(* -- E7: Fig. 7, CIMP process semantics ------------------------------------ *)

let e7 () =
  section "E7" "Fig. 7: CIMP semantics via the concrete-language programs";
  List.iter
    (fun (name, src, note) ->
      let sys = Cimp_lang.Compile.of_source src in
      let o =
        Check.Explore.run ~max_states:200_000
          ~invariants:[ ("assertions", Cimp_lang.Compile.assertions_hold) ]
          sys
      in
      Fmt.pr "  %-18s %a@.     (%s)@." name Check.Explore.pp_outcome o note)
    Cimp_lang.Examples.all;
  Fmt.pr "  -> assert-fail must violate; the rest must hold@."

(* -- E8: Fig. 8, rendezvous ------------------------------------------------- *)

let e8 () =
  section "E8" "Fig. 8: system semantics, rendezvous outcome counts";
  (* The lost-update race: enumerate final cell values. *)
  let _, src, _ = Cimp_lang.Examples.counter_race in
  let sys = Cimp_lang.Compile.of_source src in
  let finals = ref [] in
  let o =
    Check.Explore.run ~max_states:100_000
      ~invariants:
        [
          ( "collect-finals",
            fun s ->
              (* piggyback: record quiescent cell values *)
              (if Cimp.System.steps s = [] then
                 match List.assoc_opt "v" (Cimp.System.proc s 2).Cimp.Com.data with
                 | Some (Cimp_lang.Ast.V_int v) when not (List.mem v !finals) ->
                   finals := v :: !finals
                 | _ -> ());
              true );
        ]
      sys
  in
  result_line "counter-race exploration" o;
  Fmt.pr "  final cell values observed: {%s} (expect {1, 2}: the lost update is real)@."
    (String.concat ", " (List.map string_of_int (List.sort compare !finals)))

(* -- E9: Fig. 9, x86-TSO --------------------------------------------------- *)

let e9 () =
  section "E9" "Fig. 9: x86-TSO litmus catalogue vs the SC baseline";
  let verdicts = Tso.Catalog.run_all () in
  List.iter (fun v -> Fmt.pr "  %a@." Tso.Litmus.pp_verdict v) verdicts;
  let ok = List.for_all (fun v -> v.Tso.Litmus.ok) verdicts in
  Fmt.pr "  -> %d/%d match the published x86-TSO classification%s@."
    (List.length (List.filter (fun v -> v.Tso.Litmus.ok) verdicts))
    (List.length verdicts)
    (if ok then "" else "  MISMATCH");
  (* TSO reaches strictly more states than SC on racy programs. *)
  let sb = Tso.Catalog.sb in
  let _, tso_states = Tso.Litmus.outcomes ~mode:Tso.Machine.TSO sb in
  let _, sc_states = Tso.Litmus.outcomes ~mode:Tso.Machine.SC sb in
  Fmt.pr "  state spaces on SB: TSO=%d > SC=%d@." tso_states sc_states

(* -- E10: the headline theorem ---------------------------------------------- *)

let e10 () =
  section "E10" "Headline: GC || muts || Sys |= [](reachable -> valid_ref)";
  Fmt.pr "  exhaustive grid (paper collector, full invariant catalogue):@.";
  List.iter
    (fun sc ->
      let o = explore sc in
      result_line (sc.Core.Scenario.label ^ " — " ^ sc.Core.Scenario.note) o;
      check_expectation ~expect_violation:false "holds" o)
    Core.Scenario.exhaustive_grid;
  Fmt.pr "  ablation grid (safety invariants only; each must fail):@.";
  List.iter
    (fun v ->
      let sc = Core.Scenario.witness_for v in
      let o = explore ~safety_only:true sc in
      result_line sc.Core.Scenario.label o;
      check_expectation ~expect_violation:true v.Core.Variants.name o)
    Core.Variants.ablations;
  Fmt.pr "  Section 4 observations (conjectured safe; checked, not proved):@.";
  List.iter
    (fun v ->
      let sc = Core.Scenario.with_variant v Core.Scenario.baseline in
      let o = explore sc in
      result_line sc.Core.Scenario.label o;
      check_expectation ~expect_violation:false v.Core.Variants.name o)
    Core.Variants.observations;
  let v = Option.get (Core.Variants.by_name "sc-memory") in
  let sc = Core.Scenario.with_variant v Core.Scenario.baseline in
  let o = explore sc in
  result_line sc.Core.Scenario.label o;
  check_expectation ~expect_violation:false "SC baseline also safe (TSO adds behaviours, not bugs)" o

(* -- E11 (extension): promptness — "garbage is collected within two cycles
   of the collector's outer loop" (Section 4, Connection With Reality: the
   paper states this but owes it a proof; we check it). ------------------- *)

let e11 () =
  section "E11" "extension: garbage collected within two cycles (Section 4's unproved claim)";
  (* Part 1, exhaustive: initial garbage with no mutator interference is
     gone once the bounded collector halts. *)
  let sc =
    Core.Scenario.make ~label:"initial-garbage" ~shape:"chain3" ~max_cycles:1
      ~tweak:(fun c ->
        { c with Core.Config.mut_load = false; mut_store = false; mut_alloc = false; mut_discard = false })
      ()
  in
  let cfg = sc.Core.Scenario.cfg in
  (* detach object 2 from the chain: it is garbage from the start *)
  let shape = { sc.Core.Scenario.shape with Gcheap.Shapes.heap = Gcheap.Heap.set_field sc.Core.Scenario.shape.Gcheap.Shapes.heap 1 0 None } in
  let model = Core.Model.make cfg shape in
  let collected sys =
    (* once the bounded collector halts, the garbage must be gone *)
    if not (Cimp.Com.terminated (Cimp.System.proc sys Core.Config.pid_gc)) then true
    else not (Gcheap.Heap.valid_ref (Core.Model.sys_data sys cfg).Core.State.s_mem.Core.State.heap 2)
  in
  let o =
    Check.Explore.run ~max_states:2_000_000
      ~invariants:(("garbage-collected-by-halt", collected) :: Core.Scenario.invariants sc)
      model.Core.Model.system
  in
  result_line "pre-existing garbage, 1 cycle, exhaustive" o;
  check_expectation ~expect_violation:false "one cycle reclaims it on every schedule" o;
  (* Part 2, randomized with history: on the unbounded model, track when
     each object becomes (and stays) unreachable and assert it is freed
     within two full cycles. *)
  let sc =
    Core.Scenario.make ~label:"promptness-walk" ~n_refs:4 ~n_fields:1 ~shape:"chain3"
      ~max_cycles:0 ~max_mut_ops:0 ~buf_bound:2 ()
  in
  let cfg = sc.Core.Scenario.cfg in
  let model = Core.Scenario.model sc in
  let rng = Random.State.make [| 2026 |] in
  let steps = if !quick then 40_000 else 400_000 in
  let sys = ref (Cimp.System.normalize model.Core.Model.system) in
  let cycle = ref 0 in
  let last_phase = ref Core.Types.Ph_idle in
  (* unreachable_since.(r) = cycle index when r last became unreachable *)
  let unreachable_since = Array.make cfg.Core.Config.n_refs (-1) in
  let worst = ref 0 in
  let violations = ref 0 in
  for _ = 1 to steps do
    (match Cimp.System.steps !sys with
    | [] -> ()
    | succs -> sys := Cimp.System.normalize (snd (List.nth succs (Random.State.int rng (List.length succs)))));
    let sd = Core.Model.sys_data !sys cfg in
    let phase = sd.Core.State.s_mem.Core.State.phase in
    if !last_phase <> Core.Types.Ph_idle && phase = Core.Types.Ph_idle then incr cycle;
    last_phase := phase;
    let reach = Core.Invariants.reachable_from_roots cfg !sys in
    let heap = sd.Core.State.s_mem.Core.State.heap in
    for r = 0 to cfg.Core.Config.n_refs - 1 do
      if Gcheap.Heap.valid_ref heap r then begin
        if List.mem r reach then unreachable_since.(r) <- -1
        else if unreachable_since.(r) < 0 then unreachable_since.(r) <- !cycle
        else begin
          let age = !cycle - unreachable_since.(r) in
          if age > !worst then worst := age;
          if age > 2 then incr violations
        end
      end
      else unreachable_since.(r) <- -1
    done
  done;
  Fmt.pr "  random walk: %d steps, %d collection cycles, worst garbage age = %d cycle(s)@." steps
    !cycle !worst;
  if !violations = 0 && !worst <= 2 then
    Fmt.pr "  -> %-41s as expected@." "all garbage reclaimed within two cycles"
  else Fmt.pr "  -> UNEXPECTED: %d promptness violations (worst age %d)@." !violations !worst

(* -- E12 (extension): mutation-testing the checker — the campaign of
   lib/mutate as a figure-level experiment: every armed mutant must be
   killed, with the killing invariant named. ------------------------------ *)

let e12 () =
  section "E12" "extension: mutation campaign — checker adequacy on the armed catalogue";
  let mutants =
    let all = Mutate.Campaign.default_mutants () in
    if !quick then
      List.filter (fun (m : Mutate.Campaign.mutant) -> not m.Mutate.Campaign.expected_equivalent) all
    else all
  in
  let budget = if !quick then 400_000 else 1_000_000 in
  let o = Mutate.Campaign.run ~obs:!obs ~budget ~jobs:1 ~mutants () in
  let s = Mutate.Kill_matrix.stats o in
  Fmt.pr "  %d mutants (%s), budget %d: %d killed, %d survived, %d errored@."
    s.Mutate.Kill_matrix.total
    (if !quick then "armed only" else "full catalogue incl. expected-equivalent")
    budget s.Mutate.Kill_matrix.killed s.Mutate.Kill_matrix.survived
    s.Mutate.Kill_matrix.errored;
  List.iter
    (fun (r : Mutate.Kill_matrix.family_row) ->
      Fmt.pr "    %-16s %d armed / %d killed@." r.Mutate.Kill_matrix.family
        r.Mutate.Kill_matrix.armed r.Mutate.Kill_matrix.armed_killed)
    s.Mutate.Kill_matrix.families;
  if s.Mutate.Kill_matrix.armed_killed = s.Mutate.Kill_matrix.armed
     && s.Mutate.Kill_matrix.unexpected_kills = []
  then Fmt.pr "  -> %-41s as expected@." "every armed mutant killed, no equivalent broken"
  else
    Fmt.pr "  -> UNEXPECTED: %d/%d armed killed, unexpected kills: %s@."
      s.Mutate.Kill_matrix.armed_killed s.Mutate.Kill_matrix.armed
      (String.concat ", " s.Mutate.Kill_matrix.unexpected_kills)

(* -- E13 (extension): partial store order — the first weakening toward the
   ARM/POWER models the paper's Section 4 contemplates. ------------------- *)

let e13 () =
  section "E13" "extension: the collector under PSO (per-location-FIFO-only buffers)";
  Fmt.pr "  PSO machine probes (litmus):@.";
  List.iter
    (fun (name, expect, got) ->
      Fmt.pr "    %-10s expected %-9s observed %-9s %s@." name
        (if expect then "allowed" else "forbidden")
        (if got then "allowed" else "forbidden")
        (if expect = got then "OK" else "MISMATCH"))
    (Tso.Catalog.run_pso ());
  let v = Option.get (Core.Variants.by_name "pso-memory") in
  let probe label sc =
    let tso = explore sc in
    let pso = explore (Core.Scenario.with_variant v sc) in
    Fmt.pr "  %-22s TSO: %a@." label Check.Explore.pp_outcome tso;
    Fmt.pr "  %-22s PSO: %a@." "" Check.Explore.pp_outcome pso;
    check_expectation ~expect_violation:false (label ^ " stays safe under PSO") pso;
    if pso.Check.Explore.states > tso.Check.Explore.states then
      Fmt.pr "  -> %-41s as expected@." "PSO adds reorderings (more states)"
  in
  probe "deep-buffers"
    (Core.Scenario.make ~label:"pso-deep" ~n_refs:2 ~shape:"single" ~buf_bound:3 ~max_mut_ops:2 ());
  probe "chain, buf=3"
    (Core.Scenario.make ~label:"pso-chain" ~shape:"chain3" ~buf_bound:3 ~max_mut_ops:2
       ~tweak:(fun c -> { c with Core.Config.mut_alloc = false; mut_discard = false })
       ())

let all =
  [ ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6); ("E7", e7);
    ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11); ("E12", e12); ("E13", e13) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let spec, args =
    List.partition_map
      (fun a ->
        match String.length a > 6 && String.sub a 0 6 = "--obs=" with
        | true -> Left (String.sub a 6 (String.length a - 6))
        | false -> Right a)
      args
  in
  (try obs := Obs.Reporter.resolve ?spec:(match List.rev spec with s :: _ -> Some s | [] -> None) ()
   with Invalid_argument msg ->
     Fmt.epr "experiments: %s@." msg;
     exit 124);
  let args =
    match args with
    | "full" :: rest ->
      quick := false;
      rest
    | "quick" :: rest -> rest
    | rest -> rest
  in
  let selected = if args = [] then all else List.filter (fun (n, _) -> List.mem n args) all in
  Fmt.pr "Relaxing Safely — figure-by-figure experiments (%s mode)@."
    (if !quick then "quick" else "full");
  List.iter (fun (_, f) -> f ()) selected;
  Obs.Reporter.close !obs;
  Fmt.pr "@.done.@."
