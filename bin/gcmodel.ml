(* gcmodel — command-line driver for the collector model.

   Subcommands:
     explore   exhaustive BFS over a configured instance
     walk      randomized deep run
     variants  list the named variants and their expectations
     shapes    list the initial heap shapes
     dump      print the initial state of a configured instance
*)

open Cmdliner

(* raw model flags, kept separate from the resolved Config.t so explore
   can echo them verbatim into checkpoint manifests and resume can
   rebuild the identical instance *)
type raw_cfg = {
  muts : int;
  refs : int;
  fields : int;
  buf : int;
  cycles : int;
  ops : int;
  variant : string;
  no_ops : string list;
  mutant : string option;
}

let raw_cfg_term =
  let open Term in
  let muts = Arg.(value & opt int 1 & info [ "muts" ] ~doc:"Number of mutators.") in
  let refs = Arg.(value & opt int 3 & info [ "refs" ] ~doc:"Heap size (references).") in
  let fields = Arg.(value & opt int 1 & info [ "fields" ] ~doc:"Fields per object.") in
  let buf = Arg.(value & opt int 1 & info [ "buf" ] ~doc:"TSO store-buffer capacity.") in
  let cycles =
    Arg.(value & opt int 1 & info [ "cycles" ] ~doc:"Collector cycles (0 = unbounded).")
  in
  let ops =
    Arg.(value & opt int 2 & info [ "ops" ] ~doc:"Heap-operation budget per mutator (0 = unbounded).")
  in
  let variant =
    Arg.(value & opt string "paper" & info [ "variant" ] ~doc:"Collector variant (see $(b,variants)).")
  in
  let no_ops =
    Arg.(value & opt_all string [] & info [ "disable" ] ~doc:"Disable a mutator op: load, store, alloc, discard, mfence.")
  in
  let mutant =
    Arg.(
      value
      & opt (some string) None
      & info [ "mutant" ] ~docv:"NAME"
          ~doc:
            "Arm one campaign mutant (an operator mutant like \
             $(b,drop-fence:gc:hs2:store-fence), or $(b,variant:NAME) for an ablation) on \
             top of the configured instance.  Survivor triage stubs reference this flag.")
  in
  let mk muts refs fields buf cycles ops variant no_ops mutant =
    { muts; refs; fields; buf; cycles; ops; variant; no_ops; mutant }
  in
  const mk $ muts $ refs $ fields $ buf $ cycles $ ops $ variant $ no_ops $ mutant

let resolve_cfg { muts; refs; fields; buf; cycles; ops; variant; no_ops; mutant } =
  let build muts refs fields buf cycles ops variant no_ops mutant =
    let v =
      match Core.Variants.by_name variant with
      | Some v -> v
      | None -> Fmt.failwith "unknown variant %s" variant
    in
    let cfg =
      v.Core.Variants.tweak
        {
          Core.Config.default with
          n_muts = muts;
          n_refs = refs;
          n_fields = fields;
          buf_bound = buf;
          max_cycles = cycles;
          max_mut_ops = ops;
        }
    in
    let dis name cfg =
      match name with
      | "load" -> { cfg with Core.Config.mut_load = false }
      | "store" -> { cfg with Core.Config.mut_store = false }
      | "alloc" -> { cfg with Core.Config.mut_alloc = false }
      | "discard" -> { cfg with Core.Config.mut_discard = false }
      | "mfence" -> { cfg with Core.Config.mut_mfence = false }
      | s -> Fmt.failwith "unknown op %s" s
    in
    let cfg = List.fold_left (fun c n -> dis n c) cfg no_ops in
    let cfg =
      match mutant with
      | None -> cfg
      | Some name -> (
        match String.length name >= 8 && String.sub name 0 8 = "variant:" with
        | true -> (
          let vname = String.sub name 8 (String.length name - 8) in
          match Core.Variants.by_name vname with
          | Some v -> v.Core.Variants.tweak cfg
          | None -> Fmt.failwith "unknown variant mutant %s" name)
        | false -> (
          (* resolve against the instance, falling back to a site-rich
             configuration: arming a mutation whose site is absent is a
             harmless no-op, and triage stubs quote mutant names from the
             campaign's enumeration configuration *)
          let fat =
            {
              cfg with
              Core.Config.max_cycles = max 2 cfg.Core.Config.max_cycles;
              max_mut_ops = 3;
              mut_load = true;
              mut_store = true;
              mut_alloc = true;
              mut_discard = true;
            }
          in
          match
            match Mutate.Operators.by_name cfg name with
            | Some m -> Some m
            | None -> Mutate.Operators.by_name fat name
          with
          | Some m -> Mutate.Operators.tweak m cfg
          | None -> Fmt.failwith "unknown mutant %s (see `gcmodel campaign --list`)" name))
    in
    (cfg, v)
  in
  build muts refs fields buf cycles ops variant no_ops mutant

let cfg_term = Term.(const resolve_cfg $ raw_cfg_term)

let shape_term =
  Arg.(value & opt string "single" & info [ "shape" ] ~doc:"Initial heap shape (see $(b,shapes)).")

let obs_term =
  let doc = Fmt.str "Observability sink: %s." Obs.Reporter.spec_doc in
  let env = Cmd.Env.info "RELAXING_OBS" ~doc:"Default observability sink." in
  let spec = Arg.(value & opt (some string) None & info [ "obs" ] ~env ~docv:"SPEC" ~doc) in
  let resolve spec =
    try Ok (Obs.Reporter.resolve ?spec ()) with Invalid_argument msg -> Error msg
  in
  Term.(term_result' (const resolve $ spec))

let trace_out_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON timeline to $(docv) (load it in Perfetto or \
           chrome://tracing): one lane per worker domain, with expand/phase, steal, \
           steal-fail and termination-probe spans (explore) or per-walker spans (walk).")

(* finish the tracer and tell the user where the timeline went *)
let close_trace tracer trace_out =
  match Obs.Tracing.finish tracer ?out:trace_out () with
  | None -> ()
  | Some (events, drops) ->
    Fmt.pr "trace: %d events written to %s%s@." events
      (Option.value trace_out ~default:"?")
      (if drops > 0 then Fmt.str " (%d dropped: ring full)" drops else "")

(* --reduce / RELAXING_REDUCE.  The default differs per subcommand
   (explore: all — the reductions are proven-sound and the point of
   exhaustive closure is reach; walk: none — reduced walks sample a
   different schedule distribution per seed), so the parsed default
   string is a parameter. *)
let reduce_term ~default =
  let doc = Fmt.str "State-space reduction: none, sym, por or all (default %s)." default in
  let env = Cmd.Env.info "RELAXING_REDUCE" ~doc:"Default reduction mode." in
  let spec = Arg.(value & opt string default & info [ "reduce" ] ~env ~docv:"MODE" ~doc) in
  Term.(term_result' (const Reduce.Mode.of_string $ spec))

let safety_only =
  Arg.(value & flag & info [ "safety-only" ] ~doc:"Check only the safety invariants.")

let max_states =
  Arg.(value & opt int 10_000_000 & info [ "max-states" ] ~doc:"State cap for exploration.")

let jobs =
  Arg.(
    value
    & opt int 1
    & info [ "jobs"; "j" ]
        ~doc:
          "Worker domains. 1 (the default) is the sequential checker; higher values run the \
           work-stealing parallel BFS (explore, crosscheck) or the random-walk swarm (walk).")

(* -- tiered store / checkpoint flags (lib/store) ----------------------------- *)

let byte_size_conv =
  let parse s =
    let n = String.length s in
    if n = 0 then Error (`Msg "empty size")
    else
      let mult, digits =
        match s.[n - 1] with
        | 'k' | 'K' -> (1 lsl 10, String.sub s 0 (n - 1))
        | 'm' | 'M' -> (1 lsl 20, String.sub s 0 (n - 1))
        | 'g' | 'G' -> (1 lsl 30, String.sub s 0 (n - 1))
        | _ -> (1, s)
      in
      match int_of_string_opt digits with
      | Some v when v > 0 -> Ok (v * mult)
      | _ -> Error (`Msg (Fmt.str "invalid size %S (expected e.g. 512M, 2G, 65536)" s))
  in
  Arg.conv (parse, fun ppf v -> Fmt.pf ppf "%d" v)

let mem_budget_term =
  Arg.(
    value
    & opt (some byte_size_conv) None
    & info [ "mem-budget" ] ~docv:"BYTES"
        ~doc:
          "Resident-byte budget for the seen-set (suffixes k, M, G).  Shards that cross \
           their slice of the budget freeze into Bloom-fronted sorted segments on disk \
           (see $(b,--spill-dir)); membership stays exact, so verdicts are unchanged.  \
           Absent, the seen-set stays entirely in RAM.")

let spill_dir_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "spill-dir" ] ~docv:"DIR"
        ~doc:"Directory for spilled segment files (default: a fresh temporary directory).")

let checkpoint_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"DIR"
        ~doc:
          "Snapshot the full exploration state into $(docv) periodically (atomic: a \
           half-written snapshot is never visible) and once more on completion.  Continue \
           an interrupted run with $(b,gcmodel resume) $(docv).")

let checkpoint_every_term =
  Arg.(
    value
    & opt int 50_000
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:"States between checkpoints (with $(b,--checkpoint); default 50000).")

(* everything needed to rebuild the instance and flags at resume *)
let run_config_json (raw : raw_cfg) ~shape ~safety_only ~max_states ~jobs ~reduce ~mem_budget
    ~checkpoint_every =
  Obs.Json.Obj
    [
      ("muts", Obs.Json.Int raw.muts);
      ("refs", Obs.Json.Int raw.refs);
      ("fields", Obs.Json.Int raw.fields);
      ("buf", Obs.Json.Int raw.buf);
      ("cycles", Obs.Json.Int raw.cycles);
      ("ops", Obs.Json.Int raw.ops);
      ("variant", Obs.Json.String raw.variant);
      ("disable", Obs.Json.List (List.map (fun s -> Obs.Json.String s) raw.no_ops));
      ( "mutant",
        match raw.mutant with None -> Obs.Json.Null | Some m -> Obs.Json.String m );
      ("shape", Obs.Json.String shape);
      ("safety_only", Obs.Json.Bool safety_only);
      ("max_states", Obs.Json.Int max_states);
      ("jobs", Obs.Json.Int jobs);
      ("reduce", Obs.Json.String (Reduce.Mode.to_string reduce));
      ( "mem_budget",
        match mem_budget with None -> Obs.Json.Null | Some b -> Obs.Json.Int b );
      ("checkpoint_every", Obs.Json.Int checkpoint_every);
    ]

let run_config_parse json =
  let open Obs.Json in
  let int_field name d =
    match Option.bind (member name json) to_int with Some v -> v | None -> d
  in
  let str_field name d =
    match Option.bind (member name json) to_string_opt with Some s -> s | None -> d
  in
  let raw =
    {
      muts = int_field "muts" 1;
      refs = int_field "refs" 3;
      fields = int_field "fields" 1;
      buf = int_field "buf" 1;
      cycles = int_field "cycles" 1;
      ops = int_field "ops" 2;
      variant = str_field "variant" "paper";
      no_ops =
        (match Option.bind (member "disable" json) to_list with
        | Some l -> List.filter_map to_string_opt l
        | None -> []);
      mutant = Option.bind (member "mutant" json) to_string_opt;
    }
  in
  let reduce =
    match Reduce.Mode.of_string (str_field "reduce" "all") with Ok m -> m | Error _ -> Reduce.Mode.All
  in
  let mem_budget = Option.bind (member "mem_budget" json) to_int in
  ( raw,
    str_field "shape" "single",
    (match Option.bind (member "safety_only" json) to_bool with Some b -> b | None -> false),
    int_field "max_states" 10_000_000,
    int_field "jobs" 1,
    reduce,
    mem_budget,
    int_field "checkpoint_every" 50_000 )

let model_of (cfg, _v) shape =
  match Gcheap.Shapes.by_name ~n_refs:cfg.Core.Config.n_refs ~n_fields:cfg.Core.Config.n_fields shape with
  | None -> Fmt.failwith "unknown shape %s" shape
  | Some s -> Core.Model.make cfg s

let invariants_of cfg safety_only =
  let invs =
    if safety_only then Core.Invariants.safety_invariants cfg else Core.Invariants.all cfg
  in
  List.map (fun i -> (i.Core.Invariants.name, i.Core.Invariants.check)) invs

let report cfg obs (violation : _ Check.Trace.t option) =
  match violation with
  | None -> ()
  | Some tr ->
    Fmt.pr "%a@." (Core.Dump.pp_trace cfg) tr;
    (* the counterexample as a replayable artifact *)
    Obs.Reporter.emit obs "violation" [ ("trace", Check.Trace.to_json tr) ]

(* -- counterexample forensics (lib/explain) ---------------------------------- *)

let explain_last =
  Arg.(
    value
    & opt int 8
    & info [ "last" ]
        ~doc:"How many steps touching the witness refs the explanation shows.")

let explain_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "explain" ] ~docv:"FILE"
        ~doc:"On a violation, write a counterexample forensics HTML report to $(docv).")

let write_explanation ?(last = 8) ~html ~obs cfg (tr : Explain.Report.trace) =
  let rep = Explain.Report.analyze cfg tr in
  Obs.Reporter.emit obs "explanation" [ ("report", Explain.Report.to_json rep) ];
  (match html with
  | None -> ()
  | Some path ->
    Explain.Report.write_html ~last path rep;
    Fmt.pr "explain: HTML report written to %s@." path);
  rep

(* the --explain=FILE rider on explore / walk / crosscheck *)
let explain_violation ?last ~html ~obs cfg violation =
  match (html, violation) with
  | None, _ -> ()
  | Some _, None -> Fmt.pr "explain: no violation — no report written@."
  | Some _, Some tr -> ignore (write_explanation ?last ~html ~obs cfg tr)

let certificate_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "certificate" ] ~docv:"DIR"
        ~doc:
          "On a closed, violation-free run, write a proof-witness certificate into $(docv): \
           the reach table (canonical fingerprint, BFS depth, invariant verdict per state) \
           in the delta-compressed segment format, under a header binding the configuration \
           hash, reduction mode and closure obligations.  Validate it later — without \
           re-running the explorer — with $(b,gcmodel recheck) $(docv).  Refused (exit 1) \
           on truncated or violating runs.  See docs/CERTIFICATES.md.")

let explore_cmd =
  let run raw shape safety_only max_states jobs reduce mem_budget spill_dir checkpoint
      checkpoint_every certificate explain trace_out obs =
    let cv = resolve_cfg raw in
    let cfg, v = cv in
    let model = model_of cv shape in
    Fmt.pr "exploring variant=%s shape=%s muts=%d refs=%d cycles=%d ops=%d jobs=%d reduce=%a%a@."
      v.Core.Variants.name shape cfg.Core.Config.n_muts cfg.Core.Config.n_refs
      cfg.Core.Config.max_cycles cfg.Core.Config.max_mut_ops jobs Reduce.Mode.pp reduce
      Fmt.(option (fmt " mem-budget=%d"))
      mem_budget;
    let reducer = Core.Reduction.reducer cfg reduce in
    let tracer = Obs.Tracing.resolve ?out:trace_out ~domains:(max 1 jobs) () in
    let run_config =
      run_config_json raw ~shape ~safety_only ~max_states ~jobs ~reduce ~mem_budget
        ~checkpoint_every
    in
    (* at jobs = 1 the certificate table is dumped straight from the
       seen-set (the one-worker pool is a FIFO BFS, so its depth stamps
       are BFS distances); the hook also forces the pool path, which is
       what threads a store through the run at all *)
    let cert_dump = ref None in
    let on_store =
      match certificate with
      | Some _ when jobs <= 1 -> Some (fun store -> cert_dump := Some (Certify.Writer.of_store store))
      | Some _ | None -> None
    in
    let invariants = invariants_of cfg safety_only in
    let o =
      Check.Par_explore.run ~jobs ~max_states ~obs ~tracer ?reducer ?mem_budget ?spill_dir
        ?checkpoint:(Option.map (fun dir -> (dir, checkpoint_every)) checkpoint)
        ?on_store ~run_config ~invariants model.Core.Model.system
    in
    Fmt.pr "%a@." Check.Explore.pp_outcome o;
    report cfg obs o.Check.Explore.violation;
    explain_violation ~html:explain ~obs cfg o.Check.Explore.violation;
    let cert_failed =
      match certificate with
      | None -> None
      | Some dir ->
        let refuse msg = Some (Fmt.str "certificate refused: %s" msg) in
        if o.Check.Explore.truncated then refuse "run truncated (state cap reached)"
        else if o.Check.Explore.violation <> None then refuse "run found a violation"
        else begin
          let table =
            if jobs <= 1 then
              match !cert_dump with
              | Some r -> r
              | None -> Error "internal error: seen-set dump not captured"
            else begin
              (* parallel schedules can drift at the symmetry reduction's
                 local-automorphism boundary: re-derive the canonical
                 quotient table deterministically so the certificate is
                 byte-identical to a jobs=1 run's *)
              Fmt.pr "certificate: deterministic sweep (jobs=%d order is schedule-dependent)@."
                jobs;
              Certify.Recheck.sweep ~reducer ~invariants model.Core.Model.system
            end
          in
          match table with
          | Error msg -> refuse msg
          | Ok (entries, max_depth) -> (
            match
              Certify.Writer.write ~dir ~config_hash:(Core.Config.hash cfg)
                ~reduce:(Reduce.Mode.to_string reduce) ~invariant_names:(List.map fst invariants)
                ~run_config ~max_depth entries
            with
            | Error msg -> refuse msg
            | Ok h ->
              Fmt.pr "certificate: %d states (max depth %d, config %s) written to %s@."
                h.Certify.Certificate.states h.Certify.Certificate.max_depth
                h.Certify.Certificate.config_hash dir;
              None)
        end
    in
    close_trace tracer trace_out;
    Obs.Reporter.close obs;
    match cert_failed with
    | Some msg ->
      Fmt.epr "%s@." msg;
      exit 1
    | None -> ()
  in
  Cmd.v (Cmd.info "explore" ~doc:"Exhaustive BFS with invariant checking.")
    Term.(
      const run $ raw_cfg_term $ shape_term $ safety_only $ max_states $ jobs
      $ reduce_term ~default:"all" $ mem_budget_term $ spill_dir_term $ checkpoint_term
      $ checkpoint_every_term $ certificate_term $ explain_file $ trace_out_term $ obs_term)

let resume_cmd =
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"Checkpoint directory written by $(b,explore --checkpoint).")
  in
  let jobs_override =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ]
          ~doc:"Worker domains (default: the interrupted run's setting from the manifest).")
  in
  let run dir jobs_override explain trace_out obs =
    let fail msg =
      Fmt.epr "gcmodel resume: %s@." msg;
      exit 1
    in
    let config =
      match Store.Checkpoint.manifest dir with
      | Error msg -> fail msg
      | Ok (_seq, config) -> config
    in
    let raw, shape, safety_only, max_states, cfg_jobs, reduce, mem_budget, checkpoint_every =
      run_config_parse config
    in
    let jobs = Option.value jobs_override ~default:cfg_jobs in
    let cv = resolve_cfg raw in
    let cfg, v = cv in
    let model = model_of cv shape in
    let snap =
      match Store.Checkpoint.load ?mem_budget dir with
      | Error msg -> fail msg
      | Ok snap -> snap
    in
    Fmt.pr
      "resuming variant=%s shape=%s muts=%d refs=%d jobs=%d reduce=%a: snapshot %d (%d states, \
       frontier %d)@."
      v.Core.Variants.name shape cfg.Core.Config.n_muts cfg.Core.Config.n_refs jobs
      Reduce.Mode.pp reduce snap.Store.Checkpoint.seq snap.Store.Checkpoint.states
      (Array.fold_left (fun acc l -> acc + List.length l) 0 snap.Store.Checkpoint.frontier);
    let reducer = Core.Reduction.reducer cfg reduce in
    let tracer = Obs.Tracing.resolve ?out:trace_out ~domains:(max 1 jobs) () in
    let o =
      Check.Par_explore.run ~jobs ~max_states ~obs ~tracer ?reducer ?mem_budget
        ~checkpoint:(dir, checkpoint_every) ~resume:snap ~run_config:config
        ~invariants:(invariants_of cfg safety_only) model.Core.Model.system
    in
    Fmt.pr "%a@." Check.Explore.pp_outcome o;
    report cfg obs o.Check.Explore.violation;
    explain_violation ~html:explain ~obs cfg o.Check.Explore.violation;
    close_trace tracer trace_out;
    Obs.Reporter.close obs
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:
         "Continue an interrupted $(b,explore --checkpoint) run from its latest snapshot.  \
          The model, flags and reduction mode are rebuilt from the checkpoint manifest; the \
          resumed run reaches the same verdict, violated invariant and counterexample length \
          as an uninterrupted one, and keeps checkpointing into the same directory.")
    Term.(const run $ dir $ jobs_override $ explain_file $ trace_out_term $ obs_term)

let recheck_cmd =
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"Certificate directory written by $(b,explore --certificate).")
  in
  let run dir obs =
    let fail msg =
      Fmt.epr "gcmodel recheck: FAILED — %s@." msg;
      exit 1
    in
    match Certify.Certificate.read_header dir with
    | Error msg -> fail msg
    | Ok h ->
      (* rebuild the instance from the embedded run configuration, as
         resume does from checkpoint manifests; the reduction mode comes
         from the header field the certificate binds *)
      let raw, shape, safety_only, _, _, _, _, _ = run_config_parse h.Certify.Certificate.run_config in
      let reduce =
        match Reduce.Mode.of_string h.Certify.Certificate.reduce with
        | Ok m -> m
        | Error e -> fail (Fmt.str "header field \"reduce\": %s" e)
      in
      let cv = resolve_cfg raw in
      let cfg, v = cv in
      let model = model_of cv shape in
      let reducer = Core.Reduction.reducer cfg reduce in
      let invariants = invariants_of cfg safety_only in
      Fmt.pr "rechecking %s: variant=%s shape=%s muts=%d refs=%d reduce=%a (%d states claimed)@."
        dir v.Core.Variants.name shape cfg.Core.Config.n_muts cfg.Core.Config.n_refs
        Reduce.Mode.pp reduce h.Certify.Certificate.states;
      (match
         Certify.Recheck.validate ~reducer ~invariants ~config_hash:(Core.Config.hash cfg)
           ~dir model.Core.Model.system
       with
      | Error msg -> fail msg
      | Ok (_, st) ->
        let rate =
          if st.Certify.Recheck.elapsed_s > 0. then
            float_of_int st.Certify.Recheck.states /. st.Certify.Recheck.elapsed_s
          else 0.
        in
        Fmt.pr
          "recheck: OK — %d states, %d transitions, max depth %d validated in %.3fs (%.0f \
           states/s, %.1f table bytes/state)@."
          st.Certify.Recheck.states st.Certify.Recheck.transitions
          st.Certify.Recheck.max_depth st.Certify.Recheck.elapsed_s rate
          (float_of_int st.Certify.Recheck.table_bytes /. float_of_int (max 1 st.Certify.Recheck.states));
        Obs.Reporter.emit obs "recheck"
          [
            ("dir", Obs.Json.String dir);
            ("states", Obs.Json.Int st.Certify.Recheck.states);
            ("transitions", Obs.Json.Int st.Certify.Recheck.transitions);
            ("max_depth", Obs.Json.Int st.Certify.Recheck.max_depth);
            ("elapsed_s", Obs.Json.Float st.Certify.Recheck.elapsed_s);
            ("table_bytes", Obs.Json.Int st.Certify.Recheck.table_bytes);
          ]);
      Obs.Reporter.close obs
  in
  Cmd.v
    (Cmd.info "recheck"
       ~doc:
         "Validate a certificate written by $(b,explore --certificate) without running the \
          explorer: stream the table, re-evaluate the full invariant catalogue on every \
          state, re-derive every depth stamp, and discharge transition closure by \
          regenerating each state's successors and probing table membership.  Any miss, \
          tamper or configuration mismatch fails closed (exit 1) naming the offending \
          fingerprint or header field.")
    Term.(const run $ dir $ obs_term)

let certdiff_cmd =
  let dir_a =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"A" ~doc:"First certificate.")
  in
  let dir_b =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"B" ~doc:"Second certificate.")
  in
  let run a b =
    match Certify.Diff.run a b with
    | Error msg ->
      Fmt.epr "gcmodel certdiff: %s@." msg;
      exit 2
    | Ok d ->
      Fmt.pr "%a@." Certify.Diff.pp d;
      if not (Certify.Diff.identical d) then exit 1
  in
  Cmd.v
    (Cmd.info "certdiff"
       ~doc:
         "Compare two certificates structurally: header fields, then a linear merge of the \
          sorted tables (states only in one, depth or verdict changes).  Exits 0 iff \
          identical — the CI no-change gate between consecutive runs.")
    Term.(const run $ dir_a $ dir_b)

let walk_cmd =
  let steps = Arg.(value & opt int 100_000 & info [ "steps" ] ~doc:"Scheduled steps.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let run cv shape safety_only steps seed jobs reduce explain trace_out obs =
    let cfg, v = cv in
    let model = model_of cv shape in
    Fmt.pr "random walk variant=%s shape=%s steps=%d seed=%d jobs=%d reduce=%a@."
      v.Core.Variants.name shape steps seed jobs Reduce.Mode.pp reduce;
    let reducer = Core.Reduction.reducer cfg reduce in
    let tracer = Obs.Tracing.resolve ?out:trace_out ~domains:(max 1 jobs) () in
    let o =
      Check.Random_walk.swarm ~jobs ~seed ~steps ~obs ~tracer ?reducer
        ~invariants:(invariants_of cfg safety_only) model.Core.Model.system
    in
    Fmt.pr "%a@." Check.Random_walk.pp_outcome o;
    report cfg obs o.Check.Random_walk.violation;
    explain_violation ~html:explain ~obs cfg o.Check.Random_walk.violation;
    close_trace tracer trace_out;
    Obs.Reporter.close obs
  in
  Cmd.v (Cmd.info "walk" ~doc:"Randomized deep run with invariant checking.")
    Term.(
      const run $ cfg_term $ shape_term $ safety_only $ steps $ seed $ jobs
      $ reduce_term ~default:"none" $ explain_file $ trace_out_term $ obs_term)

let crosscheck_cmd =
  let run cv shape safety_only max_states jobs reduce mem_budget explain obs =
    let cfg, v = cv in
    let model = model_of cv shape in
    (match reduce with
    | Reduce.Mode.None_ -> Fmt.failwith "crosscheck needs --reduce=sym|por|all, not none"
    | _ -> ());
    Fmt.pr "cross-checking variant=%s shape=%s muts=%d refs=%d cycles=%d ops=%d reduce=%a@."
      v.Core.Variants.name shape cfg.Core.Config.n_muts cfg.Core.Config.n_refs
      cfg.Core.Config.max_cycles cfg.Core.Config.max_mut_ops Reduce.Mode.pp reduce;
    let reducer = Option.get (Core.Reduction.reducer cfg reduce) in
    let r =
      Reduce.Crosscheck.run ~max_states ~obs ~reducer
        ~invariants:(invariants_of cfg safety_only) model.Core.Model.system
    in
    Fmt.pr "%a@." Reduce.Crosscheck.pp r;
    (* --jobs N extends the agreement obligation to the work-stealing
       checker: verdict, violated invariant and counterexample length
       must match the sequential full run at N domains, both unreduced
       and under the reducer *)
    let jobs_errors =
      if jobs <= 1 then []
      else begin
        let invariants = invariants_of cfg safety_only in
        let verdict (o : _ Check.Explore.outcome) =
          match o.Check.Explore.violation with
          | None -> "clean"
          | Some tr ->
            Fmt.str "violates %s, counterexample length %d" tr.Check.Trace.broken
              (Check.Trace.length tr)
        in
        let seq = Check.Explore.run ~max_states ~invariants model.Core.Model.system in
        let base = verdict seq in
        let par_run ?reducer label =
          let o =
            Check.Par_explore.run ~jobs ~max_states ?reducer ~invariants
              model.Core.Model.system
          in
          let pv = verdict o in
          if pv = base then begin
            Fmt.pr "jobs equivalence OK (jobs=%d, %s)@." jobs label;
            []
          end
          else [ Fmt.str "jobs=%d %s: %s, but sequential: %s" jobs label pv base ]
        in
        par_run "unreduced" @ par_run ~reducer "reduced"
      end
    in
    (* --mem-budget B extends the obligation to the tiered store: a
       forced-spill run (most states on disk) and a checkpoint/resume
       round-trip must both report the all-RAM verdict, violated
       invariant, counterexample length and (clean runs) state count *)
    let store_errors =
      match mem_budget with
      | None -> []
      | Some budget ->
        let invariants = invariants_of cfg safety_only in
        let signature (o : _ Check.Explore.outcome) =
          match o.Check.Explore.violation with
          | None -> Fmt.str "clean, %d states" o.Check.Explore.states
          | Some tr ->
            Fmt.str "violates %s, counterexample length %d" tr.Check.Trace.broken
              (Check.Trace.length tr)
        in
        let base =
          Check.Par_explore.run ~jobs:1 ~max_states ~invariants model.Core.Model.system
        in
        let base_sig = signature base in
        let spill_legs =
          List.concat_map
            (fun j ->
              let o =
                Check.Par_explore.run ~jobs:j ~max_states ~mem_budget:budget ~invariants
                  model.Core.Model.system
              in
              let s = signature o in
              if s = base_sig then begin
                Fmt.pr "spill equivalence OK (jobs=%d, budget=%d): %s@." j budget s;
                []
              end
              else
                [
                  Fmt.str "spill jobs=%d budget=%d: %s, but all-RAM: %s" j budget s base_sig;
                ])
            [ 1; 4 ]
        in
        let resume_leg =
          let dir =
            Filename.concat (Filename.get_temp_dir_name ())
              (Fmt.str "gcmodel-crosscheck-ckpt-%d" (Unix.getpid ()))
          in
          let o =
            Check.Par_explore.run ~jobs:1 ~max_states ~mem_budget:budget
              ~checkpoint:(dir, 500) ~invariants model.Core.Model.system
          in
          let errs =
            match Store.Checkpoint.load ~mem_budget:budget dir with
            | Error msg -> [ Fmt.str "resume: cannot load checkpoint: %s" msg ]
            | Ok snap ->
              let r =
                Check.Par_explore.run ~jobs:1 ~max_states ~mem_budget:budget ~resume:snap
                  ~invariants model.Core.Model.system
              in
              let so = signature o and sr = signature r in
              if so = base_sig && sr = base_sig then begin
                Fmt.pr "resume equivalence OK (budget=%d, snapshot %d): %s@." budget
                  snap.Store.Checkpoint.seq sr;
                []
              end
              else
                [
                  Fmt.str "resume budget=%d: checkpointed %s, resumed %s, but all-RAM: %s"
                    budget so sr base_sig;
                ]
          in
          (try
             let rec rm p =
               if Sys.is_directory p then begin
                 Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
                 Unix.rmdir p
               end
               else Sys.remove p
             in
             if Sys.file_exists dir then rm dir
           with Sys_error _ | Unix.Unix_error _ -> ());
          errs
        in
        spill_legs @ resume_leg
    in
    (* the cross-check aggregates outcomes but keeps no trace; regenerate
       the reduced counterexample (deterministic) if a report was asked for *)
    (match explain with
    | None -> ()
    | Some _ ->
      let o =
        Check.Explore.run ~max_states ~reducer
          ~invariants:(invariants_of cfg safety_only) model.Core.Model.system
      in
      explain_violation ~html:explain ~obs cfg o.Check.Explore.violation);
    Obs.Reporter.close obs;
    match Reduce.Crosscheck.errors r @ jobs_errors @ store_errors with
    | [] -> Fmt.pr "cross-check OK@."
    | errs ->
      List.iter (Fmt.epr "cross-check FAILED: %s@.") errs;
      exit 1
  in
  Cmd.v
    (Cmd.info "crosscheck"
       ~doc:
         "Run reduced and unreduced exploration on the same instance and verify they agree \
          (verdict, violated invariant, counterexample length, reduced <= full states). \
          With --jobs N, also verify the work-stealing parallel checker reports the same \
          verdict, invariant and counterexample length at N domains, unreduced and reduced. \
          With --mem-budget B, also verify a forced-spill run (tiered store under budget B, \
          at 1 and 4 domains) and a checkpoint/resume round-trip report the all-RAM verdict \
          and state count. Exits 1 on mismatch.")
    Term.(
      const run $ cfg_term $ shape_term $ safety_only $ max_states $ jobs
      $ reduce_term ~default:"all" $ mem_budget_term $ explain_file $ obs_term)

let explain_cmd =
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Explain an exported trace: $(docv) holds a trace object as written by the \
             $(b,violation) observability record (either the record itself or its \
             \"trace\" payload).  The schedule is validated against the configured \
             instance and replayed.  Without $(b,--trace), the instance is explored \
             until a violation is found.")
  in
  let html_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "html" ] ~docv:"FILE"
          ~doc:"Also write a self-contained HTML report to $(docv).")
  in
  let run cv shape safety_only max_states reduce trace_file html_file last obs =
    let cfg, v = cv in
    let model = model_of cv shape in
    let trace =
      match trace_file with
      | Some path ->
        let fail msg =
          Fmt.epr "gcmodel explain: %s@." msg;
          exit 1
        in
        let raw = In_channel.with_open_bin path In_channel.input_all in
        let json =
          match Obs.Json.of_string raw with
          | Error msg -> fail (Fmt.str "%s: not JSON: %s" path msg)
          | Ok (Obs.Json.Obj fields as j) ->
            (* accept a whole "violation" record or the bare trace object *)
            (match List.assoc_opt "trace" fields with Some t -> t | None -> j)
          | Ok j -> j
        in
        (match Explain.Replay.import_and_replay model.Core.Model.system json with
        | Ok tr -> tr
        | Error msg -> fail (Fmt.str "%s: %s" path msg))
      | None ->
        Fmt.pr "explaining variant=%s shape=%s muts=%d refs=%d (searching for a violation)@."
          v.Core.Variants.name shape cfg.Core.Config.n_muts cfg.Core.Config.n_refs;
        let reducer = Core.Reduction.reducer cfg reduce in
        let o =
          Check.Par_explore.run ~jobs:1 ~max_states ~obs ?reducer
            ~invariants:(invariants_of cfg safety_only) model.Core.Model.system
        in
        (match o.Check.Explore.violation with
        | Some tr -> tr
        | None ->
          Fmt.epr "gcmodel explain: no violation found (%d states explored) — nothing to explain@."
            o.Check.Explore.states;
          exit 1)
    in
    let rep = write_explanation ~last ~html:html_file ~obs cfg trace in
    Fmt.pr "%s@." (Explain.Report.render ~last rep);
    Obs.Reporter.close obs
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Counterexample forensics: replay a trace (or explore to a violation), then print \
          the violated conjunct and witness, a per-process lane timeline, and the per-step \
          state-diff narrative.")
    Term.(
      const run $ cfg_term $ shape_term $ safety_only $ max_states
      $ reduce_term ~default:"all" $ trace_file $ html_file $ explain_last $ obs_term)

let variants_cmd =
  let run () =
    List.iter
      (fun v ->
        Fmt.pr "%-32s %-16s %s@." v.Core.Variants.name
          (match v.Core.Variants.expectation with
          | Core.Variants.Safe -> "safe"
          | Core.Variants.Unsafe -> "unsafe"
          | Core.Variants.Conjectured_safe -> "conjectured-safe")
          v.Core.Variants.description)
      Core.Variants.all
  in
  Cmd.v (Cmd.info "variants" ~doc:"List collector variants.") Term.(const run $ const ())

let shapes_cmd =
  let run () =
    List.iter
      (fun (s : Gcheap.Shapes.t) ->
        Fmt.pr "%-10s roots=%a@." s.Gcheap.Shapes.name
          Fmt.(list ~sep:sp (brackets (list ~sep:comma int)))
          s.Gcheap.Shapes.roots)
      (Gcheap.Shapes.all ~n_refs:4 ~n_fields:1)
  in
  Cmd.v (Cmd.info "shapes" ~doc:"List initial heap shapes.") Term.(const run $ const ())

let dump_cmd =
  let run cv shape =
    let cfg, _ = cv in
    let model = model_of cv shape in
    Fmt.pr "%a@." (Core.Dump.pp_state cfg) model.Core.Model.system
  in
  Cmd.v (Cmd.info "dump" ~doc:"Print the initial state.") Term.(const run $ cfg_term $ shape_term)

let program_cmd =
  (* Print a process's CIMP control skeleton — the model-side counterpart
     of the paper's Figs. 2, 5 and 6, for eyeball correspondence. *)
  let which =
    Arg.(value & pos 0 string "gc" & info [] ~docv:"PROC" ~doc:"gc, mut, or sys.")
  in
  let run cv which =
    let cfg, _ = cv in
    let programs = Core.Model.programs cfg in
    let com =
      match which with
      | "gc" -> List.nth programs Core.Config.pid_gc
      | "sys" -> List.nth programs (Core.Config.pid_sys cfg)
      | "mut" | "mut0" -> List.nth programs (Core.Config.pid_mut cfg 0)
      | s -> Fmt.failwith "unknown process %s (expected gc, mut, sys)" s
    in
    Fmt.pr "%a@." Cimp.Pretty.pp com
  in
  Cmd.v
    (Cmd.info "program" ~doc:"Pretty-print a process's CIMP program (cf. the paper's Figs. 2, 5, 6).")
    Term.(const run $ cfg_term $ which)

(* -- mutation-testing campaign (lib/mutate) ---------------------------------- *)

let campaign_cmd =
  let operators =
    Arg.(
      value
      & opt_all string []
      & info [ "operators" ] ~docv:"FAMILY"
          ~doc:
            "Restrict the campaign to these operator families (repeatable): drop-fence, \
             weaken-cas, elide-barrier, skip-hs-wait, swap-mark-loads, alloc-color-off, or \
             variant (the hand-written ablations).  Default: all of them.")
  in
  let budget =
    Arg.(value & opt int 300_000 & info [ "budget" ] ~doc:"State cap per mutant/scenario run.")
  in
  let muts =
    Arg.(value & opt int 1 & info [ "muts" ] ~doc:"Mutators in the campaign scenarios.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the JSON campaign report (kill-matrix) to $(docv).")
  in
  let html =
    Arg.(
      value
      & opt (some string) None
      & info [ "html" ] ~docv:"FILE"
          ~doc:"Write the self-contained HTML kill-matrix to $(docv).")
  in
  let stubs =
    Arg.(
      value
      & opt (some string) None
      & info [ "stubs" ] ~docv:"DIR"
          ~doc:"Write a markdown triage stub per surviving mutant into $(docv).")
  in
  let list_only =
    Arg.(value & flag & info [ "list" ] ~doc:"List the selected mutants and exit.")
  in
  let certificates =
    Arg.(
      value
      & opt (some string) None
      & info [ "certificates" ] ~docv:"DIR"
          ~doc:
            "Close surviving equivalent mutants by certificate: for each survivor whose \
             applicable scenarios all closed, write one proof-witness certificate per \
             scenario into $(docv)/(mutant)/(scenario), each validatable with \
             $(b,gcmodel recheck).")
  in
  let run operators budget muts jobs reduce out html stubs certificates list_only obs =
    let known = Mutate.Operators.families @ [ "variant" ] in
    List.iter
      (fun f -> if not (List.mem f known) then Fmt.failwith "unknown operator family %s" f)
      operators;
    let mutants =
      let all = Mutate.Campaign.default_mutants ~muts () in
      if operators = [] then all
      else List.filter (fun m -> List.mem m.Mutate.Campaign.operator operators) all
    in
    if list_only then
      List.iter
        (fun (m : Mutate.Campaign.mutant) ->
          Fmt.pr "%-44s %-16s %s%s@." m.Mutate.Campaign.name m.Mutate.Campaign.operator
            m.Mutate.Campaign.doc
            (if m.Mutate.Campaign.expected_equivalent then " [expected equivalent]" else ""))
        mutants
    else begin
      let scenarios = Mutate.Campaign.scenarios ~muts () in
      Fmt.pr "campaign: %d mutants x %d scenarios, budget %d, jobs %d, reduce %a@."
        (List.length mutants) (List.length scenarios) budget jobs Reduce.Mode.pp reduce;
      let o = Mutate.Campaign.run ~obs ~budget ~jobs ~reduce ~scenarios ?certificates ~mutants () in
      print_string (Mutate.Kill_matrix.summary o);
      (match certificates with
      | Some dir -> Fmt.pr "campaign: survivor certificates under %s@." dir
      | None -> ());
      (match out with
      | None -> ()
      | Some path ->
        Mutate.Kill_matrix.write_json path o;
        Fmt.pr "campaign: JSON report written to %s@." path);
      (match html with
      | None -> ()
      | Some path ->
        Mutate.Kill_matrix.write_html path o;
        Fmt.pr "campaign: HTML kill-matrix written to %s@." path);
      (match stubs with
      | None -> ()
      | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        List.iter
          (fun (e : Mutate.Campaign.entry) ->
            match e.Mutate.Campaign.classification with
            | Mutate.Campaign.Survived _ ->
              let fname =
                String.map (fun c -> if c = ':' then '-' else c) e.Mutate.Campaign.mutant.Mutate.Campaign.name
                ^ ".md"
              in
              let path = Filename.concat dir fname in
              Out_channel.with_open_bin path (fun oc ->
                  Out_channel.output_string oc (Mutate.Campaign.triage_stub e));
              Fmt.pr "campaign: triage stub written to %s@." path
            | _ -> ())
          o.Mutate.Campaign.entries);
      Obs.Reporter.close obs;
      (* the ablation assertion: the five hand-written unsafe variants are
         the campaign's known-answer tests — a survivor among them means
         the harness, not the catalogue, is broken *)
      let s = Mutate.Kill_matrix.stats o in
      if s.Mutate.Kill_matrix.ablations_killed < s.Mutate.Kill_matrix.ablations_total then begin
        Fmt.epr "campaign FAILED: %d/%d ablations killed@."
          s.Mutate.Kill_matrix.ablations_killed s.Mutate.Kill_matrix.ablations_total;
        exit 1
      end
    end
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Mutation-testing campaign: check every catalogue mutant (plus the five ablations) \
          against the scenario suite and classify each as killed / survived / errored, with a \
          kill-matrix in JSON and HTML.  Exits 1 if any ablation survives.")
    Term.(
      const run $ operators $ budget $ muts $ jobs $ reduce_term ~default:"all" $ out $ html
      $ stubs $ certificates $ list_only $ obs_term)

(* -- bench regression gate (lib/obs/benchcmp) -------------------------------- *)

let benchdiff_cmd =
  let old_file = Arg.(required & pos 0 (some file) None & info [] ~docv:"OLD" ~doc:"Baseline BENCH report.") in
  let new_file = Arg.(required & pos 1 (some file) None & info [] ~docv:"NEW" ~doc:"Candidate BENCH report.") in
  let threshold =
    Arg.(
      value
      & opt float Obs.Benchcmp.default_threshold
      & info [ "threshold" ] ~docv:"FRAC"
          ~doc:
            "Noise band as a fraction: a metric has to move by more than $(docv) (in its \
             bad direction) to count as a regression.")
  in
  let warn_only =
    Arg.(
      value
      & flag
      & info [ "warn-only" ]
          ~doc:"Report regressions but exit 0 anyway (for advisory CI steps).")
  in
  let run old_path new_path threshold warn_only =
    match Obs.Benchcmp.compare_files ~threshold ~old_path new_path with
    | Error msg ->
      Fmt.epr "benchdiff: %s@." msg;
      exit 2
    | Ok r ->
      print_string
        (Obs.Benchcmp.render ~old_name:(Filename.basename old_path)
           ~new_name:(Filename.basename new_path) r);
      if Obs.Benchcmp.has_regressions r && not warn_only then exit 1
  in
  Cmd.v
    (Cmd.info "benchdiff"
       ~doc:
         "Diff two BENCH_<n>.json reports metric by metric (ns/run: lower is better; \
          states/sec and steps/sec: higher is better) and classify each change against a \
          noise threshold.  Exits 1 when any metric regressed past the threshold, 2 when \
          the reports are not comparable (e.g. different machines).")
    Term.(const run $ old_file $ new_file $ threshold $ warn_only)

(* -- generated reference manuals (lib/mutate/doc_gen) ------------------------ *)

let doc_invariants_cmd =
  let run () = print_string (Mutate.Doc_gen.invariants_md ()) in
  Cmd.v
    (Cmd.info "doc-invariants"
       ~doc:
         "Emit the invariant reference manual (docs/INVARIANTS.md) to stdout.  CI diffs the \
          committed file against this output.")
    Term.(const run $ const ())

let doc_variants_cmd =
  let run () = print_string (Mutate.Doc_gen.variants_md ()) in
  Cmd.v
    (Cmd.info "doc-variants"
       ~doc:
         "Emit the variant and mutation-operator reference manual (docs/VARIANTS.md) to \
          stdout.  CI diffs the committed file against this output.")
    Term.(const run $ const ())

let doc_certificates_cmd =
  let run () = print_string (Mutate.Doc_gen.certificates_md ()) in
  Cmd.v
    (Cmd.info "doc-certificates"
       ~doc:
         "Emit the certificate format specification (docs/CERTIFICATES.md) to stdout.  CI \
          diffs the committed file against this output.")
    Term.(const run $ const ())

(* -- concrete runtime stress harness (lib/runtime) --------------------------- *)

let harness_cmd =
  let muts = Arg.(value & opt int 2 & info [ "muts" ] ~doc:"Mutator domains.") in
  let slots = Arg.(value & opt int 256 & info [ "slots" ] ~doc:"Heap slots.") in
  let fields = Arg.(value & opt int 2 & info [ "fields" ] ~doc:"Fields per object.") in
  let duration =
    Arg.(value & opt float 1.0 & info [ "duration" ] ~doc:"Wall-clock seconds to run.")
  in
  let workload =
    Arg.(
      value
      & opt (enum [ ("uniform", Runtime.Rmutator.Uniform); ("lists", Runtime.Rmutator.Lists) ])
          Runtime.Rmutator.Uniform
      & info [ "workload" ] ~docv:"KIND" ~doc:"Mutator workload: $(b,uniform) or $(b,lists).")
  in
  let no_barriers =
    Arg.(
      value & flag
      & info [ "no-barriers" ]
          ~doc:"Ablate the write barriers (the lists workload then faults within cycles).")
  in
  let trace_pause =
    Arg.(
      value & opt float 0.
      & info [ "trace-pause" ]
          ~doc:"Seconds the collector sleeps between greys (widens the race window).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let no_latency =
    Arg.(
      value & flag
      & info [ "no-latency" ] ~doc:"Disable the HDR latency instrumentation (lib/obs/latency).")
  in
  let co_interval =
    Arg.(
      value & opt int 0
      & info [ "co-interval" ] ~docv:"NS"
          ~doc:
            "Expected handshake-round interval in nanoseconds; when positive, the round \
             history gets coordinated-omission back-fill (a stalled round also records the \
             rounds it swallowed).")
  in
  let run muts slots fields duration workload no_barriers trace_pause seed no_latency
      co_interval trace_out obs =
    let tracer = Obs.Tracing.resolve ?out:trace_out ~domains:(muts + 1) () in
    let s =
      Runtime.Harness.run ~n_muts:muts ~n_slots:slots ~n_fields:fields ~duration
        ~barriers:(not no_barriers) ~seed ~workload ~trace_pause ~obs ~tracer
        ~latency:(not no_latency) ~co_interval_ns:co_interval ()
    in
    Fmt.pr "%a@." Runtime.Harness.pp_stats s;
    close_trace tracer trace_out;
    Obs.Reporter.close obs;
    if s.Runtime.Harness.violation <> None then exit 1
  in
  Cmd.v
    (Cmd.info "harness"
       ~doc:
         "Stress the concrete concurrent collector: one collector domain cycling against \
          $(b,--muts) mutator domains for $(b,--duration) seconds, with on-line root \
          validation.  With $(b,--obs), emits per-cycle $(b,gc-cycle) records, periodic \
          $(b,runtime-heartbeat) records with live HDR latency percentiles (handshake \
          rounds and per-mutator acks, gc pauses, allocation, stalls), and a final \
          $(b,harness) record carrying the structured latency section; $(b,--obs=live) \
          renders the runtime dashboard panel.  With $(b,--trace-out), lane 0 carries the \
          collector's handshake/mark/sweep/gc-cycle spans and lanes 1..n the mutators'.  \
          Exits 1 on a safety violation.")
    Term.(
      const run $ muts $ slots $ fields $ duration $ workload $ no_barriers $ trace_pause
      $ seed $ no_latency $ co_interval $ trace_out_term $ obs_term)

let () =
  let info = Cmd.info "gcmodel" ~doc:"Executable model of the verified on-the-fly GC for x86-TSO." in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            explore_cmd; resume_cmd; recheck_cmd; certdiff_cmd; walk_cmd; crosscheck_cmd;
            explain_cmd; campaign_cmd;
            benchdiff_cmd; harness_cmd;
            variants_cmd; shapes_cmd; dump_cmd; program_cmd; doc_invariants_cmd;
            doc_variants_cmd; doc_certificates_cmd;
          ]))
