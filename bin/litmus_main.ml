(* litmus — run the x86-TSO litmus catalogue (experiment E9).

   With no arguments, runs every test under both the TSO machine and the
   SC baseline and checks the published classifications.  With test names,
   runs just those and prints their full outcome sets. *)

open Cmdliner

let names = Arg.(value & pos_all string [] & info [] ~docv:"TEST")
let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print full outcome sets.")

let obs_term =
  let doc = Fmt.str "Observability sink: %s." Obs.Reporter.spec_doc in
  let env = Cmd.Env.info "RELAXING_OBS" ~doc:"Default observability sink." in
  let spec = Arg.(value & opt (some string) None & info [ "obs" ] ~env ~docv:"SPEC" ~doc) in
  let resolve spec =
    try Ok (Obs.Reporter.resolve ?spec ()) with Invalid_argument msg -> Error msg
  in
  Term.(term_result' (const resolve $ spec))

let pp_outcomes ppf os =
  Fmt.pf ppf "{%a}" (Fmt.list ~sep:Fmt.sp Tso.Litmus.pp_outcome) os

let verdict_record (v : Tso.Litmus.verdict) =
  let t = v.Tso.Litmus.test in
  [
    ("name", Obs.Json.String t.Tso.Litmus.name);
    ("ok", Obs.Json.Bool v.Tso.Litmus.ok);
    ("allowed_tso", Obs.Json.Bool t.Tso.Litmus.allowed_tso);
    ("allowed_sc", Obs.Json.Bool t.Tso.Litmus.allowed_sc);
    ("observed_tso", Obs.Json.Bool v.Tso.Litmus.tso_observed);
    ("observed_sc", Obs.Json.Bool v.Tso.Litmus.sc_observed);
    ("tso_states", Obs.Json.Int v.Tso.Litmus.tso_states);
    ("sc_states", Obs.Json.Int v.Tso.Litmus.sc_states);
  ]

let run names verbose obs =
  let tests =
    if names = [] then Tso.Catalog.all
    else
      List.map
        (fun n ->
          match List.find_opt (fun (t : Tso.Litmus.test) -> t.Tso.Litmus.name = n) Tso.Catalog.all with
          | Some t -> t
          | None -> Fmt.failwith "unknown test %s" n)
        names
  in
  let verdicts = List.map Tso.Litmus.run tests in
  List.iter
    (fun (v : Tso.Litmus.verdict) ->
      Fmt.pr "%a@." Tso.Litmus.pp_verdict v;
      Fmt.pr "    %s@." v.Tso.Litmus.test.Tso.Litmus.description;
      Obs.Reporter.emit obs "litmus" (verdict_record v);
      if verbose then begin
        Fmt.pr "    TSO outcomes: %a@." pp_outcomes v.Tso.Litmus.tso_outcomes;
        Fmt.pr "    SC outcomes:  %a@." pp_outcomes v.Tso.Litmus.sc_outcomes
      end)
    verdicts;
  let bad = List.filter (fun v -> not v.Tso.Litmus.ok) verdicts in
  let mismatches = List.length bad in
  Obs.Reporter.emit obs "outcome"
    [
      ("checker", Obs.Json.String "litmus");
      ("tests", Obs.Json.Int (List.length verdicts));
      ("mismatches", Obs.Json.Int mismatches);
    ];
  Obs.Reporter.close obs;
  if bad = [] then begin
    Fmt.pr "all %d classifications match x86-TSO@." (List.length verdicts);
    0
  end
  else begin
    Fmt.pr "%d MISMATCHES@." mismatches;
    1
  end

let () =
  let info = Cmd.info "litmus" ~doc:"x86-TSO litmus tests against the TSO and SC machines." in
  exit (Cmd.eval' (Cmd.v info Term.(const run $ names $ verbose $ obs_term)))
