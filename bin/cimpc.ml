(* cimpc — the CIMP concrete-language tool: parse, typecheck,
   pretty-print, and explore programs written in the surface syntax.

     cimpc check FILE      parse + typecheck
     cimpc pp FILE         parse and pretty-print (round-trip aid)
     cimpc run FILE        explore the compiled system, checking asserts
     cimpc examples        list the bundled example programs
     cimpc run -e NAME     run a bundled example
*)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let source_term =
  let file = Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE") in
  let example =
    Arg.(value & opt (some string) None & info [ "e"; "example" ] ~doc:"Use a bundled example.")
  in
  let get file example =
    match (file, example) with
    | Some f, None -> read_file f
    | None, Some e -> (
      match Cimp_lang.Examples.by_name e with
      | Some (_, src, _) -> src
      | None -> Fmt.failwith "unknown example %s" e)
    | _ -> Fmt.failwith "give exactly one of FILE or --example"
  in
  Term.(const get $ file $ example)

let check_cmd =
  let run src =
    let prog = Cimp_lang.Parser.program src in
    let chans = Cimp_lang.Typecheck.program prog in
    Fmt.pr "ok: %d processes, %d channels@." (List.length prog) (List.length chans)
  in
  Cmd.v (Cmd.info "check" ~doc:"Parse and typecheck.") Term.(const run $ source_term)

let pp_cmd =
  let run src =
    let prog = Cimp_lang.Parser.program src in
    Fmt.pr "%a@." Cimp_lang.Ast.pp_program prog
  in
  Cmd.v (Cmd.info "pp" ~doc:"Parse and pretty-print.") Term.(const run $ source_term)

let obs_term =
  let doc = Fmt.str "Observability sink: %s." Obs.Reporter.spec_doc in
  let env = Cmd.Env.info "RELAXING_OBS" ~doc:"Default observability sink." in
  let spec = Arg.(value & opt (some string) None & info [ "obs" ] ~env ~docv:"SPEC" ~doc) in
  let resolve spec =
    try Ok (Obs.Reporter.resolve ?spec ()) with Invalid_argument msg -> Error msg
  in
  Term.(term_result' (const resolve $ spec))

let reduce_term =
  let doc = "State-space reduction: none, sym, por or all (surface programs support none only)." in
  let env = Cmd.Env.info "RELAXING_REDUCE" ~doc:"Default reduction mode." in
  let spec = Arg.(value & opt string "none" & info [ "reduce" ] ~env ~docv:"MODE" ~doc) in
  Term.(term_result' (const Reduce.Mode.of_string $ spec))

let run_cmd =
  let max_states =
    Arg.(value & opt int 1_000_000 & info [ "max-states" ] ~doc:"State cap.")
  in
  let jobs =
    Arg.(
      value
      & opt int 1
      & info [ "jobs"; "j" ]
          ~doc:"Worker domains (1 = sequential; higher runs the parallel BFS).")
  in
  let run src max_states jobs reduce obs =
    let sys = Cimp_lang.Compile.of_source src in
    (* Surface-language systems carry no reduction spec (no symmetry
       classes, and user-chosen labels could collide with the POR
       policy's "...fence" convention), so anything but none degrades
       to unreduced checking — loudly, not silently. *)
    (match reduce with
    | Reduce.Mode.None_ -> ()
    | m ->
      Fmt.epr "warning: --reduce=%a is not available for surface programs; running unreduced@."
        Reduce.Mode.pp m);
    let o =
      Check.Par_explore.run ~jobs ~max_states ~obs
        ~invariants:[ ("assertions", Cimp_lang.Compile.assertions_hold) ]
        sys
    in
    Fmt.pr "%a@." Check.Explore.pp_outcome o;
    match o.Check.Explore.violation with
    | Some tr ->
      Fmt.pr "%a@." Check.Trace.pp tr;
      Obs.Reporter.emit obs "violation" [ ("trace", Check.Trace.to_json tr) ];
      Obs.Reporter.close obs;
      exit 1
    | None -> Obs.Reporter.close obs
  in
  Cmd.v (Cmd.info "run" ~doc:"Explore the compiled system, checking asserts.")
    Term.(const run $ source_term $ max_states $ jobs $ reduce_term $ obs_term)

let examples_cmd =
  let run () =
    List.iter (fun (n, _, note) -> Fmt.pr "%-18s %s@." n note) Cimp_lang.Examples.all
  in
  Cmd.v (Cmd.info "examples" ~doc:"List bundled examples.") Term.(const run $ const ())

let () =
  let info = Cmd.info "cimpc" ~doc:"CIMP concrete-language front-end." in
  exit (Cmd.eval (Cmd.group info [ check_cmd; pp_cmd; run_cmd; examples_cmd ]))
