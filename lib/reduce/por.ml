(* Partial-order reduction: ample successor sets.

   The selector implements one deliberately conservative ample-set rule:
   when some process's *entire* enabled set is a single transition the
   policy marks deferrable (for the GC model: an mfence rendezvous,
   enabled only once the owner's store buffer has drained), that
   singleton is the ample set; every other enabled transition of the
   state is deferred.  Otherwise the ample set is the full successor
   set.

   Why this satisfies the standard provisos (see DESIGN.md for the
   model-level argument):

   - C0 (emptiness): the singleton is nonempty, and we only reduce when
     the full set is nonempty.
   - C1 (persistence): a deferrable transition must commute with every
     transition of every *other* process from any state where both are
     enabled, and must stay enabled under them.  Since the owner has no
     other transition here, no run can leave the ample set's
     equivalence class before executing it.
   - C2 (visibility): a deferrable transition (with the normalization
     cascade behind it) must not change the truth of any invariant, so
     postponing the other transitions past it cannot hide a violation.
   - C3 (cycle): reduced ample chains cannot be infinite — here each
     singleton strictly advances its owner's program past the fence, and
     chains have length <= n_procs, so the proviso is trivial.

   The policy (which transitions are deferrable) is the model-specific
   part; lib/core supplies the GC model's. *)

type policy = { deferrable : Cimp.System.event -> bool }

module IntMap = Map.Make (Int)

(* [ample policy succs] = (ample set, number of deferred transitions).
   Takes the full successor list so callers can reuse it. *)
let ample policy succs =
  match succs with
  | [] | [ _ ] -> (succs, 0)
  | _ ->
    let by_owner =
      List.fold_left
        (fun m ((e, _) as t) ->
          let p = Cimp.System.event_owner e in
          IntMap.update p (function None -> Some [ t ] | Some ts -> Some (t :: ts)) m)
        IntMap.empty succs
    in
    (* smallest qualifying owner pid, for determinism *)
    let rec pick = function
      | [] -> None
      | (_, [ ((e, _) as t) ]) :: rest -> if policy.deferrable e then Some t else pick rest
      | _ :: rest -> pick rest
    in
    (match pick (IntMap.bindings by_owner) with
    | Some t -> ([ t ], List.length succs - 1)
    | None -> (succs, 0))

(* The successor function for Check.Reducer, counting deferrals. *)
let successors policy ~deferred sys =
  let amp, pruned = ample policy (Cimp.System.steps sys) in
  if pruned > 0 then ignore (Atomic.fetch_and_add deferred pruned);
  amp
