(* Partial-order reduction: persistent successor sets.

   The selector implements one deliberately conservative rule: the
   ample set is the union of every process's enabled set that is a
   single transition the policy marks deferrable (for the GC model: an
   mfence rendezvous, enabled only once the owner's store buffer has
   drained); every other enabled transition of the state is deferred.
   When no process qualifies, the ample set is the full successor set.

   Why this satisfies the standard provisos (see DESIGN.md for the
   model-level argument):

   - C0 (emptiness): the union is nonempty whenever we reduce, and we
     only reduce when the full set is nonempty.
   - C1 (persistence): a deferrable transition must commute with every
     transition of every *other* process from any state where both are
     enabled, and must stay enabled under them.  Each selected
     transition is its owner's entire enabled set, other processes
     cannot re-enable the owner, and selected transitions of different
     owners commute with each other — so no run can leave the ample
     set's equivalence class before executing one of its members: the
     union is a persistent set (Godefroid), not merely a single-process
     ample set.
   - C2 (visibility): a deferrable transition (with the normalization
     cascade behind it) must not change the truth of any invariant, so
     postponing the other transitions past it cannot hide a violation.
   - C3 (cycle): reduced ample chains cannot be infinite — here each
     member strictly advances its owner's program past the fence, and
     chains have length <= n_procs, so the proviso is trivial.

   Taking the *union* rather than the smallest qualifying owner's
   singleton matters beyond reduction strength: the union is invariant
   under any permutation of symmetric processes, while "smallest owner
   pid" is not.  Combined with symmetry reduction, an equivariant
   selector is what keeps the visited canonical-class set independent
   of which orbit representative the checker happens to expand — the
   property certificate closure (lib/certify) is checked against.

   The policy (which transitions are deferrable) is the model-specific
   part; lib/core supplies the GC model's. *)

type policy = { deferrable : Cimp.System.event -> bool }

module IntMap = Map.Make (Int)

(* [ample policy succs] = (ample set, number of deferred transitions).
   Takes the full successor list so callers can reuse it. *)
let ample policy succs =
  match succs with
  | [] | [ _ ] -> (succs, 0)
  | _ ->
    let by_owner =
      List.fold_left
        (fun m ((e, _) as t) ->
          let p = Cimp.System.event_owner e in
          IntMap.update p (function None -> Some [ t ] | Some ts -> Some (t :: ts)) m)
        IntMap.empty succs
    in
    (* every owner whose whole enabled set is one deferrable transition;
       IntMap.bindings keeps the result in pid order, for determinism *)
    let picked =
      List.filter_map
        (function
          | _, [ ((e, _) as t) ] when policy.deferrable e -> Some t
          | _ -> None)
        (IntMap.bindings by_owner)
    in
    (match picked with
    | [] -> (succs, 0)
    | ts -> (ts, List.length succs - List.length ts))

(* The successor function for Check.Reducer, counting deferrals. *)
let successors policy ~deferred sys =
  let amp, pruned = ample policy (Cimp.System.steps sys) in
  if pruned > 0 then ignore (Atomic.fetch_and_add deferred pruned);
  amp
