(* Soundness cross-check harness: run reduced and unreduced exploration
   on the same instance and compare what must agree.

   Automation earns trust only when the reduced check is demonstrably
   equivalent to the full one (Hawblitzel & Petrank), so the harness is
   part of the subsystem, not an afterthought: the differential test
   suite and the `gcmodel crosscheck` CLI both go through here.

   What must agree on a closing (non-truncated) instance:
   - the verdict (violation found or not);
   - the violated invariant's name;
   - the counterexample length: our reducers preserve shortest-trace
     distances (symmetry permutes whole paths; the POR rule only
     reorders independent transitions within a path), so under BFS both
     explorations find equal-length counterexamples.  [ok
     ~allow_longer_ce:true] relaxes this to reduced >= full for
     experimenting with policies that do stretch traces;
   - reduced distinct states <= full distinct states. *)

type result = {
  reduce : string;  (* the reducer's name *)
  full_states : int;
  reduced_states : int;
  full_transitions : int;
  reduced_transitions : int;
  full_truncated : bool;
  reduced_truncated : bool;
  full_violation : string option;
  reduced_violation : string option;
  full_ce_length : int option;
  reduced_ce_length : int option;
  elapsed : float;
}

let ce_length (o : _ Check.Explore.outcome) =
  Option.map (fun tr -> List.length tr.Check.Trace.steps) o.Check.Explore.violation

let run ?max_states ?normal_form ?(obs = Obs.Reporter.null) ~reducer ~invariants initial =
  let t0 = Unix.gettimeofday () in
  let full = Check.Explore.run ?max_states ?normal_form ~invariants initial in
  let reduced = Check.Explore.run ?max_states ?normal_form ~reducer ~invariants initial in
  let broken (o : _ Check.Explore.outcome) =
    Option.map (fun tr -> tr.Check.Trace.broken) o.Check.Explore.violation
  in
  let r =
    {
      reduce = reducer.Check.Reducer.name;
      full_states = full.Check.Explore.states;
      reduced_states = reduced.Check.Explore.states;
      full_transitions = full.Check.Explore.transitions;
      reduced_transitions = reduced.Check.Explore.transitions;
      full_truncated = full.Check.Explore.truncated;
      reduced_truncated = reduced.Check.Explore.truncated;
      full_violation = broken full;
      reduced_violation = broken reduced;
      full_ce_length = ce_length full;
      reduced_ce_length = ce_length reduced;
      elapsed = Unix.gettimeofday () -. t0;
    }
  in
  if Obs.Reporter.enabled obs then begin
    let opt_str = function None -> Obs.Json.Null | Some s -> Obs.Json.String s in
    let opt_int = function None -> Obs.Json.Null | Some i -> Obs.Json.Int i in
    Obs.Reporter.emit obs "crosscheck"
      [
        ("reduce", Obs.Json.String r.reduce);
        ("full_states", Obs.Json.Int r.full_states);
        ("reduced_states", Obs.Json.Int r.reduced_states);
        ("full_transitions", Obs.Json.Int r.full_transitions);
        ("reduced_transitions", Obs.Json.Int r.reduced_transitions);
        ("full_truncated", Obs.Json.Bool r.full_truncated);
        ("reduced_truncated", Obs.Json.Bool r.reduced_truncated);
        ("full_violation", opt_str r.full_violation);
        ("reduced_violation", opt_str r.reduced_violation);
        ("full_ce_length", opt_int r.full_ce_length);
        ("reduced_ce_length", opt_int r.reduced_ce_length);
        ("elapsed_s", Obs.Json.Float r.elapsed);
      ]
  end;
  r

(* Mismatch descriptions; [] means the cross-check passed. *)
let errors ?(allow_longer_ce = false) r =
  let e = ref [] in
  let add fmt = Printf.ksprintf (fun s -> e := s :: !e) fmt in
  if r.full_truncated then add "full run truncated: instance does not close, cross-check is vacuous";
  if r.reduced_truncated then add "reduced run truncated";
  if r.full_violation <> r.reduced_violation then
    add "verdict mismatch: full=%s reduced=%s"
      (Option.value ~default:"ok" r.full_violation)
      (Option.value ~default:"ok" r.reduced_violation);
  if r.reduced_states > r.full_states then
    add "reduced visited MORE states than full: %d > %d" r.reduced_states r.full_states;
  (match (r.full_ce_length, r.reduced_ce_length) with
  | Some f, Some g when (if allow_longer_ce then g < f else g <> f) ->
    add "counterexample length mismatch: full=%d reduced=%d" f g
  | _ -> ());
  List.rev !e

let ok ?allow_longer_ce r = errors ?allow_longer_ce r = []

let pp ppf r =
  let shrink =
    if r.full_states > 0 then
      100. *. float_of_int (r.full_states - r.reduced_states) /. float_of_int r.full_states
    else 0.
  in
  Fmt.pf ppf "reduce=%s states %d -> %d (%.1f%% saved) verdict full=%s reduced=%s%s" r.reduce
    r.full_states r.reduced_states shrink
    (Option.value ~default:"ok" r.full_violation)
    (Option.value ~default:"ok" r.reduced_violation)
    (match (r.full_ce_length, r.reduced_ce_length) with
    | Some f, Some g -> Printf.sprintf " ce %d/%d" f g
    | _ -> "")
