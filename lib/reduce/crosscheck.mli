(** Soundness cross-check harness: reduced vs. unreduced exploration on
    the same instance.

    On a closing instance the two runs must agree on verdict, violated
    invariant and counterexample length (our reducers preserve
    shortest-trace distances), and the reduced run must visit no more
    distinct states than the full one. *)

type result = {
  reduce : string;
  full_states : int;
  reduced_states : int;
  full_transitions : int;
  reduced_transitions : int;
  full_truncated : bool;
  reduced_truncated : bool;
  full_violation : string option;
  reduced_violation : string option;
  full_ce_length : int option;
  reduced_ce_length : int option;
  elapsed : float;
}

(** [run ~reducer ~invariants initial] explores twice with
    {!Check.Explore.run} — once plain, once under [reducer] — and
    compares.  Emits a [crosscheck] JSONL record when [obs] is
    enabled. *)
val run :
  ?max_states:int ->
  ?normal_form:bool ->
  ?obs:Obs.Reporter.t ->
  reducer:('a, 'v, 's) Check.Reducer.t ->
  invariants:(string * (('a, 'v, 's) Cimp.System.t -> bool)) list ->
  ('a, 'v, 's) Cimp.System.t ->
  result

(** Mismatch descriptions; [[]] means the cross-check passed.  A
    truncated full run is reported too: the check is vacuous then.
    [allow_longer_ce] (default [false]) relaxes counterexample-length
    equality to reduced >= full. *)
val errors : ?allow_longer_ce:bool -> result -> string list

(** [errors r = []]. *)
val ok : ?allow_longer_ce:bool -> result -> bool

val pp : result Fmt.t
(** One-line rendering: state/transition counts for both runs and the
    verdict agreement, for the cross-check harness's progress output. *)
