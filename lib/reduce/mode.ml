(* Which reducers are active.  The CLI surface of lib/reduce: every bin/
   tool parses --reduce / RELAXING_REDUCE into this type. *)

type t =
  | None_  (* no reduction: checkers behave bit-for-bit as without a reducer *)
  | Sym  (* mutator-symmetry + register-liveness canonical fingerprints *)
  | Por  (* partial-order reduction: ample successor sets *)
  | All  (* both *)

let to_string = function None_ -> "none" | Sym -> "sym" | Por -> "por" | All -> "all"

let of_string = function
  | "none" -> Ok None_
  | "sym" -> Ok Sym
  | "por" -> Ok Por
  | "all" -> Ok All
  | s -> Error (Printf.sprintf "unknown reduction mode %S (expected none|sym|por|all)" s)

let doc = "$(docv) is one of none, sym, por or all"
let all_modes = [ None_; Sym; Por; All ]
let pp ppf m = Fmt.string ppf (to_string m)
