(* The independence relation partial-order reduction relies on, and an
   execution-based oracle for validating instances of it.

   CIMP systems have per-process data isolation: a transition reads and
   writes only the configurations listed in [Cimp.System.event_pids]
   (requester, plus responder for a rendezvous).  Two transitions whose
   pid footprints are disjoint therefore commute *exactly* — executing
   them in either order from the same state reaches the same state, and
   neither enables nor disables the other.  This is stronger than the
   usual syntactic approximations: there is no shared-variable aliasing
   to approximate away, because all shared state lives in the Sys
   process and is only touched through rendezvous that name Sys in their
   footprint.

   [commute_at] checks the diamond concretely on a given state by
   running both orders and comparing the normalized result state sets;
   the test suite uses it to validate the footprint rule and the POR
   policy's deferrable transitions. *)

let disjoint e1 e2 =
  let ps = Cimp.System.event_pids e2 in
  List.for_all (fun p -> not (List.mem p ps)) (Cimp.System.event_pids e1)

(* Successor states reached from [sys] via exactly event [e].  An event
   does not always determine one successor: a Local_op may offer several
   under one label. *)
let succs_via sys e =
  List.filter_map (fun (e', s') -> if e' = e then Some s' else None) (Cimp.System.steps sys)

(* Do [e1] and [e2] commute at [sys]?  Runs e1;e2 and e2;e1 (normalizing
   intermediate and final states when [normal_form], as the explorer
   does) and compares the final fingerprint sets.  Both orders must be
   executable — an enabledness asymmetry means the pair does not
   commute here. *)
let commute_at ?(normal_form = true) sys e1 e2 =
  let nrm s = if normal_form then Cimp.System.normalize s else s in
  let after s e = List.map nrm (succs_via s e) in
  let both first second =
    List.concat_map
      (fun s -> List.map (fun s' -> Check.Fingerprint.hash (Check.Fingerprint.of_system s')) (after s second))
      (after sys first)
    |> List.sort_uniq compare
  in
  let l12 = both e1 e2 in
  l12 <> [] && l12 = both e2 e1
