(** Partial-order reduction: persistent successor sets.

    One conservative rule: the ample set is the union, over every
    process whose entire enabled set is a single transition the policy
    marks deferrable, of those singletons; when no process qualifies the
    full successor set is used.  The union (rather than one privileged
    owner) makes the selector invariant under permutations of symmetric
    processes, which keeps the visited canonical-class set independent
    of orbit-representative choice — required by certificate closure
    ([lib/certify]).  The policy must guarantee the standard provisos
    for its deferrable transitions: independence from every other
    process's transitions and persistence (C1), invisibility to all
    invariants including the normalization cascade behind the transition
    (C2); C0 and C3 hold by construction (the union is nonempty whenever
    reduction applies; each member strictly advances its owner, so ample
    chains are finite).  See the DESIGN.md "Reduction" section for the
    GC model's argument. *)

type policy = { deferrable : Cimp.System.event -> bool }

(** [ample policy succs] = (ample set, deferred count), given the full
    successor list of a state. *)
val ample :
  policy ->
  (Cimp.System.event * ('a, 'v, 's) Cimp.System.t) list ->
  (Cimp.System.event * ('a, 'v, 's) Cimp.System.t) list * int

(** Successor function for {!Check.Reducer.t}, adding each state's
    deferred count to [deferred]. *)
val successors :
  policy ->
  deferred:int Atomic.t ->
  ('a, 'v, 's) Cimp.System.t ->
  (Cimp.System.event * ('a, 'v, 's) Cimp.System.t) list
