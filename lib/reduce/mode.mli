(** Reduction modes, as selected by [--reduce] / [RELAXING_REDUCE]. *)

type t =
  | None_  (** no reduction: bit-for-bit the unreduced checker *)
  | Sym  (** symmetry + register-liveness canonical fingerprints *)
  | Por  (** partial-order reduction: ample successor sets *)
  | All  (** both *)

val to_string : t -> string
(** The flag spelling: ["none"], ["sym"], ["por"], ["all"]. *)

(** Inverse of {!to_string}; [Error] carries a usage message. *)
val of_string : string -> (t, string) result

(** Cmdliner-style doc string for the flag. *)
val doc : string

(** All four modes, in [none; sym; por; all] order (bench sweeps). *)
val all_modes : t list

val pp : t Fmt.t
(** Pretty-printer via {!to_string}. *)
