(** The independence relation for partial-order reduction, plus an
    execution-based oracle for validating it.

    CIMP transitions touch only the process configurations in their
    {!Cimp.System.event_pids} footprint, so disjoint-footprint
    transitions commute exactly (same result state either order, no
    enabling/disabling) — all shared state lives in the Sys process and
    is only reached through rendezvous that put Sys in the footprint. *)

(** [disjoint e1 e2]: the events' pid footprints do not intersect. *)
val disjoint : Cimp.System.event -> Cimp.System.event -> bool

(** Successor states of [sys] via exactly event [e] (a [Local_op] may
    offer several under one label). *)
val succs_via :
  ('a, 'v, 's) Cimp.System.t -> Cimp.System.event -> ('a, 'v, 's) Cimp.System.t list

(** [commute_at sys e1 e2]: executing [e1;e2] and [e2;e1] from [sys]
    reaches the same (normalized, when [normal_form] — the default, as
    in the explorer) set of states, and both orders are executable.
    Used by tests to validate the footprint rule and POR's deferrable
    transitions on concrete reachable states. *)
val commute_at :
  ?normal_form:bool ->
  ('a, 'v, 's) Cimp.System.t ->
  Cimp.System.event ->
  Cimp.System.event ->
  bool
