(* Symmetry + register-liveness canonical fingerprints.

   Identical processes (the mutators of the GC model) are interchangeable:
   permuting them in a global state yields a state with the same future
   behaviour up to the same permutation, and all invariants of interest
   quantify over them symmetrically.  The checker can therefore dedup on
   a canonical orbit representative — here, the one that sorts the
   symmetric pids by a structural key — collapsing up to n! permutations
   of each state into one.

   Orthogonally, a *liveness* canonicalization nulls local registers that
   are dead at the current control point (their value cannot be read
   before being overwritten, and no invariant reads them there), merging
   states that differ only in dead-register junk.

   Both are fingerprint-level only: the checker keeps exploring the
   concrete state it reached, so canonical states are never executed —
   which is what makes the scheme applicable to CIMP states whose
   commands embed closures (pids are baked into request closures, so a
   permuted state could not be built as an executable system anyway).
   The canonical representative is assembled as (control spines, data
   payloads) and hashed with Check.Fingerprint.of_parts, which uses the
   exact mix of of_system. *)

type ('a, 'v, 's) spec = {
  sym_pids : Cimp.System.pid list;
      (* the interchangeable processes; everything else keeps its slot *)
  canon_local : ('a, 'v, 's) Cimp.System.t -> pid:Cimp.System.pid -> 's -> 's;
      (* liveness canonicalization of one process's data at this state;
         must return the argument *physically unchanged* when no rule
         fires (change is detected by [!=]) *)
  key : ('a, 'v, 's) Cimp.System.t -> pid:Cimp.System.pid -> canon:'s -> Stdlib.Obj.t;
      (* structural sort key of a symmetric process: must cover its
         control spine, canonical local data, and every per-process slice
         of shared state (store buffer, work-list, handshake bits, ...) *)
  permute_ok : ('a, 'v, 's) Cimp.System.t -> bool;
      (* is the pid permutation an automorphism at this state?  (The GC
         model's handshake signal loop iterates mutators in index order,
         so states inside that window are excluded.) *)
  rename_shared : perm:(Cimp.System.pid -> Cimp.System.pid) -> pid:Cimp.System.pid -> 's -> 's;
      (* apply the pid renaming to one (canonicalized) data payload:
         per-process slices of shared state move with the permutation;
         identity for payloads that mention no pids *)
}

(* Executable canonical representative: every process's local data with
   its dead registers nulled, pids untouched.  Unlike the permuted state
   assembled inside [canonical_fingerprint] (pure hash fodder — commands
   embed pids in closures, so it could never run), the nulled state is an
   ordinary runnable system, which lets the checkers expand it in place
   of whichever concrete state they happened to reach first.  Physically
   unchanged when no nulling rule fires, and idempotent (nulling rules
   test against the null value, so a second pass fires nothing). *)
let canon_state spec sys =
  let n = Cimp.System.n_procs sys in
  let out = ref sys in
  for p = 0 to n - 1 do
    let d = (Cimp.System.proc sys p).Cimp.Com.data in
    (* spines are control state, unaffected by the data rewrites, so
       reading them from the original [sys] is sound *)
    let c = spec.canon_local sys ~pid:p d in
    if c != d then out := Cimp.System.map_data !out p (fun _ -> c)
  done;
  !out

(* All permutations of a list, for the property tests. *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

(* Canonical fingerprint of [sys] under [spec].  Returns the fingerprint
   plus whether the sort actually permuted anything and whether any
   register was nulled (for the reduction counters). *)
let canonical_fingerprint spec sys =
  let n = Cimp.System.n_procs sys in
  let data p = (Cimp.System.proc sys p).Cimp.Com.data in
  let spine p = Cimp.Com.stack_labels (Cimp.System.proc sys p).Cimp.Com.stack in
  let nulled = ref false in
  let canon =
    Array.init n (fun p ->
        let d = data p in
        let c = spec.canon_local sys ~pid:p d in
        if c != d then nulled := true;
        c)
  in
  (* perm.(old_pid) = canonical slot; src.(slot) = old_pid *)
  let perm = Array.init n Fun.id in
  let src = Array.init n Fun.id in
  let permuted = ref false in
  let sym = Array.of_list spec.sym_pids in
  if Array.length sym > 1 && spec.permute_ok sys then begin
    let order = Array.map (fun p -> (spec.key sys ~pid:p ~canon:canon.(p), p)) sym in
    (* stable, so equal keys keep their pid order and the identity wins
       on fully symmetric states *)
    Array.stable_sort (fun (k1, _) (k2, _) -> Stdlib.compare k1 k2) order;
    Array.iteri
      (fun i (_, p) ->
        let slot = sym.(i) in
        src.(slot) <- p;
        perm.(p) <- slot;
        if p <> slot then permuted := true)
      order
  end;
  let control = List.init n (fun q -> spine src.(q)) in
  let payload =
    List.init n (fun q ->
        Stdlib.Obj.repr (spec.rename_shared ~perm:(fun p -> perm.(p)) ~pid:q canon.(src.(q))))
  in
  (Check.Fingerprint.of_parts ~control ~data:payload, !permuted, !nulled)
