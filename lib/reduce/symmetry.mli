(** Symmetry + register-liveness canonical fingerprints.

    Interchangeable processes are sorted into a canonical order by a
    structural key; local registers that are dead at the current control
    point are nulled.  The sort happens only in the fingerprint the
    checker dedups on (permuted states embed closures, so they could not
    be executed); the nulling additionally yields an {e executable}
    representative ({!canon_state}) that the checkers expand per fresh
    class, making the visited class set scheduling-independent.

    Soundness requires: the symmetric processes run the same program,
    the invariants are invariant under the permutation, [permute_ok]
    excludes every state where the permutation is not an automorphism,
    and [canon_local] nulls only registers no future read or invariant
    can observe before an overwrite.  Liveness rules are stated for
    normal-form rest points: use only with normal-form exploration (the
    checkers' default). *)

type ('a, 'v, 's) spec = {
  sym_pids : Cimp.System.pid list;
  canon_local : ('a, 'v, 's) Cimp.System.t -> pid:Cimp.System.pid -> 's -> 's;
      (** must return its argument physically unchanged when no rule
          fires; change is detected by [!=] *)
  key : ('a, 'v, 's) Cimp.System.t -> pid:Cimp.System.pid -> canon:'s -> Stdlib.Obj.t;
      (** structural sort key: control spine, canonical local data, and
          every per-process slice of shared state *)
  permute_ok : ('a, 'v, 's) Cimp.System.t -> bool;
  rename_shared : perm:(Cimp.System.pid -> Cimp.System.pid) -> pid:Cimp.System.pid -> 's -> 's;
      (** move per-process slices of shared state along the permutation;
          identity for payloads that mention no pids *)
}

(** [canon_state spec sys]: the executable canonical representative —
    [sys] with every process's dead registers nulled, pids untouched.
    Physically equal to [sys] when no nulling rule fires; idempotent;
    preserves {!canonical_fingerprint}. *)
val canon_state : ('a, 'v, 's) spec -> ('a, 'v, 's) Cimp.System.t -> ('a, 'v, 's) Cimp.System.t

(** All permutations of a list (property tests; factorial blowup). *)
val permutations : 'a list -> 'a list list

(** [canonical_fingerprint spec sys] = [(fp, permuted, nulled)]: the
    fingerprint of the canonical representative, whether the sort moved
    any process, and whether any dead register was nulled. *)
val canonical_fingerprint :
  ('a, 'v, 's) spec -> ('a, 'v, 's) Cimp.System.t -> Check.Fingerprint.t * bool * bool
