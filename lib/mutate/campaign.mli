(** The mutation-testing campaign runner.

    A campaign checks each mutant against a suite of small scenarios (the
    checking analogue of a test suite), cheapest first, and classifies it
    as killed (naming the violated invariant and failing conjunct, the
    states and wall-time to detection, and the shortest-counterexample
    length), survived (budget exhausted, or every applicable scenario
    closed — an equivalence proof at these bounds), or errored.  Results
    stream as ["campaign"] JSONL records through [lib/obs] and render as
    a kill-matrix via {!Kill_matrix}. *)

(** A campaign mutant: a named configuration tweak.  Operator mutants come
    from {!Operators}; the hand-written ablations of
    {!Core.Variants.ablations} participate as ["variant:*"] mutants. *)
type mutant = {
  name : string;
  operator : string;  (** operator family, or ["variant"] *)
  site : string;
  doc : string;
  rationale : string;
  expected_equivalent : bool;
  applies : Core.Config.t -> bool;
  tweak : Core.Config.t -> Core.Config.t;
}

val of_operator : Operators.t -> mutant
val of_variant : Core.Variants.t -> mutant

type kill = {
  invariant : string;  (** the violated invariant *)
  conjunct : string;
      (** the failing conjunct, recomputed from the invariant's witness on
          the counterexample's final state *)
  scenario : string;  (** the killing scenario's label *)
  states_to_kill : int;
  time_to_kill : float;
  ce_length : int;
}

type classification =
  | Killed of kill
  | Survived of { closed : bool }
      (** [closed]: every applicable scenario closed its state space
          (an equivalence proof at these bounds) rather than running out
          of budget *)
  | Errored of string

type run = { run_scenario : string; run_states : int; run_elapsed : float; run_truncated : bool }

type entry = {
  mutant : mutant;
  classification : classification;
  states_total : int;  (** states explored across all runs *)
  elapsed_total : float;
  runs : run list;
}

type outcome = {
  entries : entry list;
  scenario_labels : string list;
  budget : int;
  jobs : int;
  reduce : Reduce.Mode.t;
  invariants : Core.Invariants.t list;  (** kill-matrix columns *)
}

val scenarios : ?muts:int -> unit -> Core.Scenario.t list
(** The default scenario suite, cheapest first; together the four kill
    all five hand-written ablations and arm every operator family. *)

val default_mutants : ?muts:int -> unit -> mutant list
(** The whole operator catalogue plus the five ablations. *)

val run :
  ?obs:Obs.Reporter.t ->
  ?budget:int ->
  ?jobs:int ->
  ?reduce:Reduce.Mode.t ->
  ?scenarios:Core.Scenario.t list ->
  ?certificates:string ->
  mutants:mutant list ->
  unit ->
  outcome
(** Run the campaign: each mutant against each applicable scenario in
    order, stopping at the first kill.  [budget] is the per-run state cap
    (default 300k); [reduce] defaults to {!Reduce.Mode.All}.  One
    ["campaign"] record per mutant goes to [obs].

    With [certificates] set, each [Survived { closed = true }] mutant's
    equivalence claim is closed by certificate: per applicable scenario
    a deterministic sweep re-derives the reach table and writes a
    certificate into [certificates]/(mutant)/(scenario), validatable by
    [gcmodel recheck] (the header embeds a run configuration that
    rebuilds the mutated instance via [--mutant]).  One ["certificate"]
    record per written — or failed — certificate goes to [obs]; a
    scenario whose configuration tweak is not expressible in the raw
    explore flags yields a certificate recheck rejects with a
    config-hash mismatch (loud failure, never a wrong PASS). *)

val classification_fields : classification -> (string * Obs.Json.t) list
(** The classification's JSON fields, shared between the JSONL records
    and {!Kill_matrix.to_json}. *)

val triage_stub : entry -> string
(** An explain-style markdown stub for a surviving mutant: what ran, the
    equivalent-mutant analysis or the adequacy-gap hypothesis, and the
    commands that push the investigation further. *)
