(** Generators for the two reference manuals.

    Pure functions of the catalogues — no clocks, no environment — so the
    output is byte-stable; CI regenerates and diffs against the committed
    [docs/INVARIANTS.md] / [docs/VARIANTS.md], and the test suite does the
    same locally. *)

val invariants_md : unit -> string
(** [docs/INVARIANTS.md]: every invariant's kind, paper locus, informal
    statement, conjunct table, and code location — rendered from the
    [paper] / [conjuncts] metadata on {!Core.Invariants.t}. *)

val variants_md : unit -> string
(** [docs/VARIANTS.md]: every {!Core.Variants.t} (expectation,
    description, how to run — ablations get their minimal-witness command
    line) and the whole mutation-operator catalogue with
    expected-equivalent rationales. *)

val certificates_md : unit -> string
(** [docs/CERTIFICATES.md]: the normative certificate format spec —
    directory layout, header fields, table encoding, the closure
    obligations and what discharges each, the determinism and trust
    models, and the command cheat-sheet.  Rendered against the living
    constants ({!Certify.Certificate.format_tag}, the invariant count),
    so format drift breaks the CI diff. *)
