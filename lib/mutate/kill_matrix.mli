(** Campaign summary artifacts: aggregate statistics, the JSON report
    ([schema = "relaxing-safely-campaign-v1"]), and a self-contained HTML
    kill-matrix (mutant rows &times; invariant columns, cells naming the
    failing conjunct) built on {!Explain.Report.html_page}.

    The headline adequacy number is computed over the {e armed} fence and
    barrier mutants — the sites {!Operators} marks load-bearing.
    Expected-equivalent mutants are scored separately: a kill there
    falsifies the buffer-emptiness analysis and shows up under
    [unexpected_kills], never in the headline rate. *)

type family_row = {
  family : string;
  total : int;
  armed : int;  (** mutants not predicted equivalent *)
  killed : int;
  armed_killed : int;
  survived_closed : int;  (** survived with every applicable run closed *)
  survived_open : int;  (** survived with some run budget-truncated *)
  errored : int;
}

type stats = {
  total : int;
  killed : int;
  survived : int;
  errored : int;
  armed : int;
  armed_killed : int;
  ablations_total : int;  (** the ["variant:*"] mutants *)
  ablations_killed : int;
  headline_armed : int;  (** armed drop-fence + elide-barrier mutants *)
  headline_killed : int;
  families : family_row list;  (** catalogue order; only non-empty families *)
  unexpected_kills : string list;  (** predicted equivalent, yet killed *)
  unexpected_survivors : string list;  (** armed, yet not killed *)
}

val stats : Campaign.outcome -> stats

val rate : int -> int -> float
(** [rate num den] as a fraction; [1.0] when [den = 0] (an empty
    population trivially meets any kill-rate floor). *)

val summary : Campaign.outcome -> string
(** Plain-text summary for the CLI. *)

val stats_json : stats -> Obs.Json.t
(** The summary block alone — embedded in {!to_json} and in the bench
    report's campaign group. *)

val to_json : Campaign.outcome -> Obs.Json.t
val write_json : string -> Campaign.outcome -> unit

val to_html : Campaign.outcome -> string
(** Self-contained HTML page (inline CSS, no external assets): summary
    tables, unexpected outcomes, the kill-matrix, and survivor triage
    stubs inline. *)

val write_html : string -> Campaign.outcome -> unit
