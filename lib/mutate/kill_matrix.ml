(* The campaign's summary artifacts: aggregate statistics, a JSON report,
   and a self-contained HTML kill-matrix.

   The matrix has one row per mutant and one column per invariant (the
   full catalogue, so absent columns are visible as absence); a cell names
   the failing conjunct when that mutant's kill violated that invariant.
   The headline adequacy number is computed over the *armed* fence and
   barrier mutants — the sites the static analysis in [Operators] marks
   load-bearing; expected-equivalent mutants are scored separately (a kill
   there is an "unexpected outcome" that falsifies the analysis, and is
   reported as such rather than celebrated). *)

type family_row = {
  family : string;
  total : int;
  armed : int;  (* not expected_equivalent *)
  killed : int;
  armed_killed : int;
  survived_closed : int;
  survived_open : int;
  errored : int;
}

type stats = {
  total : int;
  killed : int;
  survived : int;
  errored : int;
  armed : int;
  armed_killed : int;
  ablations_total : int;
  ablations_killed : int;
  headline_armed : int;
  headline_killed : int;
  families : family_row list;
  unexpected_kills : string list;
  unexpected_survivors : string list;
}

let is_killed (e : Campaign.entry) =
  match e.Campaign.classification with Campaign.Killed _ -> true | _ -> false

(* drop-fence + elide-barrier: the families the acceptance criterion
   ("single-fence / single-barrier mutants") ranges over. *)
let headline_family f = f = "drop-fence" || f = "elide-barrier"

let family_stats fam entries =
  let es = List.filter (fun (e : Campaign.entry) -> e.Campaign.mutant.Campaign.operator = fam) entries in
  let count p = List.length (List.filter p es) in
  {
    family = fam;
    total = List.length es;
    armed = count (fun e -> not e.Campaign.mutant.Campaign.expected_equivalent);
    killed = count is_killed;
    armed_killed = count (fun e -> is_killed e && not e.Campaign.mutant.Campaign.expected_equivalent);
    survived_closed =
      count (fun e ->
          match e.Campaign.classification with Campaign.Survived { closed } -> closed | _ -> false);
    survived_open =
      count (fun e ->
          match e.Campaign.classification with
          | Campaign.Survived { closed } -> not closed
          | _ -> false);
    errored =
      count (fun e ->
          match e.Campaign.classification with Campaign.Errored _ -> true | _ -> false);
  }

let stats (o : Campaign.outcome) =
  let entries = o.Campaign.entries in
  let count p = List.length (List.filter p entries) in
  let fams =
    (* catalogue order, then "variant"; only families that fielded mutants *)
    List.filter
      (fun (r : family_row) -> r.total > 0)
      (List.map (fun f -> family_stats f entries) (Operators.families @ [ "variant" ]))
  in
  let armed (e : Campaign.entry) = not e.Campaign.mutant.Campaign.expected_equivalent in
  let headline (e : Campaign.entry) =
    headline_family e.Campaign.mutant.Campaign.operator && armed e
  in
  let ablation (e : Campaign.entry) = e.Campaign.mutant.Campaign.operator = "variant" in
  {
    total = List.length entries;
    killed = count is_killed;
    survived =
      count (fun e ->
          match e.Campaign.classification with Campaign.Survived _ -> true | _ -> false);
    errored =
      count (fun e ->
          match e.Campaign.classification with Campaign.Errored _ -> true | _ -> false);
    armed = count armed;
    armed_killed = count (fun e -> armed e && is_killed e);
    ablations_total = count ablation;
    ablations_killed = count (fun e -> ablation e && is_killed e);
    headline_armed = count headline;
    headline_killed = count (fun e -> headline e && is_killed e);
    families = fams;
    unexpected_kills =
      List.filter_map
        (fun (e : Campaign.entry) ->
          if e.Campaign.mutant.Campaign.expected_equivalent && is_killed e then
            Some e.Campaign.mutant.Campaign.name
          else None)
        entries;
    unexpected_survivors =
      List.filter_map
        (fun (e : Campaign.entry) ->
          if (not e.Campaign.mutant.Campaign.expected_equivalent) && not (is_killed e) then
            Some e.Campaign.mutant.Campaign.name
          else None)
        entries;
  }

let rate num den = if den = 0 then 1.0 else float_of_int num /. float_of_int den

(* -- JSON ------------------------------------------------------------------ *)

let entry_json (e : Campaign.entry) =
  let m = e.Campaign.mutant in
  Obs.Json.Obj
    ([
       ("mutant", Obs.Json.String m.Campaign.name);
       ("operator", Obs.Json.String m.Campaign.operator);
       ("site", Obs.Json.String m.Campaign.site);
       ("doc", Obs.Json.String m.Campaign.doc);
       ("expected_equivalent", Obs.Json.Bool m.Campaign.expected_equivalent);
     ]
    @ Campaign.classification_fields e.Campaign.classification
    @ [
        ("states_total", Obs.Json.Int e.Campaign.states_total);
        ("elapsed_total", Obs.Json.Float e.Campaign.elapsed_total);
        ( "runs",
          Obs.Json.List
            (List.map
               (fun (r : Campaign.run) ->
                 Obs.Json.Obj
                   [
                     ("scenario", Obs.Json.String r.Campaign.run_scenario);
                     ("states", Obs.Json.Int r.Campaign.run_states);
                     ("elapsed", Obs.Json.Float r.Campaign.run_elapsed);
                     ("truncated", Obs.Json.Bool r.Campaign.run_truncated);
                   ])
               e.Campaign.runs) );
      ])

let matrix_row invariants (e : Campaign.entry) =
  let cell (inv : Core.Invariants.t) =
    match e.Campaign.classification with
    | Campaign.Killed k when k.Campaign.invariant = inv.Core.Invariants.name ->
      (inv.Core.Invariants.name, Obs.Json.String k.Campaign.conjunct)
    | _ -> (inv.Core.Invariants.name, Obs.Json.Null)
  in
  Obs.Json.Obj
    [
      ("mutant", Obs.Json.String e.Campaign.mutant.Campaign.name);
      ("cells", Obs.Json.Obj (List.map cell invariants));
    ]

let stats_json s =
  let fam r =
    Obs.Json.Obj
      [
        ("family", Obs.Json.String r.family);
        ("total", Obs.Json.Int r.total);
        ("armed", Obs.Json.Int r.armed);
        ("killed", Obs.Json.Int r.killed);
        ("armed_killed", Obs.Json.Int r.armed_killed);
        ("survived_closed", Obs.Json.Int r.survived_closed);
        ("survived_open", Obs.Json.Int r.survived_open);
        ("errored", Obs.Json.Int r.errored);
      ]
  in
  Obs.Json.Obj
    [
      ("total", Obs.Json.Int s.total);
      ("killed", Obs.Json.Int s.killed);
      ("survived", Obs.Json.Int s.survived);
      ("errored", Obs.Json.Int s.errored);
      ("armed", Obs.Json.Int s.armed);
      ("armed_killed", Obs.Json.Int s.armed_killed);
      ("armed_kill_rate", Obs.Json.Float (rate s.armed_killed s.armed));
      ("ablations_total", Obs.Json.Int s.ablations_total);
      ("ablations_killed", Obs.Json.Int s.ablations_killed);
      ("headline_armed", Obs.Json.Int s.headline_armed);
      ("headline_killed", Obs.Json.Int s.headline_killed);
      ("headline_kill_rate", Obs.Json.Float (rate s.headline_killed s.headline_armed));
      ("families", Obs.Json.List (List.map fam s.families));
      ("unexpected_kills", Obs.Json.List (List.map (fun n -> Obs.Json.String n) s.unexpected_kills));
      ( "unexpected_survivors",
        Obs.Json.List (List.map (fun n -> Obs.Json.String n) s.unexpected_survivors) );
    ]

let to_json (o : Campaign.outcome) =
  let s = stats o in
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "relaxing-safely-campaign-v1");
      ("budget", Obs.Json.Int o.Campaign.budget);
      ("jobs", Obs.Json.Int o.Campaign.jobs);
      ("reduce", Obs.Json.String (Reduce.Mode.to_string o.Campaign.reduce));
      ( "scenarios",
        Obs.Json.List (List.map (fun l -> Obs.Json.String l) o.Campaign.scenario_labels) );
      ("summary", stats_json s);
      ("entries", Obs.Json.List (List.map entry_json o.Campaign.entries));
      ( "matrix",
        Obs.Json.List (List.map (matrix_row o.Campaign.invariants) o.Campaign.entries) );
    ]

let write_json path o =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (Obs.Json.to_string_pretty (to_json o));
      Out_channel.output_string oc "\n")

(* -- Text summary ---------------------------------------------------------- *)

let summary (o : Campaign.outcome) =
  let s = stats o in
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "campaign: %d mutants — %d killed, %d survived, %d errored\n" s.total s.killed s.survived
    s.errored;
  add "  armed (non-equivalent): %d/%d killed (%.0f%%)\n" s.armed_killed s.armed
    (100. *. rate s.armed_killed s.armed);
  add "  fence+barrier armed:    %d/%d killed (%.0f%%)\n" s.headline_killed s.headline_armed
    (100. *. rate s.headline_killed s.headline_armed);
  add "  ablations:              %d/%d killed\n" s.ablations_killed s.ablations_total;
  List.iter
    (fun r ->
      add "  %-16s %2d mutants, %2d armed, %2d killed, %d closed, %d open, %d errors\n" r.family
        r.total r.armed r.killed r.survived_closed r.survived_open r.errored)
    s.families;
  List.iter (fun n -> add "  UNEXPECTED KILL (expected equivalent): %s\n" n) s.unexpected_kills;
  List.iter (fun n -> add "  UNEXPECTED SURVIVOR (armed): %s\n" n) s.unexpected_survivors;
  Buffer.contents b

(* -- HTML ------------------------------------------------------------------ *)

let matrix_style =
  "table{border-collapse:collapse;margin:1em 0}\n\
   th,td{border:1px solid #ccc;padding:3px 7px;font-size:13px}\n\
   th{background:#f0f0f3;text-align:left}\n\
   th.col{writing-mode:vertical-rl;transform:rotate(180deg);text-align:left;\n\
   font-weight:normal;font-size:11px;padding:6px 2px}\n\
   td.kill{background:#c62828;color:#fff;text-align:center;font-weight:bold}\n\
   td.none{background:#fafafa}\n\
   tr.equiv td.name{color:#888;font-style:italic}\n\
   td.survived{background:#ffe082;text-align:center}\n\
   td.closed{background:#a5d6a7;text-align:center}\n\
   td.error{background:#9575cd;color:#fff;text-align:center}\n\
   .stub{background:#f7f7f9;border:1px solid #ddd;border-radius:4px;\n\
   padding:0.8em 1em;margin:0.8em 0;white-space:pre-wrap;font-family:monospace;\n\
   font-size:12px}\n"

let esc = Explain.Report.html_escape

let to_html (o : Campaign.outcome) =
  let s = stats o in
  let b = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "<h1>Mutation campaign kill-matrix</h1>\n";
  add "<p>budget %d states/run &middot; jobs %d &middot; reduce %s &middot; scenarios: %s</p>\n"
    o.Campaign.budget o.Campaign.jobs
    (Reduce.Mode.to_string o.Campaign.reduce)
    (esc (String.concat ", " o.Campaign.scenario_labels));
  add "<h2>Summary</h2>\n<table>\n";
  add "<tr><th>population</th><th>killed</th><th>total</th><th>rate</th></tr>\n";
  add "<tr><td>all mutants</td><td>%d</td><td>%d</td><td>%.0f%%</td></tr>\n" s.killed s.total
    (100. *. rate s.killed s.total);
  add "<tr><td>armed (non-equivalent)</td><td>%d</td><td>%d</td><td>%.0f%%</td></tr>\n"
    s.armed_killed s.armed
    (100. *. rate s.armed_killed s.armed);
  add "<tr><td>fence+barrier armed</td><td>%d</td><td>%d</td><td>%.0f%%</td></tr>\n"
    s.headline_killed s.headline_armed
    (100. *. rate s.headline_killed s.headline_armed);
  add "<tr><td>hand-written ablations</td><td>%d</td><td>%d</td><td>%.0f%%</td></tr>\n"
    s.ablations_killed s.ablations_total
    (100. *. rate s.ablations_killed s.ablations_total);
  add "</table>\n";
  if s.unexpected_kills <> [] || s.unexpected_survivors <> [] then begin
    add "<h2>Unexpected outcomes</h2>\n<ul>\n";
    List.iter
      (fun n ->
        add
          "<li><b>%s</b> was predicted equivalent but was killed — the buffer-emptiness \
           analysis is wrong at this site.</li>\n"
          (esc n))
      s.unexpected_kills;
    List.iter
      (fun n -> add "<li><b>%s</b> was armed but survived — see the triage below.</li>\n" (esc n))
      s.unexpected_survivors;
    add "</ul>\n"
  end;
  (* the matrix proper: only invariant columns that registered a kill, to
     keep the table readable; the JSON report has the full grid *)
  let killed_invs =
    List.filter
      (fun (inv : Core.Invariants.t) ->
        List.exists
          (fun (e : Campaign.entry) ->
            match e.Campaign.classification with
            | Campaign.Killed k -> k.Campaign.invariant = inv.Core.Invariants.name
            | _ -> false)
          o.Campaign.entries)
      o.Campaign.invariants
  in
  add "<h2>Kill-matrix</h2>\n";
  add
    "<p>Rows: mutants (<i>italic</i> = predicted equivalent).  Columns: the invariants that \
     registered kills (of %d checked).  A red cell names the failing conjunct; the verdict \
     column distinguishes closed survivors (state space exhausted — equivalence at these \
     bounds) from open ones (budget exhausted).</p>\n"
    (List.length o.Campaign.invariants);
  add "<table>\n<tr><th>mutant</th><th>verdict</th>";
  List.iter (fun (inv : Core.Invariants.t) -> add "<th class=\"col\">%s</th>" (esc inv.Core.Invariants.name)) killed_invs;
  add "</tr>\n";
  List.iter
    (fun (e : Campaign.entry) ->
      let m = e.Campaign.mutant in
      add "<tr%s><td class=\"name\" title=\"%s\">%s</td>"
        (if m.Campaign.expected_equivalent then " class=\"equiv\"" else "")
        (esc m.Campaign.doc) (esc m.Campaign.name);
      (match e.Campaign.classification with
      | Campaign.Killed k ->
        add "<td class=\"kill\" title=\"scenario %s, %d states, %.2fs\">killed (ce %d)</td>"
          (esc k.Campaign.scenario) k.Campaign.states_to_kill k.Campaign.time_to_kill
          k.Campaign.ce_length
      | Campaign.Survived { closed = true } -> add "<td class=\"closed\">survived (closed)</td>"
      | Campaign.Survived { closed = false } -> add "<td class=\"survived\">survived (budget)</td>"
      | Campaign.Errored msg -> add "<td class=\"error\" title=\"%s\">error</td>" (esc msg));
      List.iter
        (fun (inv : Core.Invariants.t) ->
          match e.Campaign.classification with
          | Campaign.Killed k when k.Campaign.invariant = inv.Core.Invariants.name ->
            add "<td class=\"kill\">%s</td>" (esc k.Campaign.conjunct)
          | _ -> add "<td class=\"none\"></td>")
        killed_invs;
      add "</tr>\n")
    o.Campaign.entries;
  add "</table>\n";
  (* survivor triage stubs, inline *)
  let survivors =
    List.filter
      (fun (e : Campaign.entry) ->
        match e.Campaign.classification with Campaign.Survived _ -> true | _ -> false)
      o.Campaign.entries
  in
  if survivors <> [] then begin
    add "<h2>Survivor triage</h2>\n";
    List.iter
      (fun e -> add "<div class=\"stub\">%s</div>\n" (esc (Campaign.triage_stub e)))
      survivors
  end;
  Explain.Report.html_page ~extra_style:matrix_style ~title:"Mutation campaign kill-matrix"
    (Buffer.contents b)

let write_html path o =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc (to_html o))
