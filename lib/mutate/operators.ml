(* The catalogue of syntactic mutation operators: every single-site
   perturbation of the model programs the campaign can enumerate, with the
   static analysis of which sites are load-bearing.

   A mutant is a [Config.mutation] plus bookkeeping: a stable name, the
   operator family, the mutated program point, and an [expected_equivalent]
   verdict with its rationale.  Expected-equivalent mutants are the fence
   sites where the owning process's store buffer is provably empty in every
   reachable state at that point — an MFENCE there is a no-op (Sys serves
   Req_mfence exactly when the buffer is empty), so dropping it cannot
   change the transition system.  The campaign still runs them: a kill on
   one would falsify the analysis (and the TSO encoding), which is itself a
   cross-check.

   The armed (non-equivalent) drop-fence sites come out as exactly the four
   store fences in front of the initialization handshakes — the four
   MFENCEs Section 2.4 requires of the pthread primitives. *)

type t = {
  name : string;  (* stable mutant id: "<operator>:<site>" *)
  operator : string;  (* operator family, one of [families] *)
  site : string;  (* the mutated program point (label or prefix) *)
  doc : string;
  expected_equivalent : bool;
  rationale : string;  (* why the site is load-bearing / provably inert *)
  mutation : Core.Config.mutation;
}

let families =
  [
    "drop-fence"; "weaken-cas"; "elide-barrier"; "skip-hs-wait"; "swap-mark-loads";
    "alloc-color-off";
  ]

let make operator site doc ~equiv ~why mutation =
  {
    name = Core.Config.mutation_name mutation;
    operator;
    site;
    doc;
    expected_equivalent = equiv;
    rationale = why;
    mutation;
  }

let tweak m cfg = { cfg with Core.Config.mutation = Some m.mutation }

(* The handshake rounds present under [cfg], in protocol order. *)
let hs_tags (cfg : Core.Config.t) =
  if cfg.skip_init_handshakes then [ "hs1"; "hs4"; "hs-roots"; "hs-work" ]
  else [ "hs1"; "hs2"; "hs3"; "hs4"; "hs-roots"; "hs-work" ]

(* Mark-operation expansions present under [cfg]: (prefix, description).
   The collector's scan loop and the mutator's root marking always exist;
   the barrier expansions only when the barrier (and the store operation
   hosting it) is in the program. *)
let mark_sites (cfg : Core.Config.t) =
  [ ("gc:mark", "the collector's field-scan mark (Fig. 2 line 28)") ]
  @ (if cfg.deletion_barrier && cfg.mut_store then
       [ ("mut:bar-del", "the deletion barrier's mark (Fig. 6 line 8)") ]
     else [])
  @ (if cfg.insertion_barrier && cfg.mut_store then
       [ ("mut:bar-ins", "the insertion barrier's mark (Fig. 6 line 9)") ]
     else [])
  @ [ ("mut:root-mark", "the get-roots handshake's root mark (Fig. 2 line 17)") ]

let drop_fence_mutants (cfg : Core.Config.t) =
  if not cfg.handshake_fences then []
  else begin
    let gc tag side =
      let lbl = Printf.sprintf "gc:%s:%s-fence" tag side in
      let equiv, why =
        match side with
        | "load" ->
          ( true,
            "the collector issues no buffered write between this round's store fence and \
             its end, so its buffer is provably empty here" )
        | _ -> (
          match tag with
          | "hs1" when cfg.max_cycles = 1 ->
            ( true,
              "armed only across a cycle boundary (it flushes the previous cycle's \
               phase := Idle write); with a single bounded cycle the buffer is empty here" )
          | "hs1" ->
            ( false,
              "flushes the previous cycle's phase := Idle write before the idle-sync round \
               (kills via phase-span-nop1 from the second cycle on)" )
          | "hs2" ->
            (false, "flushes the sense flip f_M write before the round (Section 2.4 MFENCE)")
          | "hs3" ->
            (false, "flushes the phase := Init write before the round (Section 2.4 MFENCE)")
          | "hs4" ->
            ( false,
              "flushes the phase := Mark and f_A := f_M writes before the round \
               (Section 2.4 MFENCE)" )
          | _ ->
            ( true,
              "the preceding handshake's fences already drained the buffer and the \
               collector's CAS retires (unlock drains) during marking, so the buffer is \
               provably empty here" ))
      in
      make "drop-fence" lbl
        (Printf.sprintf "drop the collector's %s fence of the %s round" side tag)
        ~equiv ~why
        (Core.Config.Drop_fence lbl)
    in
    let mut side =
      let lbl = Printf.sprintf "mut:hs-%s-fence" side in
      let why =
        match side with
        | "load" ->
          "only delays the flush of the mutator's pending field writes: the first CAS \
           unlock inside the round drains them in the same order, and the collector reads \
           no field during a round"
        | _ ->
          "the round's work ends in CAS unlocks (which drain) or does not store at all, \
           and the entry load fence already drained the pre-round writes"
      in
      make "drop-fence" lbl
        (Printf.sprintf "drop the mutator's handshake %s fence" side)
        ~equiv:true ~why
        (Core.Config.Drop_fence lbl)
    in
    List.concat_map (fun tag -> [ gc tag "store"; gc tag "load" ]) (hs_tags cfg)
    @ [ mut "load"; mut "store" ]
  end

let weaken_cas_mutants (cfg : Core.Config.t) =
  if not cfg.cas_mark then []
  else
    List.map
      (fun (prefix, what) ->
        make "weaken-cas" prefix
          (Printf.sprintf "drop the LOCK around %s, leaving an unlocked test-and-set" what)
          ~equiv:false
          ~why:
            "two markers can both win the race on one reference and grey it twice \
             (grey-ownership-exclusive); marks stay idempotent so safety may survive"
          (Core.Config.Weaken_cas prefix))
      (mark_sites cfg)

let elide_barrier_mutants (cfg : Core.Config.t) =
  (if cfg.deletion_barrier && cfg.mut_store then
     [
       make "elide-barrier" "del" "skip the deletion barrier instance (Fig. 6 line 8)"
         ~equiv:false
         ~why:
           "a post-snapshot overwrite of an unmarked reference hides it from the wavefront \
            (deletions-marked, then the Fig. 1 safety violation)"
         (Core.Config.Elide_barrier "del");
     ]
   else [])
  @
  if cfg.insertion_barrier && cfg.mut_store then
    [
      make "elide-barrier" "ins" "skip the insertion barrier instance (Fig. 6 line 9)"
        ~equiv:false
        ~why:
          "a store behind the wavefront installs an unmarked reference into a black object \
           (insertions-marked, then the safety violation)"
        (Core.Config.Elide_barrier "ins");
    ]
  else []

let skip_hs_wait_mutants (cfg : Core.Config.t) =
  List.map
    (fun tag ->
      let equiv, why =
        match tag with
        | "hs-roots" ->
          ( false,
            "the collector sweeps without waiting for the mutators' roots: live objects \
             are freed (free_only_garbage)" )
        | "hs-work" ->
          ( false,
            "the collector can exit the mark loop while a mutator still holds grey work \
             and sweep it" )
        | "hs2" | "hs3" ->
          ( true,
            "the middle nop rounds only order the sense flip / phase write against the \
             mutators' next round; Observation 1 removes both rounds wholesale on TSO, and \
             rushing the wait is strictly weaker than removing the round (confirmed: the \
             campaign closes these state spaces with no violation)" )
        | _ ->
          ( false,
            "degenerates the rendezvous to a broadcast: the collector runs ahead into a \
             phase some mutator has not acknowledged (kills via the phase-span conjuncts \
             or the snapshot invariant)" )
      in
      make "skip-hs-wait" tag
        (Printf.sprintf "signal the %s round but do not wait for the acks" tag)
        ~equiv ~why
        (Core.Config.Skip_hs_wait tag))
    (hs_tags cfg)

let swap_mark_loads_mutants (cfg : Core.Config.t) =
  List.map
    (fun (prefix, what) ->
      make "swap-mark-loads" prefix
        (Printf.sprintf "in %s, load the mark flag before f_M (Fig. 5 lines 2-3 reversed)" what)
        ~equiv:true
        ~why:
          "the swapped order reads f_M strictly later, so the sense the CAS marks with is \
           at least as fresh as in the paper's order, and the LOCK'd compare re-reads the \
           flag at commit; the paper's order is a convention, not load-bearing (confirmed: \
           the campaign closes these state spaces with no violation)"
        (Core.Config.Swap_mark_loads prefix))
    (mark_sites cfg)

let alloc_color_mutants (cfg : Core.Config.t) =
  if not cfg.mut_alloc then []
  else
    [
      make "alloc-color-off" "mut:alloc" "allocate with the opposite of the allocation color"
        ~equiv:false
        ~why:
          "objects allocated during marking come out white and are swept while rooted \
           (the alloc-white ablation at single-site grain)"
        Core.Config.Alloc_color_off;
    ]

let all cfg =
  drop_fence_mutants cfg @ weaken_cas_mutants cfg @ elide_barrier_mutants cfg
  @ skip_hs_wait_mutants cfg @ swap_mark_loads_mutants cfg @ alloc_color_mutants cfg

let of_family cfg fam = List.filter (fun m -> m.operator = fam) (all cfg)
let by_name cfg n = List.find_opt (fun m -> m.name = n) (all cfg)

(* Is [m]'s site present in the programs built from [cfg]?  Scenario
   configurations vary the op repertoire and handshake structure, so a
   mutant enumerated against one configuration can be inert on another;
   the campaign skips those runs rather than exploring a baseline space. *)
let applies m (cfg : Core.Config.t) =
  match m.mutation with
  | Core.Config.Drop_fence lbl ->
    cfg.handshake_fences
    && (String.length lbl < 3 || String.sub lbl 0 3 <> "gc:"
        || List.exists (fun tag -> lbl = "gc:" ^ tag ^ ":store-fence" || lbl = "gc:" ^ tag ^ ":load-fence") (hs_tags cfg))
  | Core.Config.Weaken_cas p -> cfg.cas_mark && List.mem_assoc p (mark_sites cfg)
  | Core.Config.Swap_mark_loads p -> List.mem_assoc p (mark_sites cfg)
  | Core.Config.Elide_barrier "del" -> cfg.deletion_barrier && cfg.mut_store
  | Core.Config.Elide_barrier _ -> cfg.insertion_barrier && cfg.mut_store
  | Core.Config.Skip_hs_wait tag -> List.mem tag (hs_tags cfg)
  | Core.Config.Alloc_color_off -> cfg.mut_alloc
