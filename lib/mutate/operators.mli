(** The catalogue of syntactic mutation operators over the model programs.

    Each mutant perturbs exactly one program point — drop one MFENCE,
    unlock one CAS, skip one barrier instance, rush one handshake wait,
    reorder one mark operation's first two loads, flip the allocation
    color — and is an ordinary {!Core.Config.t} tweak, so it composes with
    {!Core.Variants.t} and with the reduction subsystem.

    The enumeration also carries the static analysis of which sites are
    load-bearing: [expected_equivalent] marks the sites where the mutation
    provably (or, for the Observation-1-adjacent handshake waits and the
    mark-load swap, arguably — and confirmed by closed campaign runs)
    cannot change the observable transition system.  For fences that means
    the owning process's store buffer is empty in every reachable state at
    that point, so the MFENCE is a no-op.  The armed drop-fence sites come
    out as exactly the four store fences in front of the initialization
    handshakes — the four MFENCEs the paper's Section 2.4 requires. *)

type t = {
  name : string;  (** stable mutant id: ["<operator>:<site>"] *)
  operator : string;  (** operator family, one of {!families} *)
  site : string;  (** the mutated program point (label or prefix) *)
  doc : string;  (** one-line description of the perturbation *)
  expected_equivalent : bool;
      (** provably inert at this configuration: the campaign expects a
          survivor, and a kill falsifies the analysis *)
  rationale : string;  (** why the site is load-bearing / provably inert *)
  mutation : Core.Config.mutation;
}

val families : string list

val tweak : t -> Core.Config.t -> Core.Config.t
(** Arm the mutant: set [cfg.mutation]. *)

val all : Core.Config.t -> t list
(** Every mutant applicable to the programs built from this
    configuration, in catalogue order. *)

val of_family : Core.Config.t -> string -> t list
val by_name : Core.Config.t -> string -> t option

val applies : t -> Core.Config.t -> bool
(** Is the mutated program point present in the programs built from
    [cfg]?  Scenario configurations vary the op repertoire, so a mutant
    enumerated against one configuration can be inert on another; the
    campaign skips those runs. *)
