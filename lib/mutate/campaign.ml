(* The mutation-testing campaign runner.

   A campaign checks each mutant against a suite of small scenarios (the
   checking analogue of a test suite), cheapest first, and classifies it:

   - killed: some scenario's exploration found a violation.  The record
     names the violated invariant AND the failing conjunct (recomputed from
     the witness on the trace's final state), the states and wall-time to
     detection, and the counterexample length — BFS order makes it a
     shortest one.
   - survived: every applicable scenario ran out without a violation.
     [closed = true] means they all closed their state spaces (a proof of
     equivalence at these bounds); [closed = false] means some run hit the
     state budget, so the verdict is "survived (budget exhausted)".
   - errored: the mutant broke the model (an exception during
     construction or exploration) — a campaign bug, not a verdict.

   Runs reuse the parallel explorer with reduction: mutations live in the
   shared program text, identically across mutator pids, so the symmetry
   and POR arguments of lib/reduce carry over unchanged. *)

type mutant = {
  name : string;
  operator : string;
  site : string;
  doc : string;
  rationale : string;
  expected_equivalent : bool;
  applies : Core.Config.t -> bool;
  tweak : Core.Config.t -> Core.Config.t;
}

let of_operator (op : Operators.t) =
  {
    name = op.Operators.name;
    operator = op.Operators.operator;
    site = op.Operators.site;
    doc = op.Operators.doc;
    rationale = op.Operators.rationale;
    expected_equivalent = op.Operators.expected_equivalent;
    applies = Operators.applies op;
    tweak = Operators.tweak op;
  }

let of_variant (v : Core.Variants.t) =
  {
    name = "variant:" ^ v.Core.Variants.name;
    operator = "variant";
    site = v.Core.Variants.name;
    doc = v.Core.Variants.description;
    rationale = v.Core.Variants.description;
    expected_equivalent = false;
    applies = (fun _ -> true);
    tweak = v.Core.Variants.tweak;
  }

type kill = {
  invariant : string;
  conjunct : string;
  scenario : string;
  states_to_kill : int;
  time_to_kill : float;
  ce_length : int;
}

type classification = Killed of kill | Survived of { closed : bool } | Errored of string

type run = { run_scenario : string; run_states : int; run_elapsed : float; run_truncated : bool }

type entry = {
  mutant : mutant;
  classification : classification;
  states_total : int;
  elapsed_total : float;
  runs : run list;
}

type outcome = {
  entries : entry list;
  scenario_labels : string list;
  budget : int;
  jobs : int;
  reduce : Reduce.Mode.t;
  invariants : Core.Invariants.t list;  (* kill-matrix columns (paper config) *)
}

(* The default scenario suite, cheapest first.  Together the four kill all
   five hand-written ablations (each embeds one minimal-witness instance
   from Scenario.witness_for) and arm every operator family:

   - handshakes: no heap operations, two bounded cycles — the pure
     handshake/phase machinery.  Kills the armed drop-fence and
     skip-hs-wait mutants via the span invariants; with >= 2 mutators it
     also races the root marks (weaken-cas).
   - alloc: allocation + discard only — kills the allocation-color
     mutants and the no-fences ablation (stale f_A).
   - chain: loads + stores over the 3-chain — kills the
     deletion-barrier mutants (hiding through the chain).
   - alloc-store: the full repertoire, 3 ops — kills the
     insertion-barrier mutants (store an unmarked reference into a black
     object, then discard the root). *)
let scenarios ?(muts = 1) () =
  [
    Core.Scenario.make ~label:"campaign-handshakes" ~n_muts:muts ~n_refs:2 ~shape:"single"
      ~max_cycles:2 ~max_mut_ops:1 ~buf_bound:2
      ~tweak:(fun c ->
        { c with Core.Config.mut_load = false; mut_store = false; mut_alloc = false; mut_discard = false })
      ~note:"no heap ops, two cycles: the pure handshake/phase machinery" ();
    Core.Scenario.make ~label:"campaign-alloc" ~n_muts:muts ~n_refs:2 ~shape:"single"
      ~max_mut_ops:2 ~buf_bound:2
      ~tweak:(fun c -> { c with Core.Config.mut_load = false; mut_store = false })
      ~note:"allocation + discard only" ();
    Core.Scenario.make ~label:"campaign-chain" ~n_muts:muts ~shape:"chain3" ~max_mut_ops:3
      ~tweak:(fun c -> { c with Core.Config.mut_alloc = false; mut_discard = false })
      ~note:"loads + stores over the 3-chain" ();
    Core.Scenario.make ~label:"campaign-alloc-store" ~n_muts:muts ~n_refs:2 ~shape:"single"
      ~max_mut_ops:3 ~note:"full repertoire, 3 ops" ();
  ]

(* The campaign's default mutant population: the whole operator catalogue
   (enumerated against the first scenario's configuration joined with the
   full repertoire, so barrier/alloc sites are present) plus the five
   hand-written ablations. *)
let default_mutants ?(muts = 1) () =
  let cfg =
    { Core.Config.default with n_muts = muts; max_cycles = 2; max_mut_ops = 3; buf_bound = 2 }
  in
  List.map of_operator (Operators.all cfg) @ List.map of_variant Core.Variants.ablations

(* Name the failing conjunct by evaluating the violated invariant's witness
   on the trace's final state; [trace.broken] only names the invariant. *)
let conjunct_of cfg trace =
  match Core.Invariants.find cfg trace.Check.Trace.broken with
  | None -> trace.Check.Trace.broken
  | Some inv -> (
    match inv.Core.Invariants.witness (Check.Trace.final trace) with
    | [] -> trace.Check.Trace.broken
    | wit :: _ -> wit.Core.Invariants.conjunct)

let classification_fields = function
  | Killed k ->
    [
      ("status", Obs.Json.String "killed");
      ("invariant", Obs.Json.String k.invariant);
      ("conjunct", Obs.Json.String k.conjunct);
      ("scenario", Obs.Json.String k.scenario);
      ("states_to_kill", Obs.Json.Int k.states_to_kill);
      ("time_to_kill", Obs.Json.Float k.time_to_kill);
      ("ce_length", Obs.Json.Int k.ce_length);
    ]
  | Survived { closed } ->
    [ ("status", Obs.Json.String "survived"); ("closed", Obs.Json.Bool closed) ]
  | Errored msg -> [ ("status", Obs.Json.String "error"); ("error", Obs.Json.String msg) ]

let emit_entry obs e =
  Obs.Reporter.emit obs "campaign"
    ([
       ("mutant", Obs.Json.String e.mutant.name);
       ("operator", Obs.Json.String e.mutant.operator);
       ("site", Obs.Json.String e.mutant.site);
       ("expected_equivalent", Obs.Json.Bool e.mutant.expected_equivalent);
     ]
    @ classification_fields e.classification
    @ [
        ("states_total", Obs.Json.Int e.states_total);
        ("elapsed_total", Obs.Json.Float e.elapsed_total);
        ("scenarios_run", Obs.Json.Int (List.length e.runs));
      ])

(* Check one mutant: scenarios in order, stop at the first kill. *)
let check_mutant ~budget ~jobs ~reduce ~scenarios (m : mutant) =
  let rec go runs states elapsed closed = function
    | [] ->
      {
        mutant = m;
        classification = Survived { closed };
        states_total = states;
        elapsed_total = elapsed;
        runs = List.rev runs;
      }
    | sc :: rest ->
      let cfg = m.tweak sc.Core.Scenario.cfg in
      if not (m.applies sc.Core.Scenario.cfg) then go runs states elapsed closed rest
      else begin
        let sc' = { sc with Core.Scenario.cfg } in
        let o = Core.Scenario.explore ~max_states:budget ~jobs ~reduce sc' in
        let run =
          {
            run_scenario = sc.Core.Scenario.label;
            run_states = o.Check.Explore.states;
            run_elapsed = o.Check.Explore.elapsed;
            run_truncated = o.Check.Explore.truncated;
          }
        in
        let states = states + o.Check.Explore.states in
        let elapsed = elapsed +. o.Check.Explore.elapsed in
        match o.Check.Explore.violation with
        | Some trace ->
          {
            mutant = m;
            classification =
              Killed
                {
                  invariant = trace.Check.Trace.broken;
                  conjunct = conjunct_of cfg trace;
                  scenario = sc.Core.Scenario.label;
                  states_to_kill = o.Check.Explore.states;
                  time_to_kill = o.Check.Explore.elapsed;
                  ce_length = Check.Trace.length trace;
                };
            states_total = states;
            elapsed_total = elapsed;
            runs = List.rev (run :: runs);
          }
        | None -> go (run :: runs) states elapsed (closed && not o.Check.Explore.truncated) rest
      end
  in
  try go [] 0 0. true scenarios
  with exn ->
    {
      mutant = m;
      classification = Errored (Printexc.to_string exn);
      states_total = 0;
      elapsed_total = 0.;
      runs = [];
    }

(* -- equivalence certificates ------------------------------------------------

   A [Survived { closed = true }] verdict claims equivalence at the
   suite's bounds, but the claim lives only in the campaign's output.
   With a certificate directory, the campaign *closes* each surviving
   equivalent by certificate: per applicable scenario, a deterministic
   sweep (Certify.Recheck.sweep — the validator's own BFS, not the
   explorer) re-derives the reach table and writes a certificate whose
   header embeds a run configuration `gcmodel recheck` can rebuild the
   mutated instance from, via the same --mutant spelling the campaign
   uses.  The equivalence claim then stays checkable long after the
   campaign ran, by a validator that shares no code with it.

   Caveat: a custom scenario whose configuration tweak is not
   expressible in the raw explore flags produces a certificate recheck
   rejects with a config-hash mismatch — a loud failure, never a wrong
   PASS. *)

let sanitize s =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c | _ -> '-')
    s

let cert_run_config (m : mutant) (sc : Core.Scenario.t) ~reduce =
  let cfg = sc.Core.Scenario.cfg in
  let disables =
    List.filter_map
      (fun (flag, on) -> if on then None else Some (Obs.Json.String flag))
      [
        ("load", cfg.Core.Config.mut_load);
        ("store", cfg.Core.Config.mut_store);
        ("alloc", cfg.Core.Config.mut_alloc);
        ("discard", cfg.Core.Config.mut_discard);
        ("mfence", cfg.Core.Config.mut_mfence);
      ]
  in
  Obs.Json.Obj
    [
      ("muts", Obs.Json.Int cfg.Core.Config.n_muts);
      ("refs", Obs.Json.Int cfg.Core.Config.n_refs);
      ("fields", Obs.Json.Int cfg.Core.Config.n_fields);
      ("buf", Obs.Json.Int cfg.Core.Config.buf_bound);
      ("cycles", Obs.Json.Int cfg.Core.Config.max_cycles);
      ("ops", Obs.Json.Int cfg.Core.Config.max_mut_ops);
      ("variant", Obs.Json.String "paper");
      ("disable", Obs.Json.List disables);
      ("mutant", Obs.Json.String m.name);
      ("shape", Obs.Json.String sc.Core.Scenario.shape.Gcheap.Shapes.name);
      ("safety_only", Obs.Json.Bool false);
      ("jobs", Obs.Json.Int 1);
      ("reduce", Obs.Json.String (Reduce.Mode.to_string reduce));
      ("scenario", Obs.Json.String sc.Core.Scenario.label);
    ]

let certify_survivor ~dir ~reduce ~scenarios (m : mutant) =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | sc :: rest ->
      if not (m.applies sc.Core.Scenario.cfg) then go acc rest
      else begin
        let cfg = m.tweak sc.Core.Scenario.cfg in
        let sc' = { sc with Core.Scenario.cfg } in
        let model = Core.Scenario.model sc' in
        let reducer = Core.Reduction.reducer cfg reduce in
        let invariants = Core.Scenario.invariants sc' in
        match Certify.Recheck.sweep ~reducer ~invariants model.Core.Model.system with
        | Error e -> Error (sc.Core.Scenario.label, e)
        | Ok (entries, max_depth) -> (
          let out =
            Filename.concat dir
              (Filename.concat (sanitize m.name) (sanitize sc.Core.Scenario.label))
          in
          match
            Certify.Writer.write ~dir:out ~config_hash:(Core.Config.hash cfg)
              ~reduce:(Reduce.Mode.to_string reduce)
              ~invariant_names:(List.map fst invariants)
              ~run_config:(cert_run_config m sc ~reduce) ~max_depth entries
          with
          | Error e -> Error (sc.Core.Scenario.label, e)
          | Ok h -> go ((sc.Core.Scenario.label, out, h.Certify.Certificate.states) :: acc) rest)
      end
  in
  go [] scenarios

let run ?(obs = Obs.Reporter.null) ?(budget = 300_000) ?(jobs = 1) ?(reduce = Reduce.Mode.All)
    ?scenarios:(suite = scenarios ()) ?certificates ~mutants () =
  let entries =
    List.map
      (fun m ->
        let e = check_mutant ~budget ~jobs ~reduce ~scenarios:suite m in
        emit_entry obs e;
        (match (certificates, e.classification) with
        | Some dir, Survived { closed = true } -> (
          match certify_survivor ~dir ~reduce ~scenarios:suite m with
          | Ok certs ->
            List.iter
              (fun (label, out, states) ->
                Obs.Reporter.emit obs "certificate"
                  [
                    ("mutant", Obs.Json.String m.name);
                    ("scenario", Obs.Json.String label);
                    ("dir", Obs.Json.String out);
                    ("states", Obs.Json.Int states);
                  ])
              certs
          | Error (label, msg) ->
            Obs.Reporter.emit obs "certificate"
              [
                ("mutant", Obs.Json.String m.name);
                ("scenario", Obs.Json.String label);
                ("error", Obs.Json.String msg);
              ])
        | _ -> ());
        e)
      mutants
  in
  let paper_cfg =
    match suite with
    | sc :: _ -> sc.Core.Scenario.cfg
    | [] -> Core.Config.default
  in
  {
    entries;
    scenario_labels = List.map (fun sc -> sc.Core.Scenario.label) suite;
    budget;
    jobs;
    reduce;
    invariants = Core.Invariants.all paper_cfg;
  }

(* -- Survivor triage ------------------------------------------------------- *)

(* An explain-style stub for a surviving mutant: what ran, what it means,
   and the commands that push the investigation further. *)
let triage_stub (e : entry) =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "# Survivor triage: %s\n\n" e.mutant.name;
  add "- operator: `%s`, site: `%s`\n" e.mutant.operator e.mutant.site;
  add "- mutation: %s\n" e.mutant.doc;
  (match e.classification with
  | Survived { closed } ->
    add "- verdict: survived (%s)\n"
      (if closed then "all applicable scenarios closed their state spaces"
       else "state budget exhausted before closing")
  | Killed _ -> add "- verdict: killed (no triage needed)\n"
  | Errored msg -> add "- verdict: error: %s\n" msg);
  add "\n## Runs\n\n";
  if e.runs = [] then add "No scenario had the mutated program point; the mutant never ran.\n"
  else
    List.iter
      (fun r ->
        add "- `%s`: %d states in %.2fs%s\n" r.run_scenario r.run_states r.run_elapsed
          (if r.run_truncated then " (budget exhausted)" else " (closed)"))
      e.runs;
  add "\n## Triage\n\n";
  if e.mutant.expected_equivalent then
    add
      "The catalogue predicts this mutant is an *equivalent mutant*: %s.  A closed \
       survivor confirms the analysis at these bounds; nothing to fix.\n"
      e.mutant.rationale
  else begin
    add
      "This mutant was expected to be killable.  Either the invariant catalogue has a \
       mutation-adequacy gap at this program point, or the scenario suite cannot reach \
       the distinguishing interleaving.\n\n";
    add "Next steps:\n\n";
    add "1. Re-run with a larger budget and more scenarios:\n";
    add "   `gcmodel campaign --operators %s --budget 2000000 --jobs 4`\n" e.mutant.operator;
    add "2. Hunt deep interleavings with the randomized swarm:\n";
    add "   `gcmodel walk --mutant %s --steps 500000 --jobs 4`\n" e.mutant.name;
    add "3. Inspect what the mutated run actually does:\n";
    add "   `gcmodel explain --mutant %s --last 12`\n" e.mutant.name
  end;
  Buffer.contents b
