(* Structured per-state snapshots.

   A snapshot is the explainable projection of one global model state: the
   committed heap with its raw mark bits, the tricolor interpretation
   (with honorary-grey attribution kept separate, because the ghost is
   exactly what makes a ref grey *without* being on any work-list), the
   per-pid TSO buffers and work-lists, the handshake/phase machinery, and
   each process's control location.  Diffing two consecutive snapshots
   (see Diff) yields the semantic step narrative. *)

open Core.Types

type color = White | Grey | Black

let color_name = function White -> "white" | Grey -> "grey" | Black -> "black"

type obj = {
  o_ref : rf;
  o_mark : bool;  (* the raw mark bit (interpretation depends on f_M) *)
  o_fields : (fld * rf option) list;
}

type t = {
  step : int;  (* 0 = the initial state *)
  heap : obj list;  (* allocated objects, ascending by ref *)
  colors : (rf * color) list;  (* tricolor view of every allocated ref *)
  honorary : (rf * int) list;  (* ghost honorary greys, with owning pid *)
  wls : (int * rf list) list;  (* work-list per software pid *)
  bufs : (int * write list) list;  (* TSO store buffer per software pid, oldest first *)
  fA : bool;
  fM : bool;
  phase : phase;
  hs_type : hs;
  hs_pending : bool list;  (* per mutator *)
  hs_done : bool list;  (* per mutator *)
  mut_hs : hs list;  (* per mutator: last completed round *)
  lock : int option;
  roots : (int * rf list) list;  (* per mutator index *)
  dangling : bool;
  at : (int * string list) list;  (* control location (head labels) per pid *)
}

let capture cfg ~step system =
  let open Core.State in
  let sd = Core.Model.sys_data system cfg in
  let n_soft = Core.Config.n_software cfg in
  let softs = List.init n_soft Fun.id in
  let dom = Gcheap.Heap.domain sd.s_mem.heap in
  let heap =
    List.filter_map
      (fun r ->
        match Gcheap.Heap.get sd.s_mem.heap r with
        | None -> None
        | Some o ->
          Some
            {
              o_ref = r;
              o_mark = (Gcheap.Heap.mark sd.s_mem.heap r = Some true);
              o_fields = List.init (Gcheap.Obj.n_fields o) (fun f -> (f, Gcheap.Obj.field o f));
            })
      dom
  in
  let colors =
    List.map
      (fun r ->
        ( r,
          if Core.Color.is_grey cfg sd r then Grey
          else if Core.Color.is_marked sd r then Black
          else White ))
      dom
  in
  let honorary = List.filter_map (fun p -> Option.map (fun r -> (r, p)) (ghg_of sd p)) softs in
  {
    step;
    heap;
    colors;
    honorary;
    wls = List.map (fun p -> (p, wl_of sd p)) softs;
    bufs = List.map (fun p -> (p, buf_of sd p)) softs;
    fA = sd.s_mem.fA;
    fM = sd.s_mem.fM;
    phase = sd.s_mem.phase;
    hs_type = sd.s_hs_type;
    hs_pending = sd.s_hs_pending;
    hs_done = sd.s_hs_done;
    mut_hs = sd.s_hs_mut_hs;
    lock = sd.s_lock;
    roots =
      List.init cfg.Core.Config.n_muts (fun m -> (m, (Core.Model.mut_data system cfg m).m_roots));
    dangling = sd.s_dangling;
    at =
      List.init (Cimp.System.n_procs system) (fun p ->
          (p, Cimp.Com.at_labels (Cimp.System.proc system p)));
  }

let color_of t r = List.assoc_opt r t.colors

(* Grey attribution: is [r] grey because of a ghost honorary grey, or
   because it sits on some process's work-list? *)
type grey_via = Via_ghg of int | Via_wl of int

let grey_via t r =
  match List.assoc_opt r t.honorary with
  | Some p -> Some (Via_ghg p)
  | None ->
    List.find_map (fun (p, wl) -> if List.mem r wl then Some (Via_wl p) else None) t.wls

let write_to_json wr =
  Obs.Json.String (Fmt.str "%a" pp_write wr)

let to_json t =
  let open Obs.Json in
  let refs rs = List (List.map (fun r -> Int r) rs) in
  Obj
    [
      ("step", Int t.step);
      ( "heap",
        List
          (List.map
             (fun o ->
               Obj
                 [
                   ("ref", Int o.o_ref);
                   ("mark", Bool o.o_mark);
                   ( "fields",
                     List
                       (List.map
                          (fun (_, v) -> match v with None -> Null | Some r -> Int r)
                          o.o_fields) );
                 ])
             t.heap) );
      ( "colors",
        Obj (List.map (fun (r, c) -> (string_of_int r, String (color_name c))) t.colors) );
      ("honorary_grey", Obj (List.map (fun (r, p) -> (string_of_int r, Int p)) t.honorary));
      ("worklists", Obj (List.map (fun (p, wl) -> (string_of_int p, refs wl)) t.wls));
      ( "buffers",
        Obj (List.map (fun (p, b) -> (string_of_int p, List (List.map write_to_json b))) t.bufs)
      );
      ("fA", Bool t.fA);
      ("fM", Bool t.fM);
      ("phase", String (Fmt.str "%a" pp_phase t.phase));
      ("hs_type", String (Fmt.str "%a" pp_hs t.hs_type));
      ("hs_pending", List (List.map (fun b -> Bool b) t.hs_pending));
      ("hs_done", List (List.map (fun b -> Bool b) t.hs_done));
      ("lock", match t.lock with None -> Null | Some p -> Int p);
      ("roots", Obj (List.map (fun (m, rs) -> (string_of_int m, refs rs)) t.roots));
      ("dangling", Bool t.dangling);
      ( "at",
        Obj
          (List.map
             (fun (p, ls) -> (string_of_int p, List (List.map (fun l -> String l) ls)))
             t.at) );
    ]
