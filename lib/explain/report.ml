(* Counterexample forensics reports.

   [analyze] replays nothing itself — it takes a complete trace (from a
   checker or from Replay), captures a snapshot of every intermediate
   state, and diffs consecutive snapshots into per-step semantic changes.
   Three renderers share the analysis:

     - [timeline]: an ASCII lane view, one lane per process, with fence /
       CAS / flush events tagged and a per-step effects column;
     - [narrative]: every step's full-sentence change list;
     - [explanation]: which invariant conjunct failed, on which witness
       refs/pids, and the last [k] steps that touched those refs.

   Everything rendered here is a pure function of the trace and the
   config — no clocks, no randomness — so explaining the same trace twice
   yields byte-identical reports (tested). *)

type trace = (Core.Types.msg, Core.Types.value, Core.State.t) Check.Trace.t

type step_diff = {
  index : int;  (* 1-based step number *)
  event : Cimp.System.event;
  changes : Diff.change list;
}

type t = {
  cfg : Core.Config.t;
  broken : string;
  doc : string;  (* the invariant's documentation line, "" if unknown *)
  names : string array;
  snapshots : Snapshot.t list;  (* length = steps + 1; head is the initial state *)
  steps : step_diff list;
  witnesses : Core.Invariants.witness list;
}

let analyze cfg (trace : trace) =
  let snapshots =
    Snapshot.capture cfg ~step:0 trace.Check.Trace.initial
    :: List.mapi
         (fun i (s : _ Check.Trace.step) -> Snapshot.capture cfg ~step:(i + 1) s.state)
         trace.Check.Trace.steps
  in
  let rec diffs i snaps steps =
    match (snaps, steps) with
    | before :: (after :: _ as rest), (s : _ Check.Trace.step) :: steps' ->
      { index = i; event = s.event; changes = Diff.compute ~before ~after }
      :: diffs (i + 1) rest steps'
    | _ -> []
  in
  let doc, witnesses =
    match Core.Invariants.find cfg trace.Check.Trace.broken with
    | Some inv ->
      (inv.Core.Invariants.doc, inv.Core.Invariants.witness (Check.Trace.final trace))
    | None -> ("", [])
  in
  {
    cfg;
    broken = trace.Check.Trace.broken;
    doc;
    names =
      Array.init
        (Cimp.System.n_procs trace.Check.Trace.initial)
        (fun p -> Cimp.System.name trace.Check.Trace.initial p);
    snapshots;
    steps = diffs 1 snapshots trace.Check.Trace.steps;
    witnesses;
  }

(* -- lane timeline ------------------------------------------------------------ *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

(* memory-model annotations recognized from the label vocabulary *)
let label_tags l =
  (if contains_sub l "mfence" || contains_sub l "-fence" then [ "#fence" ] else [])
  @ (if contains_sub l ":cas-" || contains_sub l "cas-" then [ "#cas" ] else [])
  @ if l = "sys:dequeue" then [ "#flush" ] else []

let tagged l = String.concat " " (l :: label_tags l)

let clamp width s = if String.length s <= width then s else String.sub s 0 (width - 1) ^ "~"

let pad width s =
  let s = clamp width s in
  s ^ String.make (width - String.length s) ' '

let lane_cells names ev =
  let n = Array.length names in
  let cells = Array.make n "" in
  (match ev with
  | Cimp.System.Tau (p, l) -> if p >= 0 && p < n then cells.(p) <- tagged l
  | Cimp.System.Rendezvous { requester; req_label; responder; resp_label } ->
    if requester >= 0 && requester < n then cells.(requester) <- tagged req_label ^ " >";
    if responder >= 0 && responder < n then cells.(responder) <- "> " ^ tagged resp_label);
  cells

let timeline ?(lane_width = 26) ?(effects_width = 60) t =
  let b = Buffer.create 4096 in
  let n = Array.length t.names in
  let width =
    (* fit each lane to its widest cell, clamped *)
    let w = Array.map String.length t.names in
    List.iter
      (fun sd ->
        let cells = lane_cells t.names sd.event in
        Array.iteri (fun p c -> if String.length c > w.(p) then w.(p) <- String.length c) cells)
      t.steps;
    Array.map (fun x -> min lane_width (max 4 x)) w
  in
  let row step cells effects =
    Buffer.add_string b (pad 5 step);
    Array.iteri
      (fun p c ->
        Buffer.add_string b "| ";
        Buffer.add_string b (pad width.(p) c);
        Buffer.add_char b ' ')
      cells;
    Buffer.add_string b "| ";
    Buffer.add_string b (clamp effects_width effects);
    Buffer.add_char b '\n'
  in
  row "step" (Array.copy t.names) "effects";
  let rule =
    "-----"
    ^ String.concat ""
        (List.init n (fun p -> "+" ^ String.make (width.(p) + 2) '-'))
    ^ "+" ^ String.make 10 '-'
  in
  Buffer.add_string b rule;
  Buffer.add_char b '\n';
  List.iter
    (fun sd ->
      let effects = String.concat "; " (List.map (Diff.compact t.cfg) sd.changes) in
      row (string_of_int sd.index) (lane_cells t.names sd.event) effects)
    t.steps;
  Buffer.contents b

(* -- step narrative ----------------------------------------------------------- *)

let narrative t =
  let b = Buffer.create 4096 in
  List.iter
    (fun sd ->
      Buffer.add_string b
        (Fmt.str "step %d: %a\n" sd.index (Cimp.System.pp_event t.names) sd.event);
      if sd.changes = [] then Buffer.add_string b "    (no observable state change)\n"
      else
        List.iter
          (fun c -> Buffer.add_string b ("    " ^ Diff.describe t.cfg c ^ "\n"))
          sd.changes)
    t.steps;
  Buffer.contents b

(* -- violation explanation ---------------------------------------------------- *)

let witness_refs t =
  List.sort_uniq compare (List.concat_map (fun w -> w.Core.Invariants.refs) t.witnesses)

(* the last [k] steps whose changes touch any of [refs] *)
let steps_touching ?(last = 8) t refs =
  let touching =
    List.filter
      (fun sd ->
        List.exists (fun c -> List.exists (fun r -> List.mem r refs) (Diff.touches c)) sd.changes)
      t.steps
  in
  let n = List.length touching in
  List.filteri (fun i _ -> i >= n - last) touching

let explanation ?(last = 8) t =
  let b = Buffer.create 2048 in
  let total = List.length t.steps in
  Buffer.add_string b
    (Fmt.str "VIOLATION: invariant %s fails after %d steps.\n" t.broken total);
  if t.doc <> "" then Buffer.add_string b (Fmt.str "  (%s)\n" t.doc);
  Buffer.add_char b '\n';
  (match t.witnesses with
  | [] ->
    Buffer.add_string b
      "No structured witness available (invariant not in this configuration's catalogue).\n"
  | ws ->
    Buffer.add_string b "Failing conjuncts:\n";
    List.iter
      (fun w -> Buffer.add_string b (Fmt.str "  %a\n" Core.Invariants.pp_witness w))
      ws);
  let refs = witness_refs t in
  (if refs <> [] then begin
     Buffer.add_string b
       (Fmt.str "\nLast %d steps touching witness ref%s %s:\n" last
          (if List.length refs = 1 then "" else "s")
          (String.concat ", " (List.map string_of_int refs)));
     let steps = steps_touching ~last t refs in
     if steps = [] then Buffer.add_string b "  (no step touched the witness refs)\n"
     else
       List.iter
         (fun sd ->
           Buffer.add_string b
             (Fmt.str "  step %d: %a\n" sd.index (Cimp.System.pp_event t.names) sd.event);
           List.iter
             (fun c ->
               if List.exists (fun r -> List.mem r refs) (Diff.touches c) then
                 Buffer.add_string b ("      " ^ Diff.describe t.cfg c ^ "\n"))
             sd.changes)
         steps
   end);
  (* final colours of the witness refs, from the last snapshot *)
  (match (refs, List.rev t.snapshots) with
  | _ :: _, final :: _ ->
    Buffer.add_string b "\nFinal state of the witness refs:\n";
    List.iter
      (fun r ->
        match Snapshot.color_of final r with
        | Some c ->
          Buffer.add_string b
            (Fmt.str "  ref %d is %s%s\n" r (Snapshot.color_name c)
               (match Snapshot.grey_via final r with
               | Some (Snapshot.Via_ghg p) ->
                 Fmt.str " (honorary grey via %s)" (Core.Config.proc_name t.cfg p)
               | Some (Snapshot.Via_wl p) ->
                 Fmt.str " (on %s's work-list)" (Core.Config.proc_name t.cfg p)
               | None -> ""))
        | None -> Buffer.add_string b (Fmt.str "  ref %d is not allocated\n" r))
      refs
  | _ -> ());
  Buffer.contents b

(* -- full text report --------------------------------------------------------- *)

let render ?last t =
  String.concat "\n"
    [
      explanation ?last t;
      "== timeline " ^ String.make 68 '=';
      timeline t;
      "== narrative " ^ String.make 67 '=';
      narrative t;
    ]

(* -- JSON --------------------------------------------------------------------- *)

let to_json t =
  let open Obs.Json in
  Obj
    [
      ("broken", String t.broken);
      ("doc", String t.doc);
      ("length", Int (List.length t.steps));
      ("names", List (Array.to_list (Array.map (fun n -> String n) t.names)));
      ("witnesses", List (List.map Core.Invariants.witness_to_json t.witnesses));
      ( "steps",
        List
          (List.map
             (fun sd ->
               Obj
                 [
                   ("step", Int sd.index);
                   ("event", Check.Trace.event_to_json sd.event);
                   ("changes", List (List.map (Diff.to_json t.cfg) sd.changes));
                 ])
             t.steps) );
      ( "initial",
        match t.snapshots with [] -> Null | s :: _ -> Snapshot.to_json s );
      ( "final",
        match List.rev t.snapshots with [] -> Null | s :: _ -> Snapshot.to_json s );
    ]

(* -- HTML --------------------------------------------------------------------- *)

let html_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string b "&amp;"
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* A self-contained page: inline CSS, no external assets, and no
   timestamps — the same analysis renders the same bytes.  [html_page]
   is the shared shell; the kill-matrix renderer in lib/mutate reuses it
   (with [extra_style] for its table rules). *)
let html_page ?(extra_style = "") ~title body =
  Fmt.str
    "<!DOCTYPE html>\n\
     <html lang=\"en\">\n\
     <head>\n\
     <meta charset=\"utf-8\">\n\
     <title>%s</title>\n\
     <style>\n\
     body { font-family: sans-serif; margin: 2em; max-width: 100em; }\n\
     pre { background: #f6f6f6; border: 1px solid #ddd; padding: 1em; overflow-x: auto; }\n\
     h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; }\n\
     .broken { color: #b00020; }\n\
     details summary { cursor: pointer; margin-top: 2em; }\n\
     %s</style>\n\
     </head>\n\
     <body>\n\
     %s</body>\n\
     </html>\n"
    (html_escape title) extra_style body

let html ?last t =
  let b = Buffer.create 16384 in
  let add = Buffer.add_string b in
  add (Fmt.str "<h1>Counterexample forensics: <span class=\"broken\">%s</span></h1>\n"
         (html_escape t.broken));
  add "<h2>Explanation</h2>\n<pre>";
  add (html_escape (explanation ?last t));
  add "</pre>\n<h2>Timeline</h2>\n<pre>";
  add (html_escape (timeline t));
  add "</pre>\n<h2>Narrative</h2>\n<pre>";
  add (html_escape (narrative t));
  add "</pre>\n<details><summary>Structured report (JSON)</summary>\n<pre>";
  add (html_escape (Obs.Json.to_string_pretty (to_json t)));
  add "</pre>\n</details>\n";
  html_page ~title:(Fmt.str "Counterexample: %s" t.broken) (Buffer.contents b)

let write_html ?last path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (html ?last t))
