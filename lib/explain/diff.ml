(* Semantic diffs between consecutive snapshots.

   Each change is one observable effect of a scheduled event: heap edges
   rewritten, objects allocated or freed, tricolor transitions (with the
   honorary-grey / work-list attribution that explains *why* something is
   grey), TSO buffer pushes and commits, work-list and ghost updates, and
   the handshake/phase protocol edges.  The renderers in Report build the
   per-step narrative, the timeline's effect column, and the "last k
   steps touching the witness" view from these. *)

open Core.Types

type change =
  | Alloc of rf * bool  (* new object, raw mark bit *)
  | Free of rf
  | Edge of rf * fld * rf option * rf option  (* committed field: before, after *)
  | Mark_bit of rf * bool  (* committed raw mark bit flipped *)
  | Color_change of rf * Snapshot.color * Snapshot.color * Snapshot.grey_via option
      (* attribution when the new colour is grey *)
  | Buf_push of int * write
  | Buf_commit of int * write
  | Wl_add of int * rf
  | Wl_remove of int * rf
  | Ghg_set of int * rf
  | Ghg_clear of int * rf
  | Phase_change of phase * phase
  | FA_change of bool
  | FM_change of bool
  | Hs_round of hs  (* a new handshake round began *)
  | Hs_signal of int  (* the collector raised mutator m's pending bit *)
  | Hs_ack of int  (* mutator m cleared its pending bit *)
  | Hs_complete of int * hs  (* mutator m completed the round: its hp advances *)
  | Lock_acquire of int
  | Lock_release of int
  | Root_add of int * rf  (* mutator index *)
  | Root_drop of int * rf
  | Dangling_set

(* -- computing --------------------------------------------------------------- *)

let diff_assoc before after =
  (* (key, before-only, after-only, changed) over two assoc lists *)
  let removed = List.filter (fun (k, _) -> not (List.mem_assoc k after)) before in
  let added = List.filter (fun (k, _) -> not (List.mem_assoc k before)) after in
  let changed =
    List.filter_map
      (fun (k, v) ->
        match List.assoc_opt k before with
        | Some v' when v' <> v -> Some (k, v', v)
        | _ -> None)
      after
  in
  (removed, added, changed)

(* One scheduled event performs at most one buffer operation per pid (a
   rendezvous pushes one write; a Sys dequeue commits one), but keep the
   diff total for robustness: any shape that is not a clean push or a
   clean FIFO/PSO removal degrades to a multiset diff. *)
let diff_buf p before after =
  if before = after then []
  else begin
    let rec is_prefix xs ys =
      match (xs, ys) with
      | [], _ -> true
      | x :: xs', y :: ys' -> x = y && is_prefix xs' ys'
      | _ :: _, [] -> false
    in
    let la = List.length after and lb = List.length before in
    if la = lb + 1 && is_prefix before after then
      [ Buf_push (p, List.nth after (la - 1)) ]
    else if lb = la + 1 then begin
      (* one element left the buffer: the head under TSO (interior
         removals would indicate a different memory model, and fall
         through to the multiset diff) *)
      let rec removed_one bs asx =
        match (bs, asx) with
        | [ w ], [] -> Some w
        | w :: bs', a :: as' ->
          if w = a then removed_one bs' as' else if bs' = asx then Some w else None
        | _ -> None
      in
      match removed_one before after with
      | Some wr -> [ Buf_commit (p, wr) ]
      | None ->
        List.filter_map (fun wr -> if List.mem wr after then None else Some (Buf_commit (p, wr))) before
        @ List.filter_map (fun wr -> if List.mem wr before then None else Some (Buf_push (p, wr))) after
    end
    else
      (* not a single push/commit: report as drain + refill *)
      List.filter_map (fun wr -> if List.mem wr after then None else Some (Buf_commit (p, wr))) before
      @ List.filter_map (fun wr -> if List.mem wr before then None else Some (Buf_push (p, wr))) after
  end

let compute ~(before : Snapshot.t) ~(after : Snapshot.t) =
  let b = before and a = after in
  let freed, allocd, _ =
    diff_assoc
      (List.map (fun (o : Snapshot.obj) -> (o.o_ref, o)) b.heap)
      (List.map (fun (o : Snapshot.obj) -> (o.o_ref, o)) a.heap)
  in
  let allocs = List.map (fun (r, (o : Snapshot.obj)) -> Alloc (r, o.o_mark)) allocd in
  let frees = List.map (fun (r, _) -> Free r) freed in
  let edges =
    List.concat_map
      (fun (o : Snapshot.obj) ->
        match List.find_opt (fun (o' : Snapshot.obj) -> o'.o_ref = o.o_ref) b.heap with
        | None -> []
        | Some o' ->
          List.filter_map
            (fun (f, v) ->
              match List.assoc_opt f o'.o_fields with
              | Some v' when v' <> v -> Some (Edge (o.o_ref, f, v', v))
              | _ -> None)
            o.o_fields)
      a.heap
  in
  let marks =
    List.filter_map
      (fun (o : Snapshot.obj) ->
        match List.find_opt (fun (o' : Snapshot.obj) -> o'.o_ref = o.o_ref) b.heap with
        | Some o' when o'.o_mark <> o.o_mark -> Some (Mark_bit (o.o_ref, o.o_mark))
        | _ -> None)
      a.heap
  in
  let colors =
    let _, _, changed = diff_assoc b.colors a.colors in
    List.map
      (fun (r, cb, ca) ->
        Color_change (r, cb, ca, if ca = Snapshot.Grey then Snapshot.grey_via a r else None))
      changed
  in
  let bufs =
    List.concat_map
      (fun (p, ba) ->
        match List.assoc_opt p b.bufs with None -> [] | Some bb -> diff_buf p bb ba)
      a.bufs
  in
  let wls =
    List.concat_map
      (fun (p, wa) ->
        match List.assoc_opt p b.wls with
        | None -> []
        | Some wb ->
          List.filter_map (fun r -> if List.mem r wa then None else Some (Wl_remove (p, r))) wb
          @ List.filter_map (fun r -> if List.mem r wb then None else Some (Wl_add (p, r))) wa)
      a.wls
  in
  let ghg =
    let removed, added, changed = diff_assoc b.honorary a.honorary in
    List.map (fun (r, p) -> Ghg_clear (p, r)) removed
    @ List.map (fun (r, p) -> Ghg_set (p, r)) added
    @ List.concat_map (fun (r, p, p') -> [ Ghg_clear (p, r); Ghg_set (p', r) ]) changed
  in
  let control =
    (if b.phase <> a.phase then [ Phase_change (b.phase, a.phase) ] else [])
    @ (if b.fA <> a.fA then [ FA_change a.fA ] else [])
    @ if b.fM <> a.fM then [ FM_change a.fM ] else []
  in
  let hs =
    let round =
      if
        a.hs_type <> b.hs_type
        || List.exists2 (fun db da -> db && not da) b.hs_done a.hs_done
      then [ Hs_round a.hs_type ]
      else []
    in
    let pending =
      List.concat
        (List.mapi
           (fun m pa ->
             match List.nth_opt b.hs_pending m with
             | Some pb when pb <> pa -> if pa then [ Hs_signal m ] else [ Hs_ack m ]
             | _ -> [])
           a.hs_pending)
    in
    let complete =
      List.concat
        (List.mapi
           (fun m ha ->
             match List.nth_opt b.mut_hs m with
             | Some hb when hb <> ha -> [ Hs_complete (m, ha) ]
             | _ -> [])
           a.mut_hs)
    in
    round @ pending @ complete
  in
  let lock =
    match (b.lock, a.lock) with
    | None, Some p -> [ Lock_acquire p ]
    | Some p, None -> [ Lock_release p ]
    | Some p, Some q when p <> q -> [ Lock_release p; Lock_acquire q ]
    | _ -> []
  in
  let roots =
    List.concat_map
      (fun (m, ra) ->
        match List.assoc_opt m b.roots with
        | None -> []
        | Some rb ->
          List.filter_map (fun r -> if List.mem r ra then None else Some (Root_drop (m, r))) rb
          @ List.filter_map (fun r -> if List.mem r rb then None else Some (Root_add (m, r))) ra)
      a.roots
  in
  let dangling = if a.dangling && not b.dangling then [ Dangling_set ] else [] in
  allocs @ frees @ edges @ marks @ colors @ bufs @ wls @ ghg @ control @ hs @ lock @ roots
  @ dangling

(* -- rendering ---------------------------------------------------------------- *)

let pp_ref_opt = Fmt.option ~none:(Fmt.any "null") Fmt.int

let describe cfg change =
  let name p = Core.Config.proc_name cfg p in
  match change with
  | Alloc (r, mark) -> Fmt.str "object %d is allocated (mark bit %b)" r mark
  | Free r -> Fmt.str "object %d is freed" r
  | Edge (r, f, v, v') ->
    Fmt.str "committed heap edge %d.f%d changes %a -> %a" r f pp_ref_opt v pp_ref_opt v'
  | Mark_bit (r, b) -> Fmt.str "committed mark bit of %d becomes %b" r b
  | Color_change (r, cb, ca, via) ->
    Fmt.str "reference %d turns %s -> %s%s" r (Snapshot.color_name cb) (Snapshot.color_name ca)
      (match via with
      | Some (Snapshot.Via_ghg p) ->
        Fmt.str " (honorary grey: %s's in-flight mark publication)" (name p)
      | Some (Snapshot.Via_wl p) -> Fmt.str " (on %s's work-list)" (name p)
      | None -> "")
  | Buf_push (p, wr) -> Fmt.str "%s buffers %a (TSO store-buffer push)" (name p) pp_write wr
  | Buf_commit (p, wr) ->
    Fmt.str "Sys commits %s's buffered %a to memory (store-buffer flush)" (name p) pp_write wr
  | Wl_add (p, r) -> Fmt.str "%s's work-list gains %d" (name p) r
  | Wl_remove (p, r) -> Fmt.str "%s's work-list drops %d" (name p) r
  | Ghg_set (p, r) -> Fmt.str "%s's ghost honorary grey becomes %d" (name p) r
  | Ghg_clear (p, r) -> Fmt.str "%s's ghost honorary grey %d is cleared" (name p) r
  | Phase_change (pb, pa) -> Fmt.str "phase commits %a -> %a" pp_phase pb pp_phase pa
  | FA_change b -> Fmt.str "allocation sense fA commits to %b" b
  | FM_change b -> Fmt.str "mark sense fM commits to %b" b
  | Hs_round h -> Fmt.str "handshake round %a begins" pp_hs h
  | Hs_signal m -> Fmt.str "the collector signals mutator %d (pending bit set)" m
  | Hs_ack m -> Fmt.str "mutator %d acknowledges the handshake (pending bit cleared)" m
  | Hs_complete (m, h) ->
    Fmt.str "mutator %d completes the %a round (handshake phase now %a)" m pp_hs h pp_hp
      (hp_of_hs h)
  | Lock_acquire p -> Fmt.str "%s acquires the TSO lock (CAS section)" (name p)
  | Lock_release p -> Fmt.str "%s releases the TSO lock" (name p)
  | Root_add (m, r) -> Fmt.str "mutator %d gains root %d" m r
  | Root_drop (m, r) -> Fmt.str "mutator %d drops root %d" m r
  | Dangling_set -> "GHOST: a memory access touched a freed cell (s_dangling set)"

(* Compressed one-token-ish form for the timeline's effect column. *)
let compact cfg change =
  let name p = Core.Config.proc_name cfg p in
  match change with
  | Alloc (r, _) -> Fmt.str "alloc %d" r
  | Free r -> Fmt.str "free %d" r
  | Edge (r, f, _, v') -> Fmt.str "%d.f%d:=%a" r f pp_ref_opt v'
  | Mark_bit (r, b) -> Fmt.str "mark(%d)=%b" r b
  | Color_change (r, cb, ca, _) ->
    Fmt.str "%d:%c->%c" r (Snapshot.color_name cb).[0] (Snapshot.color_name ca).[0]
  | Buf_push (p, wr) -> Fmt.str "push[%s] %a" (name p) pp_write wr
  | Buf_commit (p, wr) -> Fmt.str "commit[%s] %a" (name p) pp_write wr
  | Wl_add (p, r) -> Fmt.str "W[%s]+%d" (name p) r
  | Wl_remove (p, r) -> Fmt.str "W[%s]-%d" (name p) r
  | Ghg_set (p, r) -> Fmt.str "ghg[%s]:=%d" (name p) r
  | Ghg_clear (p, _) -> Fmt.str "ghg[%s]:=-" (name p)
  | Phase_change (_, pa) -> Fmt.str "phase=%a" pp_phase pa
  | FA_change b -> Fmt.str "fA=%b" b
  | FM_change b -> Fmt.str "fM=%b" b
  | Hs_round h -> Fmt.str "hs %a" pp_hs h
  | Hs_signal m -> Fmt.str "sig m%d" m
  | Hs_ack m -> Fmt.str "ack m%d" m
  | Hs_complete (m, _) -> Fmt.str "m%d done" m
  | Lock_acquire p -> Fmt.str "lock:=%s" (name p)
  | Lock_release _ -> "lock:=-"
  | Root_add (m, r) -> Fmt.str "m%d roots+%d" m r
  | Root_drop (m, r) -> Fmt.str "m%d roots-%d" m r
  | Dangling_set -> "DANGLING"

(* The heap references a change mentions — the witness filter of the
   "last k steps that touched it" view. *)
let touches = function
  | Alloc (r, _) | Free r | Mark_bit (r, _) | Color_change (r, _, _, _) -> [ r ]
  | Edge (r, _, v, v') -> r :: List.filter_map Fun.id [ v; v' ]
  | Buf_push (_, wr) | Buf_commit (_, wr) -> (
    match wr with
    | W_mark (r, _) -> [ r ]
    | W_field (r, _, v) -> r :: Option.to_list v
    | W_fA _ | W_fM _ | W_phase _ -> [])
  | Wl_add (_, r) | Wl_remove (_, r) | Ghg_set (_, r) | Ghg_clear (_, r) -> [ r ]
  | Root_add (_, r) | Root_drop (_, r) -> [ r ]
  | Phase_change _ | FA_change _ | FM_change _ | Hs_round _ | Hs_signal _ | Hs_ack _
  | Hs_complete _ | Lock_acquire _ | Lock_release _ | Dangling_set ->
    []

let kind = function
  | Alloc _ -> "alloc"
  | Free _ -> "free"
  | Edge _ -> "edge"
  | Mark_bit _ -> "mark-bit"
  | Color_change _ -> "color"
  | Buf_push _ -> "buf-push"
  | Buf_commit _ -> "buf-commit"
  | Wl_add _ -> "wl-add"
  | Wl_remove _ -> "wl-remove"
  | Ghg_set _ -> "ghg-set"
  | Ghg_clear _ -> "ghg-clear"
  | Phase_change _ -> "phase"
  | FA_change _ -> "fA"
  | FM_change _ -> "fM"
  | Hs_round _ -> "hs-round"
  | Hs_signal _ -> "hs-signal"
  | Hs_ack _ -> "hs-ack"
  | Hs_complete _ -> "hs-complete"
  | Lock_acquire _ -> "lock-acquire"
  | Lock_release _ -> "lock-release"
  | Root_add _ -> "root-add"
  | Root_drop _ -> "root-drop"
  | Dangling_set -> "dangling"

let to_json cfg change =
  Obs.Json.Obj
    [
      ("kind", Obs.Json.String (kind change));
      ("refs", Obs.Json.List (List.map (fun r -> Obs.Json.Int r) (touches change)));
      ("detail", Obs.Json.String (describe cfg change));
    ]
