(** Counterexample forensics reports.

    {!analyze} captures a {!Snapshot} of every state along a trace and
    diffs consecutive snapshots into per-step semantic changes; the
    renderers share that analysis.  Every renderer is a pure function of
    the trace and the config — no clocks, no randomness — so explaining
    the same trace twice yields byte-identical output. *)

type trace = (Core.Types.msg, Core.Types.value, Core.State.t) Check.Trace.t

type step_diff = {
  index : int;  (** 1-based step number *)
  event : Cimp.System.event;
  changes : Diff.change list;
}

type t = {
  cfg : Core.Config.t;
  broken : string;  (** the violated invariant's name *)
  doc : string;  (** its documentation line, [""] if unknown *)
  names : string array;
  snapshots : Snapshot.t list;  (** length = steps + 1; head is the initial state *)
  steps : step_diff list;
  witnesses : Core.Invariants.witness list;
      (** structured failure witnesses on the final state *)
}

val analyze : Core.Config.t -> trace -> t

val timeline : ?lane_width:int -> ?effects_width:int -> t -> string
(** ASCII lane view: one lane per process, fence / CAS / flush events
    tagged ([#fence] / [#cas] / [#flush]), and a per-step effects column
    of {!Diff.compact} changes. *)

val narrative : t -> string
(** Every step's event and full-sentence change list. *)

val explanation : ?last:int -> t -> string
(** The violated invariant and its failing conjuncts (witnesses), the
    last [last] (default 8) steps that touched the witness refs, and the
    witness refs' final colours. *)

val render : ?last:int -> t -> string
(** Explanation, timeline, and narrative concatenated. *)

val to_json : t -> Obs.Json.t
(** Structured report: witnesses, per-step events and changes, and the
    initial and final snapshots. *)

val html_escape : string -> string
(** Escape [&], [<] and [>] for embedding in HTML text nodes. *)

val html_page : ?extra_style:string -> title:string -> string -> string
(** The shared self-contained page shell (inline CSS, no external assets,
    no timestamps): wraps a body fragment into a complete document.
    [extra_style] appends CSS rules — the campaign kill-matrix renderer
    in [lib/mutate] reuses the shell this way. *)

val html : ?last:int -> t -> string
(** Self-contained HTML page (inline CSS, no external assets, no
    timestamps). *)

val write_html : ?last:int -> string -> t -> unit
(** Write {!html} to a file. *)
