(* Replaying an event schedule through the model.

   An exported trace carries only the schedule (the events), not the
   intermediate states, so explaining it means re-running the events from
   the initial system.  One event label does not always pin down one
   successor — a [sys: sys:dequeue] tau, say, is offered once per process
   with a non-empty store buffer — so the replay is a backtracking DFS
   over the matching successors of each step.  Each accepted state is
   normalized exactly as the checkers normalize (imported schedules were
   recorded post-normalization), which keeps replay deterministic and
   byte-identical across runs. *)

let event_matches ev ev' =
  match (ev, ev') with
  | Cimp.System.Tau (p, l), Cimp.System.Tau (p', l') -> p = p' && l = l'
  | ( Cimp.System.Rendezvous { requester; req_label; responder; resp_label },
      Cimp.System.Rendezvous
        { requester = requester'; req_label = req_label'; responder = responder';
          resp_label = resp_label' } ) ->
    requester = requester' && req_label = req_label' && responder = responder'
    && resp_label = resp_label'
  | _ -> false

type ('a, 'v, 's) partial = {
  matched : int;  (* events successfully replayed on the deepest path *)
  stuck_at : ('a, 'v, 's) Cimp.System.t;  (* the state that offered no match *)
}

let replay ?(normal_form = true) ~broken initial events =
  let norm sys = if normal_form then Cimp.System.normalize sys else sys in
  let initial = norm initial in
  (* deepest failure across all backtracking branches, for the diagnosis *)
  let deepest = ref { matched = 0; stuck_at = initial } in
  let rec go sys acc depth = function
    | [] -> Some (List.rev acc)
    | ev :: rest ->
      let candidates =
        List.filter_map
          (fun (ev', sys') -> if event_matches ev ev' then Some sys' else None)
          (Cimp.System.steps sys)
      in
      if candidates = [] && depth >= !deepest.matched then
        deepest := { matched = depth; stuck_at = sys };
      List.find_map
        (fun sys' ->
          let sys' = norm sys' in
          go sys' ({ Check.Trace.event = ev; state = sys' } :: acc) (depth + 1) rest)
        candidates
  in
  match go initial [] 0 events with
  | Some steps -> Ok { Check.Trace.initial; steps; broken }
  | None ->
    let d = !deepest in
    let total = List.length events in
    let names =
      Array.init (Cimp.System.n_procs initial) (fun p -> Cimp.System.name initial p)
    in
    Error
      (Fmt.str
         "replay diverged: event %d of %d (%a) is not enabled in the replayed state — the \
          trace was recorded on a different system or without normalization"
         (d.matched + 1) total
         (Cimp.System.pp_event names)
         (List.nth events d.matched))

let import_and_replay ?normal_form initial json =
  match Check.Trace.import initial json with
  | Error _ as e -> e
  | Ok (broken, events) -> replay ?normal_form ~broken initial events
