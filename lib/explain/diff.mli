(** Semantic diffs between consecutive {!Snapshot}s: each [change] is one
    observable effect of a scheduled event.  The Report renderers build
    the per-step narrative, the timeline effect column, and the witness
    "last k steps" view from these. *)

type change =
  | Alloc of Core.Types.rf * bool  (** new object, raw mark bit *)
  | Free of Core.Types.rf
  | Edge of Core.Types.rf * Core.Types.fld * Core.Types.rf option * Core.Types.rf option
      (** committed field rewrite: (ref, field, before, after) *)
  | Mark_bit of Core.Types.rf * bool  (** committed raw mark bit flipped *)
  | Color_change of Core.Types.rf * Snapshot.color * Snapshot.color * Snapshot.grey_via option
      (** tricolor transition, with attribution when the new colour is grey *)
  | Buf_push of int * Core.Types.write  (** pid buffers a write *)
  | Buf_commit of int * Core.Types.write  (** Sys flushes pid's oldest write *)
  | Wl_add of int * Core.Types.rf
  | Wl_remove of int * Core.Types.rf
  | Ghg_set of int * Core.Types.rf
  | Ghg_clear of int * Core.Types.rf
  | Phase_change of Core.Types.phase * Core.Types.phase
  | FA_change of bool
  | FM_change of bool
  | Hs_round of Core.Types.hs  (** a new handshake round began *)
  | Hs_signal of int  (** collector raised mutator m's pending bit *)
  | Hs_ack of int  (** mutator m cleared its pending bit *)
  | Hs_complete of int * Core.Types.hs  (** mutator m completed the round *)
  | Lock_acquire of int
  | Lock_release of int
  | Root_add of int * Core.Types.rf  (** mutator index gains a root *)
  | Root_drop of int * Core.Types.rf
  | Dangling_set  (** the ghost dangling-access flag was raised *)

val compute : before:Snapshot.t -> after:Snapshot.t -> change list
(** All changes between two consecutive snapshots, in a deterministic
    order (heap, colours, buffers, work-lists, ghosts, control, handshake,
    lock, roots, dangling). *)

val describe : Core.Config.t -> change -> string
(** Full-sentence rendering for the step narrative. *)

val compact : Core.Config.t -> change -> string
(** Compressed rendering for the timeline's effect column. *)

val touches : change -> Core.Types.rf list
(** The heap references a change mentions — used to filter the
    "last k steps that touched the witness" view. *)

val kind : change -> string
(** Stable machine-readable tag (e.g. ["buf-commit"]). *)

val to_json : Core.Config.t -> change -> Obs.Json.t
(** Structured rendering: a record with the {!kind} tag plus
    change-specific fields, as embedded in {!Report.to_json} steps. *)
