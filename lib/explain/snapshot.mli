(** Structured per-state snapshots: the explainable projection of one
    global model state, captured at every step of a replayed trace.
    Consecutive snapshots are diffed by {!Diff} into the semantic step
    narrative. *)

type color = White | Grey | Black

val color_name : color -> string
(** Lower-case rendering: ["white"], ["grey"], ["black"]. *)

type obj = {
  o_ref : Core.Types.rf;
  o_mark : bool;  (** the raw mark bit; its colour meaning depends on f_M *)
  o_fields : (Core.Types.fld * Core.Types.rf option) list;
}

type t = {
  step : int;  (** 0 = the initial state *)
  heap : obj list;  (** allocated objects, ascending by ref *)
  colors : (Core.Types.rf * color) list;
  honorary : (Core.Types.rf * int) list;  (** ghost honorary greys, with owning pid *)
  wls : (int * Core.Types.rf list) list;  (** work-list per software pid *)
  bufs : (int * Core.Types.write list) list;  (** TSO buffer per software pid, oldest first *)
  fA : bool;
  fM : bool;
  phase : Core.Types.phase;
  hs_type : Core.Types.hs;
  hs_pending : bool list;
  hs_done : bool list;
  mut_hs : Core.Types.hs list;
  lock : int option;
  roots : (int * Core.Types.rf list) list;  (** per mutator index *)
  dangling : bool;
  at : (int * string list) list;  (** control location (head labels) per pid *)
}

val capture : Core.Config.t -> step:int -> Core.Model.sys -> t
(** Project one global model state into a snapshot.  Colours follow the
    paper's tricolor reading: grey = honorary ghost grey or on some
    work-list; otherwise black iff the raw mark bit equals f_M. *)

val color_of : t -> Core.Types.rf -> color option
(** The snapshot colour of an allocated reference; [None] if free. *)

(** Why a reference is grey: a ghost honorary grey (with owner), or
    membership of some process's work-list. *)
type grey_via = Via_ghg of int | Via_wl of int

val grey_via : t -> Core.Types.rf -> grey_via option
(** Attribution for a grey reference; [None] if it is not grey. *)

val to_json : t -> Obs.Json.t
(** Structured rendering of every snapshot field, as embedded in the
    initial/final state blocks of {!Report.to_json}. *)
