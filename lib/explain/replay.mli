(** Replaying an event schedule through the model.

    Exported traces carry only the schedule, so explanation re-runs the
    events from the initial system.  One event does not always pin down
    one successor (a [sys:dequeue] is offered once per buffering
    process), so replay is a backtracking DFS over matching successors;
    every accepted state is normalized (imported schedules were recorded
    post-normalization), keeping replay deterministic. *)

val event_matches : Cimp.System.event -> Cimp.System.event -> bool
(** [event_matches recorded offered]: the offered successor's event has
    the same shape, pids and labels as the recorded one — the criterion
    the backtracking search uses to select replay branches. *)

val replay :
  ?normal_form:bool ->
  broken:string ->
  ('a, 'v, 's) Cimp.System.t ->
  Cimp.System.event list ->
  (('a, 'v, 's) Check.Trace.t, string) result
(** [replay ~broken initial events] rebuilds the full trace (all
    intermediate states) or reports the 1-based index of the deepest
    event no backtracking branch could take. *)

val import_and_replay :
  ?normal_form:bool ->
  ('a, 'v, 's) Cimp.System.t ->
  Obs.Json.t ->
  (('a, 'v, 's) Check.Trace.t, string) result
(** {!Check.Trace.import} (schema parse + pid/label validation against
    the pristine initial system) followed by {!replay}. *)
