(** Model configuration: instance bounds and the ablation/variant switches.

    The defaults give the paper's collector; each switch either removes a
    mechanism the proof depends on (the checker then finds a safety
    violation) or enacts one of the paper's Section 4 Observations. *)

(** A single-site syntactic mutation over the model programs, for the
    mutation-testing campaign ([lib/mutate]).  Unlike the coarse variant
    switches below, each perturbs exactly one program point; the program
    builders consult the active mutation at construction time, keyed by the
    site's label (or label prefix), so a mutant is an ordinary [t -> t]
    tweak composing with {!Variants.t} and preserving mutator pid-symmetry
    (the reduction subsystem stays sound on mutants). *)
type mutation =
  | Drop_fence of string
      (** replace the MFENCE at this exact label by a skip *)
  | Weaken_cas of string
      (** this mark expansion (by prefix): drop the LOCK around the CAS,
          leaving an unlocked test-and-set *)
  | Elide_barrier of string
      (** ["del"] or ["ins"]: skip that write-barrier instance *)
  | Skip_hs_wait of string
      (** handshake tag (["hs1"]..["hs4"], ["hs-roots"], ["hs-work"]): the
          collector signals the round but does not wait for the acks *)
  | Swap_mark_loads of string
      (** this mark expansion: load the mark flag before f_M (Fig. 5
          lines 2-3 reversed) *)
  | Alloc_color_off  (** allocate with the opposite of the allocation color *)

type t = {
  n_muts : int;
  n_refs : int;
  n_fields : int;
  buf_bound : int;  (** TSO store-buffer capacity (the paper leaves it unspecified) *)
  sc_memory : bool;  (** commit stores immediately: the SC baseline *)
  pso_memory : bool;
      (** extension: partial store order — per-location FIFO only (first
          step toward ARM/POWER, Section 4) *)
  deletion_barrier : bool;  (** Fig. 6: the snapshot barrier *)
  insertion_barrier : bool;  (** Fig. 6: the incremental-update barrier *)
  insertion_skip_after_roots : bool;
      (** O2: mutators past get-roots skip the insertion barrier *)
  alloc_white : bool;  (** ablation: ignore f_A, always allocate unmarked *)
  handshake_fences : bool;  (** ablation: drop the four handshake MFENCEs *)
  skip_init_handshakes : bool;  (** O1: drop the two middle init rounds *)
  cas_mark : bool;  (** ablation (false): mark without the LOCK'd CAS *)
  mut_load : bool;  (** mutator operation repertoire, for targeted runs *)
  mut_store : bool;
  mut_alloc : bool;
  mut_discard : bool;
  mut_mfence : bool;
  max_cycles : int;  (** 0 = everlasting; k bounds the run to k cycles *)
  max_mut_ops : int;  (** 0 = unbounded; k = per-mutator heap-op budget *)
  mutation : mutation option;  (** at most one syntactic mutation at a time *)
}

val default : t

val mutation_name : mutation -> string
(** Stable mutant identifier, e.g. ["drop-fence:gc:hs2:store-fence"] —
    the row key of the campaign kill-matrix. *)

val describe : t -> string
(** Stable, human-readable serialization of every configuration field,
    e.g. ["muts=2;refs=2;...;mutation=-"].  Destructures the record
    exhaustively, so adding a field without extending the serialization
    is a compile error — the property certificate soundness rests on:
    two configurations with equal [describe] build the same model. *)

val hash : t -> string
(** Hex digest of {!describe}; the [config_hash] bound into certificate
    headers (lib/certify) and checked by [gcmodel recheck]. *)

(** {2 Per-site queries for the program builders}

    Each is a straight equality test against the active mutation; an
    unmutated configuration pays one pattern match per site at program
    construction time and nothing at run time. *)

val fence_dropped : t -> string -> bool
val cas_weakened : t -> string -> bool
val barrier_elided : t -> string -> bool
val hs_wait_skipped : t -> string -> bool
val mark_loads_swapped : t -> string -> bool
val alloc_flipped : t -> bool

(** {1 Process identifiers within the CIMP system} *)

val pid_gc : int
val pid_mut : t -> int -> int
val pid_sys : t -> int
val n_procs : t -> int

val n_software : t -> int
(** Collector + mutators: the processes with store buffers, work-lists and
    ghost honorary greys. *)

val proc_name : t -> int -> string
