(** Scenario presets: (configuration, heap shape, bounds) bundles used by
    the experiment drivers, the tests and the benchmarks.

    Exhaustive scenarios are sized to close (finite reachable sets, see
    DESIGN.md section 7); the minimal-witness scenarios are the smallest
    instances on which each ablation's counterexample is reachable. *)

type t = { label : string; cfg : Config.t; shape : Gcheap.Shapes.t; note : string }

val make :
  ?n_muts:int ->
  ?n_refs:int ->
  ?n_fields:int ->
  ?buf_bound:int ->
  ?max_cycles:int ->
  ?max_mut_ops:int ->
  ?mut_mfence:bool ->
  ?tweak:(Config.t -> Config.t) ->
  label:string ->
  shape:string ->
  ?note:string ->
  unit ->
  t
(** Defaults: 1 mutator, 3 refs, 1 field, buffers of 1, 1 cycle, 2 ops,
    no spontaneous mutator MFENCE.
    @raise Invalid_argument on an unknown shape name. *)

val model : t -> Model.t

val invariants : ?safety_only:bool -> t -> (string * (Model.sys -> bool)) list
(** The invariant catalogue instantiated for the scenario's configuration,
    as (name, predicate) pairs for the checker. *)

(** [jobs] worker domains (default 1 = the sequential checker, bit for
    bit; see {!Check.Par_explore.run} / {!Check.Random_walk.swarm}).
    [reduce] (default {!Reduce.Mode.None_}, i.e. the seed behaviour)
    selects the state-space reduction; it is applied identically on the
    sequential and [jobs > 1] paths.  The [bin/] tools default explore
    to [all] — the library default stays [None_] so existing callers
    and the differential tests get unreduced semantics unless they
    opt in. *)
val explore :
  ?max_states:int ->
  ?jobs:int ->
  ?safety_only:bool ->
  ?obs:Obs.Reporter.t ->
  ?reduce:Reduce.Mode.t ->
  t ->
  (Types.msg, Types.value, State.t) Check.Explore.outcome

val random_walk :
  ?seed:int ->
  ?steps:int ->
  ?jobs:int ->
  ?safety_only:bool ->
  ?obs:Obs.Reporter.t ->
  ?reduce:Reduce.Mode.t ->
  t ->
  (Types.msg, Types.value, State.t) Check.Random_walk.outcome

(** Reduced-vs-unreduced soundness cross-check ({!Reduce.Crosscheck})
    on one scenario.  [reduce] defaults to {!Reduce.Mode.All}.
    @raise Invalid_argument on [reduce = None_]. *)
val crosscheck :
  ?max_states:int ->
  ?safety_only:bool ->
  ?obs:Obs.Reporter.t ->
  ?reduce:Reduce.Mode.t ->
  t ->
  Reduce.Crosscheck.result

(** {1 Presets} *)

val baseline : t
val two_cycles : t
val two_mutators : t
val fig1 : t
val chain : t
val deep_buffers : t

val three_mutators : t
(** Beyond the seed checker at the default cap; closes under [--reduce]. *)

val with_variant : Variants.t -> t -> t

val witness_for : Variants.t -> t
(** The minimal witness scenario for a variant: the instance on which its
    counterexample is known to be reachable (see EXPERIMENTS.md). *)

val exhaustive_grid : t list
