(* The collector process: a direct transcription of Fig. 2 into CIMP
   (compare the paper's Fig. 10 excerpt of the marking loop).

   The collector is a non-terminating control loop; each iteration is one
   mark-sweep cycle.  Scheduling decisions (when to trigger a collection)
   are omitted, as in the paper.  The collector owns f_M and f_A and keeps
   f_M's value in its local state; every shared-variable access goes
   through Sys and is subject to TSO. *)

open Types
open State
open Cimp.Com

let pid = Config.pid_gc

let expect_bool = function V_bool b -> b | _ -> invalid_arg "Collector: expected V_bool"
let expect_ref = function V_ref r -> r | _ -> invalid_arg "Collector: expected V_ref"
let expect_refs = function V_refs rs -> rs | _ -> invalid_arg "Collector: expected V_refs"

let req l r = Request (l, (fun _ -> (pid, r)), fun _ s -> s)

(* One round of soft handshakes (Fig. 4): optional store fence, announce the
   round type, raise every mutator's bit in order, poll until all bits
   drop, optional load fence.  The fences are the four the paper requires
   of the pthread primitives (Section 2.4); [handshake_fences = false]
   ablates them. *)
let handshake cfg (h : hs) =
  let tag =
    match h with
    | Hs_nop1 -> "hs1"
    | Hs_nop2 -> "hs2"
    | Hs_nop3 -> "hs3"
    | Hs_nop4 -> "hs4"
    | Hs_get_roots -> "hs-roots"
    | Hs_get_work -> "hs-work"
  in
  let l n = "gc:" ^ tag ^ ":" ^ n in
  let fence lbl =
    if cfg.Config.handshake_fences && not (Config.fence_dropped cfg lbl) then req lbl Req_mfence
    else Skip lbl
  in
  (* The [skip-hs-wait] mutation signals the round but rushes past the
     acknowledgement poll: the rendezvous degenerates to a broadcast. *)
  let wait =
    if Config.hs_wait_skipped cfg tag then Skip (l "wait-skipped")
    else
      seq
        [
          assign (l "pending0") (map_gc (fun d -> { d with g_any_pending = true }));
          While
            ( l "poll-loop",
              (fun s -> (gc s).g_any_pending),
              Request
                ( l "poll",
                  (fun _ -> (pid, Req_hs_poll)),
                  fun v s -> map_gc (fun d -> { d with g_any_pending = expect_bool v }) s ) );
        ]
  in
  seq
    [
      fence (l "store-fence");
      req (l "begin") (Req_hs_begin h);
      assign (l "m0") (map_gc (fun d -> { d with g_hs_m = 0 }));
      While
        ( l "signal-loop",
          (fun s -> (gc s).g_hs_m < cfg.Config.n_muts),
          seq
            [
              Request (l "signal", (fun s -> (pid, Req_hs_set (gc s).g_hs_m)), fun _ s -> s);
              assign (l "m++") (map_gc (fun d -> { d with g_hs_m = d.g_hs_m + 1 }));
            ] );
      wait;
      fence (l "load-fence");
    ]

let process cfg : (msg, value, State.t) Cimp.Com.t =
  let l n = "gc:" ^ n in
  let wl_empty lbl =
    Request
      (lbl, (fun _ -> (pid, Req_wl_empty)), fun v s -> map_gc (fun d -> { d with g_w_empty = expect_bool v }) s)
  in
  let wl_pick lbl =
    Request
      (lbl, (fun _ -> (pid, Req_wl_pick)), fun v s -> map_gc (fun d -> { d with g_src = expect_ref v }) s)
  in
  let the_src s = match (gc s).g_src with Some r -> r | None -> invalid_arg "Collector: no src" in
  (* Scan one grey object: mark the target of each of its fields in turn,
     then blacken it (Fig. 2 lines 27-30). *)
  let scan_src =
    seq
      [
        assign (l "fld0") (map_gc (fun d -> { d with g_fld = 0 }));
        While
          ( l "fld-loop",
            (fun s -> (gc s).g_fld < cfg.Config.n_fields),
            seq
              [
                Request
                  ( l "load-field",
                    (fun s -> (pid, Req_read (L_field (the_src s, (gc s).g_fld)))),
                    fun v s ->
                      map_gc (fun d -> { d with g_mark = { d.g_mark with mk_ref = expect_ref v } }) s );
                Mark.code cfg ~pid ~prefix:(l "mark") Mark.gc_lens;
                assign (l "fld++") (map_gc (fun d -> { d with g_fld = d.g_fld + 1 }));
              ] );
        Request (l "blacken", (fun s -> (pid, Req_wl_remove (the_src s))), fun _ s -> s);
      ]
  in
  (* Fig. 2 lines 24-34: drain W, then a termination handshake; repeat while
     the handshake recovers work. *)
  let mark_loop =
    seq
      [
        wl_empty (l "w-empty-init");
        While
          ( l "mark-outer",
            (fun s -> not (gc s).g_w_empty),
            seq
              [
                wl_pick (l "pick-first");
                While
                  ( l "mark-inner",
                    (fun s -> (gc s).g_src <> None),
                    seq [ scan_src; wl_pick (l "pick-next") ] );
                handshake cfg Hs_get_work;
                wl_empty (l "w-empty");
              ] );
      ]
  in
  (* Fig. 2 lines 37-45: snapshot the heap domain and free the whites. *)
  let sweep =
    seq
      [
        req (l "phase-sweep") (Req_write (W_phase Ph_sweep));
        Request
          ( l "snapshot",
            (fun _ -> (pid, Req_heap_snapshot)),
            fun v s -> map_gc (fun d -> { d with g_sweep = expect_refs v }) s );
        While
          ( l "sweep-loop",
            (fun s -> (gc s).g_sweep <> []),
            seq
              [
                assign (l "sweep-next") (map_gc (fun d ->
                    match d.g_sweep with
                    | r :: rest -> { d with g_ref = Some r; g_sweep = rest }
                    | [] -> invalid_arg "Collector: empty sweep list"));
                Request
                  ( l "sweep-load-flag",
                    (fun s -> (pid, Req_read (L_mark (Option.get (gc s).g_ref)))),
                    fun v s -> map_gc (fun d -> { d with g_flag = expect_bool v }) s );
                If
                  ( l "sweep-test",
                    (fun s -> (gc s).g_flag <> (gc s).g_fM),
                    Request (l "free", (fun s -> (pid, Req_free (Option.get (gc s).g_ref))), fun _ s -> s),
                    Skip (l "sweep-live") );
              ] );
      ]
  in
  let init_handshakes =
    (* O1 (Section 4, Observations): the two middle initialization rounds
       can purportedly be elided on x86-TSO; with [skip_init_handshakes]
       the control-variable writes still happen, in order, but only the
       final round communicates them. *)
    if cfg.Config.skip_init_handshakes then
      [
        assign (l "flip-fM") (map_gc (fun d -> { d with g_fM = not d.g_fM }));
        Request (l "write-fM", (fun s -> (pid, Req_write (W_fM (gc s).g_fM))), fun _ s -> s);
        req (l "phase-init") (Req_write (W_phase Ph_init));
        req (l "phase-mark") (Req_write (W_phase Ph_mark));
        Request (l "write-fA", (fun s -> (pid, Req_write (W_fA (gc s).g_fM))), fun _ s -> s);
        handshake cfg Hs_nop4;
      ]
    else
      [
        assign (l "flip-fM") (map_gc (fun d -> { d with g_fM = not d.g_fM }));
        Request (l "write-fM", (fun s -> (pid, Req_write (W_fM (gc s).g_fM))), fun _ s -> s);
        handshake cfg Hs_nop2;
        req (l "phase-init") (Req_write (W_phase Ph_init));
        handshake cfg Hs_nop3;
        req (l "phase-mark") (Req_write (W_phase Ph_mark));
        Request (l "write-fA", (fun s -> (pid, Req_write (W_fA (gc s).g_fM))), fun _ s -> s);
        handshake cfg Hs_nop4;
      ]
  in
  let cycle_body =
    seq
      ([ handshake cfg Hs_nop1 ]  (* lines 3-4: all mutators see Idle *)
      @ init_handshakes
      @ [ handshake cfg Hs_get_roots ]  (* lines 15-20 *)
      @ [ mark_loop ]
      @ [ sweep ]
      @ [ req (l "phase-idle") (Req_write (W_phase Ph_idle)) ])
  in
  if cfg.Config.max_cycles = 0 then Loop cycle_body
  else
    (* Bounded variant for exhaustive runs: k cycles, then halt.  The
       paper's collector is the k = 0 everlasting loop. *)
    seq
      [
        While
          ( l "cycle-loop",
            (fun s -> (gc s).g_cycles < cfg.Config.max_cycles),
            seq [ cycle_body; assign (l "cycle++") (map_gc (fun d -> { d with g_cycles = d.g_cycles + 1 })) ]
          );
        Skip (l "halted");
      ]
