(** The GC model's instantiation of [lib/reduce]: mutator symmetry,
    register liveness, and the mfence-deferral POR policy.

    Sound only under normal-form exploration (the checkers' default):
    the liveness rules null registers whose remaining readers are
    definite-tau steps, which never rest in normal form.  See DESIGN.md
    "State-space reduction" for the full argument. *)

(** The symmetry spec: mutator pids are interchangeable, sorted on
    (control spine, canonicalized local data, per-pid Sys slices);
    permutation is skipped inside the handshake signal loop, the one
    window where the collector addresses mutators by index. *)
val spec : Config.t -> (Types.msg, Types.value, State.t) Reduce.Symmetry.spec

(** Deferrable transitions are exactly the mfence rendezvous ("...fence"
    request labels). *)
val por_policy : Reduce.Por.policy

(** [reducer cfg mode]: the checker hook for [mode]; [None] for
    {!Reduce.Mode.None_} (bit-for-bit unreduced checking). *)
val reducer :
  Config.t -> Reduce.Mode.t -> (Types.msg, Types.value, State.t) Check.Reducer.t option

(** Test helper: concretely permute the mutators by a mutator-index
    permutation, moving the per-pid slices of the Sys data along.  The
    result is fingerprintable but {e not} executable (request closures
    embed pids). *)
val permute_muts : Config.t -> Model.sys -> (int -> int) -> Model.sys
