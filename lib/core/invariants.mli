(** Executable renditions of the paper's invariant catalogue
    (Sections 2.1 and 3.2).

    Each invariant is a predicate over a global CIMP state; the checker
    evaluates all of them at every reachable state.  The first three are
    the safety properties (the headline theorem and its operational
    manifestations); the rest are the auxiliary invariants of the proof,
    guarded exactly as the paper guards them (by handshake phase, pending
    writes, etc.).  Guards that only hold for the unablated algorithm
    consult the configuration. *)

(** Structured failure evidence: the failing conjunct of an invariant,
    the heap references and processes witnessing it, and a one-sentence
    account.  Produced by {!t.witness} on a violating state — the
    diagnosable-counterexample payload [lib/explain] and the
    [gcmodel explain] subcommand build their narratives from. *)
type witness = {
  conjunct : string;
  refs : Types.rf list;
  pids : int list;
  detail : string;
}

val witness_to_json : witness -> Obs.Json.t
val pp_witness : witness Fmt.t

type t = {
  name : string;
  doc : string;
  safety : bool;  (** part of the headline safety statement? *)
  paper : string;
      (** the paper's name/section for this invariant, e.g.
          ["sys_phase_inv / handshake_phase_inv, Section 3.2 / Fig. 3"] *)
  conjuncts : (string * string) list;
      (** every conjunct name this invariant's witnesses can carry, each
          with a one-line informal statement — the source of truth for the
          generated [docs/INVARIANTS.md] ([gcmodel doc-invariants]) and
          the columns of the campaign kill-matrix *)
  check : Model.sys -> bool;
  witness : Model.sys -> witness list;
      (** Structured evidence on the state: [[]] exactly when {!check}
          holds (guaranteed by construction — [witness] re-evaluates
          [check] first).  Only meant to run on the one violating state;
          it recomputes reachability freely and is not part of the
          checker's hot path. *)
}

(** {1 Root sets} *)

val buffered_insertions : State.sys_data -> int -> Types.rf list
(** References being written into objects by writes pending in a process's
    TSO buffer. *)

val buffered_deletions : State.sys_data -> int -> Types.rf list
(** For each pending field write, the value it will overwrite (committed
    heap updated by the earlier same-buffer writes to that field). *)

val extended_roots : Config.t -> Model.sys -> Types.rf list
(** The paper's extended root set: mutator roots, greys, references in TSO
    buffers, and in-flight deletion-barrier registers. *)

val reachable_from_roots : Config.t -> Model.sys -> Types.rf list

(** {1 The catalogue} *)

val valid_refs_inv : Config.t -> t
(** The headline theorem: [] (forall r. reachable r -> valid_ref r). *)

val no_dangling : Config.t -> t
val free_only_garbage : Config.t -> t
val worklists_disjoint : Config.t -> t
val valid_w_inv : Config.t -> t
val tso_ownership : Config.t -> t
val tso_lock_scope : Config.t -> t
val gc_fm_coherent : Config.t -> t
val phase_inv : Config.t -> t
val fa_fm_relation : Config.t -> t
val no_black_refs_init : Config.t -> t
val idle_heap_uniform : Config.t -> t
val marked_insertions : Config.t -> t
val marked_deletions : Config.t -> t
val reachable_snapshot_inv : Config.t -> t
val gc_w_empty_mut_inv : Config.t -> t
val weak_tricolor : Config.t -> t
val strong_tricolor : Config.t -> t

val safety_invariants : Config.t -> t list
val auxiliary_invariants : Config.t -> t list
val all : Config.t -> t list
val find : Config.t -> string -> t option
