(* The mutator process: a maximally non-deterministic choice among the
   operations of Fig. 6, a spontaneous MFENCE, and the mutator's side of
   the soft handshakes (Section 3.1, "Mutators").

   Every operation is free of GC-safe points: the handshake branch is only
   available at the top of the loop, so elemental operations (loads,
   stores with their barriers, allocation) cannot be interrupted by
   collector requests — though other processes still interleave freely.

   Any client of the collector is expected to refine this process, which
   assumes type safety but no data-race freedom: distinct mutators may race
   on the same fields with no synchronisation whatsoever. *)

open Types
open State
open Cimp.Com

let expect_bool = function V_bool b -> b | _ -> invalid_arg "Mutator: expected V_bool"
let expect_ref = function V_ref r -> r | _ -> invalid_arg "Mutator: expected V_ref"
let expect_hs = function V_hs (h, b) -> (h, b) | _ -> invalid_arg "Mutator: expected V_hs"

(* [m] is the mutator index; its pid is 1 + m. *)
let process cfg m : (msg, value, State.t) Cimp.Com.t =
  let pid = Config.pid_mut cfg m in
  let l n = "mut:" ^ n in
  (* Operation budget for bounded exhaustive runs (Config.max_mut_ops).
     Handshaking is always free; heap operations spend budget. *)
  let budget_ok d = cfg.Config.max_mut_ops = 0 || d.m_ops < cfg.Config.max_mut_ops in
  let spend d = if cfg.Config.max_mut_ops = 0 then d else { d with m_ops = d.m_ops + 1 } in
  let req lbl r = Request (lbl, (fun _ -> (pid, r)), fun _ s -> s) in
  let set_mark_target lbl target =
    assign lbl (fun s -> map_mut (fun d -> { d with m_mark = { d.m_mark with mk_ref = target (mut s) } }) s)
  in
  (* Load (Fig. 6): pick a root and a field, read the field (TSO), and adopt
     the loaded reference as a new root in the same atomic step (the
     operation is a single transition in the Isabelle model).  No read
     barrier — the paper's design treats mutator roots as black and relies
     on grey protection. *)
  let load_op =
    seq
      [
        Local_op
          ( l "load-choose",
            fun s ->
              let d = mut s in
              if not (budget_ok d) then []
              else
                List.concat_map
                  (fun src ->
                    List.init cfg.Config.n_fields (fun f ->
                        map_mut (fun d -> spend { d with m_src = Some src; m_fld = f }) s))
                  d.m_roots );
        Request
          ( l "load-field",
            (fun s ->
              let d = mut s in
              (pid, Req_read (L_field (Option.get d.m_src, d.m_fld)))),
            fun v s ->
              map_mut
                (fun d ->
                  match expect_ref v with
                  | None -> d
                  | Some r -> { d with m_roots = Iset.add r d.m_roots })
                s );
      ]
  in
  (* Store (Fig. 6): pick dst, src in roots and a field; run the deletion
     barrier on the field's current value, the insertion barrier on dst,
     then issue the store (TSO-buffered). *)
  (* The [elide-barrier] mutations skip one barrier instance while leaving
     the configuration flags (and so the invariant guards) untouched: the
     auxiliary invariants stay armed and indict the missing barrier. *)
  let deletion_on = cfg.Config.deletion_barrier && not (Config.barrier_elided cfg "del") in
  let insertion_on = cfg.Config.insertion_barrier && not (Config.barrier_elided cfg "ins") in
  let deletion_barrier =
    if deletion_on then
      seq
        [
          set_mark_target (l "del-target") (fun d -> d.m_loaded);
          Mark.code cfg ~pid ~prefix:(l "bar-del") Mark.mut_lens;
        ]
    else Skip (l "no-del-barrier")
  in
  let insertion_barrier =
    if insertion_on then begin
      let body =
        seq
          [
            set_mark_target (l "ins-target") (fun d -> d.m_dst);
            Mark.code cfg ~pid ~prefix:(l "bar-ins") Mark.mut_lens;
          ]
      in
      if cfg.Config.insertion_skip_after_roots then
        (* O2: the extra branch — skip the insertion barrier once this
           mutator's roots have been sampled this cycle. *)
        If (l "ins-rooted-test", (fun s -> (mut s).m_rooted), Skip (l "ins-skipped"), body)
      else body
    end
    else Skip (l "no-ins-barrier")
  in
  let store_op =
    let choose =
      Local_op
        ( l "store-choose",
          fun s ->
            let d = mut s in
            if not (budget_ok d) then []
            else
              List.concat_map
                (fun src ->
                  List.concat_map
                    (fun dst ->
                      List.init cfg.Config.n_fields (fun f ->
                          map_mut
                            (fun d -> spend { d with m_src = Some src; m_dst = Some dst; m_fld = f })
                            s))
                    d.m_roots)
                d.m_roots )
    in
    (* Fig. 6 line 8's mark(src.fld, Wm) needs src.fld's current value: the
       deletion barrier loads it (TSO) but does *not* adopt it as a root —
       while the barrier runs, the reference is protected only by the
       register and the ghost honorary grey (Section 3.2). *)
    let load_old =
      Request
        ( l "store-load-old",
          (fun s ->
            let d = mut s in
            (pid, Req_read (L_field (Option.get d.m_src, d.m_fld)))),
          fun v s -> map_mut (fun d -> { d with m_loaded = expect_ref v }) s )
    in
    let write =
      Request
        ( l "store-write",
          (fun s ->
            let d = mut s in
            (pid, Req_write (W_field (Option.get d.m_src, d.m_fld, d.m_dst)))),
          fun _ s -> s )
    in
    seq
      ([ choose ]
      @ (if deletion_on then [ load_old; deletion_barrier ] else [])
      @ [ insertion_barrier; write ])
  in
  (* Alloc (Fig. 6): load f_A (TSO), then the paper's atomic allocation,
     which installs the object and adopts the new reference as a root in
     one step.  [alloc_white] ablates the allocate-black rule by
     installing the opposite mark. *)
  let alloc_op =
    seq
      [
        Local_op (l "alloc-budget", fun s ->
            let d = mut s in
            if budget_ok d then [ map_mut spend s ] else []);
        Request
          ( l "alloc-load-fA",
            (fun _ -> (pid, Req_read L_fA)),
            fun v s -> map_mut (fun d -> { d with m_fA = expect_bool v }) s );
        Request
          ( l "alloc",
            (fun s ->
              let d = mut s in
              let color = if cfg.Config.alloc_white then not d.m_fA else d.m_fA in
              (pid, Req_alloc (if Config.alloc_flipped cfg then not color else color))),
            fun v s ->
              map_mut
                (fun d ->
                  match expect_ref v with
                  | None -> d (* heap exhausted *)
                  | Some r -> { d with m_roots = Iset.add r d.m_roots })
                s );
      ]
  in
  (* Discard (Fig. 6): drop any root. *)
  let discard_op =
    Local_op
      ( l "discard",
        fun s ->
          let d = mut s in
          if not (budget_ok d) then []
          else
            List.map
              (fun r -> map_mut (fun d -> spend { d with m_roots = Iset.remove r d.m_roots }) s)
              d.m_roots )
  in
  let mfence_op =
    seq
      [
        Local_op (l "mfence-budget", fun s ->
            let d = mut s in
            if budget_ok d then [ map_mut spend s ] else []);
        req (l "mfence") Req_mfence;
      ]
  in
  (* The mutator's side of a handshake (Figs. 3 and 4): at a GC-safe point,
     poll the pending bit; if raised, fence, do the round's work, fence,
     and lower the bit.  get-roots marks and transfers the roots
     (Fig. 2 lines 16-20); get-work transfers the work-list (lines 32-34). *)
  let fence lbl =
    if cfg.Config.handshake_fences && not (Config.fence_dropped cfg lbl) then req lbl Req_mfence
    else Skip lbl
  in
  let mark_roots =
    seq
      [
        assign (l "roots-todo") (map_mut (fun d -> { d with m_todo = d.m_roots }));
        While
          ( l "roots-loop",
            (fun s -> (mut s).m_todo <> []),
            seq
              [
                assign (l "roots-next") (map_mut (fun d ->
                    match d.m_todo with
                    | r :: rest -> { d with m_mark = { d.m_mark with mk_ref = Some r }; m_todo = rest }
                    | [] -> invalid_arg "Mutator: empty todo"));
                Mark.code cfg ~pid ~prefix:(l "root-mark") Mark.mut_lens;
              ] );
      ]
  in
  let hs_work =
    seq
      [
        If
          ( l "hs-roots-test",
            (fun s -> (mut s).m_hs_type = Hs_get_roots),
            seq
              [
                mark_roots;
                req (l "hs-roots-transfer") Req_wl_transfer;
                assign (l "hs-rooted") (map_mut (fun d -> { d with m_rooted = true }));
              ],
            Skip (l "hs-not-roots") );
        If
          ( l "hs-work-test",
            (fun s -> (mut s).m_hs_type = Hs_get_work),
            req (l "hs-work-transfer") Req_wl_transfer,
            Skip (l "hs-not-work") );
        If
          ( l "hs-nop1-test",
            (fun s -> (mut s).m_hs_type = Hs_nop1),
            assign (l "hs-unrooted") (map_mut (fun d -> { d with m_rooted = false })),
            Skip (l "hs-not-nop1") );
      ]
  in
  let handshake_op =
    seq
      [
        Request
          ( l "hs-read",
            (fun _ -> (pid, Req_hs_read)),
            fun v s ->
              let h, b = expect_hs v in
              map_mut (fun d -> { d with m_hs_type = h; m_hs_pending = b }) s );
        If
          ( l "hs-pending-test",
            (fun s -> (mut s).m_hs_pending),
            seq [ fence (l "hs-load-fence"); hs_work; fence (l "hs-store-fence"); req (l "hs-done") Req_hs_done ],
            Skip (l "hs-nothing") );
      ]
  in
  let branches =
    [ handshake_op ]
    @ (if cfg.Config.mut_load then [ load_op ] else [])
    @ (if cfg.Config.mut_store then [ store_op ] else [])
    @ (if cfg.Config.mut_alloc then [ alloc_op ] else [])
    @ (if cfg.Config.mut_discard then [ discard_op ] else [])
    @ if cfg.Config.mut_mfence then [ mfence_op ] else []
  in
  Loop (Choose branches)
