(* Model configuration: instance bounds and the ablation/variant switches.

   The [true, true, ...] defaults give the paper's collector; each switch
   either removes a mechanism the proof depends on (expected: the checker
   finds a safety violation) or enacts one of the paper's Section 4
   "Observations" (expected: still safe). *)

(* Single-site syntactic mutations over the model programs, for the
   mutation-testing campaign (lib/mutate).  Unlike the variant switches
   above each of these perturbs exactly ONE program point; the builders in
   collector.ml / mutator.ml / mark.ml consult the active mutation at
   construction time, keyed by the label (or label prefix) of the site, so
   a mutant is still an ordinary [t -> t] tweak that composes with
   [Variants.t] and leaves the mutator programs identical across pids
   (pid-symmetry reduction stays sound). *)
type mutation =
  | Drop_fence of string  (* replace the MFENCE at this exact label by a skip *)
  | Weaken_cas of string  (* this mark expansion (by prefix): CAS -> unlocked test-and-set *)
  | Elide_barrier of string  (* "del" | "ins": skip that write-barrier instance *)
  | Skip_hs_wait of string  (* handshake tag: collector does not wait for the acks *)
  | Swap_mark_loads of string  (* this mark expansion: load flag before f_M *)
  | Alloc_color_off  (* allocate with the opposite of the allocation color *)

type t = {
  n_muts : int;
  n_refs : int;
  n_fields : int;
  buf_bound : int;  (* TSO store-buffer capacity (paper: unbounded) *)
  sc_memory : bool;  (* commit stores immediately: the SC baseline *)
  pso_memory : bool;
    (* extension: partial store order — buffers are per-location FIFO only,
       stores to different locations may commit out of order (first step
       toward the ARM/POWER models of Section 4) *)
  deletion_barrier : bool;  (* Fig. 6 line 8: the snapshot barrier *)
  insertion_barrier : bool;  (* Fig. 6 line 9: the incremental-update barrier *)
  insertion_skip_after_roots : bool;
    (* O2: mutators that passed get-roots skip the insertion barrier
       (extra branch in the store barrier) *)
  alloc_white : bool;  (* ablation: ignore fA, always allocate unmarked *)
  handshake_fences : bool;  (* ablation: drop all four handshake MFENCEs *)
  skip_init_handshakes : bool;
    (* O1: drop the two middle initialization rounds (nop2, nop3) *)
  cas_mark : bool;  (* ablation (false): mark without the LOCK'd CAS *)
  mut_load : bool;  (* mutator operation repertoire, for targeted runs *)
  mut_store : bool;
  mut_alloc : bool;
  mut_discard : bool;
  mut_mfence : bool;
  max_cycles : int;
    (* 0 = the paper's everlasting control loop; k > 0 bounds the run to k
       mark-sweep cycles so that exhaustive exploration can close *)
  max_mut_ops : int;
    (* 0 = unbounded mutators; k > 0 gives each mutator a budget of k
       heap operations (handshaking stays free), again for closure *)
  mutation : mutation option;  (* at most one syntactic mutation at a time *)
}

let default =
  {
    n_muts = 1;
    n_refs = 3;
    n_fields = 1;
    buf_bound = 2;
    sc_memory = false;
    pso_memory = false;
    deletion_barrier = true;
    insertion_barrier = true;
    insertion_skip_after_roots = false;
    alloc_white = false;
    handshake_fences = true;
    skip_init_handshakes = false;
    cas_mark = true;
    mut_load = true;
    mut_store = true;
    mut_alloc = true;
    mut_discard = true;
    mut_mfence = true;
    max_cycles = 0;
    max_mut_ops = 0;
    mutation = None;
  }

let mutation_name = function
  | Drop_fence lbl -> "drop-fence:" ^ lbl
  | Weaken_cas p -> "weaken-cas:" ^ p
  | Elide_barrier b -> "elide-barrier:" ^ b
  | Skip_hs_wait tag -> "skip-hs-wait:" ^ tag
  | Swap_mark_loads p -> "swap-mark-loads:" ^ p
  | Alloc_color_off -> "alloc-color-off"

(* Stable serialization of the full configuration, for certificate
   headers (lib/certify).  The record is destructured exhaustively —
   without a wildcard — so adding a field breaks this function at
   compile time instead of silently hashing configurations that differ
   in the new field to the same string. *)
let describe cfg =
  let {
    n_muts;
    n_refs;
    n_fields;
    buf_bound;
    sc_memory;
    pso_memory;
    deletion_barrier;
    insertion_barrier;
    insertion_skip_after_roots;
    alloc_white;
    handshake_fences;
    skip_init_handshakes;
    cas_mark;
    mut_load;
    mut_store;
    mut_alloc;
    mut_discard;
    mut_mfence;
    max_cycles;
    max_mut_ops;
    mutation;
  } =
    cfg
  in
  let b v = if v then "1" else "0" in
  String.concat ";"
    [
      Printf.sprintf "muts=%d" n_muts;
      Printf.sprintf "refs=%d" n_refs;
      Printf.sprintf "fields=%d" n_fields;
      Printf.sprintf "buf=%d" buf_bound;
      "sc=" ^ b sc_memory;
      "pso=" ^ b pso_memory;
      "del=" ^ b deletion_barrier;
      "ins=" ^ b insertion_barrier;
      "o2=" ^ b insertion_skip_after_roots;
      "allocw=" ^ b alloc_white;
      "hsf=" ^ b handshake_fences;
      "o1=" ^ b skip_init_handshakes;
      "cas=" ^ b cas_mark;
      "load=" ^ b mut_load;
      "store=" ^ b mut_store;
      "alloc=" ^ b mut_alloc;
      "discard=" ^ b mut_discard;
      "mfence=" ^ b mut_mfence;
      Printf.sprintf "cycles=%d" max_cycles;
      Printf.sprintf "ops=%d" max_mut_ops;
      ("mutation=" ^ match mutation with None -> "-" | Some m -> mutation_name m);
    ]

let hash cfg = Digest.to_hex (Digest.string (describe cfg))

(* Per-site queries for the program builders.  Each is a straight equality
   test against the active mutation, so an unmutated configuration pays one
   pattern match per site at construction time and nothing at run time. *)
let fence_dropped cfg lbl = cfg.mutation = Some (Drop_fence lbl)
let cas_weakened cfg prefix = cfg.mutation = Some (Weaken_cas prefix)
let barrier_elided cfg which = cfg.mutation = Some (Elide_barrier which)
let hs_wait_skipped cfg tag = cfg.mutation = Some (Skip_hs_wait tag)
let mark_loads_swapped cfg prefix = cfg.mutation = Some (Swap_mark_loads prefix)
let alloc_flipped cfg = cfg.mutation = Some Alloc_color_off

(* Process identifiers within the CIMP system: the collector, then the
   mutators, then Sys.  Store buffers, work-lists and ghost-grey slots are
   indexed by the software pids 0..n_muts (collector and mutators). *)
let pid_gc = 0
let pid_mut _cfg m = 1 + m
let pid_sys cfg = 1 + cfg.n_muts
let n_procs cfg = cfg.n_muts + 2
let n_software cfg = cfg.n_muts + 1

let proc_name cfg p =
  if p = pid_gc then "gc"
  else if p = pid_sys cfg then "sys"
  else Printf.sprintf "mut%d" (p - 1)
