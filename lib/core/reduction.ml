(* The GC model's instantiation of lib/reduce: which processes are
   symmetric, which registers are dead where, and which transitions the
   ample-set selector may defer.

   Everything here is justified against the model source and the
   invariant catalogue; DESIGN.md ("State-space reduction") records the
   argument.  Two global preconditions:

   - Normal-form exploration (the checkers' default).  The liveness
     rules below null registers that are only read by definite-tau
     steps (If/While tests, assigns), which never rest in normal form;
     at non-normal-form rest points those registers are live and the
     rules would be unsound.

   - Invariants quantify over mutators symmetrically (every invariant
     in Invariants.all does), and read, of all the local registers,
     only m_loaded (under bar-del control), g_ref (at gc:free and its
     sweep window) and g_fM — which is why those three appear in keep
     conditions below and the rest can be nulled when control cannot
     read them again before an overwrite. *)

open Types
open State

let spine_of sys p = Cimp.Com.stack_labels (Cimp.System.proc sys p).Cimp.Com.stack
let head_of sys p = match spine_of sys p with [] -> "" | l :: _ -> l

(* -- register liveness ------------------------------------------------------

   [canon_mut]/[canon_gc] null dead registers, returning the argument
   physically unchanged when no rule fires (Symmetry counts a state as
   "nulled" via [!=]).  [spine] is the process's label spine, [h] its
   head (current) label. *)

let canon_mut spine h (d : mut_data) =
  (* At the top of the op loop (spine = [hs-read]: the Choose over ops,
     whose first branch is the handshake) every op-scratch register is
     dead: each op writes its own scratch before reading it.  m_roots,
     m_ops and m_rooted genuinely carry across ops and stay. *)
  let d =
    if
      spine = [ "mut:hs-read" ]
      && (d.m_src <> None || d.m_dst <> None || d.m_fld <> 0 || d.m_fA || d.m_hs_pending
         || d.m_hs_type <> Hs_get_work || d.m_todo <> [])
    then
      {
        d with
        m_src = None;
        m_dst = None;
        m_fld = 0;
        m_fA = false;
        m_hs_pending = false;
        m_hs_type = Hs_get_work;
        m_todo = [];
      }
    else d
  in
  (* m_loaded: read by the deletion barrier's mark code and by the
     extended-roots invariant, both only under bar-del (or the
     del-target assign, kept for non-normal-form belt and braces). *)
  let d =
    if
      d.m_loaded <> None
      && not (String.starts_with ~prefix:"mut:bar-del" h || h = "mut:del-target")
    then { d with m_loaded = None }
    else d
  in
  (* mark registers: live only inside an inlined mark expansion *)
  if
    d.m_mark <> mark_regs0
    && not
         (String.starts_with ~prefix:"mut:bar-del" h
         || String.starts_with ~prefix:"mut:bar-ins" h
         || String.starts_with ~prefix:"mut:root-mark" h)
  then { d with m_mark = mark_regs0 }
  else d

let canon_gc h (g : gc_data) =
  let g =
    if g.g_mark <> mark_regs0 && not (String.starts_with ~prefix:"gc:mark:" h) then
      { g with g_mark = mark_regs0 }
    else g
  in
  (* g_ref: read by the sweep's flag load and free request closures and
     by free_only_garbage (which only fires at gc:free) *)
  let g =
    if g.g_ref <> None && not (h = "gc:sweep-load-flag" || h = "gc:free") then
      { g with g_ref = None }
    else g
  in
  (* g_flag / g_any_pending: consumed by If/While tests, which are
     definite taus — never live at a normal-form rest point *)
  let g = if g.g_flag then { g with g_flag = false } else g in
  let g = if g.g_any_pending then { g with g_any_pending = false } else g in
  (* g_hs_m: live only at the signal request inside the signal loop *)
  if g.g_hs_m <> 0 && not (String.ends_with ~suffix:":signal" h) then { g with g_hs_m = 0 }
  else g

(* -- pid renaming of the Sys data ------------------------------------------

   [perm] maps old pid to new pid (identity outside the mutators).  The
   software-pid-indexed lists (buffers, work-lists, ghg) move with it
   directly — software pids coincide with process pids for the collector
   and the mutators — and the mutator-indexed handshake lists move with
   its restriction m -> perm (m+1) - 1. *)

let permute_idx permi l =
  let arr = Array.of_list l in
  let out = Array.copy arr in
  Array.iteri (fun j x -> out.(permi j) <- x) arr;
  Array.to_list out

let rename_sys ~perm sd =
  let perm_m m = perm (m + 1) - 1 in
  {
    sd with
    s_bufs = permute_idx perm sd.s_bufs;
    s_W = permute_idx perm sd.s_W;
    s_ghg = permute_idx perm sd.s_ghg;
    s_hs_pending = permute_idx perm_m sd.s_hs_pending;
    s_hs_done = permute_idx perm_m sd.s_hs_done;
    s_hs_mut_hs = permute_idx perm_m sd.s_hs_mut_hs;
    s_lock = Option.map perm sd.s_lock;
  }

(* -- the symmetry spec ------------------------------------------------------ *)

let spec cfg : (Types.msg, Types.value, State.t) Reduce.Symmetry.spec =
  {
    Reduce.Symmetry.sym_pids = List.init cfg.Config.n_muts (Config.pid_mut cfg);
    canon_local =
      (fun sys ~pid d ->
        match d with
        | L_gc g ->
          let g' = canon_gc (head_of sys pid) g in
          if g' == g then d else L_gc g'
        | L_mut m ->
          let spine = spine_of sys pid in
          let h = match spine with [] -> "" | l :: _ -> l in
          let m' = canon_mut spine h m in
          if m' == m then d else L_mut m'
        | L_sys _ -> d);
    key =
      (fun sys ~pid ~canon ->
        let sd = Model.sys_data sys cfg in
        let m = pid - 1 in
        Stdlib.Obj.repr
          ( spine_of sys pid,
            mut canon,
            buf_of sd pid,
            wl_of sd pid,
            ghg_of sd pid,
            (hs_bit sd m, hs_done sd m, List.nth sd.s_hs_mut_hs m),
            sd.s_lock = Some pid ));
    permute_ok =
      (* the handshake signal loop addresses mutators by index in a
         fixed order: inside it (exactly the <tag>:signal rest points)
         the permutation is not an automorphism, so skip it there *)
      (fun sys -> not (String.ends_with ~suffix:":signal" (head_of sys Config.pid_gc)));
    rename_shared =
      (fun ~perm ~pid:_ d ->
        match d with L_sys sd -> L_sys (rename_sys ~perm sd) | L_gc _ | L_mut _ -> d);
  }

(* -- the POR policy ---------------------------------------------------------

   Deferrable transitions are exactly the mfence rendezvous: every
   "...fence" request label in the model is a Req_mfence, which Sysproc
   answers only when the requester's buffer is empty, changing no Sys
   state — so when one is enabled it is its owner's whole enabled set,
   commutes exactly with every other process's transitions, and (with
   its requester-local normalization cascade) is invisible to the
   invariant catalogue. *)

let por_policy =
  {
    Reduce.Por.deferrable =
      (function
      | Cimp.System.Rendezvous { req_label; _ } -> String.ends_with ~suffix:"fence" req_label
      | Cimp.System.Tau _ -> false);
  }

(* -- reducer assembly ------------------------------------------------------- *)

let reducer cfg (mode : Reduce.Mode.t) :
    (Types.msg, Types.value, State.t) Check.Reducer.t option =
  match mode with
  | None_ -> None
  | (Sym | Por | All) as mode ->
    let sym_permuted = Atomic.make 0 in
    let reg_nulled = Atomic.make 0 in
    let deferred = Atomic.make 0 in
    let sp = spec cfg in
    let canonical sys =
      let fp, permuted, nulled = Reduce.Symmetry.canonical_fingerprint sp sys in
      if permuted then Atomic.incr sym_permuted;
      if nulled then Atomic.incr reg_nulled;
      fp
    in
    let fingerprint =
      match mode with
      | Sym | All -> canonical
      | Por -> Check.Fingerprint.of_system
      | None_ -> assert false
    in
    let successors =
      match mode with
      | Por | All -> Reduce.Por.successors por_policy ~deferred
      | Sym -> Cimp.System.steps
      | None_ -> assert false
    in
    (* the executable representative matches the fingerprint's nulling:
       modes that dedup on the liveness-canonical fingerprint expand the
       nulled state, so the explored graph is the quotient graph and the
       visited class set is scheduling-independent (certificates depend
       on this); plain-fingerprint modes expand states unchanged *)
    let canon_state =
      match mode with
      | Sym | All -> Reduce.Symmetry.canon_state sp
      | Por -> Fun.id
      | None_ -> assert false
    in
    Some
      {
        Check.Reducer.name = Reduce.Mode.to_string mode;
        fingerprint;
        successors;
        canon_state;
        sym_permuted;
        reg_nulled;
        deferred;
      }

(* -- test helper ------------------------------------------------------------

   Concretely permute the mutators of [sys] by [perm_m] (mutator index
   to mutator index): process slots move, and the per-pid slices of the
   Sys data move with them.  The result is *fingerprintable but not
   executable* — commands embed pids inside request closures, which are
   not rewritten.  The symmetry property test checks canonical
   fingerprints are invariant under this. *)

let permute_muts cfg sys perm_m =
  let n = Cimp.System.n_procs sys in
  let nm = cfg.Config.n_muts in
  let perm p = if p >= 1 && p <= nm then 1 + perm_m (p - 1) else p in
  let inv = Array.make n 0 in
  for p = 0 to n - 1 do
    inv.(perm p) <- p
  done;
  let names = Array.init n (Cimp.System.name sys) in
  let procs = Array.init n (fun q -> Cimp.System.proc sys inv.(q)) in
  let sys' = Cimp.System.make names procs in
  Cimp.System.map_data sys' (Config.pid_sys cfg) (map_sys (rename_sys ~perm))
