(* Executable renditions of the paper's invariant catalogue (Sections 2.1
   and 3.2).  Each invariant is a predicate over a global CIMP state; the
   checker evaluates all of them at every reachable state, replacing the
   Isabelle induction with exhaustive evaluation on bounded instances.

   The first three are the *safety* properties (the headline theorem and
   its direct operational manifestations); the rest are the auxiliary
   invariants the proof composes, each guarded exactly as the paper guards
   them (by handshake phase, by pending-write status, etc.).  Guards that
   only hold for the unablated algorithm consult the configuration: e.g.
   the phase-protocol invariants presume the handshake fences.

   Besides the boolean [check] (the checker's hot path, evaluated at every
   state), every invariant carries a [witness] function producing
   structured failure evidence — which conjunct failed, on which
   references and processes, and a one-sentence account.  [witness] is
   only ever evaluated on the single violating state (by [lib/explain]
   and the [gcmodel explain] subcommand), so it may recompute freely; by
   construction it returns [[]] exactly when [check] holds. *)

open Types
open State

type witness = {
  conjunct : string;  (* the failing conjunct of the invariant *)
  refs : rf list;  (* heap references witnessing the failure *)
  pids : int list;  (* processes involved *)
  detail : string;  (* one sentence naming the witness *)
}

type t = {
  name : string;
  doc : string;
  safety : bool;  (* part of the headline safety statement? *)
  paper : string;  (* the paper's name/section for this invariant *)
  conjuncts : (string * string) list;
    (* every conjunct name this invariant's witnesses can carry, with a
       one-line informal statement — the source of truth for
       docs/INVARIANTS.md (gcmodel doc-invariants) and the columns of the
       campaign kill-matrix *)
  check : Model.sys -> bool;
  witness : Model.sys -> witness list;
}

let w ?(refs = []) ?(pids = []) conjunct detail = { conjunct; refs; pids; detail }

let witness_to_json wit =
  Obs.Json.Obj
    [
      ("conjunct", Obs.Json.String wit.conjunct);
      ("refs", Obs.Json.List (List.map (fun r -> Obs.Json.Int r) wit.refs));
      ("pids", Obs.Json.List (List.map (fun p -> Obs.Json.Int p) wit.pids));
      ("detail", Obs.Json.String wit.detail);
    ]

let pp_witness ppf wit =
  Fmt.pf ppf "@[<h>[%s]%a%a %s@]" wit.conjunct
    (fun ppf -> function [] -> () | rs -> Fmt.pf ppf " refs=%a" Fmt.(Dump.list int) rs)
    wit.refs
    (fun ppf -> function [] -> () | ps -> Fmt.pf ppf " pids=%a" Fmt.(Dump.list int) ps)
    wit.pids wit.detail

(* Seal a check with a witness function, enforcing the contract that a
   witness list is produced exactly on violating states: [details] is
   consulted only when [check] fails, and a degenerate [details] that
   returns nothing still yields a generic conjunct. *)
let witnessed ~name ~doc ~safety ?(paper = "") ?(conjuncts = []) check details =
  let witness sys =
    if check sys then []
    else
      match details sys with
      | [] -> [ w name ("the invariant \"" ^ doc ^ "\" fails, with no finer conjunct attribution") ]
      | ws -> ws
  in
  { name; doc; safety; paper; conjuncts; check; witness }

(* -- Root sets ------------------------------------------------------------ *)

(* Buffered insertions: references being written into objects by pending
   field writes (Section 3.2 "Initialization"). *)
let buffered_insertions sd p =
  List.filter_map (function W_field (_, _, Some r) -> Some r | _ -> None) (buf_of sd p)

(* Buffered deletions for process p: for each pending field write, the
   value it will overwrite — the committed heap value as updated by the
   *earlier* writes to the same field in p's own (FIFO) buffer. *)
let buffered_deletions sd p =
  let field_now overrides (r, f) =
    match List.assoc_opt (r, f) overrides with
    | Some v -> v
    | None -> Gcheap.Heap.field sd.s_mem.heap r f
  in
  let _, dels =
    List.fold_left
      (fun (overrides, dels) w ->
        match w with
        | W_field (r, f, v) ->
          let old = field_now overrides (r, f) in
          (((r, f), v) :: overrides, match old with Some d -> d :: dels | None -> dels)
        | W_fA _ | W_fM _ | W_phase _ | W_mark _ -> (overrides, dels))
      ([], []) (buf_of sd p)
  in
  List.sort_uniq compare dels

(* The extended root set of Section 3.2: mutator roots, grey references
   (work-lists and ghost honorary greys), references pending in TSO store
   buffers, and the reference held by an in-flight deletion barrier. *)
let extended_roots cfg sys =
  let sd = Model.sys_data sys cfg in
  let mut_roots =
    List.concat (List.init cfg.Config.n_muts (fun m -> (Model.mut_data sys cfg m).m_roots))
  in
  let buffer_refs =
    List.concat
      (List.init (Config.n_software cfg) (fun p ->
           List.filter_map
             (function W_field (_, _, v) -> v | W_mark (r, _) -> Some r | _ -> None)
             (buf_of sd p)))
  in
  let in_flight_deletions =
    List.filter_map
      (fun m ->
        let pid = Config.pid_mut cfg m in
        if Model.at_prefix sys pid "mut:bar-del" || Model.at_prefix sys pid "mut:del-target" then
          (Model.mut_data sys cfg m).m_loaded
        else None)
      (List.init cfg.Config.n_muts Fun.id)
  in
  List.sort_uniq compare (mut_roots @ Color.greys cfg sd @ buffer_refs @ in_flight_deletions)

let reachable_from_roots cfg sys =
  let sd = Model.sys_data sys cfg in
  Gcheap.Reach.reachable_set sd.s_mem.heap (extended_roots cfg sys)

(* -- Safety --------------------------------------------------------------- *)

(* The headline theorem: [] (forall r. reachable r --> valid_ref r). *)
let valid_refs_inv cfg =
  let check sys =
    let sd = Model.sys_data sys cfg in
    List.for_all (Gcheap.Heap.valid_ref sd.s_mem.heap) (reachable_from_roots cfg sys)
  in
  witnessed ~name:"valid_refs_inv"
    ~doc:"every reference reachable from the (extended) roots denotes a heap object"
    ~safety:true
    ~paper:"valid_refs_inv — the headline theorem, Section 2.1 (Theorem 1) and Section 3.2"
    ~conjuncts:
      [
        ( "reachable-implies-valid",
          "every reference reachable from the extended roots denotes an allocated heap object" );
      ]
    check (fun sys ->
      let sd = Model.sys_data sys cfg in
      List.filter_map
        (fun r ->
          if Gcheap.Heap.valid_ref sd.s_mem.heap r then None
          else
            Some
              (w "reachable-implies-valid" ~refs:[ r ]
                 (Fmt.str
                    "reference %d is reachable from the extended roots but denotes no heap \
                     object (it has been freed)"
                    r)))
        (reachable_from_roots cfg sys))

(* Operational manifestation: no load/store/commit ever touched a freed
   cell (the Sys process records such accesses in ghost state). *)
let no_dangling cfg =
  let check sys = not (Model.sys_data sys cfg).s_dangling in
  witnessed ~name:"no_dangling_access" ~doc:"no memory access or commit has hit a freed cell"
    ~safety:true
    ~paper:"operational corollary of the headline theorem, Section 2.1"
    ~conjuncts:
      [ ("no-dangling-access", "no load, store or store-buffer commit has ever hit a freed cell") ]
    check (fun _ ->
      [
        w "no-dangling-access"
          "a load, store or commit has touched a freed cell (the Sys process's ghost \
           s_dangling flag is set)";
      ])

(* Fig. 2 lines 41-44: when the collector is about to free [ref], the
   object is white and unreachable. *)
let free_only_garbage cfg =
  let check sys =
    if not (Cimp.System.at sys Config.pid_gc "gc:free") then true
    else begin
      let sd = Model.sys_data sys cfg in
      match (Model.gc_data sys).g_ref with
      | None -> false
      | Some r -> Color.is_white sd r && not (List.mem r (reachable_from_roots cfg sys))
    end
  in
  witnessed ~name:"free_only_garbage"
    ~doc:"at the free statement, the victim is white and unreachable" ~safety:true
    ~paper:"the sweep-safety clause, Section 2.1 / Fig. 2 lines 41-44"
    ~conjuncts:
      [
        ("victim-chosen", "the collector at gc:free has actually chosen a candidate reference");
        ("victim-white", "the candidate's committed mark disagrees with f_M (it is white)");
        ("victim-unreachable", "the candidate is unreachable from the extended roots");
      ]
    check
    (fun sys ->
      let sd = Model.sys_data sys cfg in
      match (Model.gc_data sys).g_ref with
      | None ->
        [
          w "victim-chosen" ~pids:[ Config.pid_gc ]
            "the collector is at gc:free with no candidate reference in g_ref";
        ]
      | Some r ->
        (if Color.is_white sd r then []
         else
           [
             w "victim-white" ~refs:[ r ] ~pids:[ Config.pid_gc ]
               (Fmt.str "the collector is about to free reference %d, which is not white \
                         (its committed mark agrees with f_M)" r);
           ])
        @
        if not (List.mem r (reachable_from_roots cfg sys)) then []
        else
          [
            w "victim-unreachable" ~refs:[ r ] ~pids:[ Config.pid_gc ]
              (Fmt.str
                 "the collector is about to free reference %d, which is still reachable \
                  from the extended roots"
                 r);
          ])

(* -- valid_W_inv (Section 3.2 "Marking") ---------------------------------- *)

let worklists_disjoint cfg =
  let sets sd =
    let n = Config.n_software cfg in
    List.init n (fun p -> (p, wl_of sd p @ (match ghg_of sd p with Some r -> [ r ] | None -> [])))
  in
  let check sys =
    let sd = Model.sys_data sys cfg in
    let sets = List.map snd (sets sd) in
    let rec pairwise = function
      | [] -> true
      | s :: rest ->
        List.for_all (fun s' -> List.for_all (fun r -> not (List.mem r s')) s) rest
        && pairwise rest
    in
    List.for_all (fun s -> List.length (List.sort_uniq compare s) = List.length s) sets
    && pairwise sets
  in
  witnessed ~name:"worklists_disjoint"
    ~doc:"grey ownership is exclusive: work-lists (and honorary greys) are pairwise disjoint"
    ~safety:false
    ~paper:"the disjointness half of valid_W_inv, Section 3.2 \"Marking\""
    ~conjuncts:
      [
        ("no-duplicate-grey", "no reference appears twice in one process's grey set");
        ( "grey-ownership-exclusive",
          "no reference is grey for two different processes at once (the LOCK'd CAS \
           guarantees a unique winner)" );
      ]
    check (fun sys ->
      let sd = Model.sys_data sys cfg in
      let sets = sets sd in
      let dups =
        List.concat_map
          (fun (p, s) ->
            let rec find = function
              | [] -> []
              | r :: rest -> if List.mem r rest then [ (p, r) ] else find rest
            in
            find s)
          sets
      in
      let overlaps =
        List.concat_map
          (fun (p, s) ->
            List.concat_map
              (fun (q, s') ->
                if q <= p then []
                else List.filter_map (fun r -> if List.mem r s' then Some (p, q, r) else None) s)
              sets)
          sets
      in
      List.map
        (fun (p, r) ->
          w "no-duplicate-grey" ~refs:[ r ] ~pids:[ p ]
            (Fmt.str "reference %d appears twice in process %d's grey set" r p))
        dups
      @ List.map
          (fun (p, q, r) ->
            w "grey-ownership-exclusive" ~refs:[ r ] ~pids:[ p; q ]
              (Fmt.str "reference %d is grey for both process %d and process %d" r p q))
          overlaps)

let valid_w_inv cfg =
  let greys_of sd p = wl_of sd p @ (match ghg_of sd p with Some r -> [ r ] | None -> []) in
  let check sys =
    let sd = Model.sys_data sys cfg in
    let n = Config.n_software cfg in
    let marked_unless_locked p =
      sd.s_lock = Some p || List.for_all (Color.is_marked sd) (greys_of sd p)
    in
    let marks_use_fM p =
      List.for_all (function W_mark (_, b) -> b = sd.s_mem.fM | _ -> true) (buf_of sd p)
    in
    List.for_all (fun p -> marked_unless_locked p && marks_use_fM p) (List.init n Fun.id)
  in
  witnessed ~name:"valid_W_inv"
    ~doc:
      "work-list/ghg entries are marked on the heap unless their owner holds the TSO lock; \
       pending mark writes use f_M"
    ~safety:false
    ~paper:"valid_W_inv, Section 3.2 \"Marking\" / Fig. 5"
    ~conjuncts:
      [
        ( "greys-marked-unless-locked",
          "every grey reference is marked on the committed heap, except while its owner is \
           inside the CAS critical section" );
        ( "pending-marks-use-fM",
          "every mark write in flight in a store buffer carries the current f_M sense" );
      ]
    check (fun sys ->
      let sd = Model.sys_data sys cfg in
      let n = Config.n_software cfg in
      List.concat_map
        (fun p ->
          let unmarked =
            if sd.s_lock = Some p then []
            else List.filter (fun r -> not (Color.is_marked sd r)) (greys_of sd p)
          in
          let bad_marks =
            List.filter_map
              (function W_mark (r, b) when b <> sd.s_mem.fM -> Some r | _ -> None)
              (buf_of sd p)
          in
          List.map
            (fun r ->
              w "greys-marked-unless-locked" ~refs:[ r ] ~pids:[ p ]
                (Fmt.str
                   "reference %d is grey for process %d but unmarked on the committed heap, \
                    and process %d does not hold the TSO lock"
                   r p p))
            unmarked
          @ List.map
              (fun r ->
                w "pending-marks-use-fM" ~refs:[ r ] ~pids:[ p ]
                  (Fmt.str "process %d has a pending mark of %d with the wrong sense (not f_M)"
                     p r))
              bad_marks)
        (List.init n Fun.id))

(* -- Coarse TSO invariants ------------------------------------------------ *)

let tso_ownership cfg =
  let gc_ok = function W_fA _ | W_fM _ | W_phase _ | W_mark _ -> true | W_field _ -> false in
  let mut_ok = function W_mark _ | W_field _ -> true | W_fA _ | W_fM _ | W_phase _ -> false in
  let check sys =
    let sd = Model.sys_data sys cfg in
    List.for_all gc_ok (buf_of sd Config.pid_gc)
    && List.for_all
         (fun m -> List.for_all mut_ok (buf_of sd (Config.pid_mut cfg m)))
         (List.init cfg.Config.n_muts Fun.id)
  in
  witnessed ~name:"tso_ownership"
    ~doc:"only the collector has control-variable writes in flight; mutators only write marks and fields"
    ~safety:false
    ~paper:"write-ownership discipline of the Sys encoding, Section 3.1"
    ~conjuncts:
      [
        ( "collector-writes-no-fields",
          "the collector's store buffer only ever holds f_A, f_M, phase and mark writes" );
        ( "mutators-write-no-control-vars",
          "a mutator's store buffer only ever holds field and mark writes" );
      ]
    check (fun sys ->
      let sd = Model.sys_data sys cfg in
      let offending p ok conjunct who =
        List.filter_map
          (fun wr ->
            if ok wr then None
            else
              Some
                (w conjunct ~pids:[ p ]
                   (Fmt.str "%s (pid %d) has %a pending in its store buffer" who p pp_write wr)))
          (buf_of sd p)
      in
      offending Config.pid_gc gc_ok "collector-writes-no-fields" "the collector"
      @ List.concat_map
          (fun m ->
            offending (Config.pid_mut cfg m) mut_ok "mutators-write-no-control-vars"
              (Fmt.str "mutator %d" m))
          (List.init cfg.Config.n_muts Fun.id))

let tso_lock_scope cfg =
  let in_cas_section sys p =
    p < Config.n_software cfg
    && List.exists
         (fun lbl ->
           let has sub =
             let n = String.length sub and ln = String.length lbl in
             let rec go i = i + n <= ln && (String.sub lbl i n = sub || go (i + 1)) in
             go 0
           in
           has ":cas-" || has ":unlock")
         (Cimp.Com.at_labels (Cimp.System.proc sys p))
  in
  let check sys =
    let sd = Model.sys_data sys cfg in
    match sd.s_lock with None -> true | Some p -> in_cas_section sys p
  in
  witnessed ~name:"tso_lock_scope"
    ~doc:"the TSO lock is only ever held inside a mark operation's CAS section" ~safety:false
    ~paper:"the LOCK'd CMPXCHG scope, Section 3.1 / Fig. 5 lines 5-11"
    ~conjuncts:
      [
        ( "lock-only-in-cas",
          "whenever a process holds the TSO bus lock its control point is inside a mark \
           operation's CAS section" );
      ]
    check (fun sys ->
      let sd = Model.sys_data sys cfg in
      match sd.s_lock with
      | None -> []
      | Some p ->
        [
          w "lock-only-in-cas" ~pids:[ p ]
            (Fmt.str "process %d holds the TSO lock while at %a, outside any CAS section" p
               Fmt.(Dump.list string)
               (if p < Cimp.System.n_procs sys then
                  Cimp.Com.at_labels (Cimp.System.proc sys p)
                else []));
        ])

let gc_fm_coherent cfg =
  let pending_fM sd =
    List.fold_left
      (fun acc wr -> match wr with W_fM b -> Some b | _ -> acc)
      None (buf_of sd Config.pid_gc)
  in
  let check sys =
    let sd = Model.sys_data sys cfg in
    let g = Model.gc_data sys in
    (* between the local flip (Fig. 2 line 5's register update) and the
       issuing of the store, the collector is at the write itself *)
    Model.at_prefix sys Config.pid_gc "gc:write-fM"
    ||
    match pending_fM sd with Some b -> b = g.g_fM | None -> sd.s_mem.fM = g.g_fM
  in
  witnessed ~name:"gc_fM_coherent"
    ~doc:"the collector's local f_M agrees with memory, modulo its own pending write"
    ~safety:false
    ~paper:"the collector's view of the sense flip, Section 3.2 \"Initialization\" / Fig. 2 line 5"
    ~conjuncts:
      [
        ( "gc-fM-coherent",
          "the collector's register copy of f_M equals its pending f_M write if one is in \
           flight, else the committed f_M" );
      ]
    check (fun sys ->
      let sd = Model.sys_data sys cfg in
      let g = Model.gc_data sys in
      [
        w "gc-fM-coherent" ~pids:[ Config.pid_gc ]
          (Fmt.str
             "the collector's local f_M is %b but memory has f_M=%b and its pending f_M \
              write is %s"
             g.g_fM sd.s_mem.fM
             (match pending_fM sd with None -> "absent" | Some b -> string_of_bool b));
      ])

(* -- The phase protocol (Fig. 3 / sys_phase_inv) -------------------------- *)

let pending_phase_writes sd =
  List.filter_map (function W_phase p -> Some p | _ -> None) (buf_of sd Config.pid_gc)

let pending_fA sd =
  List.exists (function W_fA _ -> true | _ -> false) (buf_of sd Config.pid_gc)

(* Phase values consistent with each handshake span, taking the collector's
   pending writes into account.  Presumes the handshake fences. *)
let phase_inv cfg =
  let check sys =
    if not cfg.Config.handshake_fences then true
    else begin
      let sd = Model.sys_data sys cfg in
      let mem_phase = sd.s_mem.phase in
      let pend = pending_phase_writes sd in
      let round_active = List.exists not sd.s_hs_done in
      match sd.s_hs_type with
      | Hs_nop1 ->
        if cfg.Config.skip_init_handshakes then
          (* O1: all the initialization writes happen during this span *)
          (mem_phase = Ph_idle || mem_phase = Ph_init || mem_phase = Ph_mark)
          && List.for_all (fun p -> p = Ph_init || p = Ph_mark) pend
        else mem_phase = Ph_idle && pend = []
      | Hs_nop2 ->
        (mem_phase = Ph_idle || mem_phase = Ph_init)
        && List.for_all (fun p -> p = Ph_init) pend
      | Hs_nop3 ->
        (mem_phase = Ph_init || mem_phase = Ph_mark)
        && List.for_all (fun p -> p = Ph_mark) pend
      | Hs_nop4 -> mem_phase = Ph_mark && pend = []
      | Hs_get_roots | Hs_get_work ->
        (* The mark loop can terminate with zero get-work rounds (an
           empty snapshot, Fig. 2 line 25), so sweep's phase writes can
           already be in flight while the last round's type is still
           current.  During an active round, though, phase is stable. *)
        if round_active then mem_phase = Ph_mark && pend = []
        else List.for_all (fun p -> p = Ph_sweep || p = Ph_idle) pend
    end
  in
  witnessed ~name:"sys_phase_inv"
    ~doc:"the phase variable (memory + pending writes) tracks the handshake structure of Fig. 3"
    ~safety:false
    ~paper:"sys_phase_inv / handshake_phase_inv, Section 3.2 / Fig. 3"
    ~conjuncts:
      [
        ( "phase-span-nop1",
          "during the idle-sync span memory has phase Idle and no phase write is in flight" );
        ( "phase-span-nop2",
          "during the nop2 span the phase is Idle or Init, with only Init writes in flight" );
        ( "phase-span-nop3",
          "during the nop3 span the phase is Init or Mark, with only Mark writes in flight" );
        ( "phase-span-nop4",
          "during the nop4 span memory has phase Mark and no phase write is in flight" );
        ( "phase-span-get-roots",
          "during an active root handshake the phase is a committed Mark; once the round is \
           over only Sweep/Idle writes may be in flight" );
        ( "phase-span-get-work",
          "during an active termination handshake the phase is a committed Mark; once the \
           round is over only Sweep/Idle writes may be in flight" );
      ]
    check (fun sys ->
      let sd = Model.sys_data sys cfg in
      [
        w
          (Fmt.str "phase-span-%a" pp_hs sd.s_hs_type)
          ~pids:[ Config.pid_gc ]
          (Fmt.str
             "during the %a handshake span memory has phase=%a with pending phase writes \
              [%a], which the Fig. 3 protocol forbids"
             pp_hs sd.s_hs_type pp_phase sd.s_mem.phase
             Fmt.(list ~sep:comma pp_phase)
             (pending_phase_writes sd));
      ])

let fa_fm_relation cfg =
  let check sys =
    if not cfg.Config.handshake_fences then true
    else begin
      let sd = Model.sys_data sys cfg in
      match sd.s_hs_type with
      | Hs_nop2 ->
        (* the sense flip committed before this round began; fA is
           rewritten only at line 12, much later *)
        (not (pending_fA sd)) && sd.s_mem.fA <> sd.s_mem.fM
      | Hs_nop3 ->
        (* the fA := fM write happens within this span: the senses agree
           only once it has committed *)
        not (sd.s_mem.fA = sd.s_mem.fM && pending_fA sd)
      | Hs_nop4 | Hs_get_roots | Hs_get_work ->
        (not (pending_fA sd)) && sd.s_mem.fA = sd.s_mem.fM
      | Hs_nop1 -> true (* the flip lands mid-span: both values legitimate *)
    end
  in
  witnessed ~name:"fA_fM_relation"
    ~doc:"f_A tracks f_M per handshake span: distinct across initialization, equal from nop4 on"
    ~safety:false
    ~paper:"fA_fM_relation (allocation-sense protocol), Section 3.2 / Fig. 2 lines 5-12"
    ~conjuncts:
      [
        ( "fA-fM-span-nop1",
          "the sense flip lands mid-span: both relations are legitimate (never a witness)" );
        ( "fA-fM-span-nop2",
          "the flip committed before the round began: f_A and f_M differ in memory and no \
           f_A write is in flight" );
        ( "fA-fM-span-nop3",
          "the f_A := f_M write happens within this span: the senses agree in memory only \
           once it has committed" );
        ( "fA-fM-span-nop4",
          "from nop4 on the senses agree in memory with no f_A write in flight" );
        ( "fA-fM-span-get-roots",
          "from nop4 on the senses agree in memory with no f_A write in flight" );
        ( "fA-fM-span-get-work",
          "from nop4 on the senses agree in memory with no f_A write in flight" );
      ]
    check (fun sys ->
      let sd = Model.sys_data sys cfg in
      [
        w
          (Fmt.str "fA-fM-span-%a" pp_hs sd.s_hs_type)
          ~pids:[ Config.pid_gc ]
          (Fmt.str
             "during the %a span memory has fA=%b fM=%b with %s pending fA write, violating \
              the allocation-sense protocol"
             pp_hs sd.s_hs_type sd.s_mem.fA sd.s_mem.fM
             (if pending_fA sd then "a" else "no"));
      ])

(* -- Colour structure per phase ------------------------------------------ *)

(* hp_IdleInit / hp_InitMark: no black references until the write to f_A is
   committed (mutator allocate white until then). *)
let no_black_refs_init cfg =
  let check sys =
    if not cfg.Config.handshake_fences then true
    else begin
      let sd = Model.sys_data sys cfg in
      match sd.s_hs_type with
      | Hs_nop2 | Hs_nop3 ->
        if sd.s_mem.fA <> sd.s_mem.fM then Color.blacks cfg sd = [] else true
      | Hs_nop1 | Hs_nop4 | Hs_get_roots | Hs_get_work -> true
    end
  in
  witnessed ~name:"no_black_refs_init"
    ~doc:"between the sense flip and the commit of fA := fM there are no black references"
    ~safety:false
    ~paper:"hp_IdleInit / hp_InitMark colour structure, Section 3.2 \"Initialization\""
    ~conjuncts:
      [
        ( "no-black-before-fA-commit",
          "while f_A and f_M still differ during initialization, no reference is black \
           (allocation still produces white)" );
      ]
    check (fun sys ->
      let sd = Model.sys_data sys cfg in
      List.map
        (fun r ->
          w "no-black-before-fA-commit" ~refs:[ r ]
            (Fmt.str "reference %d is black before the fA := fM write has committed" r))
        (Color.blacks cfg sd))

(* hp_Idle: the heap is uniformly black (before the flip commits) or
   uniformly white (after), and there are no greys. *)
let idle_heap_uniform cfg =
  let check sys =
    if (not cfg.Config.handshake_fences) || cfg.Config.skip_init_handshakes then
      (* under O1 the barriers can already fire during the nop1 span *)
      true
    else begin
      let sd = Model.sys_data sys cfg in
      match sd.s_hs_type with
      | Hs_nop1 ->
        Color.greys cfg sd = []
        &&
        let dom = Gcheap.Heap.domain sd.s_mem.heap in
        if sd.s_mem.fA = sd.s_mem.fM then List.for_all (Color.is_marked sd) dom
        else List.for_all (Color.is_white sd) dom
      | Hs_nop2 | Hs_nop3 | Hs_nop4 | Hs_get_roots | Hs_get_work -> true
    end
  in
  witnessed ~name:"idle_heap_uniform"
    ~doc:"during the idle-sync span the heap is uniformly coloured and grey-free" ~safety:false
    ~paper:"hp_Idle colour structure, Section 3.2 \"Initialization\""
    ~conjuncts:
      [
        ("idle-grey-free", "no reference is grey during the idle-sync span");
        ( "idle-uniform-colour",
          "during the idle-sync span the heap is uniformly black (before the flip commits) \
           or uniformly white (after)" );
      ]
    check (fun sys ->
      let sd = Model.sys_data sys cfg in
      let greys = Color.greys cfg sd in
      let dom = Gcheap.Heap.domain sd.s_mem.heap in
      let off =
        if sd.s_mem.fA = sd.s_mem.fM then
          List.filter (fun r -> not (Color.is_marked sd r)) dom
        else List.filter (fun r -> not (Color.is_white sd r)) dom
      in
      List.map
        (fun r ->
          w "idle-grey-free" ~refs:[ r ]
            (Fmt.str "reference %d is grey during the idle-sync span" r))
        greys
      @ List.map
          (fun r ->
            w "idle-uniform-colour" ~refs:[ r ]
              (Fmt.str "reference %d breaks the idle span's uniform heap colouring" r))
          off)

(* -- Write-barrier invariants (mutator_phase_inv) ------------------------- *)

let marked_insertions cfg =
  let check sys =
    if not (cfg.Config.insertion_barrier && cfg.Config.handshake_fences) then true
    else begin
      let sd = Model.sys_data sys cfg in
      List.for_all
        (fun m ->
          match mut_hp sd m with
          | Hp_init_mark | Hp_idle_mark_sweep ->
            List.for_all
              (fun r -> Color.is_marked sd r || Color.is_grey cfg sd r)
              (buffered_insertions sd (Config.pid_mut cfg m))
          | Hp_idle | Hp_idle_init -> true)
        (List.init cfg.Config.n_muts Fun.id)
    end
  in
  witnessed ~name:"marked_insertions"
    ~doc:"mutators past the insertion-barrier handshake have only marked references in flight"
    ~safety:false
    ~paper:"the insertion half of mutator_phase_inv, Section 3.2 / Fig. 6 line 9"
    ~conjuncts:
      [
        ( "insertions-marked",
          "every reference a post-initialization mutator is inserting (a pending field \
           write) is already marked or grey" );
      ]
    check (fun sys ->
      let sd = Model.sys_data sys cfg in
      List.concat_map
        (fun m ->
          match mut_hp sd m with
          | Hp_init_mark | Hp_idle_mark_sweep ->
            List.filter_map
              (fun r ->
                if Color.is_marked sd r || Color.is_grey cfg sd r then None
                else
                  Some
                    (w "insertions-marked" ~refs:[ r ] ~pids:[ Config.pid_mut cfg m ]
                       (Fmt.str
                          "mutator %d has the unmarked reference %d in a pending field \
                           write past the insertion-barrier handshake"
                          m r)))
              (buffered_insertions sd (Config.pid_mut cfg m))
          | Hp_idle | Hp_idle_init -> [])
        (List.init cfg.Config.n_muts Fun.id))

let marked_deletions cfg =
  let check sys =
    if not (cfg.Config.deletion_barrier && cfg.Config.handshake_fences) then true
    else begin
      let sd = Model.sys_data sys cfg in
      List.for_all
        (fun m ->
          match mut_hp sd m with
          | Hp_idle_mark_sweep ->
            List.for_all
              (fun r -> Color.is_marked sd r || Color.is_grey cfg sd r)
              (buffered_deletions sd (Config.pid_mut cfg m))
          | Hp_idle | Hp_idle_init | Hp_init_mark -> true)
        (List.init cfg.Config.n_muts Fun.id)
    end
  in
  witnessed ~name:"marked_deletions"
    ~doc:"mutators past the snapshot handshakes only overwrite marked references" ~safety:false
    ~paper:"the deletion half of mutator_phase_inv, Section 3.2 / Fig. 6 line 8"
    ~conjuncts:
      [
        ( "deletions-marked",
          "every reference a post-snapshot mutator is overwriting (deleted by a pending \
           field write) is already marked or grey" );
      ]
    check (fun sys ->
      let sd = Model.sys_data sys cfg in
      List.concat_map
        (fun m ->
          match mut_hp sd m with
          | Hp_idle_mark_sweep ->
            List.filter_map
              (fun r ->
                if Color.is_marked sd r || Color.is_grey cfg sd r then None
                else
                  Some
                    (w "deletions-marked" ~refs:[ r ] ~pids:[ Config.pid_mut cfg m ]
                       (Fmt.str
                          "mutator %d is overwriting the unmarked reference %d (a pending \
                           field write deletes it) past the snapshot handshake"
                          m r)))
              (buffered_deletions sd (Config.pid_mut cfg m))
          | Hp_idle | Hp_idle_init | Hp_init_mark -> [])
        (List.init cfg.Config.n_muts Fun.id))

(* -- The snapshot invariant (Section 3.2 "Initialization") ---------------- *)

(* For every mutator whose roots have been sampled this cycle ("black"
   mutators), everything reachable from its roots is black, grey, or a
   grey-protected white. *)
let reachable_snapshot_inv cfg =
  let guard =
    cfg.Config.deletion_barrier && cfg.Config.insertion_barrier && cfg.Config.handshake_fences
    && not cfg.Config.alloc_white
  in
  let check sys =
    if not guard then true
    else begin
      let sd = Model.sys_data sys cfg in
      let protected_whites = Color.grey_protected_whites cfg sd in
      List.for_all
        (fun m ->
          (not (mut_black sd m))
          ||
          let roots = (Model.mut_data sys cfg m).m_roots in
          let reach = Gcheap.Reach.reachable_set sd.s_mem.heap roots in
          List.for_all
            (fun r ->
              Color.is_marked sd r || Color.is_grey cfg sd r || List.mem r protected_whites)
            reach)
        (List.init cfg.Config.n_muts Fun.id)
    end
  in
  witnessed ~name:"reachable_snapshot_inv"
    ~doc:"black mutators only reach black, grey, or grey-protected white objects" ~safety:false
    ~paper:"the snapshot invariant, Section 3.2 \"Initialization\" / Fig. 2 lines 15-20"
    ~conjuncts:
      [
        ( "snapshot-reachable-protected",
          "everything reachable from a root-sampled (black) mutator is black, grey, or a \
           white protected by a grey chain" );
      ]
    check (fun sys ->
      let sd = Model.sys_data sys cfg in
      let protected_whites = Color.grey_protected_whites cfg sd in
      List.concat_map
        (fun m ->
          if not (mut_black sd m) then []
          else
            let roots = (Model.mut_data sys cfg m).m_roots in
            List.filter_map
              (fun r ->
                if
                  Color.is_marked sd r || Color.is_grey cfg sd r
                  || List.mem r protected_whites
                then None
                else
                  Some
                    (w "snapshot-reachable-protected" ~refs:[ r ]
                       ~pids:[ Config.pid_mut cfg m ]
                       (Fmt.str
                          "black mutator %d reaches reference %d, which is an unprotected \
                           white (neither marked, grey, nor grey-protected)"
                          m r)))
              (Gcheap.Reach.reachable_set sd.s_mem.heap roots))
        (List.init cfg.Config.n_muts Fun.id))

(* -- Mark-loop termination (gc_W_empty_mut_inv) --------------------------- *)

let gc_w_empty_mut_inv cfg =
  let guard =
    cfg.Config.deletion_barrier && cfg.Config.insertion_barrier && cfg.Config.handshake_fences
    && not cfg.Config.alloc_white
  in
  let check sys =
    if not guard then true
    else begin
      let sd = Model.sys_data sys cfg in
      let round_active = List.exists not sd.s_hs_done in
      match sd.s_hs_type with
      | (Hs_get_roots | Hs_get_work) when round_active ->
        (* The paper notes this predicate "is only invariant over those
           handshakes, when the collector's W is known to start empty":
           outside a round the collector itself drains W while barriers
           may grey new work.  Grey work includes an in-flight honorary
           grey (its owner is about to publish it). *)
        if wl_of sd Config.pid_gc <> [] then true
        else begin
          let muts = List.init cfg.Config.n_muts Fun.id in
          let grey_work m =
            wl_of sd (Config.pid_mut cfg m) <> []
            || ghg_of sd (Config.pid_mut cfg m) <> None
          in
          let offender = List.exists (fun m -> hs_done sd m && grey_work m) muts in
          (not offender) || List.exists (fun m -> (not (hs_done sd m)) && grey_work m) muts
        end
      | Hs_get_roots | Hs_get_work | Hs_nop1 | Hs_nop2 | Hs_nop3 | Hs_nop4 -> true
    end
  in
  witnessed ~name:"gc_W_empty_mut_inv"
    ~doc:
      "over root/termination handshakes: a completed mutator with leftover grey work implies \
       some yet-to-complete mutator also holds grey work"
    ~safety:false
    ~paper:"gc_W_empty_mut_inv (mark-loop termination), Section 3.2 / Fig. 2 lines 24-34"
    ~conjuncts:
      [
        ( "grey-work-accounted",
          "when the collector's W is empty mid-round, any grey work still held by a \
           completed mutator is covered by a yet-to-complete one" );
      ]
    check (fun sys ->
      let sd = Model.sys_data sys cfg in
      let muts = List.init cfg.Config.n_muts Fun.id in
      let grey_work m =
        wl_of sd (Config.pid_mut cfg m) @ (match ghg_of sd (Config.pid_mut cfg m) with Some r -> [ r ] | None -> [])
      in
      List.filter_map
        (fun m ->
          let work = grey_work m in
          if hs_done sd m && work <> [] then
            Some
              (w "grey-work-accounted" ~refs:work ~pids:[ Config.pid_mut cfg m ]
                 (Fmt.str
                    "mutator %d completed the %a round but still holds grey work, and no \
                     yet-to-complete mutator holds any"
                    m pp_hs sd.s_hs_type))
          else None)
        muts)

(* -- Tricolor invariants (Section 2.1) ------------------------------------ *)

(* Weak tricolor over the heap: any white object referred to by a black
   object is grey-protected (Fig. 1).  Holds unconditionally for the real
   collector. *)
let weak_tricolor cfg =
  let guard =
    cfg.Config.deletion_barrier && cfg.Config.insertion_barrier && cfg.Config.handshake_fences
    && not cfg.Config.alloc_white
  in
  let check sys =
    if not guard then true
    else begin
      let sd = Model.sys_data sys cfg in
      let protected_whites = Color.grey_protected_whites cfg sd in
      List.for_all
        (fun b ->
          match Gcheap.Heap.get sd.s_mem.heap b with
          | None -> true
          | Some o ->
            List.for_all
              (fun c -> (not (Color.is_white sd c)) || List.mem c protected_whites)
              (Gcheap.Obj.children o))
        (Color.blacks cfg sd)
    end
  in
  witnessed ~name:"weak_tricolor_inv"
    ~doc:"white objects pointed to by black objects are grey-protected" ~safety:false
    ~paper:"the weak tricolor invariant, Section 2.1 / Fig. 1"
    ~conjuncts:
      [
        ( "black-to-white-protected",
          "every white object directly pointed to by a black object is protected by a grey \
           chain" );
      ]
    check
    (fun sys ->
      let sd = Model.sys_data sys cfg in
      let protected_whites = Color.grey_protected_whites cfg sd in
      List.concat_map
        (fun b ->
          match Gcheap.Heap.get sd.s_mem.heap b with
          | None -> []
          | Some o ->
            List.filter_map
              (fun c ->
                if (not (Color.is_white sd c)) || List.mem c protected_whites then None
                else
                  Some
                    (w "black-to-white-protected" ~refs:[ b; c ]
                       (Fmt.str
                          "black object %d points to white object %d, which no grey chain \
                           protects"
                          b c)))
              (Gcheap.Obj.children o))
        (Color.blacks cfg sd))

(* Strong tricolor over the heap, on the spans where the paper claims it:
   from the commit of fA := fM through the end of the cycle. *)
let strong_tricolor cfg =
  let guard =
    cfg.Config.insertion_barrier && cfg.Config.handshake_fences
    && (not cfg.Config.alloc_white)
    && not cfg.Config.insertion_skip_after_roots
  in
  let check sys =
    if not guard then true
    else begin
      let sd = Model.sys_data sys cfg in
      match sd.s_hs_type with
      | Hs_nop4 | Hs_get_roots | Hs_get_work ->
        sd.s_mem.fA <> sd.s_mem.fM
        || List.for_all
             (fun b ->
               match Gcheap.Heap.get sd.s_mem.heap b with
               | None -> true
               | Some o ->
                 List.for_all (fun c -> not (Color.is_white sd c)) (Gcheap.Obj.children o))
             (Color.blacks cfg sd)
      | Hs_nop1 | Hs_nop2 | Hs_nop3 -> true
    end
  in
  witnessed ~name:"strong_tricolor_inv"
    ~doc:"no black-to-white heap edges from the fA commit through the cycle's end"
    ~safety:false
    ~paper:"the strong tricolor invariant, Section 2.1"
    ~conjuncts:
      [
        ( "no-black-to-white-after-fA-commit",
          "from the f_A := f_M commit through the cycle's end there is no black-to-white \
           heap edge at all" );
      ]
    check (fun sys ->
      let sd = Model.sys_data sys cfg in
      List.concat_map
        (fun b ->
          match Gcheap.Heap.get sd.s_mem.heap b with
          | None -> []
          | Some o ->
            List.filter_map
              (fun c ->
                if not (Color.is_white sd c) then None
                else
                  Some
                    (w "no-black-to-white-after-fA-commit" ~refs:[ b; c ]
                       (Fmt.str
                          "black object %d points to white object %d after the fA := fM \
                           commit"
                          b c)))
              (Gcheap.Obj.children o))
        (Color.blacks cfg sd))

(* -- Catalogue ------------------------------------------------------------ *)

let safety_invariants cfg = [ valid_refs_inv cfg; no_dangling cfg; free_only_garbage cfg ]

let auxiliary_invariants cfg =
  [
    worklists_disjoint cfg;
    valid_w_inv cfg;
    tso_ownership cfg;
    tso_lock_scope cfg;
    gc_fm_coherent cfg;
    phase_inv cfg;
    fa_fm_relation cfg;
    no_black_refs_init cfg;
    idle_heap_uniform cfg;
    marked_insertions cfg;
    marked_deletions cfg;
    reachable_snapshot_inv cfg;
    gc_w_empty_mut_inv cfg;
    weak_tricolor cfg;
    strong_tricolor cfg;
  ]

let all cfg = safety_invariants cfg @ auxiliary_invariants cfg

let find cfg name = List.find_opt (fun i -> i.name = name) (all cfg)
