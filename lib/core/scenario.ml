(* Scenario presets: (configuration, heap shape, bounds) bundles used by the
   experiment drivers, the test suite, and the benchmarks.

   Exhaustive scenarios are sized to close (Section "Bounds" of DESIGN.md):
   each bounds the number of collector cycles and per-mutator heap
   operations, making the reachable state space finite; the checker then
   *enumerates* it, which is the bounded analogue of the paper's induction.
   The minimal-witness scenarios are the smallest instances on which each
   ablation's counterexample is reachable. *)

type t = {
  label : string;
  cfg : Config.t;
  shape : Gcheap.Shapes.t;
  note : string;
}

let make ?(n_muts = 1) ?(n_refs = 3) ?(n_fields = 1) ?(buf_bound = 1) ?(max_cycles = 1)
    ?(max_mut_ops = 2) ?(mut_mfence = false) ?(tweak = Fun.id) ~label ~shape ?(note = "") () =
  let cfg =
    tweak
      {
        Config.default with
        n_muts;
        n_refs;
        n_fields;
        buf_bound;
        max_cycles;
        max_mut_ops;
        mut_mfence;
      }
  in
  let shape =
    match Gcheap.Shapes.by_name ~n_refs ~n_fields shape with
    | Some s -> s
    | None -> invalid_arg ("Scenario.make: unknown shape " ^ shape)
  in
  { label; cfg; shape; note }

let model sc = Model.make sc.cfg sc.shape

let invariants ?(safety_only = false) sc =
  let invs =
    if safety_only then Invariants.safety_invariants sc.cfg else Invariants.all sc.cfg
  in
  List.map (fun i -> (i.Invariants.name, i.Invariants.check)) invs

(* [jobs = 1] (the default) is the sequential checker, bit for bit:
   Par_explore.run and Random_walk.swarm both delegate.  [reduce]
   defaults to None_ for the same reason — callers opt in — and is
   applied identically on the sequential and [jobs > 1] paths (the same
   Reduction.reducer value is threaded either way; its counters are
   atomic, so domains can share it). *)
let explore ?(max_states = 30_000_000) ?(jobs = 1) ?safety_only ?obs
    ?(reduce = Reduce.Mode.None_) sc =
  let reducer = Reduction.reducer sc.cfg reduce in
  Check.Par_explore.run ~jobs ~max_states ?obs ?reducer
    ~invariants:(invariants ?safety_only sc) (model sc).Model.system

let random_walk ?(seed = 42) ?(steps = 50_000) ?(jobs = 1) ?safety_only ?obs
    ?(reduce = Reduce.Mode.None_) sc =
  let reducer = Reduction.reducer sc.cfg reduce in
  Check.Random_walk.swarm ~jobs ~seed ~steps ?obs ?reducer
    ~invariants:(invariants ?safety_only sc) (model sc).Model.system

(* Reduced-vs-unreduced soundness cross-check on one scenario. *)
let crosscheck ?max_states ?safety_only ?obs ?(reduce = Reduce.Mode.All) sc =
  match Reduction.reducer sc.cfg reduce with
  | None -> invalid_arg "Scenario.crosscheck: reduce=none has nothing to cross-check"
  | Some reducer ->
    Reduce.Crosscheck.run ?max_states ?obs ~reducer ~invariants:(invariants ?safety_only sc)
      (model sc).Model.system

(* -- Presets --------------------------------------------------------------- *)

(* The default exhaustive instance for the paper's collector: one mutator
   with the full operation repertoire over a 2-reference heap, one cycle. *)
let baseline =
  make ~label:"baseline" ~n_refs:2 ~shape:"single" ~max_mut_ops:3
    ~note:"1 mutator, full repertoire, 2 refs, 1 cycle" ()

(* Two full cycles: exercises the sense flip, floating garbage collection
   in the second cycle, and the cycle-boundary invariants. *)
let two_cycles =
  make ~label:"two-cycles" ~n_refs:2 ~shape:"single" ~max_cycles:2 ~max_mut_ops:2
    ~note:"two full mark-sweep cycles" ()

(* Two racing mutators sharing a root. *)
let two_mutators =
  make ~label:"two-mutators" ~n_muts:2 ~n_refs:2 ~shape:"single" ~max_mut_ops:1
    ~note:"2 mutators share root 0 and race their barriers" ()

(* The Fig. 1 configuration with the chain through which deletion hides. *)
let fig1 =
  make ~label:"fig1" ~n_refs:4 ~shape:"fig1" ~max_mut_ops:2
    ~tweak:(fun c -> { c with Config.mut_alloc = false })
    ~note:"Figure 1's B -> W, G -> o -> W configuration" ()

(* Chain heap: the minimal witness for deletion-barrier hiding. *)
let chain =
  make ~label:"chain3" ~shape:"chain3" ~max_mut_ops:3
    ~tweak:(fun c -> { c with Config.mut_alloc = false; mut_discard = false })
    ~note:"chain 0 -> 1 -> 2, loads + stores only" ()

(* Deeper TSO buffering. *)
let deep_buffers =
  make ~label:"deep-buffers" ~n_refs:2 ~shape:"single" ~buf_bound:3 ~max_mut_ops:2
    ~note:"store buffers of capacity 3" ()

(* Three racing mutators: beyond the seed checker's reach at the default
   state cap, closed by the reduction subsystem (sym collapses up to 3!
   pid permutations per state). *)
let three_mutators =
  make ~label:"three-mutators" ~n_muts:3 ~n_refs:2 ~shape:"single" ~max_mut_ops:1
    ~note:"3 symmetric mutators share root 0; closes only under --reduce" ()

(* Apply a variant to a scenario. *)
let with_variant (v : Variants.t) sc =
  { sc with label = sc.label ^ "+" ^ v.Variants.name; cfg = v.Variants.tweak sc.cfg }

(* The minimal witness scenario for each ablation: the instance on which its
   counterexample is known to be reachable (see EXPERIMENTS.md). *)
let witness_for (v : Variants.t) =
  match v.Variants.name with
  | "no-deletion-barrier" | "no-barriers" -> with_variant v chain
  | "no-insertion-barrier" ->
    with_variant v
      (make ~label:"alloc-store-discard" ~n_refs:2 ~shape:"single" ~max_mut_ops:3
         ~note:"allocate black B, store white root into B, discard the root" ())
  | "alloc-white" ->
    with_variant v
      (make ~label:"alloc-only" ~n_refs:2 ~shape:"single" ~max_mut_ops:1
         ~note:"a single allocation during marking suffices" ())
  | "no-fences" ->
    with_variant v
      (make ~label:"stale-fA" ~n_refs:2 ~shape:"single" ~max_mut_ops:2 ~buf_bound:2
         ~tweak:(fun c -> { c with Config.mut_load = false; mut_store = false })
         ~note:
           "without the handshake store fence the fA := fM write never commits, so an \
            allocation reads stale f_A and comes out white; alloc + discard suffice" ())
  | "no-cas" ->
    with_variant v
      (make ~label:"mark-race" ~n_muts:2 ~n_refs:2 ~shape:"single"
         ~tweak:(fun c ->
           { c with Config.mut_load = false; mut_store = false; mut_alloc = false; mut_discard = false })
         ~note:"two mutators race to mark their shared root at get-roots; no heap ops needed" ())
  | _ -> with_variant v baseline

let exhaustive_grid = [ baseline; two_cycles; two_mutators; fig1; chain; deep_buffers ]
