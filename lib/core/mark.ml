(* The mark operation of Fig. 5, as a CIMP code template.

   mark(ref, w) is inlined at each use site (CIMP has no procedures, and
   neither does the Isabelle model); [code] generates one expansion with
   fresh labels under [prefix].  The caller deposits the reference to mark
   in the process's mark registers (mk_ref; None means "nothing to mark",
   covering NULL fields) before the expansion runs.

   The sequence is modelled at the paper's granularity:

     load f_M                         (line 2; expected = not f_M)
     load flag(ref)                   (line 3)
     if flag = expected then
       load phase                     (line 4)
       if phase <> Idle then
         lock                         (line 5: LOCK'd CMPXCHG begins)
         load flag(ref)               (line 6)
         if flag = expected then
           winner := true             (line 7)
           store flag(ref) := f_M     (line 8, ghost_honorary_grey := ref)
         else winner := false         (lines 10-11)
         unlock                       (CAS retires; buffer must drain)
         if winner then w := w u {ref}  (lines 12-13, ghg := null)

   Note the store at line 8 uses the f_M value loaded at line 2 — f_M may
   flip after the load, one of the races the invariants must absorb
   (Section 3.2 "Marking").  With [cas_mark = false] (ablation) the
   lock/unlock pair is omitted, so two markers can both win the race and
   grey the same object twice, violating valid_W_inv's disjointness. *)

open Types
open State
open Cimp.Com

type lens = { get : State.t -> mark_regs; set : mark_regs -> State.t -> State.t }

let gc_lens =
  {
    get = (fun s -> (gc s).g_mark);
    set = (fun r s -> map_gc (fun d -> { d with g_mark = r }) s);
  }

let mut_lens =
  {
    get = (fun s -> (mut s).m_mark);
    set = (fun r s -> map_mut (fun d -> { d with m_mark = r }) s);
  }

let code cfg ~pid ~prefix (lens : lens) : (msg, value, State.t) Cimp.Com.t =
  let l n = prefix ^ ":" ^ n in
  let regs = lens.get in
  let the_ref s =
    match (regs s).mk_ref with Some r -> r | None -> invalid_arg "Mark.code: no target"
  in
  let expect_bool = function V_bool b -> b | _ -> invalid_arg "Mark.code: expected V_bool" in
  let expect_phase = function V_phase p -> p | _ -> invalid_arg "Mark.code: expected V_phase" in
  let load_fM =
    Request
      ( l "load-fM",
        (fun _ -> (pid, Req_read L_fM)),
        fun v s -> lens.set { (regs s) with mk_fM = expect_bool v } s )
  in
  let load_flag lbl =
    Request
      ( lbl,
        (fun s -> (pid, Req_read (L_mark (the_ref s)))),
        fun v s -> lens.set { (regs s) with mk_flag = expect_bool v } s )
  in
  let load_phase =
    Request
      ( l "load-phase",
        (fun _ -> (pid, Req_read L_phase)),
        fun v s -> lens.set { (regs s) with mk_phase = expect_phase v } s )
  in
  let unmarked s = (regs s).mk_flag <> (regs s).mk_fM in
  let set_winner lbl b = assign lbl (fun s -> lens.set { (regs s) with mk_winner = b } s) in
  let store_mark =
    (* line 8 + its ghost annotation, one rendezvous *)
    Request
      ( l "cas-store",
        (fun s -> (pid, Req_write_ghg (W_mark (the_ref s, (regs s).mk_fM), the_ref s))),
        fun _ s -> s )
  in
  let wl_add =
    Request (l "wl-add", (fun s -> (pid, Req_wl_add (the_ref s))), fun _ s -> s)
  in
  let lock = Request (l "lock", (fun _ -> (pid, Req_lock)), fun _ s -> s) in
  let unlock = Request (l "unlock", (fun _ -> (pid, Req_unlock)), fun _ s -> s) in
  let cas_core =
    seq
      [
        load_flag (l "cas-load-flag");
        If (l "cas-test", unmarked, seq [ set_winner (l "cas-win") true; store_mark ], set_winner (l "cas-lose") false);
      ]
  in
  (* The [weaken-cas] mutation unlocks ONE expansion (this one, if the
     prefix matches) while every other marker keeps the LOCK — a finer
     probe than the cas_mark ablation, which unlocks them all. *)
  let cas =
    if cfg.Config.cas_mark && not (Config.cas_weakened cfg prefix) then
      seq [ lock; cas_core; unlock ]
    else cas_core
  in
  let attempt =
    seq
      [
        load_phase;
        If
          ( l "phase-test",
            (fun s -> (regs s).mk_phase <> Ph_idle),
            seq
              [
                cas;
                If (l "win-test", (fun s -> (regs s).mk_winner), wl_add, Skip (l "lost"));
              ],
            Skip (l "phase-idle") );
      ]
  in
  If
    ( l "null-test",
      (fun s -> (regs s).mk_ref = None),
      Skip (l "null"),
      seq
        ((* [swap-mark-loads]: read the flag before f_M, reversing Fig. 5
            lines 2-3 for this expansion only. *)
         (if Config.mark_loads_swapped cfg prefix then [ load_flag (l "load-flag"); load_fM ]
          else [ load_fM; load_flag (l "load-flag") ])
        @ [ If (l "flag-test", unmarked, attempt, Skip (l "already-marked")) ]) )
