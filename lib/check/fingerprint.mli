(** Canonical fingerprints of global CIMP states.

    Control state is identified by the label spine of each process's frame
    stack; data states must be canonical plain OCaml data (no closures, no
    cycles, canonical collection representations), which everything in the
    GC model is — then structural comparison is sound.

    Each fingerprint caches a compact word-sized structural hash (an
    FNV-1a-style mix over the label spine and the data representation,
    never 0), computed once at {!of_system}.  It replaces the former
    polymorphic [Hashtbl.hash_param] hash and is strong enough to key the
    parallel explorer's seen-set on its own: collisions occur with
    probability about [n^2 / 2^63] for [n] states. *)

type t

val of_system : ('a, 'v, 's) Cimp.System.t -> t
(** Fingerprint a system's (control spine, data payloads) pair; the
    compact hash is computed here, once. *)

(** [of_parts ~control ~data] fingerprints an explicitly assembled
    (control-spine, data-payload) pair with the exact mix {!of_system}
    uses.  This is the hook state-space reducers use to fingerprint a
    *canonical representative* (e.g. with symmetric processes sorted or
    dead registers nulled) without materialising an executable system:
    the [data] payloads must satisfy the same canonical-plain-data
    contract as process data states. *)
val of_parts : control:Cimp.Label.t list list -> data:Stdlib.Obj.t list -> t

(** Structural equality (the cached hash is used as a cheap negative
    filter first). *)
val equal : t -> t -> bool

(** The compact structural fingerprint as a native int (never 0). *)
val hash : t -> int

(** The same fingerprint presented as a non-zero int64. *)
val fp64 : t -> int64

(** The pre-existing polymorphic hash ([Hashtbl.hash_param 64 256]), kept
    so tests can compare collision/determinism behaviour of both hashes. *)
val hash_poly : t -> int

(** Hash tables keyed by fingerprint ({!hash} for hashing, {!equal} for
    collision resolution) — the sequential explorer's seen-set. *)
module Table : Hashtbl.S with type key = t
