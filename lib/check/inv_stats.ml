(* Per-invariant eval counts and cumulative wall time.  See inv_stats.mli. *)

type 'sys t = {
  check : 'sys -> string option;
  report : Obs.Reporter.t -> first_violation:string option -> unit;
  totals : unit -> int * float;
}

let plain invariants =
  {
    check =
      (fun sys ->
        match List.find_opt (fun (_, p) -> not (p sys)) invariants with
        | None -> None
        | Some (name, _) -> Some name);
    report = (fun _ ~first_violation:_ -> ());
    totals = (fun () -> (0, 0.));
  }

let instrumented invariants =
  let invs = Array.of_list invariants in
  let n = Array.length invs in
  let evals = Array.make n 0 in
  let time = Array.make n 0. in
  let check sys =
    let rec go i =
      if i >= n then None
      else begin
        let name, p = invs.(i) in
        let t = Unix.gettimeofday () in
        let ok = p sys in
        time.(i) <- time.(i) +. (Unix.gettimeofday () -. t);
        evals.(i) <- evals.(i) + 1;
        if ok then go (i + 1) else Some name
      end
    in
    go 0
  in
  let report obs ~first_violation =
    Array.iteri
      (fun i (name, _) ->
        Obs.Reporter.emit obs "invariant"
          [
            ("name", Obs.Json.String name);
            ("evals", Obs.Json.Int evals.(i));
            ("time_s", Obs.Json.Float time.(i));
            ("violated", Obs.Json.Bool (first_violation = Some name));
          ])
      invs
  in
  let totals () =
    (Array.fold_left ( + ) 0 evals, Array.fold_left ( +. ) 0. time)
  in
  { check; report; totals }

let make ~obs invariants =
  if Obs.Reporter.enabled obs then instrumented invariants else plain invariants
