(* Counterexample traces: the sequence of scheduled events from the initial
   state to a state violating an invariant. *)

type ('a, 'v, 's) step = {
  event : Cimp.System.event;
  state : ('a, 'v, 's) Cimp.System.t;
}

type ('a, 'v, 's) t = {
  initial : ('a, 'v, 's) Cimp.System.t;
  steps : ('a, 'v, 's) step list;  (* in execution order *)
  broken : string;  (* name of the violated invariant *)
}

let length tr = List.length tr.steps

let final tr =
  match List.rev tr.steps with [] -> tr.initial | last :: _ -> last.state

(* -- JSON export ------------------------------------------------------------ *)

(* Counterexamples as artifacts: the schedule (plus process names and the
   violated invariant) fully determines the run, so exporting it makes a
   violation replayable without serializing the polymorphic data states. *)

let event_to_json = function
  | Cimp.System.Tau (p, l) ->
    Obs.Json.Obj
      [ ("kind", Obs.Json.String "tau"); ("pid", Obs.Json.Int p); ("label", Obs.Json.String l) ]
  | Cimp.System.Rendezvous { requester; req_label; responder; resp_label } ->
    Obs.Json.Obj
      [
        ("kind", Obs.Json.String "rendezvous");
        ("requester", Obs.Json.Int requester);
        ("req_label", Obs.Json.String req_label);
        ("responder", Obs.Json.Int responder);
        ("resp_label", Obs.Json.String resp_label);
      ]

let event_of_json j =
  let str k = Option.bind (Obs.Json.member k j) Obs.Json.to_string_opt in
  let int k = Option.bind (Obs.Json.member k j) Obs.Json.to_int in
  match str "kind" with
  | Some "tau" -> (
    match (int "pid", str "label") with
    | Some p, Some l -> Ok (Cimp.System.Tau (p, l))
    | _ -> Error "tau event missing pid/label")
  | Some "rendezvous" -> (
    match (int "requester", str "req_label", int "responder", str "resp_label") with
    | Some requester, Some req_label, Some responder, Some resp_label ->
      Ok (Cimp.System.Rendezvous { requester; req_label; responder; resp_label })
    | _ -> Error "rendezvous event missing a field")
  | Some k -> Error ("unknown event kind " ^ k)
  | None -> Error "event without a kind"

let to_json tr =
  let names =
    List.init (Cimp.System.n_procs tr.initial) (fun p ->
        Obs.Json.String (Cimp.System.name tr.initial p))
  in
  Obs.Json.Obj
    [
      ("broken", Obs.Json.String tr.broken);
      ("length", Obs.Json.Int (length tr));
      ("names", Obs.Json.List names);
      ("schedule", Obs.Json.List (List.map (fun s -> event_to_json s.event) tr.steps));
    ]

let schedule_of_json j =
  match (Option.bind (Obs.Json.member "broken" j) Obs.Json.to_string_opt,
         Option.bind (Obs.Json.member "schedule" j) Obs.Json.to_list) with
  | Some broken, Some events ->
    let rec parse acc = function
      | [] -> Ok (broken, List.rev acc)
      | e :: rest -> (
        match event_of_json e with Ok ev -> parse (ev :: acc) rest | Error msg -> Error msg)
    in
    parse [] events
  | None, _ -> Error "trace JSON missing \"broken\""
  | _, None -> Error "trace JSON missing \"schedule\""

(* Render just the event schedule; state dumps are the callers' business
   (they know the data-state type). *)
let pp ppf tr =
  let names =
    Array.init (Cimp.System.n_procs tr.initial) (Cimp.System.name tr.initial)
  in
  Fmt.pf ppf "@[<v>violated: %s (after %d steps)@,%a@]" tr.broken (length tr)
    (Fmt.list ~sep:Fmt.cut (fun ppf (i, s) ->
         Fmt.pf ppf "%3d. %a" i (Cimp.System.pp_event names) s.event))
    (List.mapi (fun i s -> (i + 1, s)) tr.steps)
