(* Counterexample traces: the sequence of scheduled events from the initial
   state to a state violating an invariant. *)

type ('a, 'v, 's) step = {
  event : Cimp.System.event;
  state : ('a, 'v, 's) Cimp.System.t;
}

type ('a, 'v, 's) t = {
  initial : ('a, 'v, 's) Cimp.System.t;
  steps : ('a, 'v, 's) step list;  (* in execution order *)
  broken : string;  (* name of the violated invariant *)
}

let length tr = List.length tr.steps

let final tr =
  match List.rev tr.steps with [] -> tr.initial | last :: _ -> last.state

(* -- JSON export ------------------------------------------------------------ *)

(* Counterexamples as artifacts: the schedule (plus process names and the
   violated invariant) fully determines the run, so exporting it makes a
   violation replayable without serializing the polymorphic data states. *)

let event_to_json = function
  | Cimp.System.Tau (p, l) ->
    Obs.Json.Obj
      [ ("kind", Obs.Json.String "tau"); ("pid", Obs.Json.Int p); ("label", Obs.Json.String l) ]
  | Cimp.System.Rendezvous { requester; req_label; responder; resp_label } ->
    Obs.Json.Obj
      [
        ("kind", Obs.Json.String "rendezvous");
        ("requester", Obs.Json.Int requester);
        ("req_label", Obs.Json.String req_label);
        ("responder", Obs.Json.Int responder);
        ("resp_label", Obs.Json.String resp_label);
      ]

let event_of_json j =
  let str k = Option.bind (Obs.Json.member k j) Obs.Json.to_string_opt in
  let int k = Option.bind (Obs.Json.member k j) Obs.Json.to_int in
  match str "kind" with
  | Some "tau" -> (
    match (int "pid", str "label") with
    | Some p, Some l -> Ok (Cimp.System.Tau (p, l))
    | _ -> Error "tau event missing pid/label")
  | Some "rendezvous" -> (
    match (int "requester", str "req_label", int "responder", str "resp_label") with
    | Some requester, Some req_label, Some responder, Some resp_label ->
      Ok (Cimp.System.Rendezvous { requester; req_label; responder; resp_label })
    | _ -> Error "rendezvous event missing a field")
  | Some k -> Error ("unknown event kind " ^ k)
  | None -> Error "event without a kind"

let to_json tr =
  let names =
    List.init (Cimp.System.n_procs tr.initial) (fun p ->
        Obs.Json.String (Cimp.System.name tr.initial p))
  in
  Obs.Json.Obj
    [
      ("broken", Obs.Json.String tr.broken);
      ("length", Obs.Json.Int (length tr));
      ("names", Obs.Json.List names);
      ("schedule", Obs.Json.List (List.map (fun s -> event_to_json s.event) tr.steps));
    ]

let schedule_of_json j =
  match (Option.bind (Obs.Json.member "broken" j) Obs.Json.to_string_opt,
         Option.bind (Obs.Json.member "schedule" j) Obs.Json.to_list) with
  | Some broken, Some events ->
    let rec parse acc = function
      | [] -> Ok (broken, List.rev acc)
      | e :: rest -> (
        match event_of_json e with Ok ev -> parse (ev :: acc) rest | Error msg -> Error msg)
    in
    parse [] events
  | None, _ -> Error "trace JSON missing \"broken\""
  | _, None -> Error "trace JSON missing \"schedule\""

(* -- import validation ------------------------------------------------------

   A schedule is only meaningful against the system it was recorded on: a
   stale trace from an instance with a different process count (--muts) or
   a different program (variant, disabled ops) used to replay into a
   confusing failure deep inside the model.  Check every event's pids and
   labels against the target system's programs up front and fail with a
   diagnosis instead.  [sys] must be the pristine initial system (its
   frame stacks still hold the full programs, so Com.labels enumerates
   every label the process can ever fire). *)

let validate_events sys events =
  let n = Cimp.System.n_procs sys in
  let labels_of =
    (* per-pid label universe, computed once *)
    Array.init n (fun p ->
        List.concat_map Cimp.Com.labels (Cimp.System.proc sys p).Cimp.Com.stack)
  in
  let check_pid i p =
    if p < 0 || p >= n then
      Error
        (Fmt.str
           "event %d: pid %d is out of range — this system has %d processes; the trace was \
            recorded on a different instance (check --muts)"
           i p n)
    else Ok ()
  in
  let check_label i p l =
    if List.mem l labels_of.(p) then Ok ()
    else
      Error
        (Fmt.str
           "event %d: label %S is not a label of process %d (%S) — the trace was recorded \
            on a different system (check --muts/--variant/--disable)"
           i l p (Cimp.System.name sys p))
  in
  let ( let* ) = Result.bind in
  let check_event i = function
    | Cimp.System.Tau (p, l) ->
      let* () = check_pid i p in
      check_label i p l
    | Cimp.System.Rendezvous { requester; req_label; responder; resp_label } ->
      let* () = check_pid i requester in
      let* () = check_pid i responder in
      let* () = check_label i requester req_label in
      check_label i responder resp_label
  in
  let rec go i = function
    | [] -> Ok ()
    | ev :: rest -> (
      match check_event i ev with Ok () -> go (i + 1) rest | Error _ as e -> e)
  in
  go 1 events

let import sys j =
  match schedule_of_json j with
  | Error _ as e -> e
  | Ok (broken, events) -> (
    match validate_events sys events with
    | Ok () -> Ok (broken, events)
    | Error msg -> Error msg)

(* Render just the event schedule; state dumps are the callers' business
   (they know the data-state type). *)
let pp ppf tr =
  let names =
    Array.init (Cimp.System.n_procs tr.initial) (Cimp.System.name tr.initial)
  in
  Fmt.pf ppf "@[<v>violated: %s (after %d steps)@,%a@]" tr.broken (length tr)
    (Fmt.list ~sep:Fmt.cut (fun ppf (i, s) ->
         Fmt.pf ppf "%3d. %a" i (Cimp.System.pp_event names) s.event))
    (List.mapi (fun i s -> (i + 1, s)) tr.steps)
