(** Exhaustive explicit-state exploration: breadth-first search over a CIMP
    system's reachable states, evaluating invariants at every state.

    On a bounded instance this is the executable substitute for the paper's
    induction over the reachable-state set (Section 3.2), and it produces a
    shortest counterexample schedule when an invariant fails. *)

type ('a, 'v, 's) outcome = {
  states : int;  (** distinct states visited *)
  transitions : int;  (** transitions traversed *)
  depth : int;  (** BFS depth reached *)
  deadlocks : int;  (** states with no successors *)
  truncated : bool;  (** hit [max_states] before closing the state space *)
  violation : ('a, 'v, 's) Trace.t option;  (** first (shortest) violation *)
  elapsed : float;  (** wall-clock seconds *)
  covered : (int * Cimp.Label.t) list;
      (** (pid, label) pairs that fired (empty unless [track_coverage]),
          sorted by pid then label so coverage diffs are stable across
          runs; program locations never exercised indicate dead model
          code *)
}

val pp_outcome : ('a, 'v, 's) outcome Fmt.t
(** One-line human rendering of an outcome (counts, depth, wall time,
    verdict) — the checker CLIs' summary line. *)

(** Sort (pid, label) coverage pairs deterministically (by pid, then
    label), as the [covered] field is; shared with {!Par_explore}. *)
val sort_coverage : (int * Cimp.Label.t) list -> (int * Cimp.Label.t) list

(** [coverage_gaps sys ~covered] lists the (pid, label) pairs of [sys]'s
    programs that never fired, sorted by pid then label.  Pass the
    checker's {e initial} system (its stacks still hold the full
    programs) and an outcome's [covered] list. *)
val coverage_gaps :
  ('a, 'v, 's) Cimp.System.t -> covered:(int * Cimp.Label.t) list -> (int * Cimp.Label.t) list

(** [replay_chain ~norm ~matches initial chain] re-executes a recorded
    transition chain — (key, event) pairs from the root — forward from
    [initial], returning the trace steps.  An event alone does not
    determine the successor (a [Local_op] may offer several successors
    under one label), so each step also requires [matches state key] on
    the state it lands in; [key] is a structural fingerprint in the
    sequential explorer and a compact int hash in the parallel one.
    Shared by both explorers' counterexample reconstruction and by
    checkpoint resume (which rebuilds frontier states from parent
    chains, because CIMP systems embed closures and cannot be
    marshalled). *)
val replay_chain :
  norm:(('a, 'v, 's) Cimp.System.t -> ('a, 'v, 's) Cimp.System.t) ->
  matches:(('a, 'v, 's) Cimp.System.t -> 'k -> bool) ->
  ('a, 'v, 's) Cimp.System.t ->
  ('k * Cimp.System.event) list ->
  ('a, 'v, 's) Trace.step list

(** [run ~invariants initial] explores from [initial].  Invariants are
    (name, predicate) pairs checked at every state, including the initial
    one; exploration stops at the first violation, which BFS order makes a
    shortest one.

    @param max_states cap on distinct states (default 1,000,000); hitting
           it sets [truncated] and stops the exploration (no further
           successors are scanned or enqueued).
    @param normal_form explore {!Cimp.System.normalize} normal forms
           (default [true]): runs of deterministic local steps execute
           eagerly, so invariants are evaluated at atomic-action
           boundaries only.
    @param track_coverage record which (pid, label) pairs fire.
    @param obs observability reporter (default {!Obs.Reporter.null}, which
           costs one branch per expanded node).  When enabled, the run
           emits [heartbeat] records (states/sec, frontier size, depth,
           GC words) every [heartbeat_every] states, one [invariant]
           record per invariant (eval count, cumulative seconds,
           first-violation attribution) and a final [outcome] record.
    @param tracer span tracer (default {!Obs.Tracing.null}).  When live
           (with at least one lane), lane 0 carries one [expand] span per
           heartbeat interval of expansion work, so the Chrome trace shows
           throughput phases over time.
    @param heartbeat_every states between heartbeats (default 20,000).
    @param reducer optional state-space reduction hook ({!Reducer.t}):
           its fingerprint replaces {!Fingerprint.of_system} for seen-set
           dedup and counterexample replay matching, and its successor
           function replaces {!Cimp.System.steps} for expansion.  Absent,
           behaviour is bit-for-bit the unreduced checker.  When present
           and [obs] is enabled, a [reduction] record is emitted next to
           the [outcome] record.  Note reduction may lengthen the
           "shortest" counterexample (partial-order reduction removes
           interleavings, symmetry merges orbits). *)
val run :
  ?max_states:int ->
  ?normal_form:bool ->
  ?track_coverage:bool ->
  ?obs:Obs.Reporter.t ->
  ?tracer:Obs.Tracing.t ->
  ?heartbeat_every:int ->
  ?reducer:('a, 'v, 's) Reducer.t ->
  invariants:(string * (('a, 'v, 's) Cimp.System.t -> bool)) list ->
  ('a, 'v, 's) Cimp.System.t ->
  ('a, 'v, 's) outcome
