(* Randomized deep runs: where exhaustive exploration is infeasible (larger
   heaps, more mutators), schedule transitions uniformly at random for many
   steps, evaluating the invariants at every state.  Probabilistic rather
   than exhaustive, but it drives the model through thousands of collection
   cycles on instances the BFS cannot close. *)

type ('a, 'v, 's) outcome = {
  steps_taken : int;
  runs : int;  (* walks performed (includes every restart) *)
  restarts : int;  (* restarts forced by dead ends, specifically *)
  violation : ('a, 'v, 's) Trace.t option;
  elapsed : float;
}

let pp_outcome ppf o =
  Fmt.pf ppf "steps=%d runs=%d dead-ends=%d %s (%.2fs)" o.steps_taken o.runs o.restarts
    (match o.violation with None -> "all invariants hold" | Some t -> "VIOLATION: " ^ t.Trace.broken)
    o.elapsed

let run ?(seed = 42) ?(steps = 100_000) ?(max_run_length = 5_000) ?(normal_form = true)
    ?(trace_tail = 1000) ?(obs = Obs.Reporter.null) ?(heartbeat_every = 20_000) ~invariants
    initial =
  let trace_tail = max 1 trace_tail in
  let t0 = Unix.gettimeofday () in
  let norm sys = if normal_form then Cimp.System.normalize sys else sys in
  let initial = norm initial in
  let rng = Random.State.make [| seed |] in
  let iv = Inv_stats.make ~obs invariants in
  let check_state = iv.Inv_stats.check in
  let violation = ref None in
  let taken = ref 0 in
  let runs = ref 0 in
  let restarts = ref 0 in
  let hb_taken = ref 0 in
  let hb_time = ref t0 in
  let heartbeat () =
    if Obs.Reporter.enabled obs && !taken - !hb_taken >= heartbeat_every then begin
      let now = Unix.gettimeofday () in
      let interval = now -. !hb_time in
      let rate =
        if interval > 0. then float_of_int (!taken - !hb_taken) /. interval else 0.
      in
      let gc = Gc.quick_stat () in
      Obs.Reporter.emit obs "heartbeat"
        [
          ("checker", Obs.Json.String "walk");
          ("steps", Obs.Json.Int !taken);
          ("runs", Obs.Json.Int !runs);
          ("dead_end_restarts", Obs.Json.Int !restarts);
          ("steps_per_sec", Obs.Json.Float rate);
          ("heap_words", Obs.Json.Int gc.Gc.heap_words);
        ];
      hb_taken := !taken;
      hb_time := now
    end
  in
  (match check_state initial with
  | Some name -> violation := Some { Trace.initial; steps = []; broken = name }
  | None -> ());
  while !violation = None && !taken < steps do
    incr runs;
    let sys = ref initial in
    let len = ref 0 in
    (* counterexample memory is bounded: keep only the newest [trace_tail]
       (amortized: truncate on reaching twice that) of the walk, newest
       first — deep walks would otherwise retain every intermediate state *)
    let rev_steps = ref [] in
    let tail_len = ref 0 in
    let continue = ref true in
    while !continue && !violation = None && !taken < steps && !len < max_run_length do
      match Cimp.System.steps !sys with
      | [] ->
        (* dead end; restart *)
        incr restarts;
        continue := false
      | succs ->
        let event, sys' = List.nth succs (Random.State.int rng (List.length succs)) in
        let sys' = norm sys' in
        sys := sys';
        incr taken;
        incr len;
        rev_steps := { Trace.event; state = sys' } :: !rev_steps;
        incr tail_len;
        if !tail_len >= 2 * trace_tail then begin
          rev_steps := List.filteri (fun i _ -> i < trace_tail) !rev_steps;
          tail_len := trace_tail
        end;
        heartbeat ();
        (match check_state sys' with
        | Some name ->
          let tail = List.filteri (fun i _ -> i < trace_tail) !rev_steps in
          violation := Some { Trace.initial; steps = List.rev tail; broken = name }
        | None -> ())
    done
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  let first_violation = Option.map (fun tr -> tr.Trace.broken) !violation in
  iv.Inv_stats.report obs ~first_violation;
  if Obs.Reporter.enabled obs then
    Obs.Reporter.emit obs "outcome"
      [
        ("checker", Obs.Json.String "walk");
        ("steps", Obs.Json.Int !taken);
        ("runs", Obs.Json.Int !runs);
        ("dead_end_restarts", Obs.Json.Int !restarts);
        ( "violation",
          match first_violation with
          | None -> Obs.Json.Null
          | Some name -> Obs.Json.String name );
        ("elapsed_s", Obs.Json.Float elapsed);
        ( "steps_per_sec",
          Obs.Json.Float (if elapsed > 0. then float_of_int !taken /. elapsed else 0.) );
      ];
  { steps_taken = !taken; runs = !runs; restarts = !restarts; violation = !violation; elapsed }
