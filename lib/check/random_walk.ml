(* Randomized deep runs: where exhaustive exploration is infeasible (larger
   heaps, more mutators), schedule transitions uniformly at random for many
   steps, evaluating the invariants at every state.  Probabilistic rather
   than exhaustive, but it drives the model through thousands of collection
   cycles on instances the BFS cannot close. *)

type ('a, 'v, 's) outcome = {
  steps_taken : int;
  runs : int;  (* walks performed (includes every restart) *)
  restarts : int;  (* restarts forced by dead ends, specifically *)
  violation : ('a, 'v, 's) Trace.t option;
  elapsed : float;
}

let pp_outcome ppf o =
  Fmt.pf ppf "steps=%d runs=%d dead-ends=%d %s (%.2fs)" o.steps_taken o.runs o.restarts
    (match o.violation with None -> "all invariants hold" | Some t -> "VIOLATION: " ^ t.Trace.broken)
    o.elapsed

let run ?(seed = 42) ?(steps = 100_000) ?(max_run_length = 5_000) ?(normal_form = true)
    ?(trace_tail = 1000) ?(obs = Obs.Reporter.null) ?(tracer = Obs.Tracing.null)
    ?(heartbeat_every = 20_000) ?(should_stop = fun () -> false) ?domain ?reducer ~invariants
    initial =
  let domain_field = match domain with None -> [] | Some d -> [ ("domain", Obs.Json.Int d) ] in
  (* one tracer lane per walker, indexed by the swarm domain (lane 0 for a
     solo walk): a span per heartbeat interval of stepping, plus one rich
     span over the whole walk *)
  let lane = match domain with None -> 0 | Some d -> d in
  let tr_on = Obs.Tracing.enabled tracer && lane < Obs.Tracing.lanes tracer in
  let n_steps_span = if tr_on then Obs.Tracing.intern tracer "walk-steps" else 0 in
  let n_walk = if tr_on then Obs.Tracing.intern tracer "walk" else 0 in
  if tr_on then
    Obs.Tracing.set_lane tracer ~dom:lane
      (match domain with None -> "walk" | Some d -> Fmt.str "walker %d" d);
  let tr_t0 = Obs.Tracing.now tracer in
  let tr_taken = ref 0 in
  let tr_start = ref tr_t0 in
  let trace_tail = max 1 trace_tail in
  let t0 = Unix.gettimeofday () in
  (* per-phase wall-time attribution for the "profile" record (no
     fingerprinting here: the walk keeps no seen-set) *)
  let profiling = Obs.Reporter.enabled obs in
  let gc0 = Gc.quick_stat () in
  let succ_s = ref 0. and succ_calls = ref 0 in
  let norm_s = ref 0. and norm_calls = ref 0 in
  let timed acc calls f =
    if profiling then begin
      let t = Unix.gettimeofday () in
      let r = f () in
      acc := !acc +. (Unix.gettimeofday () -. t);
      incr calls;
      r
    end
    else f ()
  in
  let norm sys = if normal_form then Cimp.System.normalize sys else sys in
  let initial = norm initial in
  let rng = Random.State.make [| seed |] in
  let iv = Inv_stats.make ~obs invariants in
  let check_state = iv.Inv_stats.check in
  let violation = ref None in
  let taken = ref 0 in
  let runs = ref 0 in
  let restarts = ref 0 in
  let hb_taken = ref 0 in
  let hb_time = ref t0 in
  let heartbeat () =
    if Obs.Reporter.enabled obs && !taken - !hb_taken >= heartbeat_every then begin
      let now = Unix.gettimeofday () in
      let interval = now -. !hb_time in
      let rate =
        if interval > 0. then float_of_int (!taken - !hb_taken) /. interval else 0.
      in
      let gc = Gc.quick_stat () in
      Obs.Reporter.emit obs "heartbeat"
        (("checker", Obs.Json.String "walk")
         :: domain_field
        @ [
            ("steps", Obs.Json.Int !taken);
            ("runs", Obs.Json.Int !runs);
            ("dead_end_restarts", Obs.Json.Int !restarts);
            ("steps_per_sec", Obs.Json.Float rate);
            ("heap_words", Obs.Json.Int gc.Gc.heap_words);
          ]);
      hb_taken := !taken;
      hb_time := now
    end;
    if tr_on && !taken - !tr_taken >= heartbeat_every then begin
      let now_ns = Obs.Tracing.now tracer in
      Obs.Tracing.span_between tracer ~dom:lane ~name:n_steps_span ~start_ns:!tr_start
        ~stop_ns:now_ns;
      tr_taken := !taken;
      tr_start := now_ns
    end
  in
  (match check_state initial with
  | Some name -> violation := Some { Trace.initial; steps = []; broken = name }
  | None -> ());
  while !violation = None && !taken < steps && not (should_stop ()) do
    incr runs;
    let sys = ref initial in
    let len = ref 0 in
    (* counterexample memory is bounded: keep only the newest [trace_tail]
       (amortized: truncate on reaching twice that) of the walk, newest
       first — deep walks would otherwise retain every intermediate state *)
    let rev_steps = ref [] in
    let tail_len = ref 0 in
    let continue = ref true in
    while
      !continue && !violation = None && !taken < steps && !len < max_run_length
      && not (should_stop ())
    do
      match timed succ_s succ_calls (fun () -> Reducer.succs_of reducer !sys) with
      | [] ->
        (* dead end; restart *)
        incr restarts;
        continue := false
      | succs ->
        let event, sys' = List.nth succs (Random.State.int rng (List.length succs)) in
        let sys' = timed norm_s norm_calls (fun () -> norm sys') in
        sys := sys';
        incr taken;
        incr len;
        rev_steps := { Trace.event; state = sys' } :: !rev_steps;
        incr tail_len;
        if !tail_len >= 2 * trace_tail then begin
          rev_steps := List.filteri (fun i _ -> i < trace_tail) !rev_steps;
          tail_len := trace_tail
        end;
        heartbeat ();
        (match check_state sys' with
        | Some name ->
          let tail = List.filteri (fun i _ -> i < trace_tail) !rev_steps in
          violation := Some { Trace.initial; steps = List.rev tail; broken = name }
        | None -> ())
    done
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  if tr_on then
    Obs.Tracing.span_args tracer ~dom:lane ~name:n_walk ~start_ns:tr_t0
      ~stop_ns:(Obs.Tracing.now tracer)
      ~args:
        [
          ("steps", Obs.Json.Int !taken);
          ("runs", Obs.Json.Int !runs);
          ("dead_end_restarts", Obs.Json.Int !restarts);
        ];
  let first_violation = Option.map (fun tr -> tr.Trace.broken) !violation in
  iv.Inv_stats.report obs ~first_violation;
  (* the walk has no seen-set, so "states" is the steps taken *)
  Reducer.report obs ~checker:"walk" reducer ~states:!taken ~transitions:!taken ~elapsed;
  if profiling then begin
    let inv_evals, inv_s = iv.Inv_stats.totals () in
    let gc1 = Gc.quick_stat () in
    let other = Float.max 0. (elapsed -. !succ_s -. !norm_s -. inv_s) in
    Obs.Reporter.emit obs "profile"
      (("checker", Obs.Json.String "walk")
       :: domain_field
      @ [
          ("states", Obs.Json.Int !taken);
          ("transitions", Obs.Json.Int !taken);
          ("elapsed_s", Obs.Json.Float elapsed);
          ("succ_gen_s", Obs.Json.Float !succ_s);
          ("succ_gen_calls", Obs.Json.Int !succ_calls);
          ("normalize_s", Obs.Json.Float !norm_s);
          ("fingerprint_s", Obs.Json.Float 0.);
          ("fingerprint_calls", Obs.Json.Int 0);
          ("invariant_s", Obs.Json.Float inv_s);
          ("invariant_evals", Obs.Json.Int inv_evals);
          ("other_s", Obs.Json.Float other);
          ("minor_words", Obs.Json.Float (gc1.Gc.minor_words -. gc0.Gc.minor_words));
          ("promoted_words", Obs.Json.Float (gc1.Gc.promoted_words -. gc0.Gc.promoted_words));
          ("major_words", Obs.Json.Float (gc1.Gc.major_words -. gc0.Gc.major_words));
          ( "minor_collections",
            Obs.Json.Int (gc1.Gc.minor_collections - gc0.Gc.minor_collections) );
          ( "major_collections",
            Obs.Json.Int (gc1.Gc.major_collections - gc0.Gc.major_collections) );
          ("heap_words", Obs.Json.Int gc1.Gc.heap_words);
        ])
  end;
  if Obs.Reporter.enabled obs then
    Obs.Reporter.emit obs "outcome"
      (("checker", Obs.Json.String "walk")
       :: domain_field
      @ [
          ("steps", Obs.Json.Int !taken);
          ("runs", Obs.Json.Int !runs);
          ("dead_end_restarts", Obs.Json.Int !restarts);
          ( "violation",
            match first_violation with
            | None -> Obs.Json.Null
            | Some name -> Obs.Json.String name );
          ("elapsed_s", Obs.Json.Float elapsed);
          ( "steps_per_sec",
            Obs.Json.Float (if elapsed > 0. then float_of_int !taken /. elapsed else 0.) );
        ]);
  { steps_taken = !taken; runs = !runs; restarts = !restarts; violation = !violation; elapsed }

(* -- the swarm --------------------------------------------------------------

   [jobs] domains walk the same root concurrently, each with a seed derived
   from the root seed and its domain index, so the swarm covers [jobs]
   independent schedule streams.  The first domain to find a violation
   raises a shared stop flag that the others poll every step.  Counters are
   aggregated through Obs atomic metrics in a swarm-private registry (so
   repeated swarms do not pile up registrations in the process-wide one);
   the aggregate is attached to the swarm's outcome record. *)

let derive_seed seed k = seed lxor ((k + 1) * 0x9E3779B1)

let swarm ?(jobs = 1) ?(seed = 42) ?(steps = 100_000) ?(max_run_length = 5_000)
    ?(normal_form = true) ?(trace_tail = 1000) ?(obs = Obs.Reporter.null)
    ?(tracer = Obs.Tracing.null) ?(heartbeat_every = 20_000) ?reducer ~invariants initial =
  let jobs = max 1 (min jobs 64) in
  if jobs = 1 then
    run ~seed ~steps ~max_run_length ~normal_form ~trace_tail ~obs ~tracer ~heartbeat_every
      ?reducer ~invariants initial
  else begin
    let t0 = Unix.gettimeofday () in
    let registry = Obs.Metrics.create_registry () in
    let m_steps = Obs.Metrics.acounter ~registry "walk.swarm.steps" in
    let m_runs = Obs.Metrics.acounter ~registry "walk.swarm.runs" in
    let m_restarts = Obs.Metrics.acounter ~registry "walk.swarm.restarts" in
    let stop = Atomic.make false in
    let should_stop () = Atomic.get stop in
    (* split the step budget across domains; the first [steps mod jobs]
       domains take the remainder, so the total is exactly [steps] *)
    let budget k = (steps / jobs) + if k < steps mod jobs then 1 else 0 in
    let worker k () =
      let o =
        run ~seed:(derive_seed seed k) ~steps:(budget k) ~max_run_length ~normal_form
          ~trace_tail ~obs ~tracer ~heartbeat_every ~should_stop ~domain:k ?reducer ~invariants
          initial
      in
      Obs.Metrics.aadd m_steps o.steps_taken;
      Obs.Metrics.aadd m_runs o.runs;
      Obs.Metrics.aadd m_restarts o.restarts;
      if o.violation <> None then Atomic.set stop true;
      o
    in
    let doms = Array.init (jobs - 1) (fun j -> Domain.spawn (worker (j + 1))) in
    let o0 = worker 0 () in
    let outcomes = o0 :: Array.to_list (Array.map Domain.join doms) in
    (* lowest-domain-index winner; when no domain found one, None *)
    let violation = List.find_map (fun o -> o.violation) outcomes in
    let elapsed = Unix.gettimeofday () -. t0 in
    let steps_taken = Obs.Metrics.acount m_steps in
    let runs = Obs.Metrics.acount m_runs in
    let restarts = Obs.Metrics.acount m_restarts in
    if Obs.Reporter.enabled obs then begin
      let rate = if elapsed > 0. then float_of_int steps_taken /. elapsed else 0. in
      Obs.Reporter.emit obs "outcome"
        [
          ("checker", Obs.Json.String "walk-swarm");
          ("jobs", Obs.Json.Int jobs);
          ( "violation",
            match violation with
            | None -> Obs.Json.Null
            | Some tr -> Obs.Json.String tr.Trace.broken );
          ("elapsed_s", Obs.Json.Float elapsed);
          ("steps_per_sec", Obs.Json.Float rate);
          ("metrics", Obs.Metrics.dump ~registry ());
        ];
      Obs.Reporter.emit obs "scaling"
        [
          ("checker", Obs.Json.String "walk-swarm");
          ("jobs", Obs.Json.Int jobs);
          ("steps", Obs.Json.Int steps_taken);
          ("elapsed_s", Obs.Json.Float elapsed);
          ("steps_per_sec", Obs.Json.Float rate);
        ]
    end;
    { steps_taken; runs; restarts; violation; elapsed }
  end
