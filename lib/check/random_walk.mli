(** Randomized deep runs: schedule transitions uniformly at random,
    checking invariants at every state.  Probabilistic where exhaustive
    exploration is infeasible (larger heaps, more mutators, unbounded
    cycles); drives the model through thousands of collection cycles. *)

type ('a, 'v, 's) outcome = {
  steps_taken : int;
  runs : int;  (** walks performed (includes every restart) *)
  restarts : int;  (** restarts forced by dead ends, specifically *)
  violation : ('a, 'v, 's) Trace.t option;
  elapsed : float;
}

val pp_outcome : ('a, 'v, 's) outcome Fmt.t
(** One-line human rendering of a walk outcome (steps, runs, restarts,
    wall time, verdict). *)

(** [run ~invariants initial] walks until [steps] scheduled steps have been
    taken or an invariant fails.  Deterministic in [seed].

    @param max_run_length restart after this many steps in one walk
    @param normal_form as in {!Explore.run}
    @param trace_tail retain at most this many trailing steps of the
           current walk for the counterexample (default 1000; memory for
           deep walks is bounded by it).  A violation deeper than
           [trace_tail] yields a trace holding only the final
           [trace_tail] steps — its [steps] then do not replay from
           [initial].
    @param obs as in {!Explore.run}: [heartbeat] records every
           [heartbeat_every] steps (steps/sec, runs, dead-end restarts,
           GC words), per-[invariant] records, and a final [outcome]
           record.
    @param tracer span tracer (default {!Obs.Tracing.null}).  When live,
           the walk's lane (index [domain], or 0) carries one [walk-steps]
           span per heartbeat interval and a [walk] span over the whole
           call — per-domain timeline lanes under {!swarm}.
    @param should_stop polled every step; the walk returns early when it
           turns true (cooperative cancellation for {!swarm}).
    @param domain tag emitted as a [domain] field on this walk's
           heartbeat/outcome records (set by {!swarm}).
    @param reducer optional {!Reducer.t}: its successor function replaces
           {!Cimp.System.steps} (the walk has no seen-set, so the
           reducer's fingerprint is unused).  Note a partial-order-reduced
           walk samples schedules from the reduced transition system, so
           per-seed step sequences differ from unreduced runs. *)
val run :
  ?seed:int ->
  ?steps:int ->
  ?max_run_length:int ->
  ?normal_form:bool ->
  ?trace_tail:int ->
  ?obs:Obs.Reporter.t ->
  ?tracer:Obs.Tracing.t ->
  ?heartbeat_every:int ->
  ?should_stop:(unit -> bool) ->
  ?domain:int ->
  ?reducer:('a, 'v, 's) Reducer.t ->
  invariants:(string * (('a, 'v, 's) Cimp.System.t -> bool)) list ->
  ('a, 'v, 's) Cimp.System.t ->
  ('a, 'v, 's) outcome

(** [swarm ~jobs ~invariants initial] runs [jobs] concurrent walks of the
    same root on separate domains, each seeded from [seed] and its domain
    index, splitting the [steps] budget across domains (the total is
    exactly [steps] when no violation occurs, so aggregate counters are
    deterministic in [seed]).  The first violation found raises a stop
    flag the other domains poll every step; the lowest-indexed finder's
    trace is returned.  Run/step/restart counters are aggregated through
    Obs atomic metrics in a swarm-private registry and attached to the
    swarm's [outcome] record, followed by a [scaling] record.  [jobs <= 1]
    delegates to {!run}; [jobs] is capped at 64. *)
val swarm :
  ?jobs:int ->
  ?seed:int ->
  ?steps:int ->
  ?max_run_length:int ->
  ?normal_form:bool ->
  ?trace_tail:int ->
  ?obs:Obs.Reporter.t ->
  ?tracer:Obs.Tracing.t ->
  ?heartbeat_every:int ->
  ?reducer:('a, 'v, 's) Reducer.t ->
  invariants:(string * (('a, 'v, 's) Cimp.System.t -> bool)) list ->
  ('a, 'v, 's) Cimp.System.t ->
  ('a, 'v, 's) outcome
