(* Parallel exhaustive exploration: level-synchronized BFS across OCaml 5
   domains.

   The state space is explored one BFS level at a time; a level's frontier
   is split into contiguous slices, one worker domain per slice, and the
   workers meet at a barrier (Domain.join) before the next level starts.
   Level synchronization preserves the shortest-counterexample semantics
   of the sequential explorer: a violation discovered at level d+1 cannot
   be preempted by a shorter one, because every state of depth <= d was
   inserted at an earlier level.

   Memory layout is the point of the exercise (cf. "Reducing State
   Explosion for Software Model Checking with Relaxed Memory Consistency
   Models"): full states live only in the current and next frontier.  The
   seen-set is sharded by the low bits of the compact structural
   fingerprint (Fingerprint.hash) into independently-locked
   open-addressing tables over unboxed int bigarrays, storing three words
   per state — fingerprint, parent fingerprint, packed event — so the
   closed set costs 24 bytes/state regardless of state size.
   Counterexamples are rebuilt by bounded replay of the recorded event
   chain, exactly as in the sequential explorer.

   Determinism: on a run with no violation, {states, transitions, depth,
   deadlocks, covered} are equal to the sequential explorer's for every
   [jobs] (the BFS level sets are scheduling-independent; only which
   parent a state records is racy, which affects neither counts nor
   verdicts).  On a violating run all equal-depth (shortest) violations
   are collected at the level barrier and the one with the smallest
   fingerprint is reported, so the verdict and trace length are
   deterministic; the sequential explorer additionally stops mid-level,
   so state counts of violating runs are not comparable across [jobs]. *)

type ('a, 'v, 's) outcome = ('a, 'v, 's) Explore.outcome

(* -- packed events ----------------------------------------------------------

   Parent-table entries store the generating event as one native int.
   Labels are interned against the initial system's programs (every label
   a run can fire occurs in the initial frame stacks — the same property
   [Explore.coverage_gaps] relies on).  Layout, from bit 0:
     tau:        label(20) | pid(10)..(bits 20-29)           kind bit 62 = 0
     rendezvous: resp_label(20) | responder(10) | req_label(20, bits 30-49)
                 | requester(10, bits 50-59)                 kind bit 62 = 1 *)

let label_bits = 20
let pid_bits = 10

let intern_labels sys =
  let ids = Hashtbl.create 256 in
  let rev = ref [] in
  let n = ref 0 in
  for p = 0 to Cimp.System.n_procs sys - 1 do
    List.iter
      (fun l ->
        if not (Hashtbl.mem ids l) then begin
          Hashtbl.add ids l !n;
          rev := l :: !rev;
          incr n
        end)
      (List.concat_map Cimp.Com.labels (Cimp.System.proc sys p).Cimp.Com.stack)
  done;
  if !n >= 1 lsl label_bits then invalid_arg "Par_explore: too many labels to pack";
  if Cimp.System.n_procs sys >= 1 lsl pid_bits then
    invalid_arg "Par_explore: too many processes to pack";
  (ids, Array.of_list (List.rev !rev))

let label_id ids l =
  match Hashtbl.find_opt ids l with
  | Some i -> i
  | None -> invalid_arg ("Par_explore: label not in the initial program: " ^ l)

let encode_event ids = function
  | Cimp.System.Tau (p, l) -> (p lsl label_bits) lor label_id ids l
  | Cimp.System.Rendezvous { requester; req_label; responder; resp_label } ->
    (1 lsl 62)
    lor (requester lsl 50)
    lor (label_id ids req_label lsl 30)
    lor (responder lsl label_bits)
    lor label_id ids resp_label

let decode_event labels code =
  let lmask = (1 lsl label_bits) - 1 in
  let pmask = (1 lsl pid_bits) - 1 in
  if (code lsr 62) land 1 = 0 then
    Cimp.System.Tau ((code lsr label_bits) land pmask, labels.(code land lmask))
  else
    Cimp.System.Rendezvous
      {
        requester = (code lsr 50) land pmask;
        req_label = labels.((code lsr 30) land lmask);
        responder = (code lsr label_bits) land pmask;
        resp_label = labels.(code land lmask);
      }

(* -- the sharded seen-set ---------------------------------------------------

   [n_shards] independently-locked open-addressing tables with linear
   probing.  The shard is picked by the fingerprint's low bits, the slot
   by the next bits, so the two indices do not alias.  Keys, parents and
   packed events are parallel unboxed int arrays; key 0 marks an empty
   slot (Fingerprint.hash is never 0). *)

module Seen = struct
  let n_shards = 64
  let shard_bits = 6 (* log2 n_shards *)

  type shard = {
    lock : Mutex.t;
    mutable keys : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
    mutable parents : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
    mutable events : int array;
    mutable count : int;
  }

  type t = shard array

  let make_arr cap =
    let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout cap in
    Bigarray.Array1.fill a 0;
    a

  let shard_cap = 1024 (* initial slots per shard; doubles at 70% load *)

  let create () =
    Array.init n_shards (fun _ ->
        {
          lock = Mutex.create ();
          keys = make_arr shard_cap;
          parents = make_arr shard_cap;
          events = Array.make shard_cap 0;
          count = 0;
        })

  let shard (t : t) fp = t.(fp land (n_shards - 1))

  (* Slot of [fp], or of the empty slot where it belongs; caller locks. *)
  let probe keys cap fp =
    let mask = cap - 1 in
    let i = ref ((fp asr shard_bits) land mask) in
    let go = ref true in
    while !go do
      let k = Bigarray.Array1.unsafe_get keys !i in
      if k = 0 || k = fp then go := false else i := (!i + 1) land mask
    done;
    !i

  let grow s =
    let old_cap = Bigarray.Array1.dim s.keys in
    let cap = 2 * old_cap in
    let keys = make_arr cap in
    let parents = make_arr cap in
    let events = Array.make cap 0 in
    for i = 0 to old_cap - 1 do
      let k = Bigarray.Array1.unsafe_get s.keys i in
      if k <> 0 then begin
        let j = probe keys cap k in
        Bigarray.Array1.unsafe_set keys j k;
        Bigarray.Array1.unsafe_set parents j (Bigarray.Array1.unsafe_get s.parents i);
        events.(j) <- s.events.(i)
      end
    done;
    s.keys <- keys;
    s.parents <- parents;
    s.events <- events

  (* [add t fp ~parent ~event] returns true iff [fp] was not present,
     recording (parent, event) for replay when it is fresh. *)
  let add (t : t) fp ~parent ~event =
    let s = shard t fp in
    Mutex.lock s.lock;
    let cap = Bigarray.Array1.dim s.keys in
    if 10 * (s.count + 1) > 7 * cap then grow s;
    let cap = Bigarray.Array1.dim s.keys in
    let i = probe s.keys cap fp in
    let fresh = Bigarray.Array1.unsafe_get s.keys i = 0 in
    if fresh then begin
      Bigarray.Array1.unsafe_set s.keys i fp;
      Bigarray.Array1.unsafe_set s.parents i parent;
      s.events.(i) <- event;
      s.count <- s.count + 1
    end;
    Mutex.unlock s.lock;
    fresh

  let find (t : t) fp =
    let s = shard t fp in
    Mutex.lock s.lock;
    let i = probe s.keys (Bigarray.Array1.dim s.keys) fp in
    let r =
      if Bigarray.Array1.unsafe_get s.keys i = fp then
        Some (Bigarray.Array1.unsafe_get s.parents i, s.events.(i))
      else None
    in
    Mutex.unlock s.lock;
    r
end

(* -- the explorer ------------------------------------------------------------ *)

let max_jobs = 64

let run ?(jobs = 1) ?(max_states = 1_000_000) ?(normal_form = true) ?(track_coverage = false)
    ?(obs = Obs.Reporter.null) ?(heartbeat_every = 20_000) ?reducer ~invariants initial =
  let jobs = max 1 (min jobs max_jobs) in
  if jobs = 1 then
    (* the sequential explorer is the jobs=1 semantics, bit for bit *)
    Explore.run ~max_states ~normal_form ~track_coverage ~obs ~heartbeat_every ?reducer
      ~invariants initial
  else begin
    let t0 = Unix.gettimeofday () in
    let norm sys = if normal_form then Cimp.System.normalize sys else sys in
    let fp_of sys = Reducer.fp_of reducer sys in
    let initial = norm initial in
    let label_ids, labels = intern_labels initial in
    let seen = Seen.create () in
    let states = Atomic.make 0 in
    let transitions = Atomic.make 0 in
    let deadlocks = Atomic.make 0 in
    let truncated = Atomic.make false in
    let depth = ref 0 in
    let violation = ref None in
    (* worker-indexed so each domain owns its instrumentation arrays *)
    let ivs = Array.init jobs (fun _ -> Inv_stats.make ~obs invariants) in
    let coverage =
      Array.init jobs (fun _ -> Hashtbl.create (if track_coverage then 512 else 1))
    in
    let record_event w ev =
      if track_coverage then begin
        match ev with
        | Cimp.System.Tau (p, l) -> Hashtbl.replace coverage.(w) (p, l) ()
        | Cimp.System.Rendezvous { requester; req_label; responder; resp_label } ->
          Hashtbl.replace coverage.(w) (requester, req_label) ();
          Hashtbl.replace coverage.(w) (responder, resp_label) ()
      end
    in
    let reconstruct fp broken =
      (* chain of (fingerprint, packed event) from the root to [fp] ... *)
      let rec back fp acc =
        match Seen.find seen fp with
        | Some (parent, ev) when parent <> 0 -> back parent ((fp, ev) :: acc)
        | _ -> acc
      in
      let chain = back fp [] in
      (* ... replayed forward, disambiguating same-label successors by the
         recorded fingerprint (as in Explore.run). *)
      let rec replay sys chain acc =
        match chain with
        | [] -> List.rev acc
        | (fp', code) :: rest -> (
          let ev = decode_event labels code in
          let next =
            List.find_map
              (fun (e, s') ->
                if e = ev then
                  let s' = norm s' in
                  if Fingerprint.hash (fp_of s') = fp' then Some s' else None
                else None)
              (Cimp.System.steps sys)
          in
          match next with
          | Some s' -> replay s' rest ({ Trace.event = ev; state = s' } :: acc)
          | None -> List.rev acc (* unreachable: the chain records real transitions *))
      in
      { Trace.initial; steps = replay initial chain []; broken }
    in
    (* One worker's share of a level: expand frontier[lo..hi), insert fresh
       successors into the shared seen-set, return them (with the level's
       invariant violations) for the next frontier.  Each worker emits its
       own heartbeats, tagged with its domain index. *)
    let process_slice w (frontier : (int * _) array) lo hi level =
      let iv = ivs.(w) in
      let next = ref [] in
      let viols = ref [] in
      let expanded = ref 0 in
      let hb_expanded = ref 0 in
      let hb_time = ref (Unix.gettimeofday ()) in
      for i = lo to hi - 1 do
        let fp, sys = frontier.(i) in
        let succs = Reducer.succs_of reducer sys in
        if succs = [] then Atomic.incr deadlocks;
        List.iter
          (fun (event, sys') ->
            if Atomic.get states < max_states then begin
              Atomic.incr transitions;
              record_event w event;
              let sys' = norm sys' in
              let fp' = Fingerprint.hash (fp_of sys') in
              if Seen.add seen fp' ~parent:fp ~event:(encode_event label_ids event) then begin
                let n = Atomic.fetch_and_add states 1 + 1 in
                if n >= max_states then Atomic.set truncated true;
                next := (fp', sys') :: !next;
                match iv.Inv_stats.check sys' with
                | Some name -> viols := (fp', name) :: !viols
                | None -> ()
              end
            end
            else Atomic.set truncated true)
          succs;
        incr expanded;
        if Obs.Reporter.enabled obs && !expanded - !hb_expanded >= heartbeat_every then begin
          let now = Unix.gettimeofday () in
          let interval = now -. !hb_time in
          let rate =
            if interval > 0. then float_of_int (!expanded - !hb_expanded) /. interval else 0.
          in
          let gc = Gc.quick_stat () in
          Obs.Reporter.emit obs "heartbeat"
            [
              ("checker", Obs.Json.String "par-explore");
              ("domain", Obs.Json.Int w);
              ("level", Obs.Json.Int level);
              ("states", Obs.Json.Int (Atomic.get states));
              ("transitions", Obs.Json.Int (Atomic.get transitions));
              ("states_per_sec", Obs.Json.Float rate);
              ("heap_words", Obs.Json.Int gc.Gc.heap_words);
            ];
          hb_expanded := !expanded;
          hb_time := now
        end
      done;
      (!next, !viols)
    in
    (* root *)
    let fp0 = Fingerprint.hash (fp_of initial) in
    ignore (Seen.add seen fp0 ~parent:0 ~event:0);
    Atomic.set states 1;
    (match ivs.(0).Inv_stats.check initial with
    | Some name -> violation := Some { Trace.initial; steps = []; broken = name }
    | None -> ());
    (* level loop; [d] is the depth of the frontier being expanded *)
    let rec loop frontier d =
      if Array.length frontier > 0 && !violation = None && not (Atomic.get truncated) then begin
        let len = Array.length frontier in
        (* tiny levels are not worth a fork-join round trip *)
        let k = if len < 4 * jobs then 1 else jobs in
        let results =
          if k = 1 then [ process_slice 0 frontier 0 len d ]
          else begin
            let chunk = (len + k - 1) / k in
            let bounds w = (w * chunk, min len ((w + 1) * chunk)) in
            let doms =
              Array.init (k - 1) (fun j ->
                  let lo, hi = bounds (j + 1) in
                  Domain.spawn (fun () -> process_slice (j + 1) frontier lo hi d))
            in
            let r0 =
              let lo, hi = bounds 0 in
              process_slice 0 frontier lo hi d
            in
            r0 :: Array.to_list (Array.map Domain.join doms)
          end
        in
        let next = List.concat_map fst results in
        if next <> [] then depth := d + 1;
        (match List.concat_map snd results with
        | [] -> ()
        | v :: vs ->
          (* all shortest violations are on this level; report the one
             with the smallest fingerprint, which is deterministic *)
          let fp, name =
            List.fold_left (fun (bf, bn) (f, n) -> if f < bf then (f, n) else (bf, bn)) v vs
          in
          violation := Some (reconstruct fp name));
        if !violation = None then loop (Array.of_list next) (d + 1)
      end
    in
    loop [| (fp0, initial) |] 0;
    let elapsed = Unix.gettimeofday () -. t0 in
    let first_violation = Option.map (fun tr -> tr.Trace.broken) !violation in
    Array.iter (fun iv -> iv.Inv_stats.report obs ~first_violation) ivs;
    let states = Atomic.get states in
    let transitions = Atomic.get transitions in
    Reducer.report obs ~checker:"par-explore" reducer ~states ~transitions ~elapsed;
    let deadlocks = Atomic.get deadlocks in
    let truncated = Atomic.get truncated in
    if Obs.Reporter.enabled obs then begin
      let rate = if elapsed > 0. then float_of_int states /. elapsed else 0. in
      Obs.Reporter.emit obs "outcome"
        [
          ("checker", Obs.Json.String "par-explore");
          ("jobs", Obs.Json.Int jobs);
          ("states", Obs.Json.Int states);
          ("transitions", Obs.Json.Int transitions);
          ("depth", Obs.Json.Int !depth);
          ("deadlocks", Obs.Json.Int deadlocks);
          ("truncated", Obs.Json.Bool truncated);
          ( "violation",
            match first_violation with
            | None -> Obs.Json.Null
            | Some name -> Obs.Json.String name );
          ("elapsed_s", Obs.Json.Float elapsed);
          ("states_per_sec", Obs.Json.Float rate);
        ];
      Obs.Reporter.emit obs "scaling"
        [
          ("checker", Obs.Json.String "par-explore");
          ("jobs", Obs.Json.Int jobs);
          ("states", Obs.Json.Int states);
          ("elapsed_s", Obs.Json.Float elapsed);
          ("states_per_sec", Obs.Json.Float rate);
        ]
    end;
    let covered =
      let merged = Hashtbl.create 512 in
      Array.iter (fun tbl -> Hashtbl.iter (fun k () -> Hashtbl.replace merged k ()) tbl) coverage;
      Explore.sort_coverage (Hashtbl.fold (fun k () acc -> k :: acc) merged [])
    in
    {
      Explore.states;
      transitions;
      depth = !depth;
      deadlocks;
      truncated;
      violation = !violation;
      elapsed;
      covered;
    }
  end
