(* Parallel exhaustive exploration: asynchronous work-stealing BFS across
   OCaml 5 domains.

   A persistent pool of [jobs] worker domains is spawned once per run.
   Each worker expands states from its own deque (a growable ring guarded
   by a contention-probed mutex), pushes fresh successors locally, and,
   when its deque runs dry, steals half of the first non-empty victim
   deque it finds.  There is no level barrier: termination is detected by
   an atomic active-task counter — the counter is incremented before a
   task is published and decremented only after its expansion (including
   the publication of its successors) completes, so a worker that observes
   zero pending tasks knows the whole exploration is quiescent.

   Correctness without level synchronization rests on depth stamps.
   Every seen-set entry carries the length of the shortest discovered
   path from the root; when a shorter path to a known state is found the
   entry's (depth, parent, event) triple is atomically improved and the
   state is re-enqueued, so stamps relax down to true BFS distances by
   the time the counter reaches zero (a fixpoint: any improvement
   re-publishes work, so quiescence implies no improvement is possible).
   Violations update an atomic best-(depth, fingerprint) cell with
   min-tie-break; expansions at depth >= best are pruned.  Because every
   state at the minimal violating depth d* has all its ancestors at
   depths < d* <= best, the relaxation chain leading to each minimal
   violation is never pruned, so the cell converges to the minimal
   (depth, fingerprint) violation and the parent chain of that
   fingerprint has exactly best-depth edges — the counterexample replay
   (identical to the sequential explorer's) returns a shortest trace.

   Memory layout (cf. "Reducing State Explosion for Software Model
   Checking with Relaxed Memory Consistency Models"): full states live
   only in the deques.  The seen-set is the tiered store of [lib/store]
   ({!Store.Tiered}): 64 independently-locked open-addressing shards over
   unboxed int bigarrays — 32 bytes/state regardless of state size — and,
   under [mem_budget], Bloom-fronted sorted on-disk segments that shards
   freeze into, keeping membership exact while bounding resident bytes.

   Checkpoint/resume rides on the same segment format.  With
   [checkpoint], worker 0 coordinates a stop-the-world rendezvous every
   [every] states: workers park at batch boundaries (they hold no
   popped-but-unprocessed tasks there, so the deques plus the pending
   counter are the entire frontier), worker 0 snapshots the store, the
   deques as (fingerprint, depth) pairs, the violation cell and the
   counters via {!Store.Checkpoint.write}, then releases the pool.
   Frontier states are not serialized — CIMP systems embed closures — but
   rebuilt at resume by parent-chain replay with a memo cache, exactly
   the mechanism counterexample reconstruction already trusts.

   Determinism: on a non-truncated run with no violation, {states,
   transitions, depth, deadlocks, covered} are equal to the sequential
   explorer's for every [jobs] (every reachable state is inserted exactly
   once, and transitions/deadlocks are counted only on a state's first
   expansion; re-expansions triggered by depth improvement recount
   nothing).  Spilling preserves all of that except that [depth] may
   overstate when a spilled entry is later depth-improved (the stale deep
   copy remains on disk until a merge).  On a violating run the verdict,
   the violated invariant and the counterexample length are deterministic
   across [jobs] (minimal depth, smallest fingerprint as tie-break);
   state counts of violating runs are not comparable because pruning
   races with discovery. *)

type ('a, 'v, 's) outcome = ('a, 'v, 's) Explore.outcome

(* -- scheduler hooks ---------------------------------------------------------

   Observation points on the worker scheduler, injectable from tests to
   pin down termination-detection interleavings (e.g. force a worker to
   sit in its quiescence probe while another publishes work).  The
   default hooks do nothing and cost one call per event. *)

type hooks = {
  on_expand : worker:int -> depth:int -> unit;
  on_idle : worker:int -> unit;
  on_steal : worker:int -> victim:int -> stolen:int -> unit;
  on_probe : worker:int -> pending:int -> unit;
}

let no_hooks =
  {
    on_expand = (fun ~worker:_ ~depth:_ -> ());
    on_idle = (fun ~worker:_ -> ());
    on_steal = (fun ~worker:_ ~victim:_ ~stolen:_ -> ());
    on_probe = (fun ~worker:_ ~pending:_ -> ());
  }

(* -- per-worker deques -------------------------------------------------------

   A growable ring of tasks guarded by a contention-probed mutex; the
   owner pops small batches from the front (FIFO keeps expansion close to
   BFS order, which minimizes depth-improvement re-expansions), thieves
   take half (rounded up) from the front.  A mutex per deque is ample
   here: the owner amortizes it over a batch, and steals are rare
   compared to expansions. *)

module Deque = struct
  type 'task t = {
    lock : Obs.Contention.lock;
    mutable buf : 'task array;
    mutable head : int;
    mutable len : int;
    dummy : 'task;
  }

  let create ~dummy =
    { lock = Obs.Contention.make_lock (); buf = Array.make 64 dummy; head = 0; len = 0; dummy }

  (* racy size read: victim-selection hint only, re-checked under lock *)
  let size d = d.len

  let ensure d extra =
    let cap = Array.length d.buf in
    if d.len + extra > cap then begin
      let cap' = ref (2 * cap) in
      while d.len + extra > !cap' do
        cap' := 2 * !cap'
      done;
      let buf = Array.make !cap' d.dummy in
      for i = 0 to d.len - 1 do
        buf.(i) <- d.buf.((d.head + i) mod cap)
      done;
      d.buf <- buf;
      d.head <- 0
    end

  let push_list d tasks =
    Obs.Contention.lock d.lock;
    ensure d (List.length tasks);
    let cap = Array.length d.buf in
    List.iter
      (fun t ->
        d.buf.((d.head + d.len) mod cap) <- t;
        d.len <- d.len + 1)
      tasks;
    Obs.Contention.unlock d.lock

  (* [m] front tasks in order; caller locks.  Slots are cleared so popped
     states do not outlive their expansion. *)
  let take_front_locked d m =
    let cap = Array.length d.buf in
    let out = ref [] in
    for i = m - 1 downto 0 do
      let j = (d.head + i) mod cap in
      out := d.buf.(j) :: !out;
      d.buf.(j) <- d.dummy
    done;
    d.head <- (d.head + m) mod cap;
    d.len <- d.len - m;
    !out

  let pop_batch d k =
    Obs.Contention.lock d.lock;
    let r = take_front_locked d (min k d.len) in
    Obs.Contention.unlock d.lock;
    r

  let steal d =
    Obs.Contention.lock d.lock;
    let r = take_front_locked d ((d.len + 1) / 2) in
    Obs.Contention.unlock d.lock;
    r

  (* non-destructive snapshot, for checkpoints (the pool is parked) *)
  let to_list d =
    Obs.Contention.lock d.lock;
    let cap = Array.length d.buf in
    let r = List.init d.len (fun i -> d.buf.((d.head + i) mod cap)) in
    Obs.Contention.unlock d.lock;
    r

  let locks ds = Array.map (fun d -> d.lock) ds
end

(* -- the explorer ------------------------------------------------------------ *)

let max_jobs = 64
let pop_batch_size = 8

let run ?(jobs = 1) ?(max_states = 1_000_000) ?(normal_form = true) ?(track_coverage = false)
    ?(obs = Obs.Reporter.null) ?(tracer = Obs.Tracing.null) ?(heartbeat_every = 20_000)
    ?(hooks = no_hooks) ?reducer ?mem_budget ?spill_dir ?checkpoint ?resume ?on_store
    ?(run_config = Obs.Json.Null) ~invariants initial =
  let jobs = max 1 (min jobs max_jobs) in
  if jobs = 1 && mem_budget = None && checkpoint = None && resume = None && on_store = None
  then
    (* the sequential explorer is the jobs=1 semantics, bit for bit; any
       store or checkpoint option selects the pool (with one worker: a
       FIFO deque, so still deterministic BFS order) *)
    Explore.run ~max_states ~normal_form ~track_coverage ~obs ~tracer ~heartbeat_every ?reducer
      ~invariants initial
  else begin
    let t0_ns = Obs.Clock.monotonic_ns () in
    let base_elapsed =
      match resume with Some s -> s.Store.Checkpoint.elapsed_s | None -> 0.
    in
    let norm sys = if normal_form then Cimp.System.normalize sys else sys in
    let fp_of sys = Reducer.fp_of reducer sys in
    let canon sys = Reducer.canon_of reducer sys in
    (* expand canonical representatives everywhere (root included): the
       visited class set is then independent of which worker reaches a
       class first — see Explore for the sequential twin of this rule *)
    let initial = canon (norm initial) in
    let codec = Store.Event_codec.of_system initial in
    let seen =
      match resume with
      | Some snap -> snap.Store.Checkpoint.store
      | None -> Store.Tiered.create ?mem_budget ?spill_dir ()
    in
    let inv_names = Array.of_list (List.map fst invariants) in
    if Array.length inv_names > Store.Tiered.max_violation_index + 1 then
      invalid_arg "Par_explore: too many invariants to pack";
    let inv_index =
      let tbl = Hashtbl.create 16 in
      Array.iteri (fun i name -> if not (Hashtbl.mem tbl name) then Hashtbl.add tbl name i) inv_names;
      fun name -> match Hashtbl.find_opt tbl name with Some i -> i | None -> 0
    in
    (* phase timing per state is only paid when a trace is being recorded;
       per-worker busy/idle accounting (two clock reads per batch, one per
       idle episode) is always on, so the scaling-detail record is
       available to any obs sink *)
    let tr_on = Obs.Tracing.enabled tracer && Obs.Tracing.lanes tracer >= jobs in
    let n_expand = if tr_on then Obs.Tracing.intern tracer "expand" else 0 in
    let n_succ = if tr_on then Obs.Tracing.intern tracer "successor-gen" else 0 in
    let n_fp = if tr_on then Obs.Tracing.intern tracer "normalize+fingerprint" else 0 in
    let n_ins = if tr_on then Obs.Tracing.intern tracer "seen-insert" else 0 in
    let n_inv = if tr_on then Obs.Tracing.intern tracer "invariants" else 0 in
    let n_push = if tr_on then Obs.Tracing.intern tracer "deque-push" else 0 in
    let n_steal = if tr_on then Obs.Tracing.intern tracer "steal" else 0 in
    let n_steal_fail = if tr_on then Obs.Tracing.intern tracer "steal-fail" else 0 in
    let n_probe = if tr_on then Obs.Tracing.intern tracer "termination-probe" else 0 in
    let n_spill = if tr_on then Obs.Tracing.intern tracer "store-spill" else 0 in
    let n_merge = if tr_on then Obs.Tracing.intern tracer "store-merge" else 0 in
    let n_disk = if tr_on then Obs.Tracing.intern tracer "store-disk-probe" else 0 in
    if tr_on then
      for d = 0 to jobs - 1 do
        Obs.Tracing.set_lane tracer ~dom:d (Fmt.str "worker %d" d)
      done;
    (* spill/merge/probe spans happen under a shard lock deep in the
       store, on whichever worker triggered them; a domain-local worker
       id routes them into that worker's single-writer lane *)
    let dls_worker = Domain.DLS.new_key (fun () -> -1) in
    if tr_on then
      Store.Tiered.set_hooks seen
        {
          Store.Tiered.on_spill =
            (fun ~shard:_ ~entries ~bytes ~start_ns ~stop_ns ->
              let w = Domain.DLS.get dls_worker in
              if w >= 0 then
                Obs.Tracing.span_args tracer ~dom:w ~name:n_spill ~start_ns ~stop_ns
                  ~args:[ ("entries", Obs.Json.Int entries); ("bytes", Obs.Json.Int bytes) ]);
          on_merge =
            (fun ~shard:_ ~segments ~entries ~start_ns ~stop_ns ->
              let w = Domain.DLS.get dls_worker in
              if w >= 0 then
                Obs.Tracing.span_args tracer ~dom:w ~name:n_merge ~start_ns ~stop_ns
                  ~args:
                    [ ("segments", Obs.Json.Int segments); ("entries", Obs.Json.Int entries) ]);
          on_disk_probe =
            (fun ~shard:_ ~hit ~start_ns ~stop_ns ->
              let w = Domain.DLS.get dls_worker in
              if w >= 0 then
                Obs.Tracing.span_args tracer ~dom:w ~name:n_disk ~start_ns ~stop_ns
                  ~args:[ ("hit", Obs.Json.Bool hit) ]);
        };
    (* per-shard resident-bytes gauges (tier-0 occupancy x entry size),
       refreshed on every heartbeat; own registry so repeated runs in one
       process do not pile up in the default one *)
    let gauge_registry = Obs.Metrics.create_registry () in
    let shard_gauges =
      if Obs.Reporter.enabled obs then
        Array.init Store.Tiered.n_shards (fun i ->
            Obs.Metrics.gauge ~registry:gauge_registry (Fmt.str "bytes_resident.%02d" i))
      else [||]
    in
    let refresh_gauges () =
      if Array.length shard_gauges > 0 then
        Array.iteri
          (fun i b -> Obs.Metrics.set shard_gauges.(i) (float_of_int b))
          (Store.Tiered.resident_bytes_per_shard seen)
    in
    let busy_ns = Array.make jobs 0 in
    let idle_ns = Array.make jobs 0 in
    let steals = Array.make jobs 0 in
    let steal_fails = Array.make jobs 0 in
    let stolen_tasks = Array.make jobs 0 in
    let term_probes = Array.make jobs 0 in
    let resume_int f = match resume with Some s -> f s | None -> 0 in
    let states = Atomic.make (resume_int (fun s -> s.Store.Checkpoint.states)) in
    let transitions = Atomic.make (resume_int (fun s -> s.Store.Checkpoint.transitions)) in
    let deadlocks = Atomic.make (resume_int (fun s -> s.Store.Checkpoint.deadlocks)) in
    let truncated =
      Atomic.make (match resume with Some s -> s.Store.Checkpoint.truncated | None -> false)
    in
    (* best violation: (depth, fingerprint) with min-tie-break.  The depth
       mirror is atomic so the expansion fast path can prune without
       taking the mutex; fp/inv are only read after the pool joins. *)
    let best_lock = Mutex.create () in
    let best_depth = Atomic.make max_int in
    let best_fp = ref 0 in
    let best_inv = ref (-1) in
    (match resume with
    | Some { Store.Checkpoint.best = Some (d, fp, inv); _ } ->
      Atomic.set best_depth d;
      best_fp := fp;
      best_inv := inv
    | _ -> ());
    let offer ~depth ~fp ~inv =
      if depth <= Atomic.get best_depth then begin
        Mutex.lock best_lock;
        let d0 = Atomic.get best_depth in
        if depth < d0 || (depth = d0 && fp < !best_fp) then begin
          best_fp := fp;
          best_inv := inv;
          Atomic.set best_depth depth
        end;
        Mutex.unlock best_lock
      end
    in
    (* termination detection: [pending] counts published-but-unfinished
       tasks.  It is incremented before tasks become visible in any deque
       and decremented only after a task's expansion (successor
       publication included) completes, so pending = 0 observed by any
       worker means the exploration is quiescent and can never wake up. *)
    let pending = Atomic.make 0 in
    (* worker-indexed so each domain owns its instrumentation arrays *)
    let ivs = Array.init jobs (fun _ -> Inv_stats.make ~obs invariants) in
    let coverage =
      Array.init jobs (fun _ -> Hashtbl.create (if track_coverage then 512 else 1))
    in
    (match resume with
    | Some snap ->
      List.iter (fun pair -> Hashtbl.replace coverage.(0) pair ()) snap.Store.Checkpoint.covered
    | None -> ());
    let record_event w ev =
      if track_coverage then begin
        match ev with
        | Cimp.System.Tau (p, l) -> Hashtbl.replace coverage.(w) (p, l) ()
        | Cimp.System.Rendezvous { requester; req_label; responder; resp_label } ->
          Hashtbl.replace coverage.(w) (requester, req_label) ();
          Hashtbl.replace coverage.(w) (responder, resp_label) ()
      end
    in
    let merged_covered () =
      let merged = Hashtbl.create 512 in
      Array.iter (fun tbl -> Hashtbl.iter (fun k () -> Hashtbl.replace merged k ()) tbl) coverage;
      Explore.sort_coverage (Hashtbl.fold (fun k () acc -> k :: acc) merged [])
    in
    let fp0 = Fingerprint.hash (fp_of initial) in
    let dummy_task = (fp0, initial, 0) in
    let deques = Array.init jobs (fun _ -> Deque.create ~dummy:dummy_task) in
    let publish w tasks =
      ignore (Atomic.fetch_and_add pending (List.length tasks));
      Deque.push_list deques.(w) tasks
    in
    let reconstruct fp broken =
      (* chain of (fingerprint, event) from the root to [fp], replayed
         forward by the shared {!Explore.replay_chain} (same-label
         successors disambiguated by the recorded fingerprint) *)
      let rec back fp acc =
        match Store.Tiered.find seen fp with
        | Some (parent, ev) when parent <> 0 ->
          back parent ((fp, Store.Event_codec.decode codec ev) :: acc)
        | _ -> acc
      in
      let chain = back fp [] in
      let steps =
        Explore.replay_chain
          ~norm:(fun s -> canon (norm s))
          ~matches:(fun s' fp' -> Fingerprint.hash (fp_of s') = fp')
          initial chain
      in
      { Trace.initial; steps; broken }
    in
    (* -- checkpoint rendezvous ---------------------------------------------

       Worker 0 coordinates.  When due, it raises [ckpt_req]; the other
       workers notice at a batch boundary (or inside the idle-steal spin)
       and park in [ckpt_wait] until the snapshot is written.  A parked
       worker holds no popped-but-unprocessed task and no lock, so at
       full rendezvous the deques plus the atomic counters are the whole
       exploration state, and pending equals the sum of deque lengths.
       If the coordinator observes pending = 0 while gathering the pool
       it aborts (workers may already be exiting through quiescence; the
       post-join final snapshot covers that case). *)
    let ckpt = Option.map (fun (dir, every) -> (dir, max 1 every)) checkpoint in
    let ckpt_req = Atomic.make false in
    let ckpt_arrived = Atomic.make 0 in
    let ckpt_gen = Atomic.make 0 in
    let ckpt_seq = ref (match resume with Some s -> s.Store.Checkpoint.seq + 1 | None -> 1) in
    let last_ckpt_states = ref (Atomic.get states) in
    let do_snapshot dir =
      let elapsed_now = base_elapsed +. Obs.Clock.elapsed_s ~since:t0_ns in
      let frontier =
        Array.map (fun d -> List.map (fun (fp, _, dep) -> (fp, dep)) (Deque.to_list d)) deques
      in
      let best =
        if Atomic.get best_depth = max_int then None
        else Some (Atomic.get best_depth, !best_fp, !best_inv)
      in
      Store.Checkpoint.write ~dir ~seq:!ckpt_seq ~config:run_config ~store:seen
        ~states:(Atomic.get states) ~transitions:(Atomic.get transitions)
        ~deadlocks:(Atomic.get deadlocks) ~truncated:(Atomic.get truncated)
        ~elapsed_s:elapsed_now ~best ~frontier ~covered:(merged_covered ());
      if Obs.Reporter.enabled obs then
        Obs.Reporter.emit obs "checkpoint"
          [
            ("checker", Obs.Json.String "par-explore");
            ("seq", Obs.Json.Int !ckpt_seq);
            ("states", Obs.Json.Int (Atomic.get states));
            ("frontier", Obs.Json.Int (Atomic.get pending));
            ("dir", Obs.Json.String dir);
          ];
      incr ckpt_seq;
      last_ckpt_states := Atomic.get states
    in
    let ckpt_wait w =
      if w > 0 && Atomic.get ckpt_req then begin
        let gen = Atomic.get ckpt_gen in
        Atomic.incr ckpt_arrived;
        while Atomic.get ckpt_req && Atomic.get ckpt_gen = gen do
          Domain.cpu_relax ()
        done;
        Atomic.decr ckpt_arrived
      end
    in
    let maybe_checkpoint w =
      match ckpt with
      | None -> ()
      | Some (dir, every) ->
        if w > 0 then ckpt_wait w
        else if Atomic.get states - !last_ckpt_states >= every then begin
          if jobs = 1 then do_snapshot dir
          else begin
            Atomic.set ckpt_req true;
            let parked = ref false in
            let quiescent = ref false in
            while not (!parked || !quiescent) do
              if Atomic.get ckpt_arrived >= jobs - 1 then parked := true
              else if Atomic.get pending = 0 then quiescent := true
              else Domain.cpu_relax ()
            done;
            if !parked then do_snapshot dir;
            Atomic.incr ckpt_gen;
            Atomic.set ckpt_req false;
            while Atomic.get ckpt_arrived > 0 do
              Domain.cpu_relax ()
            done
          end
        end
    in
    (* One worker: expand tasks from the own deque, steal when dry, exit
       at quiescence.  Each worker emits its own heartbeats (tagged with
       its domain index) and writes spans only into its own lane, so the
       single-writer-per-lane tracing discipline holds without any
       coordinator involvement. *)
    let worker w () =
      Domain.DLS.set dls_worker w;
      let iv = ivs.(w) in
      let own = deques.(w) in
      (* per-phase accumulators, flushed as one [expand] span (phase
         children laid back to back inside it) every heartbeat interval
         and when the worker goes idle *)
      let span_start = ref (Obs.Clock.monotonic_ns ()) in
      let span_states = ref 0 in
      let succ_ns = ref 0 and fp_ns = ref 0 and ins_ns = ref 0 in
      let inv_ns = ref 0 and push_ns = ref 0 in
      let expanded = ref 0 in
      let hb_expanded = ref 0 in
      let hb_time = ref !span_start in
      let timed acc f =
        if tr_on then begin
          let t = Obs.Clock.monotonic_ns () in
          let r = f () in
          acc := !acc + (Obs.Clock.monotonic_ns () - t);
          r
        end
        else f ()
      in
      let flush_span () =
        if tr_on && !span_states > 0 then begin
          let stop = Obs.Clock.monotonic_ns () in
          Obs.Tracing.span_args tracer ~dom:w ~name:n_expand ~start_ns:!span_start ~stop_ns:stop
            ~args:[ ("states", Obs.Json.Int !span_states) ];
          let cursor = ref !span_start in
          List.iter
            (fun (name, acc) ->
              if !acc > 0 then begin
                Obs.Tracing.span_between tracer ~dom:w ~name ~start_ns:!cursor
                  ~stop_ns:(!cursor + !acc);
                cursor := !cursor + !acc;
                acc := 0
              end)
            [ (n_succ, succ_ns); (n_fp, fp_ns); (n_ins, ins_ns); (n_inv, inv_ns); (n_push, push_ns) ];
          span_states := 0
        end;
        span_start := Obs.Clock.monotonic_ns ()
      in
      let heartbeat () =
        if !expanded - !hb_expanded >= heartbeat_every then begin
          let now_ns = Obs.Clock.monotonic_ns () in
          if Obs.Reporter.enabled obs then begin
            let interval = float_of_int (now_ns - !hb_time) *. 1e-9 in
            let rate =
              if interval > 0. then float_of_int (!expanded - !hb_expanded) /. interval else 0.
            in
            let gc = Gc.quick_stat () in
            refresh_gauges ();
            let st = Store.Tiered.stats seen in
            Obs.Reporter.emit obs "heartbeat"
              [
                ("checker", Obs.Json.String "par-explore");
                ("domain", Obs.Json.Int w);
                ("frontier", Obs.Json.Int (Atomic.get pending));
                ("states", Obs.Json.Int (Atomic.get states));
                ("max_states", Obs.Json.Int max_states);
                ("transitions", Obs.Json.Int (Atomic.get transitions));
                ("states_per_sec", Obs.Json.Float rate);
                ("heap_words", Obs.Json.Int gc.Gc.heap_words);
                ("bytes_resident", Obs.Json.Int st.Store.Tiered.resident_bytes);
                ("mem_budget", Obs.Json.Int (Store.Tiered.mem_budget seen));
                ("segments", Obs.Json.Int st.Store.Tiered.segments);
                ( "spilled_states",
                  Obs.Json.Int
                    (max 0 (Store.Tiered.count seen - st.Store.Tiered.resident_entries)) );
                ("store", Obs.Metrics.dump ~registry:gauge_registry ());
              ]
          end;
          flush_span ();
          hb_expanded := !expanded;
          hb_time := now_ns
        end
      in
      let process (fp, sys, d_task) =
        (match Store.Tiered.begin_expand seen fp ~depth:d_task with
        | `Stale -> ()
        | (`First d | `Again d) as claim ->
          if (not (Atomic.get truncated)) && d < Atomic.get best_depth then begin
            let first = match claim with `First _ -> true | `Again _ -> false in
            hooks.on_expand ~worker:w ~depth:d;
            let succs = timed succ_ns (fun () -> Reducer.succs_of reducer sys) in
            if succs = [] && first then Atomic.incr deadlocks;
            let out = ref [] in
            List.iter
              (fun (event, sys') ->
                if Atomic.get states < max_states then begin
                  if first then Atomic.incr transitions;
                  record_event w event;
                  let sys', fp' =
                    timed fp_ns (fun () ->
                        let sys' = norm sys' in
                        (sys', Fingerprint.hash (fp_of sys')))
                  in
                  let d' = d + 1 in
                  (* depth > best can neither beat the violation nor lie on
                     a minimal chain (ancestors of minimal violations stay
                     strictly below best); depth = best must still be
                     inserted and checked for the fingerprint tie-break *)
                  if d' <= Atomic.get best_depth then begin
                    let added =
                      timed ins_ns (fun () ->
                          Store.Tiered.add seen fp' ~parent:fp
                            ~event:(Store.Event_codec.encode codec event)
                            ~depth:d')
                    in
                    match added with
                    | Store.Tiered.Fresh ->
                      let n = Atomic.fetch_and_add states 1 + 1 in
                      if n >= max_states then Atomic.set truncated true;
                      (* evaluate and expand the canonical representative
                         of the fresh class (canonicalization is paid
                         once per class, not per generated successor) *)
                      let sys' = canon sys' in
                      (match timed inv_ns (fun () -> iv.Inv_stats.check sys') with
                      | Some name ->
                        let idx = inv_index name in
                        Store.Tiered.mark_violation seen fp' idx;
                        offer ~depth:d' ~fp:fp' ~inv:idx
                      | None -> ());
                      if d' < Atomic.get best_depth then out := (fp', sys', d') :: !out
                    | Store.Tiered.Improved viol ->
                      if viol >= 0 then offer ~depth:d' ~fp:fp' ~inv:viol;
                      if d' < Atomic.get best_depth then out := (fp', canon sys', d') :: !out
                    | Store.Tiered.Stale -> ()
                  end
                end
                else Atomic.set truncated true)
              succs;
            if !out <> [] then timed push_ns (fun () -> publish w (List.rev !out));
            incr expanded;
            incr span_states;
            heartbeat ()
          end);
        Atomic.decr pending
      in
      (* round-robin sweep from w+1; steal half of the first victim that
         yields anything *)
      let try_steal () =
        let rec go k =
          if k >= jobs then None
          else begin
            let v = (w + k) mod jobs in
            if Deque.size deques.(v) = 0 then go (k + 1)
            else
              match Deque.steal deques.(v) with
              | [] -> go (k + 1)
              | ts -> Some (v, ts)
          end
        in
        go 1
      in
      let backoff = ref 0 in
      let rec main () =
        maybe_checkpoint w;
        match Deque.pop_batch own pop_batch_size with
        | [] -> idle ()
        | tasks ->
          let t0 = Obs.Clock.monotonic_ns () in
          List.iter process tasks;
          busy_ns.(w) <- busy_ns.(w) + (Obs.Clock.monotonic_ns () - t0);
          main ()
      and idle () =
        flush_span ();
        hooks.on_idle ~worker:w;
        let ep_start = Obs.Clock.monotonic_ns () in
        let sweeps = ref 0 in
        let rec spin () =
          maybe_checkpoint w;
          let t_sweep = Obs.Clock.monotonic_ns () in
          match try_steal () with
          | Some (v, ts) ->
            let now = Obs.Clock.monotonic_ns () in
            let n = List.length ts in
            steals.(w) <- steals.(w) + 1;
            stolen_tasks.(w) <- stolen_tasks.(w) + n;
            Deque.push_list own ts;
            hooks.on_steal ~worker:w ~victim:v ~stolen:n;
            if tr_on then begin
              if !sweeps > 0 then
                Obs.Tracing.span_between tracer ~dom:w ~name:n_steal_fail ~start_ns:ep_start
                  ~stop_ns:t_sweep;
              Obs.Tracing.span_between tracer ~dom:w ~name:n_steal ~start_ns:t_sweep ~stop_ns:now
            end;
            idle_ns.(w) <- idle_ns.(w) + (now - ep_start);
            backoff := 0;
            span_start := Obs.Clock.monotonic_ns ();
            main ()
          | None ->
            incr sweeps;
            steal_fails.(w) <- steal_fails.(w) + 1;
            term_probes.(w) <- term_probes.(w) + 1;
            let t_probe = Obs.Clock.monotonic_ns () in
            let p = Atomic.get pending in
            hooks.on_probe ~worker:w ~pending:p;
            if p = 0 then begin
              (* quiescent: no published task anywhere, and new tasks are
                 only published by task expansions, so none can appear *)
              let now = Obs.Clock.monotonic_ns () in
              if tr_on then begin
                Obs.Tracing.span_between tracer ~dom:w ~name:n_steal_fail ~start_ns:ep_start
                  ~stop_ns:t_probe;
                Obs.Tracing.span_between tracer ~dom:w ~name:n_probe ~start_ns:t_probe
                  ~stop_ns:now
              end;
              idle_ns.(w) <- idle_ns.(w) + (now - ep_start)
            end
            else begin
              (* exponential-ish backoff: spin first, then sleep so a
                 core-limited host gives the busy domains the CPU *)
              incr backoff;
              if !backoff < 64 then Domain.cpu_relax () else Unix.sleepf 0.0002;
              spin ()
            end
        in
        spin ()
      in
      main ()
    in
    (* root (or restored frontier): published before the pool spawns, so
       no worker can observe pending = 0 before the first task exists *)
    (match resume with
    | None ->
      ignore (Store.Tiered.add seen fp0 ~parent:0 ~event:0 ~depth:0);
      Atomic.set states 1;
      (match ivs.(0).Inv_stats.check initial with
      | Some name ->
        let idx = inv_index name in
        Store.Tiered.mark_violation seen fp0 idx;
        offer ~depth:0 ~fp:fp0 ~inv:idx
      | None -> ());
      publish 0 [ (fp0, initial, 0) ]
    | Some snap ->
      (* frontier states were snapshotted as (fingerprint, depth) only;
         rebuild each by memoized parent-chain replay — the trusted
         counterexample mechanism — and redistribute round-robin *)
      if Store.Tiered.find seen fp0 = None then
        invalid_arg "Par_explore.run: checkpoint does not match this model configuration";
      let cache = Hashtbl.create 4096 in
      Hashtbl.add cache fp0 initial;
      let rec state_of fp =
        match Hashtbl.find_opt cache fp with
        | Some s -> s
        | None -> (
          match Store.Tiered.find seen fp with
          | Some (parent, code) when parent <> 0 -> (
            let psys = state_of parent in
            let ev = Store.Event_codec.decode codec code in
            match
              List.find_map
                (fun (e, s') ->
                  if e = ev then begin
                    let s' = canon (norm s') in
                    if Fingerprint.hash (fp_of s') = fp then Some s' else None
                  end
                  else None)
                (Cimp.System.steps psys)
            with
            | Some s ->
              Hashtbl.add cache fp s;
              s
            | None ->
              invalid_arg
                "Par_explore.run: cannot replay a checkpointed frontier state (model mismatch?)")
          | _ ->
            invalid_arg "Par_explore.run: frontier fingerprint missing from the checkpoint store"
        )
      in
      let i = ref 0 in
      Array.iter
        (fun tasks ->
          List.iter
            (fun (fp, d) ->
              publish (!i mod jobs) [ (fp, state_of fp, d) ];
              incr i)
            tasks)
        snap.Store.Checkpoint.frontier);
    let doms = Array.init (jobs - 1) (fun j -> Domain.spawn (worker (j + 1))) in
    worker 0 ();
    Array.iter Domain.join doms;
    (* a final snapshot (frontier empty) makes resume-after-completion
       report the finished verdict instead of failing *)
    (match ckpt with Some (dir, _) -> do_snapshot dir | None -> ());
    let elapsed = base_elapsed +. Obs.Clock.elapsed_s ~since:t0_ns in
    let violation =
      if Atomic.get best_depth = max_int then None
      else Some (reconstruct !best_fp inv_names.(!best_inv))
    in
    let depth =
      if violation = None then Store.Tiered.max_depth seen else Atomic.get best_depth
    in
    let first_violation = Option.map (fun tr -> tr.Trace.broken) violation in
    Array.iter (fun iv -> iv.Inv_stats.report obs ~first_violation) ivs;
    let states = Atomic.get states in
    let transitions = Atomic.get transitions in
    Reducer.report obs ~checker:"par-explore" reducer ~states ~transitions ~elapsed;
    let deadlocks = Atomic.get deadlocks in
    let truncated = Atomic.get truncated in
    if Obs.Reporter.enabled obs then begin
      let rate = if elapsed > 0. then float_of_int states /. elapsed else 0. in
      Obs.Reporter.emit obs "outcome"
        [
          ("checker", Obs.Json.String "par-explore");
          ("jobs", Obs.Json.Int jobs);
          ("states", Obs.Json.Int states);
          ("transitions", Obs.Json.Int transitions);
          ("depth", Obs.Json.Int depth);
          ("deadlocks", Obs.Json.Int deadlocks);
          ("truncated", Obs.Json.Bool truncated);
          ( "violation",
            match first_violation with
            | None -> Obs.Json.Null
            | Some name -> Obs.Json.String name );
          ("elapsed_s", Obs.Json.Float elapsed);
          ("states_per_sec", Obs.Json.Float rate);
        ];
      Obs.Reporter.emit obs "scaling"
        [
          ("checker", Obs.Json.String "par-explore");
          ("jobs", Obs.Json.Int jobs);
          ("states", Obs.Json.Int states);
          ("elapsed_s", Obs.Json.Float elapsed);
          ("states_per_sec", Obs.Json.Float rate);
        ];
      (* contention attribution + Amdahl decomposition of this run *)
      let lock_stats, shard_wait_s = Obs.Contention.shard_summary (Store.Tiered.locks seen) in
      let _, deque_wait_s = Obs.Contention.shard_summary (Deque.locks deques) in
      let ns_s a = Array.map (fun ns -> float_of_int ns *. 1e-9) a in
      let busy_s = ns_s busy_ns and idle_s = ns_s idle_ns in
      let isum a = Array.fold_left ( + ) 0 a in
      let est = Obs.Contention.estimate ~jobs ~wall_s:elapsed ~busy_per_domain:busy_s in
      let flist a = Obs.Json.List (Array.to_list (Array.map (fun v -> Obs.Json.Float v) a)) in
      let ilist a = Obs.Json.List (Array.to_list (Array.map (fun v -> Obs.Json.Int v) a)) in
      let st = Store.Tiered.stats seen in
      Obs.Reporter.emit obs "scaling-detail"
        ([
           ("checker", Obs.Json.String "par-explore");
           ("states", Obs.Json.Int states);
           ("transitions", Obs.Json.Int transitions);
           ("states_per_sec", Obs.Json.Float rate);
         ]
        @ Obs.Contention.estimate_json est
        @ [
            ("busy_per_domain_s", flist busy_s);
            ("idle_wait_s", Obs.Json.Float (Array.fold_left ( +. ) 0. idle_s));
            ("idle_per_domain_s", flist idle_s);
            ("steals", Obs.Json.Int (isum steals));
            ("steal_fails", Obs.Json.Int (isum steal_fails));
            ("stolen_tasks", Obs.Json.Int (isum stolen_tasks));
            ("termination_probes", Obs.Json.Int (isum term_probes));
            ("lock_acquires", Obs.Json.Int lock_stats.Obs.Contention.acquires);
            ("lock_contended", Obs.Json.Int lock_stats.Obs.Contention.contended);
            ( "lock_wait_s",
              Obs.Json.Float (float_of_int lock_stats.Obs.Contention.wait_ns *. 1e-9) );
            ( "lock_max_wait_s",
              Obs.Json.Float (float_of_int lock_stats.Obs.Contention.max_wait_ns *. 1e-9) );
            ("shard_wait_s", flist shard_wait_s);
            ( "deque_wait_s",
              Obs.Json.Float (Array.fold_left ( +. ) 0. deque_wait_s) );
            (* tiered-store spill attribution *)
            ("mem_budget", Obs.Json.Int (Store.Tiered.mem_budget seen));
            ("bytes_resident", Obs.Json.Int st.Store.Tiered.resident_bytes);
            ( "bytes_resident_per_shard",
              ilist (Store.Tiered.resident_bytes_per_shard seen) );
            ("peak_bytes_resident", Obs.Json.Int st.Store.Tiered.peak_resident_bytes);
            ("spills", Obs.Json.Int st.Store.Tiered.spills);
            ("merges", Obs.Json.Int st.Store.Tiered.merges);
            ("segments", Obs.Json.Int st.Store.Tiered.segments);
            ("spilled_entries", Obs.Json.Int st.Store.Tiered.spilled_entries);
            ( "spilled_states",
              Obs.Json.Int (max 0 (Store.Tiered.count seen - st.Store.Tiered.resident_entries))
            );
            ("disk_bytes", Obs.Json.Int st.Store.Tiered.disk_bytes);
            ("disk_probes", Obs.Json.Int st.Store.Tiered.disk_probes);
            ("disk_hits", Obs.Json.Int st.Store.Tiered.disk_hits);
            ("bloom_checks", Obs.Json.Int st.Store.Tiered.bloom_checks);
            ("bloom_negatives", Obs.Json.Int st.Store.Tiered.bloom_negatives);
            ("segment_mem_bytes", Obs.Json.Int st.Store.Tiered.segment_mem_bytes);
          ])
    end;
    (* certificate writers read the store after the run settles but before
       it goes out of scope (the snapshot above already flushed nothing:
       the store is complete in RAM + segments at this point) *)
    (match on_store with None -> () | Some f -> f seen);
    let covered = merged_covered () in
    {
      Explore.states;
      transitions;
      depth;
      deadlocks;
      truncated;
      violation;
      elapsed;
      covered;
    }
  end
