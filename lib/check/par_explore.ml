(* Parallel exhaustive exploration: asynchronous work-stealing BFS across
   OCaml 5 domains.

   A persistent pool of [jobs] worker domains is spawned once per run.
   Each worker expands states from its own deque (a growable ring guarded
   by a contention-probed mutex), pushes fresh successors locally, and,
   when its deque runs dry, steals half of the first non-empty victim
   deque it finds.  There is no level barrier: termination is detected by
   an atomic active-task counter — the counter is incremented before a
   task is published and decremented only after its expansion (including
   the publication of its successors) completes, so a worker that observes
   zero pending tasks knows the whole exploration is quiescent.

   Correctness without level synchronization rests on depth stamps.
   Every seen-set entry carries the length of the shortest discovered
   path from the root; when a shorter path to a known state is found the
   entry's (depth, parent, event) triple is atomically improved and the
   state is re-enqueued, so stamps relax down to true BFS distances by
   the time the counter reaches zero (a fixpoint: any improvement
   re-publishes work, so quiescence implies no improvement is possible).
   Violations update an atomic best-(depth, fingerprint) cell with
   min-tie-break; expansions at depth >= best are pruned.  Because every
   state at the minimal violating depth d* has all its ancestors at
   depths < d* <= best, the relaxation chain leading to each minimal
   violation is never pruned, so the cell converges to the minimal
   (depth, fingerprint) violation and the parent chain of that
   fingerprint has exactly best-depth edges — the counterexample replay
   (identical to the sequential explorer's) returns a shortest trace.

   Memory layout (cf. "Reducing State Explosion for Software Model
   Checking with Relaxed Memory Consistency Models"): full states live
   only in the deques.  The seen-set is sharded by the low bits of the
   compact structural fingerprint (Fingerprint.hash) into
   independently-locked open-addressing tables over unboxed int
   bigarrays, storing four words per state — fingerprint, parent
   fingerprint, packed event, and a meta word (depth | violated-invariant
   | expanded bit) — so the closed set costs 32 bytes/state regardless of
   state size.

   Determinism: on a non-truncated run with no violation, {states,
   transitions, depth, deadlocks, covered} are equal to the sequential
   explorer's for every [jobs] (every reachable state is inserted exactly
   once, and transitions/deadlocks are counted only on a state's first
   expansion; re-expansions triggered by depth improvement recount
   nothing).  On a violating run the verdict, the violated invariant and
   the counterexample length are deterministic across [jobs] (minimal
   depth, smallest fingerprint as tie-break); state counts of violating
   runs are not comparable because pruning races with discovery. *)

type ('a, 'v, 's) outcome = ('a, 'v, 's) Explore.outcome

(* -- scheduler hooks ---------------------------------------------------------

   Observation points on the worker scheduler, injectable from tests to
   pin down termination-detection interleavings (e.g. force a worker to
   sit in its quiescence probe while another publishes work).  The
   default hooks do nothing and cost one call per event. *)

type hooks = {
  on_expand : worker:int -> depth:int -> unit;
  on_idle : worker:int -> unit;
  on_steal : worker:int -> victim:int -> stolen:int -> unit;
  on_probe : worker:int -> pending:int -> unit;
}

let no_hooks =
  {
    on_expand = (fun ~worker:_ ~depth:_ -> ());
    on_idle = (fun ~worker:_ -> ());
    on_steal = (fun ~worker:_ ~victim:_ ~stolen:_ -> ());
    on_probe = (fun ~worker:_ ~pending:_ -> ());
  }

(* -- packed events ----------------------------------------------------------

   Parent-table entries store the generating event as one native int.
   Labels are interned against the initial system's programs (every label
   a run can fire occurs in the initial frame stacks — the same property
   [Explore.coverage_gaps] relies on).  Layout, from bit 0:
     tau:        label(20) | pid(10)..(bits 20-29)           kind bit 62 = 0
     rendezvous: resp_label(20) | responder(10) | req_label(20, bits 30-49)
                 | requester(10, bits 50-59)                 kind bit 62 = 1 *)

let label_bits = 20
let pid_bits = 10

let intern_labels sys =
  let ids = Hashtbl.create 256 in
  let rev = ref [] in
  let n = ref 0 in
  for p = 0 to Cimp.System.n_procs sys - 1 do
    List.iter
      (fun l ->
        if not (Hashtbl.mem ids l) then begin
          Hashtbl.add ids l !n;
          rev := l :: !rev;
          incr n
        end)
      (List.concat_map Cimp.Com.labels (Cimp.System.proc sys p).Cimp.Com.stack)
  done;
  if !n >= 1 lsl label_bits then invalid_arg "Par_explore: too many labels to pack";
  if Cimp.System.n_procs sys >= 1 lsl pid_bits then
    invalid_arg "Par_explore: too many processes to pack";
  (ids, Array.of_list (List.rev !rev))

let label_id ids l =
  match Hashtbl.find_opt ids l with
  | Some i -> i
  | None -> invalid_arg ("Par_explore: label not in the initial program: " ^ l)

let encode_event ids = function
  | Cimp.System.Tau (p, l) -> (p lsl label_bits) lor label_id ids l
  | Cimp.System.Rendezvous { requester; req_label; responder; resp_label } ->
    (1 lsl 62)
    lor (requester lsl 50)
    lor (label_id ids req_label lsl 30)
    lor (responder lsl label_bits)
    lor label_id ids resp_label

let decode_event labels code =
  let lmask = (1 lsl label_bits) - 1 in
  let pmask = (1 lsl pid_bits) - 1 in
  if (code lsr 62) land 1 = 0 then
    Cimp.System.Tau ((code lsr label_bits) land pmask, labels.(code land lmask))
  else
    Cimp.System.Rendezvous
      {
        requester = (code lsr 50) land pmask;
        req_label = labels.((code lsr 30) land lmask);
        responder = (code lsr label_bits) land pmask;
        resp_label = labels.(code land lmask);
      }

(* -- the sharded seen-set ---------------------------------------------------

   [n_shards] independently-locked open-addressing tables with linear
   probing.  The shard is picked by the fingerprint's low bits, the slot
   by the next bits, so the two indices do not alias.  Keys, parents,
   meta words and packed events are parallel unboxed int arrays; key 0
   marks an empty slot (Fingerprint.hash is never 0).

   The meta word packs, from bit 0: the depth stamp (40 bits, length of
   the shortest discovered root path), the violated-invariant index + 1
   (16 bits, 0 = no violation), and the expanded bit (bit 56, set on the
   entry's first expansion so counts are first-expansion-only).

   Concurrency audit of the growth path (the 70%-load doubling): [add],
   [begin_expand], [mark_violation] and [find] all run their whole
   probe/mutate sequence under the shard's mutex, and [grow] is only
   called from inside [add]'s critical section, so two workers can never
   resize the same shard concurrently and an insert can never land in a
   table that a concurrent resize is about to discard — the classic
   lost-insert race requires a load-factor check outside the lock, which
   this module never does.  The doubling is a [while] loop rather than a
   single [if] so the invariant "post-insert load <= 70%" survives any
   future batched-insert caller.  The multi-domain hammer test
   (test_check: "seen shard resize hammer") drives dozens of concurrent
   resizes on one shard and checks every insert survives. *)

module Seen = struct
  let n_shards = 64
  let shard_bits = 6 (* log2 n_shards *)
  let depth_bits = 40
  let depth_mask = (1 lsl depth_bits) - 1
  let viol_bits = 16
  let viol_shift = depth_bits
  let viol_mask = (1 lsl viol_bits) - 1
  let expanded_bit = 1 lsl (depth_bits + viol_bits)

  (* largest violated-invariant index the meta word can carry *)
  let max_violation_index = viol_mask - 2

  type shard = {
    lock : Obs.Contention.lock;
    mutable keys : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
    mutable parents : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
    mutable meta : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
    mutable events : int array;
    mutable count : int;
  }

  type t = shard array

  type add_result = Fresh | Improved of int | Stale

  let make_arr cap =
    let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout cap in
    Bigarray.Array1.fill a 0;
    a

  let default_shard_cap = 1024 (* initial slots per shard; doubles at 70% load *)

  let create ?(shard_cap = default_shard_cap) () =
    if shard_cap <= 0 || shard_cap land (shard_cap - 1) <> 0 then
      invalid_arg "Par_explore.Seen.create: shard_cap must be a power of two";
    Array.init n_shards (fun _ ->
        {
          lock = Obs.Contention.make_lock ();
          keys = make_arr shard_cap;
          parents = make_arr shard_cap;
          meta = make_arr shard_cap;
          events = Array.make shard_cap 0;
          count = 0;
        })

  let shard (t : t) fp = t.(fp land (n_shards - 1))

  (* Slot of [fp], or of the empty slot where it belongs; caller locks. *)
  let probe keys cap fp =
    let mask = cap - 1 in
    let i = ref ((fp asr shard_bits) land mask) in
    let go = ref true in
    while !go do
      let k = Bigarray.Array1.unsafe_get keys !i in
      if k = 0 || k = fp then go := false else i := (!i + 1) land mask
    done;
    !i

  let grow s =
    let old_cap = Bigarray.Array1.dim s.keys in
    let cap = 2 * old_cap in
    let keys = make_arr cap in
    let parents = make_arr cap in
    let meta = make_arr cap in
    let events = Array.make cap 0 in
    for i = 0 to old_cap - 1 do
      let k = Bigarray.Array1.unsafe_get s.keys i in
      if k <> 0 then begin
        let j = probe keys cap k in
        Bigarray.Array1.unsafe_set keys j k;
        Bigarray.Array1.unsafe_set parents j (Bigarray.Array1.unsafe_get s.parents i);
        Bigarray.Array1.unsafe_set meta j (Bigarray.Array1.unsafe_get s.meta i);
        events.(j) <- s.events.(i)
      end
    done;
    s.keys <- keys;
    s.parents <- parents;
    s.meta <- meta;
    s.events <- events

  (* [add t fp ~parent ~event ~depth] inserts or relaxes: [Fresh] if [fp]
     was absent, [Improved v] if it was present with a larger depth stamp
     (the triple is rewritten; [v] is the entry's violated-invariant
     index, -1 if none, so the caller can re-offer the violation at the
     better depth), [Stale] otherwise.  The expanded bit survives an
     improvement: re-expansion must not recount transitions. *)
  let add (t : t) fp ~parent ~event ~depth =
    let s = shard t fp in
    Obs.Contention.lock s.lock;
    while 10 * (s.count + 1) > 7 * Bigarray.Array1.dim s.keys do
      grow s
    done;
    let cap = Bigarray.Array1.dim s.keys in
    let i = probe s.keys cap fp in
    let r =
      if Bigarray.Array1.unsafe_get s.keys i = 0 then begin
        Bigarray.Array1.unsafe_set s.keys i fp;
        Bigarray.Array1.unsafe_set s.parents i parent;
        Bigarray.Array1.unsafe_set s.meta i depth;
        s.events.(i) <- event;
        s.count <- s.count + 1;
        Fresh
      end
      else begin
        let m = Bigarray.Array1.unsafe_get s.meta i in
        if depth < m land depth_mask then begin
          Bigarray.Array1.unsafe_set s.meta i ((m land lnot depth_mask) lor depth);
          Bigarray.Array1.unsafe_set s.parents i parent;
          s.events.(i) <- event;
          Improved (((m lsr viol_shift) land viol_mask) - 1)
        end
        else Stale
      end
    in
    Obs.Contention.unlock s.lock;
    r

  (* Record that [fp] violates invariant [idx] (kept in the meta word so a
     later depth improvement can re-offer the violation). *)
  let mark_violation (t : t) fp idx =
    let s = shard t fp in
    Obs.Contention.lock s.lock;
    let i = probe s.keys (Bigarray.Array1.dim s.keys) fp in
    if Bigarray.Array1.unsafe_get s.keys i = fp then begin
      let m = Bigarray.Array1.unsafe_get s.meta i in
      Bigarray.Array1.unsafe_set s.meta i
        ((m land lnot (viol_mask lsl viol_shift)) lor ((idx + 1) lsl viol_shift))
    end;
    Obs.Contention.unlock s.lock

  (* A task's claim to expand [fp] at stamp [depth]: [`Stale] when the
     entry has since improved below [depth] (a fresher task for the same
     state is in flight), otherwise the entry's current depth, tagged
     [`First] exactly once per entry so transition/deadlock counts are
     first-expansion-only. *)
  let begin_expand (t : t) fp ~depth =
    let s = shard t fp in
    Obs.Contention.lock s.lock;
    let i = probe s.keys (Bigarray.Array1.dim s.keys) fp in
    let r =
      if Bigarray.Array1.unsafe_get s.keys i <> fp then `Stale
      else begin
        let m = Bigarray.Array1.unsafe_get s.meta i in
        let d = m land depth_mask in
        if d < depth then `Stale
        else if m land expanded_bit = 0 then begin
          Bigarray.Array1.unsafe_set s.meta i (m lor expanded_bit);
          `First d
        end
        else `Again d
      end
    in
    Obs.Contention.unlock s.lock;
    r

  let find (t : t) fp =
    let s = shard t fp in
    Obs.Contention.lock s.lock;
    let i = probe s.keys (Bigarray.Array1.dim s.keys) fp in
    let r =
      if Bigarray.Array1.unsafe_get s.keys i = fp then
        Some (Bigarray.Array1.unsafe_get s.parents i, s.events.(i))
      else None
    in
    Obs.Contention.unlock s.lock;
    r

  let depth_of (t : t) fp =
    let s = shard t fp in
    Obs.Contention.lock s.lock;
    let i = probe s.keys (Bigarray.Array1.dim s.keys) fp in
    let r =
      if Bigarray.Array1.unsafe_get s.keys i = fp then
        Some (Bigarray.Array1.unsafe_get s.meta i land depth_mask)
      else None
    in
    Obs.Contention.unlock s.lock;
    r

  let count (t : t) = Array.fold_left (fun acc s -> acc + s.count) 0 t
  let capacity (t : t) = Array.fold_left (fun acc s -> acc + Bigarray.Array1.dim s.keys) 0 t

  let max_depth (t : t) =
    let best = ref 0 in
    Array.iter
      (fun s ->
        for i = 0 to Bigarray.Array1.dim s.keys - 1 do
          if Bigarray.Array1.unsafe_get s.keys i <> 0 then
            best := max !best (Bigarray.Array1.unsafe_get s.meta i land depth_mask)
        done)
      t;
    !best

  let locks (t : t) = Array.map (fun s -> s.lock) t
end

(* -- per-worker deques -------------------------------------------------------

   A growable ring of tasks guarded by a contention-probed mutex; the
   owner pops small batches from the front (FIFO keeps expansion close to
   BFS order, which minimizes depth-improvement re-expansions), thieves
   take half (rounded up) from the front.  A mutex per deque is ample
   here: the owner amortizes it over a batch, and steals are rare
   compared to expansions. *)

module Deque = struct
  type 'task t = {
    lock : Obs.Contention.lock;
    mutable buf : 'task array;
    mutable head : int;
    mutable len : int;
    dummy : 'task;
  }

  let create ~dummy =
    { lock = Obs.Contention.make_lock (); buf = Array.make 64 dummy; head = 0; len = 0; dummy }

  (* racy size read: victim-selection hint only, re-checked under lock *)
  let size d = d.len

  let ensure d extra =
    let cap = Array.length d.buf in
    if d.len + extra > cap then begin
      let cap' = ref (2 * cap) in
      while d.len + extra > !cap' do
        cap' := 2 * !cap'
      done;
      let buf = Array.make !cap' d.dummy in
      for i = 0 to d.len - 1 do
        buf.(i) <- d.buf.((d.head + i) mod cap)
      done;
      d.buf <- buf;
      d.head <- 0
    end

  let push_list d tasks =
    Obs.Contention.lock d.lock;
    ensure d (List.length tasks);
    let cap = Array.length d.buf in
    List.iter
      (fun t ->
        d.buf.((d.head + d.len) mod cap) <- t;
        d.len <- d.len + 1)
      tasks;
    Obs.Contention.unlock d.lock

  (* [m] front tasks in order; caller locks.  Slots are cleared so popped
     states do not outlive their expansion. *)
  let take_front_locked d m =
    let cap = Array.length d.buf in
    let out = ref [] in
    for i = m - 1 downto 0 do
      let j = (d.head + i) mod cap in
      out := d.buf.(j) :: !out;
      d.buf.(j) <- d.dummy
    done;
    d.head <- (d.head + m) mod cap;
    d.len <- d.len - m;
    !out

  let pop_batch d k =
    Obs.Contention.lock d.lock;
    let r = take_front_locked d (min k d.len) in
    Obs.Contention.unlock d.lock;
    r

  let steal d =
    Obs.Contention.lock d.lock;
    let r = take_front_locked d ((d.len + 1) / 2) in
    Obs.Contention.unlock d.lock;
    r

  let locks ds = Array.map (fun d -> d.lock) ds
end

(* -- the explorer ------------------------------------------------------------ *)

let max_jobs = 64
let pop_batch_size = 8

let run ?(jobs = 1) ?(max_states = 1_000_000) ?(normal_form = true) ?(track_coverage = false)
    ?(obs = Obs.Reporter.null) ?(tracer = Obs.Tracing.null) ?(heartbeat_every = 20_000)
    ?(hooks = no_hooks) ?reducer ~invariants initial =
  let jobs = max 1 (min jobs max_jobs) in
  if jobs = 1 then
    (* the sequential explorer is the jobs=1 semantics, bit for bit *)
    Explore.run ~max_states ~normal_form ~track_coverage ~obs ~tracer ~heartbeat_every ?reducer
      ~invariants initial
  else begin
    let t0_ns = Obs.Clock.monotonic_ns () in
    let norm sys = if normal_form then Cimp.System.normalize sys else sys in
    let fp_of sys = Reducer.fp_of reducer sys in
    let initial = norm initial in
    let label_ids, labels = intern_labels initial in
    let seen = Seen.create () in
    let inv_names = Array.of_list (List.map fst invariants) in
    if Array.length inv_names > Seen.max_violation_index + 1 then
      invalid_arg "Par_explore: too many invariants to pack";
    let inv_index =
      let tbl = Hashtbl.create 16 in
      Array.iteri (fun i name -> if not (Hashtbl.mem tbl name) then Hashtbl.add tbl name i) inv_names;
      fun name -> match Hashtbl.find_opt tbl name with Some i -> i | None -> 0
    in
    (* phase timing per state is only paid when a trace is being recorded;
       per-worker busy/idle accounting (two clock reads per batch, one per
       idle episode) is always on, so the scaling-detail record is
       available to any obs sink *)
    let tr_on = Obs.Tracing.enabled tracer && Obs.Tracing.lanes tracer >= jobs in
    let n_expand = if tr_on then Obs.Tracing.intern tracer "expand" else 0 in
    let n_succ = if tr_on then Obs.Tracing.intern tracer "successor-gen" else 0 in
    let n_fp = if tr_on then Obs.Tracing.intern tracer "normalize+fingerprint" else 0 in
    let n_ins = if tr_on then Obs.Tracing.intern tracer "seen-insert" else 0 in
    let n_inv = if tr_on then Obs.Tracing.intern tracer "invariants" else 0 in
    let n_push = if tr_on then Obs.Tracing.intern tracer "deque-push" else 0 in
    let n_steal = if tr_on then Obs.Tracing.intern tracer "steal" else 0 in
    let n_steal_fail = if tr_on then Obs.Tracing.intern tracer "steal-fail" else 0 in
    let n_probe = if tr_on then Obs.Tracing.intern tracer "termination-probe" else 0 in
    if tr_on then
      for d = 0 to jobs - 1 do
        Obs.Tracing.set_lane tracer ~dom:d (Fmt.str "worker %d" d)
      done;
    let busy_ns = Array.make jobs 0 in
    let idle_ns = Array.make jobs 0 in
    let steals = Array.make jobs 0 in
    let steal_fails = Array.make jobs 0 in
    let stolen_tasks = Array.make jobs 0 in
    let term_probes = Array.make jobs 0 in
    let states = Atomic.make 0 in
    let transitions = Atomic.make 0 in
    let deadlocks = Atomic.make 0 in
    let truncated = Atomic.make false in
    (* best violation: (depth, fingerprint) with min-tie-break.  The depth
       mirror is atomic so the expansion fast path can prune without
       taking the mutex; fp/inv are only read after the pool joins. *)
    let best_lock = Mutex.create () in
    let best_depth = Atomic.make max_int in
    let best_fp = ref 0 in
    let best_inv = ref (-1) in
    let offer ~depth ~fp ~inv =
      if depth <= Atomic.get best_depth then begin
        Mutex.lock best_lock;
        let d0 = Atomic.get best_depth in
        if depth < d0 || (depth = d0 && fp < !best_fp) then begin
          best_fp := fp;
          best_inv := inv;
          Atomic.set best_depth depth
        end;
        Mutex.unlock best_lock
      end
    in
    (* termination detection: [pending] counts published-but-unfinished
       tasks.  It is incremented before tasks become visible in any deque
       and decremented only after a task's expansion (successor
       publication included) completes, so pending = 0 observed by any
       worker means the exploration is quiescent and can never wake up. *)
    let pending = Atomic.make 0 in
    (* worker-indexed so each domain owns its instrumentation arrays *)
    let ivs = Array.init jobs (fun _ -> Inv_stats.make ~obs invariants) in
    let coverage =
      Array.init jobs (fun _ -> Hashtbl.create (if track_coverage then 512 else 1))
    in
    let record_event w ev =
      if track_coverage then begin
        match ev with
        | Cimp.System.Tau (p, l) -> Hashtbl.replace coverage.(w) (p, l) ()
        | Cimp.System.Rendezvous { requester; req_label; responder; resp_label } ->
          Hashtbl.replace coverage.(w) (requester, req_label) ();
          Hashtbl.replace coverage.(w) (responder, resp_label) ()
      end
    in
    let fp0 = Fingerprint.hash (fp_of initial) in
    let dummy_task = (fp0, initial, 0) in
    let deques = Array.init jobs (fun _ -> Deque.create ~dummy:dummy_task) in
    let publish w tasks =
      ignore (Atomic.fetch_and_add pending (List.length tasks));
      Deque.push_list deques.(w) tasks
    in
    let reconstruct fp broken =
      (* chain of (fingerprint, packed event) from the root to [fp] ... *)
      let rec back fp acc =
        match Seen.find seen fp with
        | Some (parent, ev) when parent <> 0 -> back parent ((fp, ev) :: acc)
        | _ -> acc
      in
      let chain = back fp [] in
      (* ... replayed forward, disambiguating same-label successors by the
         recorded fingerprint (as in Explore.run). *)
      let rec replay sys chain acc =
        match chain with
        | [] -> List.rev acc
        | (fp', code) :: rest -> (
          let ev = decode_event labels code in
          let next =
            List.find_map
              (fun (e, s') ->
                if e = ev then
                  let s' = norm s' in
                  if Fingerprint.hash (fp_of s') = fp' then Some s' else None
                else None)
              (Cimp.System.steps sys)
          in
          match next with
          | Some s' -> replay s' rest ({ Trace.event = ev; state = s' } :: acc)
          | None -> List.rev acc (* unreachable: the chain records real transitions *))
      in
      { Trace.initial; steps = replay initial chain []; broken }
    in
    (* One worker: expand tasks from the own deque, steal when dry, exit
       at quiescence.  Each worker emits its own heartbeats (tagged with
       its domain index) and writes spans only into its own lane, so the
       single-writer-per-lane tracing discipline holds without any
       coordinator involvement. *)
    let worker w () =
      let iv = ivs.(w) in
      let own = deques.(w) in
      (* per-phase accumulators, flushed as one [expand] span (phase
         children laid back to back inside it) every heartbeat interval
         and when the worker goes idle *)
      let span_start = ref (Obs.Clock.monotonic_ns ()) in
      let span_states = ref 0 in
      let succ_ns = ref 0 and fp_ns = ref 0 and ins_ns = ref 0 in
      let inv_ns = ref 0 and push_ns = ref 0 in
      let expanded = ref 0 in
      let hb_expanded = ref 0 in
      let hb_time = ref !span_start in
      let timed acc f =
        if tr_on then begin
          let t = Obs.Clock.monotonic_ns () in
          let r = f () in
          acc := !acc + (Obs.Clock.monotonic_ns () - t);
          r
        end
        else f ()
      in
      let flush_span () =
        if tr_on && !span_states > 0 then begin
          let stop = Obs.Clock.monotonic_ns () in
          Obs.Tracing.span_args tracer ~dom:w ~name:n_expand ~start_ns:!span_start ~stop_ns:stop
            ~args:[ ("states", Obs.Json.Int !span_states) ];
          let cursor = ref !span_start in
          List.iter
            (fun (name, acc) ->
              if !acc > 0 then begin
                Obs.Tracing.span_between tracer ~dom:w ~name ~start_ns:!cursor
                  ~stop_ns:(!cursor + !acc);
                cursor := !cursor + !acc;
                acc := 0
              end)
            [ (n_succ, succ_ns); (n_fp, fp_ns); (n_ins, ins_ns); (n_inv, inv_ns); (n_push, push_ns) ];
          span_states := 0
        end;
        span_start := Obs.Clock.monotonic_ns ()
      in
      let heartbeat () =
        if !expanded - !hb_expanded >= heartbeat_every then begin
          let now_ns = Obs.Clock.monotonic_ns () in
          if Obs.Reporter.enabled obs then begin
            let interval = float_of_int (now_ns - !hb_time) *. 1e-9 in
            let rate =
              if interval > 0. then float_of_int (!expanded - !hb_expanded) /. interval else 0.
            in
            let gc = Gc.quick_stat () in
            Obs.Reporter.emit obs "heartbeat"
              [
                ("checker", Obs.Json.String "par-explore");
                ("domain", Obs.Json.Int w);
                ("frontier", Obs.Json.Int (Atomic.get pending));
                ("states", Obs.Json.Int (Atomic.get states));
                ("max_states", Obs.Json.Int max_states);
                ("transitions", Obs.Json.Int (Atomic.get transitions));
                ("states_per_sec", Obs.Json.Float rate);
                ("heap_words", Obs.Json.Int gc.Gc.heap_words);
              ]
          end;
          flush_span ();
          hb_expanded := !expanded;
          hb_time := now_ns
        end
      in
      let process (fp, sys, d_task) =
        (match Seen.begin_expand seen fp ~depth:d_task with
        | `Stale -> ()
        | (`First d | `Again d) as claim ->
          if (not (Atomic.get truncated)) && d < Atomic.get best_depth then begin
            let first = match claim with `First _ -> true | `Again _ -> false in
            hooks.on_expand ~worker:w ~depth:d;
            let succs = timed succ_ns (fun () -> Reducer.succs_of reducer sys) in
            if succs = [] && first then Atomic.incr deadlocks;
            let out = ref [] in
            List.iter
              (fun (event, sys') ->
                if Atomic.get states < max_states then begin
                  if first then Atomic.incr transitions;
                  record_event w event;
                  let sys', fp' =
                    timed fp_ns (fun () ->
                        let sys' = norm sys' in
                        (sys', Fingerprint.hash (fp_of sys')))
                  in
                  let d' = d + 1 in
                  (* depth > best can neither beat the violation nor lie on
                     a minimal chain (ancestors of minimal violations stay
                     strictly below best); depth = best must still be
                     inserted and checked for the fingerprint tie-break *)
                  if d' <= Atomic.get best_depth then begin
                    let added =
                      timed ins_ns (fun () ->
                          Seen.add seen fp' ~parent:fp
                            ~event:(encode_event label_ids event)
                            ~depth:d')
                    in
                    match added with
                    | Seen.Fresh ->
                      let n = Atomic.fetch_and_add states 1 + 1 in
                      if n >= max_states then Atomic.set truncated true;
                      (match timed inv_ns (fun () -> iv.Inv_stats.check sys') with
                      | Some name ->
                        let idx = inv_index name in
                        Seen.mark_violation seen fp' idx;
                        offer ~depth:d' ~fp:fp' ~inv:idx
                      | None -> ());
                      if d' < Atomic.get best_depth then out := (fp', sys', d') :: !out
                    | Seen.Improved viol ->
                      if viol >= 0 then offer ~depth:d' ~fp:fp' ~inv:viol;
                      if d' < Atomic.get best_depth then out := (fp', sys', d') :: !out
                    | Seen.Stale -> ()
                  end
                end
                else Atomic.set truncated true)
              succs;
            if !out <> [] then timed push_ns (fun () -> publish w (List.rev !out));
            incr expanded;
            incr span_states;
            heartbeat ()
          end);
        Atomic.decr pending
      in
      (* round-robin sweep from w+1; steal half of the first victim that
         yields anything *)
      let try_steal () =
        let rec go k =
          if k >= jobs then None
          else begin
            let v = (w + k) mod jobs in
            if Deque.size deques.(v) = 0 then go (k + 1)
            else
              match Deque.steal deques.(v) with
              | [] -> go (k + 1)
              | ts -> Some (v, ts)
          end
        in
        go 1
      in
      let backoff = ref 0 in
      let rec main () =
        match Deque.pop_batch own pop_batch_size with
        | [] -> idle ()
        | tasks ->
          let t0 = Obs.Clock.monotonic_ns () in
          List.iter process tasks;
          busy_ns.(w) <- busy_ns.(w) + (Obs.Clock.monotonic_ns () - t0);
          main ()
      and idle () =
        flush_span ();
        hooks.on_idle ~worker:w;
        let ep_start = Obs.Clock.monotonic_ns () in
        let sweeps = ref 0 in
        let rec spin () =
          let t_sweep = Obs.Clock.monotonic_ns () in
          match try_steal () with
          | Some (v, ts) ->
            let now = Obs.Clock.monotonic_ns () in
            let n = List.length ts in
            steals.(w) <- steals.(w) + 1;
            stolen_tasks.(w) <- stolen_tasks.(w) + n;
            Deque.push_list own ts;
            hooks.on_steal ~worker:w ~victim:v ~stolen:n;
            if tr_on then begin
              if !sweeps > 0 then
                Obs.Tracing.span_between tracer ~dom:w ~name:n_steal_fail ~start_ns:ep_start
                  ~stop_ns:t_sweep;
              Obs.Tracing.span_between tracer ~dom:w ~name:n_steal ~start_ns:t_sweep ~stop_ns:now
            end;
            idle_ns.(w) <- idle_ns.(w) + (now - ep_start);
            backoff := 0;
            span_start := Obs.Clock.monotonic_ns ();
            main ()
          | None ->
            incr sweeps;
            steal_fails.(w) <- steal_fails.(w) + 1;
            term_probes.(w) <- term_probes.(w) + 1;
            let t_probe = Obs.Clock.monotonic_ns () in
            let p = Atomic.get pending in
            hooks.on_probe ~worker:w ~pending:p;
            if p = 0 then begin
              (* quiescent: no published task anywhere, and new tasks are
                 only published by task expansions, so none can appear *)
              let now = Obs.Clock.monotonic_ns () in
              if tr_on then begin
                Obs.Tracing.span_between tracer ~dom:w ~name:n_steal_fail ~start_ns:ep_start
                  ~stop_ns:t_probe;
                Obs.Tracing.span_between tracer ~dom:w ~name:n_probe ~start_ns:t_probe
                  ~stop_ns:now
              end;
              idle_ns.(w) <- idle_ns.(w) + (now - ep_start)
            end
            else begin
              (* exponential-ish backoff: spin first, then sleep so a
                 core-limited host gives the busy domains the CPU *)
              incr backoff;
              if !backoff < 64 then Domain.cpu_relax () else Unix.sleepf 0.0002;
              spin ()
            end
        in
        spin ()
      in
      main ()
    in
    (* root: published before the pool spawns, so no worker can observe
       pending = 0 before the root task exists *)
    ignore (Seen.add seen fp0 ~parent:0 ~event:0 ~depth:0);
    Atomic.set states 1;
    (match ivs.(0).Inv_stats.check initial with
    | Some name ->
      let idx = inv_index name in
      Seen.mark_violation seen fp0 idx;
      offer ~depth:0 ~fp:fp0 ~inv:idx
    | None -> ());
    publish 0 [ (fp0, initial, 0) ];
    let doms = Array.init (jobs - 1) (fun j -> Domain.spawn (worker (j + 1))) in
    worker 0 ();
    Array.iter Domain.join doms;
    let elapsed = Obs.Clock.elapsed_s ~since:t0_ns in
    let violation =
      if Atomic.get best_depth = max_int then None
      else Some (reconstruct !best_fp inv_names.(!best_inv))
    in
    let depth =
      if violation = None then Seen.max_depth seen else Atomic.get best_depth
    in
    let first_violation = Option.map (fun tr -> tr.Trace.broken) violation in
    Array.iter (fun iv -> iv.Inv_stats.report obs ~first_violation) ivs;
    let states = Atomic.get states in
    let transitions = Atomic.get transitions in
    Reducer.report obs ~checker:"par-explore" reducer ~states ~transitions ~elapsed;
    let deadlocks = Atomic.get deadlocks in
    let truncated = Atomic.get truncated in
    if Obs.Reporter.enabled obs then begin
      let rate = if elapsed > 0. then float_of_int states /. elapsed else 0. in
      Obs.Reporter.emit obs "outcome"
        [
          ("checker", Obs.Json.String "par-explore");
          ("jobs", Obs.Json.Int jobs);
          ("states", Obs.Json.Int states);
          ("transitions", Obs.Json.Int transitions);
          ("depth", Obs.Json.Int depth);
          ("deadlocks", Obs.Json.Int deadlocks);
          ("truncated", Obs.Json.Bool truncated);
          ( "violation",
            match first_violation with
            | None -> Obs.Json.Null
            | Some name -> Obs.Json.String name );
          ("elapsed_s", Obs.Json.Float elapsed);
          ("states_per_sec", Obs.Json.Float rate);
        ];
      Obs.Reporter.emit obs "scaling"
        [
          ("checker", Obs.Json.String "par-explore");
          ("jobs", Obs.Json.Int jobs);
          ("states", Obs.Json.Int states);
          ("elapsed_s", Obs.Json.Float elapsed);
          ("states_per_sec", Obs.Json.Float rate);
        ];
      (* contention attribution + Amdahl decomposition of this run *)
      let lock_stats, shard_wait_s = Obs.Contention.shard_summary (Seen.locks seen) in
      let _, deque_wait_s = Obs.Contention.shard_summary (Deque.locks deques) in
      let ns_s a = Array.map (fun ns -> float_of_int ns *. 1e-9) a in
      let busy_s = ns_s busy_ns and idle_s = ns_s idle_ns in
      let isum a = Array.fold_left ( + ) 0 a in
      let est = Obs.Contention.estimate ~jobs ~wall_s:elapsed ~busy_per_domain:busy_s in
      let flist a = Obs.Json.List (Array.to_list (Array.map (fun v -> Obs.Json.Float v) a)) in
      Obs.Reporter.emit obs "scaling-detail"
        ([
           ("checker", Obs.Json.String "par-explore");
           ("states", Obs.Json.Int states);
           ("transitions", Obs.Json.Int transitions);
           ("states_per_sec", Obs.Json.Float rate);
         ]
        @ Obs.Contention.estimate_json est
        @ [
            ("busy_per_domain_s", flist busy_s);
            ("idle_wait_s", Obs.Json.Float (Array.fold_left ( +. ) 0. idle_s));
            ("idle_per_domain_s", flist idle_s);
            ("steals", Obs.Json.Int (isum steals));
            ("steal_fails", Obs.Json.Int (isum steal_fails));
            ("stolen_tasks", Obs.Json.Int (isum stolen_tasks));
            ("termination_probes", Obs.Json.Int (isum term_probes));
            ("lock_acquires", Obs.Json.Int lock_stats.Obs.Contention.acquires);
            ("lock_contended", Obs.Json.Int lock_stats.Obs.Contention.contended);
            ( "lock_wait_s",
              Obs.Json.Float (float_of_int lock_stats.Obs.Contention.wait_ns *. 1e-9) );
            ( "lock_max_wait_s",
              Obs.Json.Float (float_of_int lock_stats.Obs.Contention.max_wait_ns *. 1e-9) );
            ("shard_wait_s", flist shard_wait_s);
            ( "deque_wait_s",
              Obs.Json.Float (Array.fold_left ( +. ) 0. deque_wait_s) );
          ])
    end;
    let covered =
      let merged = Hashtbl.create 512 in
      Array.iter (fun tbl -> Hashtbl.iter (fun k () -> Hashtbl.replace merged k ()) tbl) coverage;
      Explore.sort_coverage (Hashtbl.fold (fun k () acc -> k :: acc) merged [])
    in
    {
      Explore.states;
      transitions;
      depth;
      deadlocks;
      truncated;
      violation;
      elapsed;
      covered;
    }
  end
