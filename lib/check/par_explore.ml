(* Parallel exhaustive exploration: level-synchronized BFS across OCaml 5
   domains.

   The state space is explored one BFS level at a time; a level's frontier
   is split into contiguous slices, one worker domain per slice, and the
   workers meet at a barrier (Domain.join) before the next level starts.
   Level synchronization preserves the shortest-counterexample semantics
   of the sequential explorer: a violation discovered at level d+1 cannot
   be preempted by a shorter one, because every state of depth <= d was
   inserted at an earlier level.

   Memory layout is the point of the exercise (cf. "Reducing State
   Explosion for Software Model Checking with Relaxed Memory Consistency
   Models"): full states live only in the current and next frontier.  The
   seen-set is sharded by the low bits of the compact structural
   fingerprint (Fingerprint.hash) into independently-locked
   open-addressing tables over unboxed int bigarrays, storing three words
   per state — fingerprint, parent fingerprint, packed event — so the
   closed set costs 24 bytes/state regardless of state size.
   Counterexamples are rebuilt by bounded replay of the recorded event
   chain, exactly as in the sequential explorer.

   Determinism: on a run with no violation, {states, transitions, depth,
   deadlocks, covered} are equal to the sequential explorer's for every
   [jobs] (the BFS level sets are scheduling-independent; only which
   parent a state records is racy, which affects neither counts nor
   verdicts).  On a violating run all equal-depth (shortest) violations
   are collected at the level barrier and the one with the smallest
   fingerprint is reported, so the verdict and trace length are
   deterministic; the sequential explorer additionally stops mid-level,
   so state counts of violating runs are not comparable across [jobs]. *)

type ('a, 'v, 's) outcome = ('a, 'v, 's) Explore.outcome

(* -- packed events ----------------------------------------------------------

   Parent-table entries store the generating event as one native int.
   Labels are interned against the initial system's programs (every label
   a run can fire occurs in the initial frame stacks — the same property
   [Explore.coverage_gaps] relies on).  Layout, from bit 0:
     tau:        label(20) | pid(10)..(bits 20-29)           kind bit 62 = 0
     rendezvous: resp_label(20) | responder(10) | req_label(20, bits 30-49)
                 | requester(10, bits 50-59)                 kind bit 62 = 1 *)

let label_bits = 20
let pid_bits = 10

let intern_labels sys =
  let ids = Hashtbl.create 256 in
  let rev = ref [] in
  let n = ref 0 in
  for p = 0 to Cimp.System.n_procs sys - 1 do
    List.iter
      (fun l ->
        if not (Hashtbl.mem ids l) then begin
          Hashtbl.add ids l !n;
          rev := l :: !rev;
          incr n
        end)
      (List.concat_map Cimp.Com.labels (Cimp.System.proc sys p).Cimp.Com.stack)
  done;
  if !n >= 1 lsl label_bits then invalid_arg "Par_explore: too many labels to pack";
  if Cimp.System.n_procs sys >= 1 lsl pid_bits then
    invalid_arg "Par_explore: too many processes to pack";
  (ids, Array.of_list (List.rev !rev))

let label_id ids l =
  match Hashtbl.find_opt ids l with
  | Some i -> i
  | None -> invalid_arg ("Par_explore: label not in the initial program: " ^ l)

let encode_event ids = function
  | Cimp.System.Tau (p, l) -> (p lsl label_bits) lor label_id ids l
  | Cimp.System.Rendezvous { requester; req_label; responder; resp_label } ->
    (1 lsl 62)
    lor (requester lsl 50)
    lor (label_id ids req_label lsl 30)
    lor (responder lsl label_bits)
    lor label_id ids resp_label

let decode_event labels code =
  let lmask = (1 lsl label_bits) - 1 in
  let pmask = (1 lsl pid_bits) - 1 in
  if (code lsr 62) land 1 = 0 then
    Cimp.System.Tau ((code lsr label_bits) land pmask, labels.(code land lmask))
  else
    Cimp.System.Rendezvous
      {
        requester = (code lsr 50) land pmask;
        req_label = labels.((code lsr 30) land lmask);
        responder = (code lsr label_bits) land pmask;
        resp_label = labels.(code land lmask);
      }

(* -- the sharded seen-set ---------------------------------------------------

   [n_shards] independently-locked open-addressing tables with linear
   probing.  The shard is picked by the fingerprint's low bits, the slot
   by the next bits, so the two indices do not alias.  Keys, parents and
   packed events are parallel unboxed int arrays; key 0 marks an empty
   slot (Fingerprint.hash is never 0). *)

module Seen = struct
  let n_shards = 64
  let shard_bits = 6 (* log2 n_shards *)

  (* Shard mutexes are contention-probed (Obs.Contention): uncontended
     acquires stay a single try_lock, contended ones record their wait so
     the end-of-run scaling-detail record can attribute lock time per
     shard. *)
  type shard = {
    lock : Obs.Contention.lock;
    mutable keys : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
    mutable parents : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
    mutable events : int array;
    mutable count : int;
  }

  type t = shard array

  let make_arr cap =
    let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout cap in
    Bigarray.Array1.fill a 0;
    a

  let shard_cap = 1024 (* initial slots per shard; doubles at 70% load *)

  let create () =
    Array.init n_shards (fun _ ->
        {
          lock = Obs.Contention.make_lock ();
          keys = make_arr shard_cap;
          parents = make_arr shard_cap;
          events = Array.make shard_cap 0;
          count = 0;
        })

  let shard (t : t) fp = t.(fp land (n_shards - 1))

  (* Slot of [fp], or of the empty slot where it belongs; caller locks. *)
  let probe keys cap fp =
    let mask = cap - 1 in
    let i = ref ((fp asr shard_bits) land mask) in
    let go = ref true in
    while !go do
      let k = Bigarray.Array1.unsafe_get keys !i in
      if k = 0 || k = fp then go := false else i := (!i + 1) land mask
    done;
    !i

  let grow s =
    let old_cap = Bigarray.Array1.dim s.keys in
    let cap = 2 * old_cap in
    let keys = make_arr cap in
    let parents = make_arr cap in
    let events = Array.make cap 0 in
    for i = 0 to old_cap - 1 do
      let k = Bigarray.Array1.unsafe_get s.keys i in
      if k <> 0 then begin
        let j = probe keys cap k in
        Bigarray.Array1.unsafe_set keys j k;
        Bigarray.Array1.unsafe_set parents j (Bigarray.Array1.unsafe_get s.parents i);
        events.(j) <- s.events.(i)
      end
    done;
    s.keys <- keys;
    s.parents <- parents;
    s.events <- events

  (* [add t fp ~parent ~event] returns true iff [fp] was not present,
     recording (parent, event) for replay when it is fresh. *)
  let add (t : t) fp ~parent ~event =
    let s = shard t fp in
    Obs.Contention.lock s.lock;
    let cap = Bigarray.Array1.dim s.keys in
    if 10 * (s.count + 1) > 7 * cap then grow s;
    let cap = Bigarray.Array1.dim s.keys in
    let i = probe s.keys cap fp in
    let fresh = Bigarray.Array1.unsafe_get s.keys i = 0 in
    if fresh then begin
      Bigarray.Array1.unsafe_set s.keys i fp;
      Bigarray.Array1.unsafe_set s.parents i parent;
      s.events.(i) <- event;
      s.count <- s.count + 1
    end;
    Obs.Contention.unlock s.lock;
    fresh

  let find (t : t) fp =
    let s = shard t fp in
    Obs.Contention.lock s.lock;
    let i = probe s.keys (Bigarray.Array1.dim s.keys) fp in
    let r =
      if Bigarray.Array1.unsafe_get s.keys i = fp then
        Some (Bigarray.Array1.unsafe_get s.parents i, s.events.(i))
      else None
    in
    Obs.Contention.unlock s.lock;
    r

  let locks (t : t) = Array.map (fun s -> s.lock) t
end

(* -- the explorer ------------------------------------------------------------ *)

let max_jobs = 64

let run ?(jobs = 1) ?(max_states = 1_000_000) ?(normal_form = true) ?(track_coverage = false)
    ?(obs = Obs.Reporter.null) ?(tracer = Obs.Tracing.null) ?(heartbeat_every = 20_000) ?reducer
    ~invariants initial =
  let jobs = max 1 (min jobs max_jobs) in
  if jobs = 1 then
    (* the sequential explorer is the jobs=1 semantics, bit for bit *)
    Explore.run ~max_states ~normal_form ~track_coverage ~obs ~tracer ~heartbeat_every ?reducer
      ~invariants initial
  else begin
    let t0_ns = Obs.Clock.monotonic_ns () in
    let norm sys = if normal_form then Cimp.System.normalize sys else sys in
    let fp_of sys = Reducer.fp_of reducer sys in
    let initial = norm initial in
    let label_ids, labels = intern_labels initial in
    let seen = Seen.create () in
    (* phase timing per state is only paid when a trace is being recorded;
       per-level accounting (two clock reads per slice) is always on, so
       the scaling-detail record is available to any obs sink *)
    let tr_on = Obs.Tracing.enabled tracer && Obs.Tracing.lanes tracer >= jobs in
    let n_level = if tr_on then Obs.Tracing.intern tracer "level" else 0 in
    let n_slice = if tr_on then Obs.Tracing.intern tracer "slice" else 0 in
    let n_succ = if tr_on then Obs.Tracing.intern tracer "successor-gen" else 0 in
    let n_fp = if tr_on then Obs.Tracing.intern tracer "normalize+fingerprint" else 0 in
    let n_ins = if tr_on then Obs.Tracing.intern tracer "seen-insert" else 0 in
    let n_inv = if tr_on then Obs.Tracing.intern tracer "invariants" else 0 in
    let n_barrier = if tr_on then Obs.Tracing.intern tracer "barrier-wait" else 0 in
    if tr_on then
      for d = 0 to jobs - 1 do
        Obs.Tracing.set_lane tracer ~dom:d (Fmt.str "worker %d" d)
      done;
    let busy_ns = Array.make jobs 0 in
    let barrier_ns = Array.make jobs 0 in
    let states = Atomic.make 0 in
    let transitions = Atomic.make 0 in
    let deadlocks = Atomic.make 0 in
    let truncated = Atomic.make false in
    let depth = ref 0 in
    let violation = ref None in
    (* worker-indexed so each domain owns its instrumentation arrays *)
    let ivs = Array.init jobs (fun _ -> Inv_stats.make ~obs invariants) in
    let coverage =
      Array.init jobs (fun _ -> Hashtbl.create (if track_coverage then 512 else 1))
    in
    let record_event w ev =
      if track_coverage then begin
        match ev with
        | Cimp.System.Tau (p, l) -> Hashtbl.replace coverage.(w) (p, l) ()
        | Cimp.System.Rendezvous { requester; req_label; responder; resp_label } ->
          Hashtbl.replace coverage.(w) (requester, req_label) ();
          Hashtbl.replace coverage.(w) (responder, resp_label) ()
      end
    in
    let reconstruct fp broken =
      (* chain of (fingerprint, packed event) from the root to [fp] ... *)
      let rec back fp acc =
        match Seen.find seen fp with
        | Some (parent, ev) when parent <> 0 -> back parent ((fp, ev) :: acc)
        | _ -> acc
      in
      let chain = back fp [] in
      (* ... replayed forward, disambiguating same-label successors by the
         recorded fingerprint (as in Explore.run). *)
      let rec replay sys chain acc =
        match chain with
        | [] -> List.rev acc
        | (fp', code) :: rest -> (
          let ev = decode_event labels code in
          let next =
            List.find_map
              (fun (e, s') ->
                if e = ev then
                  let s' = norm s' in
                  if Fingerprint.hash (fp_of s') = fp' then Some s' else None
                else None)
              (Cimp.System.steps sys)
          in
          match next with
          | Some s' -> replay s' rest ({ Trace.event = ev; state = s' } :: acc)
          | None -> List.rev acc (* unreachable: the chain records real transitions *))
      in
      { Trace.initial; steps = replay initial chain []; broken }
    in
    (* One worker's share of a level: expand frontier[lo..hi), insert fresh
       successors into the shared seen-set, return them (with the level's
       invariant violations) for the next frontier.  Each worker emits its
       own heartbeats, tagged with its domain index, and returns its busy
       interval plus (when tracing) per-phase time so the coordinator can
       write this level's spans into the worker's lane after the join. *)
    let process_slice w (frontier : (int * _) array) lo hi level =
      let iv = ivs.(w) in
      let next = ref [] in
      let viols = ref [] in
      let expanded = ref 0 in
      let hb_expanded = ref 0 in
      let slice_start = Obs.Clock.monotonic_ns () in
      let hb_time = ref slice_start in
      let succ_ns = ref 0 and fp_ns = ref 0 and ins_ns = ref 0 and inv_ns = ref 0 in
      for i = lo to hi - 1 do
        let fp, sys = frontier.(i) in
        let succs =
          if tr_on then begin
            let t = Obs.Clock.monotonic_ns () in
            let r = Reducer.succs_of reducer sys in
            succ_ns := !succ_ns + (Obs.Clock.monotonic_ns () - t);
            r
          end
          else Reducer.succs_of reducer sys
        in
        if succs = [] then Atomic.incr deadlocks;
        List.iter
          (fun (event, sys') ->
            if Atomic.get states < max_states then begin
              Atomic.incr transitions;
              record_event w event;
              let sys', fp' =
                if tr_on then begin
                  let t = Obs.Clock.monotonic_ns () in
                  let sys' = norm sys' in
                  let fp' = Fingerprint.hash (fp_of sys') in
                  fp_ns := !fp_ns + (Obs.Clock.monotonic_ns () - t);
                  (sys', fp')
                end
                else
                  let sys' = norm sys' in
                  (sys', Fingerprint.hash (fp_of sys'))
              in
              let fresh =
                if tr_on then begin
                  let t = Obs.Clock.monotonic_ns () in
                  let r = Seen.add seen fp' ~parent:fp ~event:(encode_event label_ids event) in
                  ins_ns := !ins_ns + (Obs.Clock.monotonic_ns () - t);
                  r
                end
                else Seen.add seen fp' ~parent:fp ~event:(encode_event label_ids event)
              in
              if fresh then begin
                let n = Atomic.fetch_and_add states 1 + 1 in
                if n >= max_states then Atomic.set truncated true;
                next := (fp', sys') :: !next;
                let verdict =
                  if tr_on then begin
                    let t = Obs.Clock.monotonic_ns () in
                    let r = iv.Inv_stats.check sys' in
                    inv_ns := !inv_ns + (Obs.Clock.monotonic_ns () - t);
                    r
                  end
                  else iv.Inv_stats.check sys'
                in
                match verdict with
                | Some name -> viols := (fp', name) :: !viols
                | None -> ()
              end
            end
            else Atomic.set truncated true)
          succs;
        incr expanded;
        if Obs.Reporter.enabled obs && !expanded - !hb_expanded >= heartbeat_every then begin
          let now_ns = Obs.Clock.monotonic_ns () in
          let interval = float_of_int (now_ns - !hb_time) *. 1e-9 in
          let rate =
            if interval > 0. then float_of_int (!expanded - !hb_expanded) /. interval else 0.
          in
          let gc = Gc.quick_stat () in
          Obs.Reporter.emit obs "heartbeat"
            [
              ("checker", Obs.Json.String "par-explore");
              ("domain", Obs.Json.Int w);
              ("level", Obs.Json.Int level);
              ("frontier", Obs.Json.Int (Array.length frontier));
              ("states", Obs.Json.Int (Atomic.get states));
              ("max_states", Obs.Json.Int max_states);
              ("transitions", Obs.Json.Int (Atomic.get transitions));
              ("states_per_sec", Obs.Json.Float rate);
              ("heap_words", Obs.Json.Int gc.Gc.heap_words);
            ];
          hb_expanded := !expanded;
          hb_time := now_ns
        end
      done;
      let slice_stop = Obs.Clock.monotonic_ns () in
      (!next, !viols, (slice_start, slice_stop, !succ_ns, !fp_ns, !ins_ns, !inv_ns))
    in
    (* root *)
    let fp0 = Fingerprint.hash (fp_of initial) in
    ignore (Seen.add seen fp0 ~parent:0 ~event:0);
    Atomic.set states 1;
    (match ivs.(0).Inv_stats.check initial with
    | Some name -> violation := Some { Trace.initial; steps = []; broken = name }
    | None -> ());
    (* level loop; [d] is the depth of the frontier being expanded *)
    let rec loop frontier d =
      if Array.length frontier > 0 && !violation = None && not (Atomic.get truncated) then begin
        let len = Array.length frontier in
        let level_start = Obs.Clock.monotonic_ns () in
        (* tiny levels are not worth a fork-join round trip *)
        let k = if len < 4 * jobs then 1 else jobs in
        let results =
          if k = 1 then [ process_slice 0 frontier 0 len d ]
          else begin
            let chunk = (len + k - 1) / k in
            let bounds w = (w * chunk, min len ((w + 1) * chunk)) in
            let doms =
              Array.init (k - 1) (fun j ->
                  let lo, hi = bounds (j + 1) in
                  Domain.spawn (fun () -> process_slice (j + 1) frontier lo hi d))
            in
            let r0 =
              let lo, hi = bounds 0 in
              process_slice 0 frontier lo hi d
            in
            r0 :: Array.to_list (Array.map Domain.join doms)
          end
        in
        (* all workers are joined: the coordinator owns every lane again,
           so it can account the level and write this level's spans —
           including each worker's barrier wait, which only the join knows *)
        let barrier_end = Obs.Clock.monotonic_ns () in
        List.iteri
          (fun w (_, _, (s0, s1, succ, fpn, insn, invn)) ->
            busy_ns.(w) <- busy_ns.(w) + (s1 - s0);
            barrier_ns.(w) <- barrier_ns.(w) + max 0 (barrier_end - s1);
            if tr_on then begin
              Obs.Tracing.span_args tracer ~dom:w ~name:n_slice ~start_ns:s0 ~stop_ns:s1
                ~args:[ ("level", Obs.Json.Int d) ];
              (* phase totals, laid out back to back inside the slice span
                 so viewers show them as its children *)
              let cursor = ref s0 in
              List.iter
                (fun (name, acc) ->
                  if acc > 0 then begin
                    Obs.Tracing.span_between tracer ~dom:w ~name ~start_ns:!cursor
                      ~stop_ns:(!cursor + acc);
                    cursor := !cursor + acc
                  end)
                [ (n_succ, succ); (n_fp, fpn); (n_ins, insn); (n_inv, invn) ];
              if barrier_end > s1 then
                Obs.Tracing.span_between tracer ~dom:w ~name:n_barrier ~start_ns:s1
                  ~stop_ns:barrier_end
            end)
          results;
        let next = List.concat_map (fun (n, _, _) -> n) results in
        if tr_on then
          Obs.Tracing.span_args tracer ~dom:0 ~name:n_level ~start_ns:level_start
            ~stop_ns:barrier_end
            ~args:
              [
                ("level", Obs.Json.Int d);
                ("frontier", Obs.Json.Int len);
                ("workers", Obs.Json.Int k);
              ];
        if Obs.Reporter.enabled obs then begin
          let wall_ns = max 1 (barrier_end - level_start) in
          Obs.Reporter.emit obs "level"
            [
              ("checker", Obs.Json.String "par-explore");
              ("level", Obs.Json.Int d);
              ("expanded", Obs.Json.Int len);
              ("frontier", Obs.Json.Int (List.length next));
              ("states", Obs.Json.Int (Atomic.get states));
              ("max_states", Obs.Json.Int max_states);
              ("workers", Obs.Json.Int k);
              ("wall_s", Obs.Json.Float (float_of_int wall_ns *. 1e-9));
              ( "busy_frac",
                Obs.Json.List
                  (List.map
                     (fun (_, _, (s0, s1, _, _, _, _)) ->
                       Obs.Json.Float (float_of_int (s1 - s0) /. float_of_int wall_ns))
                     results) );
            ]
        end;
        if next <> [] then depth := d + 1;
        (match List.concat_map (fun (_, v, _) -> v) results with
        | [] -> ()
        | v :: vs ->
          (* all shortest violations are on this level; report the one
             with the smallest fingerprint, which is deterministic *)
          let fp, name =
            List.fold_left (fun (bf, bn) (f, n) -> if f < bf then (f, n) else (bf, bn)) v vs
          in
          violation := Some (reconstruct fp name));
        if !violation = None then loop (Array.of_list next) (d + 1)
      end
    in
    loop [| (fp0, initial) |] 0;
    let elapsed = Obs.Clock.elapsed_s ~since:t0_ns in
    let first_violation = Option.map (fun tr -> tr.Trace.broken) !violation in
    Array.iter (fun iv -> iv.Inv_stats.report obs ~first_violation) ivs;
    let states = Atomic.get states in
    let transitions = Atomic.get transitions in
    Reducer.report obs ~checker:"par-explore" reducer ~states ~transitions ~elapsed;
    let deadlocks = Atomic.get deadlocks in
    let truncated = Atomic.get truncated in
    if Obs.Reporter.enabled obs then begin
      let rate = if elapsed > 0. then float_of_int states /. elapsed else 0. in
      Obs.Reporter.emit obs "outcome"
        [
          ("checker", Obs.Json.String "par-explore");
          ("jobs", Obs.Json.Int jobs);
          ("states", Obs.Json.Int states);
          ("transitions", Obs.Json.Int transitions);
          ("depth", Obs.Json.Int !depth);
          ("deadlocks", Obs.Json.Int deadlocks);
          ("truncated", Obs.Json.Bool truncated);
          ( "violation",
            match first_violation with
            | None -> Obs.Json.Null
            | Some name -> Obs.Json.String name );
          ("elapsed_s", Obs.Json.Float elapsed);
          ("states_per_sec", Obs.Json.Float rate);
        ];
      Obs.Reporter.emit obs "scaling"
        [
          ("checker", Obs.Json.String "par-explore");
          ("jobs", Obs.Json.Int jobs);
          ("states", Obs.Json.Int states);
          ("elapsed_s", Obs.Json.Float elapsed);
          ("states_per_sec", Obs.Json.Float rate);
        ];
      (* contention attribution + Amdahl decomposition of this run *)
      let lock_stats, shard_wait_s = Obs.Contention.shard_summary (Seen.locks seen) in
      let ns_s a = Array.map (fun ns -> float_of_int ns *. 1e-9) a in
      let busy_s = ns_s busy_ns and barrier_s = ns_s barrier_ns in
      let est = Obs.Contention.estimate ~jobs ~wall_s:elapsed ~busy_per_domain:busy_s in
      let flist a = Obs.Json.List (Array.to_list (Array.map (fun v -> Obs.Json.Float v) a)) in
      Obs.Reporter.emit obs "scaling-detail"
        ([
           ("checker", Obs.Json.String "par-explore");
           ("states", Obs.Json.Int states);
           ("transitions", Obs.Json.Int transitions);
           ("states_per_sec", Obs.Json.Float rate);
         ]
        @ Obs.Contention.estimate_json est
        @ [
            ("busy_per_domain_s", flist busy_s);
            ("barrier_wait_s", Obs.Json.Float (Array.fold_left ( +. ) 0. barrier_s));
            ("barrier_per_domain_s", flist barrier_s);
            ("lock_acquires", Obs.Json.Int lock_stats.Obs.Contention.acquires);
            ("lock_contended", Obs.Json.Int lock_stats.Obs.Contention.contended);
            ( "lock_wait_s",
              Obs.Json.Float (float_of_int lock_stats.Obs.Contention.wait_ns *. 1e-9) );
            ( "lock_max_wait_s",
              Obs.Json.Float (float_of_int lock_stats.Obs.Contention.max_wait_ns *. 1e-9) );
            ("shard_wait_s", flist shard_wait_s);
          ])
    end;
    let covered =
      let merged = Hashtbl.create 512 in
      Array.iter (fun tbl -> Hashtbl.iter (fun k () -> Hashtbl.replace merged k ()) tbl) coverage;
      Explore.sort_coverage (Hashtbl.fold (fun k () acc -> k :: acc) merged [])
    in
    {
      Explore.states;
      transitions;
      depth = !depth;
      deadlocks;
      truncated;
      violation = !violation;
      elapsed;
      covered;
    }
  end
