(* Canonical fingerprints of global CIMP states.

   Control state is identified by each process's label spine (commands
   themselves carry closures and cannot be compared); data states must be
   canonical plain OCaml data — everything in the GC model is ints, bools,
   lists, options and flat variants — so structural comparison is sound.
   The pair is the key for the explorer's seen-set.

   Hashing is a compact structural fingerprint: an FNV-1a-style mix over
   the label spine and a traversal of the data representation, computed
   once at [of_system] and cached.  It replaces the former
   [Hashtbl.hash_param 64 256] polymorphic hash, which (a) re-walked the
   whole value on every probe, (b) truncated deep states at its
   meaningful-node budget, and (c) folded to 30 bits.  The structural mix
   fills a native word (63 bits on 64-bit platforms, presented as a
   non-zero int64), so it can key the parallel explorer's sharded
   seen-set directly, with collision probability ~ n^2 / 2^63. *)

type t = {
  fp : int;  (* compact structural fingerprint; never 0 *)
  control : Cimp.Label.t list list;
  data : Stdlib.Obj.t list;
}

(* -- the structural mix ----------------------------------------------------- *)

(* FNV-1a over native ints: xor then multiply by the 64-bit FNV prime,
   wrapping mod 2^63.  Unboxed throughout — no Int64 in the hot path. *)
let fnv_prime = 0x100000001b3
let mix h x = (h lxor x) * fnv_prime

let mix_string h s =
  let h = ref (mix h (String.length s)) in
  String.iter (fun c -> h := mix !h (Char.code c)) s;
  !h

(* Structural walk of a data payload.  Only the representations canonical
   data can have: immediates, scannable blocks, strings, boxed floats.
   Functional and abstract values violate the module contract (they would
   also break the explorer's structural [equal]), so fail loudly. *)
let rec mix_obj h (o : Stdlib.Obj.t) =
  if Stdlib.Obj.is_int o then mix (mix h 3) (Stdlib.Obj.obj o : int)
  else begin
    let tag = Stdlib.Obj.tag o in
    if tag = Stdlib.Obj.closure_tag || tag = Stdlib.Obj.infix_tag
       || tag = Stdlib.Obj.object_tag || tag = Stdlib.Obj.lazy_tag
       || tag = Stdlib.Obj.forward_tag
    then invalid_arg "Fingerprint: non-canonical value in a data state"
    else if tag < Stdlib.Obj.no_scan_tag then begin
      let n = Stdlib.Obj.size o in
      let acc = ref (mix (mix (mix h 5) tag) n) in
      for i = 0 to n - 1 do
        acc := mix_obj !acc (Stdlib.Obj.field o i)
      done;
      !acc
    end
    else if tag = Stdlib.Obj.string_tag then mix_string (mix h 7) (Stdlib.Obj.obj o : string)
    else if tag = Stdlib.Obj.double_tag then
      mix (mix h 9) (Int64.to_int (Int64.bits_of_float (Stdlib.Obj.obj o : float)))
    else (* custom blocks (Int64.t etc.): content-hashed polymorphically *)
      mix (mix h 11) (Hashtbl.hash o)
  end

(* The data payloads are stashed as Obj.t to keep this module polymorphic in
   the system's state type; they are only ever consumed by the structural
   walk above and the polymorphic [compare], never re-projected. *)
let of_parts ~control ~data : t =
  let h =
    List.fold_left (fun h spine -> List.fold_left mix_string (mix h 13) spine)
      0xcbf29ce484222 control
  in
  let h = List.fold_left mix_obj (mix h 17) data in
  (* 0 is the parallel seen-set's empty-slot sentinel *)
  let h = if h = 0 then 1 else h in
  { fp = h; control; data }

let of_system (sys : ('a, 'v, 's) Cimp.System.t) : t =
  let n = Cimp.System.n_procs sys in
  let control = Cimp.System.control_fingerprint sys in
  let data =
    List.init n (fun p -> Stdlib.Obj.repr (Cimp.System.proc sys p).Cimp.Com.data)
  in
  of_parts ~control ~data

(* Structural equality, with the cached fingerprint as a cheap negative
   filter (equal structures always have equal fingerprints). *)
let equal (a : t) (b : t) =
  a.fp = b.fp && Stdlib.compare (a.control, a.data) (b.control, b.data) = 0

let hash (a : t) = a.fp
let fp64 (a : t) = Int64.of_int a.fp

(* The pre-PR polymorphic hash, kept for regression comparison (tests
   assert both hashes separate distinct small systems). *)
let hash_poly (a : t) = Hashtbl.hash_param 64 256 (a.control, a.data)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
