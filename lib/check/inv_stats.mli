(** Per-invariant evaluation accounting, shared by the exhaustive explorer
    and the random walker.

    The checkers spend most of their time inside invariant predicates, so
    this is the telemetry that attributes checker cost: how many times each
    invariant was evaluated, how long it took cumulatively, and which one
    produced the first violation.  The [plain] variant is the checkers'
    original fast path (first failing invariant, no bookkeeping) and is
    selected whenever the reporter is disabled, so observability costs
    nothing when off. *)

type 'sys t = {
  check : 'sys -> string option;
      (** name of the first failing invariant, in catalogue order *)
  report : Obs.Reporter.t -> first_violation:string option -> unit;
      (** emit one [invariant] record per invariant (no-op for [plain]) *)
  totals : unit -> int * float;
      (** total (evaluations, cumulative seconds) across all invariants so
          far — the invariant-eval share of the checkers' [profile]
          record.  [(0, 0.)] for [plain], which keeps no books. *)
}

val make : obs:Obs.Reporter.t -> (string * ('sys -> bool)) list -> 'sys t
(** Instrumented when [obs] is enabled, [plain] otherwise. *)

val plain : (string * ('sys -> bool)) list -> 'sys t
(** The zero-bookkeeping fast path: [check] is a bare first-failure
    scan, [report]/[totals] are no-ops. *)

val instrumented : (string * ('sys -> bool)) list -> 'sys t
(** The accounting variant: per-invariant eval counts and cumulative
    timings, at the cost of two clock reads per evaluation. *)
