(* State-space reduction hook.

   The checkers (Explore, Par_explore, Random_walk) accept an optional
   reducer that overrides the two operations reduction can soundly
   intercept:

   - [fingerprint] maps a state to the fingerprint of a *canonical
     representative* (e.g. with symmetric processes sorted, or dead
     registers nulled).  The checker dedups on this fingerprint and
     expands the [canon_state] representative of each fresh class;
     counterexample replay still runs the real transition relation.

   - [successors] returns a (sound) subset of [Cimp.System.steps] — e.g.
     a partial-order-reduction ample set.  It must be empty only when the
     full successor set is empty, so deadlock counting stays exact.

   - [canon_state] maps a state to the *executable* canonical
     representative the checker expands in its place (for the GC model:
     dead registers nulled; pid permutation is fingerprint-only because
     CIMP commands embed pids in closures).  It must preserve the
     fingerprint ([fingerprint (canon_state s) = fingerprint s]) and be
     behaviour-equivalent modulo the fingerprint: successors of the
     representative must cover the same canonical classes as successors
     of any state it stands for.  This makes the explored graph the
     quotient graph — the visited class set no longer depends on which
     concrete representative happens to win a scheduling race — which is
     what lets a certificate's transition-closure obligations be
     discharged deterministically by an independent validator
     (lib/certify).  [Fun.id] when the reduction has no such
     normalization.

   When no reducer is supplied, behaviour is bit-for-bit the unreduced
   checker.  The concrete reducers live in [lib/reduce] (the generic
   machinery) and [lib/core] (the GC-model-specific symmetry/liveness
   specification); this module only defines the interface so that [check]
   does not depend on either.

   Reducers built on register-liveness canonicalization are typically
   only sound for normal-form exploration (the default): at non-rest
   points a "dead" register may still be live.  See the documentation of
   the concrete reducer for its own preconditions.

   The three counters are [Atomic.t] so one reducer value can be shared
   by the parallel checker's domains. *)

type ('a, 'v, 's) t = {
  name : string;  (* "sym", "por", "all", ... — reported in JSONL records *)
  fingerprint : ('a, 'v, 's) Cimp.System.t -> Fingerprint.t;
  successors :
    ('a, 'v, 's) Cimp.System.t -> (Cimp.System.event * ('a, 'v, 's) Cimp.System.t) list;
  canon_state : ('a, 'v, 's) Cimp.System.t -> ('a, 'v, 's) Cimp.System.t;
  sym_permuted : int Atomic.t;  (* states whose canonical pid order differed *)
  reg_nulled : int Atomic.t;  (* states with at least one dead register nulled *)
  deferred : int Atomic.t;  (* transitions pruned by the ample-set selector *)
}

let fp_of reducer sys =
  match reducer with None -> Fingerprint.of_system sys | Some r -> r.fingerprint sys

let succs_of reducer sys =
  match reducer with None -> Cimp.System.steps sys | Some r -> r.successors sys

let canon_of reducer sys = match reducer with None -> sys | Some r -> r.canon_state sys

let name_of = function None -> "none" | Some r -> r.name

(* The "reduction" JSONL record: emitted once per checker run when a
   reducer is active, next to the existing "outcome" record. *)
let report obs ~checker reducer ~states ~transitions ~elapsed =
  match reducer with
  | None -> ()
  | Some r ->
    if Obs.Reporter.enabled obs then
      Obs.Reporter.emit obs "reduction"
        [
          ("checker", Obs.Json.String checker);
          ("reduce", Obs.Json.String r.name);
          ("states", Obs.Json.Int states);
          ("transitions", Obs.Json.Int transitions);
          ("sym_permuted", Obs.Json.Int (Atomic.get r.sym_permuted));
          ("reg_nulled", Obs.Json.Int (Atomic.get r.reg_nulled));
          ("deferred_transitions", Obs.Json.Int (Atomic.get r.deferred));
          ("elapsed_s", Obs.Json.Float elapsed);
        ]
