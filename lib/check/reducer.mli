(** State-space reduction hook for the checkers.

    A reducer overrides the two operations reduction can soundly
    intercept: the fingerprint used for seen-set dedup (symmetry /
    liveness canonicalization — the checker still explores the concrete
    states it reaches, so invariants see real states) and the successor
    function (a partial-order-reduction ample set, a subset of
    {!Cimp.System.steps} that must be empty only when the full set is).

    With no reducer the checkers behave bit-for-bit as before.  Concrete
    reducers live in [lib/reduce] (generic machinery) and [lib/core]
    (the GC model's symmetry/liveness specification); canonicalizing
    reducers are typically only sound under normal-form exploration (the
    checkers' default). *)

type ('a, 'v, 's) t = {
  name : string;
  fingerprint : ('a, 'v, 's) Cimp.System.t -> Fingerprint.t;
  successors :
    ('a, 'v, 's) Cimp.System.t -> (Cimp.System.event * ('a, 'v, 's) Cimp.System.t) list;
  sym_permuted : int Atomic.t;
      (** states whose canonical pid order differed from the concrete one *)
  reg_nulled : int Atomic.t;  (** states with at least one dead register nulled *)
  deferred : int Atomic.t;  (** transitions pruned by the ample-set selector *)
}

(** [fp_of reducer sys]: the reducer's fingerprint, or
    {!Fingerprint.of_system} when [reducer] is [None]. *)
val fp_of : ('a, 'v, 's) t option -> ('a, 'v, 's) Cimp.System.t -> Fingerprint.t

(** [succs_of reducer sys]: the reducer's successors, or
    {!Cimp.System.steps} when [reducer] is [None]. *)
val succs_of :
  ('a, 'v, 's) t option ->
  ('a, 'v, 's) Cimp.System.t ->
  (Cimp.System.event * ('a, 'v, 's) Cimp.System.t) list

(** The reducer's name, or ["none"]. *)
val name_of : ('a, 'v, 's) t option -> string

(** Emit the "reduction" JSONL record (checker, reduce, states,
    transitions, sym_permuted, reg_nulled, deferred_transitions,
    elapsed_s).  No-op when [reducer] is [None] or the sink is null. *)
val report :
  Obs.Reporter.t ->
  checker:string ->
  ('a, 'v, 's) t option ->
  states:int ->
  transitions:int ->
  elapsed:float ->
  unit
