(** State-space reduction hook for the checkers.

    A reducer overrides the three operations reduction can soundly
    intercept: the fingerprint used for seen-set dedup (symmetry /
    liveness canonicalization), the successor function (a
    partial-order-reduction ample set, a subset of {!Cimp.System.steps}
    that must be empty only when the full set is), and the executable
    canonical representative the checkers expand per fresh class (which
    makes the explored graph the quotient graph, so the visited class
    set is independent of scheduling — the precondition certificates
    rely on, see [lib/certify]).

    With no reducer the checkers behave bit-for-bit as before.  Concrete
    reducers live in [lib/reduce] (generic machinery) and [lib/core]
    (the GC model's symmetry/liveness specification); canonicalizing
    reducers are typically only sound under normal-form exploration (the
    checkers' default). *)

type ('a, 'v, 's) t = {
  name : string;  (** "sym", "por", "all", ... — reported in JSONL records *)
  fingerprint : ('a, 'v, 's) Cimp.System.t -> Fingerprint.t;
      (** canonical fingerprint used for seen-set dedup *)
  successors :
    ('a, 'v, 's) Cimp.System.t -> (Cimp.System.event * ('a, 'v, 's) Cimp.System.t) list;
      (** the ample successor set: a subset of {!Cimp.System.steps} that
          must be empty only when the full set is *)
  canon_state : ('a, 'v, 's) Cimp.System.t -> ('a, 'v, 's) Cimp.System.t;
      (** the {e executable} canonical representative the checkers expand
          in place of a freshly discovered state (dead registers nulled;
          pid permutation stays fingerprint-only).  Must preserve the
          fingerprint and the reachable canonical-class set, making the
          explored graph the quotient graph — the precondition for
          certificate closure to be validator-checkable independently of
          scheduling (see [lib/certify]).  [Fun.id] when the reduction has
          no such normalization. *)
  sym_permuted : int Atomic.t;
      (** states whose canonical pid order differed from the concrete one *)
  reg_nulled : int Atomic.t;  (** states with at least one dead register nulled *)
  deferred : int Atomic.t;  (** transitions pruned by the ample-set selector *)
}

(** [fp_of reducer sys]: the reducer's fingerprint, or
    {!Fingerprint.of_system} when [reducer] is [None]. *)
val fp_of : ('a, 'v, 's) t option -> ('a, 'v, 's) Cimp.System.t -> Fingerprint.t

(** [succs_of reducer sys]: the reducer's successors, or
    {!Cimp.System.steps} when [reducer] is [None]. *)
val succs_of :
  ('a, 'v, 's) t option ->
  ('a, 'v, 's) Cimp.System.t ->
  (Cimp.System.event * ('a, 'v, 's) Cimp.System.t) list

(** [canon_of reducer sys]: the reducer's executable canonical
    representative of [sys], or [sys] itself when [reducer] is [None]. *)
val canon_of :
  ('a, 'v, 's) t option -> ('a, 'v, 's) Cimp.System.t -> ('a, 'v, 's) Cimp.System.t

(** The reducer's name, or ["none"]. *)
val name_of : ('a, 'v, 's) t option -> string

(** Emit the "reduction" JSONL record (checker, reduce, states,
    transitions, sym_permuted, reg_nulled, deferred_transitions,
    elapsed_s).  No-op when [reducer] is [None] or the sink is null. *)
val report :
  Obs.Reporter.t ->
  checker:string ->
  ('a, 'v, 's) t option ->
  states:int ->
  transitions:int ->
  elapsed:float ->
  unit
