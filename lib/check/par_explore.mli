(** Parallel exhaustive exploration: asynchronous work-stealing BFS across
    OCaml 5 domains.

    A persistent pool of [jobs] worker domains is spawned once per run
    (not per BFS level).  Each worker expands states from its own deque,
    pushes fresh successors locally, and steals half of a victim's deque
    when it runs dry; termination is detected by an atomic active-task
    counter whose quiescence (zero published-but-unfinished tasks) no
    worker can observe spuriously.  The level barrier of the earlier
    design is gone: no fork/join round trip per level, no domains idling
    at a barrier while the slowest slice finishes.

    The shortest-counterexample guarantee survives without level
    synchronization because seen-set entries are depth-stamped: a shorter
    path to a known state atomically improves the entry's (depth, parent,
    event) triple and re-enqueues it, so stamps relax to true BFS
    distances by quiescence, and violations race through an atomic
    best-(depth, fingerprint) cell with min-tie-break.  The minimal trace
    is then recovered by the same bounded parent-chain replay as the
    sequential explorer.  DESIGN.md §11 gives the minimality argument.

    The seen-set is the tiered store of {!Store.Tiered}: 64
    independently-locked RAM shards that, under a memory budget, freeze
    into Bloom-fronted sorted on-disk segments (DESIGN.md §12), so state
    spaces larger than RAM stay exactly deduplicated.  The same segment
    format powers checkpoint/resume ({!Store.Checkpoint}). *)

type ('a, 'v, 's) outcome = ('a, 'v, 's) Explore.outcome

(** Scheduler observation hooks, injectable from tests to make
    termination-detection interleavings deterministic (e.g. hold a worker
    in its quiescence probe until another worker has published work, then
    assert the probe did not terminate the run early).  [on_expand] fires
    before each state expansion; [on_idle] when a worker's own deque runs
    dry; [on_steal] after a successful steal; [on_probe] on every
    quiescence check, with the pending-task count the worker observed.
    The default {!no_hooks} do nothing. *)
type hooks = {
  on_expand : worker:int -> depth:int -> unit;
  on_idle : worker:int -> unit;
  on_steal : worker:int -> victim:int -> stolen:int -> unit;
  on_probe : worker:int -> pending:int -> unit;
}

val no_hooks : hooks
(** Hooks that do nothing (the default). *)

val max_jobs : int
(** Cap on [jobs] (64): deques, lanes and per-worker counters are
    fixed-size arrays of this length. *)

(** [run ~jobs ~invariants initial] explores like {!Explore.run} but
    across [jobs] worker domains.  [jobs <= 1] (the default) delegates to
    {!Explore.run} when no store or checkpoint option is given, so
    default results are bit-for-bit the sequential ones; with
    [mem_budget], [checkpoint] or [resume] the pool runs even at one
    worker (a single FIFO deque, still deterministic BFS order).  [jobs]
    is capped at {!max_jobs}.

    Determinism contract across [jobs]:
    - a non-truncated run with no violation reports exactly the
      sequential explorer's counts ([states], [transitions], [depth],
      [deadlocks]) and [covered] list: every reachable state is inserted
      exactly once, and transitions/deadlocks are counted only on a
      state's first expansion (depth-improvement re-expansions recount
      nothing).  One caveat under [mem_budget]: [depth] may overstate
      when a spilled entry is later depth-improved (the stale deeper
      copy persists on disk until a merge rewrites it);
    - a violating run reports a violation of minimal depth; among
      equal-depth violations the smallest fingerprint wins, so the
      verdict, the violated invariant and the counterexample length are
      deterministic.  State counts of violating runs are not comparable
      across [jobs] (pruning races with discovery), matching the
      sequential explorer's early stop;
    - [max_states] may overshoot by the successors in flight (at most one
      expansion batch per worker) before every worker observes the cap.

    @param hooks scheduler observation hooks for tests
           (default {!no_hooks}).
    @param mem_budget resident-byte budget for the seen-set
           ({!Store.Tiered.create}); shards crossing their slice of it
           freeze into on-disk segments.  Absent, everything stays in
           RAM.
    @param spill_dir directory for segment files (default: a fresh
           temporary directory, removed contents excepted).
    @param checkpoint [(dir, every)]: snapshot the full exploration state
           into [dir] (atomically, {!Store.Checkpoint.write}) every
           [every] newly inserted states, and once more after the run
           completes.  Worker 0 coordinates a stop-the-world rendezvous:
           the pool parks at batch boundaries, where deques + counters
           are the entire frontier.
    @param resume a snapshot loaded by {!Store.Checkpoint.load}; the run
           continues from it (frontier states are rebuilt by memoized
           parent-chain replay, since CIMP systems embed closures and
           cannot be marshalled) and on an interrupted-then-resumed run
           reaches the same verdict, violated invariant and
           counterexample length as an uninterrupted one.  Raises
           [Invalid_argument] if the snapshot does not match the model.
    @param run_config opaque JSON echoed into each snapshot's manifest,
           so [gcmodel resume] can rebuild the model and flags.

    Remaining parameters are as in {!Explore.run}.  When [obs] is
    enabled, each worker emits its own [heartbeat] records tagged with a
    [domain] index (the [frontier] field reports the pending-task count)
    carrying store occupancy ([bytes_resident], [mem_budget],
    [segments], [spilled_states], and a [store] metrics dump with a
    per-shard [bytes_resident.NN] gauge each), each worker reports its
    own per-[invariant] records (aggregate across domains for totals),
    and the run ends with an [outcome] record, a [scaling] record
    ([jobs], [states], [elapsed_s], [states_per_sec]) for
    speedup-vs-domains tracking, and a [scaling-detail] record:
    per-domain busy and idle seconds, steal / failed-steal / stolen-task
    / termination-probe counters, seen-set shard lock contention
    (acquires, contended acquires, per-shard wait), deque lock wait, the
    Amdahl serial-fraction estimate ({!Obs.Contention.estimate}), and
    the tiered-store counters (resident/peak/disk bytes, spills, merges,
    segments, spilled entries, disk probe and Bloom statistics).  Each
    checkpoint also emits a [checkpoint] record ([seq], [states],
    [frontier], [dir]).

    When [tracer] is live with at least [jobs] lanes, each worker's own
    lane (single-writer discipline, no coordinator involvement) carries
    [expand] spans per heartbeat interval with [successor-gen] /
    [normalize+fingerprint] / [seen-insert] / [invariants] /
    [deque-push] phase sub-spans, a [steal] span per successful steal, a
    [steal-fail] span per empty-handed victim sweep episode, a
    [termination-probe] span at the quiescence check that ends the
    worker's run, and [store-spill] / [store-merge] / [store-disk-probe]
    spans on the worker whose insert triggered the store event. *)
val run :
  ?jobs:int ->
  ?max_states:int ->
  ?normal_form:bool ->
  ?track_coverage:bool ->
  ?obs:Obs.Reporter.t ->
  ?tracer:Obs.Tracing.t ->
  ?heartbeat_every:int ->
  ?hooks:hooks ->
  ?reducer:('a, 'v, 's) Reducer.t ->
  ?mem_budget:int ->
  ?spill_dir:string ->
  ?checkpoint:string * int ->
  ?resume:Store.Checkpoint.snapshot ->
  ?on_store:(Store.Tiered.t -> unit) ->
  ?run_config:Obs.Json.t ->
  invariants:(string * (('a, 'v, 's) Cimp.System.t -> bool)) list ->
  ('a, 'v, 's) Cimp.System.t ->
  ('a, 'v, 's) outcome
