(** Parallel exhaustive exploration: level-synchronized BFS across OCaml 5
    domains, preserving the sequential explorer's shortest-counterexample
    semantics.

    The frontier of each BFS level is split across [jobs] worker domains
    that meet at a barrier before the next level.  The seen-set is sharded
    by the low bits of the compact structural fingerprint into
    independently-locked open-addressing tables over unboxed int arrays
    storing three words per state (fingerprint, parent fingerprint, packed
    event) — full states are retained only for the current and next
    frontier, and counterexamples are rebuilt by bounded replay of the
    recorded event chain.

    On runs with no violation, every outcome field except [elapsed] equals
    the sequential explorer's, for any [jobs] (modulo fingerprint
    collisions, probability ~ n^2/2^63).  On violating runs the reported
    violation has minimal depth and among the equal-depth candidates the
    smallest fingerprint, so the verdict and trace length are
    deterministic; which parent chain (schedule) the trace follows may
    differ from the sequential explorer's. *)

type ('a, 'v, 's) outcome = ('a, 'v, 's) Explore.outcome

(** [run ~jobs ~invariants initial] explores from [initial] with [jobs]
    worker domains.  [jobs <= 1] (the default) delegates to
    {!Explore.run}, so default results are bit-for-bit the sequential
    ones; [jobs] is capped at 64.

    Remaining parameters are as in {!Explore.run}, with two parallel-mode
    deviations: [max_states] may overshoot by at most the number of
    in-flight successors (one per worker), and hitting it stops the run
    at the end of the current level.  When [obs] is enabled, each worker
    emits its own [heartbeat] records tagged with a [domain] index, each
    worker reports its own per-[invariant] records (aggregate across
    domains for totals), a [level] record closes every BFS level (frontier
    size, per-domain busy fractions — what the live dashboard renders),
    and the run ends with an [outcome] record plus a [scaling] record
    ([jobs], [states], [elapsed_s], [states_per_sec]) for
    speedup-vs-domains tracking and a [scaling-detail] record: per-domain
    busy and barrier-wait seconds, seen-set shard lock contention
    (acquires, contended acquires, per-shard wait), and the Amdahl
    serial-fraction estimate ({!Obs.Contention.estimate}).

    When [tracer] is live with at least [jobs] lanes, each worker's lane
    carries per-level [slice] spans with [successor-gen] /
    [normalize+fingerprint] / [seen-insert] / [invariants] phase
    sub-spans and a [barrier-wait] span per level (reconstructed by the
    coordinator after the join, which owns every lane between levels);
    lane 0 additionally carries one [level] span per BFS level. *)
val run :
  ?jobs:int ->
  ?max_states:int ->
  ?normal_form:bool ->
  ?track_coverage:bool ->
  ?obs:Obs.Reporter.t ->
  ?tracer:Obs.Tracing.t ->
  ?heartbeat_every:int ->
  ?reducer:('a, 'v, 's) Reducer.t ->
  invariants:(string * (('a, 'v, 's) Cimp.System.t -> bool)) list ->
  ('a, 'v, 's) Cimp.System.t ->
  ('a, 'v, 's) outcome
