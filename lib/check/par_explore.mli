(** Parallel exhaustive exploration: asynchronous work-stealing BFS across
    OCaml 5 domains.

    A persistent pool of [jobs] worker domains is spawned once per run
    (not per BFS level).  Each worker expands states from its own deque,
    pushes fresh successors locally, and steals half of a victim's deque
    when it runs dry; termination is detected by an atomic active-task
    counter whose quiescence (zero published-but-unfinished tasks) no
    worker can observe spuriously.  The level barrier of the earlier
    design is gone: no fork/join round trip per level, no domains idling
    at a barrier while the slowest slice finishes.

    The shortest-counterexample guarantee survives without level
    synchronization because seen-set entries are depth-stamped: a shorter
    path to a known state atomically improves the entry's (depth, parent,
    event) triple and re-enqueues it, so stamps relax to true BFS
    distances by quiescence, and violations race through an atomic
    best-(depth, fingerprint) cell with min-tie-break.  The minimal trace
    is then recovered by the same bounded parent-chain replay as the
    sequential explorer.  DESIGN.md §11 gives the minimality argument. *)

type ('a, 'v, 's) outcome = ('a, 'v, 's) Explore.outcome

(** Scheduler observation hooks, injectable from tests to make
    termination-detection interleavings deterministic (e.g. hold a worker
    in its quiescence probe until another worker has published work, then
    assert the probe did not terminate the run early).  [on_expand] fires
    before each state expansion; [on_idle] when a worker's own deque runs
    dry; [on_steal] after a successful steal; [on_probe] on every
    quiescence check, with the pending-task count the worker observed.
    The default {!no_hooks} do nothing. *)
type hooks = {
  on_expand : worker:int -> depth:int -> unit;
  on_idle : worker:int -> unit;
  on_steal : worker:int -> victim:int -> stolen:int -> unit;
  on_probe : worker:int -> pending:int -> unit;
}

val no_hooks : hooks

(** The sharded seen-set, exposed for the multi-domain resize hammer
    test.  64 independently-locked open-addressing shards over unboxed
    int bigarrays; four words (32 bytes) per state: fingerprint, parent
    fingerprint, packed event, and a meta word (depth stamp |
    violated-invariant index | expanded bit).  Every operation, including
    the 70%-load doubling, runs entirely under the owning shard's mutex —
    see the concurrency audit comment in the implementation. *)
module Seen : sig
  type t

  (** [add] outcome: [Fresh] if the fingerprint was absent, [Improved v]
      if present with a larger depth stamp (the (depth, parent, event)
      triple is rewritten; [v] is the entry's violated-invariant index,
      -1 if none), [Stale] otherwise. *)
  type add_result = Fresh | Improved of int | Stale

  val n_shards : int

  (** [create ?shard_cap ()] with [shard_cap] initial slots per shard
      (default 1024; must be a power of two).  Small caps force early
      doubling, which the resize hammer test exploits. *)
  val create : ?shard_cap:int -> unit -> t

  (** [add t fp ~parent ~event ~depth]; [fp] must be non-zero
      ({!Fingerprint.hash} never is). *)
  val add : t -> int -> parent:int -> event:int -> depth:int -> add_result

  (** [(parent, packed event)] of a present fingerprint. *)
  val find : t -> int -> (int * int) option

  (** Current depth stamp of a present fingerprint. *)
  val depth_of : t -> int -> int option

  val count : t -> int

  (** Total slots across shards (grows as shards double). *)
  val capacity : t -> int
end

val max_jobs : int

(** [run ~jobs ~invariants initial] explores like {!Explore.run} but
    across [jobs] worker domains.  [jobs <= 1] (the default) delegates to
    {!Explore.run}, so default results are bit-for-bit the sequential
    ones; [jobs] is capped at {!max_jobs}.

    Determinism contract across [jobs]:
    - a non-truncated run with no violation reports exactly the
      sequential explorer's counts ([states], [transitions], [depth],
      [deadlocks]) and [covered] list: every reachable state is inserted
      exactly once, and transitions/deadlocks are counted only on a
      state's first expansion (depth-improvement re-expansions recount
      nothing);
    - a violating run reports a violation of minimal depth; among
      equal-depth violations the smallest fingerprint wins, so the
      verdict, the violated invariant and the counterexample length are
      deterministic.  State counts of violating runs are not comparable
      across [jobs] (pruning races with discovery), matching the
      sequential explorer's early stop;
    - [max_states] may overshoot by the successors in flight (at most one
      expansion batch per worker) before every worker observes the cap.

    @param hooks scheduler observation hooks for tests
           (default {!no_hooks}).

    Remaining parameters are as in {!Explore.run}.  When [obs] is
    enabled, each worker emits its own [heartbeat] records tagged with a
    [domain] index (the [frontier] field reports the pending-task count),
    each worker reports its own per-[invariant] records (aggregate across
    domains for totals), and the run ends with an [outcome] record, a
    [scaling] record ([jobs], [states], [elapsed_s], [states_per_sec])
    for speedup-vs-domains tracking, and a [scaling-detail] record:
    per-domain busy and idle seconds, steal / failed-steal / stolen-task
    / termination-probe counters, seen-set shard lock contention
    (acquires, contended acquires, per-shard wait), deque lock wait, and
    the Amdahl serial-fraction estimate ({!Obs.Contention.estimate}).

    When [tracer] is live with at least [jobs] lanes, each worker's own
    lane (single-writer discipline, no coordinator involvement) carries
    [expand] spans per heartbeat interval with [successor-gen] /
    [normalize+fingerprint] / [seen-insert] / [invariants] /
    [deque-push] phase sub-spans, a [steal] span per successful steal, a
    [steal-fail] span per empty-handed victim sweep episode, and a
    [termination-probe] span at the quiescence check that ends the
    worker's run. *)
val run :
  ?jobs:int ->
  ?max_states:int ->
  ?normal_form:bool ->
  ?track_coverage:bool ->
  ?obs:Obs.Reporter.t ->
  ?tracer:Obs.Tracing.t ->
  ?heartbeat_every:int ->
  ?hooks:hooks ->
  ?reducer:('a, 'v, 's) Reducer.t ->
  invariants:(string * (('a, 'v, 's) Cimp.System.t -> bool)) list ->
  ('a, 'v, 's) Cimp.System.t ->
  ('a, 'v, 's) outcome
