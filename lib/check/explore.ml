(* Exhaustive explicit-state exploration.

   Breadth-first search over the CIMP system's reachable states, evaluating
   every supplied invariant at every state.  This is the executable
   substitute for the paper's induction over the reachable-state set
   (Section 3.2): on a bounded instance it *is* that induction, carried out
   by enumeration, and it additionally produces a shortest counterexample
   schedule when an invariant fails. *)

type ('a, 'v, 's) outcome = {
  states : int;  (* distinct states visited *)
  transitions : int;  (* transitions traversed *)
  depth : int;  (* BFS depth reached *)
  deadlocks : int;  (* states with no successors *)
  truncated : bool;  (* hit max_states before closure *)
  violation : ('a, 'v, 's) Trace.t option;  (* first (shortest) violation *)
  elapsed : float;  (* seconds *)
  covered : (int * Cimp.Label.t) list;
      (* (pid, label) pairs that fired, when coverage tracking is on:
         program locations never exercised indicate dead model code *)
}

let pp_outcome ppf o =
  Fmt.pf ppf "states=%d transitions=%d depth=%d deadlocks=%d%s %s (%.2fs)" o.states o.transitions
    o.depth o.deadlocks
    (if o.truncated then " TRUNCATED" else "")
    (match o.violation with None -> "all invariants hold" | Some t -> "VIOLATION: " ^ t.Trace.broken)
    o.elapsed

(* Coverage diffs must be stable across runs, so order deterministically:
   by pid, then label. *)
let sort_coverage pairs =
  List.sort
    (fun (p1, l1) (p2, l2) ->
      match compare (p1 : int) p2 with 0 -> Cimp.Label.compare l1 l2 | c -> c)
    pairs

let coverage_gaps sys ~covered =
  let fired = Hashtbl.create 256 in
  List.iter (fun pair -> Hashtbl.replace fired pair ()) covered;
  let gaps = ref [] in
  for p = 0 to Cimp.System.n_procs sys - 1 do
    let labels =
      List.concat_map Cimp.Com.labels (Cimp.System.proc sys p).Cimp.Com.stack
    in
    List.iter
      (fun l ->
        if not (Hashtbl.mem fired (p, l)) then begin
          Hashtbl.replace fired (p, l) ();  (* dedupe within the program *)
          gaps := (p, l) :: !gaps
        end)
      labels
  done;
  sort_coverage !gaps

(* Forward replay of a recorded transition chain, shared by both
   explorers' counterexample reconstruction and by checkpoint resume.
   An event alone does not determine the successor (a Local_op may offer
   several successors under one label), so each step also matches the
   recorded key — a structural fingerprint here, a compact int hash in
   the parallel explorer — of the state it must land in. *)
let replay_chain ~norm ~matches initial chain =
  let rec replay sys chain acc =
    match chain with
    | [] -> List.rev acc
    | (key, ev) :: rest -> (
      let next =
        List.find_map
          (fun (e, s') ->
            if e = ev then
              let s' = norm s' in
              if matches s' key then Some s' else None
            else None)
          (Cimp.System.steps sys)
      in
      match next with
      | Some s' -> replay s' rest ({ Trace.event = ev; state = s' } :: acc)
      | None -> List.rev acc (* unreachable: the chain records real transitions *))
  in
  replay initial chain []

(* BFS.  [invariants] are (name, predicate) pairs checked at every state,
   including the initial one.  Stops at the first violation (BFS order
   makes it a shortest one).

   With [normal_form] (default), states are explored in the definite-tau
   normal form (Cimp.System.normalize): runs of deterministic local
   register/control steps — unobservable by other processes — execute
   eagerly, so invariants are evaluated at atomic-action boundaries only.
   This is the evaluation-context atomicity coarsening of Section 3. *)
let run ?(max_states = 1_000_000) ?(normal_form = true) ?(track_coverage = false)
    ?(obs = Obs.Reporter.null) ?(tracer = Obs.Tracing.null) ?(heartbeat_every = 20_000) ?reducer
    ~invariants initial =
  let norm sys = if normal_form then Cimp.System.normalize sys else sys in
  let fp_of sys = Reducer.fp_of reducer sys in
  let canon sys = Reducer.canon_of reducer sys in
  let initial = norm initial in
  let coverage = Hashtbl.create (if track_coverage then 512 else 1) in
  let record_event ev =
    if track_coverage then begin
      match ev with
      | Cimp.System.Tau (p, l) -> Hashtbl.replace coverage (p, l) ()
      | Cimp.System.Rendezvous { requester; req_label; responder; resp_label } ->
        Hashtbl.replace coverage (requester, req_label) ();
        Hashtbl.replace coverage (responder, resp_label) ()
    end
  in
  let t0 = Unix.gettimeofday () in
  (* per-phase wall-time attribution for the "profile" record: successor
     generation vs normalization vs fingerprinting vs invariant evaluation
     (the invariant share comes from Inv_stats).  Only paid when a
     reporter is attached — the disabled path costs one branch per
     timed call, like the heartbeat gate. *)
  let profiling = Obs.Reporter.enabled obs in
  let gc0 = Gc.quick_stat () in
  let succ_s = ref 0. and succ_calls = ref 0 in
  let norm_s = ref 0. and fp_s = ref 0. and fp_calls = ref 0 in
  let timed acc calls f =
    if profiling then begin
      let t = Unix.gettimeofday () in
      let r = f () in
      acc := !acc +. (Unix.gettimeofday () -. t);
      incr calls;
      r
    end
    else f ()
  in
  let norm_calls = ref 0 (* unreported; [timed] wants a counter *) in
  let seen = Fingerprint.Table.create 65536 in
  (* Parent pointers for trace reconstruction: fingerprint + event only.
     Retaining every full state here used to dominate the checker's
     memory; counterexamples are instead rebuilt by bounded replay
     (walk the fingerprint chain back to the root, then re-execute the
     recorded events forward from [initial]). *)
  let parent = Fingerprint.Table.create 65536 in
  let q = Queue.create () in
  let states = ref 0 in
  let transitions = ref 0 in
  let deadlocks = ref 0 in
  let depth = ref 0 in
  let truncated = ref false in
  let violation = ref None in
  let iv = Inv_stats.make ~obs invariants in
  let check_state = iv.Inv_stats.check in
  (* progress heartbeats, gated twice: the [enabled] test keeps the null
     sink's cost to one branch per expanded node, the state-count delta
     keeps an enabled sink's cost to one record per [heartbeat_every]
     states *)
  let hb_states = ref 0 in
  let hb_time = ref t0 in
  let heartbeat () =
    if Obs.Reporter.enabled obs && !states - !hb_states >= heartbeat_every then begin
      let now = Unix.gettimeofday () in
      let interval = now -. !hb_time in
      let rate =
        if interval > 0. then float_of_int (!states - !hb_states) /. interval else 0.
      in
      let gc = Gc.quick_stat () in
      Obs.Reporter.emit obs "heartbeat"
        [
          ("checker", Obs.Json.String "explore");
          ("states", Obs.Json.Int !states);
          ("max_states", Obs.Json.Int max_states);
          ("transitions", Obs.Json.Int !transitions);
          ("depth", Obs.Json.Int !depth);
          ("frontier", Obs.Json.Int (Queue.length q));
          ("states_per_sec", Obs.Json.Float rate);
          ("heap_words", Obs.Json.Int gc.Gc.heap_words);
          ("minor_collections", Obs.Json.Int gc.Gc.minor_collections);
          ("major_collections", Obs.Json.Int gc.Gc.major_collections);
        ];
      hb_states := !states;
      hb_time := now
    end
  in
  (* the sequential explorer has one lane: a span per heartbeat interval
     of expansion work, so the trace shows throughput phases over time *)
  let tr_on = Obs.Tracing.enabled tracer && Obs.Tracing.lanes tracer >= 1 in
  let n_expand = if tr_on then Obs.Tracing.intern tracer "expand" else 0 in
  if tr_on then Obs.Tracing.set_lane tracer ~dom:0 "explore";
  let tr_states = ref 0 in
  let tr_start = ref (Obs.Tracing.now tracer) in
  let trace_tick ~final () =
    if tr_on && (!states - !tr_states >= heartbeat_every || (final && !states > !tr_states))
    then begin
      let now = Obs.Tracing.now tracer in
      Obs.Tracing.span_args tracer ~dom:0 ~name:n_expand ~start_ns:!tr_start ~stop_ns:now
        ~args:
          [
            ("states", Obs.Json.Int !states);
            ("frontier", Obs.Json.Int (Queue.length q));
            ("depth", Obs.Json.Int !depth);
          ];
      tr_states := !states;
      tr_start := now
    end
  in
  let reconstruct fp broken =
    (* Walk parent pointers back to the root, then replay the recorded
       events forward from [initial] via [replay_chain]; cost is
       O(depth * branching). *)
    let rec back fp acc =
      match Fingerprint.Table.find_opt parent fp with
      | None -> acc
      | Some (pfp, event) -> back pfp ((fp, event) :: acc)
    in
    let chain = back fp [] in
    (* replay through canonical representatives (root included): the
       recorded events were generated from them, so later steps must
       re-take the same path (fingerprints are canon-invariant) *)
    let initial = canon initial in
    let steps =
      replay_chain
        ~norm:(fun s -> canon (norm s))
        ~matches:(fun s' fp' -> Fingerprint.equal (fp_of s') fp')
        initial chain
    in
    { Trace.initial; steps; broken }
  in
  let enqueue ~from_fp ~event ~d sys =
    let fp = timed fp_s fp_calls (fun () -> fp_of sys) in
    if not (Fingerprint.Table.mem seen fp) then begin
      Fingerprint.Table.add seen fp ();
      (match (from_fp, event) with
      | Some pfp, Some ev -> Fingerprint.Table.add parent fp (pfp, ev)
      | _ -> ());
      incr states;
      if d > !depth then depth := d;
      (* expand (and evaluate) the executable canonical representative,
         not whichever concrete state arrived first: the explored graph
         is then the quotient graph, independent of arrival order *)
      let sys = canon sys in
      (match !violation with
      | Some _ -> ()
      | None -> (
        match check_state sys with
        | Some name -> violation := Some (reconstruct fp name)
        | None -> ()));
      Queue.add (fp, sys, d) q
    end
  in
  enqueue ~from_fp:None ~event:None ~d:0 initial;
  (* Successor scan that stops at the state cap: once [max_states]
     distinct states exist, further successors are neither scanned nor
     enqueued, and the BFS loop below terminates instead of draining the
     remaining frontier (which could add nothing: invariants are checked
     at insertion time). *)
  let rec expand fp d = function
    | [] -> ()
    | (event, sys') :: rest ->
      if !states >= max_states then truncated := true
      else begin
        incr transitions;
        record_event event;
        enqueue ~from_fp:(Some fp) ~event:(Some event) ~d:(d + 1)
          (timed norm_s norm_calls (fun () -> norm sys'));
        expand fp d rest
      end
  in
  while not (Queue.is_empty q) && !violation = None && not !truncated do
    let fp, sys, d = Queue.pop q in
    let succs = timed succ_s succ_calls (fun () -> Reducer.succs_of reducer sys) in
    if succs = [] then incr deadlocks;
    expand fp d succs;
    heartbeat ();
    trace_tick ~final:false ()
  done;
  trace_tick ~final:true ();
  let elapsed = Unix.gettimeofday () -. t0 in
  let first_violation = Option.map (fun tr -> tr.Trace.broken) !violation in
  iv.Inv_stats.report obs ~first_violation;
  Reducer.report obs ~checker:"explore" reducer ~states:!states ~transitions:!transitions
    ~elapsed;
  if profiling then begin
    let inv_evals, inv_s = iv.Inv_stats.totals () in
    let gc1 = Gc.quick_stat () in
    let other = Float.max 0. (elapsed -. !succ_s -. !norm_s -. !fp_s -. inv_s) in
    Obs.Reporter.emit obs "profile"
      [
        ("checker", Obs.Json.String "explore");
        ("states", Obs.Json.Int !states);
        ("transitions", Obs.Json.Int !transitions);
        ("elapsed_s", Obs.Json.Float elapsed);
        ("succ_gen_s", Obs.Json.Float !succ_s);
        ("succ_gen_calls", Obs.Json.Int !succ_calls);
        ("normalize_s", Obs.Json.Float !norm_s);
        ("fingerprint_s", Obs.Json.Float !fp_s);
        ("fingerprint_calls", Obs.Json.Int !fp_calls);
        ("invariant_s", Obs.Json.Float inv_s);
        ("invariant_evals", Obs.Json.Int inv_evals);
        ("other_s", Obs.Json.Float other);
        ("minor_words", Obs.Json.Float (gc1.Gc.minor_words -. gc0.Gc.minor_words));
        ("promoted_words", Obs.Json.Float (gc1.Gc.promoted_words -. gc0.Gc.promoted_words));
        ("major_words", Obs.Json.Float (gc1.Gc.major_words -. gc0.Gc.major_words));
        ( "minor_collections",
          Obs.Json.Int (gc1.Gc.minor_collections - gc0.Gc.minor_collections) );
        ( "major_collections",
          Obs.Json.Int (gc1.Gc.major_collections - gc0.Gc.major_collections) );
        ("heap_words", Obs.Json.Int gc1.Gc.heap_words);
      ]
  end;
  if Obs.Reporter.enabled obs then
    Obs.Reporter.emit obs "outcome"
      [
        ("checker", Obs.Json.String "explore");
        ("states", Obs.Json.Int !states);
        ("transitions", Obs.Json.Int !transitions);
        ("depth", Obs.Json.Int !depth);
        ("deadlocks", Obs.Json.Int !deadlocks);
        ("truncated", Obs.Json.Bool !truncated);
        ( "violation",
          match first_violation with
          | None -> Obs.Json.Null
          | Some name -> Obs.Json.String name );
        ("elapsed_s", Obs.Json.Float elapsed);
        ( "states_per_sec",
          Obs.Json.Float (if elapsed > 0. then float_of_int !states /. elapsed else 0.) );
      ];
  {
    states = !states;
    transitions = !transitions;
    depth = !depth;
    deadlocks = !deadlocks;
    truncated = !truncated;
    violation = !violation;
    elapsed;
    covered = sort_coverage (Hashtbl.fold (fun k () acc -> k :: acc) coverage []);
  }
