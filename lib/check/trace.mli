(** Counterexample traces: the schedule of events from the initial state to
    a state violating an invariant. *)

(** One transition of the schedule: the event fired and the state it
    produced. *)
type ('a, 'v, 's) step = { event : Cimp.System.event; state : ('a, 'v, 's) Cimp.System.t }

type ('a, 'v, 's) t = {
  initial : ('a, 'v, 's) Cimp.System.t;
  steps : ('a, 'v, 's) step list;  (** in execution order *)
  broken : string;  (** name of the violated invariant *)
}

val length : ('a, 'v, 's) t -> int
(** Number of steps (the counterexample's schedule length). *)

(** The violating state ([initial] if the trace is empty). *)
val final : ('a, 'v, 's) t -> ('a, 'v, 's) Cimp.System.t

(** Render the event schedule (state dumps are the callers' business:
    they know the data-state type — see {!Core.Dump.pp_trace}). *)
val pp : ('a, 'v, 's) t Fmt.t

(** {1 JSON export}

    The schedule (plus process names and the violated invariant) fully
    determines a counterexample run, so exporting it makes violations
    replayable artifacts without serializing the polymorphic states:
    re-run the schedule from the same initial system to regenerate every
    intermediate state. *)

val event_to_json : Cimp.System.event -> Obs.Json.t
(** One schedule entry: [{"tau": pid, "label"}] or
    [{"rendezvous": ...}] — the unit {!to_json} composes. *)

val event_of_json : Obs.Json.t -> (Cimp.System.event, string) result
(** Parse one schedule entry back; [Error] names the malformed field. *)

(** [{"broken"; "length"; "names"; "schedule"}] — see README
    "Observability" for the schema. *)
val to_json : ('a, 'v, 's) t -> Obs.Json.t

(** Parse back what {!to_json} wrote: the violated invariant's name and
    the event schedule.  No cross-checking against any system — prefer
    {!import} when the target system is at hand. *)
val schedule_of_json : Obs.Json.t -> (string * Cimp.System.event list, string) result

(** [validate_events sys events] checks every event's pids and labels
    against [sys]'s processes and programs, so a stale trace from a
    different instance (other [--muts] count, other variant, disabled
    ops) is rejected with a diagnosis instead of replaying into a
    confusing failure deep inside the model.  [sys] must be the pristine
    initial system: its frame stacks still hold the complete programs. *)
val validate_events :
  ('a, 'v, 's) Cimp.System.t -> Cimp.System.event list -> (unit, string) result

(** {!schedule_of_json} followed by {!validate_events} against [sys]. *)
val import :
  ('a, 'v, 's) Cimp.System.t -> Obs.Json.t -> (string * Cimp.System.event list, string) result
