(** The CIMP system semantics of the paper's Fig. 8: flat parallel
    composition with top-level interleaving and rendezvous.

    A global state maps process names to their local configurations; all
    processes share one data-state type, as in the Isabelle development. *)

type ('a, 'v, 's) t

type pid = int

(** What a global step did, for trace reconstruction. *)
type event =
  | Tau of pid * Label.t
  | Rendezvous of { requester : pid; req_label : Label.t; responder : pid; resp_label : Label.t }

val pp_event : string array -> event Fmt.t

(** The process that initiated the event: the stepping process of a tau,
    the requester of a rendezvous. *)
val event_owner : event -> pid

(** Every process whose configuration the event may have changed: [[p]]
    for a tau of [p], [[requester; responder]] for a rendezvous.  The
    write footprint at configuration granularity, used by partial-order
    reduction's independence relation. *)
val event_pids : event -> pid list

(** [make names procs] composes the processes.
    @raise Invalid_argument if the arrays' lengths differ. *)
val make : string array -> ('a, 'v, 's) Com.config array -> ('a, 'v, 's) t

val n_procs : ('a, 'v, 's) t -> int
val proc : ('a, 'v, 's) t -> pid -> ('a, 'v, 's) Com.config
val name : ('a, 'v, 's) t -> pid -> string

(** All successors: every process's tau steps (first rule of Fig. 8) and
    every requester/responder pairing (second rule). *)
val steps : ('a, 'v, 's) t -> (event * ('a, 'v, 's) t) list

(** Successors when only process [p] is scheduled (its taus and the
    rendezvous it initiates); used by randomized schedulers. *)
val steps_of : ('a, 'v, 's) t -> pid -> (event * ('a, 'v, 's) t) list

val deadlocked : ('a, 'v, 's) t -> bool

(** The paper's [at p l]: does control of process [p] reside at label [l]? *)
val at : ('a, 'v, 's) t -> pid -> Label.t -> bool

(** Surgical replacement of one process's data state (for tests and
    experiment drivers). *)
val map_data : ('a, 'v, 's) t -> pid -> ('s -> 's) -> ('a, 'v, 's) t

(** The label spine of every process's frame stack: the global control
    fingerprint. *)
val control_fingerprint : ('a, 'v, 's) t -> Label.t list list

(** Normal form under definite local steps: run every process's
    {!Com.definite_tau} steps to quiescence.  Sound for invariants that
    only observe states at atomic-action boundaries — the evaluation-context
    coarsening of the paper's Section 3. *)
val normalize : ('a, 'v, 's) t -> ('a, 'v, 's) t
