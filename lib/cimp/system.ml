(* The CIMP system semantics of Fig. 8: flat parallel composition with
   top-level interleaving and rendezvous, no action hiding.

   A global state maps process names to their local states; we index
   processes by small integers and keep display names alongside.  All
   processes share one local data-state type ['s] (as in the Isabelle
   development, where a single record covers the collector, the mutators,
   and the system process). *)

type ('a, 'v, 's) t = {
  names : string array;  (* display names, e.g. "gc", "mut0", "sys" *)
  procs : ('a, 'v, 's) Com.config array;
}

type pid = int

(* What a global step did, for trace reconstruction (Check.Trace). *)
type event =
  | Tau of pid * Label.t
  | Rendezvous of { requester : pid; req_label : Label.t; responder : pid; resp_label : Label.t }

(* The process that initiated an event: the stepping process for a tau,
   the requester for a rendezvous.  The owner is the only process whose
   *program* advances past a choice point — responders are reactive. *)
let event_owner = function
  | Tau (p, _) -> p
  | Rendezvous { requester; _ } -> requester

(* Every process whose configuration a step may change: the stepping
   process for a tau, both parties of a rendezvous.  This is the write
   footprint at the granularity of process configurations, which (with
   per-process data isolation) is what the independence relation of
   partial-order reduction needs. *)
let event_pids = function
  | Tau (p, _) -> [ p ]
  | Rendezvous { requester; responder; _ } -> [ requester; responder ]

let pp_event names ppf = function
  | Tau (p, l) -> Fmt.pf ppf "%s: %s" names.(p) l
  | Rendezvous { requester; req_label; responder; resp_label } ->
    Fmt.pf ppf "%s: %s <-> %s: %s" names.(requester) req_label names.(responder) resp_label

let make names procs =
  if Array.length names <> Array.length procs then invalid_arg "System.make: length mismatch";
  { names; procs }

let n_procs sys = Array.length sys.procs
let proc sys p = sys.procs.(p)
let name sys p = sys.names.(p)

(* Functional update of one or two processes. *)
let set1 sys p cfg =
  let procs = Array.copy sys.procs in
  procs.(p) <- cfg;
  { sys with procs }

let set2 sys p cfg_p q cfg_q =
  let procs = Array.copy sys.procs in
  procs.(p) <- cfg_p;
  procs.(q) <- cfg_q;
  { sys with procs }

(* All successors of a global state, with the event that produced each.

   First rule of Fig. 8: any process takes a tau step.  Second rule:
   a requester p and a distinct responder q synchronise; p's REQUEST
   computes alpha from p's state, q's RESPONSE non-deterministically picks a
   successor state and a value beta, and p's continuation absorbs beta. *)
let steps sys =
  let acc = ref [] in
  let n = n_procs sys in
  for p = n - 1 downto 0 do
    let cfg = sys.procs.(p) in
    List.iter
      (fun (l, cfg') -> acc := (Tau (p, l), set1 sys p cfg') :: !acc)
      (Com.tau_steps cfg);
    List.iter
      (fun (req_label, alpha, k) ->
        for q = 0 to n - 1 do
          if q <> p then
            List.iter
              (fun (resp_label, cfg_q', beta) ->
                let ev = Rendezvous { requester = p; req_label; responder = q; resp_label } in
                acc := (ev, set2 sys p (k beta) q cfg_q') :: !acc)
              (Com.responses alpha sys.procs.(q))
        done)
      (Com.requests cfg)
  done;
  !acc

(* Successors restricted to one scheduled process [p]: p's tau steps and the
   rendezvous in which p is the requester.  Responders are passive, matching
   the intuition that Sys is reactive; used by the random-walk scheduler. *)
let steps_of sys p =
  let acc = ref [] in
  let n = n_procs sys in
  let cfg = sys.procs.(p) in
  List.iter
    (fun (l, cfg') -> acc := (Tau (p, l), set1 sys p cfg') :: !acc)
    (Com.tau_steps cfg);
  List.iter
    (fun (req_label, alpha, k) ->
      for q = 0 to n - 1 do
        if q <> p then
          List.iter
            (fun (resp_label, cfg_q', beta) ->
              let ev = Rendezvous { requester = p; req_label; responder = q; resp_label } in
              acc := (ev, set2 sys p (k beta) q cfg_q') :: !acc)
            (Com.responses alpha sys.procs.(q))
      done)
    (Com.requests cfg);
  !acc

let deadlocked sys = steps sys = []

(* Normal form under definite local steps: run every process's definite tau
   steps to quiescence.  States in normal form never rest at a
   deterministic register/control operation; see Com.definite_tau for the
   soundness argument.  The checker explores normal forms only, which is
   the atomicity coarsening the paper's evaluation-context semantics
   licenses. *)
let normalize sys =
  let procs = Array.copy sys.procs in
  let changed = ref true in
  while !changed do
    changed := false;
    for p = 0 to Array.length procs - 1 do
      match Com.definite_tau procs.(p) with
      | Some cfg ->
        procs.(p) <- cfg;
        changed := true
      | None -> ()
    done
  done;
  { sys with procs }

(* The paper's [at p l]: does control of process p reside at label l? *)
let at sys p l = List.mem l (Com.at_labels sys.procs.(p))

(* Surgical replacement of one process's data state (testing and
   experiment drivers; the step functions never need it). *)
let map_data sys p f =
  let cfg = sys.procs.(p) in
  set1 sys p { cfg with Com.data = f cfg.Com.data }

(* Control fingerprint: the label spine of every process's frame stack.
   With globally unique labels this characterises global control state. *)
let control_fingerprint sys =
  Array.to_list (Array.map (fun cfg -> Com.stack_labels cfg.Com.stack) sys.procs)
