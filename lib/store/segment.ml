type entry = { fp : int; parent : int; event : int; meta : int }

type t = {
  path : string;
  shard : int;
  seq : int;
  n : int;
  max_depth : int;
  bloom : Bloom.t;
  index_fp : int array;  (* first fingerprint of each block *)
  index_off : int array;  (* block offset within the data region *)
  data_pos : int;  (* file offset of the data region *)
  data_len : int;
  disk_bytes : int;
}

let magic = "GCSEG001"
let block_size = 256

let path t = t.path
let shard t = t.shard
let seq t = t.seq
let length t = t.n
let max_depth t = t.max_depth
let disk_bytes t = t.disk_bytes

let mem_bytes t =
  Bloom.bytes t.bloom + (2 * 8 * Array.length t.index_fp) + 96 (* record + headers *)

let write ~path ~shard ~seq ~max_depth entries =
  let n = Array.length entries in
  let bloom = Bloom.create ~expected:n in
  let data = Buffer.create (32 * n) in
  let n_blocks = (n + block_size - 1) / block_size in
  let index_fp = Array.make (max 1 n_blocks) 0 in
  let index_off = Array.make (max 1 n_blocks) 0 in
  let prev = ref 0 in
  Array.iteri
    (fun i e ->
      if e.fp = 0 then invalid_arg "Segment.write: zero fingerprint";
      if i > 0 && e.fp <= !prev then invalid_arg "Segment.write: entries not sorted";
      if e.meta land 0xFFFFFFFF <> e.meta then invalid_arg "Segment.write: meta exceeds 32 bits";
      Bloom.add bloom e.fp;
      if i mod block_size = 0 then begin
        index_fp.(i / block_size) <- e.fp;
        index_off.(i / block_size) <- Buffer.length data;
        Codec.add_varint data e.fp
      end
      else Codec.add_varint data (e.fp - !prev);
      prev := e.fp;
      Codec.add_varint data e.parent;
      Codec.add_varint data e.event;
      Codec.add_varint data e.meta)
    entries;
  let header = Buffer.create 1024 in
  Codec.add_varint header shard;
  Codec.add_varint header seq;
  Codec.add_varint header n;
  Codec.add_varint header max_depth;
  Bloom.write header bloom;
  Codec.add_varint header n_blocks;
  for b = 0 to n_blocks - 1 do
    Codec.add_varint header index_fp.(b);
    Codec.add_varint header index_off.(b)
  done;
  Codec.add_varint header (Buffer.length data);
  let hlen = Buffer.create Codec.max_varint_bytes in
  Codec.add_varint hlen (Buffer.length header);
  let oc = open_out_bin path in
  output_string oc magic;
  Buffer.output_buffer oc hlen;
  Buffer.output_buffer oc header;
  Buffer.output_buffer oc data;
  flush oc;
  (* spilled entries must survive a crash once a checkpoint hard-links
     the segment, so pay the fsync at freeze time *)
  Unix.fsync (Unix.descr_of_out_channel oc);
  close_out oc;
  let data_pos = String.length magic + Buffer.length hlen + Buffer.length header in
  {
    path;
    shard;
    seq;
    n;
    max_depth;
    bloom;
    index_fp = Array.sub index_fp 0 n_blocks;
    index_off = Array.sub index_off 0 n_blocks;
    data_pos;
    data_len = Buffer.length data;
    disk_bytes = data_pos + Buffer.length data;
  }

let read_varint_ic ic =
  let v = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    let c = Char.code (input_char ic) in
    v := !v lor ((c land 0x7f) lsl !shift);
    shift := !shift + 7;
    if c land 0x80 = 0 then continue := false
  done;
  !v

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let m = really_input_string ic (String.length magic) in
      if m <> magic then failwith ("Segment.load: bad magic in " ^ path);
      let hlen = read_varint_ic ic in
      let header = Bytes.create hlen in
      really_input ic header 0 hlen;
      let data_pos = pos_in ic in
      let pos = 0 in
      let shard, pos = Codec.get_varint header pos in
      let seq, pos = Codec.get_varint header pos in
      let n, pos = Codec.get_varint header pos in
      let max_depth, pos = Codec.get_varint header pos in
      let bloom, pos = Bloom.read header pos in
      let n_blocks, pos = Codec.get_varint header pos in
      let index_fp = Array.make (max 1 n_blocks) 0 in
      let index_off = Array.make (max 1 n_blocks) 0 in
      let pos = ref pos in
      for b = 0 to n_blocks - 1 do
        let fp, p = Codec.get_varint header !pos in
        let off, p = Codec.get_varint header p in
        index_fp.(b) <- fp;
        index_off.(b) <- off;
        pos := p
      done;
      let data_len, _ = Codec.get_varint header !pos in
      {
        path;
        shard;
        seq;
        n;
        max_depth;
        bloom;
        index_fp;
        index_off;
        data_pos;
        data_len;
        disk_bytes = data_pos + data_len;
      })

(* Decode the [count] entries of the block stored in [buf], calling [f]
   on each; stops early when [f] returns false. *)
let decode_block buf count f =
  let pos = ref 0 in
  let prev = ref 0 in
  let i = ref 0 in
  let go = ref true in
  while !go && !i < count do
    let d, p = Codec.get_varint buf !pos in
    let fp = if !i = 0 then d else !prev + d in
    prev := fp;
    let parent, p = Codec.get_varint buf p in
    let event, p = Codec.get_varint buf p in
    let meta, p = Codec.get_varint buf p in
    pos := p;
    incr i;
    go := f { fp; parent; event; meta }
  done

let read_block t b =
  let off = t.index_off.(b) in
  let next = if b + 1 < Array.length t.index_off then t.index_off.(b + 1) else t.data_len in
  let buf = Bytes.create (next - off) in
  let ic = open_in_bin t.path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      seek_in ic (t.data_pos + off);
      really_input ic buf 0 (next - off));
  buf

let block_count t b = min block_size (t.n - (b * block_size))

let maybe t fp = t.n > 0 && Bloom.mem t.bloom fp

let find t fp =
  if t.n = 0 || not (Bloom.mem t.bloom fp) then None
  else if fp < t.index_fp.(0) then None
  else begin
    (* rightmost block whose first fingerprint is <= fp *)
    let lo = ref 0 and hi = ref (Array.length t.index_fp - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.index_fp.(mid) <= fp then lo := mid else hi := mid - 1
    done;
    let buf = read_block t !lo in
    let found = ref None in
    decode_block buf (block_count t !lo) (fun e ->
        if e.fp = fp then begin
          found := Some e;
          false
        end
        else e.fp < fp);
    !found
  end

let iter t f =
  if t.n > 0 then begin
    let data = Bytes.create t.data_len in
    let ic = open_in_bin t.path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        seek_in ic t.data_pos;
        really_input ic data 0 t.data_len);
    for b = 0 to Array.length t.index_off - 1 do
      let off = t.index_off.(b) in
      let next = if b + 1 < Array.length t.index_off then t.index_off.(b + 1) else t.data_len in
      decode_block (Bytes.sub data off (next - off)) (block_count t b) (fun e ->
          f e;
          true)
    done
  end

let entries t =
  let out = Array.make t.n { fp = 0; parent = 0; event = 0; meta = 0 } in
  let i = ref 0 in
  iter t (fun e ->
      out.(!i) <- e;
      incr i);
  out
