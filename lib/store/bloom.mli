(** Per-segment Bloom filters.

    Sized at ~10 bits per expected key (rounded up to a power of two, so
    effectively 8–16 bits/key) with [k = 7] probes by double hashing, for
    a false-positive rate around 1%.  A negative answer is definitive, so
    the hot membership path of the tiered store — "is this fingerprint in
    any frozen segment?" — stays RAM-only except for the rare positive.

    Filters are immutable once their segment is written; [add] is only
    used during segment construction. *)

type t

(** [create ~expected] for [expected] keys (>= 0). *)
val create : expected:int -> t

val add : t -> int -> unit
(** Insert a key (segment construction only; filters are immutable once
    their segment is written). *)

(** Definitive [false]; [true] with ~1% false positives. *)
val mem : t -> int -> bool

(** Resident size of the bit array in bytes. *)
val bytes : t -> int

(** Append the serialized filter (self-delimiting). *)
val write : Buffer.t -> t -> unit

(** [read b pos] parses a filter back; returns it and the position just
    past it. *)
val read : Bytes.t -> int -> t * int
