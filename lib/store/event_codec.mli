(** Packing CIMP events into one native int (moved here from
    [Check.Par_explore] so segments and checkpoints share one encoding).

    Labels are interned against the initial system's programs — every
    label a run can fire occurs in the initial frame stacks, the same
    property coverage-gap reporting relies on.  Layout, from bit 0:
    {v
      tau:        label(20) | pid(10)..(bits 20-29)            kind bit 62 = 0
      rendezvous: resp_label(20) | responder(10) | req_label(20, bits 30-49)
                  | requester(10, bits 50-59)                  kind bit 62 = 1
    v}
    Bit 62 is the sign bit of a 63-bit int, so packed rendezvous events
    are negative — the segment codec stores them as bit patterns. *)

type t

(** Raises [Invalid_argument] when the program has too many labels or
    processes to pack (2^20 / 2^10). *)
val of_system : ('a, 'v, 's) Cimp.System.t -> t

(** Raises [Invalid_argument] on a label absent from the initial
    program. *)
val encode : t -> Cimp.System.event -> int

val decode : t -> int -> Cimp.System.event
(** Inverse of {!encode} for ints {!encode} produced; the label interner
    resolves indices back to labels. *)
