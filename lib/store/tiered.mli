(** The tiered state store: the checker's seen-set behind a bounded
    memory budget.

    Tier 0 is the sharded open-addressing table the parallel explorer
    has always used — 64 independently-locked shards over unboxed int
    bigarrays, four words (32 bytes) per state: fingerprint, parent
    fingerprint, packed event, and a meta word (depth stamp |
    violated-invariant index | expanded bit).  Every operation,
    including the 70%-load doubling, runs entirely under the owning
    shard's mutex, so the lost-insert resize race is impossible by
    construction (the multi-domain hammer test drives dozens of
    concurrent resizes on one shard).

    With a [mem_budget], a shard whose measured occupancy
    (entries x {!entry_bytes}) crosses its slice of the budget freezes
    into a sorted, delta-compressed on-disk {!Segment} fronted by a
    resident Bloom filter, and its tier-0 table is reset.  Membership
    stays exact: a tier-0 miss consults each segment's Bloom filter
    (RAM) and pays a single-block disk read only on the rare positive,
    so a fresh insert is never misclassified.  When a shard accumulates
    [merge_fanout] segments they are merged into one (newest copy of a
    fingerprint wins), bounding lookup fan-out at the cost of a
    sequential rewrite.

    Mutation of a disk-resident entry (depth improvement, first
    expansion, violation marking) shadow-inserts the updated copy into
    tier 0; lookups consult tier 0 first and segments newest-first, so
    the newest copy always wins, and merges deduplicate the stale ones.
    Consequence: {!max_depth} may overstate the true BFS eccentricity
    after a depth improvement of a spilled entry (the deep stale copy is
    still on disk); verdict, invariant, counterexample length and state
    counts are unaffected, which is what the equivalence crosscheck
    pins. *)

type t

(** Verdict of an {!add}: [Fresh] (never seen), [Improved v] (seen, but
    this path is shorter; [v] is the recorded violated-invariant index,
    [-1] if none), or [Stale] (seen at an equal-or-shorter depth). *)
type add_result = Fresh | Improved of int | Stale

(** Spill/merge/probe observation hooks (for tracing spans); they run
    under the shard lock, so they must not call back into the store. *)
type hooks = {
  on_spill : shard:int -> entries:int -> bytes:int -> start_ns:int -> stop_ns:int -> unit;
  on_merge : shard:int -> segments:int -> entries:int -> start_ns:int -> stop_ns:int -> unit;
  on_disk_probe : shard:int -> hit:bool -> start_ns:int -> stop_ns:int -> unit;
}

val no_hooks : hooks
(** Hooks that do nothing (the default). *)

type stats = {
  spills : int;  (** shard freezes performed *)
  merges : int;  (** segment merges performed *)
  segments : int;  (** live segments right now *)
  spilled_entries : int;  (** entries written by freezes (cumulative) *)
  disk_probes : int;  (** segment reads that passed a Bloom filter *)
  disk_hits : int;  (** probes that found the fingerprint *)
  bloom_checks : int;  (** per-segment Bloom tests on the miss path *)
  bloom_negatives : int;  (** tests answered without touching disk *)
  resident_entries : int;  (** tier-0 entries across shards *)
  resident_bytes : int;  (** resident_entries x entry_bytes *)
  peak_resident_bytes : int;  (** sum of per-shard occupancy peaks *)
  disk_bytes : int;  (** live segment file bytes *)
  segment_mem_bytes : int;  (** resident Bloom + index bytes *)
}

val n_shards : int
(** Number of independently-locked shards (64); fingerprints are
    distributed by their low bits. *)

(** Bytes per tier-0 entry (4 words). *)
val entry_bytes : int

(** Largest violated-invariant index the meta words can carry (bounded
    by the 8-bit slot of the segment meta word). *)
val max_violation_index : int

(** [create ()] is the all-RAM store (bit-for-bit the old seen-set).
    [mem_budget] (bytes, > 0) arms spilling: each shard freezes when its
    occupancy reaches [mem_budget / n_shards] (with a small floor).
    Segments go to [spill_dir] (created if missing; a fresh temp
    directory when omitted).  [shard_cap] is the initial (and
    post-freeze) slots per shard, a power of two. *)
val create :
  ?shard_cap:int -> ?mem_budget:int -> ?spill_dir:string -> ?merge_fanout:int -> unit -> t

val set_hooks : t -> hooks -> unit
(** Install observation hooks (replacing {!no_hooks}); call before
    concurrent use begins. *)

(** The armed spill directory, if any. *)
val spill_dir : t -> string option

val mem_budget : t -> int
(** The armed resident-byte budget, 0 when spilling is off. *)

(** [add t fp ~parent ~event ~depth]: [Fresh] if [fp] is in neither
    tier, [Improved v] if present with a larger depth stamp (the triple
    is rewritten, shadow-inserting if the copy was on disk; [v] is the
    entry's violated-invariant index, -1 if none), [Stale] otherwise.
    [fp] must be non-zero. *)
val add : t -> int -> parent:int -> event:int -> depth:int -> add_result

(** Record that [fp] violates invariant [idx] (kept in the meta word so
    a later depth improvement can re-offer the violation). *)
val mark_violation : t -> int -> int -> unit

(** A task's claim to expand [fp] at stamp [depth]: [`Stale] when the
    entry has since improved below [depth], otherwise the entry's
    current depth, tagged [`First] exactly once per state so
    transition/deadlock counts are first-expansion-only. *)
val begin_expand : t -> int -> depth:int -> [ `Stale | `First of int | `Again of int ]

(** [(parent, packed event)] of a present fingerprint. *)
val find : t -> int -> (int * int) option

val depth_of : t -> int -> int option
(** Current depth stamp of a present fingerprint. *)

(** Distinct states stored (both tiers; shadow copies not counted). *)
val count : t -> int

(** Total tier-0 slots across shards. *)
val capacity : t -> int

(** Largest depth stamp on record; may overstate after a depth
    improvement of a spilled entry (see above). *)
val max_depth : t -> int

val locks : t -> Obs.Contention.lock array
(** The per-shard instrumented locks, for contention attribution. *)

(** Racy sums, safe to read concurrently (heartbeat gauges). *)
val resident_bytes : t -> int

val resident_bytes_per_shard : t -> int array
(** Racy per-shard occupancy gauges (heartbeat [bytes_resident.NN]). *)

val stats : t -> stats
(** Racy counter snapshot ({!type:stats}); exact once quiescent. *)

(** {1 Checkpoint support} — callers must guarantee quiescence (all
    workers parked); these take the shard locks but snapshot multi-shard
    state non-atomically. *)

(** Depth stamp carried by a segment-layout (32-bit) meta word. *)
val meta32_depth : int -> int

val meta32_violation : int -> int
(** Violated-invariant index carried by a segment-layout meta word, [-1]
    if the state violates no invariant (the slot stores [index + 1]). *)

val meta32_expanded : int -> bool
(** Expanded bit of a segment-layout meta word: the state's successors
    were generated (a closed run has it set on every entry). *)

val meta32_make : depth:int -> violation:int -> int
(** Pack a segment-layout meta word with the expanded bit set, for
    certificate writers that synthesize entries outside any store
    ([violation] is an index, [-1] for none).  Raises [Invalid_argument]
    if either field overflows its slot. *)

(** Tier-0 contents of one shard, sorted by fingerprint, meta packed to
    the 32-bit segment layout. *)
val tier0_dump : t -> shard:int -> Segment.entry array

(** Live segments of one shard, newest first. *)
val segments_of : t -> shard:int -> Segment.t list

(** [(distinct, next_seq)] of one shard. *)
val shard_meta : t -> shard:int -> int * int

(** Rebuild one shard from a snapshot: [tier0] raw entries (segment meta
    layout) are re-inserted, [segs] (newest first) attached as-is. *)
val restore_shard :
  t ->
  shard:int ->
  distinct:int ->
  next_seq:int ->
  tier0:Segment.entry array ->
  segs:Segment.t list ->
  unit

(** The spill directory, creating a fresh temp directory on demand when
    the store was created without one. *)
val ensure_spill_dir : t -> string
