(** Variable-length integer codec for the on-disk segment format.

    LEB128 over the *bit pattern* of the native int, shifted with
    logical [lsr]: a non-negative int below 2^7k costs k bytes, while
    ints with the sign bit set (structural fingerprints and packed
    rendezvous events both can carry bit 62) round-trip in at most 9
    bytes instead of looping forever under an arithmetic shift.  The
    codec is therefore total on the whole 63-bit int range. *)

val add_varint : Buffer.t -> int -> unit
(** Append one int's LEB128 bit-pattern encoding (1–9 bytes). *)

(** [get_varint b pos] decodes one varint at [pos]; returns the value and
    the position just past it. *)
val get_varint : Bytes.t -> int -> int * int

(** Upper bound on the encoded size of any int (9 bytes: ceil 63/7). *)
val max_varint_bytes : int
