(** Immutable sorted on-disk segments of seen-set entries.

    A segment is one frozen shard generation: entries sorted by
    fingerprint (plain int order), delta-compressed in 256-entry blocks,
    fronted by a Bloom filter and a block index that stay resident.  A
    membership probe therefore costs a Bloom test (RAM), and only on a
    positive a binary search of the resident index plus one [pread] of a
    single block.  File handles are not kept open: probes open, seek,
    read one block and close, so a run can accumulate hundreds of
    segments without exhausting descriptors.

    Layout: magic "GCSEG001", a varint header length, then the header
    (shard, seq, entry count, max depth, Bloom filter, block index as
    (first fingerprint, data offset) pairs, data length), then the data
    blocks.  All multi-byte integers are {!Codec} varints over the
    63-bit pattern, so negative fingerprints and packed events
    round-trip.  Within a block the first fingerprint is absolute and
    the rest are deltas from their predecessor (sorted, so the delta is
    positive except for the wrap-around of int overflow, which the
    pattern codec reproduces exactly). *)

type entry = {
  fp : int;  (** fingerprint, never 0 *)
  parent : int;  (** parent fingerprint, 0 for the root *)
  event : int;  (** packed generating event *)
  meta : int;  (** packed meta word; must fit 32 bits *)
}

type t

val path : t -> string
(** The segment's file path. *)

val shard : t -> int
(** The store shard this segment was frozen from. *)

(** Freeze sequence number within the shard; higher = newer. *)
val seq : t -> int

val length : t -> int
(** Number of entries. *)

(** Largest depth recorded in any entry's meta word at write time. *)
val max_depth : t -> int

(** On-disk file size in bytes. *)
val disk_bytes : t -> int

(** Resident footprint (Bloom filter + block index) in bytes. *)
val mem_bytes : t -> int

(** [write ~path ~shard ~seq ~max_depth entries] writes a segment from
    entries sorted by [fp] ascending (raises [Invalid_argument] if not,
    or if a meta word exceeds 32 bits), fsyncs it, and returns the open
    (resident-parts-loaded) handle. *)
val write : path:string -> shard:int -> seq:int -> max_depth:int -> entry array -> t

(** Load the resident parts of an existing segment file. *)
val load : string -> t

(** Bloom-only test: definitive [false], [true] with ~1% false
    positives.  Exposed so the tiered store can count Bloom rejections
    separately from real disk probes. *)
val maybe : t -> int -> bool

(** Exact membership probe: Bloom-gated single-block read. *)
val find : t -> int -> entry option

(** All entries in fingerprint order (one sequential read of the data
    region). *)
val iter : t -> (entry -> unit) -> unit

val entries : t -> entry array
(** All entries materialized as an array ({!iter} into a buffer) — for
    merges and certificate loading, not the probe path. *)
