(* Tier 0 below is the former Check.Par_explore.Seen, verbatim in its
   concurrency discipline: every operation, including the 70%-load
   doubling and now the freeze/merge paths, runs entirely under the
   owning shard's mutex, so two workers can never resize (or spill) the
   same shard concurrently and an insert can never land in a table a
   concurrent resize is about to discard.

   The RAM meta word packs, from bit 0: depth stamp (40 bits), violated
   invariant index + 1 (16 bits), expanded bit (bit 56).  The segment
   meta word is narrower — depth (23 bits), violation (8 bits), expanded
   (bit 31) — so spilling guards both widths; 2^23 BFS depth is far past
   anything an explicit-state run reaches. *)

let n_shards = 64
let shard_bits = 6 (* log2 n_shards *)
let entry_bytes = 32 (* 4 words: key, parent, event, meta *)
let depth_bits = 40
let depth_mask = (1 lsl depth_bits) - 1
let viol_bits = 16
let viol_shift = depth_bits
let viol_mask = (1 lsl viol_bits) - 1
let expanded_bit = 1 lsl (depth_bits + viol_bits)

(* segment (32-bit) meta layout *)
let d32_bits = 23
let d32_mask = (1 lsl d32_bits) - 1
let v32_shift = d32_bits
let v32_mask = 0xFF
let x32_bit = 1 lsl 31

(* bounded by the 8-bit violation slot of the segment layout *)
let max_violation_index = v32_mask - 2

let meta32_of_ram m =
  let d = m land depth_mask in
  let v = (m lsr viol_shift) land viol_mask in
  if d > d32_mask then invalid_arg "Tiered: depth stamp too large to spill";
  if v > v32_mask then invalid_arg "Tiered: violation index too large to spill";
  d lor (v lsl v32_shift) lor (if m land expanded_bit <> 0 then x32_bit else 0)

let ram_of_meta32 m =
  m land d32_mask
  lor (((m lsr v32_shift) land v32_mask) lsl viol_shift)
  lor (if m land x32_bit <> 0 then expanded_bit else 0)

type add_result = Fresh | Improved of int | Stale

type hooks = {
  on_spill : shard:int -> entries:int -> bytes:int -> start_ns:int -> stop_ns:int -> unit;
  on_merge : shard:int -> segments:int -> entries:int -> start_ns:int -> stop_ns:int -> unit;
  on_disk_probe : shard:int -> hit:bool -> start_ns:int -> stop_ns:int -> unit;
}

let no_hooks =
  {
    on_spill = (fun ~shard:_ ~entries:_ ~bytes:_ ~start_ns:_ ~stop_ns:_ -> ());
    on_merge = (fun ~shard:_ ~segments:_ ~entries:_ ~start_ns:_ ~stop_ns:_ -> ());
    on_disk_probe = (fun ~shard:_ ~hit:_ ~start_ns:_ ~stop_ns:_ -> ());
  }

type stats = {
  spills : int;
  merges : int;
  segments : int;
  spilled_entries : int;
  disk_probes : int;
  disk_hits : int;
  bloom_checks : int;
  bloom_negatives : int;
  resident_entries : int;
  resident_bytes : int;
  peak_resident_bytes : int;
  disk_bytes : int;
  segment_mem_bytes : int;
}

type shard = {
  id : int;
  lock : Obs.Contention.lock;
  mutable keys : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
  mutable parents : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
  mutable meta : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
  mutable events : int array;
  mutable count : int;  (* tier-0 occupancy *)
  mutable distinct : int;  (* distinct states (shadow copies excluded) *)
  mutable segs : Segment.t list;  (* newest first *)
  mutable next_seq : int;
  mutable spills : int;
  mutable merges : int;
  mutable spilled_entries : int;
  mutable disk_probes : int;
  mutable disk_hits : int;
  mutable bloom_checks : int;
  mutable bloom_negatives : int;
  mutable peak_bytes : int;
}

type t = {
  shards : shard array;
  initial_cap : int;
  budget : int;  (* bytes, 0 = never spill *)
  shard_budget : int;  (* bytes of tier-0 occupancy that trigger a freeze *)
  merge_fanout : int;
  mutable dir : string option;
  mutable hooks : hooks;
  mutable timed : bool;  (* pay clock reads around spill/merge/probe *)
}

let make_arr cap =
  let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout cap in
  Bigarray.Array1.fill a 0;
  a

let default_shard_cap = 1024

let temp_counter = Atomic.make 0

let fresh_temp_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec go () =
    let d =
      Filename.concat base
        (Printf.sprintf "gcstore-%d-%d" (Unix.getpid ()) (Atomic.fetch_and_add temp_counter 1))
    in
    match Unix.mkdir d 0o700 with
    | () -> d
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> go ()
  in
  go ()

let rec mkdirs d =
  if not (Sys.file_exists d) then begin
    mkdirs (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(shard_cap = default_shard_cap) ?(mem_budget = 0) ?spill_dir ?(merge_fanout = 8) ()
    =
  if shard_cap <= 0 || shard_cap land (shard_cap - 1) <> 0 then
    invalid_arg "Tiered.create: shard_cap must be a power of two";
  if merge_fanout < 2 then invalid_arg "Tiered.create: merge_fanout must be >= 2";
  let dir =
    if mem_budget > 0 then begin
      match spill_dir with
      | Some d ->
        mkdirs d;
        Some d
      | None -> Some (fresh_temp_dir ())
    end
    else (* keep an explicit dir so checkpoints of all-RAM runs can
            still attach resumed segments *)
      spill_dir
  in
  (* freeze when measured occupancy (entries x entry_bytes) crosses the
     shard's slice of the budget; the floor keeps degenerate budgets
     from writing near-empty segments *)
  let shard_budget = if mem_budget > 0 then max (16 * entry_bytes) (mem_budget / n_shards) else 0 in
  {
    shards =
      Array.init n_shards (fun id ->
          {
            id;
            lock = Obs.Contention.make_lock ();
            keys = make_arr shard_cap;
            parents = make_arr shard_cap;
            meta = make_arr shard_cap;
            events = Array.make shard_cap 0;
            count = 0;
            distinct = 0;
            segs = [];
            next_seq = 0;
            spills = 0;
            merges = 0;
            spilled_entries = 0;
            disk_probes = 0;
            disk_hits = 0;
            bloom_checks = 0;
            bloom_negatives = 0;
            peak_bytes = 0;
          });
    initial_cap = shard_cap;
    budget = mem_budget;
    shard_budget;
    merge_fanout;
    dir;
    hooks = no_hooks;
    timed = false;
  }

let set_hooks t hooks =
  t.hooks <- hooks;
  t.timed <- true

let spill_dir t = t.dir
let mem_budget t = t.budget

let ensure_spill_dir t =
  match t.dir with
  | Some d -> d
  | None ->
    let d = fresh_temp_dir () in
    t.dir <- Some d;
    d

let shard (t : t) fp = t.shards.(fp land (n_shards - 1))

(* Slot of [fp], or of the empty slot where it belongs; caller locks. *)
let probe keys cap fp =
  let mask = cap - 1 in
  let i = ref ((fp asr shard_bits) land mask) in
  let go = ref true in
  while !go do
    let k = Bigarray.Array1.unsafe_get keys !i in
    if k = 0 || k = fp then go := false else i := (!i + 1) land mask
  done;
  !i

let grow s =
  let old_cap = Bigarray.Array1.dim s.keys in
  let cap = 2 * old_cap in
  let keys = make_arr cap in
  let parents = make_arr cap in
  let meta = make_arr cap in
  let events = Array.make cap 0 in
  for i = 0 to old_cap - 1 do
    let k = Bigarray.Array1.unsafe_get s.keys i in
    if k <> 0 then begin
      let j = probe keys cap k in
      Bigarray.Array1.unsafe_set keys j k;
      Bigarray.Array1.unsafe_set parents j (Bigarray.Array1.unsafe_get s.parents i);
      Bigarray.Array1.unsafe_set meta j (Bigarray.Array1.unsafe_get s.meta i);
      events.(j) <- s.events.(i)
    end
  done;
  s.keys <- keys;
  s.parents <- parents;
  s.meta <- meta;
  s.events <- events

(* Insert a fingerprint known to be absent from tier 0; caller locks. *)
let tier0_insert s fp ~parent ~event ~meta =
  while 10 * (s.count + 1) > 7 * Bigarray.Array1.dim s.keys do
    grow s
  done;
  let i = probe s.keys (Bigarray.Array1.dim s.keys) fp in
  Bigarray.Array1.unsafe_set s.keys i fp;
  Bigarray.Array1.unsafe_set s.parents i parent;
  Bigarray.Array1.unsafe_set s.meta i meta;
  s.events.(i) <- event;
  s.count <- s.count + 1;
  let bytes = s.count * entry_bytes in
  if bytes > s.peak_bytes then s.peak_bytes <- bytes

let seg_path t s seq =
  Filename.concat (ensure_spill_dir t) (Printf.sprintf "shard%02d-%06d.seg" s.id seq)

(* Sorted tier-0 contents with segment-layout meta words; caller locks. *)
let dump_locked s =
  let arr = Array.make s.count { Segment.fp = 0; parent = 0; event = 0; meta = 0 } in
  let j = ref 0 in
  for i = 0 to Bigarray.Array1.dim s.keys - 1 do
    let k = Bigarray.Array1.unsafe_get s.keys i in
    if k <> 0 then begin
      arr.(!j) <-
        {
          Segment.fp = k;
          parent = Bigarray.Array1.unsafe_get s.parents i;
          event = s.events.(i);
          meta = meta32_of_ram (Bigarray.Array1.unsafe_get s.meta i);
        };
      incr j
    end
  done;
  Array.sort (fun (a : Segment.entry) b -> compare a.fp b.fp) arr;
  arr

let seg_max_depth entries =
  Array.fold_left (fun acc (e : Segment.entry) -> max acc (e.meta land d32_mask)) 0 entries

let merge_locked t s =
  let start_ns = if t.timed then Obs.Clock.monotonic_ns () else 0 in
  let old = s.segs in
  let n_old = List.length old in
  (* rank 0 = newest; on duplicate fingerprints the lowest rank (the
     shadow-updated copy) wins.  Transient memory is one shard's disk
     entries — 1/64 of the spilled total. *)
  let all =
    List.concat (List.mapi (fun r seg -> List.map (fun e -> (e, r)) (Array.to_list (Segment.entries seg))) old)
  in
  let arr = Array.of_list all in
  Array.sort
    (fun ((a : Segment.entry), ra) ((b : Segment.entry), rb) ->
      match compare a.fp b.fp with 0 -> compare ra rb | c -> c)
    arr;
  let kept = ref [] in
  let n_kept = ref 0 in
  Array.iter
    (fun ((e : Segment.entry), _) ->
      match !kept with
      | (prev : Segment.entry) :: _ when prev.fp = e.fp -> ()
      | _ ->
        kept := e :: !kept;
        incr n_kept)
    arr;
  let entries = Array.make !n_kept { Segment.fp = 0; parent = 0; event = 0; meta = 0 } in
  List.iteri (fun i e -> entries.(!n_kept - 1 - i) <- e) !kept;
  let seq = s.next_seq in
  s.next_seq <- seq + 1;
  let merged =
    Segment.write ~path:(seg_path t s seq) ~shard:s.id ~seq ~max_depth:(seg_max_depth entries)
      entries
  in
  s.segs <- [ merged ];
  s.merges <- s.merges + 1;
  List.iter (fun seg -> try Sys.remove (Segment.path seg) with Sys_error _ -> ()) old;
  if t.timed then
    t.hooks.on_merge ~shard:s.id ~segments:n_old ~entries:!n_kept ~start_ns
      ~stop_ns:(Obs.Clock.monotonic_ns ())

let freeze_locked t s =
  let start_ns = if t.timed then Obs.Clock.monotonic_ns () else 0 in
  let entries = dump_locked s in
  let seq = s.next_seq in
  s.next_seq <- seq + 1;
  let seg =
    Segment.write ~path:(seg_path t s seq) ~shard:s.id ~seq ~max_depth:(seg_max_depth entries)
      entries
  in
  s.segs <- seg :: s.segs;
  s.spills <- s.spills + 1;
  s.spilled_entries <- s.spilled_entries + Array.length entries;
  s.keys <- make_arr t.initial_cap;
  s.parents <- make_arr t.initial_cap;
  s.meta <- make_arr t.initial_cap;
  s.events <- Array.make t.initial_cap 0;
  s.count <- 0;
  if t.timed then
    t.hooks.on_spill ~shard:s.id ~entries:(Array.length entries) ~bytes:(Segment.disk_bytes seg)
      ~start_ns
      ~stop_ns:(Obs.Clock.monotonic_ns ());
  if List.length s.segs >= t.merge_fanout then merge_locked t s

let maybe_spill t s =
  if t.shard_budget > 0 && s.count * entry_bytes >= t.shard_budget then freeze_locked t s

(* Exact membership in the frozen tiers; caller locks.  Newest segment
   first, so a shadow-spilled copy wins over its stale ancestors. *)
let seg_find t s fp =
  let rec go = function
    | [] -> None
    | seg :: rest ->
      s.bloom_checks <- s.bloom_checks + 1;
      if not (Segment.maybe seg fp) then begin
        s.bloom_negatives <- s.bloom_negatives + 1;
        go rest
      end
      else begin
        s.disk_probes <- s.disk_probes + 1;
        let start_ns = if t.timed then Obs.Clock.monotonic_ns () else 0 in
        let r = Segment.find seg fp in
        if t.timed then
          t.hooks.on_disk_probe ~shard:s.id ~hit:(r <> None) ~start_ns
            ~stop_ns:(Obs.Clock.monotonic_ns ());
        match r with
        | Some e ->
          s.disk_hits <- s.disk_hits + 1;
          Some e
        | None -> go rest
      end
  in
  go s.segs

let add t fp ~parent ~event ~depth =
  let s = shard t fp in
  Obs.Contention.lock s.lock;
  let i = probe s.keys (Bigarray.Array1.dim s.keys) fp in
  let r =
    if Bigarray.Array1.unsafe_get s.keys i = fp then begin
      let m = Bigarray.Array1.unsafe_get s.meta i in
      if depth < m land depth_mask then begin
        Bigarray.Array1.unsafe_set s.meta i ((m land lnot depth_mask) lor depth);
        Bigarray.Array1.unsafe_set s.parents i parent;
        s.events.(i) <- event;
        Improved (((m lsr viol_shift) land viol_mask) - 1)
      end
      else Stale
    end
    else begin
      match seg_find t s fp with
      | Some e ->
        let m = ram_of_meta32 e.Segment.meta in
        if depth < m land depth_mask then begin
          (* shadow-insert the improved copy; tier 0 is consulted first,
             so the stale disk copy is dead until a merge collects it *)
          tier0_insert s fp ~parent ~event ~meta:((m land lnot depth_mask) lor depth);
          maybe_spill t s;
          Improved (((m lsr viol_shift) land viol_mask) - 1)
        end
        else Stale
      | None ->
        tier0_insert s fp ~parent ~event ~meta:depth;
        s.distinct <- s.distinct + 1;
        maybe_spill t s;
        Fresh
    end
  in
  Obs.Contention.unlock s.lock;
  r

let mark_violation t fp idx =
  let s = shard t fp in
  Obs.Contention.lock s.lock;
  let i = probe s.keys (Bigarray.Array1.dim s.keys) fp in
  if Bigarray.Array1.unsafe_get s.keys i = fp then begin
    let m = Bigarray.Array1.unsafe_get s.meta i in
    Bigarray.Array1.unsafe_set s.meta i
      ((m land lnot (viol_mask lsl viol_shift)) lor ((idx + 1) lsl viol_shift))
  end
  else begin
    match seg_find t s fp with
    | Some e ->
      let m = ram_of_meta32 e.Segment.meta in
      tier0_insert s fp ~parent:e.Segment.parent ~event:e.Segment.event
        ~meta:((m land lnot (viol_mask lsl viol_shift)) lor ((idx + 1) lsl viol_shift));
      maybe_spill t s
    | None -> ()
  end;
  Obs.Contention.unlock s.lock

let begin_expand t fp ~depth =
  let s = shard t fp in
  Obs.Contention.lock s.lock;
  let i = probe s.keys (Bigarray.Array1.dim s.keys) fp in
  let r =
    if Bigarray.Array1.unsafe_get s.keys i = fp then begin
      let m = Bigarray.Array1.unsafe_get s.meta i in
      let d = m land depth_mask in
      if d < depth then `Stale
      else if m land expanded_bit = 0 then begin
        Bigarray.Array1.unsafe_set s.meta i (m lor expanded_bit);
        `First d
      end
      else `Again d
    end
    else begin
      match seg_find t s fp with
      | Some e ->
        let m = ram_of_meta32 e.Segment.meta in
        let d = m land depth_mask in
        if d < depth then `Stale
        else if m land expanded_bit = 0 then begin
          tier0_insert s fp ~parent:e.Segment.parent ~event:e.Segment.event
            ~meta:(m lor expanded_bit);
          maybe_spill t s;
          `First d
        end
        else `Again d
      | None -> `Stale
    end
  in
  Obs.Contention.unlock s.lock;
  r

let find t fp =
  let s = shard t fp in
  Obs.Contention.lock s.lock;
  let i = probe s.keys (Bigarray.Array1.dim s.keys) fp in
  let r =
    if Bigarray.Array1.unsafe_get s.keys i = fp then
      Some (Bigarray.Array1.unsafe_get s.parents i, s.events.(i))
    else
      match seg_find t s fp with
      | Some e -> Some (e.Segment.parent, e.Segment.event)
      | None -> None
  in
  Obs.Contention.unlock s.lock;
  r

let depth_of t fp =
  let s = shard t fp in
  Obs.Contention.lock s.lock;
  let i = probe s.keys (Bigarray.Array1.dim s.keys) fp in
  let r =
    if Bigarray.Array1.unsafe_get s.keys i = fp then
      Some (Bigarray.Array1.unsafe_get s.meta i land depth_mask)
    else
      match seg_find t s fp with
      | Some e -> Some (ram_of_meta32 e.Segment.meta land depth_mask)
      | None -> None
  in
  Obs.Contention.unlock s.lock;
  r

let count t = Array.fold_left (fun acc s -> acc + s.distinct) 0 t.shards
let capacity t = Array.fold_left (fun acc s -> acc + Bigarray.Array1.dim s.keys) 0 t.shards

let max_depth t =
  let best = ref 0 in
  Array.iter
    (fun s ->
      for i = 0 to Bigarray.Array1.dim s.keys - 1 do
        if Bigarray.Array1.unsafe_get s.keys i <> 0 then
          best := max !best (Bigarray.Array1.unsafe_get s.meta i land depth_mask)
      done;
      List.iter (fun seg -> best := max !best (Segment.max_depth seg)) s.segs)
    t.shards;
  !best

let locks t = Array.map (fun s -> s.lock) t.shards
let resident_bytes t = Array.fold_left (fun acc s -> acc + (s.count * entry_bytes)) 0 t.shards
let resident_bytes_per_shard t = Array.map (fun s -> s.count * entry_bytes) t.shards

let stats t =
  Array.fold_left
    (fun (acc : stats) s ->
      let seg_disk = List.fold_left (fun a seg -> a + Segment.disk_bytes seg) 0 s.segs in
      let seg_mem = List.fold_left (fun a seg -> a + Segment.mem_bytes seg) 0 s.segs in
      {
        spills = acc.spills + s.spills;
        merges = acc.merges + s.merges;
        segments = acc.segments + List.length s.segs;
        spilled_entries = acc.spilled_entries + s.spilled_entries;
        disk_probes = acc.disk_probes + s.disk_probes;
        disk_hits = acc.disk_hits + s.disk_hits;
        bloom_checks = acc.bloom_checks + s.bloom_checks;
        bloom_negatives = acc.bloom_negatives + s.bloom_negatives;
        resident_entries = acc.resident_entries + s.count;
        resident_bytes = acc.resident_bytes + (s.count * entry_bytes);
        peak_resident_bytes = acc.peak_resident_bytes + s.peak_bytes;
        disk_bytes = acc.disk_bytes + seg_disk;
        segment_mem_bytes = acc.segment_mem_bytes + seg_mem;
      })
    {
      spills = 0;
      merges = 0;
      segments = 0;
      spilled_entries = 0;
      disk_probes = 0;
      disk_hits = 0;
      bloom_checks = 0;
      bloom_negatives = 0;
      resident_entries = 0;
      resident_bytes = 0;
      peak_resident_bytes = 0;
      disk_bytes = 0;
      segment_mem_bytes = 0;
    }
    t.shards

(* -- checkpoint support ---------------------------------------------------- *)

let meta32_depth m = m land d32_mask
let meta32_violation m = ((m lsr v32_shift) land v32_mask) - 1
let meta32_expanded m = m land x32_bit <> 0
let meta32_make ~depth ~violation =
  if depth > d32_mask then invalid_arg "Tiered.meta32_make: depth too large";
  if violation > max_violation_index then
    invalid_arg "Tiered.meta32_make: violation index too large";
  (depth land d32_mask) lor ((violation + 1) lsl v32_shift) lor x32_bit

let tier0_dump t ~shard =
  let s = t.shards.(shard) in
  Obs.Contention.with_lock s.lock (fun () -> dump_locked s)

let segments_of t ~shard =
  let s = t.shards.(shard) in
  Obs.Contention.with_lock s.lock (fun () -> s.segs)

let shard_meta t ~shard =
  let s = t.shards.(shard) in
  Obs.Contention.with_lock s.lock (fun () -> (s.distinct, s.next_seq))

let restore_shard t ~shard ~distinct ~next_seq ~tier0 ~segs =
  let s = t.shards.(shard) in
  Obs.Contention.with_lock s.lock (fun () ->
      Array.iter
        (fun (e : Segment.entry) ->
          tier0_insert s e.fp ~parent:e.parent ~event:e.event ~meta:(ram_of_meta32 e.meta))
        tier0;
      s.segs <- segs;
      s.distinct <- distinct;
      s.next_seq <- next_seq)
