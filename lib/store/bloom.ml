type t = { k : int; mask : int; bits : Bytes.t }

(* Two independent probe streams by double hashing: idx_i = h1 + i*h2.
   The mixers are truncated splitmix-style multiply-xorshift rounds;
   fingerprints are already well-mixed FNV words, but events of one run
   share high bits, so re-mixing is cheap insurance.  Constants fit the
   63-bit int range. *)
let mix x =
  let x = x lxor (x lsr 33) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 29) in
  let x = x * 0x1B03738712FAD17 in
  x lxor (x lsr 32)

let bits_per_key = 10
let k_probes = 7

let create ~expected =
  if expected < 0 then invalid_arg "Bloom.create: negative expected count";
  let want = max 64 (expected * bits_per_key) in
  let m = ref 64 in
  while !m < want do
    m := !m * 2
  done;
  { k = k_probes; mask = !m - 1; bits = Bytes.make (!m / 8) '\000' }

let probes t fp f =
  let h1 = mix fp in
  let h2 = mix (fp lxor 0x9E3779B9) lor 1 in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < t.k do
    let idx = (h1 + (!i * h2)) land t.mask in
    ok := f (idx lsr 3) (idx land 7);
    incr i
  done;
  !ok

let add t fp =
  ignore
    (probes t fp (fun byte bit ->
         Bytes.unsafe_set t.bits byte
           (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.bits byte) lor (1 lsl bit)));
         true))

let mem t fp =
  probes t fp (fun byte bit -> Char.code (Bytes.unsafe_get t.bits byte) land (1 lsl bit) <> 0)

let bytes t = Bytes.length t.bits

let write b t =
  Codec.add_varint b t.k;
  Codec.add_varint b (Bytes.length t.bits);
  Buffer.add_bytes b t.bits

let read b pos =
  let k, pos = Codec.get_varint b pos in
  let len, pos = Codec.get_varint b pos in
  let bits = Bytes.sub b pos len in
  ({ k; mask = (len * 8) - 1; bits }, pos + len)
