(* LEB128 over the 63-bit pattern.  [lsr] (not [asr]) drives the encode
   loop so negative ints — structural fingerprints and packed rendezvous
   events both use bit 62 — terminate in <= 9 groups. *)

let max_varint_bytes = 9

let add_varint b v =
  let v = ref v in
  let continue = ref true in
  while !continue do
    let low = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char b (Char.unsafe_chr low);
      continue := false
    end
    else Buffer.add_char b (Char.unsafe_chr (low lor 0x80))
  done

let get_varint b pos =
  let v = ref 0 in
  let shift = ref 0 in
  let pos = ref pos in
  let continue = ref true in
  while !continue do
    let c = Char.code (Bytes.get b !pos) in
    incr pos;
    v := !v lor ((c land 0x7f) lsl !shift);
    shift := !shift + 7;
    if c land 0x80 = 0 then continue := false
  done;
  (!v, !pos)
