let label_bits = 20
let pid_bits = 10

type t = { ids : (Cimp.Label.t, int) Hashtbl.t; labels : Cimp.Label.t array }

let of_system sys =
  let ids = Hashtbl.create 256 in
  let rev = ref [] in
  let n = ref 0 in
  for p = 0 to Cimp.System.n_procs sys - 1 do
    List.iter
      (fun l ->
        if not (Hashtbl.mem ids l) then begin
          Hashtbl.add ids l !n;
          rev := l :: !rev;
          incr n
        end)
      (List.concat_map Cimp.Com.labels (Cimp.System.proc sys p).Cimp.Com.stack)
  done;
  if !n >= 1 lsl label_bits then invalid_arg "Event_codec: too many labels to pack";
  if Cimp.System.n_procs sys >= 1 lsl pid_bits then
    invalid_arg "Event_codec: too many processes to pack";
  { ids; labels = Array.of_list (List.rev !rev) }

let label_id t l =
  match Hashtbl.find_opt t.ids l with
  | Some i -> i
  | None -> invalid_arg ("Event_codec: label not in the initial program: " ^ l)

let encode t = function
  | Cimp.System.Tau (p, l) -> (p lsl label_bits) lor label_id t l
  | Cimp.System.Rendezvous { requester; req_label; responder; resp_label } ->
    (1 lsl 62)
    lor (requester lsl 50)
    lor (label_id t req_label lsl 30)
    lor (responder lsl label_bits)
    lor label_id t resp_label

let decode t code =
  let lmask = (1 lsl label_bits) - 1 in
  let pmask = (1 lsl pid_bits) - 1 in
  if (code lsr 62) land 1 = 0 then
    Cimp.System.Tau ((code lsr label_bits) land pmask, t.labels.(code land lmask))
  else
    Cimp.System.Rendezvous
      {
        requester = (code lsr 50) land pmask;
        req_label = t.labels.((code lsr 30) land lmask);
        responder = (code lsr label_bits) land pmask;
        resp_label = t.labels.(code land lmask);
      }
