(** Atomic checkpoints of an exploration, on the segment format.

    A checkpoint directory holds numbered snapshots [snap-N] plus a
    [MANIFEST.json] naming the latest complete one.  A snapshot is
    self-contained: every live segment hard-linked in (segments are
    immutable and fsynced at freeze time, so a link is a durable copy;
    falls back to a byte copy across filesystems), the tier-0 contents
    of every shard dumped as per-shard segment files, and a [state.json]
    with the counters, the best-violation cell, the frontier (as
    (fingerprint, depth) pairs per worker — states are replayed from
    parent chains at resume, because CIMP systems embed closures and
    cannot be marshalled), the coverage set, and the tool configuration
    echoed verbatim.

    Atomicity protocol: everything is written into a [tmp-snap]
    directory and fsynced, the directory is renamed to [snap-N], and
    only then is [MANIFEST.json] replaced (write-tmp + rename, fsync).
    A crash at any point leaves the manifest naming the previous
    complete snapshot; stale [tmp-snap] and superseded [snap-K]
    directories are garbage-collected on the next write. *)

type snapshot = {
  seq : int;  (** this snapshot's sequence number *)
  states : int;
  transitions : int;
  deadlocks : int;
  truncated : bool;
  elapsed_s : float;  (** exploration seconds before the snapshot *)
  best : (int * int * int) option;  (** best violation: depth, fp, invariant index *)
  frontier : (int * int) list array;  (** (fp, depth) tasks per worker *)
  covered : (int * string) list;  (** coverage pairs when tracking was on *)
  config : Obs.Json.t;  (** tool configuration, echoed verbatim *)
  store : Tiered.t;  (** the rebuilt store (populated on {!load} only) *)
}

(** Write snapshot [seq] of [store] (must be quiescent) into [dir]. *)
val write :
  dir:string ->
  seq:int ->
  config:Obs.Json.t ->
  store:Tiered.t ->
  states:int ->
  transitions:int ->
  deadlocks:int ->
  truncated:bool ->
  elapsed_s:float ->
  best:(int * int * int) option ->
  frontier:(int * int) list array ->
  covered:(int * string) list ->
  unit

(** Latest complete snapshot's sequence number and echoed configuration,
    without loading the store (so a resuming tool can rebuild the model
    first). *)
val manifest : string -> (int * Obs.Json.t, string) result

(** Load the latest complete snapshot.  The store is rebuilt with the
    given parameters (normally those echoed in the manifest config);
    snapshot segments are hard-linked into the live spill directory, so
    later merges can never destroy the snapshot's own files. *)
val load :
  ?shard_cap:int ->
  ?mem_budget:int ->
  ?spill_dir:string ->
  ?merge_fanout:int ->
  string ->
  (snapshot, string) result
