type snapshot = {
  seq : int;
  states : int;
  transitions : int;
  deadlocks : int;
  truncated : bool;
  elapsed_s : float;
  best : (int * int * int) option;
  frontier : (int * int) list array;
  covered : (int * string) list;
  config : Obs.Json.t;
  store : Tiered.t;
}

let manifest_name = "MANIFEST.json"

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let link_or_copy src dst =
  try Unix.link src dst
  with Unix.Unix_error _ ->
    let ic = open_in_bin src in
    let oc = open_out_bin dst in
    Fun.protect
      ~finally:(fun () ->
        close_in_noerr ic;
        close_out_noerr oc)
      (fun () ->
        let buf = Bytes.create 65536 in
        let rec go () =
          let n = input ic buf 0 (Bytes.length buf) in
          if n > 0 then begin
            output oc buf 0 n;
            go ()
          end
        in
        go ();
        flush oc;
        Unix.fsync (Unix.descr_of_out_channel oc))

let fsync_path path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc contents;
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc))

let t0_name shard = Printf.sprintf "t0-%02d.seg" shard

let snap_name seq = "snap-" ^ string_of_int seq

let write ~dir ~seq ~config ~store ~states ~transitions ~deadlocks ~truncated ~elapsed_s ~best
    ~frontier ~covered =
  let rec mkdirs d =
    if not (Sys.file_exists d) then begin
      mkdirs (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  mkdirs dir;
  let tmp = Filename.concat dir "tmp-snap" in
  rm_rf tmp;
  Unix.mkdir tmp 0o755;
  let shards = ref [] in
  for shard = Tiered.n_shards - 1 downto 0 do
    let entries = Tiered.tier0_dump store ~shard in
    let t0 =
      if Array.length entries = 0 then Obs.Json.Null
      else begin
        let max_depth =
          Array.fold_left
            (fun acc (e : Segment.entry) -> max acc (Tiered.meta32_depth e.meta))
            0 entries
        in
        let name = t0_name shard in
        ignore
          (Segment.write ~path:(Filename.concat tmp name) ~shard ~seq:0 ~max_depth entries);
        Obs.Json.String name
      end
    in
    let segs = Tiered.segments_of store ~shard in
    let seg_names =
      List.map
        (fun seg ->
          let name = Filename.basename (Segment.path seg) in
          let dst = Filename.concat tmp name in
          if not (Sys.file_exists dst) then link_or_copy (Segment.path seg) dst;
          Obs.Json.String name)
        segs
    in
    let distinct, next_seq = Tiered.shard_meta store ~shard in
    shards :=
      Obs.Json.Obj
        [
          ("distinct", Obs.Json.Int distinct);
          ("next_seq", Obs.Json.Int next_seq);
          ("tier0", t0);
          ("segs", Obs.Json.List seg_names);
        ]
      :: !shards
  done;
  let pair_list l f = Obs.Json.List (List.map f l) in
  let state =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Int 1);
        ("seq", Obs.Json.Int seq);
        ("states", Obs.Json.Int states);
        ("transitions", Obs.Json.Int transitions);
        ("deadlocks", Obs.Json.Int deadlocks);
        ("truncated", Obs.Json.Bool truncated);
        ("elapsed_s", Obs.Json.Float elapsed_s);
        ( "best",
          match best with
          | None -> Obs.Json.Null
          | Some (depth, fp, inv) ->
            Obs.Json.Obj
              [ ("depth", Obs.Json.Int depth); ("fp", Obs.Json.Int fp); ("inv", Obs.Json.Int inv) ]
        );
        ( "frontier",
          Obs.Json.List
            (Array.to_list
               (Array.map
                  (fun tasks ->
                    pair_list tasks (fun (fp, d) ->
                        Obs.Json.List [ Obs.Json.Int fp; Obs.Json.Int d ]))
                  frontier)) );
        ( "covered",
          pair_list covered (fun (p, l) ->
              Obs.Json.List [ Obs.Json.Int p; Obs.Json.String l ]) );
        ("config", config);
        ("shards", Obs.Json.List !shards);
      ]
  in
  write_file (Filename.concat tmp "state.json") (Obs.Json.to_string state);
  fsync_path tmp;
  let final = Filename.concat dir (snap_name seq) in
  rm_rf final;
  Unix.rename tmp final;
  fsync_path dir;
  let manifest =
    Obs.Json.Obj
      [
        ("schema", Obs.Json.Int 1);
        ("latest", Obs.Json.String (snap_name seq));
        ("seq", Obs.Json.Int seq);
        ("config", config);
      ]
  in
  let mtmp = Filename.concat dir "MANIFEST.tmp" in
  write_file mtmp (Obs.Json.to_string manifest);
  Unix.rename mtmp (Filename.concat dir manifest_name);
  fsync_path dir;
  (* superseded snapshots: best-effort garbage collection *)
  Array.iter
    (fun e ->
      if e <> snap_name seq && String.length e > 5 && String.sub e 0 5 = "snap-" then
        rm_rf (Filename.concat dir e))
    (Sys.readdir dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let manifest dir =
  let path = Filename.concat dir manifest_name in
  if not (Sys.file_exists path) then Error ("no " ^ manifest_name ^ " in " ^ dir)
  else
    match Obs.Json.of_string (read_file path) with
    | Error e -> Error ("bad manifest: " ^ e)
    | Ok j -> (
      match
        (Option.bind (Obs.Json.member "seq" j) Obs.Json.to_int, Obs.Json.member "config" j)
      with
      | Some seq, Some config -> Ok (seq, config)
      | _ -> Error "manifest missing seq/config")

let load ?shard_cap ?mem_budget ?spill_dir ?merge_fanout dir =
  let ( let* ) = Result.bind in
  let* _seq, _config = manifest dir in
  let path = Filename.concat dir manifest_name in
  let* j = Result.map_error (fun e -> "bad manifest: " ^ e) (Obs.Json.of_string (read_file path)) in
  let* latest =
    match Option.bind (Obs.Json.member "latest" j) Obs.Json.to_string_opt with
    | Some l -> Ok l
    | None -> Error "manifest missing latest"
  in
  let sdir = Filename.concat dir latest in
  let spath = Filename.concat sdir "state.json" in
  if not (Sys.file_exists spath) then Error ("snapshot " ^ latest ^ " has no state.json")
  else
    let* st = Result.map_error (fun e -> "bad state.json: " ^ e) (Obs.Json.of_string (read_file spath)) in
    let int_field name =
      match Option.bind (Obs.Json.member name st) Obs.Json.to_int with
      | Some v -> Ok v
      | None -> Error ("state.json missing " ^ name)
    in
    let* seq = int_field "seq" in
    let* states = int_field "states" in
    let* transitions = int_field "transitions" in
    let* deadlocks = int_field "deadlocks" in
    let truncated =
      Option.value ~default:false (Option.bind (Obs.Json.member "truncated" st) Obs.Json.to_bool)
    in
    let elapsed_s =
      Option.value ~default:0. (Option.bind (Obs.Json.member "elapsed_s" st) Obs.Json.to_float)
    in
    let best =
      match Obs.Json.member "best" st with
      | Some (Obs.Json.Obj _ as b) -> (
        match
          ( Option.bind (Obs.Json.member "depth" b) Obs.Json.to_int,
            Option.bind (Obs.Json.member "fp" b) Obs.Json.to_int,
            Option.bind (Obs.Json.member "inv" b) Obs.Json.to_int )
        with
        | Some d, Some fp, Some i -> Some (d, fp, i)
        | _ -> None)
      | _ -> None
    in
    let* frontier =
      match Option.bind (Obs.Json.member "frontier" st) Obs.Json.to_list with
      | None -> Error "state.json missing frontier"
      | Some lists ->
        let parse_tasks l =
          match Obs.Json.to_list l with
          | None -> []
          | Some tasks ->
            List.filter_map
              (fun tj ->
                match Obs.Json.to_list tj with
                | Some [ fpj; dj ] -> (
                  match (Obs.Json.to_int fpj, Obs.Json.to_int dj) with
                  | Some fp, Some d -> Some (fp, d)
                  | _ -> None)
                | _ -> None)
              tasks
        in
        Ok (Array.of_list (List.map parse_tasks lists))
    in
    let covered =
      match Option.bind (Obs.Json.member "covered" st) Obs.Json.to_list with
      | None -> []
      | Some pairs ->
        List.filter_map
          (fun pj ->
            match Obs.Json.to_list pj with
            | Some [ p; l ] -> (
              match (Obs.Json.to_int p, Obs.Json.to_string_opt l) with
              | Some p, Some l -> Some (p, l)
              | _ -> None)
            | _ -> None)
          pairs
    in
    let config = Option.value ~default:Obs.Json.Null (Obs.Json.member "config" st) in
    let* shard_list =
      match Option.bind (Obs.Json.member "shards" st) Obs.Json.to_list with
      | Some l when List.length l = Tiered.n_shards -> Ok l
      | Some l ->
        Error
          (Printf.sprintf "state.json has %d shards, expected %d" (List.length l)
             Tiered.n_shards)
      | None -> Error "state.json missing shards"
    in
    let store = Tiered.create ?shard_cap ?mem_budget ?spill_dir ?merge_fanout () in
    let has_segs =
      List.exists
        (fun sh ->
          match Option.bind (Obs.Json.member "segs" sh) Obs.Json.to_list with
          | Some (_ :: _) -> true
          | _ -> false)
        shard_list
    in
    let live_dir = if has_segs then Some (Tiered.ensure_spill_dir store) else None in
    try
      List.iteri
        (fun shard sh ->
          let distinct =
            Option.value ~default:0 (Option.bind (Obs.Json.member "distinct" sh) Obs.Json.to_int)
          in
          let next_seq =
            Option.value ~default:0 (Option.bind (Obs.Json.member "next_seq" sh) Obs.Json.to_int)
          in
          let tier0 =
            match Option.bind (Obs.Json.member "tier0" sh) Obs.Json.to_string_opt with
            | None -> [||]
            | Some name -> Segment.entries (Segment.load (Filename.concat sdir name))
          in
          let segs =
            match Option.bind (Obs.Json.member "segs" sh) Obs.Json.to_list with
            | None -> []
            | Some names ->
              List.filter_map
                (fun nj ->
                  Option.map
                    (fun name ->
                      let live =
                        match live_dir with
                        | Some d ->
                          let dst = Filename.concat d name in
                          if not (Sys.file_exists dst) then
                            link_or_copy (Filename.concat sdir name) dst;
                          dst
                        | None -> Filename.concat sdir name
                      in
                      Segment.load live)
                    (Obs.Json.to_string_opt nj))
                names
          in
          Tiered.restore_shard store ~shard ~distinct ~next_seq ~tier0 ~segs)
        shard_list;
      Ok
        {
          seq;
          states;
          transitions;
          deadlocks;
          truncated;
          elapsed_s;
          best;
          frontier;
          covered;
          config;
          store;
        }
    with
    | Sys_error e -> Error ("snapshot load failed: " ^ e)
    | Failure e -> Error ("snapshot load failed: " ^ e)
