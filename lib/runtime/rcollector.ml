(* The concrete collector thread: Fig. 2 as running code.

   One call to [cycle] performs a full mark-sweep cycle — the four no-op
   initialization handshakes, the root-marking handshake, the mark loop
   with its termination handshakes, and the sweep.  [run] loops cycles
   until the harness raises the stop flag. *)

open Rshared

let hs_span_name = function
  | Hs_none -> "hs-none"
  | Hs_nop -> "hs-nop"
  | Hs_get_roots -> "hs-get-roots"
  | Hs_get_work -> "hs-get-work"

let tracing sh = Obs.Tracing.enabled sh.tracer && Obs.Tracing.lanes sh.tracer >= 1

let handshake sh typ =
  let t0_ns = Obs.Clock.monotonic_ns () in
  Array.iteri
    (fun i slot ->
      (* stamp before the request is visible, so a mutator that sees the
         slot set is guaranteed to read this round's timestamp *)
      Atomic.set sh.lat.hs_req_ns.(i) t0_ns;
      Atomic.set slot typ)
    sh.hs_req;
  Array.iter
    (fun slot ->
      while Atomic.get slot <> Hs_none do
        Domain.cpu_relax ()
      done)
    sh.hs_req;
  (* round latency: a ragged handshake is only done once the slowest
     mutator acked, so this is the collector-observed stall.  Single
     writer (the collector), so a plain histogram suffices. *)
  let t1_ns = Obs.Clock.monotonic_ns () in
  let dt_ns = t1_ns - t0_ns in
  let dt = float_of_int dt_ns *. 1e-9 in
  if tracing sh then
    Obs.Tracing.span_between sh.tracer ~dom:0
      ~name:(Obs.Tracing.intern sh.tracer (hs_span_name typ))
      ~start_ns:t0_ns ~stop_ns:t1_ns;
  Obs.Metrics.aincr sh.hs_rounds;
  Obs.Metrics.observe sh.hs_latency dt;
  if sh.lat.lat_on then begin
    (* whole-round history gets the coordinated-omission treatment when
       configured (rounds are the runtime's periodic heartbeat); the
       per-type split stays raw *)
    Obs.Latency.record_corrected sh.lat.hs_round
      ~expected_interval_ns:sh.lat.co_interval_ns dt_ns;
    Obs.Latency.record
      (match typ with
      | Hs_get_roots -> sh.lat.hs_round_roots
      | Hs_get_work -> sh.lat.hs_round_work
      | Hs_nop | Hs_none -> sh.lat.hs_round_nop)
      dt_ns
  end;
  dt

(* Scan greys depth-first: marking a child greys it onto the same stack;
   popping an object blackens it (its children have been marked). *)
let rec drain sh stack =
  match stack with
  | [] -> ()
  | r :: rest ->
    if sh.trace_pause > 0. then Unix.sleepf sh.trace_pause;
    let stack = ref rest in
    for f = 0 to sh.heap.Rheap.n_fields - 1 do
      stack := mark sh (Rheap.field sh.heap r f) !stack
    done;
    drain sh !stack

let cycle sh =
  let observing = Obs.Reporter.enabled sh.obs in
  let tr_on = tracing sh in
  let t_cycle_ns = Obs.Clock.monotonic_ns () in
  (* counter baselines for this cycle's deltas *)
  let cas_attempts0 = Atomic.get sh.cas_attempts in
  let cas_wins0 = Atomic.get sh.cas_wins in
  let fast0 = Atomic.get sh.barrier_fast_path in
  let frees0 = Atomic.get sh.heap.Rheap.frees in
  let hs_latencies = ref [] in
  let hs_ns = ref 0 in
  let handshake sh typ =
    let dt = handshake sh typ in
    hs_ns := !hs_ns + int_of_float (dt *. 1e9);
    if observing then hs_latencies := dt :: !hs_latencies
  in
  (* lines 3-4: everyone sees Idle; the heap is black *)
  handshake sh Hs_nop;
  (* line 5: flip the sense — the heap becomes white *)
  Atomic.set sh.f_m (not (Atomic.get sh.f_m));
  handshake sh Hs_nop;
  (* line 8: barriers on *)
  Atomic.set sh.phase Init;
  handshake sh Hs_nop;
  (* lines 11-12: allocate black from here on *)
  Atomic.set sh.phase Mark;
  Atomic.set sh.f_a (Atomic.get sh.f_m);
  handshake sh Hs_nop;
  (* lines 15-20: sample and mark the roots, raggedly *)
  handshake sh Hs_get_roots;
  (* lines 24-34: trace, then poll the mutators for leftover greys *)
  let t_mark_ns = Obs.Clock.monotonic_ns () in
  let rec mark_loop () =
    let w = take_global sh in
    if w <> [] then begin
      drain sh w;
      handshake sh Hs_get_work;
      mark_loop ()
    end
  in
  mark_loop ();
  let t_sweep_ns = Obs.Clock.monotonic_ns () in
  (* lines 37-45: free the whites *)
  Atomic.set sh.phase Sweep;
  let sense = Atomic.get sh.f_m in
  List.iter
    (fun r -> if Rheap.mark sh.heap r <> sense then Rheap.free sh.heap r)
    (Rheap.domain sh.heap);
  (* line 46 *)
  Atomic.set sh.phase Idle;
  Atomic.incr sh.cycles;
  let t_end_ns = Obs.Clock.monotonic_ns () in
  if sh.lat.lat_on then begin
    Obs.Latency.record sh.lat.pause (t_end_ns - t_cycle_ns);
    Obs.Latency.record sh.lat.mark_phase (t_sweep_ns - t_mark_ns);
    Obs.Latency.record sh.lat.sweep_phase (t_end_ns - t_sweep_ns);
    Obs.Latency.record sh.lat.hs_in_cycle !hs_ns
  end;
  if tr_on then begin
    Obs.Tracing.span_between sh.tracer ~dom:0
      ~name:(Obs.Tracing.intern sh.tracer "mark")
      ~start_ns:t_mark_ns ~stop_ns:t_sweep_ns;
    Obs.Tracing.span_between sh.tracer ~dom:0
      ~name:(Obs.Tracing.intern sh.tracer "sweep")
      ~start_ns:t_sweep_ns ~stop_ns:t_end_ns;
    Obs.Tracing.span_args sh.tracer ~dom:0
      ~name:(Obs.Tracing.intern sh.tracer "gc-cycle")
      ~start_ns:t_cycle_ns ~stop_ns:t_end_ns
      ~args:
        [
          ("cycle", Obs.Json.Int (Atomic.get sh.cycles));
          ("freed", Obs.Json.Int (Atomic.get sh.heap.Rheap.frees - frees0));
          ("live", Obs.Json.Int (Rheap.live_count sh.heap));
        ]
  end;
  if observing then begin
    let cas_attempts = Atomic.get sh.cas_attempts - cas_attempts0 in
    let cas_wins = Atomic.get sh.cas_wins - cas_wins0 in
    let fast = Atomic.get sh.barrier_fast_path - fast0 in
    let flag_tests = cas_attempts + fast in
    Obs.Reporter.emit sh.obs "gc-cycle"
      [
        ("cycle", Obs.Json.Int (Atomic.get sh.cycles));
        ("elapsed_s", Obs.Json.Float (float_of_int (t_end_ns - t_cycle_ns) *. 1e-9));
        ("mark_s", Obs.Json.Float (float_of_int (t_sweep_ns - t_mark_ns) *. 1e-9));
        ("sweep_s", Obs.Json.Float (float_of_int (t_end_ns - t_sweep_ns) *. 1e-9));
        ("hs_s", Obs.Json.Float (float_of_int !hs_ns *. 1e-9));
        ( "hs_latency_s",
          Obs.Json.List (List.rev_map (fun dt -> Obs.Json.Float dt) !hs_latencies) );
        ("marks", Obs.Json.Int cas_wins);
        ("cas_attempts", Obs.Json.Int cas_attempts);
        ("cas_wins", Obs.Json.Int cas_wins);
        ("barrier_fast_path", Obs.Json.Int fast);
        ( "barrier_fast_path_rate",
          Obs.Json.Float
            (if flag_tests > 0 then float_of_int fast /. float_of_int flag_tests else 0.) );
        ("freed", Obs.Json.Int (Atomic.get sh.heap.Rheap.frees - frees0));
        ("live", Obs.Json.Int (Rheap.live_count sh.heap));
      ]
  end

(* One live summary of the runtime's health: counters plus percentile
   snapshots of the latency histograms.  Emitted between cycles, so the
   percentiles a monitoring pipeline reads are at most one cycle stale. *)
let emit_heartbeat sh ~dt_ns ~allocs0 =
  let allocs = Atomic.get sh.heap.Rheap.allocs in
  let rate =
    if dt_ns > 0 then float_of_int (allocs - allocs0) /. (float_of_int dt_ns *. 1e-9)
    else 0.
  in
  Obs.Reporter.emit sh.obs "runtime-heartbeat"
    [
      ("cycles", Obs.Json.Int (Atomic.get sh.cycles));
      ("live", Obs.Json.Int (Rheap.live_count sh.heap));
      ("allocs", Obs.Json.Int allocs);
      ("frees", Obs.Json.Int (Atomic.get sh.heap.Rheap.frees));
      ("alloc_per_sec", Obs.Json.Float rate);
      ("alloc_stalls", Obs.Json.Int (Atomic.get sh.lat.alloc_stalls));
      ("hs", Obs.Latency.to_json sh.lat.hs_round);
      ( "hs_ack_p99_ns",
        Obs.Json.List
          (Array.to_list
             (Array.map
                (fun h ->
                  match Obs.Latency.percentile h 99. with
                  | Some v -> Obs.Json.Int v
                  | None -> Obs.Json.Null)
                sh.lat.hs_ack)) );
      ("pause", Obs.Latency.to_json sh.lat.pause);
      ("barrier_fast_path", Obs.Json.Int (Atomic.get sh.barrier_fast_path));
      ("cas_attempts", Obs.Json.Int (Atomic.get sh.cas_attempts));
    ]

let run sh =
  let observing = Obs.Reporter.enabled sh.obs in
  let last_hb = ref (Obs.Clock.monotonic_ns ()) in
  let last_allocs = ref (Atomic.get sh.heap.Rheap.allocs) in
  while not (Atomic.get sh.stop) do
    cycle sh;
    if observing then begin
      let now = Obs.Clock.monotonic_ns () in
      let dt_ns = now - !last_hb in
      if dt_ns >= sh.hb_every_ns then begin
        emit_heartbeat sh ~dt_ns ~allocs0:!last_allocs;
        last_hb := now;
        last_allocs := Atomic.get sh.heap.Rheap.allocs
      end
    end
  done;
  (* release any mutator parked on a handshake we will never complete *)
  Array.iter (fun slot -> Atomic.set slot Hs_none) sh.hs_req
