(* A concrete mutator handle: the operations of Fig. 6 with both write
   barriers compiled in, plus the GC-safe-point poll that services soft
   handshakes.

   Operations are barrier-complete and handshake-free, exactly as in the
   model: [poll] is only called between operations.

   Safety validation mirrors the headline theorem from the mutator's seat:
   every root carries the slot epoch observed when it was adopted, and at
   every GC-safe point the mutator asserts that each of its roots still
   denotes a live object with that epoch — an object freed (or freed and
   reused: the epoch catches the ABA case) while rooted is precisely a
   valid_refs_inv violation, reported via [Unsafe]. *)

open Rshared

exception Unsafe of string

type t = {
  id : int;
  sh : Rshared.t;
  mutable roots : (Rheap.rf * int) list;  (* reference, adoption epoch *)
  mutable wm : Rheap.rf list;  (* private work-list *)
  barriers : bool;  (* ablation switch for the barrier-overhead bench *)
  mutable ops : int;  (* statistics *)
  mutable saw_get_roots : bool;  (* set when poll services a get-roots round *)
  mutable stall_since_ns : int;
    (* start of the current free-list-empty episode; < 0 = not stalled.
       Set on the first failed alloc of an episode, cleared (recording
       the episode's duration) on the next success. *)
}

let make ?(barriers = true) sh id ~roots =
  {
    id;
    sh;
    roots = List.map (fun r -> (r, Rheap.epoch sh.heap r)) roots;
    wm = [];
    barriers;
    ops = 0;
    saw_get_roots = false;
    stall_since_ns = -1;
  }

let unsafe t fmt =
  Fmt.kstr
    (fun msg ->
      raise (Unsafe (Printf.sprintf "mutator %d (cycle %d): %s" t.id (Atomic.get t.sh.cycles) msg)))
    fmt

let root_refs t = List.map fst t.roots

(* The headline check, from this mutator's perspective: all roots denote
   live, un-recycled objects. *)
let validate_roots t =
  List.iter
    (fun (r, e) ->
      if not (Rheap.is_allocated t.sh.heap r) then unsafe t "rooted reference %d was freed" r
      else if Rheap.epoch t.sh.heap r <> e then unsafe t "rooted reference %d was freed and reused" r)
    t.roots

let adopt t r =
  if r <> Rheap.null && not (List.mem_assoc r t.roots) then
    t.roots <- (r, Rheap.epoch t.sh.heap r) :: t.roots

(* The mutator's side of the soft handshakes (Fig. 2's at-m blocks).
   The ack latency — collector's request publish to this mutator's slot
   clear — is what a mutator actually contributes to a ragged round, so
   it is recorded here, per mutator, against the timestamp the collector
   stamped alongside the request. *)
let poll t =
  match Atomic.get t.sh.hs_req.(t.id) with
  | Hs_none -> ()
  | req ->
    (match req with
    | Hs_none | Hs_nop -> ()
    | Hs_get_roots ->
      (* lines 17-20: mark own roots into the private work-list, transfer *)
      List.iter (fun (r, _) -> t.wm <- mark t.sh r t.wm) t.roots;
      transfer t.sh t.wm;
      t.wm <- [];
      t.saw_get_roots <- true
    | Hs_get_work ->
      (* lines 32-34 *)
      transfer t.sh t.wm;
      t.wm <- []);
    Atomic.set t.sh.hs_req.(t.id) Hs_none;
    if t.sh.lat.lat_on then
      Obs.Latency.record t.sh.lat.hs_ack.(t.id)
        (Obs.Clock.monotonic_ns () - Atomic.get t.sh.lat.hs_req_ns.(t.id))

(* Load (Fig. 6): read a field of a rooted object and adopt the result. *)
let load t src f =
  let v = Rheap.field t.sh.heap src f in
  adopt t v;
  t.ops <- t.ops + 1;
  v

(* Store (Fig. 6): deletion barrier on the overwritten value, insertion
   barrier on the stored value, then the store itself. *)
let store t src f dst =
  if t.barriers then begin
    t.wm <- mark t.sh (Rheap.field t.sh.heap src f) t.wm;  (* deletion barrier *)
    t.wm <- mark t.sh dst t.wm  (* insertion barrier *)
  end;
  Rheap.set_field t.sh.heap src f dst;
  t.ops <- t.ops + 1

(* Alloc (Fig. 6): allocate with the current f_A sense and adopt.  With
   latency on, each successful allocation is timed, and a null return
   (free list empty) opens a stall episode whose total wait — first
   failure to next success — lands in [alloc_stall_wait]. *)
let alloc t =
  let lat = t.sh.lat in
  let r =
    if not lat.Rshared.lat_on then Rheap.alloc t.sh.heap ~mark:(Atomic.get t.sh.f_a)
    else begin
      let t0 = Obs.Clock.monotonic_ns () in
      let r = Rheap.alloc t.sh.heap ~mark:(Atomic.get t.sh.f_a) in
      let t1 = Obs.Clock.monotonic_ns () in
      if r = Rheap.null then begin
        if t.stall_since_ns < 0 then begin
          t.stall_since_ns <- t0;
          Atomic.incr lat.alloc_stalls
        end
      end
      else begin
        Obs.Latency.record lat.alloc (t1 - t0);
        if t.stall_since_ns >= 0 then begin
          Obs.Latency.record lat.alloc_stall_wait (t1 - t.stall_since_ns);
          t.stall_since_ns <- -1
        end
      end;
      r
    end
  in
  adopt t r;
  t.ops <- t.ops + 1;
  r

let discard t r =
  t.roots <- List.filter (fun (x, _) -> x <> r) t.roots;
  t.ops <- t.ops + 1

(* One random operation over the current roots. *)
let random_op t rng =
  match root_refs t with
  | [] -> ignore (alloc t)
  | roots -> (
    let pick l = List.nth l (Random.State.int rng (List.length l)) in
    let f = Random.State.int rng t.sh.heap.Rheap.n_fields in
    match Random.State.int rng 10 with
    | 0 | 1 | 2 -> ignore (load t (pick roots) f)
    | 3 | 4 | 5 -> store t (pick roots) f (pick roots)
    | 6 | 7 -> ignore (alloc t)
    | 8 -> store t (pick roots) f Rheap.null (* delete an edge *)
    | _ -> if List.length roots > 1 then discard t (pick roots))

(* The Lists workload: each mutator owns a singly-linked list hanging off a
   stable anchor root, and plays rounds of exactly the Fig. 1 scenario:

     build   push a chain of fresh nodes behind the anchor;
     grab    walk the chain deep, adopting interior nodes into the roots;
     splice  cut the chain near the anchor, deleting (possibly ahead of the
             collector's wavefront) the edges that grey-protect the
             adopted nodes;
     hold    keep the adopted roots across the next two collection cycles,
             validating them at every safe point;
     release and start over.

   With the barriers in place the splice's deletion barrier greys the cut
   tail and the adopted nodes survive; without it the collector never sees
   them, the sweep frees them while rooted, and [validate_roots] faults. *)

let anchor t = fst (List.nth t.roots (List.length t.roots - 1))

(* A GC-safe point inside the workload driver. *)
let safe_point t =
  validate_roots t;
  poll t

let stopping t = Atomic.get t.sh.stop || Atomic.get t.sh.stop_muts

let list_round t rng =
  let a = anchor t in
  let rec walk r k = if k = 0 || r = Rheap.null then r else walk (load t r 0) (k - 1) in
  let push () =
    let node = alloc t in
    if node <> Rheap.null then begin
      store t node 0 (Rheap.field t.sh.heap a 0);
      store t a 0 node;
      (* the fresh node is reachable via the anchor; no need to root it *)
      discard t node
    end
  in
  (* build while the collector is idle, so the chain is white for the
     upcoming cycle *)
  let len = 10 + Random.State.int rng 20 in
  for _ = 1 to len do
    safe_point t;
    push ()
  done;
  (* wait until this mutator has just acked a get-roots round: the attack
     window — its roots are sampled, the wavefront has barely moved *)
  t.saw_get_roots <- false;
  while (not t.saw_get_roots) && not (stopping t) do
    safe_point t;
    Domain.cpu_relax ()
  done;
  (* grab: adopt interior nodes (they are white and not in the snapshot) *)
  ignore (walk a len);
  (* splice ahead of the wavefront *)
  let d = walk a (1 + Random.State.int rng 2) in
  if d <> Rheap.null then store t d 0 Rheap.null;
  (* hold the adopted roots across this cycle's sweep and the next *)
  let c0 = Atomic.get t.sh.cycles in
  while Atomic.get t.sh.cycles < c0 + 2 && not (stopping t) do
    safe_point t;
    Domain.cpu_relax ()
  done;
  (* release *)
  t.roots <- [ List.nth t.roots (List.length t.roots - 1) ]

type workload = Uniform | Lists

(* The mutator thread body: service handshakes (validating roots at every
   safe point) until the collector has stopped; perform workload operations
   until the harness says stop. *)
let run ?(workload = Uniform) t rng =
  while not (Atomic.get t.sh.stop_muts) do
    safe_point t;
    if not (Atomic.get t.sh.stop) then begin
      match workload with Uniform -> random_op t rng | Lists -> list_round t rng
    end
    else Domain.cpu_relax ()
  done
