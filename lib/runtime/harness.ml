(* Stress harness for the concrete runtime: one collector domain cycling
   continuously, n mutator domains performing random barrier-complete heap
   operations, for a wall-clock duration.  On-line validation (loads must
   never fetch a freed reference) runs inside the mutators; a final
   stop-the-world validation recomputes reachability from every root and
   checks it against the allocation map. *)

type stats = {
  cycles : int;
  ops : int;
  allocs : int;
  frees : int;
  cas_attempts : int;
  cas_wins : int;
  barrier_fast_path : int;
  hs_rounds : int;
  live_at_end : int;
  alloc_stalls : int;
  latency : Obs.Json.t;
    (* the structured latency section (Rshared.latency_json): handshake
       round/ack, barrier slow path, allocation and stall, and per-phase
       cycle histogram snapshots *)
  violation : string option;
}

let pp_stats ppf s =
  Fmt.pf ppf
    "cycles=%d ops=%d allocs=%d frees=%d cas=%d/%d fastpath=%d hs=%d live=%d stalls=%d %s"
    s.cycles s.ops s.allocs s.frees s.cas_wins s.cas_attempts s.barrier_fast_path s.hs_rounds
    s.live_at_end s.alloc_stalls
    (match s.violation with None -> "SAFE" | Some m -> "UNSAFE: " ^ m)

(* Reachability over the concrete heap (single-threaded, run only when the
   world is stopped). *)
let reachable_set heap roots =
  let seen = Array.make heap.Rheap.n_slots false in
  let rec visit r =
    if r <> Rheap.null && not seen.(r) then begin
      seen.(r) <- true;
      if Rheap.is_allocated heap r then
        for f = 0 to heap.Rheap.n_fields - 1 do
          visit (Rheap.field heap r f)
        done
    end
  in
  List.iter visit roots;
  seen

let final_validation heap mutators =
  let roots = List.concat_map Rmutator.root_refs mutators in
  let seen = reachable_set heap roots in
  let dangling = ref [] in
  Array.iteri (fun r s -> if s && not (Rheap.is_allocated heap r) then dangling := r :: !dangling) seen;
  match !dangling with
  | [] -> None
  | rs ->
    Some
      (Fmt.str "final validation: reachable-but-freed references: %a"
         Fmt.(list ~sep:comma int)
         rs)

let run ?(n_muts = 2) ?(n_slots = 256) ?(n_fields = 2) ?(duration = 0.5) ?(barriers = true)
    ?(seed = 42) ?(workload = Rmutator.Uniform) ?(trace_pause = 0.)
    ?(obs = Obs.Reporter.null) ?(tracer = Obs.Tracing.null) ?(latency = true)
    ?(co_interval_ns = 0) () =
  let sh =
    Rshared.make ~trace_pause ~obs ~tracer ~latency ~co_interval_ns ~n_slots ~n_fields
      ~n_muts ()
  in
  (* lane 0 is the collector (handshake/mark/sweep spans, emitted by
     Rcollector); lanes 1..n_muts carry one whole-lifetime span per
     mutator domain *)
  let tr_on = Obs.Tracing.enabled tracer in
  let mut_lane i = i + 1 in
  if tr_on then begin
    if Obs.Tracing.lanes tracer >= 1 then Obs.Tracing.set_lane tracer ~dom:0 "collector";
    for i = 0 to n_muts - 1 do
      if mut_lane i < Obs.Tracing.lanes tracer then
        Obs.Tracing.set_lane tracer ~dom:(mut_lane i) (Fmt.str "mutator %d" i)
    done
  end;
  let n_mutator_span = if tr_on then Obs.Tracing.intern tracer "mutator-run" else 0 in
  (* seed each mutator with one root object *)
  let mutators =
    List.init n_muts (fun i ->
        let r = Rheap.alloc sh.Rshared.heap ~mark:(Atomic.get sh.Rshared.f_a) in
        Rmutator.make ~barriers sh i ~roots:[ r ])
  in
  let violation = Atomic.make None in
  let mut_domains =
    List.mapi
      (fun i m ->
        Domain.spawn (fun () ->
            let lane_on = tr_on && mut_lane i < Obs.Tracing.lanes tracer in
            let t0_ns = if lane_on then Obs.Tracing.now tracer else 0 in
            let rng = Random.State.make [| seed; i |] in
            (try Rmutator.run ~workload m rng
             with Rmutator.Unsafe msg ->
               Atomic.set violation (Some msg);
               (* keep servicing handshakes so the collector can stop *)
               while not (Atomic.get sh.Rshared.stop_muts) do
                 Rmutator.poll m;
                 Domain.cpu_relax ()
               done);
            if lane_on then
              Obs.Tracing.span_args tracer ~dom:(mut_lane i) ~name:n_mutator_span ~start_ns:t0_ns
                ~stop_ns:(Obs.Tracing.now tracer)
                ~args:[ ("ops", Obs.Json.Int m.Rmutator.ops) ]))
      mutators
  in
  let gc_domain = Domain.spawn (fun () -> Rcollector.run sh) in
  Unix.sleepf duration;
  Atomic.set sh.Rshared.stop true;
  Domain.join gc_domain;
  Atomic.set sh.Rshared.stop_muts true;
  List.iter Domain.join mut_domains;
  let violation =
    match Atomic.get violation with
    | Some m -> Some m
    | None -> final_validation sh.Rshared.heap mutators
  in
  let stats =
    {
      cycles = Atomic.get sh.Rshared.cycles;
      ops = List.fold_left (fun n (m : Rmutator.t) -> n + m.Rmutator.ops) 0 mutators;
      allocs = Atomic.get sh.Rshared.heap.Rheap.allocs;
      frees = Atomic.get sh.Rshared.heap.Rheap.frees;
      cas_attempts = Atomic.get sh.Rshared.cas_attempts;
      cas_wins = Atomic.get sh.Rshared.cas_wins;
      barrier_fast_path = Atomic.get sh.Rshared.barrier_fast_path;
      hs_rounds = Obs.Metrics.acount sh.Rshared.hs_rounds;
      live_at_end = Rheap.live_count sh.Rshared.heap;
      alloc_stalls = Atomic.get sh.Rshared.lat.Rshared.alloc_stalls;
      latency = Rshared.latency_json sh;
      violation;
    }
  in
  if Obs.Reporter.enabled obs then
    Obs.Reporter.emit obs "harness"
      [
        ("n_muts", Obs.Json.Int n_muts);
        ("duration_s", Obs.Json.Float duration);
        ("barriers", Obs.Json.Bool barriers);
        ("cycles", Obs.Json.Int stats.cycles);
        ("ops", Obs.Json.Int stats.ops);
        ("allocs", Obs.Json.Int stats.allocs);
        ("frees", Obs.Json.Int stats.frees);
        ("cas_attempts", Obs.Json.Int stats.cas_attempts);
        ("cas_wins", Obs.Json.Int stats.cas_wins);
        ("barrier_fast_path", Obs.Json.Int stats.barrier_fast_path);
        ("hs_rounds", Obs.Json.Int stats.hs_rounds);
        ("hs_latency", Obs.Metrics.hsnapshot sh.Rshared.hs_latency);
        ("latency", stats.latency);
        ("live_at_end", Obs.Json.Int stats.live_at_end);
        ( "violation",
          match stats.violation with None -> Obs.Json.Null | Some m -> Obs.Json.String m );
      ];
  stats
