(* Shared control state between the concrete collector and its mutators:
   the three control variables of Fig. 2, the handshake request slots, and
   the global work-list.

   The handshake protocol follows Fig. 4: the collector publishes the round
   type into each mutator's request slot; the mutator notices it at a
   GC-safe point, does the round's work (marking its own roots, or
   transferring its private work-list), and clears the slot; the collector
   waits for all slots to clear.  Atomics provide the fences the paper
   requires of the pthread primitives. *)

type phase = Idle | Init | Mark | Sweep

type hs = Hs_none | Hs_nop | Hs_get_roots | Hs_get_work

(* The latency observatory: HDR histograms (lib/obs/latency) threaded
   through the hot paths.  Recording is lock-free, so mutators write
   their own ack/alloc observations without synchronising with the
   collector; everything is merged at snapshot time by [latency_json].
   [lat_on = false] reduces every instrumentation site to one branch and
   no clock reads. *)
type lat = {
  lat_on : bool;
  co_interval_ns : int;
    (* > 0: coordinated-omission back-fill for the collector's round
       latency — rounds are periodic, so a stalled round hides the
       rounds that never ran while it lasted *)
  hs_round : Obs.Latency.t;  (* whole round: request -> slowest ack (collector writer) *)
  hs_round_nop : Obs.Latency.t;  (* per round type = per protocol phase *)
  hs_round_roots : Obs.Latency.t;
  hs_round_work : Obs.Latency.t;
  hs_ack : Obs.Latency.t array;  (* per mutator: request publish -> own ack *)
  hs_req_ns : int Atomic.t array;
    (* publish timestamp, stamped by the collector before each request
       slot is set, read by the acking mutator *)
  barrier_slow : Obs.Latency.t;  (* mark-CAS slow path (barriers + collector drain) *)
  alloc : Obs.Latency.t;  (* successful allocations *)
  alloc_stall_wait : Obs.Latency.t;  (* free-list-empty episode durations *)
  alloc_stalls : int Atomic.t;  (* episodes begun *)
  pause : Obs.Latency.t;  (* whole gc cycle (the on-the-fly "pause" proxy) *)
  mark_phase : Obs.Latency.t;
  sweep_phase : Obs.Latency.t;
  hs_in_cycle : Obs.Latency.t;  (* summed handshake wait per cycle *)
}

type t = {
  heap : Rheap.t;
  f_m : bool Atomic.t;  (* sense of the marks *)
  f_a : bool Atomic.t;  (* sense used by allocation *)
  phase : phase Atomic.t;
  hs_req : hs Atomic.t array;  (* per mutator *)
  global_w_lock : Mutex.t;
  mutable global_w : Rheap.rf list;  (* the collector's W *)
  trace_pause : float;
    (* seconds to pause between greys while tracing: 0 in production; the
       stress harness widens the tracing window with it so that the barrier
       ablations become observable on few-core machines (the abstract model
       checker needs no such help) *)
  stop : bool Atomic.t;  (* harness: collector should stop after this cycle *)
  stop_muts : bool Atomic.t;
    (* harness: mutators may exit — raised only after the collector has
       stopped, since a live collector blocks on their handshake acks *)
  (* statistics: atomic, so instrumentation adds no synchronisation beyond
     the fetch-and-adds the paper's ghost counters already imply *)
  cycles : int Atomic.t;
  cas_attempts : int Atomic.t;
  cas_wins : int Atomic.t;
  barrier_fast_path : int Atomic.t;
  (* observability: a per-instance metrics registry (the harness and the
     bench create many instances; registering into the process-wide
     registry would accumulate dead metrics) and an event reporter used by
     the collector for per-cycle records *)
  obs : Obs.Reporter.t;
  tracer : Obs.Tracing.t;
    (* span tracer; lane 0 is the collector's timeline (handshake rounds,
       mark/sweep stages, whole cycles), lanes 1..n_muts the mutators' *)
  registry : Obs.Metrics.registry;
  hs_rounds : Obs.Metrics.acounter;  (* handshake rounds completed *)
  hs_latency : Obs.Metrics.histogram;  (* seconds per round; collector-only writer *)
  lat : lat;
  hb_every_ns : int;  (* min interval between runtime-heartbeat records *)
}

let make_lat ~latency ~co_interval_ns ~n_muts =
  (* Lane counts follow the writer sets: single-writer histograms
     (collector timelines, per-mutator acks) get one lane; the ones every
     domain writes (barrier slow path, allocation) keep the default. *)
  let solo name = Obs.Latency.create ~lanes:1 name in
  {
    lat_on = latency;
    co_interval_ns;
    hs_round = solo "hs_round_ns";
    hs_round_nop = solo "hs_round_nop_ns";
    hs_round_roots = solo "hs_round_get_roots_ns";
    hs_round_work = solo "hs_round_get_work_ns";
    hs_ack = Array.init n_muts (fun i -> solo (Printf.sprintf "hs_ack_%d_ns" i));
    hs_req_ns = Array.init n_muts (fun _ -> Atomic.make 0);
    barrier_slow = Obs.Latency.create "barrier_slow_ns";
    alloc = Obs.Latency.create "alloc_ns";
    alloc_stall_wait = Obs.Latency.create "alloc_stall_wait_ns";
    alloc_stalls = Atomic.make 0;
    pause = solo "gc_pause_ns";
    mark_phase = solo "gc_mark_ns";
    sweep_phase = solo "gc_sweep_ns";
    hs_in_cycle = solo "gc_hs_ns";
  }

let make ?(trace_pause = 0.) ?(obs = Obs.Reporter.null) ?(tracer = Obs.Tracing.null)
    ?(latency = true) ?(co_interval_ns = 0) ?(heartbeat_every_s = 0.1) ~n_slots
    ~n_fields ~n_muts () =
  let registry = Obs.Metrics.create_registry () in
  {
    heap = Rheap.make ~n_slots ~n_fields;
    trace_pause;
    f_m = Atomic.make false;
    f_a = Atomic.make false;
    phase = Atomic.make Idle;
    hs_req = Array.init n_muts (fun _ -> Atomic.make Hs_none);
    global_w_lock = Mutex.create ();
    global_w = [];
    stop = Atomic.make false;
    stop_muts = Atomic.make false;
    cycles = Atomic.make 0;
    cas_attempts = Atomic.make 0;
    cas_wins = Atomic.make 0;
    barrier_fast_path = Atomic.make 0;
    obs;
    tracer;
    registry;
    hs_rounds = Obs.Metrics.acounter ~registry "hs_rounds";
    hs_latency = Obs.Metrics.histogram ~registry "hs_latency_s";
    lat = make_lat ~latency ~co_interval_ns ~n_muts;
    hb_every_ns = int_of_float (heartbeat_every_s *. 1e9);
  }

let n_muts sh = Array.length sh.hs_req

(* Atomic W <- W u Wm (Fig. 2 lines 20/34); called by the owner of [wm]. *)
let transfer sh wm =
  if wm <> [] then begin
    Mutex.lock sh.global_w_lock;
    sh.global_w <- List.rev_append wm sh.global_w;
    Mutex.unlock sh.global_w_lock
  end

let take_global sh =
  Mutex.lock sh.global_w_lock;
  let w = sh.global_w in
  sh.global_w <- [];
  Mutex.unlock sh.global_w_lock;
  w

(* The mark operation of Fig. 5, shared by the collector and every barrier:
   double-checked so that the expensive CAS runs only when the flag test
   and the phase test both pass.  Appends to the caller's private
   work-list; returns it. *)
let mark sh r wm =
  if r = Rheap.null || not (Rheap.is_allocated sh.heap r) then wm
  else begin
    let sense = Atomic.get sh.f_m in
    if Rheap.mark sh.heap r <> sense then begin
      if Atomic.get sh.phase <> Idle then begin
        Atomic.incr sh.cas_attempts;
        (* the slow path is where a barrier actually pays: time it (the
           fast path above stays clock-free).  Like the fast-path
           counter, this conflates barrier marks with the collector's
           own drain marks — latency_json reports the split via the
           counters. *)
        let t0 = if sh.lat.lat_on then Obs.Clock.monotonic_ns () else 0 in
        let won = Rheap.try_mark sh.heap r ~sense in
        if sh.lat.lat_on then
          Obs.Latency.record sh.lat.barrier_slow (Obs.Clock.monotonic_ns () - t0);
        if won then begin
          Atomic.incr sh.cas_wins;
          r :: wm
        end
        else wm  (* some other thread won and greyed it *)
      end
      else wm
    end
    else begin
      Atomic.incr sh.barrier_fast_path;
      wm
    end
  end

(* The structured latency section: attached to the final [harness] record,
   summarised by runtime-heartbeat records, and surfaced in Harness.stats.
   All histograms are merged-on-read, so this is safe to call while the
   runtime is still executing. *)
let latency_json sh =
  let l = sh.lat in
  let fast = Atomic.get sh.barrier_fast_path in
  let cas = Atomic.get sh.cas_attempts in
  let tests = fast + cas in
  Obs.Json.Obj
    [
      ("enabled", Obs.Json.Bool l.lat_on);
      ("hs_round", Obs.Latency.to_json l.hs_round);
      ( "hs_round_by_type",
        Obs.Json.Obj
          [
            ("nop", Obs.Latency.to_json l.hs_round_nop);
            ("get_roots", Obs.Latency.to_json l.hs_round_roots);
            ("get_work", Obs.Latency.to_json l.hs_round_work);
          ] );
      ( "hs_ack",
        Obs.Json.List (Array.to_list (Array.map Obs.Latency.to_json l.hs_ack)) );
      ("barrier_slow", Obs.Latency.to_json l.barrier_slow);
      ("barrier_fast_path", Obs.Json.Int fast);
      ("cas_attempts", Obs.Json.Int cas);
      ( "barrier_fast_fraction",
        if tests > 0 then Obs.Json.Float (float_of_int fast /. float_of_int tests)
        else Obs.Json.Null );
      ("alloc", Obs.Latency.to_json l.alloc);
      ("alloc_stall_wait", Obs.Latency.to_json l.alloc_stall_wait);
      ("alloc_stalls", Obs.Json.Int (Atomic.get l.alloc_stalls));
      ("pause", Obs.Latency.to_json l.pause);
      ("mark", Obs.Latency.to_json l.mark_phase);
      ("sweep", Obs.Latency.to_json l.sweep_phase);
      ("hs_in_cycle", Obs.Latency.to_json l.hs_in_cycle);
    ]
