(* Shared control state between the concrete collector and its mutators:
   the three control variables of Fig. 2, the handshake request slots, and
   the global work-list.

   The handshake protocol follows Fig. 4: the collector publishes the round
   type into each mutator's request slot; the mutator notices it at a
   GC-safe point, does the round's work (marking its own roots, or
   transferring its private work-list), and clears the slot; the collector
   waits for all slots to clear.  Atomics provide the fences the paper
   requires of the pthread primitives. *)

type phase = Idle | Init | Mark | Sweep

type hs = Hs_none | Hs_nop | Hs_get_roots | Hs_get_work

type t = {
  heap : Rheap.t;
  f_m : bool Atomic.t;  (* sense of the marks *)
  f_a : bool Atomic.t;  (* sense used by allocation *)
  phase : phase Atomic.t;
  hs_req : hs Atomic.t array;  (* per mutator *)
  global_w_lock : Mutex.t;
  mutable global_w : Rheap.rf list;  (* the collector's W *)
  trace_pause : float;
    (* seconds to pause between greys while tracing: 0 in production; the
       stress harness widens the tracing window with it so that the barrier
       ablations become observable on few-core machines (the abstract model
       checker needs no such help) *)
  stop : bool Atomic.t;  (* harness: collector should stop after this cycle *)
  stop_muts : bool Atomic.t;
    (* harness: mutators may exit — raised only after the collector has
       stopped, since a live collector blocks on their handshake acks *)
  (* statistics: atomic, so instrumentation adds no synchronisation beyond
     the fetch-and-adds the paper's ghost counters already imply *)
  cycles : int Atomic.t;
  cas_attempts : int Atomic.t;
  cas_wins : int Atomic.t;
  barrier_fast_path : int Atomic.t;
  (* observability: a per-instance metrics registry (the harness and the
     bench create many instances; registering into the process-wide
     registry would accumulate dead metrics) and an event reporter used by
     the collector for per-cycle records *)
  obs : Obs.Reporter.t;
  tracer : Obs.Tracing.t;
    (* span tracer; lane 0 is the collector's timeline (handshake rounds,
       mark/sweep stages, whole cycles), lanes 1..n_muts the mutators' *)
  registry : Obs.Metrics.registry;
  hs_rounds : Obs.Metrics.acounter;  (* handshake rounds completed *)
  hs_latency : Obs.Metrics.histogram;  (* seconds per round; collector-only writer *)
}

let make ?(trace_pause = 0.) ?(obs = Obs.Reporter.null) ?(tracer = Obs.Tracing.null) ~n_slots
    ~n_fields ~n_muts () =
  let registry = Obs.Metrics.create_registry () in
  {
    heap = Rheap.make ~n_slots ~n_fields;
    trace_pause;
    f_m = Atomic.make false;
    f_a = Atomic.make false;
    phase = Atomic.make Idle;
    hs_req = Array.init n_muts (fun _ -> Atomic.make Hs_none);
    global_w_lock = Mutex.create ();
    global_w = [];
    stop = Atomic.make false;
    stop_muts = Atomic.make false;
    cycles = Atomic.make 0;
    cas_attempts = Atomic.make 0;
    cas_wins = Atomic.make 0;
    barrier_fast_path = Atomic.make 0;
    obs;
    tracer;
    registry;
    hs_rounds = Obs.Metrics.acounter ~registry "hs_rounds";
    hs_latency = Obs.Metrics.histogram ~registry "hs_latency_s";
  }

let n_muts sh = Array.length sh.hs_req

(* Atomic W <- W u Wm (Fig. 2 lines 20/34); called by the owner of [wm]. *)
let transfer sh wm =
  if wm <> [] then begin
    Mutex.lock sh.global_w_lock;
    sh.global_w <- List.rev_append wm sh.global_w;
    Mutex.unlock sh.global_w_lock
  end

let take_global sh =
  Mutex.lock sh.global_w_lock;
  let w = sh.global_w in
  sh.global_w <- [];
  Mutex.unlock sh.global_w_lock;
  w

(* The mark operation of Fig. 5, shared by the collector and every barrier:
   double-checked so that the expensive CAS runs only when the flag test
   and the phase test both pass.  Appends to the caller's private
   work-list; returns it. *)
let mark sh r wm =
  if r = Rheap.null || not (Rheap.is_allocated sh.heap r) then wm
  else begin
    let sense = Atomic.get sh.f_m in
    if Rheap.mark sh.heap r <> sense then begin
      if Atomic.get sh.phase <> Idle then begin
        Atomic.incr sh.cas_attempts;
        if Rheap.try_mark sh.heap r ~sense then begin
          Atomic.incr sh.cas_wins;
          r :: wm
        end
        else wm  (* some other thread won and greyed it *)
      end
      else wm
    end
    else begin
      Atomic.incr sh.barrier_fast_path;
      wm
    end
  end
