(** Stress harness for the concrete runtime: one collector domain cycling
    continuously, [n_muts] mutator domains running a workload for a
    wall-clock duration, with on-line root validation and a final
    stop-the-world reachability audit. *)

type stats = {
  cycles : int;
  ops : int;
  allocs : int;
  frees : int;
  cas_attempts : int;
  cas_wins : int;
  barrier_fast_path : int;
  hs_rounds : int;  (** handshake rounds completed by the collector *)
  live_at_end : int;
  alloc_stalls : int;  (** free-list-empty episodes across all mutators *)
  latency : Obs.Json.t;
      (** structured latency section: handshake round and per-mutator ack
          percentiles, barrier slow-path, allocation and stall-wait
          histograms, and the per-phase (mark/sweep/handshake) gc-cycle
          breakdown — all HDR snapshots ({!Obs.Latency}) with exact
          counts *)
  violation : string option;  (** [None] = SAFE *)
}

val pp_stats : stats Fmt.t

val reachable_set : Rheap.t -> Rheap.rf list -> bool array
(** Reachability over the concrete heap; only sound when the world is
    stopped. *)

val run :
  ?n_muts:int ->
  ?n_slots:int ->
  ?n_fields:int ->
  ?duration:float ->
  ?barriers:bool ->
  ?seed:int ->
  ?workload:Rmutator.workload ->
  ?trace_pause:float ->
  ?obs:Obs.Reporter.t ->
  ?tracer:Obs.Tracing.t ->
  ?latency:bool ->
  ?co_interval_ns:int ->
  unit ->
  stats
(** Run the harness.  [barriers:false] ablates the write barriers (the
    Lists workload then faults within cycles); [trace_pause] widens the
    collector's tracing window for few-core machines.  [latency:false]
    disables the HDR latency instrumentation (every site reduces to one
    branch); a positive [co_interval_ns] applies coordinated-omission
    back-fill to the collector's handshake-round history, treating rounds
    as a periodic operation with that expected interval.  When [obs] is an
    enabled reporter, the collector emits one [gc-cycle] record per cycle
    (handshake round latencies, mark/sweep/handshake phase split, marks,
    CAS attempts/wins, barrier fast-path rate), a [runtime-heartbeat]
    record every ~100 ms (live percentiles, allocation throughput, stall
    counts) and the harness a final [harness] record.  When
    [tracer] is live (create it with [n_muts + 1] lanes), lane 0 carries
    the collector's handshake-round, mark, sweep and gc-cycle spans and
    lanes 1..n_muts one whole-lifetime span per mutator domain. *)
