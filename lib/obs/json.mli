(** A minimal JSON value type with a printer and a parser.

    The observability layer emits JSONL event streams and the bench
    harness writes machine-readable reports; the test suite parses them
    back.  The container ships no JSON library, so this is a small,
    dependency-free implementation: ints are kept distinct from floats
    (metrics are mostly counters), strings are escaped per RFC 8259, and
    the parser accepts exactly what the printer emits plus standard
    whitespace and [\uXXXX] escapes. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

(** Indented multi-line rendering (2-space indent) for human-facing
    artifacts, e.g. the JSON payload embedded in [lib/explain]'s HTML
    reports.  [of_string] parses it back just like {!to_string}'s
    output. *)
val to_string_pretty : t -> string

val pp : t Fmt.t

(** [of_string s] parses one JSON value (surrounding whitespace allowed);
    trailing non-whitespace input is an error. *)
val of_string : string -> (t, string) result

(** {1 Accessors} — total; [None] on shape mismatch. *)

val member : string -> t -> t option
val to_int : t -> int option

(** [to_float] accepts both [Int] and [Float]. *)
val to_float : t -> float option

val to_string_opt : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
