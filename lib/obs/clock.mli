(** Monotonic time for durations and span timestamps.

    [Unix.gettimeofday] is wall-clock time: NTP slews and manual clock
    changes can make deltas negative or wildly wrong, which corrupts
    span durations and [rel_s] fields.  Every duration in the
    observability layer is therefore measured on [CLOCK_MONOTONIC];
    wall-clock [ts] fields remain for human correlation only. *)

(** Nanoseconds on the system monotonic clock, from an arbitrary but
    fixed origin.  Allocation-free; differences are true elapsed time. *)
val monotonic_ns : unit -> int

(** [elapsed_s ~since] in seconds, where [since] came from
    {!monotonic_ns}.  Never negative. *)
val elapsed_s : since:int -> float

val ns_to_s : int -> float
val ns_to_us : int -> float
