(** HDR-style latency histograms: log-bucketed, concurrent, exact tails.

    The reservoir histograms in {!Metrics} keep a uniform *sample*: past
    capacity, a p99.9 is the p99.9 of 4096 survivors, and the one 80 ms
    handshake in ten million is overwhelmingly likely to have been
    evicted.  Latency observatories need the opposite bias — the tail
    must be exact at any volume.  This module trades value resolution
    for exact counts: values (integer nanoseconds) land in fixed
    log-spaced buckets whose representative is within ~2% of any value
    in the bucket (1/64 worst case), counts are exact, so every
    percentile — p50 through p99.99 and beyond — is exact up to that 2%
    value quantisation, forever, in O(1) memory.

    Bucket scheme: values below 32 ns get one bucket each (exact);
    above, each power-of-two range splits into 32 linear sub-buckets
    (bucket width ≤ value/32, representative at the bucket midpoint, so
    relative error ≤ 1/64).  The range covers 0 ns .. 100 s; larger
    values clamp into the top bucket (the exact maximum is tracked
    separately and reported unclamped).

    Concurrency: recording is lock-free — each recording domain owns a
    lane (domain id modulo a small power-of-two lane count; lanes are
    allocated on first use) of atomic bucket counters, and a record is
    two [fetch_and_add]s plus min/max CAS loops that are almost always
    no-ops.  Snapshots merge the lanes; a snapshot concurrent with
    recording may straddle an observation, which is fine for
    monitoring.

    Coordinated omission: for a *periodic* operation measured by timing
    each occurrence, a single long stall hides the occurrences that
    never happened while it lasted, silently flattering the tail.
    {!record_corrected} applies the standard HdrHistogram back-fill:
    after recording a value [v] exceeding the expected interval [T], it
    also records [v - T], [v - 2T], ... while the remainder is at least
    [T] — the latencies the omitted occurrences would have seen.
    {!recorder} packages this for tick-style use. *)

type t

(** [create name] with [lanes] recording lanes (default 8, rounded up
    to a power of two).  Memory is one bucket array (~1 k counters) per
    lane actually recorded into, so a single-writer histogram costs one
    lane.  [name] labels the histogram in dumps and debugging. *)
val create : ?lanes:int -> string -> t

val name : t -> string

(** [record t v_ns] adds one observation of [v_ns] nanoseconds.
    Negative values clamp to 0; values above 100 s clamp into the top
    bucket (max stays exact).  Lock-free; safe from any domain. *)
val record : t -> int -> unit

(** [record_corrected t ~expected_interval_ns v_ns] records [v_ns] and
    back-fills the observations a periodic operation (period
    [expected_interval_ns]) would have made while this one stalled:
    [v - T], [v - 2T], ... while the remainder is ≥ [T].  With
    [expected_interval_ns <= 0] this is {!record}. *)
val record_corrected : t -> expected_interval_ns:int -> int -> unit

(** Total observations recorded (including back-filled ones). *)
val count : t -> int

(** [percentile t p] for [p] in [0..100]: the representative value of
    the bucket containing the [p]-th percentile observation, clamped to
    the exact observed [min..max]; [None] when empty. *)
val percentile : t -> float -> int option

val min_ns : t -> int option  (** Exact observed minimum. *)

val max_ns : t -> int option  (** Exact observed maximum (unclamped). *)

(** Aggregate view, merged across lanes. *)
type snapshot = {
  count : int;
  mean_ns : float;
  p50_ns : int;
  p90_ns : int;
  p99_ns : int;
  p999_ns : int;
  min_ns : int;
  max_ns : int;
}

val snapshot : t -> snapshot option
(** [None] when no observation was recorded. *)

(** The JSON summary attached to records: [count], [mean_ns], [p50_ns],
    [p90_ns], [p99_ns], [p999_ns], [min_ns], [max_ns].  Empty
    histograms emit [count = 0] and [null] for every other field —
    never [NaN]. *)
val to_json : t -> Json.t

(** {1 Interval recorder} — periodic operations, tick-to-tick. *)

type recorder

(** [recorder h] times successive {!tick}s into [h].  [clock] (default
    {!Clock.monotonic_ns}) is injectable for deterministic tests.  A
    positive [expected_interval_ns] enables coordinated-omission
    back-fill on every recorded interval. *)
val recorder : ?clock:(unit -> int) -> ?expected_interval_ns:int -> t -> recorder

(** The first tick arms the recorder; each subsequent tick records the
    time since the previous one (with back-fill if configured). *)
val tick : recorder -> unit

(** {1 Bucket arithmetic} — exposed for boundary tests. *)

val bucket_of : int -> int
(** Bucket index for a value (after clamping to the covered range). *)

val representative : int -> int
(** The value reported for a bucket: its midpoint (exact for values
    below 32 and for the first power-of-two range). *)

val n_buckets : int
