(* CLOCK_MONOTONIC via a one-line C stub; see clock.mli and clock_stubs.c. *)

external monotonic_ns : unit -> int = "obs_clock_monotonic_ns" [@@noalloc]

let ns_to_s ns = float_of_int ns *. 1e-9
let ns_to_us ns = float_of_int ns *. 1e-3
let elapsed_s ~since = ns_to_s (max 0 (monotonic_ns () - since))
