(* Counters, gauges, histograms, and the registry that snapshots them.
   See metrics.mli for the plain/atomic split rationale. *)

type metric =
  | M_counter of counter
  | M_acounter of acounter
  | M_gauge of gauge
  | M_histogram of histogram

and counter = { c_name : string; mutable c_n : int }
and acounter = { a_name : string; a_n : int Atomic.t }
and gauge = { g_name : string; mutable g_v : float }

(* Histograms are sharded by the observing domain's id so concurrent
   [observe]s never race: each shard holds its own reservoir and is
   guarded by a mutex that is uncontended unless two domain ids collide
   modulo the shard count.  Snapshots merge the shards.  Sample arrays
   are allocated on a shard's first observation, so an 8-way histogram
   that only ever sees one domain costs one reservoir. *)
and histogram = { h_name : string; h_cap : int; h_shards : hshard array }

and hshard = {
  hs_lock : Mutex.t;
  mutable hs_samples : float array;  (* reservoir; first [hs_filled] slots valid *)
  mutable hs_filled : int;
  mutable hs_seen : int;  (* total observations through this shard *)
  mutable hs_sum : float;
  mutable hs_min : float;
  mutable hs_max : float;
  mutable hs_lcg : int;  (* deterministic replacement stream *)
}

(* Registration may race (the runtime creates metrics from several
   domains), so the registry itself is locked; the metrics are not. *)
type registry = { lock : Mutex.t; mutable metrics : metric list }

let create_registry () = { lock = Mutex.create (); metrics = [] }
let default = create_registry ()

let register registry m =
  Mutex.lock registry.lock;
  registry.metrics <- m :: registry.metrics;
  Mutex.unlock registry.lock

(* -- counters ---------------------------------------------------------------- *)

let counter ?(registry = default) name =
  let c = { c_name = name; c_n = 0 } in
  register registry (M_counter c);
  c

let incr c = c.c_n <- c.c_n + 1
let add c n = c.c_n <- c.c_n + n
let count c = c.c_n

let acounter ?(registry = default) name =
  let a = { a_name = name; a_n = Atomic.make 0 } in
  register registry (M_acounter a);
  a

let aincr a = Atomic.incr a.a_n
let aadd a n = ignore (Atomic.fetch_and_add a.a_n n)
let acount a = Atomic.get a.a_n

(* -- gauges ------------------------------------------------------------------ *)

let gauge ?(registry = default) name =
  let g = { g_name = name; g_v = 0. } in
  register registry (M_gauge g);
  g

let set g v = g.g_v <- v
let value g = g.g_v

(* -- histograms -------------------------------------------------------------- *)

let n_hshards = 8

let histogram ?(registry = default) ?(capacity = 4096) name =
  if capacity <= 0 then invalid_arg "Metrics.histogram: capacity must be positive";
  let h =
    {
      h_name = name;
      h_cap = capacity;
      h_shards =
        Array.init n_hshards (fun _ ->
            {
              hs_lock = Mutex.create ();
              hs_samples = [||];
              hs_filled = 0;
              hs_seen = 0;
              hs_sum = 0.;
              hs_min = infinity;
              hs_max = neg_infinity;
              hs_lcg = 0x2545F491;
            });
    }
  in
  register registry (M_histogram h);
  h

let lcg_next s =
  (* the 48-bit java.util.Random step; only used once the reservoir is full *)
  s.hs_lcg <- (s.hs_lcg * 0x5DEECE66D + 0xB) land ((1 lsl 48) - 1);
  s.hs_lcg

let observe h v =
  let s = h.h_shards.((Domain.self () :> int) land (n_hshards - 1)) in
  Mutex.lock s.hs_lock;
  if s.hs_samples = [||] then s.hs_samples <- Array.make h.h_cap 0.;
  s.hs_seen <- s.hs_seen + 1;
  s.hs_sum <- s.hs_sum +. v;
  if v < s.hs_min then s.hs_min <- v;
  if v > s.hs_max then s.hs_max <- v;
  if s.hs_filled < h.h_cap then begin
    s.hs_samples.(s.hs_filled) <- v;
    s.hs_filled <- s.hs_filled + 1
  end
  else begin
    (* algorithm R: replace slot [r] for r uniform in [0, seen) iff r < cap *)
    let r = lcg_next s mod s.hs_seen in
    if r < h.h_cap then s.hs_samples.(r) <- v
  end;
  Mutex.unlock s.hs_lock

(* Snapshot helpers fold over the shards.  They take each shard's lock in
   turn, so a snapshot concurrent with observations sees each shard in a
   consistent state (the aggregate may straddle observations — fine for
   monitoring). *)
let fold_shards h f acc =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.hs_lock;
      let r = f acc s in
      Mutex.unlock s.hs_lock;
      r)
    acc h.h_shards

let observations h = fold_shards h (fun n s -> n + s.hs_seen) 0

let merged_samples h =
  let n = fold_shards h (fun n s -> n + s.hs_filled) 0 in
  let out = Array.make (max 1 n) 0. in
  let i = ref 0 in
  ignore
    (fold_shards h
       (fun () s ->
         Array.blit s.hs_samples 0 out !i s.hs_filled;
         i := !i + s.hs_filled)
       ());
  Array.sub out 0 n

let percentile h p =
  let sorted = merged_samples h in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 0 then nan
  else begin
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))
  end

let mean h =
  let seen = observations h in
  if seen = 0 then nan else fold_shards h (fun x s -> x +. s.hs_sum) 0. /. float_of_int seen

let hmin h =
  if observations h = 0 then nan else fold_shards h (fun x s -> Float.min x s.hs_min) infinity

let hmax h =
  if observations h = 0 then nan
  else fold_shards h (fun x s -> Float.max x s.hs_max) neg_infinity

let hsnapshot h =
  (* An empty histogram has nan percentiles; emit null rather than rely
     on every sink degrading non-finite floats the same way. *)
  let n = observations h in
  let stat v = if n = 0 then Json.Null else Json.Float v in
  Json.Obj
    [
      ("count", Json.Int n);
      ("mean", stat (mean h));
      ("p50", stat (percentile h 50.));
      ("p90", stat (percentile h 90.));
      ("p99", stat (percentile h 99.));
      ("min", stat (hmin h));
      ("max", stat (hmax h));
    ]

(* -- dump -------------------------------------------------------------------- *)

let dump ?(registry = default) () =
  Mutex.lock registry.lock;
  let metrics = registry.metrics in
  Mutex.unlock registry.lock;
  Json.Obj
    (List.rev_map
       (function
         | M_counter c -> (c.c_name, Json.Int c.c_n)
         | M_acounter a -> (a.a_name, Json.Int (Atomic.get a.a_n))
         | M_gauge g -> (g.g_name, Json.Float g.g_v)
         | M_histogram h -> (h.h_name, hsnapshot h))
       metrics)
