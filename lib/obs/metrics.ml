(* Counters, gauges, histograms, and the registry that snapshots them.
   See metrics.mli for the plain/atomic split rationale. *)

type metric =
  | M_counter of counter
  | M_acounter of acounter
  | M_gauge of gauge
  | M_histogram of histogram

and counter = { c_name : string; mutable c_n : int }
and acounter = { a_name : string; a_n : int Atomic.t }
and gauge = { g_name : string; mutable g_v : float }

and histogram = {
  h_name : string;
  h_cap : int;
  h_samples : float array;  (* reservoir; first [h_filled] slots valid *)
  mutable h_filled : int;
  mutable h_seen : int;  (* total observations *)
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  mutable h_lcg : int;  (* deterministic replacement stream *)
}

(* Registration may race (the runtime creates metrics from several
   domains), so the registry itself is locked; the metrics are not. *)
type registry = { lock : Mutex.t; mutable metrics : metric list }

let create_registry () = { lock = Mutex.create (); metrics = [] }
let default = create_registry ()

let register registry m =
  Mutex.lock registry.lock;
  registry.metrics <- m :: registry.metrics;
  Mutex.unlock registry.lock

(* -- counters ---------------------------------------------------------------- *)

let counter ?(registry = default) name =
  let c = { c_name = name; c_n = 0 } in
  register registry (M_counter c);
  c

let incr c = c.c_n <- c.c_n + 1
let add c n = c.c_n <- c.c_n + n
let count c = c.c_n

let acounter ?(registry = default) name =
  let a = { a_name = name; a_n = Atomic.make 0 } in
  register registry (M_acounter a);
  a

let aincr a = Atomic.incr a.a_n
let aadd a n = ignore (Atomic.fetch_and_add a.a_n n)
let acount a = Atomic.get a.a_n

(* -- gauges ------------------------------------------------------------------ *)

let gauge ?(registry = default) name =
  let g = { g_name = name; g_v = 0. } in
  register registry (M_gauge g);
  g

let set g v = g.g_v <- v
let value g = g.g_v

(* -- histograms -------------------------------------------------------------- *)

let histogram ?(registry = default) ?(capacity = 4096) name =
  if capacity <= 0 then invalid_arg "Metrics.histogram: capacity must be positive";
  let h =
    {
      h_name = name;
      h_cap = capacity;
      h_samples = Array.make capacity 0.;
      h_filled = 0;
      h_seen = 0;
      h_sum = 0.;
      h_min = infinity;
      h_max = neg_infinity;
      h_lcg = 0x2545F491;
    }
  in
  register registry (M_histogram h);
  h

let lcg_next h =
  (* the 48-bit java.util.Random step; only used once the reservoir is full *)
  h.h_lcg <- (h.h_lcg * 0x5DEECE66D + 0xB) land ((1 lsl 48) - 1);
  h.h_lcg

let observe h v =
  h.h_seen <- h.h_seen + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  if h.h_filled < h.h_cap then begin
    h.h_samples.(h.h_filled) <- v;
    h.h_filled <- h.h_filled + 1
  end
  else begin
    (* algorithm R: replace slot [r] for r uniform in [0, seen) iff r < cap *)
    let r = lcg_next h mod h.h_seen in
    if r < h.h_cap then h.h_samples.(r) <- v
  end

let observations h = h.h_seen

let percentile h p =
  if h.h_filled = 0 then nan
  else begin
    let sorted = Array.sub h.h_samples 0 h.h_filled in
    Array.sort compare sorted;
    let n = h.h_filled in
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))
  end

let mean h = if h.h_seen = 0 then nan else h.h_sum /. float_of_int h.h_seen
let hmin h = if h.h_seen = 0 then nan else h.h_min
let hmax h = if h.h_seen = 0 then nan else h.h_max

let hsnapshot h =
  Json.Obj
    [
      ("count", Json.Int h.h_seen);
      ("mean", Json.Float (mean h));
      ("p50", Json.Float (percentile h 50.));
      ("p90", Json.Float (percentile h 90.));
      ("p99", Json.Float (percentile h 99.));
      ("min", Json.Float (hmin h));
      ("max", Json.Float (hmax h));
    ]

(* -- dump -------------------------------------------------------------------- *)

let dump ?(registry = default) () =
  Mutex.lock registry.lock;
  let metrics = registry.metrics in
  Mutex.unlock registry.lock;
  Json.Obj
    (List.rev_map
       (function
         | M_counter c -> (c.c_name, Json.Int c.c_n)
         | M_acounter a -> (a.a_name, Json.Int (Atomic.get a.a_n))
         | M_gauge g -> (g.g_name, Json.Float g.g_v)
         | M_histogram h -> (h.h_name, hsnapshot h))
       metrics)
