(* BENCH report diffing; see benchcmp.mli. *)

type direction = Lower_better | Higher_better

type delta = {
  key : string;
  dir : direction;
  v_old : float;
  v_new : float;
  change_pct : float;
}

type result = {
  threshold : float;
  regressions : delta list;
  improvements : delta list;
  unchanged : delta list;
  only_old : string list;
  only_new : string list;
  warnings : string list;
}

let default_threshold = 0.15

(* -- flattening a report into metrics ----------------------------------------- *)

let finite v = match v with Some f when Float.is_finite f -> Some f | _ -> None

let fmember k j = finite (Option.bind (Json.member k j) Json.to_float)
let smember k j = Option.bind (Json.member k j) Json.to_string_opt
let lmember k j = Option.value ~default:[] (Option.bind (Json.member k j) Json.to_list)

(* One metric per figure test (ns/run, lower better), plus the checker
   throughput blocks (states/sec and steps/sec, higher better).  The
   campaign block is deliberately excluded: states-to-kill moves with
   search-order changes that are not performance regressions. *)
let metrics_of_report report =
  let groups =
    (* Bechamel already group-prefixes test names ("fig5/mark-fast-path") *)
    List.concat_map
      (fun g ->
        List.filter_map
          (fun t ->
            match (smember "name" t, fmember "ns_per_run" t) with
            | Some name, Some v -> Some (name ^ " ns_per_run", Lower_better, v)
            | _ -> None)
          (lmember "tests" g))
      (lmember "groups" report)
  in
  let checker =
    match Json.member "checker" report with
    | None -> []
    | Some c ->
      List.filter_map
        (fun (key, k) ->
          Option.map (fun v -> (key, Higher_better, v)) (fmember k c))
        [
          ("checker explore_states_per_sec", "explore_states_per_sec");
          ("checker walk_steps_per_sec", "walk_steps_per_sec");
        ]
  in
  let par =
    match Json.member "checker_par" report with
    | None -> []
    | Some p ->
      List.concat_map
        (fun row ->
          match Option.bind (Json.member "jobs" row) Json.to_int with
          | None -> []
          | Some jobs ->
            let throughput =
              match fmember "states_per_sec" row with
              | Some v -> [ (Fmt.str "checker_par jobs=%d states_per_sec" jobs, Higher_better, v) ]
              | None -> []
            in
            (* the speedup curve itself is the metric the work-stealing
               frontier is judged by; jobs=1 is 1.0 by construction *)
            let speedup =
              match fmember "speedup_vs_seq" row with
              | Some v when jobs > 1 ->
                [ (Fmt.str "checker_par jobs=%d speedup_vs_seq" jobs, Higher_better, v) ]
              | _ -> []
            in
            throughput @ speedup)
        (lmember "rows" p)
  in
  let reduce =
    match Json.member "checker_reduce" report with
    | None -> []
    | Some (Json.List scenarios) ->
      List.concat_map
        (fun s ->
          let label = Option.value ~default:"?" (smember "scenario" s) in
          List.filter_map
            (fun row ->
              match (smember "reduce" row, fmember "states_per_sec" row) with
              | Some mode, Some v ->
                Some
                  (Fmt.str "checker_reduce %s reduce=%s states_per_sec" label mode, Higher_better, v)
              | _ -> None)
            (lmember "rows" s))
        scenarios
    | Some _ -> []
  in
  let store =
    match Json.member "checker_store" report with
    | None -> []
    | Some p ->
      List.concat_map
        (fun row ->
          match smember "label" row with
          | None -> []
          | Some label ->
            List.filter_map
              (fun (suffix, k) ->
                Option.map
                  (fun v -> (Fmt.str "checker_store %s %s" label suffix, Higher_better, v))
                  (fmember k row))
              [ ("states_per_gb", "states_per_gb"); ("states_per_sec", "states_per_sec") ])
        (lmember "rows" p)
  in
  let runtime_latency =
    match Json.member "runtime_latency" report with
    | None -> []
    | Some p ->
      (* rows are keyed by the *requested* mutator count: on a small host
         every row clamps to the same actual count, and keying by actual
         would collide them (each row still records the honest n_muts) *)
      let rows =
        List.concat_map
          (fun row ->
            match Option.bind (Json.member "n_muts_requested" row) Json.to_int with
            | None -> []
            | Some muts ->
              let flat =
                List.filter_map
                  (fun (suffix, k, dir) ->
                    Option.map
                      (fun v -> (Fmt.str "runtime_latency muts=%d %s" muts suffix, dir, v))
                      (fmember k row))
                  [
                    ("alloc_per_sec", "alloc_per_sec", Higher_better);
                    ("ops_per_sec", "ops_per_sec", Higher_better);
                  ]
              in
              let hist key =
                match Json.member key row with
                | None -> []
                | Some h ->
                  List.filter_map
                    (fun k ->
                      Option.map
                        (fun v ->
                          (Fmt.str "runtime_latency muts=%d %s %s" muts key k, Lower_better, v))
                        (fmember k h))
                    [ "p50_ns"; "p99_ns"; "p999_ns"; "max_ns" ]
              in
              flat @ hist "hs" @ hist "pause")
          (lmember "rows" p)
      in
      let overhead =
        match fmember "barrier_overhead_pct" p with
        | Some v -> [ ("runtime_latency barrier_overhead_pct", Lower_better, v) ]
        | None -> []
      in
      overhead @ rows
  in
  let certify =
    match Json.member "checker_certify" report with
    | None -> []
    | Some c ->
      (* the ratio is tracked Lower_better (a jump means validator
         overhead grew); throughput and table compactness the usual
         ways round.  recheck_ratio gets a generous allowance via the
         caller's threshold since both numerator and denominator are
         sub-second walls on this instance *)
      List.filter_map
        (fun (key, dir, k) -> Option.map (fun v -> (key, dir, v)) (fmember k c))
        [
          ("checker_certify recheck_ratio", Lower_better, "recheck_ratio");
          ("checker_certify recheck_states_per_sec", Higher_better, "recheck_states_per_sec");
          ("checker_certify bytes_per_state", Lower_better, "bytes_per_state");
        ]
  in
  groups @ checker @ par @ reduce @ store @ runtime_latency @ certify

(* Top-level report keys benchcmp understands: metric sections it
   flattens, sections it deliberately skips, and run metadata.  Anything
   else is an unknown metric section from a newer (or older) report
   schema — warn and skip it rather than silently pretend the reports
   fully agree. *)
let known_sections =
  [
    (* metric sections *)
    "groups"; "checker"; "checker_par"; "checker_reduce"; "checker_store";
    "runtime_latency"; "checker_certify";
    (* deliberately excluded: states-to-kill moves with search order *)
    "campaign";
    (* metadata *)
    "schema"; "ocaml_version"; "git_commit"; "hostname"; "domains_available";
    "recommended_domains";
  ]

let unknown_sections report =
  match report with
  | Json.Obj fields ->
    List.filter_map
      (fun (k, _) -> if List.mem k known_sections then None else Some k)
      fields
  | _ -> []

(* -- comparison --------------------------------------------------------------- *)

(* Latency tails are the right thing to report but the wrong thing to
   gate at the base threshold: a p99.9 or a max is one scheduling hiccup
   wide, so those metrics get a 3x noise allowance before they count as
   regressions.  Direction stays strict — a lower tail is still an
   improvement. *)
let noise_mult key =
  if
    String.ends_with ~suffix:"p999_ns" key || String.ends_with ~suffix:"max_ns" key
  then 3.
  else 1.

let classify ~threshold dir v_old v_new =
  let change_pct = if v_old = 0. then 0. else (v_new -. v_old) /. v_old *. 100. in
  let worse =
    match dir with Lower_better -> change_pct > 0. | Higher_better -> change_pct < 0.
  in
  let beyond = Float.abs change_pct > threshold *. 100. in
  (change_pct, if not beyond then `Unchanged else if worse then `Regression else `Improvement)

let compare_reports ?(threshold = default_threshold) ~old_ new_ =
  match (old_, new_) with
  | Json.Obj _, Json.Obj _ ->
    let warnings = ref [] in
    let warn fmt = Fmt.kstr (fun s -> warnings := s :: !warnings) fmt in
    (match (smember "hostname" old_, smember "hostname" new_) with
    | Some a, Some b when a <> b ->
      Error
        (Fmt.str
           "reports come from different machines (%s vs %s); benchmarks are only comparable on \
            the same host"
           a b)
    | None, _ | _, None ->
      warn "at least one report predates schema v3 (no hostname); same-machine check skipped";
      Ok ()
    | Some _, Some _ -> Ok ())
    |> Result.map (fun () ->
           (match (smember "schema" old_, smember "schema" new_) with
           | Some a, Some b when a <> b -> warn "schema skew: %s vs %s" a b
           | _ -> ());
           (match (smember "ocaml_version" old_, smember "ocaml_version" new_) with
           | Some a, Some b when a <> b -> warn "compiler skew: OCaml %s vs %s" a b
           | _ -> ());
           List.iter
             (fun (name, report) ->
               match unknown_sections report with
               | [] -> ()
               | ks ->
                 warn "unknown metric section%s in %s report: %s (skipped)"
                   (if List.length ks = 1 then "" else "s")
                   name (String.concat ", " ks))
             [ ("old", old_); ("new", new_) ];
           let m_old = metrics_of_report old_ and m_new = metrics_of_report new_ in
           let tbl = Hashtbl.create 64 in
           List.iter (fun (k, d, v) -> Hashtbl.replace tbl k (d, v)) m_old;
           let regressions = ref [] and improvements = ref [] and unchanged = ref [] in
           let only_new = ref [] in
           List.iter
             (fun (k, dir, v_new) ->
               match Hashtbl.find_opt tbl k with
               | None -> only_new := k :: !only_new
               | Some (_, v_old) ->
                 Hashtbl.remove tbl k;
                 let change_pct, cls =
                   classify ~threshold:(threshold *. noise_mult k) dir v_old v_new
                 in
                 let d = { key = k; dir; v_old; v_new; change_pct } in
                 (match cls with
                 | `Regression -> regressions := d :: !regressions
                 | `Improvement -> improvements := d :: !improvements
                 | `Unchanged -> unchanged := d :: !unchanged))
             m_new;
           let only_old =
             List.filter_map
               (fun (k, _, _) -> if Hashtbl.mem tbl k then Some k else None)
               m_old
           in
           let by_severity l =
             List.sort (fun a b -> compare (Float.abs b.change_pct) (Float.abs a.change_pct)) l
           in
           {
             threshold;
             regressions = by_severity !regressions;
             improvements = by_severity !improvements;
             unchanged = List.rev !unchanged;
             only_old;
             only_new = List.rev !only_new;
             warnings = List.rev !warnings;
           })
  | _ -> Error "a BENCH report must be a JSON object"

let read_report path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | s -> (
    match Json.of_string s with
    | Ok j -> Ok j
    | Error msg -> Error (Fmt.str "%s: %s" path msg))

let compare_files ?threshold ~old_path new_path =
  Result.bind (read_report old_path) (fun old_ ->
      Result.bind (read_report new_path) (fun new_ -> compare_reports ?threshold ~old_ new_))

let has_regressions r = r.regressions <> []

(* -- rendering ---------------------------------------------------------------- *)

let pp_delta b tag d =
  Buffer.add_string b
    (Fmt.str "  %-4s %-52s %14.1f -> %14.1f  %+6.1f%%%s\n" tag d.key d.v_old d.v_new d.change_pct
       (match d.dir with Lower_better -> " (ns)" | Higher_better -> " (rate)"))

let render ?old_name ?new_name r =
  let b = Buffer.create 512 in
  (match (old_name, new_name) with
  | Some o, Some n ->
    Buffer.add_string b (Fmt.str "benchdiff %s -> %s (threshold %.0f%%)\n" o n (r.threshold *. 100.))
  | _ -> Buffer.add_string b (Fmt.str "benchdiff (threshold %.0f%%)\n" (r.threshold *. 100.)));
  List.iter (fun w -> Buffer.add_string b ("  warning: " ^ w ^ "\n")) r.warnings;
  List.iter (pp_delta b "WORSE") r.regressions;
  List.iter (pp_delta b "better") r.improvements;
  List.iter (fun k -> Buffer.add_string b (Fmt.str "  only in old report: %s\n" k)) r.only_old;
  List.iter (fun k -> Buffer.add_string b (Fmt.str "  only in new report: %s\n" k)) r.only_new;
  Buffer.add_string b
    (Fmt.str "  %d regression%s, %d improvement%s, %d within noise\n"
       (List.length r.regressions)
       (if List.length r.regressions = 1 then "" else "s")
       (List.length r.improvements)
       (if List.length r.improvements = 1 then "" else "s")
       (List.length r.unchanged));
  Buffer.contents b
