(** Low-overhead per-domain span tracing with Chrome trace-event output.

    A tracer owns one preallocated ring buffer per domain lane.  Recording
    a span writes three ints (name id, start, duration — 24 bytes) into
    the owning lane with no allocation, no locking and no formatting; when
    a lane is full, further events are counted as drops and the buffered
    prefix is preserved.  Timestamps come from the monotonic {!Clock} (or
    an injected stub, for byte-stable tests).

    Lane discipline: a lane must have a single writer at a time.  The
    checkers index lanes by worker-domain id; the fork/join structure of
    the level barrier (and of the runtime harness) provides the
    happens-before edges when one domain finishes a lane and another
    (e.g. the coordinator emitting barrier-wait spans) takes it over.

    [write] emits the buffered events as Chrome trace-event JSON (the
    ["traceEvents"] array format), loadable in Perfetto / chrome://tracing:
    one [pid] per tracer, one [tid] per lane, ["X"] complete events for
    spans and ["i"] instant events, each with [ph]/[ts]/[pid]/[tid], with
    timestamps in microseconds relative to the tracer's creation. *)

type t

(** The disabled tracer: {!enabled} is false, every recording operation
    returns immediately, {!now} returns 0. *)
val null : t

(** [create ~domains ()] with [domains] lanes of [capacity] events each
    (default 65536).  [clock] (default {!Clock.monotonic_ns}) is the
    timestamp source — inject a counter for deterministic output.
    [name] labels the trace's process in viewers. *)
val create : ?capacity:int -> ?clock:(unit -> int) -> ?name:string -> domains:int -> unit -> t

val enabled : t -> bool

(** Number of lanes ([domains] at creation; 0 for {!null}). *)
val lanes : t -> int

(** [intern t name] returns the id for span name [name], registering it on
    first use.  Intern at setup time; recording takes ids only.  Interning
    is idempotent and (unlike recording) mutex-protected. *)
val intern : t -> string -> int

(** [set_lane t ~dom name] labels lane [dom] ("thread_name" metadata). *)
val set_lane : t -> dom:int -> string -> unit

(** Current timestamp on the tracer's clock; 0 when disabled.  Pass the
    result back as [start_ns]/[stop_ns]. *)
val now : t -> int

(** [span t ~dom ~name ~start_ns] records a span ending now. *)
val span : t -> dom:int -> name:int -> start_ns:int -> unit

(** [span_between] records a span with an explicit end, e.g. a barrier
    wait reconstructed by the coordinator after the join. *)
val span_between : t -> dom:int -> name:int -> start_ns:int -> stop_ns:int -> unit

(** [span_args] additionally attaches JSON args shown in the viewer's
    detail pane.  Costs an allocation — use for coarse (per-level,
    per-cycle) spans, not per-state ones. *)
val span_args :
  t -> dom:int -> name:int -> start_ns:int -> stop_ns:int -> args:(string * Json.t) list -> unit

(** [instant t ~dom ~name] marks a point in time on the lane. *)
val instant : t -> dom:int -> name:int -> unit

(** Events currently buffered across all lanes (excluding drops). *)
val events : t -> int

(** Events dropped because their lane was full. *)
val drops : t -> int

(** The Chrome trace-event document for the events recorded so far. *)
val to_json : t -> Json.t

(** [write t path] writes {!to_json} to [path] (single JSON document). *)
val write : t -> string -> unit

(** {1 CLI plumbing} *)

(** [resolve ?out ~domains ()]: a live tracer when [out] is given (the
    [--trace-out=FILE] flag), {!null} otherwise. *)
val resolve : ?out:string -> domains:int -> unit -> t

(** [finish t ?out ()] writes the trace to [out] when both are live and
    returns the (events, drops) counts written.  [None] when disabled. *)
val finish : t -> ?out:string -> unit -> (int * int) option
