(* Per-domain ring-buffer span tracer; see tracing.mli for the contract.

   Hot-path layout: three parallel int arrays per lane (name id, start ns,
   duration ns — instants use duration -1), a fill cursor and a drop
   counter.  Recording is three unsafe stores and a bump: no allocation,
   no lock, no branch on the disabled path beyond [enabled].  Rich spans
   (with JSON args) go to a side list per lane; they are coarse-grained
   (per level / per GC cycle) so the allocation does not matter. *)

type rich = { r_name : int; r_start : int; r_dur : int; r_args : (string * Json.t) list }

type lane = {
  names : int array;
  starts : int array;
  durs : int array;  (* -1 = instant event *)
  mutable fill : int;
  mutable dropped : int;
  mutable rich : rich list;  (* newest first *)
  mutable label : string option;
}

type t = {
  live : bool;
  capacity : int;
  clock : unit -> int;
  t0 : int;  (* clock at creation; event timestamps are relative to it *)
  pname : string;
  lanes_ : lane array;
  intern_lock : Mutex.t;
  name_ids : (string, int) Hashtbl.t;
  mutable names_rev : string list;  (* id order, newest first *)
  mutable n_names : int;
}

let make_lane capacity =
  {
    names = Array.make capacity 0;
    starts = Array.make capacity 0;
    durs = Array.make capacity 0;
    fill = 0;
    dropped = 0;
    rich = [];
    label = None;
  }

let create_gen ~live ?(capacity = 65536) ?(clock = Clock.monotonic_ns) ?(name = "relaxing-safely")
    ~domains () =
  if live && (capacity <= 0 || domains <= 0) then
    invalid_arg "Tracing.create: capacity and domains must be positive";
  {
    live;
    capacity;
    clock;
    t0 = (if live then clock () else 0);
    pname = name;
    lanes_ = Array.init (if live then domains else 0) (fun _ -> make_lane (if live then capacity else 0));
    intern_lock = Mutex.create ();
    name_ids = Hashtbl.create 64;
    names_rev = [];
    n_names = 0;
  }

let null = create_gen ~live:false ~capacity:0 ~domains:0 ()
let create ?capacity ?clock ?name ~domains () = create_gen ~live:true ?capacity ?clock ?name ~domains ()

let enabled t = t.live
let lanes t = Array.length t.lanes_

let intern t name =
  if not t.live then 0
  else begin
    Mutex.lock t.intern_lock;
    let id =
      match Hashtbl.find_opt t.name_ids name with
      | Some id -> id
      | None ->
        let id = t.n_names in
        Hashtbl.add t.name_ids name id;
        t.names_rev <- name :: t.names_rev;
        t.n_names <- id + 1;
        id
    in
    Mutex.unlock t.intern_lock;
    id
  end

let set_lane t ~dom label = if t.live then t.lanes_.(dom).label <- Some label

let now t = if t.live then t.clock () else 0

let record t ~dom ~name ~start_ns ~dur =
  let l = t.lanes_.(dom) in
  let i = l.fill in
  if i < t.capacity then begin
    Array.unsafe_set l.names i name;
    Array.unsafe_set l.starts i (start_ns - t.t0);
    Array.unsafe_set l.durs i dur;
    l.fill <- i + 1
  end
  else l.dropped <- l.dropped + 1

let span_between t ~dom ~name ~start_ns ~stop_ns =
  if t.live then record t ~dom ~name ~start_ns ~dur:(max 0 (stop_ns - start_ns))

let span t ~dom ~name ~start_ns =
  if t.live then record t ~dom ~name ~start_ns ~dur:(max 0 (t.clock () - start_ns))

let instant t ~dom ~name =
  if t.live then record t ~dom ~name ~start_ns:(t.clock ()) ~dur:(-1)

let span_args t ~dom ~name ~start_ns ~stop_ns ~args =
  if t.live then begin
    let l = t.lanes_.(dom) in
    if l.fill + List.length l.rich < t.capacity then
      l.rich <-
        { r_name = name; r_start = start_ns - t.t0; r_dur = max 0 (stop_ns - start_ns); r_args = args }
        :: l.rich
    else l.dropped <- l.dropped + 1
  end

let events t = Array.fold_left (fun n l -> n + l.fill + List.length l.rich) 0 t.lanes_
let drops t = Array.fold_left (fun n l -> n + l.dropped) 0 t.lanes_

(* -- Chrome trace-event output ----------------------------------------------- *)

let us ns = Json.Float (Clock.ns_to_us ns)

let meta ~tid name value =
  Json.Obj
    [
      ("ph", Json.String "M");
      ("ts", Json.Int 0);
      ("pid", Json.Int 0);
      ("tid", Json.Int tid);
      ("name", Json.String name);
      ("args", Json.Obj [ ("name", Json.String value) ]);
    ]

let event_json ~tid ~name ~start ~dur ~args =
  let base =
    [
      ("pid", Json.Int 0);
      ("tid", Json.Int tid);
      ("name", Json.String name);
      ("cat", Json.String "obs");
    ]
  in
  let args = match args with [] -> [] | l -> [ ("args", Json.Obj l) ] in
  if dur < 0 then
    Json.Obj
      ((("ph", Json.String "i") :: ("ts", us start) :: ("s", Json.String "t") :: base) @ args)
  else
    Json.Obj ((("ph", Json.String "X") :: ("ts", us start) :: ("dur", us dur) :: base) @ args)

let to_json t =
  let names = Array.of_list (List.rev t.names_rev) in
  let name_of id = if id >= 0 && id < Array.length names then names.(id) else "?" in
  let evs = ref [] in
  (* reverse lane order + reverse event order so the final list is
     (lane 0 event 0) first: deterministic output for byte-stable tests *)
  for dom = Array.length t.lanes_ - 1 downto 0 do
    let l = t.lanes_.(dom) in
    List.iter
      (fun r ->
        evs :=
          event_json ~tid:dom ~name:(name_of r.r_name) ~start:r.r_start ~dur:r.r_dur
            ~args:r.r_args
          :: !evs)
      l.rich;
    for i = l.fill - 1 downto 0 do
      evs :=
        event_json ~tid:dom ~name:(name_of l.names.(i)) ~start:l.starts.(i) ~dur:l.durs.(i)
          ~args:[]
        :: !evs
    done;
    evs :=
      meta ~tid:dom "thread_name"
        (match l.label with Some s -> s | None -> Fmt.str "domain %d" dom)
      :: !evs
  done;
  evs := meta ~tid:0 "process_name" t.pname :: !evs;
  Json.Obj
    [
      ("traceEvents", Json.List !evs);
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("events", Json.Int (events t));
            ("dropped_events", Json.Int (drops t));
            ("lanes", Json.Int (lanes t));
          ] );
    ]

let write t path =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (Json.to_string (to_json t));
      Out_channel.output_char oc '\n')

(* -- CLI plumbing ------------------------------------------------------------- *)

let resolve ?out ~domains () =
  match out with None -> null | Some _ -> create ~domains:(max 1 domains) ()

let finish t ?out () =
  match (t.live, out) with
  | true, Some path ->
    write t path;
    Some (events t, drops t)
  | _ -> None
