(* Timed mutexes and the Amdahl serial-fraction estimate; see contention.mli. *)

type lock = {
  m : Mutex.t;
  (* all counters are mutated while holding [m], so plain fields are exact *)
  mutable acquires : int;
  mutable contended : int;
  mutable wait_ns : int;
  mutable max_wait_ns : int;
}

let make_lock () = { m = Mutex.create (); acquires = 0; contended = 0; wait_ns = 0; max_wait_ns = 0 }

let lock l =
  if Mutex.try_lock l.m then l.acquires <- l.acquires + 1
  else begin
    let t0 = Clock.monotonic_ns () in
    Mutex.lock l.m;
    let dt = Clock.monotonic_ns () - t0 in
    l.acquires <- l.acquires + 1;
    l.contended <- l.contended + 1;
    l.wait_ns <- l.wait_ns + dt;
    if dt > l.max_wait_ns then l.max_wait_ns <- dt
  end

let unlock l = Mutex.unlock l.m

let with_lock l f =
  lock l;
  match f () with
  | v ->
    unlock l;
    v
  | exception e ->
    unlock l;
    raise e

type lock_stats = { acquires : int; contended : int; wait_ns : int; max_wait_ns : int }

let lock_stats (l : lock) =
  { acquires = l.acquires; contended = l.contended; wait_ns = l.wait_ns; max_wait_ns = l.max_wait_ns }

let lock_stats_json s =
  Json.Obj
    [
      ("acquires", Json.Int s.acquires);
      ("contended", Json.Int s.contended);
      ("wait_s", Json.Float (Clock.ns_to_s s.wait_ns));
      ("max_wait_s", Json.Float (Clock.ns_to_s s.max_wait_ns));
    ]

let shard_summary locks =
  let acquires = ref 0 and contended = ref 0 and wait = ref 0 and mx = ref 0 in
  let waits =
    Array.map
      (fun l ->
        let s = lock_stats l in
        acquires := !acquires + s.acquires;
        contended := !contended + s.contended;
        wait := !wait + s.wait_ns;
        if s.max_wait_ns > !mx then mx := s.max_wait_ns;
        Clock.ns_to_s s.wait_ns)
      locks
  in
  ({ acquires = !acquires; contended = !contended; wait_ns = !wait; max_wait_ns = !mx }, waits)

(* -- serial fraction ---------------------------------------------------------- *)

type estimate = {
  jobs : int;
  wall_s : float;
  busy_s : float;
  serial_s : float;
  serial_fraction : float;
  effective_parallelism : float;
}

let estimate ~jobs ~wall_s ~busy_per_domain =
  let busy_s = Array.fold_left ( +. ) 0. busy_per_domain in
  (* busy time cannot exceed jobs * wall (each domain is busy at most the
     whole run); clamp measurement noise *)
  let busy_s = Float.min busy_s (float_of_int jobs *. wall_s) in
  if jobs <= 1 || wall_s <= 0. then
    {
      jobs;
      wall_s;
      busy_s;
      serial_s = 0.;
      serial_fraction = 0.;
      effective_parallelism = (if wall_s > 0. then busy_s /. wall_s else 1.);
    }
  else begin
    let n = float_of_int jobs in
    (* T = s + p/n and W = s + p  =>  s = (n*T - W) / (n - 1) *)
    let serial_s = Float.max 0. (((n *. wall_s) -. busy_s) /. (n -. 1.)) in
    let work = Float.max busy_s 1e-12 in
    let serial_fraction = Float.min 1. (serial_s /. work) in
    { jobs; wall_s; busy_s; serial_s; serial_fraction; effective_parallelism = busy_s /. wall_s }
  end

let predicted_speedup e n =
  if n <= 0 then 0.
  else begin
    let f = e.serial_fraction in
    1. /. (f +. ((1. -. f) /. float_of_int n))
  end

let estimate_json e =
  [
    ("jobs", Json.Int e.jobs);
    ("wall_s", Json.Float e.wall_s);
    ("busy_s", Json.Float e.busy_s);
    ("serial_s", Json.Float e.serial_s);
    ("serial_fraction", Json.Float e.serial_fraction);
    ("effective_parallelism", Json.Float e.effective_parallelism);
    ("amdahl_speedup_at_jobs", Json.Float (predicted_speedup e e.jobs));
  ]
