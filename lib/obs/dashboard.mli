(** [--obs=live]: an in-terminal dashboard over the observability stream.

    The dashboard is a reporter sink (see {!Reporter.of_spec}): it
    consumes the same records the JSONL sink would write — heartbeats,
    per-level records, [scaling-detail], [outcome] — and redraws a
    status panel in place: states/s, frontier depth, ETA against the
    state cap, per-domain utilization bars, shard-lock heat, and (under
    [--mem-budget]) a tiered-store line: resident bytes against the
    budget, on-disk segment count and spilled-state count.

    On a real terminal (stderr is a tty and [$TERM] is not [dumb]) it
    uses ANSI cursor movement to redraw in place, throttled to 10 Hz.
    Otherwise it falls back to plain append-only status lines at most
    once per second, so logs captured from CI stay readable. *)

type t

type mode = Ansi | Plain

(** [create ()] auto-detects the mode from stderr unless [mode] is
    forced.  [out] overrides the output (default stderr) — tests render
    into a buffer. *)
val create : ?mode:mode -> ?out:(string -> unit) -> unit -> t

(** Feed one observability record (the event name and its fields). *)
val update : t -> string -> (string * Json.t) list -> unit

(** Draw the final panel state and release the terminal (the cursor ends
    on a fresh line).  Idempotent. *)
val finish : t -> unit
