(* Minimal JSON: printer + recursive-descent parser.  See json.mli for why
   this exists at all (no JSON library in the container). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* -- printing --------------------------------------------------------------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
    (* infinities and NaN are not JSON; degrade to null rather than emit an
       unparseable stream *)
    if Float.is_finite f then Buffer.add_string b (float_to_string f)
    else Buffer.add_string b "null"
  | String s -> escape_string b s
  | List vs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        write b v)
      vs;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        escape_string b k;
        Buffer.add_char b ':';
        write b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* Indented rendering for values meant to be read by people (the explain
   subsystem embeds machine-readable JSON in its HTML reports).  Same
   grammar as [write]: [of_string] parses either form back. *)
let to_string_pretty v =
  let b = Buffer.create 1024 in
  let pad n = Buffer.add_string b (String.make n ' ') in
  let rec go ind = function
    | (Null | Bool _ | Int _ | Float _ | String _) as v -> write b v
    | List [] -> Buffer.add_string b "[]"
    | List vs ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (ind + 2);
          go (ind + 2) v)
        vs;
      Buffer.add_char b '\n';
      pad ind;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (ind + 2);
          escape_string b k;
          Buffer.add_string b ": ";
          go (ind + 2) v)
        fields;
      Buffer.add_char b '\n';
      pad ind;
      Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.contents b

let pp ppf v = Fmt.string ppf (to_string v)

(* -- parsing ---------------------------------------------------------------- *)

exception Parse_error of string

let parse_error fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let continue = ref true in
  while !continue do
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> advance c
    | _ -> continue := false
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> parse_error "expected '%c' at offset %d, found '%c'" ch c.pos x
  | None -> parse_error "expected '%c' at offset %d, found end of input" ch c.pos

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else parse_error "invalid literal at offset %d" c.pos

let utf8_of_code b code =
  (* encode a BMP code point (we do not combine surrogate pairs; lone
     surrogates become U+FFFD) *)
  let code = if code >= 0xD800 && code <= 0xDFFF then 0xFFFD else code in
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> parse_error "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> advance c; Buffer.add_char b '"'; loop ()
      | Some '\\' -> advance c; Buffer.add_char b '\\'; loop ()
      | Some '/' -> advance c; Buffer.add_char b '/'; loop ()
      | Some 'n' -> advance c; Buffer.add_char b '\n'; loop ()
      | Some 'r' -> advance c; Buffer.add_char b '\r'; loop ()
      | Some 't' -> advance c; Buffer.add_char b '\t'; loop ()
      | Some 'b' -> advance c; Buffer.add_char b '\b'; loop ()
      | Some 'f' -> advance c; Buffer.add_char b '\012'; loop ()
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.src then parse_error "truncated \\u escape";
        let hex = String.sub c.src c.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> parse_error "invalid \\u escape '%s'" hex
        in
        c.pos <- c.pos + 4;
        utf8_of_code b code;
        loop ()
      | _ -> parse_error "invalid escape at offset %d" c.pos)
    | Some ch -> advance c; Buffer.add_char b ch; loop ()
  in
  loop ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let continue = ref true in
  while !continue do
    match peek c with
    | Some ('0' .. '9' | '-' | '+') -> advance c
    | Some ('.' | 'e' | 'E') ->
      is_float := true;
      advance c
    | _ -> continue := false
  done;
  let s = String.sub c.src start (c.pos - start) in
  if s = "" then parse_error "expected a number at offset %d" start;
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> parse_error "invalid number '%s'" s
  else
    match int_of_string_opt s with
    | Some n -> Int n
    | None -> (
      (* out-of-range integer literal: fall back to float *)
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> parse_error "invalid number '%s'" s)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let fields = ref [] in
      let continue = ref true in
      while !continue do
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        fields := (k, v) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' -> advance c
        | Some '}' ->
          advance c;
          continue := false
        | _ -> parse_error "expected ',' or '}' at offset %d" c.pos
      done;
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let items = ref [] in
      let continue = ref true in
      while !continue do
        let v = parse_value c in
        items := v :: !items;
        skip_ws c;
        match peek c with
        | Some ',' -> advance c
        | Some ']' ->
          advance c;
          continue := false
        | _ -> parse_error "expected ',' or ']' at offset %d" c.pos
      done;
      List (List.rev !items)
    end
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos = String.length s then Ok v
    else Error (Fmt.str "trailing input at offset %d" c.pos)
  | exception Parse_error msg -> Error msg

(* -- accessors --------------------------------------------------------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_int = function Int n -> Some n | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_bool = function Bool v -> Some v | _ -> None
let to_list = function List vs -> Some vs | _ -> None
