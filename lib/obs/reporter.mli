(** Event reporters: where observability records go.

    A reporter owns one sink — [null] (the default everywhere; emitting is
    a single branch, so instrumented code pays nothing when observability
    is off), a human [pretty] printer, a [jsonl] stream (one JSON object
    per line, the machine-readable trace), or an in-process [memory]
    buffer (tests).  Emission is mutex-protected so the multicore runtime
    can report from several domains into one stream.

    Every record carries [event] (the record type), [ts] (Unix time) and
    [rel_s] (seconds since the reporter was created), then the caller's
    fields. *)

type t

(** The no-op reporter: [enabled] is false, [emit] returns immediately. *)
val null : t

(** Human-readable sink (default [Fmt.stderr], so event lines do not
    corrupt result output on stdout). *)
val pretty : ?ppf:Format.formatter -> unit -> t

(** [jsonl path] truncates/creates [path] and streams one JSON object per
    line.  Lines are flushed as they are written so a crashed run still
    leaves a valid prefix. *)
val jsonl : string -> t

(** In-memory sink; the returned thunk snapshots the records emitted so
    far (in emission order). *)
val memory : unit -> t * (unit -> Json.t list)

(** Live TTY dashboard sink ([--obs=live]): records drive an in-place
    status panel instead of a log stream (see {!Dashboard}).  [dashboard]
    overrides the auto-detected one — tests render into a buffer. *)
val live : ?dashboard:Dashboard.t -> unit -> t

(** [false] exactly for {!null} and closed reporters: guards
    instrumentation whose mere bookkeeping would cost something. *)
val enabled : t -> bool

(** [emit t event fields] writes one record.  No-op when disabled. *)
val emit : t -> string -> (string * Json.t) list -> unit

(** [span t name f] times [f ()] and emits a [span] record with the name
    and duration; the result (or exception) passes through. *)
val span : t -> string -> (unit -> 'a) -> 'a

(** Flush and release the sink ([jsonl] closes the file).  Idempotent;
    further emits are dropped. *)
val close : t -> unit

(** {1 Configuration}

    The CLI surface: [--obs=off | pretty | json:FILE | live], with the
    [RELAXING_OBS] environment variable as fallback. *)

val spec_doc : string
(** One-line syntax description for [--help] texts. *)

val of_spec : string -> (t, string) result

(** [resolve ?spec ()]: parse [spec] when given, else [$RELAXING_OBS],
    else {!null}.
    @raise Invalid_argument on a malformed spec. *)
val resolve : ?spec:string -> unit -> t
