(** Contention attribution: timed mutexes and the serial-fraction estimate.

    A {!lock} is a mutex with an acquire probe: the uncontended path is a
    single [Mutex.try_lock] (no clock read, no extra synchronisation), so
    wrapping a hot lock costs nothing measurable; only a contended acquire
    pays two monotonic-clock reads to measure the wait.  Counters are
    updated while holding the lock, so they are exact without atomics.

    {!estimate} turns per-domain busy/wait attribution into an Amdahl
    serial-fraction figure: with [jobs] domains over wall time [T] doing
    [W = sum busy_i] seconds of useful work, the serial component is
    [s = (jobs*T - W) / (jobs - 1)] (the time during which, on average,
    the other domains idled), the serial fraction [f = s / (s + p)] with
    [p = W - s], and the effective parallelism [W / T] — which is also
    Amdahl's predicted speedup over one domain doing the same work.
    DESIGN.md section 10 derives this and lists the caveats (per-state
    cost inflation under memory pressure is attributed to busy time, so
    the estimate explains scheduling losses, not cache losses). *)

type lock

val make_lock : unit -> lock
val lock : lock -> unit
val unlock : lock -> unit
val with_lock : lock -> (unit -> 'a) -> 'a

type lock_stats = {
  acquires : int;
  contended : int;  (** acquires that found the lock held *)
  wait_ns : int;  (** total time blocked in contended acquires *)
  max_wait_ns : int;
}

(** Snapshot of the probe counters.  Exact only when no domain is
    currently racing the lock (e.g. after a join). *)
val lock_stats : lock -> lock_stats

val lock_stats_json : lock_stats -> Json.t

(** Aggregate stats over a shard array, plus a per-shard wait breakdown
    (seconds, index-aligned with the input). *)
val shard_summary : lock array -> lock_stats * float array

(** {1 Serial fraction / effective parallelism} *)

type estimate = {
  jobs : int;
  wall_s : float;
  busy_s : float;  (** sum of per-domain busy time *)
  serial_s : float;  (** Amdahl serial component, [>= 0] *)
  serial_fraction : float;  (** [serial_s / (serial_s + parallel_s)], in [0,1] *)
  effective_parallelism : float;  (** [busy_s / wall_s]; predicted speedup over 1 domain *)
}

(** [estimate ~jobs ~wall_s ~busy_per_domain].  [jobs = 1] degenerates to
    a zero serial fraction (nothing to serialize against). *)
val estimate : jobs:int -> wall_s:float -> busy_per_domain:float array -> estimate

(** Amdahl speedup [1 / (f + (1-f)/n)] predicted by the estimate at [n]
    domains. *)
val predicted_speedup : estimate -> int -> float

val estimate_json : estimate -> (string * Json.t) list
