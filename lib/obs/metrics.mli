(** Structured metrics: counters, gauges and histograms in a process-wide
    registry.

    Two counter flavours: plain (single-domain checker code, a bare
    [mutable int] so instrumentation is one add) and atomic (the multicore
    runtime, so instrumentation does not perturb the TSO behaviours under
    test by introducing accidental synchronisation points — an
    [Atomic.t] is exactly the fetch-and-add the paper's ghost counters
    use).  Histograms are single-writer reservoir samples with exact
    percentiles while under capacity.

    Creation registers the metric in a registry (the shared [default] one
    unless told otherwise); [dump] snapshots every registered metric as a
    JSON object, which is what the sinks attach to heartbeat records. *)

type registry

val create_registry : unit -> registry

(** The process-wide registry used by every constructor by default. *)
val default : registry

(** Snapshot every metric registered in the registry (default: the
    process-wide one) as [name -> value].  Histograms dump an object with
    [count], [mean], [p50], [p90], [p99], [min], [max]. *)
val dump : ?registry:registry -> unit -> Json.t

(** {1 Plain counters} — single writer, no synchronisation. *)

type counter

val counter : ?registry:registry -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

(** {1 Atomic counters} — safe under concurrent domains. *)

type acounter

val acounter : ?registry:registry -> string -> acounter
val aincr : acounter -> unit
val aadd : acounter -> int -> unit
val acount : acounter -> int

(** {1 Gauges} — last-write-wins floats, single writer. *)

type gauge

val gauge : ?registry:registry -> string -> gauge
val set : gauge -> float -> unit
val value : gauge -> float

(** {1 Histograms} — domain-safe sharded reservoir samples. *)

type histogram

(** [histogram name] with a reservoir of [capacity] samples (default
    4096) per observing shard.  Observations are sharded by the calling
    domain's id (8 shards, each with its own reservoir and a mutex that
    is uncontended unless domain ids collide modulo the shard count), so
    concurrent [observe] from several domains is safe and near
    synchronisation-free; snapshots merge the shards.  For a
    single-domain writer the behaviour is the classic one: under
    capacity every observation is retained and percentiles are exact;
    over capacity, reservoir sampling (algorithm R with a deterministic
    LCG, so runs are reproducible) keeps a uniform sample. *)
val histogram : ?registry:registry -> ?capacity:int -> string -> histogram

val observe : histogram -> float -> unit

(** Total observations (not the retained sample size). *)
val observations : histogram -> int

(** [percentile h p] for [p] in [0..100] over the retained sample; [nan]
    when empty. *)
val percentile : histogram -> float -> float

val mean : histogram -> float
val hmin : histogram -> float
val hmax : histogram -> float

(** The JSON summary [dump] uses, exposed for per-metric reporting. *)
val hsnapshot : histogram -> Json.t
