(* The --obs=live TTY dashboard; see dashboard.mli. *)

type mode = Ansi | Plain

type t = {
  mode : mode;
  out : string -> unit;
  started_ns : int;
  mutable checker : string;
  mutable progress : int;  (* states (explore) or steps (walk) *)
  mutable rate : float;  (* overall states/s, from the newest heartbeat *)
  mutable level : int;
  mutable frontier : int;
  mutable max_states : int;  (* 0 = unknown *)
  mutable dom_rate : float array;  (* per-domain states/s *)
  mutable dom_util : float array;  (* per-domain busy fraction of the last level *)
  mutable shard_heat : float array;  (* per-shard share of total lock wait *)
  mutable lock_wait_pct : float;  (* lock wait as % of aggregate busy time *)
  mutable serial_fraction : float;  (* < 0 = unknown *)
  mutable bytes_resident : int;  (* tiered-store tier-0 occupancy; < 0 = unknown *)
  mutable mem_budget : int;  (* 0 = unbounded (all-RAM) *)
  mutable segments : int;  (* on-disk segment files; < 0 = unknown *)
  mutable spilled_states : int;  (* states only on disk; < 0 = unknown *)
  mutable verdict : string option;
  (* runtime panel (fed by runtime-heartbeat records) *)
  mutable rt_on : bool;
  mutable rt_cycles : int;
  mutable rt_live : int;
  mutable rt_alloc_rate : float;
  mutable rt_stalls : int;
  mutable rt_pause_p50 : int;  (* ns; < 0 = unknown *)
  mutable rt_pause_p99 : int;
  mutable rt_pause_max : int;
  mutable rt_hs_p50 : int;
  mutable rt_hs_p99 : int;
  mutable rt_hs_p999 : int;
  mutable rt_hs_max : int;
  mutable rt_ack_hist : float array list;
    (* newest-first heartbeat history of per-mutator ack p99s (ns);
       rendered as one sparkline per mutator *)
  mutable drawn : int;  (* lines on screen from the previous draw *)
  mutable last_draw_ns : int;
  mutable finished : bool;
}

let rt_hist_len = 24

let detect_mode () =
  let term = match Sys.getenv_opt "TERM" with Some t -> t | None -> "" in
  if (try Unix.isatty Unix.stderr with Unix.Unix_error _ -> false) && term <> "dumb" && term <> ""
  then Ansi
  else Plain

let create ?mode ?(out = fun s -> output_string stderr s; flush stderr) () =
  let mode = match mode with Some m -> m | None -> detect_mode () in
  {
    mode;
    out;
    started_ns = Clock.monotonic_ns ();
    checker = "";
    progress = 0;
    rate = 0.;
    level = -1;
    frontier = -1;
    max_states = 0;
    dom_rate = [||];
    dom_util = [||];
    shard_heat = [||];
    lock_wait_pct = 0.;
    serial_fraction = -1.;
    bytes_resident = -1;
    mem_budget = 0;
    segments = -1;
    spilled_states = -1;
    verdict = None;
    rt_on = false;
    rt_cycles = 0;
    rt_live = 0;
    rt_alloc_rate = 0.;
    rt_stalls = 0;
    rt_pause_p50 = -1;
    rt_pause_p99 = -1;
    rt_pause_max = -1;
    rt_hs_p50 = -1;
    rt_hs_p99 = -1;
    rt_hs_p999 = -1;
    rt_hs_max = -1;
    rt_ack_hist = [];
    drawn = 0;
    last_draw_ns = 0;
    finished = false;
  }

(* -- rendering ---------------------------------------------------------------- *)

let human n =
  if n >= 10_000_000 then Fmt.str "%.1fM" (float_of_int n /. 1e6)
  else if n >= 10_000 then Fmt.str "%.0fk" (float_of_int n /. 1e3)
  else string_of_int n

let bar width frac =
  let frac = Float.max 0. (Float.min 1. frac) in
  let full = int_of_float (frac *. float_of_int width) in
  String.init width (fun i -> if i < full then '#' else '.')

let human_bytes n =
  if n >= 1 lsl 30 then Fmt.str "%.1fG" (float_of_int n /. float_of_int (1 lsl 30))
  else if n >= 1 lsl 20 then Fmt.str "%.1fM" (float_of_int n /. float_of_int (1 lsl 20))
  else if n >= 1 lsl 10 then Fmt.str "%.1fk" (float_of_int n /. float_of_int (1 lsl 10))
  else Fmt.str "%dB" n

let human_ns n =
  if n < 0 then "?"
  else if n < 1_000 then Fmt.str "%dns" n
  else if n < 1_000_000 then Fmt.str "%.1fus" (float_of_int n /. 1e3)
  else if n < 1_000_000_000 then Fmt.str "%.1fms" (float_of_int n /. 1e6)
  else Fmt.str "%.2fs" (float_of_int n /. 1e9)

let heat_glyphs = " .:-=+*#%@"

let heat_string heat =
  String.init (Array.length heat) (fun i ->
      let h = Float.max 0. (Float.min 1. heat.(i)) in
      heat_glyphs.[min (String.length heat_glyphs - 1)
                     (int_of_float (h *. float_of_int (String.length heat_glyphs - 1) +. 0.5))])

let eta t =
  if t.max_states > 0 && t.rate > 1. && t.progress < t.max_states then begin
    let s = float_of_int (t.max_states - t.progress) /. t.rate in
    if s < 6000. then Fmt.str "  ETA vs cap %02d:%02d" (int_of_float s / 60) (int_of_float s mod 60)
    else "  ETA vs cap >99min"
  end
  else ""

let panel_lines t =
  let elapsed = Clock.elapsed_s ~since:t.started_ns in
  let head =
    Fmt.str "%s  +%.1fs  %s states  %.0f/s%s%s%s%s"
      (if t.checker = "" then "checker" else t.checker)
      elapsed (human t.progress) t.rate
      (if t.level >= 0 then Fmt.str "  level %d" t.level else "")
      (if t.frontier >= 0 then Fmt.str "  frontier %s" (human t.frontier) else "")
      (eta t)
      (match t.verdict with None -> "" | Some v -> "  " ^ v)
  in
  let doms =
    List.filteri (fun _ _ -> Array.length t.dom_rate > 1)
      (List.init (Array.length t.dom_rate) (fun d ->
           let util =
             if d < Array.length t.dom_util then t.dom_util.(d)
             else if t.rate > 0. then t.dom_rate.(d) /. t.rate
             else 0.
           in
           Fmt.str "  dom %d [%s] %7.0f/s%s" d (bar 20 util) t.dom_rate.(d)
             (if d < Array.length t.dom_util then Fmt.str "  busy %3.0f%%" (100. *. util) else "")))
  in
  let shards =
    if Array.length t.shard_heat = 0 then []
    else
      [
        Fmt.str "  shards [%s]  lock-wait %.1f%%%s" (heat_string t.shard_heat) t.lock_wait_pct
          (if t.serial_fraction >= 0. then Fmt.str "  serial-frac %.2f" t.serial_fraction else "");
      ]
  in
  (* tiered-store panel: only once a run reports store occupancy, and
     only interesting when a budget bounds it or something has spilled *)
  let store =
    if t.bytes_resident >= 0 && (t.mem_budget > 0 || t.segments > 0) then
      [
        Fmt.str "  store  %s%s resident%s%s"
          (human_bytes t.bytes_resident)
          (if t.mem_budget > 0 then
             Fmt.str "/%s (%s)" (human_bytes t.mem_budget)
               (bar 20 (float_of_int t.bytes_resident /. float_of_int t.mem_budget))
           else "")
          (if t.segments > 0 then Fmt.str "  segments %d" t.segments else "")
          (if t.spilled_states > 0 then Fmt.str "  spilled %s states" (human t.spilled_states)
           else "");
      ]
    else []
  in
  (* runtime panel: pause bar (p99 against worst observed), handshake
     percentiles, and one ack sparkline per mutator over the heartbeat
     history *)
  let runtime =
    if not t.rt_on then []
    else begin
      let rt_head =
        Fmt.str "runtime  +%.1fs  cycles %s  live %s  alloc %.0f/s  stalls %d%s" elapsed
          (human t.rt_cycles) (human t.rt_live) t.rt_alloc_rate t.rt_stalls
          (if t.checker = "" then
             match t.verdict with None -> "" | Some v -> "  " ^ v
           else "")
      in
      let pause =
        if t.rt_pause_p99 < 0 then []
        else
          [
            Fmt.str "  pause  [%s]  p50 %s  p99 %s  max %s"
              (bar 20
                 (if t.rt_pause_max > 0 then
                    float_of_int t.rt_pause_p99 /. float_of_int t.rt_pause_max
                  else 0.))
              (human_ns t.rt_pause_p50) (human_ns t.rt_pause_p99) (human_ns t.rt_pause_max);
          ]
      in
      let hs =
        if t.rt_hs_p50 < 0 then []
        else
          [
            Fmt.str "  hs     p50 %s  p99 %s  p99.9 %s  max %s" (human_ns t.rt_hs_p50)
              (human_ns t.rt_hs_p99) (human_ns t.rt_hs_p999) (human_ns t.rt_hs_max);
          ]
      in
      let n_muts = match t.rt_ack_hist with [] -> 0 | h :: _ -> Array.length h in
      let acks =
        List.init n_muts (fun m ->
            let series =
              List.rev_map
                (fun a -> if m < Array.length a then a.(m) else 0.)
                t.rt_ack_hist
            in
            let worst = List.fold_left Float.max 1. series in
            let spark =
              heat_string (Array.of_list (List.map (fun v -> v /. worst) series))
            in
            let last = match List.rev series with v :: _ -> v | [] -> 0. in
            Fmt.str "  mut %d  ack [%s]  p99 %s" m spark (human_ns (int_of_float last)))
      in
      (rt_head :: pause) @ hs @ acks
    end
  in
  (* a pure runtime run has no checker telemetry: show only its panel *)
  if t.rt_on && t.checker = "" && t.progress = 0 then runtime
  else head :: (doms @ shards @ store @ runtime)

let draw ?(force = false) t =
  if not t.finished then begin
    let now = Clock.monotonic_ns () in
    let min_interval = match t.mode with Ansi -> 100_000_000 | Plain -> 1_000_000_000 in
    if force || now - t.last_draw_ns >= min_interval then begin
      t.last_draw_ns <- now;
      let lines = panel_lines t in
      match t.mode with
      | Ansi ->
        let b = Buffer.create 256 in
        if t.drawn > 0 then Buffer.add_string b (Fmt.str "\027[%dA" t.drawn);
        List.iter
          (fun l ->
            Buffer.add_string b "\027[2K";
            Buffer.add_string b l;
            Buffer.add_char b '\n')
          lines;
        (* previous draw had more lines: blank the leftovers *)
        let extra = t.drawn - List.length lines in
        if extra > 0 then begin
          for _ = 1 to extra do
            Buffer.add_string b "\027[2K\n"
          done;
          Buffer.add_string b (Fmt.str "\027[%dA" extra)
        end;
        t.drawn <- List.length lines;
        t.out (Buffer.contents b)
      | Plain -> t.out (String.concat "\n" lines ^ "\n")
    end
  end

(* -- record intake ------------------------------------------------------------ *)

let ffield fields k = Option.bind (List.assoc_opt k fields) Json.to_float
let ifield fields k = Option.bind (List.assoc_opt k fields) Json.to_int
let sfield fields k = Option.bind (List.assoc_opt k fields) Json.to_string_opt

let ensure_dom t d =
  if d >= Array.length t.dom_rate then begin
    let r = Array.make (d + 1) 0. in
    Array.blit t.dom_rate 0 r 0 (Array.length t.dom_rate);
    t.dom_rate <- r
  end

let float_list fields k =
  match List.assoc_opt k fields with
  | Some (Json.List l) -> Some (Array.of_list (List.filter_map Json.to_float l))
  | _ -> None

let update t event fields =
  if not t.finished then begin
    (match event with
    | "heartbeat" ->
      Option.iter (fun c -> t.checker <- c) (sfield fields "checker");
      (match ifield fields "states" with
      | Some s -> t.progress <- max t.progress s
      | None -> Option.iter (fun s -> t.progress <- max t.progress s) (ifield fields "steps"));
      Option.iter (fun l -> t.level <- l) (ifield fields "level");
      Option.iter (fun f -> t.frontier <- f) (ifield fields "frontier");
      Option.iter (fun m -> t.max_states <- m) (ifield fields "max_states");
      let rate =
        match ffield fields "states_per_sec" with
        | Some r -> Some r
        | None -> ffield fields "steps_per_sec"
      in
      Option.iter (fun b -> t.bytes_resident <- b) (ifield fields "bytes_resident");
      Option.iter (fun b -> t.mem_budget <- b) (ifield fields "mem_budget");
      Option.iter (fun s -> t.segments <- s) (ifield fields "segments");
      Option.iter (fun s -> t.spilled_states <- s) (ifield fields "spilled_states");
      (match (ifield fields "domain", rate) with
      | Some d, Some r ->
        ensure_dom t d;
        t.dom_rate.(d) <- r;
        t.rate <- Array.fold_left ( +. ) 0. t.dom_rate
      | None, Some r -> t.rate <- r
      | _ -> ())
    | "level" ->
      Option.iter (fun c -> t.checker <- c) (sfield fields "checker");
      Option.iter (fun l -> t.level <- l) (ifield fields "level");
      Option.iter (fun f -> t.frontier <- f) (ifield fields "frontier");
      Option.iter (fun s -> t.progress <- max t.progress s) (ifield fields "states");
      Option.iter (fun m -> t.max_states <- m) (ifield fields "max_states");
      Option.iter (fun u -> t.dom_util <- u) (float_list fields "busy_frac")
    | "scaling-detail" ->
      Option.iter
        (fun w ->
          let total = Array.fold_left ( +. ) 0. w in
          if total > 0. then t.shard_heat <- Array.map (fun x -> x /. total) w)
        (float_list fields "shard_wait_s");
      (match (ffield fields "lock_wait_s", ffield fields "busy_s") with
      | Some lw, Some busy when busy > 0. -> t.lock_wait_pct <- 100. *. lw /. busy
      | _ -> ());
      Option.iter (fun f -> t.serial_fraction <- f) (ffield fields "serial_fraction")
    | "outcome" ->
      Option.iter (fun c -> t.checker <- c) (sfield fields "checker");
      (match ifield fields "states" with
      | Some s -> t.progress <- max t.progress s
      | None -> Option.iter (fun s -> t.progress <- max t.progress s) (ifield fields "steps"));
      t.verdict <-
        Some
          (match List.assoc_opt "violation" fields with
          | Some (Json.String v) -> "VIOLATION: " ^ v
          | _ -> "ok")
    | "runtime-heartbeat" ->
      t.rt_on <- true;
      Option.iter (fun c -> t.rt_cycles <- c) (ifield fields "cycles");
      Option.iter (fun l -> t.rt_live <- l) (ifield fields "live");
      Option.iter (fun r -> t.rt_alloc_rate <- r) (ffield fields "alloc_per_sec");
      Option.iter (fun s -> t.rt_stalls <- s) (ifield fields "alloc_stalls");
      let sub k = match List.assoc_opt k fields with Some (Json.Obj o) -> o | _ -> [] in
      let pause = sub "pause" and hs = sub "hs" in
      Option.iter (fun v -> t.rt_pause_p50 <- v) (ifield pause "p50_ns");
      Option.iter (fun v -> t.rt_pause_p99 <- v) (ifield pause "p99_ns");
      Option.iter (fun v -> t.rt_pause_max <- v) (ifield pause "max_ns");
      Option.iter (fun v -> t.rt_hs_p50 <- v) (ifield hs "p50_ns");
      Option.iter (fun v -> t.rt_hs_p99 <- v) (ifield hs "p99_ns");
      Option.iter (fun v -> t.rt_hs_p999 <- v) (ifield hs "p999_ns");
      Option.iter (fun v -> t.rt_hs_max <- v) (ifield hs "max_ns");
      (match List.assoc_opt "hs_ack_p99_ns" fields with
      | Some (Json.List l) ->
        let acks =
          Array.of_list
            (List.map (fun j -> match Json.to_float j with Some f -> f | None -> 0.) l)
        in
        t.rt_ack_hist <-
          acks :: (if List.length t.rt_ack_hist >= rt_hist_len then
                     List.filteri (fun i _ -> i < rt_hist_len - 1) t.rt_ack_hist
                   else t.rt_ack_hist)
      | _ -> ())
    | "harness" ->
      t.rt_on <- true;
      Option.iter (fun c -> t.rt_cycles <- c) (ifield fields "cycles");
      Option.iter (fun l -> t.rt_live <- l) (ifield fields "live_at_end");
      t.verdict <-
        Some
          (match List.assoc_opt "violation" fields with
          | Some (Json.String v) -> "UNSAFE: " ^ v
          | _ -> "SAFE")
    | _ -> ());
    draw ~force:(event = "outcome" || event = "harness") t
  end

let finish t =
  if not t.finished then begin
    draw ~force:true t;
    t.finished <- true
  end
