(** Comparing two BENCH_<n>.json reports: the perf regression gate.

    A report (see [bench/main.ml]) carries Bechamel ns/run per figure
    test plus checker throughput blocks (states/sec, steps/sec).  This
    module flattens both reports into named metrics with a direction
    (ns/run: lower is better; states/sec: higher is better), diffs them
    pairwise, and classifies each change against a noise threshold.
    [gcmodel benchdiff A.json B.json] and [bench --against] are thin
    wrappers; CI exits non-zero when {!has_regressions}.

    Benchmarks are only comparable on the same machine, so when both
    reports record a hostname (schema v3) and they differ the comparison
    is refused outright; v2 reports, which predate the field, compare
    with a warning. *)

type direction = Lower_better | Higher_better

type delta = {
  key : string;  (** e.g. ["fig5/mark-fast-path ns_per_run"] *)
  dir : direction;
  v_old : float;
  v_new : float;
  change_pct : float;  (** signed [(new - old) / old * 100] *)
}

type result = {
  threshold : float;  (** the fraction the classification used *)
  regressions : delta list;  (** worse by more than [threshold] *)
  improvements : delta list;  (** better by more than [threshold] *)
  unchanged : delta list;  (** within the noise band *)
  only_old : string list;  (** metrics present only in the old report *)
  only_new : string list;
  warnings : string list;  (** e.g. missing hostnames, schema skew *)
}

(** The one place the regression gate's noise threshold lives: 15%.
    Every consumer (benchdiff, [bench --against], CI) defaults to this. *)
val default_threshold : float

(** Flatten one parsed report into [(key, direction, value)] metrics:
    Bechamel groups (ns/run, lower better), the checker / checker_par /
    checker_reduce throughput blocks and the checker_store block
    (states/sec and states-per-GB, higher better).  Unknown blocks are
    skipped here; {!compare_reports} surfaces them as warnings. *)
val metrics_of_report : Json.t -> (string * direction * float) list

(** Top-level keys of [report] that benchcmp does not understand (not a
    metric section, not deliberately excluded, not metadata) — a newer
    or older report schema.  {!compare_reports} warns about these and
    skips them instead of silently treating the reports as fully
    compared. *)
val unknown_sections : Json.t -> string list

(** [compare_reports ~old_ new_] compares two parsed reports.  [Error]
    only for structural refusals (different hostnames, not objects);
    per-metric drift is a [result]. *)
val compare_reports :
  ?threshold:float -> old_:Json.t -> Json.t -> (result, string) Stdlib.result

(** [compare_files ~old_path new_path] reads, parses and compares two
    report files. *)
val compare_files :
  ?threshold:float -> old_path:string -> string -> (result, string) Stdlib.result

val has_regressions : result -> bool

(** Human-readable report: one line per changed metric (worst first),
    then counts; mentions the files compared when given. *)
val render : ?old_name:string -> ?new_name:string -> result -> string
