(* HDR-style log-bucketed concurrent latency histograms.  See latency.mli
   for the design rationale; the short version: exact counts in ~2%-wide
   log buckets, per-domain lock-free lanes merged at snapshot, optional
   coordinated-omission back-fill for periodic operations. *)

let sub_bits = 5
let sub_count = 1 lsl sub_bits (* 32 linear sub-buckets per power of two *)
let clamp_ns = 100_000_000_000 (* 100 s: top of the covered range *)

(* Number of significant bits of [v] (>= 1); branchy but allocation-free. *)
let bit_length v =
  let n = ref 0 and x = ref v in
  if !x lsr 32 <> 0 then (n := !n + 32; x := !x lsr 32);
  if !x lsr 16 <> 0 then (n := !n + 16; x := !x lsr 16);
  if !x lsr 8 <> 0 then (n := !n + 8; x := !x lsr 8);
  if !x lsr 4 <> 0 then (n := !n + 4; x := !x lsr 4);
  if !x lsr 2 <> 0 then (n := !n + 2; x := !x lsr 2);
  if !x lsr 1 <> 0 then (n := !n + 1; x := !x lsr 1);
  !n + !x

let bucket_of v =
  let v = if v < 0 then 0 else if v > clamp_ns then clamp_ns else v in
  if v < sub_count then v
  else
    let shift = bit_length v - (sub_bits + 1) in
    let sub = v lsr shift in
    (* sub in [32, 64) *)
    ((shift + 1) lsl sub_bits) + (sub - sub_count)

let n_buckets = bucket_of clamp_ns + 1

let representative i =
  if i < sub_count then i
  else
    let shift = (i lsr sub_bits) - 1 in
    let low = (sub_count + (i land (sub_count - 1))) lsl shift in
    if shift = 0 then low else low + (1 lsl (shift - 1))

type lane = {
  counts : int Atomic.t array;
  sum : int Atomic.t;
  lmin : int Atomic.t; (* max_int when empty *)
  lmax : int Atomic.t; (* -1 when empty *)
}

type t = { hname : string; lanes : lane option Atomic.t array }

let fresh_lane () =
  {
    counts = Array.init n_buckets (fun _ -> Atomic.make 0);
    sum = Atomic.make 0;
    lmin = Atomic.make max_int;
    lmax = Atomic.make (-1);
  }

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(lanes = 8) hname =
  let n = round_pow2 (max 1 lanes) in
  { hname; lanes = Array.init n (fun _ -> Atomic.make None) }

let name t = t.hname

(* Lanes are allocated on first use so a single-writer histogram costs
   one bucket array, not eight.  Losing the install race just means
   recording into the winner's lane. *)
let my_lane t =
  let slot = t.lanes.((Domain.self () :> int) land (Array.length t.lanes - 1)) in
  match Atomic.get slot with
  | Some l -> l
  | None ->
      let l = fresh_lane () in
      if Atomic.compare_and_set slot None (Some l) then l
      else match Atomic.get slot with Some l -> l | None -> assert false

let record t v =
  let v = if v < 0 then 0 else v in
  let lane = my_lane t in
  ignore (Atomic.fetch_and_add lane.counts.(bucket_of v) 1);
  ignore (Atomic.fetch_and_add lane.sum v);
  let rec down () =
    let m = Atomic.get lane.lmin in
    if v < m && not (Atomic.compare_and_set lane.lmin m v) then down ()
  in
  let rec up () =
    let m = Atomic.get lane.lmax in
    if v > m && not (Atomic.compare_and_set lane.lmax m v) then up ()
  in
  down ();
  up ()

let record_corrected t ~expected_interval_ns v =
  record t v;
  if expected_interval_ns > 0 then begin
    let missing = ref (v - expected_interval_ns) in
    while !missing >= expected_interval_ns do
      record t !missing;
      missing := !missing - expected_interval_ns
    done
  end

let fold_lanes t f acc =
  Array.fold_left
    (fun acc slot ->
      match Atomic.get slot with None -> acc | Some l -> f acc l)
    acc t.lanes

(* Merged bucket counts plus exact (count, sum, min, max). *)
let merged t =
  let buckets = Array.make n_buckets 0 in
  let count, sum, mn, mx =
    fold_lanes t
      (fun (c, s, mn, mx) l ->
        let c = ref c in
        Array.iteri
          (fun i a ->
            let n = Atomic.get a in
            buckets.(i) <- buckets.(i) + n;
            c := !c + n)
          l.counts;
        ( !c,
          s + Atomic.get l.sum,
          min mn (Atomic.get l.lmin),
          max mx (Atomic.get l.lmax) ))
      (0, 0, max_int, -1)
  in
  (buckets, count, sum, mn, mx)

let count t = let _, c, _, _, _ = merged t in c

let percentile_merged buckets total mn mx p =
  if total = 0 then None
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100. *. float_of_int total)) in
      max 1 (min total r)
    in
    let cum = ref 0 and i = ref 0 and res = ref mx in
    (try
       while !i < n_buckets do
         cum := !cum + buckets.(!i);
         if !cum >= rank then begin
           res := representative !i;
           raise Exit
         end;
         incr i
       done
     with Exit -> ());
    (* Representatives are bucket midpoints and can stick out past the
       observed extremes; clamp so p0 >= min and p100 <= max. *)
    Some (max mn (min mx !res))
  end

let percentile t p =
  let buckets, total, _, mn, mx = merged t in
  percentile_merged buckets total mn mx p

let min_ns t =
  let _, total, _, mn, _ = merged t in
  if total = 0 then None else Some mn

let max_ns t =
  let _, total, _, _, mx = merged t in
  if total = 0 then None else Some mx

type snapshot = {
  count : int;
  mean_ns : float;
  p50_ns : int;
  p90_ns : int;
  p99_ns : int;
  p999_ns : int;
  min_ns : int;
  max_ns : int;
}

let snapshot t =
  let buckets, total, sum, mn, mx = merged t in
  if total = 0 then None
  else
    let pct p =
      match percentile_merged buckets total mn mx p with
      | Some v -> v
      | None -> 0
    in
    Some
      {
        count = total;
        mean_ns = float_of_int sum /. float_of_int total;
        p50_ns = pct 50.;
        p90_ns = pct 90.;
        p99_ns = pct 99.;
        p999_ns = pct 99.9;
        min_ns = mn;
        max_ns = mx;
      }

let to_json t =
  match snapshot t with
  | None ->
      Json.Obj
        [
          ("count", Json.Int 0);
          ("mean_ns", Json.Null);
          ("p50_ns", Json.Null);
          ("p90_ns", Json.Null);
          ("p99_ns", Json.Null);
          ("p999_ns", Json.Null);
          ("min_ns", Json.Null);
          ("max_ns", Json.Null);
        ]
  | Some s ->
      Json.Obj
        [
          ("count", Json.Int s.count);
          ("mean_ns", Json.Float s.mean_ns);
          ("p50_ns", Json.Int s.p50_ns);
          ("p90_ns", Json.Int s.p90_ns);
          ("p99_ns", Json.Int s.p99_ns);
          ("p999_ns", Json.Int s.p999_ns);
          ("min_ns", Json.Int s.min_ns);
          ("max_ns", Json.Int s.max_ns);
        ]

type recorder = {
  h : t;
  clock : unit -> int;
  expected_interval_ns : int;
  mutable last_ns : int; (* < 0 = not yet armed *)
}

let recorder ?(clock = Clock.monotonic_ns) ?(expected_interval_ns = 0) h =
  { h; clock; expected_interval_ns; last_ns = -1 }

let tick r =
  let now = r.clock () in
  if r.last_ns >= 0 then
    record_corrected r.h ~expected_interval_ns:r.expected_interval_ns
      (now - r.last_ns);
  r.last_ns <- now
