/* Monotonic clock for the observability layer.

   CLOCK_MONOTONIC nanoseconds since an arbitrary epoch, returned as an
   OCaml immediate int (63 bits of nanoseconds = ~292 years, far beyond
   any process lifetime), so the hot path allocates nothing. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value obs_clock_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
