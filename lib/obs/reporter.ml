(* Sinks and the emit path.  See reporter.mli. *)

type sink =
  | Null
  | Pretty of Format.formatter
  | Jsonl of out_channel
  | Memory of Json.t list ref
  | Live of Dashboard.t

type t = {
  sink : sink;
  lock : Mutex.t;
  t0_ns : int;  (* monotonic creation time; basis for rel_s *)
  mutable closed : bool;
}

let make sink = { sink; lock = Mutex.create (); t0_ns = Clock.monotonic_ns (); closed = false }

let null = make Null
let pretty ?(ppf = Fmt.stderr) () = make (Pretty ppf)
let jsonl path = make (Jsonl (open_out path))

let memory () =
  let records = ref [] in
  (make (Memory records), fun () -> List.rev !records)

let live ?dashboard () =
  let d = match dashboard with Some d -> d | None -> Dashboard.create () in
  make (Live d)

let enabled t =
  (not t.closed)
  && (match t.sink with Null -> false | Pretty _ | Jsonl _ | Memory _ | Live _ -> true)

let pp_pretty_field ppf (k, v) = Fmt.pf ppf "%s=%a" k Json.pp v

let emit t event fields =
  if enabled t then begin
    (* [ts] is wall-clock time, for humans correlating with other logs;
       [rel_s] is monotonic elapsed time since the reporter was created,
       so wall-clock jumps cannot produce negative or non-monotonic
       offsets in the stream *)
    let now = Unix.gettimeofday () in
    let rel_s = Clock.elapsed_s ~since:t.t0_ns in
    let record =
      Json.Obj
        (("event", Json.String event)
        :: ("ts", Json.Float now)
        :: ("rel_s", Json.Float rel_s)
        :: fields)
    in
    Mutex.lock t.lock;
    (match t.sink with
    | Null -> ()
    | Pretty ppf ->
      Fmt.pf ppf "[obs +%7.3fs] %-12s %a@." rel_s event
        Fmt.(list ~sep:sp pp_pretty_field)
        fields
    | Jsonl oc ->
      output_string oc (Json.to_string record);
      output_char oc '\n';
      flush oc
    | Memory records -> records := record :: !records
    | Live d -> Dashboard.update d event fields);
    Mutex.unlock t.lock
  end

let span t name f =
  if not (enabled t) then f ()
  else begin
    let start = Clock.monotonic_ns () in
    let finish ok =
      emit t "span"
        [ ("name", Json.String name);
          ("s", Json.Float (Clock.elapsed_s ~since:start));
          ("ok", Json.Bool ok) ]
    in
    match f () with
    | v ->
      finish true;
      v
    | exception e ->
      finish false;
      raise e
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.sink with
    | Jsonl oc -> close_out oc
    | Live d -> Dashboard.finish d
    | Null | Pretty _ | Memory _ -> ()
  end

(* -- configuration ----------------------------------------------------------- *)

let spec_doc = "off | pretty | json:FILE | live"

let of_spec spec =
  match spec with
  | "off" | "null" | "" -> Ok null
  | "pretty" -> Ok (pretty ())
  | "live" -> Ok (live ())
  | s when String.length s > 5 && String.sub s 0 5 = "json:" ->
    let path = String.sub s 5 (String.length s - 5) in
    (try Ok (jsonl path) with Sys_error msg -> Error msg)
  | s -> Error (Fmt.str "bad observability spec %S (expected %s)" s spec_doc)

let resolve ?spec () =
  let spec =
    match spec with Some _ as s -> s | None -> Sys.getenv_opt "RELAXING_OBS"
  in
  match spec with
  | None -> null
  | Some s -> (
    match of_spec s with Ok t -> t | Error msg -> invalid_arg ("--obs: " ^ msg))
