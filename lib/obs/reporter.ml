(* Sinks and the emit path.  See reporter.mli. *)

type sink =
  | Null
  | Pretty of Format.formatter
  | Jsonl of out_channel
  | Memory of Json.t list ref

type t = {
  sink : sink;
  lock : Mutex.t;
  t0 : float;  (* creation time; basis for elapsed_s *)
  mutable closed : bool;
}

let make sink = { sink; lock = Mutex.create (); t0 = Unix.gettimeofday (); closed = false }

let null = make Null
let pretty ?(ppf = Fmt.stderr) () = make (Pretty ppf)
let jsonl path = make (Jsonl (open_out path))

let memory () =
  let records = ref [] in
  (make (Memory records), fun () -> List.rev !records)

let enabled t =
  (not t.closed) && (match t.sink with Null -> false | Pretty _ | Jsonl _ | Memory _ -> true)

let pp_pretty_field ppf (k, v) = Fmt.pf ppf "%s=%a" k Json.pp v

let emit t event fields =
  if enabled t then begin
    let now = Unix.gettimeofday () in
    let record =
      Json.Obj
        (("event", Json.String event)
        :: ("ts", Json.Float now)
        :: ("rel_s", Json.Float (now -. t.t0))
        :: fields)
    in
    Mutex.lock t.lock;
    (match t.sink with
    | Null -> ()
    | Pretty ppf ->
      Fmt.pf ppf "[obs +%7.3fs] %-12s %a@." (now -. t.t0) event
        Fmt.(list ~sep:sp pp_pretty_field)
        fields
    | Jsonl oc ->
      output_string oc (Json.to_string record);
      output_char oc '\n';
      flush oc
    | Memory records -> records := record :: !records);
    Mutex.unlock t.lock
  end

let span t name f =
  if not (enabled t) then f ()
  else begin
    let start = Unix.gettimeofday () in
    let finish ok =
      emit t "span"
        [ ("name", Json.String name);
          ("s", Json.Float (Unix.gettimeofday () -. start));
          ("ok", Json.Bool ok) ]
    in
    match f () with
    | v ->
      finish true;
      v
    | exception e ->
      finish false;
      raise e
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.sink with
    | Jsonl oc -> close_out oc
    | Null | Pretty _ | Memory _ -> ()
  end

(* -- configuration ----------------------------------------------------------- *)

let spec_doc = "off | pretty | json:FILE"

let of_spec spec =
  match spec with
  | "off" | "null" | "" -> Ok null
  | "pretty" -> Ok (pretty ())
  | s when String.length s > 5 && String.sub s 0 5 = "json:" ->
    let path = String.sub s 5 (String.length s - 5) in
    (try Ok (jsonl path) with Sys_error msg -> Error msg)
  | s -> Error (Fmt.str "bad observability spec %S (expected %s)" s spec_doc)

let resolve ?spec () =
  let spec =
    match spec with Some _ as s -> s | None -> Sys.getenv_opt "RELAXING_OBS"
  in
  match spec with
  | None -> null
  | Some s -> (
    match of_spec s with Ok t -> t | Error msg -> invalid_arg ("--obs: " ^ msg))
