(* The independent validator, and the deterministic sweep that is its
   write-time twin.

   Both walk the same graph the same way: a FIFO BFS from the canonical
   initial state, expanding the executable canonical representative of
   each class exactly once, generating successors through the reducer's
   ample-set function and fingerprinting each successor's canonical
   representative.  Because the explorers expand canonical
   representatives too (Reducer.canon_state), this BFS visits exactly
   the explored quotient graph — first-arrival order is the sequential
   explorer's, so depths agree by construction, not by luck.

   [sweep] runs the BFS in *build* mode: it records (fingerprint, depth,
   verdict) per class and returns the table, sorted by fingerprint.  The
   certificate writer uses it when the producing run's schedule is not
   deterministic (jobs > 1), so certificates are byte-identical per
   (configuration, reduction mode) no matter how they were produced.

   [validate] runs the BFS in *probe* mode against a loaded certificate:
   every claim in the table is re-derived — the root obligation, the
   per-entry invariant verdicts (the full catalogue, re-evaluated), the
   per-entry depth stamps (BFS distance), and transition closure (each
   regenerated successor must be in the table).  A final coverage scan
   rejects table entries the BFS never reached, making the check an
   exact bijection: table = reachable quotient set.  No explorer code
   runs; the only shared ingredients are the model's step function, the
   invariant catalogue and the reducer — the same trusted base the
   soundness argument (DESIGN.md) already assumes. *)

type stats = {
  states : int;  (* classes visited = table entries validated *)
  transitions : int;  (* successor edges regenerated and probed *)
  max_depth : int;
  elapsed_s : float;
  table_bytes : int;  (* on-disk certificate table size *)
}

exception Fail of string

let failf fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt
let fp_hex fp = Printf.sprintf "0x%x" (fp land max_int)

(* First violated invariant's index in catalogue order, -1 if none —
   the per-state verdict the table's meta word carries. *)
let verdict_of invs sys =
  let n = Array.length invs in
  let rec go i =
    if i >= n then -1 else if not ((snd invs.(i)) sys) then i else go (i + 1)
  in
  go 0

let sweep ?(normal_form = true) ~reducer ~invariants initial =
  let norm s = if normal_form then Cimp.System.normalize s else s in
  let canon s = Check.Reducer.canon_of reducer s in
  let fp_of s = Check.Fingerprint.hash (Check.Reducer.fp_of reducer s) in
  let invs = Array.of_list invariants in
  let seen = Hashtbl.create 65536 in
  let acc = ref [] in
  let q = Queue.create () in
  try
    let root = canon (norm initial) in
    let fp0 = fp_of root in
    Hashtbl.replace seen fp0 ();
    Queue.add (root, fp0, 0) q;
    let max_depth = ref 0 in
    while not (Queue.is_empty q) do
      let sys, fp, d = Queue.pop q in
      if d > !max_depth then max_depth := d;
      let v = verdict_of invs sys in
      if v >= 0 then
        failf "invariant %s violated at state %s — refusing to certify an unsafe run"
          (fst invs.(v)) (fp_hex fp);
      acc :=
        {
          Store.Segment.fp;
          parent = 0;
          event = 0;
          meta = Store.Tiered.meta32_make ~depth:d ~violation:v;
        }
        :: !acc;
      List.iter
        (fun (_e, s') ->
          (* fp before canon: canon_state preserves the fingerprint, and
             most successors are duplicates that never need the
             executable representative materialized *)
          let s' = norm s' in
          let fp' = fp_of s' in
          if not (Hashtbl.mem seen fp') then begin
            Hashtbl.replace seen fp' ();
            Queue.add (canon s', fp', d + 1) q
          end)
        (Check.Reducer.succs_of reducer sys)
    done;
    let entries = Array.of_list !acc in
    Array.sort (fun a b -> compare a.Store.Segment.fp b.Store.Segment.fp) entries;
    Ok (entries, !max_depth)
  with Fail msg -> Error msg

(* -- probe mode ------------------------------------------------------------- *)

let find_fp fps fp =
  let lo = ref 0 and hi = ref (Array.length fps - 1) in
  let res = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = Array.unsafe_get fps mid in
    if v = fp then begin
      res := mid;
      lo := !hi + 1
    end
    else if v < fp then lo := mid + 1
    else hi := mid - 1
  done;
  !res

let validate ?(normal_form = true) ~reducer ~invariants ~config_hash ~dir initial =
  let ( let* ) = Result.bind in
  let* h = Certificate.read_header dir in
  (* the header must claim everything we are about to check: a dropped
     obligation means the producer asserts a weaker statement than the
     consumer believes *)
  let* () =
    match
      List.find_opt (fun ob -> not (List.mem ob h.Certificate.obligations))
        Certificate.required_obligations
    with
    | Some ob ->
      Error
        (Printf.sprintf
           "%s: missing closure obligation %S in header field \"obligations\" — the \
            certificate does not claim what recheck validates"
           Certificate.header_file ob)
    | None -> Ok ()
  in
  let* () =
    if h.Certificate.config_hash <> config_hash then
      Error
        (Printf.sprintf
           "%s: header field \"config_hash\" is %s but the rebuilt model hashes to %s — \
            certificate binds a different instance"
           Certificate.header_file h.Certificate.config_hash config_hash)
    else Ok ()
  in
  let inv_names = List.map fst invariants in
  let* () =
    if h.Certificate.invariants <> inv_names then
      Error
        (Printf.sprintf
           "%s: header field \"invariants\" does not match the model's catalogue (%d listed, \
            %d in the model)"
           Certificate.header_file
           (List.length h.Certificate.invariants)
           (List.length inv_names))
    else Ok ()
  in
  let* () =
    let rname = Check.Reducer.name_of reducer in
    if h.Certificate.reduce <> rname then
      Error
        (Printf.sprintf
           "%s: header field \"reduce\" is %S but the validator was built with %S"
           Certificate.header_file h.Certificate.reduce rname)
    else Ok ()
  in
  let* entries = Certificate.load_table ~expected_digest:h.Certificate.table_digest dir in
  let n = Array.length entries in
  let* () =
    if n <> h.Certificate.states then
      Error
        (Printf.sprintf "%s: %d entries but header field \"states\" says %d"
           Certificate.table_file n h.Certificate.states)
    else Ok ()
  in
  let t0 = Obs.Clock.monotonic_ns () in
  let fps = Array.map (fun e -> e.Store.Segment.fp) entries in
  let depth_of i = Store.Tiered.meta32_depth entries.(i).Store.Segment.meta in
  let viol_of i = Store.Tiered.meta32_violation entries.(i).Store.Segment.meta in
  let norm s = if normal_form then Cimp.System.normalize s else s in
  let canon s = Check.Reducer.canon_of reducer s in
  let fp_of s = Check.Fingerprint.hash (Check.Reducer.fp_of reducer s) in
  let invs = Array.of_list invariants in
  try
    for i = 1 to n - 1 do
      if fps.(i - 1) >= fps.(i) then
        failf "%s: entries not strictly sorted at index %d" Certificate.table_file i
    done;
    (* a certificate witnesses a violation-free closed run; an entry
       carrying a violation verdict is not certifiable in the first
       place, so reject it before walking anything *)
    for i = 0 to n - 1 do
      if viol_of i >= 0 then
        failf "%s: entry %s records a violation verdict — certificates witness \
               violation-free runs only"
          Certificate.table_file (fp_hex fps.(i))
    done;
    (* obligation "root" *)
    let root = canon (norm initial) in
    let fp0 = fp_of root in
    if fp0 <> h.Certificate.root_fp then
      failf "header field \"root_fp\" is %s but the model's canonical initial state is %s"
        (fp_hex h.Certificate.root_fp) (fp_hex fp0);
    let i0 = find_fp fps fp0 in
    if i0 < 0 then failf "root state %s absent from the table" (fp_hex fp0);
    if depth_of i0 <> 0 then
      failf "root state %s has depth stamp %d, expected 0" (fp_hex fp0) (depth_of i0);
    let visited = Bytes.make n '\000' in
    Bytes.set visited i0 '\001';
    let q = Queue.create () in
    Queue.add (root, i0, 0) q;
    let states = ref 0 and transitions = ref 0 and max_depth = ref 0 in
    while not (Queue.is_empty q) do
      let sys, i, d = Queue.pop q in
      incr states;
      if d > !max_depth then max_depth := d;
      (* obligation "depths": first-arrival FIFO order makes [d] the BFS
         distance of this class from the root *)
      if depth_of i <> d then
        failf "depth mismatch at %s: table stamps %d, BFS reaches it at %d" (fp_hex fps.(i))
          (depth_of i) d;
      (* obligation "verdicts": re-evaluate the full catalogue *)
      let v = verdict_of invs sys in
      if v <> viol_of i then
        failf "verdict mismatch at %s: table says pass, re-evaluation violates %s"
          (fp_hex fps.(i)) (fst invs.(v));
      (* obligation "closure": every regenerated successor is an entry *)
      List.iter
        (fun (_e, s') ->
          incr transitions;
          (* fp before canon: canon_state preserves the fingerprint, and
             most successors are duplicates that never need the
             executable representative materialized *)
          let s' = norm s' in
          let fp' = fp_of s' in
          let j = find_fp fps fp' in
          if j < 0 then
            failf "closure miss: successor %s of expanded state %s absent from the table"
              (fp_hex fp') (fp_hex fps.(i));
          if Bytes.get visited j = '\000' then begin
            Bytes.set visited j '\001';
            Queue.add (canon s', j, d + 1) q
          end)
        (Check.Reducer.succs_of reducer sys)
    done;
    (* the bijection's other half: nothing in the table may be
       unreachable, or a padded certificate would validate *)
    for i = 0 to n - 1 do
      if Bytes.get visited i = '\000' then
        failf "unreachable table entry %s: never produced by the regenerated quotient BFS"
          (fp_hex fps.(i))
    done;
    if !max_depth <> h.Certificate.max_depth then
      failf "header field \"max_depth\" is %d but the BFS frontier closed at depth %d"
        h.Certificate.max_depth !max_depth;
    let table_bytes =
      try
        let ic = open_in_bin (Certificate.table_path dir) in
        let sz = in_channel_length ic in
        close_in ic;
        sz
      with _ -> 0
    in
    Ok
      ( h,
        {
          states = !states;
          transitions = !transitions;
          max_depth = !max_depth;
          elapsed_s = Obs.Clock.elapsed_s ~since:t0;
          table_bytes;
        } )
  with Fail msg -> Error msg
