(** The certificate container format: a directory holding [CERT.json]
    (the header) and [table.seg] (the reach table as one [lib/store]
    delta-compressed segment, globally sorted by fingerprint).

    The normative format spec is the generated [docs/CERTIFICATES.md];
    this module is its implementation.  The table digest in the header
    catches accidental corruption cheaply — it is not a signature, and
    validator soundness never rests on it ({!Recheck} re-derives every
    claim semantically). *)

val format_tag : string
(** ["GCCERT001"] — bound into every header; {!read_header} refuses any
    other value. *)

val header_file : string
(** ["CERT.json"]. *)

val table_file : string
(** ["table.seg"]. *)

val header_path : string -> string
(** [header_path dir] is [dir ^ "/CERT.json"]. *)

val table_path : string -> string
(** [table_path dir] is [dir ^ "/table.seg"]. *)

val required_obligations : string list
(** The closure obligations every certificate must name and every
    validator must discharge: ["root"] (the canonical initial state is
    in the table at depth 0), ["closure"] (each entry's regenerated
    successor set is in the table), ["depths"] (each entry's depth stamp
    is its BFS distance from the root), ["verdicts"] (re-evaluating the
    full invariant catalogue on each entry reproduces its verdict).
    {!Recheck.validate} rejects a header omitting any of them. *)

type header = {
  format : string;  (** must equal {!format_tag} *)
  config_hash : string;  (** [Config.hash] of the certified instance *)
  reduce : string;  (** reduction mode: "none", "sym", "por" or "all" *)
  invariants : string list;  (** invariant catalogue in evaluation order *)
  obligations : string list;  (** must cover {!required_obligations} *)
  root_fp : int;  (** fingerprint of the canonical initial state *)
  states : int;  (** table entry count *)
  max_depth : int;  (** largest depth stamp in the table *)
  table_digest : string;  (** MD5 (hex) of [table.seg] *)
  run_config : Obs.Json.t;
      (** the producing run's flags, verbatim — enough to rebuild the
          instance, as [gcmodel resume] does from checkpoint manifests *)
}

val header_to_json : header -> Obs.Json.t
(** The header as the JSON object [CERT.json] holds. *)

val header_of_json : Obs.Json.t -> (header, string) result
(** Total: [Error] names the first missing or ill-typed field. *)

val write_header : dir:string -> header -> unit
(** Atomic (write-then-rename) emission of [CERT.json] into [dir]. *)

val read_header : string -> (header, string) result
(** Read and parse [dir]'s header; rejects a wrong {!format_tag}. *)

val digest_table : string -> string
(** MD5 (hex) of [dir]'s table file bytes. *)

val load_table :
  expected_digest:string -> string -> (Store.Segment.entry array, string) result
(** Digest-check then decode [dir]'s table.  The digest is compared
    before any decoding, so corruption (bit flips, truncation) is
    reported as a [table.seg] digest mismatch, not a decoder error. *)
