(* Structural comparison of two certificates: header field deltas plus a
   linear merge of the two sorted tables.  Needs no model — certdiff is
   the no-change gate between consecutive CI runs, so it must work from
   the artifacts alone. *)

type t = {
  header_deltas : (string * string * string) list;  (* field, a's value, b's value *)
  only_a : int;  (* entries only in A *)
  only_b : int;  (* entries only in B *)
  changed : int;  (* same fingerprint, different depth or verdict *)
  examples : string list;  (* first few entry-level differences *)
  a_states : int;
  b_states : int;
}

let identical d =
  d.header_deltas = [] && d.only_a = 0 && d.only_b = 0 && d.changed = 0

let max_examples = 8
let fp_hex fp = Printf.sprintf "0x%x" (fp land max_int)

let header_deltas (a : Certificate.header) (b : Certificate.header) =
  let strs l = String.concat "," l in
  List.filter_map
    (fun (field, va, vb) -> if va = vb then None else Some (field, va, vb))
    [
      ("config_hash", a.Certificate.config_hash, b.Certificate.config_hash);
      ("reduce", a.reduce, b.reduce);
      ("invariants", strs a.invariants, strs b.invariants);
      ("obligations", strs a.obligations, strs b.obligations);
      ("root_fp", fp_hex a.root_fp, fp_hex b.root_fp);
      ("states", string_of_int a.states, string_of_int b.states);
      ("max_depth", string_of_int a.max_depth, string_of_int b.max_depth);
    ]

let run dir_a dir_b =
  let ( let* ) = Result.bind in
  let* ha = Certificate.read_header dir_a in
  let* hb = Certificate.read_header dir_b in
  let* ea = Certificate.load_table ~expected_digest:ha.Certificate.table_digest dir_a in
  let* eb = Certificate.load_table ~expected_digest:hb.Certificate.table_digest dir_b in
  let na = Array.length ea and nb = Array.length eb in
  let only_a = ref 0 and only_b = ref 0 and changed = ref 0 in
  let examples = ref [] in
  let note fmt =
    Printf.ksprintf
      (fun s -> if List.length !examples < max_examples then examples := s :: !examples)
      fmt
  in
  let i = ref 0 and j = ref 0 in
  while !i < na || !j < nb do
    if !j >= nb || (!i < na && ea.(!i).Store.Segment.fp < eb.(!j).Store.Segment.fp) then begin
      incr only_a;
      note "- %s (only in A)" (fp_hex ea.(!i).Store.Segment.fp);
      incr i
    end
    else if !i >= na || eb.(!j).Store.Segment.fp < ea.(!i).Store.Segment.fp then begin
      incr only_b;
      note "+ %s (only in B)" (fp_hex eb.(!j).Store.Segment.fp);
      incr j
    end
    else begin
      let a = ea.(!i) and b = eb.(!j) in
      let da = Store.Tiered.meta32_depth a.Store.Segment.meta
      and db = Store.Tiered.meta32_depth b.Store.Segment.meta in
      let va = Store.Tiered.meta32_violation a.Store.Segment.meta
      and vb = Store.Tiered.meta32_violation b.Store.Segment.meta in
      if da <> db || va <> vb then begin
        incr changed;
        note "~ %s depth %d->%d verdict %d->%d" (fp_hex a.Store.Segment.fp) da db va vb
      end;
      incr i;
      incr j
    end
  done;
  Ok
    {
      header_deltas = header_deltas ha hb;
      only_a = !only_a;
      only_b = !only_b;
      changed = !changed;
      examples = List.rev !examples;
      a_states = na;
      b_states = nb;
    }

let pp ppf d =
  if identical d then Fmt.pf ppf "certificates identical (%d states)" d.a_states
  else begin
    Fmt.pf ppf "certificates differ (A: %d states, B: %d states)@." d.a_states d.b_states;
    List.iter
      (fun (field, va, vb) -> Fmt.pf ppf "  header %s: %s -> %s@." field va vb)
      d.header_deltas;
    if d.only_a + d.only_b + d.changed > 0 then
      Fmt.pf ppf "  entries: %d only in A, %d only in B, %d changed@." d.only_a d.only_b
        d.changed;
    List.iter (fun e -> Fmt.pf ppf "    %s@." e) d.examples
  end
