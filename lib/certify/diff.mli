(** Structural comparison of two certificates: header deltas plus a
    linear merge of the sorted tables.  Model-free — the CI no-change
    gate runs it on artifacts alone. *)

type t = {
  header_deltas : (string * string * string) list;
      (** (field, value in A, value in B), differing fields only *)
  only_a : int;  (** entries only in A *)
  only_b : int;  (** entries only in B *)
  changed : int;  (** same fingerprint, different depth or verdict *)
  examples : string list;  (** first few entry-level differences *)
  a_states : int;
  b_states : int;
}

val identical : t -> bool
(** No header deltas and no entry differences. *)

val run : string -> string -> (t, string) result
(** [run dir_a dir_b] loads both certificates (digest-checked) and
    compares them; [Error] if either fails to load. *)

val pp : t Fmt.t
