(* Certificate emission.

   Two table sources, one byte format:

   - [of_store] dumps the explorer's tiered seen-set (tier-0 shards plus
     any spilled segments, min-depth / or-expanded merged per
     fingerprint) after a deterministic run — the jobs = 1 pool is a
     FIFO BFS, so the stored depth stamps are BFS distances and the dump
     already is the canonical table.

   - a Recheck.sweep table, used by callers whose producing run was
     scheduled nondeterministically (jobs > 1): the parallel explorers'
     visited class set can differ across schedules at the symmetry
     reduction's local-automorphism boundary, so the writer re-derives
     the canonical quotient table the validator will reconstruct.

   Either way [write] emits table.seg (one globally sorted segment) and
   then CERT.json binding the configuration hash, reduction mode,
   invariant catalogue, obligations and the table digest.  The header is
   written last so a crash mid-write never leaves a certificate that
   parses: no CERT.json, no certificate. *)

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    mkdirs (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let of_store store =
  let tbl = Hashtbl.create (max 1024 (Store.Tiered.count store)) in
  let add (e : Store.Segment.entry) =
    let d = Store.Tiered.meta32_depth e.meta in
    let v = Store.Tiered.meta32_violation e.meta in
    let x = Store.Tiered.meta32_expanded e.meta in
    match Hashtbl.find_opt tbl e.fp with
    | None -> Hashtbl.replace tbl e.fp (d, v, x)
    | Some (d0, v0, x0) -> Hashtbl.replace tbl e.fp (min d d0, max v v0, x || x0)
  in
  for shard = 0 to Store.Tiered.n_shards - 1 do
    Array.iter add (Store.Tiered.tier0_dump store ~shard);
    List.iter (fun seg -> Store.Segment.iter seg add) (Store.Tiered.segments_of store ~shard)
  done;
  let bad = ref None in
  let acc = ref [] in
  Hashtbl.iter
    (fun fp (d, v, x) ->
      if v >= 0 && !bad = None then
        bad := Some (Printf.sprintf "state 0x%x records a violation verdict" (fp land max_int));
      if (not x) && !bad = None then
        bad :=
          Some
            (Printf.sprintf "state 0x%x was never expanded — the run is truncated"
               (fp land max_int));
      acc :=
        { Store.Segment.fp; parent = 0; event = 0; meta = Store.Tiered.meta32_make ~depth:d ~violation:v }
        :: !acc)
    tbl;
  match !bad with
  | Some msg -> Error msg
  | None ->
    let entries = Array.of_list !acc in
    Array.sort (fun a b -> compare a.Store.Segment.fp b.Store.Segment.fp) entries;
    let max_depth =
      Array.fold_left
        (fun m e -> max m (Store.Tiered.meta32_depth e.Store.Segment.meta))
        0 entries
    in
    Ok (entries, max_depth)

let write ~dir ~config_hash ~reduce ~invariant_names ~run_config ~max_depth entries =
  let n = Array.length entries in
  if n = 0 then Error "empty table: nothing to certify"
  else begin
    (* the root is the unique depth-0 entry of a single-root BFS *)
    let roots =
      Array.to_list entries
      |> List.filter (fun e -> Store.Tiered.meta32_depth e.Store.Segment.meta = 0)
    in
    match roots with
    | [ root ] ->
      mkdirs dir;
      ignore
        (Store.Segment.write ~path:(Certificate.table_path dir) ~shard:0 ~seq:0 ~max_depth
           entries);
      let h =
        {
          Certificate.format = Certificate.format_tag;
          config_hash;
          reduce;
          invariants = invariant_names;
          obligations = Certificate.required_obligations;
          root_fp = root.Store.Segment.fp;
          states = n;
          max_depth;
          table_digest = Certificate.digest_table dir;
          run_config;
        }
      in
      Certificate.write_header ~dir h;
      Ok h
    | roots -> Error (Printf.sprintf "%d depth-0 entries in the table, expected exactly 1" (List.length roots))
  end
