(** The independent certificate validator, and the deterministic sweep
    that is its write-time twin.

    Both run the same FIFO BFS over canonical representatives from the
    canonical initial state — the quotient graph the explorers visit
    (see {!Check.Reducer.t}'s [canon_state]).  Neither calls any explorer
    code: the trusted base is the model's step function, the invariant
    catalogue and the reducer, exactly what the soundness argument
    (DESIGN.md) already assumes. *)

type stats = {
  states : int;  (** classes visited = table entries validated *)
  transitions : int;  (** successor edges regenerated and probed *)
  max_depth : int;
  elapsed_s : float;
  table_bytes : int;  (** on-disk certificate table size *)
}

val sweep :
  ?normal_form:bool ->
  reducer:('a, 'v, 's) Check.Reducer.t option ->
  invariants:(string * (('a, 'v, 's) Cimp.System.t -> bool)) list ->
  ('a, 'v, 's) Cimp.System.t ->
  (Store.Segment.entry array * int, string) result
(** Build mode: BFS the quotient graph, evaluating the full invariant
    catalogue per class, and return the certificate table (sorted by
    fingerprint, parent/event zeroed, meta packed) with its max depth.
    [Error] if any invariant is violated — unsafe runs are not
    certifiable.  The certificate writer uses this when the producing
    run's schedule is nondeterministic (jobs > 1), making certificates
    byte-identical per (configuration, reduction mode) regardless of
    how many workers explored. *)

val validate :
  ?normal_form:bool ->
  reducer:('a, 'v, 's) Check.Reducer.t option ->
  invariants:(string * (('a, 'v, 's) Cimp.System.t -> bool)) list ->
  config_hash:string ->
  dir:string ->
  ('a, 'v, 's) Cimp.System.t ->
  (Certificate.header * stats, string) result
(** Probe mode: validate the certificate in [dir] against the given
    model without running any explorer.  Checks, failing closed with a
    diagnostic naming the offending fingerprint or header field:
    header format and completeness of the claimed obligations,
    [config_hash] binding, invariant catalogue and reduction-mode match,
    table digest, root membership at depth 0, per-entry invariant
    verdicts (full catalogue re-evaluated), per-entry depth stamps (BFS
    distance), transition closure (every regenerated successor of every
    entry is an entry), and coverage (every entry is reached — the
    table is exactly the reachable quotient set, no padding). *)
