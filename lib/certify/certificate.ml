(* The certificate container format.  See docs/CERTIFICATES.md (generated
   by lib/mutate/doc_gen) for the normative spec; this module is its
   implementation.

   A certificate is a directory of two files:

     CERT.json   the header: format tag, configuration binding
                 (config_hash + the verbatim run configuration), reduction
                 mode, the invariant catalogue in evaluation order, the
                 closure obligations the validator must discharge, the
                 root fingerprint, entry counts, and an MD5 digest of the
                 table file.
     table.seg   the table: one segment in lib/store's delta-compressed
                 "GCSEG001" format, all entries globally sorted by
                 fingerprint, parent and event zeroed, meta packed as
                 depth | verdict | expanded in the store's 32-bit segment
                 layout.

   The digest catches accidental corruption cheaply; it is NOT a
   signature and carries no trust.  Soundness never rests on it: the
   validator (Recheck) re-derives every claim semantically, so a
   consistently tampered certificate still fails closure, depth or
   verdict revalidation.  DESIGN.md records the argument. *)

let format_tag = "GCCERT001"
let header_file = "CERT.json"
let table_file = "table.seg"
let header_path dir = Filename.concat dir header_file
let table_path dir = Filename.concat dir table_file

(* The obligations a validator must discharge.  They are named in the
   header so a certificate states what it claims; Recheck refuses a
   header that omits any of them (an omitted obligation would otherwise
   silently weaken the claim a consumer believes was checked). *)
let obligation_root = "root"
let obligation_closure = "closure"
let obligation_depths = "depths"
let obligation_verdicts = "verdicts"

let required_obligations =
  [ obligation_root; obligation_closure; obligation_depths; obligation_verdicts ]

type header = {
  format : string;  (* must be [format_tag] *)
  config_hash : string;  (* Config.hash of the certified instance *)
  reduce : string;  (* reduction mode: "none" | "sym" | "por" | "all" *)
  invariants : string list;  (* catalogue in evaluation order *)
  obligations : string list;  (* must cover [required_obligations] *)
  root_fp : int;  (* fingerprint of the canonical initial state *)
  states : int;  (* table entry count *)
  max_depth : int;  (* largest depth stamp in the table *)
  table_digest : string;  (* MD5 (hex) of table.seg *)
  run_config : Obs.Json.t;  (* verbatim flags, to rebuild the instance *)
}

let header_to_json h =
  let open Obs.Json in
  Obj
    [
      ("format", String h.format);
      ("config_hash", String h.config_hash);
      ("reduce", String h.reduce);
      ("invariants", List (List.map (fun s -> String s) h.invariants));
      ("obligations", List (List.map (fun s -> String s) h.obligations));
      ("root_fp", Int h.root_fp);
      ("states", Int h.states);
      ("max_depth", Int h.max_depth);
      ("table_digest", String h.table_digest);
      ("config", h.run_config);
    ]

let header_of_json json =
  let open Obs.Json in
  let str name =
    match Option.bind (member name json) to_string_opt with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "header field %S missing or not a string" name)
  in
  let int name =
    match Option.bind (member name json) to_int with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "header field %S missing or not an integer" name)
  in
  let str_list name =
    match Option.bind (member name json) to_list with
    | Some l -> Ok (List.filter_map to_string_opt l)
    | None -> Error (Printf.sprintf "header field %S missing or not a list" name)
  in
  let ( let* ) = Result.bind in
  let* format = str "format" in
  let* config_hash = str "config_hash" in
  let* reduce = str "reduce" in
  let* invariants = str_list "invariants" in
  let* obligations = str_list "obligations" in
  let* root_fp = int "root_fp" in
  let* states = int "states" in
  let* max_depth = int "max_depth" in
  let* table_digest = str "table_digest" in
  let run_config = Option.value (member "config" json) ~default:Null in
  Ok
    {
      format;
      config_hash;
      reduce;
      invariants;
      obligations;
      root_fp;
      states;
      max_depth;
      table_digest;
      run_config;
    }

let write_header ~dir h =
  let path = header_path dir in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (Obs.Json.to_string_pretty (header_to_json h));
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp path

let read_header dir =
  let path = header_path dir in
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "%s: no certificate header (%s missing)" dir header_file)
  else
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Obs.Json.of_string s with
    | Error e -> Error (Printf.sprintf "%s: unparsable header: %s" header_file e)
    | Ok json -> (
      match header_of_json json with
      | Error e -> Error (Printf.sprintf "%s: %s" header_file e)
      | Ok h ->
        if h.format <> format_tag then
          Error
            (Printf.sprintf "%s: header field \"format\" is %S, expected %S" header_file
               h.format format_tag)
        else Ok h)

let digest_table dir = Digest.to_hex (Digest.file (table_path dir))

(* Load the table, digest-checked first so a bit flip or truncation is
   reported as corruption (naming table.seg) rather than as a spurious
   semantic failure from the decoder. *)
let load_table ~expected_digest dir =
  let path = table_path dir in
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "%s: no certificate table (%s missing)" dir table_file)
  else
    let actual = digest_table dir in
    if actual <> expected_digest then
      Error
        (Printf.sprintf
           "%s: digest mismatch — header field \"table_digest\" says %s, file hashes to %s \
            (corrupt or tampered table)"
           table_file expected_digest actual)
    else
      match Store.Segment.load path with
      | seg -> Ok (Store.Segment.entries seg)
      | exception e ->
        Error (Printf.sprintf "%s: undecodable segment: %s" table_file (Printexc.to_string e))
