(** Certificate emission: turn a finished run's reach table into a
    certificate directory ({!Certificate}). *)

val of_store : Store.Tiered.t -> (Store.Segment.entry array * int, string) result
(** Dump the explorer's tiered seen-set — tier-0 shards merged with any
    spilled segments, min-depth per fingerprint — into a certificate
    table (sorted, parent/event zeroed) with its max depth.  Only valid
    after a deterministic (jobs = 1, FIFO BFS) run, whose depth stamps
    are BFS distances; nondeterministic producers must use
    {!Recheck.sweep} instead.  [Error] if any state records a violation
    or was never expanded (truncated run) — such runs are not
    certifiable. *)

val write :
  dir:string ->
  config_hash:string ->
  reduce:string ->
  invariant_names:string list ->
  run_config:Obs.Json.t ->
  max_depth:int ->
  Store.Segment.entry array ->
  (Certificate.header, string) result
(** Emit [table.seg] then [CERT.json] into [dir] (created if missing).
    The header is written last, so a crash mid-write never leaves a
    parsable certificate.  [Error] on an empty table or a table without
    a unique depth-0 root entry. *)
