(* Quickstart: build the paper's model, check it exhaustively, and watch an
   ablation fail.

     dune exec examples/quickstart.exe

   Steps:
   1. configure a small bounded instance (1 mutator, 2 references, one
      collection cycle, up to 2 heap operations);
   2. build the CIMP system  GC || M0 || Sys;
   3. explore every reachable state, checking the paper's full invariant
      catalogue (Sections 2.1 and 3.2);
   4. repeat with the deletion barrier removed and print the shortest
      counterexample schedule the checker finds. *)

let () =
  (* 1. configuration *)
  let cfg =
    {
      Core.Config.default with
      n_muts = 1;
      n_refs = 2;
      n_fields = 1;
      buf_bound = 1;
      max_cycles = 1;
      max_mut_ops = 2;
    }
  in
  let shape = Gcheap.Shapes.single ~n_refs:2 ~n_fields:1 in

  (* 2. the model: collector, mutators and the TSO system process *)
  let model = Core.Model.make cfg shape in
  Fmt.pr "model: %d processes (%s)@."
    (Cimp.System.n_procs model.Core.Model.system)
    (String.concat ", "
       (List.init (Cimp.System.n_procs model.Core.Model.system)
          (Cimp.System.name model.Core.Model.system)));

  (* 3. exhaustive check of the full invariant catalogue *)
  let invariants =
    List.map (fun i -> (i.Core.Invariants.name, i.Core.Invariants.check)) (Core.Invariants.all cfg)
  in
  Fmt.pr "checking %d invariants, among them:@." (List.length invariants);
  List.iteri
    (fun i inv ->
      if i < 5 then Fmt.pr "  - %s: %s@." inv.Core.Invariants.name inv.Core.Invariants.doc)
    (Core.Invariants.all cfg);
  let outcome = Check.Explore.run ~max_states:5_000_000 ~invariants model.Core.Model.system in
  Fmt.pr "paper collector: %a@.@." Check.Explore.pp_outcome outcome;

  (* 4. the same instance without the deletion barrier *)
  let broken = { cfg with Core.Config.deletion_barrier = false; max_mut_ops = 3 } in
  let shape3 = Gcheap.Shapes.chain ~n_refs:3 ~n_fields:1 3 in
  let broken = { broken with Core.Config.n_refs = 3; mut_alloc = false; mut_discard = false } in
  let model' = Core.Model.make broken shape3 in
  let safety =
    List.map
      (fun i -> (i.Core.Invariants.name, i.Core.Invariants.check))
      (Core.Invariants.safety_invariants broken)
  in
  let outcome' = Check.Explore.run ~max_states:5_000_000 ~invariants:safety model'.Core.Model.system in
  Fmt.pr "without the deletion barrier: %a@." Check.Explore.pp_outcome outcome';
  match outcome'.Check.Explore.violation with
  | Some trace ->
    Fmt.pr "@.shortest counterexample (%d atomic actions):@.%a@." (Check.Trace.length trace)
      (Core.Dump.pp_trace broken) trace
  | None -> Fmt.pr "unexpected: no violation found@."
