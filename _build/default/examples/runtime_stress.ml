(* The concrete runtime under stress: real OCaml domains running the
   collector kernel against mutators, with and without write barriers.

     dune exec examples/runtime_stress.exe [seconds]

   With barriers the run is SAFE for as long as you let it go; without
   them the adversarial Lists workload (the Fig. 1 attack, timed against
   the mutator's own get-roots acknowledgement) faults within a few
   cycles.  The trace pause widens the collector's tracing window so the
   race is schedulable on small machines; see lib/runtime/rshared.ml. *)

let () =
  let duration = if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 4.0 in

  Fmt.pr "== uniform random workload, barriers on ==@.";
  let s = Runtime.Harness.run ~n_muts:2 ~n_slots:256 ~duration () in
  Fmt.pr "  %a@." Runtime.Harness.pp_stats s;

  Fmt.pr "@.== adversarial lists workload, barriers on ==@.";
  let s =
    Runtime.Harness.run ~n_muts:2 ~n_slots:256 ~duration ~workload:Runtime.Rmutator.Lists
      ~trace_pause:0.0002 ()
  in
  Fmt.pr "  %a@." Runtime.Harness.pp_stats s;

  Fmt.pr "@.== adversarial lists workload, barriers OFF ==@.";
  let s =
    Runtime.Harness.run ~n_muts:2 ~n_slots:256 ~duration ~barriers:false
      ~workload:Runtime.Rmutator.Lists ~trace_pause:0.0002 ()
  in
  Fmt.pr "  %a@." Runtime.Harness.pp_stats s;
  match s.Runtime.Harness.violation with
  | Some _ -> Fmt.pr "@.the write barriers are load-bearing: QED (concretely).@."
  | None ->
    Fmt.pr "@.(no fault this run — the schedule is OS-dependent; try a longer duration)@."
