(* A tour of the CIMP surface language (the paper's Section 3 vehicle):
   write a small process system as text, typecheck it, compile it onto the
   core semantics, and model-check its assertions.

     dune exec examples/cimp_lang_tour.exe *)

let source =
  {|
# Peterson's mutual-exclusion protocol, CIMP style: the "memory" process
# serialises accesses, the two workers race through the protocol, and a
# checker process owns the critical-section token.

process alice {
  send set_flag0(1) -> ok;
  send set_turn(1) -> ok;
  var f := 1;
  var t := 1;
  while f == 1 && t == 1 {
    send get_flag1(0) -> f;
    send get_turn(0) -> t;
  }
  send enter(0) -> ok;
  send leave(0) -> ok;
  send set_flag0(0) -> ok;
}

process bob {
  send set_flag1(1) -> ok;
  send set_turn(0) -> ok;
  var f := 1;
  var t := 0;
  while f == 1 && t == 0 {
    send get_flag0(0) -> f;
    send get_turn(0) -> t;
  }
  send enter(1) -> ok;
  send leave(1) -> ok;
  send set_flag1(0) -> ok;
}

process memory {
  var flag0 := 0;
  var flag1 := 0;
  var turn := 0;
  var inside := 0;
  loop {
    choose {
      recv set_flag0(v) reply v;
      flag0 := v;
    } or {
      recv set_flag1(v) reply v;
      flag1 := v;
    } or {
      recv set_turn(v) reply v;
      turn := v;
    } or {
      recv get_flag0(x) reply flag0;
    } or {
      recv get_flag1(x) reply flag1;
    } or {
      recv get_turn(x) reply turn;
    } or {
      recv enter(who) reply who;
      assert inside == 0;
      inside := inside + 1;
    } or {
      recv leave(who) reply who;
      inside := inside - 1;
    }
  }
}
|}

let () =
  let prog = Cimp_lang.Parser.program source in
  Fmt.pr "parsed %d processes; pretty-printed:@.@.%a@.@." (List.length prog)
    Cimp_lang.Ast.pp_program prog;
  let chans = Cimp_lang.Typecheck.program prog in
  Fmt.pr "typechecked: %d channels (%s)@.@." (List.length chans)
    (String.concat ", " (List.map fst chans));
  let sys = Cimp_lang.Compile.system prog in
  let o =
    Check.Explore.run ~max_states:2_000_000
      ~invariants:[ ("mutual-exclusion", Cimp_lang.Compile.assertions_hold) ]
      sys
  in
  Fmt.pr "model checking Peterson: %a@." Check.Explore.pp_outcome o;
  match o.Check.Explore.violation with
  | None -> Fmt.pr "mutual exclusion holds over the whole state space.@."
  | Some tr -> Fmt.pr "VIOLATED:@.%a@." Check.Trace.pp tr
