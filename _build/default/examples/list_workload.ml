(* The paper's motivating workload shape on the abstract model: mutators
   build and tear down linked structure while the collector cycles
   concurrently, under both exhaustive and randomized scheduling.

     dune exec examples/list_workload.exe

   The chain heap is the structure behind Fig. 1: the collector's wavefront
   crawls the chain while mutators load interior references into their
   roots and overwrite edges (triggering both barriers), producing floating
   garbage that the next cycle reclaims. *)

let () =
  (* exhaustive: chain of 3, loads and stores only, one cycle *)
  let sc =
    Core.Scenario.make ~label:"chain3" ~shape:"chain3" ~max_mut_ops:3
      ~tweak:(fun c -> { c with Core.Config.mut_alloc = false; mut_discard = false })
      ()
  in
  Fmt.pr "exhaustive (chain of 3, 1 mutator, loads+stores, 1 cycle):@.";
  let o = Core.Scenario.explore ~max_states:10_000_000 sc in
  Fmt.pr "  %a@.@." Check.Explore.pp_outcome o;

  (* randomized: bigger chain, full repertoire, unbounded cycles *)
  let sc =
    Core.Scenario.make ~label:"deep" ~n_refs:5 ~n_fields:2 ~shape:"chain3" ~buf_bound:2
      ~max_cycles:0 ~max_mut_ops:0 ~mut_mfence:true ()
  in
  Fmt.pr "randomized (5 refs, 2 fields, unbounded cycles, full repertoire):@.";
  List.iter
    (fun seed ->
      let o = Core.Scenario.random_walk ~seed ~steps:50_000 sc in
      Fmt.pr "  seed %2d: %a@." seed Check.Random_walk.pp_outcome o)
    [ 1; 2; 3; 4 ];

  (* how much floating garbage shows up: drive one scheduled run and count
     frees per cycle via the dangling ghost (none expected) and heap sizes *)
  let model = Core.Scenario.model sc in
  let cfg = sc.Core.Scenario.cfg in
  let sd = Core.Model.sys_data model.Core.Model.system cfg in
  Fmt.pr "@.initial heap: %d objects, roots %a@."
    (List.length (Gcheap.Heap.domain sd.Core.State.s_mem.Core.State.heap))
    Fmt.(list ~sep:comma int)
    (Core.Model.mut_data model.Core.Model.system cfg 0).Core.State.m_roots
