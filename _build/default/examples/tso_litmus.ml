(* x86-TSO litmus tour: run the classic tests on the machine the model is
   built on, show the relaxed behaviours TSO admits beyond SC, and how
   MFENCE / LOCK'd instructions tame them — the mechanisms behind the
   collector's handshake fences and marking CAS (Section 2.4).

     dune exec examples/tso_litmus.exe *)

let banner title = Fmt.pr "@.== %s ==@." title

let show t =
  let v = Tso.Litmus.run t in
  Fmt.pr "@.%s — %s@." t.Tso.Litmus.name t.Tso.Litmus.description;
  Fmt.pr "  TSO outcomes: %a@."
    Fmt.(list ~sep:sp Tso.Litmus.pp_outcome)
    v.Tso.Litmus.tso_outcomes;
  Fmt.pr "  SC outcomes:  %a@."
    Fmt.(list ~sep:sp Tso.Litmus.pp_outcome)
    v.Tso.Litmus.sc_outcomes;
  Fmt.pr "  target %a: %s under TSO, %s under SC (published: %s/%s) %s@." Tso.Litmus.pp_outcome
    t.Tso.Litmus.target
    (if v.Tso.Litmus.tso_observed then "observed" else "forbidden")
    (if v.Tso.Litmus.sc_observed then "observed" else "forbidden")
    (if t.Tso.Litmus.allowed_tso then "observed" else "forbidden")
    (if t.Tso.Litmus.allowed_sc then "observed" else "forbidden")
    (if v.Tso.Litmus.ok then "OK" else "MISMATCH")

let () =
  banner "store buffering: the behaviour the collector must survive";
  show Tso.Catalog.sb;
  banner "the handshake store fence restores order";
  show Tso.Catalog.sb_mfence;
  banner "so does the marking CAS (a LOCK'd instruction)";
  show Tso.Catalog.sb_xchg;
  banner "store-buffer forwarding (a thread sees its own stores early)";
  show Tso.Catalog.n6;
  banner "what TSO still guarantees";
  show Tso.Catalog.mp;
  show Tso.Catalog.corr;
  banner "full catalogue";
  List.iter (fun v -> Fmt.pr "%a@." Tso.Litmus.pp_verdict v) (Tso.Catalog.run_all ())
