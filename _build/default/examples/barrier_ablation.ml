(* Barrier ablation tour: run every named variant of the collector on its
   minimal witness instance and report which invariant breaks (or that
   none does).

     dune exec examples/barrier_ablation.exe [--trace]

   This is the executable form of the paper's design rationale: the
   deletion barrier (Fig. 1), the insertion barrier (Section 2, On-the-Fly),
   allocate-black (Section 2, Timeliness), the handshake fences
   (Section 2.4), and the marking CAS (Section 2.3) are each removed in
   turn, and the checker exhibits the failure the paper argues each one
   prevents. *)

let show_trace = Array.mem "--trace" Sys.argv

let run (v : Core.Variants.t) =
  let sc = Core.Scenario.witness_for v in
  let safety_only = v.Core.Variants.expectation = Core.Variants.Unsafe in
  let o = Core.Scenario.explore ~max_states:5_000_000 ~safety_only sc in
  let verdict =
    match o.Check.Explore.violation with
    | None -> "holds"
    | Some tr -> "breaks " ^ tr.Check.Trace.broken
  in
  Fmt.pr "%-32s %-28s (%d states, %.1fs)@." v.Core.Variants.name verdict o.Check.Explore.states
    o.Check.Explore.elapsed;
  Fmt.pr "    scenario: %s@." sc.Core.Scenario.note;
  match o.Check.Explore.violation with
  | Some tr when show_trace ->
    Fmt.pr "%a@.@." (Core.Dump.pp_trace sc.Core.Scenario.cfg) tr
  | _ -> ()

let () =
  Fmt.pr "== the paper's collector ==@.";
  run Core.Variants.paper;
  Fmt.pr "@.== ablations (each mechanism is load-bearing) ==@.";
  List.iter run Core.Variants.ablations;
  Fmt.pr "@.== the CAS (safety survives, grey exclusivity does not) ==@.";
  run Core.Variants.no_cas;
  Fmt.pr "@.== Section 4 observations (conjectured safe) ==@.";
  List.iter run Core.Variants.observations;
  Fmt.pr "@.== the SC baseline ==@.";
  run Core.Variants.sc_memory;
  Fmt.pr "@.(re-run with --trace to print counterexample schedules)@."
