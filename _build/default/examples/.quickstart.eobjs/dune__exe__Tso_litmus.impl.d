examples/tso_litmus.ml: Fmt List Tso
