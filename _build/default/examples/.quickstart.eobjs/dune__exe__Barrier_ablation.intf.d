examples/barrier_ablation.mli:
