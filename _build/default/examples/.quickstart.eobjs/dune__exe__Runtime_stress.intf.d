examples/runtime_stress.mli:
