examples/cimp_lang_tour.mli:
