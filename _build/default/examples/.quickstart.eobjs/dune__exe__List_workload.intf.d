examples/list_workload.mli:
