examples/cimp_lang_tour.ml: Check Cimp_lang Fmt List String
