examples/quickstart.ml: Check Cimp Core Fmt Gcheap List String
