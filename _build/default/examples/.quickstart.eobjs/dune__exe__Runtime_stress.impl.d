examples/runtime_stress.ml: Array Fmt Runtime Sys
