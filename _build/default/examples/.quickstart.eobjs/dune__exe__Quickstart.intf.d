examples/quickstart.mli:
