examples/list_workload.ml: Check Core Fmt Gcheap List
