examples/barrier_ablation.ml: Array Check Core Fmt List Sys
