(* Discrimination tests for the invariant catalogue: every auxiliary
   invariant must be *refutable* — we build a concrete global state that
   violates it and check that the predicate says no.  (The positive
   direction — all invariants hold on every reachable state — is covered by
   the exhaustive runs in test_safety.ml; these tests guard against an
   invariant silently degenerating to [fun _ -> true].) *)

open Core.Types
module St = Core.State
module Cfg = Core.Config

let cfg = { Cfg.default with n_muts = 2; n_refs = 3 }

let shape = Gcheap.Shapes.single ~n_refs:3 ~n_fields:1

let base () = (Core.Model.make cfg shape).Core.Model.system

let pid_sys = Cfg.pid_sys cfg
let mut0 = Cfg.pid_mut cfg 0
let mut1 = Cfg.pid_mut cfg 1

(* Rebuild the system with a doctored sys_data. *)
let with_sys f sys = Cimp.System.map_data sys pid_sys (St.map_sys f)
let with_mut m f sys = Cimp.System.map_data sys (Cfg.pid_mut cfg m) (St.map_mut f)

let check_inv name sys expected =
  match Core.Invariants.find cfg name with
  | None -> Alcotest.fail ("unknown invariant " ^ name)
  | Some i -> Alcotest.(check bool) name expected (i.Core.Invariants.check sys)

let violates name f = check_inv name (with_sys f (base ())) false

let test_valid_refs_refutable () =
  (* a rooted reference with no object *)
  let sys = with_mut 0 (fun d -> { d with St.m_roots = [ 2 ] }) (base ()) in
  check_inv "valid_refs_inv" sys false

let test_no_dangling_refutable () = violates "no_dangling_access" (fun sd -> { sd with St.s_dangling = true })

let test_worklists_disjoint_refutable () =
  violates "worklists_disjoint" (fun sd -> St.set_wl (St.set_wl sd mut0 [ 0 ]) mut1 [ 0 ])

let test_worklists_dup_refutable () =
  violates "worklists_disjoint" (fun sd ->
      { sd with St.s_W = List.mapi (fun i w -> if i = mut0 then [ 0; 0 ] else w) sd.St.s_W })

let test_valid_w_refutable () =
  (* a grey whose object is unmarked, lock not held *)
  violates "valid_W_inv" (fun sd ->
      let heap = Gcheap.Heap.set_mark sd.St.s_mem.St.heap 0 (not sd.St.s_mem.St.fM) in
      St.set_wl { sd with St.s_mem = { sd.St.s_mem with St.heap } } mut0 [ 0 ])

let test_valid_w_lock_exemption () =
  (* same state but the owner holds the lock: the exemption applies *)
  let sys =
    with_sys
      (fun sd ->
        let heap = Gcheap.Heap.set_mark sd.St.s_mem.St.heap 0 (not sd.St.s_mem.St.fM) in
        { (St.set_wl { sd with St.s_mem = { sd.St.s_mem with St.heap } } mut0 [ 0 ]) with
          St.s_lock = Some mut0 })
      (base ())
  in
  (* the lock-scope invariant now fails instead (lock held outside a CAS),
     but valid_W_inv itself must accept *)
  check_inv "valid_W_inv" sys true;
  check_inv "tso_lock_scope" sys false

let test_tso_ownership_refutable () =
  violates "tso_ownership" (fun sd -> St.set_buf sd mut0 [ W_phase Ph_mark ])

let test_gc_fm_refutable () =
  violates "gc_fM_coherent" (fun sd -> { sd with St.s_mem = { sd.St.s_mem with St.fM = true } })

let test_phase_inv_refutable () =
  (* hs_type = nop1 but phase = Mark in memory *)
  violates "sys_phase_inv" (fun sd ->
      { sd with St.s_hs_type = Hs_nop1; s_mem = { sd.St.s_mem with St.phase = Ph_mark } })

let test_fa_fm_refutable () =
  (* nop4 span with differing senses and no pending write *)
  violates "fA_fM_relation" (fun sd ->
      { sd with St.s_hs_type = Hs_nop4; s_mem = { sd.St.s_mem with St.fA = true; fM = false } })

let test_no_black_refs_refutable () =
  (* nop2 span, senses differ, and a marked non-grey (= black) object *)
  violates "no_black_refs_init" (fun sd ->
      let heap = Gcheap.Heap.set_mark sd.St.s_mem.St.heap 0 true in
      { sd with St.s_hs_type = Hs_nop2; s_mem = { sd.St.s_mem with St.heap; fM = true; fA = false } })

let test_idle_uniform_refutable () =
  (* nop1 span with a grey reference *)
  violates "idle_heap_uniform" (fun sd -> St.set_wl { sd with St.s_hs_type = Hs_nop1 } mut0 [ 0 ])

let test_marked_insertions_refutable () =
  (* mutator past nop3 with an unmarked insertion in flight *)
  violates "marked_insertions" (fun sd ->
      let heap = Gcheap.Heap.alloc sd.St.s_mem.St.heap 1 ~mark:(not sd.St.s_mem.St.fM) in
      let sd = { sd with St.s_mem = { sd.St.s_mem with St.heap } } in
      let sd = St.set_buf sd mut0 [ W_field (0, 0, Some 1) ] in
      { sd with St.s_hs_mut_hs = List.mapi (fun i h -> if i = 0 then Hs_nop3 else h) sd.St.s_hs_mut_hs })

let test_marked_deletions_refutable () =
  (* black mutator overwrites a field whose current value is white *)
  violates "marked_deletions" (fun sd ->
      let heap = Gcheap.Heap.alloc sd.St.s_mem.St.heap 1 ~mark:(not sd.St.s_mem.St.fM) in
      let heap = Gcheap.Heap.set_field heap 0 0 (Some 1) in
      let sd = { sd with St.s_mem = { sd.St.s_mem with St.heap } } in
      St.set_buf sd mut0 [ W_field (0, 0, None) ])

let test_snapshot_refutable () =
  (* a black mutator reaching an unprotected white *)
  violates "reachable_snapshot_inv" (fun sd ->
      let heap = Gcheap.Heap.alloc sd.St.s_mem.St.heap 1 ~mark:(not sd.St.s_mem.St.fM) in
      let heap = Gcheap.Heap.set_field heap 0 0 (Some 1) in
      { sd with St.s_mem = { sd.St.s_mem with St.heap } })

let test_gc_w_empty_refutable () =
  (* active get-work round: completed mutator holds grey work, the waiting
     one does not, and the collector's W is empty *)
  violates "gc_W_empty_mut_inv" (fun sd ->
      let sd = { sd with St.s_hs_type = Hs_get_work; s_hs_done = [ true; false ] } in
      St.set_wl sd mut0 [ 0 ])

let test_weak_tricolor_refutable () =
  (* black -> white edge with no grey anywhere *)
  violates "weak_tricolor_inv" (fun sd ->
      let heap = Gcheap.Heap.alloc sd.St.s_mem.St.heap 1 ~mark:(not sd.St.s_mem.St.fM) in
      let heap = Gcheap.Heap.set_field heap 0 0 (Some 1) in
      { sd with St.s_mem = { sd.St.s_mem with St.heap } })

let test_weak_tricolor_accepts_protected () =
  (* the same white but grey-protected: must pass *)
  let sys =
    with_sys
      (fun sd ->
        let heap = Gcheap.Heap.alloc sd.St.s_mem.St.heap 1 ~mark:(not sd.St.s_mem.St.fM) in
        let heap = Gcheap.Heap.set_field heap 0 0 (Some 1) in
        St.set_wl { sd with St.s_mem = { sd.St.s_mem with St.heap } } mut1 [ 1 ])
      (base ())
  in
  check_inv "weak_tricolor_inv" sys true

let test_strong_tricolor_refutable () =
  (* marking span (nop4, senses equal) with a black -> white edge *)
  violates "strong_tricolor_inv" (fun sd ->
      let heap = Gcheap.Heap.alloc sd.St.s_mem.St.heap 1 ~mark:(not sd.St.s_mem.St.fM) in
      let heap = Gcheap.Heap.set_field heap 0 0 (Some 1) in
      { sd with St.s_hs_type = Hs_nop4; s_mem = { sd.St.s_mem with St.heap } })

let test_free_only_garbage_vacuous_off_label () =
  (* the at-label invariant is vacuously true away from gc:free *)
  check_inv "free_only_garbage" (base ()) true

let test_ablated_guards_disable () =
  (* with the barriers ablated, the barrier invariants go vacuous (their
     guards consult the configuration) *)
  let cfg' = { cfg with Cfg.deletion_barrier = false; insertion_barrier = false } in
  let sys = (Core.Model.make cfg' shape).Core.Model.system in
  List.iter
    (fun name ->
      match Core.Invariants.find cfg' name with
      | Some i -> Alcotest.(check bool) (name ^ " vacuous") true (i.Core.Invariants.check sys)
      | None -> Alcotest.fail name)
    [ "marked_insertions"; "marked_deletions"; "reachable_snapshot_inv"; "weak_tricolor_inv" ]

let test_catalogue_metadata () =
  let invs = Core.Invariants.all cfg in
  Alcotest.(check int) "18 invariants" 18 (List.length invs);
  Alcotest.(check int) "3 safety invariants" 3
    (List.length (List.filter (fun i -> i.Core.Invariants.safety) invs));
  (* names unique, docs non-empty *)
  let names = List.map (fun i -> i.Core.Invariants.name) invs in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names));
  List.iter (fun i -> Alcotest.(check bool) "doc" true (String.length i.Core.Invariants.doc > 0)) invs

let suite =
  [
    Alcotest.test_case "valid_refs_inv is refutable" `Quick test_valid_refs_refutable;
    Alcotest.test_case "no_dangling is refutable" `Quick test_no_dangling_refutable;
    Alcotest.test_case "worklists_disjoint: overlap" `Quick test_worklists_disjoint_refutable;
    Alcotest.test_case "worklists_disjoint: duplicates" `Quick test_worklists_dup_refutable;
    Alcotest.test_case "valid_W_inv is refutable" `Quick test_valid_w_refutable;
    Alcotest.test_case "valid_W_inv honours the lock exemption" `Quick test_valid_w_lock_exemption;
    Alcotest.test_case "tso_ownership is refutable" `Quick test_tso_ownership_refutable;
    Alcotest.test_case "gc_fM_coherent is refutable" `Quick test_gc_fm_refutable;
    Alcotest.test_case "sys_phase_inv is refutable" `Quick test_phase_inv_refutable;
    Alcotest.test_case "fA_fM_relation is refutable" `Quick test_fa_fm_refutable;
    Alcotest.test_case "no_black_refs_init is refutable" `Quick test_no_black_refs_refutable;
    Alcotest.test_case "idle_heap_uniform is refutable" `Quick test_idle_uniform_refutable;
    Alcotest.test_case "marked_insertions is refutable" `Quick test_marked_insertions_refutable;
    Alcotest.test_case "marked_deletions is refutable" `Quick test_marked_deletions_refutable;
    Alcotest.test_case "reachable_snapshot_inv is refutable" `Quick test_snapshot_refutable;
    Alcotest.test_case "gc_W_empty_mut_inv is refutable" `Quick test_gc_w_empty_refutable;
    Alcotest.test_case "weak_tricolor is refutable" `Quick test_weak_tricolor_refutable;
    Alcotest.test_case "weak_tricolor accepts grey protection" `Quick test_weak_tricolor_accepts_protected;
    Alcotest.test_case "strong_tricolor is refutable" `Quick test_strong_tricolor_refutable;
    Alcotest.test_case "free_only_garbage vacuous off-label" `Quick test_free_only_garbage_vacuous_off_label;
    Alcotest.test_case "ablated guards disable cleanly" `Quick test_ablated_guards_disable;
    Alcotest.test_case "catalogue metadata" `Quick test_catalogue_metadata;
  ]
