(* Tests for the checking harness: exact state counts on hand-built
   systems, shortest-counterexample reconstruction, the random walker, and
   fingerprint discipline. *)

open Cimp

type com = (int, int, int) Com.t

let proc c data = Com.make [ c ] data

(* A diamond: two independent one-step processes => exactly 4 states. *)
let diamond () =
  let p : com = Com.Local_op ("p", fun s -> [ s + 1 ]) in
  System.make [| "p"; "q" |] [| proc p 0; proc p 0 |]

let test_exact_state_count () =
  let o = Check.Explore.run ~normal_form:false ~invariants:[] (diamond ()) in
  Alcotest.(check int) "diamond has 4 states" 4 o.Check.Explore.states;
  Alcotest.(check int) "4 transitions" 4 o.Check.Explore.transitions;
  Alcotest.(check int) "depth 2" 2 o.Check.Explore.depth;
  Alcotest.(check int) "one terminal" 1 o.Check.Explore.deadlocks;
  Alcotest.(check bool) "closed" false o.Check.Explore.truncated

let test_normal_form_collapses_diamond () =
  (* with eager definite taus the whole diamond collapses into one state *)
  let o = Check.Explore.run ~normal_form:true ~invariants:[] (diamond ()) in
  Alcotest.(check int) "single normal form" 1 o.Check.Explore.states

let test_truncation () =
  (* an unbounded counter never closes *)
  let p : com = Com.Loop (Com.Local_op ("inc", fun s -> [ s + 1; s + 2 ])) in
  let sys = System.make [| "p" |] [| proc p 0 |] in
  let o = Check.Explore.run ~max_states:50 ~invariants:[] sys in
  Alcotest.(check bool) "truncated" true o.Check.Explore.truncated;
  Alcotest.(check int) "capped" 50 o.Check.Explore.states

let test_shortest_counterexample () =
  (* two routes to the bad value: length 3 (via +1 steps) and length 1
     (via +3); BFS must return the short one *)
  let p : com = Com.Loop (Com.Local_op ("step", fun s -> [ s + 1; s + 3 ])) in
  let sys = System.make [| "p" |] [| proc p 0 |] in
  let o =
    Check.Explore.run ~invariants:[ ("not-three", fun sys -> (System.proc sys 0).Com.data <> 3) ] sys
  in
  match o.Check.Explore.violation with
  | Some tr ->
    Alcotest.(check string) "names the invariant" "not-three" tr.Check.Trace.broken;
    Alcotest.(check int) "shortest trace" 1 (Check.Trace.length tr);
    Alcotest.(check int) "final state violates" 3 (System.proc (Check.Trace.final tr) 0).Com.data
  | None -> Alcotest.fail "violation expected"

let test_trace_replays () =
  let p : com =
    Com.seq
      [
        Com.Local_op ("a", fun s -> [ s + 1 ]);
        Com.Local_op ("b", fun s -> [ s * 2 ]);
        Com.Local_op ("c", fun s -> [ s + 5 ]);
      ]
  in
  let sys = System.make [| "p" |] [| proc p 3 |] in
  let o =
    Check.Explore.run ~normal_form:false
      ~invariants:[ ("never-13", fun sys -> (System.proc sys 0).Com.data <> 13) ]
      sys
  in
  match o.Check.Explore.violation with
  | Some tr ->
    Alcotest.(check int) "3 steps" 3 (Check.Trace.length tr);
    (* events in order *)
    let labels =
      List.map
        (fun (s : _ Check.Trace.step) ->
          match s.Check.Trace.event with System.Tau (_, l) -> l | _ -> "?")
        tr.Check.Trace.steps
    in
    Alcotest.(check (list string)) "schedule order" [ "a"; "b"; "c" ] labels
  | None -> Alcotest.fail "13 = (3+1)*2+5 must be reached"

let test_initial_state_checked () =
  let sys = diamond () in
  let o = Check.Explore.run ~invariants:[ ("no", fun _ -> false) ] sys in
  match o.Check.Explore.violation with
  | Some tr -> Alcotest.(check int) "violation at depth 0" 0 (Check.Trace.length tr)
  | None -> Alcotest.fail "initial state must be checked"

let test_random_walk_finds_violation () =
  let p : com = Com.Loop (Com.Local_op ("step", fun s -> [ s + 1; s + 2 ])) in
  let sys = System.make [| "p" |] [| proc p 0 |] in
  let o =
    Check.Random_walk.run ~steps:1_000
      ~invariants:[ ("below-20", fun sys -> (System.proc sys 0).Com.data < 20) ]
      sys
  in
  (match o.Check.Random_walk.violation with
  | Some tr ->
    Alcotest.(check bool) "final state is the offender" true
      ((System.proc (Check.Trace.final tr) 0).Com.data >= 20)
  | None -> Alcotest.fail "walker must trip the bound");
  Alcotest.(check bool) "steps counted" true (o.Check.Random_walk.steps_taken > 0)

let test_random_walk_deterministic_seed () =
  let p : com = Com.Loop (Com.Local_op ("step", fun s -> [ s + 1; s + 2 ])) in
  let sys () = System.make [| "p" |] [| proc p 0 |] in
  let run seed =
    (Check.Random_walk.run ~seed ~steps:100 ~invariants:[] (sys ())).Check.Random_walk.steps_taken
  in
  Alcotest.(check int) "same seed, same walk" (run 7) (run 7)

let test_fingerprints () =
  let sys0 = diamond () in
  let fp0 = Check.Fingerprint.of_system sys0 in
  Alcotest.(check bool) "reflexive" true (Check.Fingerprint.equal fp0 (Check.Fingerprint.of_system (diamond ())));
  match System.steps sys0 with
  | (_, sys1) :: _ ->
    Alcotest.(check bool) "progress changes the fingerprint" false
      (Check.Fingerprint.equal fp0 (Check.Fingerprint.of_system sys1))
  | [] -> Alcotest.fail "diamond must step"

(* qcheck: exploration of a random branching counter visits exactly the
   values representable as ordered sums of the branch increments, and the
   state count equals the number of distinct reachable values (+ control). *)
let prop_explore_counts_reachable_values =
  QCheck.Test.make ~name:"explorer visits each reachable value once" ~count:50
    QCheck.(pair (int_range 1 3) (int_range 1 3))
    (fun (a, b) ->
      let p : com = Com.Local_op ("x", fun s -> [ s + a; s + b ]) in
      let sys = System.make [| "p" |] [| proc p 0 |] in
      let o = Check.Explore.run ~normal_form:false ~invariants:[] sys in
      let expected = if a = b then 2 else 3 in
      o.Check.Explore.states = expected)

let suite =
  [
    Alcotest.test_case "exact state counts" `Quick test_exact_state_count;
    Alcotest.test_case "normal form collapses invisible steps" `Quick test_normal_form_collapses_diamond;
    Alcotest.test_case "truncation at the cap" `Quick test_truncation;
    Alcotest.test_case "BFS returns a shortest counterexample" `Quick test_shortest_counterexample;
    Alcotest.test_case "traces replay the schedule in order" `Quick test_trace_replays;
    Alcotest.test_case "the initial state is checked" `Quick test_initial_state_checked;
    Alcotest.test_case "random walks find violations" `Quick test_random_walk_finds_violation;
    Alcotest.test_case "walks are seed-deterministic" `Quick test_random_walk_deterministic_seed;
    Alcotest.test_case "fingerprint discipline" `Quick test_fingerprints;
    QCheck_alcotest.to_alcotest prop_explore_counts_reachable_values;
  ]
