test/test_tso.ml: Alcotest Hashtbl List Printf QCheck QCheck_alcotest Tso
