test/test_invariants.ml: Alcotest Cimp Core Gcheap List String
