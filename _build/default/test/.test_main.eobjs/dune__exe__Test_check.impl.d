test/test_check.ml: Alcotest Check Cimp Com List QCheck QCheck_alcotest System
