test/test_cimp.ml: Alcotest Cimp Com List Printf System
