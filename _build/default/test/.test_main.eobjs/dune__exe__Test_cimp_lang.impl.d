test/test_cimp_lang.ml: Alcotest Check Cimp Cimp_lang Fmt List
