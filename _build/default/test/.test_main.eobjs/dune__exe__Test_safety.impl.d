test/test_safety.ml: Alcotest Check Cimp Core List Option String
