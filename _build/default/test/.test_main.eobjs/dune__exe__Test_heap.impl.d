test/test_heap.ml: Alcotest Fmt Gcheap List Option QCheck QCheck_alcotest
