test/test_runtime.ml: Alcotest Atomic Domain Runtime
