test/test_core.ml: Alcotest Cimp Core Gcheap List
