test/test_main.ml: Alcotest Test_check Test_cimp Test_cimp_lang Test_core Test_heap Test_invariants Test_runtime Test_safety Test_tso
