(* Tests for the x86-TSO machine (Fig. 9 / Sewell et al.): store-buffer
   FIFO discipline, forwarding, fences, the machine lock, and the litmus
   catalogue's published classifications. *)

module M = Tso.Machine
module L = Tso.Litmus

let x = 0
let y = 1

(* Drive a single-thread machine deterministically: prefer Exec over
   Commit so the buffer fills, then drain. *)
let rec exec_all st =
  match List.find_opt (function M.Exec _, _ -> true | _ -> false) (M.steps st) with
  | Some (_, st') -> exec_all st'
  | None -> st

let rec drain st =
  match List.find_opt (function M.Commit _, _ -> true | _ -> false) (M.steps st) with
  | Some (_, st') -> drain st'
  | None -> st

let test_buffered_store_invisible () =
  let code = [| M.Store (x, M.Imm 1) |] in
  let st = exec_all (M.initial ~mem_size:2 ~n_regs:1 [ code ]) in
  Alcotest.(check int) "memory unchanged before commit" 0 (List.nth (M.mem_of st) x);
  let st = drain st in
  Alcotest.(check int) "visible after commit" 1 (List.nth (M.mem_of st) x)

let test_forwarding () =
  (* a thread reads its own buffered store *)
  let code = [| M.Store (x, M.Imm 5); M.Load (0, x) |] in
  let st = exec_all (M.initial ~mem_size:2 ~n_regs:1 [ code ]) in
  Alcotest.(check int) "forwarded value" 5 (List.nth (List.hd (M.regs_of st)) 0);
  Alcotest.(check int) "memory still stale" 0 (List.nth (M.mem_of st) x)

let test_forwarding_newest_wins () =
  let code = [| M.Store (x, M.Imm 1); M.Store (x, M.Imm 2); M.Load (0, x) |] in
  let st = exec_all (M.initial ~mem_size:2 ~n_regs:1 [ code ]) in
  Alcotest.(check int) "newest buffered store wins" 2 (List.nth (List.hd (M.regs_of st)) 0)

let test_fifo_commit_order () =
  let code = [| M.Store (x, M.Imm 1); M.Store (y, M.Imm 2) |] in
  let st = exec_all (M.initial ~mem_size:2 ~n_regs:1 [ code ]) in
  (* first commit must be the store to x *)
  match List.find_opt (function M.Commit _, _ -> true | _ -> false) (M.steps st) with
  | Some (_, st') ->
    Alcotest.(check int) "x committed first" 1 (List.nth (M.mem_of st') x);
    Alcotest.(check int) "y still buffered" 0 (List.nth (M.mem_of st') y)
  | None -> Alcotest.fail "commit expected"

let test_mfence_blocks_until_drained () =
  let code = [| M.Store (x, M.Imm 1); M.Mfence; M.Load (0, y) |] in
  let st = exec_all (M.initial ~mem_size:2 ~n_regs:1 [ code ]) in
  (* exec_all stopped at the fence: pc = 1, buffer non-empty *)
  Alcotest.(check int) "memory after forced drain" 1 (List.nth (M.mem_of (drain st)) x);
  let st' = exec_all (drain st) in
  Alcotest.(check bool) "fence passes after drain" true (M.final (drain st'))

let test_lock_blocks_other_reads () =
  let t0 = [| M.Lock; M.Store (x, M.Imm 1); M.Unlock |] in
  let t1 = [| M.Load (0, x) |] in
  let st = M.initial ~mem_size:2 ~n_regs:1 [ t0; t1 ] in
  (* t0 takes the lock *)
  let st =
    match List.find_opt (function M.Exec (0, _), _ -> true | _ -> false) (M.steps st) with
    | Some (_, st') -> st'
    | None -> Alcotest.fail "t0 must be able to lock"
  in
  Alcotest.(check bool) "t1's load is blocked" false
    (List.exists (function M.Exec (1, _), _ -> true | _ -> false) (M.steps st))

let test_unlock_requires_empty_buffer () =
  let t0 = [| M.Lock; M.Store (x, M.Imm 1); M.Unlock |] in
  let st = M.initial ~mem_size:2 ~n_regs:1 [ t0 ] in
  let take_exec st =
    match List.find_opt (function M.Exec _, _ -> true | _ -> false) (M.steps st) with
    | Some (_, st') -> st'
    | None -> st
  in
  let st = take_exec st (* lock *) in
  let st = take_exec st (* buffered store *) in
  (* unlock is not enabled until the buffer drains *)
  Alcotest.(check bool) "unlock blocked" true
    (List.for_all (function M.Exec _, _ -> false | _ -> true) (M.steps st));
  let st = drain st in
  let st = take_exec st (* unlock *) in
  Alcotest.(check bool) "done" true (M.final (drain st))

let test_sc_mode_commits_immediately () =
  let code = [| M.Store (x, M.Imm 1) |] in
  let st = M.initial ~mode:M.SC ~mem_size:2 ~n_regs:1 [ code ] in
  match M.steps st with
  | [ (M.Exec (0, 0), st') ] ->
    Alcotest.(check int) "store visible at once" 1 (List.nth (M.mem_of st') x)
  | _ -> Alcotest.fail "single step expected"

let test_jump_if_eq () =
  (* r0 := mem[x]; if r0 = 0 jump back to the load (spin until x set) *)
  let spin = [| M.Load (0, x); M.Jump_if_eq (0, 0, -1); M.Store (y, M.Imm 1) |] in
  let setter = [| M.Store (x, M.Imm 1) |] in
  let st = M.initial ~mem_size:2 ~n_regs:1 [ spin; setter ] in
  (* exhaustive exploration must find a final state with y = 1 *)
  let seen = Hashtbl.create 128 in
  let found = ref false in
  let rec go st =
    if not (Hashtbl.mem seen st) then begin
      Hashtbl.add seen st ();
      if M.final st && List.nth (M.mem_of st) y = 1 then found := true;
      List.iter (fun (_, st') -> go st') (M.steps st)
    end
  in
  go st;
  Alcotest.(check bool) "spin loop completes" true !found

(* -- Litmus catalogue ------------------------------------------------------ *)

let test_catalogue_classifications () =
  List.iter
    (fun (v : L.verdict) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s matches x86-TSO" v.L.test.L.name)
        true v.L.ok)
    (Tso.Catalog.run_all ())

let test_sb_outcome_sets () =
  let v = L.run Tso.Catalog.sb in
  (* under SC, exactly the three Dekker outcomes *)
  Alcotest.(check int) "SC outcome count" 3 (List.length v.L.sc_outcomes);
  Alcotest.(check int) "TSO outcome count" 4 (List.length v.L.tso_outcomes);
  Alcotest.(check bool) "TSO strictly richer" true
    (List.for_all (fun o -> List.mem o v.L.tso_outcomes) v.L.sc_outcomes)

let test_tso_explores_more_states () =
  let _, tso = L.outcomes ~mode:M.TSO Tso.Catalog.sb in
  let _, sc = L.outcomes ~mode:M.SC Tso.Catalog.sb in
  Alcotest.(check bool) "TSO state space larger" true (tso > sc)

let test_pso_classifications () =
  List.iter
    (fun (name, expect, got) ->
      Alcotest.(check bool) (name ^ " under PSO") expect got)
    (Tso.Catalog.run_pso ())

let test_pso_mp_details () =
  (* the PSO-only outcome: the message arrives before the data *)
  let outcomes, _ = L.outcomes ~mode:M.PSO Tso.Catalog.mp in
  Alcotest.(check bool) "stale read reachable" true (List.mem [ 1; 0 ] outcomes);
  (* and TSO forbids exactly that one *)
  let tso_outcomes, _ = L.outcomes ~mode:M.TSO Tso.Catalog.mp in
  Alcotest.(check bool) "but not under TSO" false (List.mem [ 1; 0 ] tso_outcomes)

let test_xchg_is_atomic () =
  (* two racing LOCK XCHGs on one cell: exactly one thread observes 0 *)
  let t r = [ L.Xchg (r, x, M.Imm 1) ] in
  let test =
    {
      L.name = "xchg-race";
      description = "racing atomic exchanges";
      mem_size = 1;
      n_regs = 1;
      threads = [ t 0; t 0 ];
      observed_regs = [ (0, 0); (1, 0) ];
      observed_mem = [ x ];
      target = [ 0; 0; 1 ];
      allowed_tso = false;
      allowed_sc = false;
    }
  in
  let outcomes, _ = L.outcomes ~mode:M.TSO test in
  Alcotest.(check (list (list int))) "exactly one winner" [ [ 0; 1; 1 ]; [ 1; 0; 1 ] ] outcomes

(* qcheck: in any reachable final state of a single-threaded program, TSO
   and SC agree (TSO relaxations need concurrency to be observable). *)
let arbitrary_program =
  let open QCheck.Gen in
  let instr =
    frequency
      [
        (3, map2 (fun a v -> L.St (a, M.Imm v)) (int_bound 1) (int_range 1 3));
        (3, map2 (fun r a -> L.Ld (r, a)) (int_bound 1) (int_bound 1));
        (1, return L.Mf);
        (1, map2 (fun r a -> L.Xchg (r, a, M.Imm 9)) (int_bound 1) (int_bound 1));
      ]
  in
  QCheck.make
    ~print:(fun p -> Printf.sprintf "<%d instrs>" (List.length p))
    (list_size (int_bound 6) instr)

let prop_single_thread_tso_is_sc =
  QCheck.Test.make ~name:"single-threaded TSO = SC" ~count:100 arbitrary_program (fun prog ->
      let test =
        {
          L.name = "gen";
          description = "";
          mem_size = 2;
          n_regs = 2;
          threads = [ prog ];
          observed_regs = [ (0, 0); (0, 1) ];
          observed_mem = [ 0; 1 ];
          target = [];
          allowed_tso = false;
          allowed_sc = false;
        }
      in
      let tso, _ = L.outcomes ~mode:M.TSO test in
      let sc, _ = L.outcomes ~mode:M.SC test in
      tso = sc)

let suite =
  [
    Alcotest.test_case "buffered stores are locally invisible" `Quick test_buffered_store_invisible;
    Alcotest.test_case "store-buffer forwarding" `Quick test_forwarding;
    Alcotest.test_case "forwarding: newest store wins" `Quick test_forwarding_newest_wins;
    Alcotest.test_case "buffers commit in FIFO order" `Quick test_fifo_commit_order;
    Alcotest.test_case "mfence waits for the buffer" `Quick test_mfence_blocks_until_drained;
    Alcotest.test_case "the machine lock blocks other readers" `Quick test_lock_blocks_other_reads;
    Alcotest.test_case "unlock needs an empty buffer" `Quick test_unlock_requires_empty_buffer;
    Alcotest.test_case "SC mode commits immediately" `Quick test_sc_mode_commits_immediately;
    Alcotest.test_case "conditional branch (spin loop)" `Quick test_jump_if_eq;
    Alcotest.test_case "litmus catalogue matches x86-TSO" `Quick test_catalogue_classifications;
    Alcotest.test_case "SB outcome sets (3 vs 4)" `Quick test_sb_outcome_sets;
    Alcotest.test_case "TSO reaches more states than SC" `Quick test_tso_explores_more_states;
    Alcotest.test_case "PSO probe classifications" `Quick test_pso_classifications;
    Alcotest.test_case "PSO admits MP's stale read; TSO does not" `Quick test_pso_mp_details;
    Alcotest.test_case "LOCK XCHG is atomic" `Quick test_xchg_is_atomic;
    QCheck_alcotest.to_alcotest prop_single_thread_tso_is_sc;
  ]
