(* Tests for the CIMP core: the small-step rules of Fig. 7, the system
   semantics of Fig. 8, frame-stack normalisation, label discipline, and
   the definite-tau normal form. *)

open Cimp

(* A tiny instantiation: messages and replies are ints, local state is an
   int. *)
type com = (int, int, int) Com.t

let mkcfg (c : com) data = Com.make [ c ] data

let tau_targets cfg = List.map snd (Com.tau_steps cfg)
let datas cfgs = List.map (fun (c : (int, int, int) Com.config) -> c.Com.data) cfgs

let test_skip () =
  let cfg = mkcfg (Com.Skip "a") 7 in
  match Com.tau_steps cfg with
  | [ ("a", cfg') ] ->
    Alcotest.(check bool) "terminated" true (Com.terminated cfg');
    Alcotest.(check int) "data unchanged" 7 cfg'.Com.data
  | _ -> Alcotest.fail "skip must have exactly one tau step"

let test_local_op_nondet () =
  let c : com = Com.Local_op ("a", fun s -> [ s + 1; s + 2; s + 3 ]) in
  let cfg = mkcfg c 0 in
  Alcotest.(check (list int)) "three successors" [ 1; 2; 3 ] (datas (tau_targets cfg))

let test_local_op_blocked () =
  let c : com = Com.Local_op ("a", fun _ -> []) in
  Alcotest.(check int) "no successors" 0 (List.length (Com.tau_steps (mkcfg c 0)))

let test_seq_normalisation () =
  (* Fig. 7's frame-stack rule: (c1 ;; c2) . cs steps as c1 . c2 . cs. *)
  let c = Com.seq [ Com.Skip "a"; Com.Skip "b"; Com.Skip "c" ] in
  let cfg = mkcfg c 0 in
  Alcotest.(check (list string)) "label spine" [ "a"; "b"; "c" ] (Com.stack_labels cfg.Com.stack);
  match Com.tau_steps cfg with
  | [ ("a", cfg') ] ->
    Alcotest.(check (list string)) "after one step" [ "b"; "c" ] (Com.stack_labels cfg'.Com.stack)
  | _ -> Alcotest.fail "expected one step"

let test_if_branches () =
  let c : com = Com.If ("i", (fun s -> s > 0), Com.Skip "t", Com.Skip "f") in
  let head cfg = List.hd (Com.stack_labels cfg.Com.stack) in
  (match Com.tau_steps (mkcfg c 1) with
  | [ ("i", cfg') ] -> Alcotest.(check string) "then" "t" (head cfg')
  | _ -> Alcotest.fail "if must step");
  match Com.tau_steps (mkcfg c 0) with
  | [ ("i", cfg') ] -> Alcotest.(check string) "else" "f" (head cfg')
  | _ -> Alcotest.fail "if must step"

let test_while_unfolds () =
  let c : com = Com.While ("w", (fun s -> s < 2), Com.Local_op ("inc", fun s -> [ s + 1 ])) in
  let rec drive cfg n =
    if n > 20 then Alcotest.fail "while did not terminate"
    else if Com.terminated cfg then cfg.Com.data
    else
      match Com.tau_steps cfg with
      | [ (_, cfg') ] -> drive cfg' (n + 1)
      | _ -> Alcotest.fail "deterministic loop expected"
  in
  Alcotest.(check int) "loop counts to 2" 2 (drive (mkcfg c 0) 0)

let test_choose_external () =
  (* External choice offers the union of its branches' actions and commits
     only when a branch acts. *)
  let c : com =
    Com.Choose
      [ Com.Local_op ("a", fun s -> [ s + 10 ]); Com.Local_op ("b", fun s -> [ s + 20 ]) ]
  in
  let steps = Com.tau_steps (mkcfg c 0) in
  Alcotest.(check int) "two offers" 2 (List.length steps);
  Alcotest.(check (list int)) "both branches" [ 10; 20 ] (List.sort compare (datas (List.map snd steps)))

let test_choose_blocked_branch () =
  let c : com =
    Com.Choose [ Com.Local_op ("a", fun _ -> []); Com.Local_op ("b", fun s -> [ s + 1 ]) ]
  in
  Alcotest.(check int) "only enabled branch offers" 1 (List.length (Com.tau_steps (mkcfg c 0)))

let test_loop_transparent () =
  (* Loop unfolds without consuming a step: the first step comes from the
     body. *)
  let c : com = Com.Loop (Com.Local_op ("body", fun s -> [ s + 1 ])) in
  match Com.tau_steps (mkcfg c 0) with
  | [ ("body", cfg') ] ->
    Alcotest.(check int) "body ran" 1 cfg'.Com.data;
    (* and the loop restores itself as the continuation *)
    (match Com.tau_steps cfg' with
    | [ ("body", cfg'') ] -> Alcotest.(check int) "second iteration" 2 cfg''.Com.data
    | _ -> Alcotest.fail "loop must offer the body again")
  | _ -> Alcotest.fail "loop must step via its body"

let test_labels_and_duplicates () =
  let c = Com.seq [ Com.Skip "a"; Com.Skip "b"; Com.Skip "a" ] in
  Alcotest.(check (list string)) "dup found" [ "a" ] (Com.duplicate_labels c);
  let c' = Com.seq [ Com.Skip "a"; Com.Skip "b" ] in
  Alcotest.(check (list string)) "no dups" [] (Com.duplicate_labels c')

let test_at_labels_choose () =
  let c : com =
    Com.Choose [ Com.Skip "a"; Com.If ("i", (fun _ -> true), Com.Skip "t", Com.Skip "f") ]
  in
  Alcotest.(check (list string)) "all branch heads" [ "a"; "i" ] (Com.at_labels (mkcfg c 0))

(* -- Rendezvous (Fig. 7 last two rules; Fig. 8 second rule) ---------------- *)

let requester : com =
  Com.Request ("req", (fun s -> s * 2), fun v s -> s + v)

let responder : com =
  Com.Response ("resp", fun alpha s -> [ (s + alpha, alpha + 1) ])

let test_request_offer () =
  match Com.requests (mkcfg requester 21) with
  | [ ("req", alpha, k) ] ->
    Alcotest.(check int) "alpha from state" 42 alpha;
    let cfg' = k 5 in
    Alcotest.(check int) "reply applied" 26 cfg'.Com.data
  | _ -> Alcotest.fail "one request offer expected"

let test_response_offer () =
  match Com.responses 42 (mkcfg responder 1) with
  | [ ("resp", cfg', beta) ] ->
    Alcotest.(check int) "responder state" 43 cfg'.Com.data;
    Alcotest.(check int) "beta" 43 beta
  | _ -> Alcotest.fail "one response offer expected"

let test_system_rendezvous () =
  let sys = System.make [| "p"; "q" |] [| mkcfg requester 21; mkcfg responder 1 |] in
  match System.steps sys with
  | [ (System.Rendezvous { requester = 0; responder = 1; _ }, sys') ] ->
    (* p sent alpha = 42; q replied beta = 43; p adds it. *)
    Alcotest.(check int) "p after" (21 + 43) (System.proc sys' 0).Com.data;
    Alcotest.(check int) "q after" (1 + 42) (System.proc sys' 1).Com.data
  | l -> Alcotest.fail (Printf.sprintf "expected one rendezvous, got %d steps" (List.length l))

let test_system_no_self_rendezvous () =
  let both = Com.Choose [ requester; responder ] in
  let sys = System.make [| "p" |] [| mkcfg both 0 |] in
  Alcotest.(check int) "a process cannot rendezvous with itself" 0 (List.length (System.steps sys))

let test_system_interleaving_union () =
  (* First rule of Fig. 8: the system's tau steps are the union over
     processes. *)
  let p : com = Com.Local_op ("p", fun s -> [ s + 1 ]) in
  let q : com = Com.Local_op ("q", fun s -> [ s + 1; s + 2 ]) in
  let sys = System.make [| "p"; "q" |] [| mkcfg p 0; mkcfg q 0 |] in
  Alcotest.(check int) "1 + 2 interleavings" 3 (List.length (System.steps sys))

let test_rendezvous_preserves_third_party () =
  let bystander : com = Com.Skip "by" in
  let sys =
    System.make [| "p"; "q"; "r" |] [| mkcfg requester 21; mkcfg responder 1; mkcfg bystander 99 |]
  in
  let rendezvous =
    List.filter (function System.Rendezvous _, _ -> true | _ -> false) (System.steps sys)
  in
  List.iter
    (fun (_, sys') -> Alcotest.(check int) "bystander untouched" 99 (System.proc sys' 2).Com.data)
    rendezvous;
  Alcotest.(check int) "one rendezvous" 1 (List.length rendezvous)

(* -- Definite-tau normal form --------------------------------------------- *)

let test_definite_tau_chain () =
  let c = Com.seq [ Com.Skip "a"; Com.Local_op ("b", fun s -> [ s + 1 ]); Com.Skip "c" ] in
  let sys = System.make [| "p" |] [| mkcfg c 0 |] in
  let sys' = System.normalize sys in
  Alcotest.(check bool) "fully collapsed" true (Com.terminated (System.proc sys' 0));
  Alcotest.(check int) "effects applied" 1 (System.proc sys' 0).Com.data

let test_definite_tau_stops_at_choose () =
  let c = Com.seq [ Com.Skip "a"; Com.Choose [ Com.Skip "x"; Com.Skip "y" ] ] in
  let sys = System.normalize (System.make [| "p" |] [| mkcfg c 0 |]) in
  Alcotest.(check (list string)) "choice not committed" [ "x"; "y" ]
    (Com.at_labels (System.proc sys 0))

let test_definite_tau_stops_at_nondet () =
  let c : com = Com.Local_op ("n", fun s -> [ s + 1; s + 2 ]) in
  let sys = System.normalize (System.make [| "p" |] [| mkcfg c 0 |]) in
  Alcotest.(check int) "nondet op retained" 0 (System.proc sys 0).Com.data

let test_definite_tau_stops_at_request () =
  let c = Com.seq [ Com.Skip "a"; requester ] in
  let sys = System.normalize (System.make [| "p" |] [| mkcfg c 5 |]) in
  Alcotest.(check (list string)) "parked at the request" [ "req" ]
    (Com.at_labels (System.proc sys 0))

let test_control_fingerprint_distinguishes () =
  let c = Com.seq [ Com.Skip "a"; Com.Skip "b" ] in
  let sys0 = System.make [| "p" |] [| mkcfg c 0 |] in
  let sys1 =
    match System.steps sys0 with [ (_, s) ] -> s | _ -> Alcotest.fail "one step"
  in
  Alcotest.(check bool) "fingerprints differ" false
    (System.control_fingerprint sys0 = System.control_fingerprint sys1)

let suite =
  [
    Alcotest.test_case "skip steps once" `Quick test_skip;
    Alcotest.test_case "local op is data-nondeterministic" `Quick test_local_op_nondet;
    Alcotest.test_case "empty local op blocks" `Quick test_local_op_blocked;
    Alcotest.test_case "seq decomposes via the frame stack" `Quick test_seq_normalisation;
    Alcotest.test_case "if takes one step per branch" `Quick test_if_branches;
    Alcotest.test_case "while iterates and exits" `Quick test_while_unfolds;
    Alcotest.test_case "choose is external choice" `Quick test_choose_external;
    Alcotest.test_case "choose skips blocked branches" `Quick test_choose_blocked_branch;
    Alcotest.test_case "loop unfolds transparently" `Quick test_loop_transparent;
    Alcotest.test_case "duplicate labels are caught" `Quick test_labels_and_duplicates;
    Alcotest.test_case "at_labels sees all choice heads" `Quick test_at_labels_choose;
    Alcotest.test_case "request computes alpha, applies beta" `Quick test_request_offer;
    Alcotest.test_case "response consumes alpha, returns beta" `Quick test_response_offer;
    Alcotest.test_case "system rendezvous (Fig. 8)" `Quick test_system_rendezvous;
    Alcotest.test_case "no self-rendezvous" `Quick test_system_no_self_rendezvous;
    Alcotest.test_case "interleaving is the union of process steps" `Quick test_system_interleaving_union;
    Alcotest.test_case "rendezvous preserves bystanders" `Quick test_rendezvous_preserves_third_party;
    Alcotest.test_case "normalize collapses definite taus" `Quick test_definite_tau_chain;
    Alcotest.test_case "normalize never commits a choice" `Quick test_definite_tau_stops_at_choose;
    Alcotest.test_case "normalize keeps data nondeterminism" `Quick test_definite_tau_stops_at_nondet;
    Alcotest.test_case "normalize parks at communications" `Quick test_definite_tau_stops_at_request;
    Alcotest.test_case "control fingerprints track progress" `Quick test_control_fingerprint_distinguishes;
  ]
