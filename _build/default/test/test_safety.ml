(* Integration tests: the headline safety result and its sensitivity.

   Each exhaustive case runs the checker to closure on a bounded instance
   (Config.max_cycles / max_mut_ops) and asserts the expected verdict:
   the paper's collector and the conjectured-safe variants pass the whole
   invariant catalogue; every ablation breaks a safety invariant on its
   minimal witness.  These are the same runs as experiment E10, sized for
   the test suite. *)

let explore ?safety_only ?(max_states = 5_000_000) sc =
  Core.Scenario.explore ~max_states ?safety_only sc

let check_holds name sc =
  let o = explore sc in
  Alcotest.(check bool) (name ^ ": closed") false o.Check.Explore.truncated;
  match o.Check.Explore.violation with
  | None -> ()
  | Some tr -> Alcotest.fail (name ^ ": unexpected violation of " ^ tr.Check.Trace.broken)

let check_breaks ?(invariant = "") name sc =
  let o = explore ~safety_only:(invariant = "") sc in
  match o.Check.Explore.violation with
  | None -> Alcotest.fail (name ^ ": expected a violation")
  | Some tr ->
    if invariant <> "" then
      Alcotest.(check string) (name ^ ": broken invariant") invariant tr.Check.Trace.broken

(* -- The paper's collector, exhaustively ------------------------------------ *)

let test_baseline_small () =
  check_holds "baseline (1 op)"
    (Core.Scenario.make ~label:"t" ~n_refs:2 ~shape:"single" ~max_mut_ops:1 ())

let test_baseline () = check_holds "baseline" Core.Scenario.baseline

let test_two_cycles () =
  check_holds "two cycles"
    (Core.Scenario.make ~label:"t" ~n_refs:2 ~shape:"single" ~max_cycles:2 ~max_mut_ops:1 ())

let test_two_mutators () = check_holds "two mutators" Core.Scenario.two_mutators

let test_chain () =
  check_holds "chain3"
    (Core.Scenario.make ~label:"t" ~shape:"chain3" ~max_mut_ops:2
       ~tweak:(fun c -> { c with Core.Config.mut_alloc = false; mut_discard = false })
       ())

let test_deep_buffers () =
  check_holds "buf=3"
    (Core.Scenario.make ~label:"t" ~n_refs:2 ~shape:"single" ~buf_bound:3 ~max_mut_ops:1 ())

let test_two_fields () =
  check_holds "2 fields"
    (Core.Scenario.make ~label:"t" ~n_refs:2 ~n_fields:2 ~shape:"single" ~max_mut_ops:1 ())

(* -- Ablations ---------------------------------------------------------------- *)

let witness name = Core.Scenario.witness_for (Option.get (Core.Variants.by_name name))

let test_no_deletion_barrier () = check_breaks "no-deletion-barrier" (witness "no-deletion-barrier")
let test_no_insertion_barrier () = check_breaks "no-insertion-barrier" (witness "no-insertion-barrier")
let test_no_barriers () = check_breaks "no-barriers" (witness "no-barriers")
let test_alloc_white () = check_breaks "alloc-white" (witness "alloc-white")

let test_no_cas_breaks_grey_exclusivity () =
  (* without the LOCK'd CAS, either the pending mark escapes the lock
     exemption of valid_W_inv (shortest) or two markers double-grey *)
  let o = explore (witness "no-cas") in
  match o.Check.Explore.violation with
  | None -> Alcotest.fail "no-cas: expected a violation"
  | Some tr ->
    Alcotest.(check bool)
      ("no-cas broke " ^ tr.Check.Trace.broken)
      true
      (List.mem tr.Check.Trace.broken [ "valid_W_inv"; "worklists_disjoint" ])

let test_no_cas_is_still_safe () =
  (* marking is idempotent: losing the CAS only breaks grey exclusivity *)
  let o = explore ~safety_only:true (witness "no-cas") in
  Alcotest.(check bool) "safety survives" true (o.Check.Explore.violation = None)

(* The fences ablation needs a deep, rare schedule; its BFS run lives in
   the slow tier. *)
let test_no_fences () = check_breaks "no-fences" (witness "no-fences")

(* -- Section 4 observations and the SC baseline ------------------------------- *)

let with_variant name sc = Core.Scenario.with_variant (Option.get (Core.Variants.by_name name)) sc

let small = Core.Scenario.make ~label:"small" ~n_refs:2 ~shape:"single" ~max_mut_ops:2 ()

let test_o1 () = check_holds "O1 skip init handshakes" (with_variant "o1-skip-init-handshakes" small)
let test_o2 () = check_holds "O2 conditional insertion barrier" (with_variant "o2-ins-barrier-off-after-roots" small)
let test_sc () = check_holds "SC memory" (with_variant "sc-memory" small)

let test_pso () =
  (* PSO genuinely relaxes (more states than TSO at the same bounds) and the
     collector's fence/CAS discipline still suffices *)
  let deep = Core.Scenario.make ~label:"psot" ~n_refs:2 ~shape:"single" ~buf_bound:3 ~max_mut_ops:2 () in
  let tso = explore deep in
  let pso = explore (with_variant "pso-memory" deep) in
  Alcotest.(check bool) "PSO adds behaviours" true
    (pso.Check.Explore.states > tso.Check.Explore.states);
  Alcotest.(check bool) "PSO closed" false pso.Check.Explore.truncated;
  Alcotest.(check bool) "PSO safe" true (pso.Check.Explore.violation = None)

(* -- Model coverage -------------------------------------------------------------- *)

let test_label_coverage () =
  (* every program location of the collector, the mutator and Sys must fire
     somewhere in the baseline exploration — unexercised labels indicate
     dead model code.  Definite taus execute inside normalization and never
     appear as events, so only communication/nondeterministic locations are
     expected. *)
  let sc = Core.Scenario.baseline in
  let model = Core.Scenario.model sc in
  let o =
    Check.Explore.run ~max_states:3_000_000 ~track_coverage:true
      ~invariants:(Core.Scenario.invariants sc) model.Core.Model.system
  in
  Alcotest.(check bool) "clean" true (o.Check.Explore.violation = None);
  let fired p = List.filter_map (fun (q, l) -> if p = q then Some l else None) o.Check.Explore.covered in
  let expected_labels com =
    (* communication points and non-definite local ops: the labels that can
       appear as events under normalization *)
    let rec go acc c =
      match c with
      | Cimp.Com.Request (l, _, _) | Cimp.Com.Response (l, _) -> l :: acc
      | Cimp.Com.Choose cs -> List.fold_left go acc cs
      | Cimp.Com.Seq (a, b) -> go (go acc a) b
      | Cimp.Com.If (_, _, a, b) -> go (go acc a) b
      | Cimp.Com.While (_, _, b) | Cimp.Com.Loop b -> go acc b
      | Cimp.Com.Skip _ | Cimp.Com.Local_op _ -> acc
    in
    go [] com
  in
  let cfg = sc.Core.Scenario.cfg in
  List.iteri
    (fun p com ->
      let missing =
        List.filter (fun l -> not (List.mem l (fired p))) (expected_labels com)
      in
      (* the gc's cycle budget means hs-work rounds may not always occur; no
         other location may be dead *)
      let tolerated l =
        String.length l >= 10 && String.sub l 0 10 = "gc:hs-work"
      in
      Alcotest.(check (list string))
        (Core.Config.proc_name cfg p ^ " has no dead locations")
        []
        (List.filter (fun l -> not (tolerated l)) missing))
    (Core.Model.programs cfg)

(* -- Validation of the definite-tau reduction ---------------------------------- *)

let test_normal_form_preserves_verdict () =
  (* the reduced and unreduced explorations must agree on the verdict,
     both for a holding instance and for an ablation *)
  let sc = Core.Scenario.make ~label:"nf" ~n_refs:2 ~shape:"single" ~max_mut_ops:1 () in
  let invs = Core.Scenario.invariants sc in
  let with_nf b =
    Check.Explore.run ~normal_form:b ~max_states:5_000_000 ~invariants:invs
      (Core.Scenario.model sc).Core.Model.system
  in
  let reduced = with_nf true and full = with_nf false in
  Alcotest.(check bool) "reduced holds" true (reduced.Check.Explore.violation = None);
  Alcotest.(check bool) "unreduced holds" true (full.Check.Explore.violation = None);
  Alcotest.(check bool) "unreduced closes too" false full.Check.Explore.truncated;
  Alcotest.(check bool) "reduction shrinks the space" true
    (reduced.Check.Explore.states < full.Check.Explore.states);
  let sc' = witness "alloc-white" in
  let invs' = Core.Scenario.invariants ~safety_only:true sc' in
  let with_nf' b =
    Check.Explore.run ~normal_form:b ~max_states:5_000_000 ~invariants:invs'
      (Core.Scenario.model sc').Core.Model.system
  in
  Alcotest.(check bool) "reduced finds the violation" true
    ((with_nf' true).Check.Explore.violation <> None);
  Alcotest.(check bool) "unreduced finds it too" true
    ((with_nf' false).Check.Explore.violation <> None)

(* -- Randomized regression ----------------------------------------------------- *)

let test_random_walks_unbounded () =
  (* the paper's unbounded collector, bigger heap, thousands of steps *)
  let sc =
    Core.Scenario.make ~label:"walk" ~n_refs:4 ~n_fields:2 ~shape:"chain3" ~max_cycles:0
      ~max_mut_ops:0 ~buf_bound:2 ~mut_mfence:true ()
  in
  List.iter
    (fun seed ->
      let o = Core.Scenario.random_walk ~seed ~steps:20_000 sc in
      match o.Check.Random_walk.violation with
      | None -> ()
      | Some tr -> Alcotest.fail ("walk violated " ^ tr.Check.Trace.broken))
    [ 1; 2; 3 ]

let test_walks_two_mutators () =
  let sc =
    Core.Scenario.make ~label:"walk2" ~n_muts:2 ~n_refs:3 ~shape:"shared" ~max_cycles:0
      ~max_mut_ops:0 ~buf_bound:2 ~mut_mfence:true ()
  in
  let o = Core.Scenario.random_walk ~seed:11 ~steps:20_000 sc in
  Alcotest.(check bool) "no violation" true (o.Check.Random_walk.violation = None)

let suite =
  [
    Alcotest.test_case "paper: tiny baseline closes clean" `Quick test_baseline_small;
    Alcotest.test_case "paper: baseline grid point" `Quick test_baseline;
    Alcotest.test_case "paper: two full cycles" `Quick test_two_cycles;
    Alcotest.test_case "paper: two racing mutators" `Quick test_two_mutators;
    Alcotest.test_case "paper: chain heap" `Quick test_chain;
    Alcotest.test_case "paper: deeper store buffers" `Quick test_deep_buffers;
    Alcotest.test_case "paper: two fields per object" `Quick test_two_fields;
    Alcotest.test_case "ablation: deletion barrier is load-bearing" `Quick test_no_deletion_barrier;
    Alcotest.test_case "ablation: insertion barrier is load-bearing" `Quick test_no_insertion_barrier;
    Alcotest.test_case "ablation: both barriers off" `Quick test_no_barriers;
    Alcotest.test_case "ablation: allocate-black is load-bearing" `Quick test_alloc_white;
    Alcotest.test_case "ablation: no CAS breaks grey exclusivity" `Quick test_no_cas_breaks_grey_exclusivity;
    Alcotest.test_case "ablation: no CAS keeps safety (idempotent marks)" `Quick test_no_cas_is_still_safe;
    Alcotest.test_case "ablation: handshake fences are load-bearing" `Slow test_no_fences;
    Alcotest.test_case "O1: fewer init handshakes, still safe" `Quick test_o1;
    Alcotest.test_case "O2: conditional insertion barrier, still safe" `Quick test_o2;
    Alcotest.test_case "SC baseline is safe" `Quick test_sc;
    Alcotest.test_case "PSO extension: relaxes yet stays safe" `Quick test_pso;
    Alcotest.test_case "exploration exercises every model location" `Quick test_label_coverage;
    Alcotest.test_case "definite-tau reduction preserves verdicts" `Quick test_normal_form_preserves_verdict;
    Alcotest.test_case "random walks on the unbounded model" `Quick test_random_walks_unbounded;
    Alcotest.test_case "random walks with two mutators" `Quick test_walks_two_mutators;
  ]
