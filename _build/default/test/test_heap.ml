(* Tests for the heap substrate: objects, the bounded heap, reachability
   (including white-chain reachability for grey protection), and the
   initial shapes. *)

module H = Gcheap.Heap
module O = Gcheap.Obj
module R = Gcheap.Reach
module S = Gcheap.Shapes

let mk ?(n_refs = 4) ?(n_fields = 2) () = H.make ~n_refs ~n_fields

let test_obj_fields () =
  let o = O.make ~mark:false ~n_fields:3 in
  Alcotest.(check int) "arity" 3 (O.n_fields o);
  Alcotest.(check (list int)) "children empty" [] (O.children o);
  let o = O.set_field o 1 (Some 7) in
  Alcotest.(check (option int)) "field set" (Some 7) (O.field o 1);
  Alcotest.(check (option int)) "others untouched" None (O.field o 0);
  Alcotest.(check (list int)) "children" [ 7 ] (O.children o);
  let o = O.set_field o 1 None in
  Alcotest.(check (option int)) "field cleared" None (O.field o 1)

let test_obj_mark () =
  let o = O.make ~mark:false ~n_fields:1 in
  Alcotest.(check bool) "initial" false o.O.mark;
  Alcotest.(check bool) "set" true (O.set_mark o true).O.mark

let test_heap_alloc_free () =
  let h = mk () in
  Alcotest.(check (list int)) "all free" [ 0; 1; 2; 3 ] (H.free_refs h);
  let h = H.alloc h 2 ~mark:true in
  Alcotest.(check bool) "valid" true (H.valid_ref h 2);
  Alcotest.(check bool) "others invalid" false (H.valid_ref h 1);
  Alcotest.(check (list int)) "domain" [ 2 ] (H.domain h);
  Alcotest.(check (option bool)) "mark installed" (Some true) (H.mark h 2);
  let h = H.free h 2 in
  Alcotest.(check bool) "freed" false (H.valid_ref h 2)

let test_heap_bounds () =
  let h = mk () in
  Alcotest.(check bool) "negative ref invalid" false (H.valid_ref h (-1));
  Alcotest.(check bool) "overflow ref invalid" false (H.valid_ref h 99);
  Alcotest.(check (option int)) "field of free cell" None (H.field h 0 0)

let test_heap_field_update () =
  let h = H.alloc (H.alloc (mk ()) 0 ~mark:false) 1 ~mark:false in
  let h = H.set_field h 0 1 (Some 1) in
  Alcotest.(check (option int)) "field" (Some 1) (H.field h 0 1);
  (* writing to a free cell is a no-op at this level *)
  let h' = H.set_field h 3 0 (Some 0) in
  Alcotest.(check (option int)) "free cell unchanged" None (H.field h' 3 0)

let test_marked_with () =
  let h = H.alloc (H.alloc (mk ()) 0 ~mark:true) 1 ~mark:false in
  Alcotest.(check (list int)) "marked true" [ 0 ] (H.marked_with h true);
  Alcotest.(check (list int)) "marked false" [ 1 ] (H.marked_with h false)

(* chain 0 -> 1 -> 2, object 3 detached *)
let chain_heap () =
  let h = List.fold_left (fun h r -> H.alloc h r ~mark:false) (mk ()) [ 0; 1; 2; 3 ] in
  let h = H.set_field h 0 0 (Some 1) in
  H.set_field h 1 0 (Some 2)

let test_reachable_chain () =
  let h = chain_heap () in
  Alcotest.(check (list int)) "from 0" [ 0; 1; 2 ] (R.reachable_set h [ 0 ]);
  Alcotest.(check (list int)) "from 1" [ 1; 2 ] (R.reachable_set h [ 1 ]);
  Alcotest.(check bool) "3 unreachable" false (R.reachable h [ 0 ] 3);
  Alcotest.(check bool) "reaches" true (R.reaches h ~src:0 ~dst:2)

let test_reachable_cycle () =
  let h = chain_heap () in
  let h = H.set_field h 2 0 (Some 0) in
  Alcotest.(check (list int)) "cycle closed" [ 0; 1; 2 ] (R.reachable_set h [ 2 ])

let test_reachable_includes_dangling_roots () =
  (* a root with no object is still "reachable" — that is precisely what
     valid_refs_inv forbids *)
  let h = mk () in
  Alcotest.(check (list int)) "dangling root present" [ 3 ] (R.reachable_set h [ 3 ])

let test_white_reachability () =
  (* grey G=0 -> white 1 -> white 2; black 3 -> 2 *)
  let h = chain_heap () in
  let h = H.set_mark h 0 true in
  let h = H.alloc (H.free h 3) 3 ~mark:true in
  let h = H.set_field h 3 0 (Some 2) in
  let white r = H.mark h r = Some false in
  let prot = R.white_reachable_set h ~white [ 0 ] in
  Alcotest.(check bool) "1 grey-protected" true (List.mem 1 prot);
  Alcotest.(check bool) "2 grey-protected through the chain" true (List.mem 2 prot);
  (* cut the chain at 1 -> 2: 2 is no longer protected *)
  let h' = H.set_field h 1 0 None in
  let prot' = R.white_reachable_set h' ~white [ 0 ] in
  Alcotest.(check bool) "2 unprotected after the cut" false (List.mem 2 prot')

let test_white_chain_stops_at_nonwhite () =
  (* grey 0 -> black 1 -> white 2: the chain through a non-white node does
     not protect 2 *)
  let h = chain_heap () in
  let h = H.set_mark h 1 true in
  let white r = H.mark h r = Some false in
  let prot = R.white_reachable_set h ~white [ 0 ] in
  Alcotest.(check bool) "1 visited (endpoint)" true (List.mem 1 prot);
  Alcotest.(check bool) "2 not white-reachable" false (List.mem 2 prot)

let test_source_reached_as_endpoint_first () =
  (* regression: grey 0 -> grey 1 -> white 2.  Node 1 is reached first as a
     non-white chain endpoint of 0; being a source itself, it must still
     expand and protect 2. *)
  let h = chain_heap () in
  let h = H.set_mark (H.set_mark h 0 true) 1 true in
  let white r = H.mark h r = Some false in
  let prot = R.white_reachable_set h ~white [ 0; 1 ] in
  Alcotest.(check bool) "2 protected by grey source 1" true (List.mem 2 prot)

let test_zero_length_chain () =
  (* a grey object is its own protection: the chain of length 0 *)
  let h = H.alloc (mk ()) 0 ~mark:false in
  let white r = H.mark h r = Some false in
  Alcotest.(check bool) "self-protection" true
    (List.mem 0 (R.white_reachable_set h ~white [ 0 ]))

let test_shapes () =
  let shapes = S.all ~n_refs:4 ~n_fields:1 in
  Alcotest.(check int) "six shapes" 6 (List.length shapes);
  let fig1 = Option.get (S.by_name ~n_refs:4 ~n_fields:1 "fig1") in
  let h = fig1.S.heap in
  Alcotest.(check (option int)) "B -> W" (Some 3) (H.field h 0 0);
  Alcotest.(check (option int)) "G -> o" (Some 2) (H.field h 1 0);
  Alcotest.(check (option int)) "o -> W" (Some 3) (H.field h 2 0);
  Alcotest.(check (list int)) "roots" [ 0; 1 ] (S.roots_for fig1 0)

let test_shape_roots_cycle () =
  let shared = Option.get (S.by_name ~n_refs:4 ~n_fields:1 "shared") in
  Alcotest.(check (list int)) "mut0" [ 0 ] (S.roots_for shared 0);
  Alcotest.(check (list int)) "mut1" [ 1 ] (S.roots_for shared 1);
  Alcotest.(check (list int)) "mut2 wraps" [ 0 ] (S.roots_for shared 2)

let test_chain_shape_bounds () =
  let c = S.chain ~n_refs:2 ~n_fields:1 5 in
  Alcotest.(check (list int)) "clamped to heap size" [ 0; 1 ] (H.domain c.S.heap)

(* qcheck: reachability is monotone in the root set, and closed. *)
let arbitrary_heap =
  QCheck.make
    ~print:(fun h -> Fmt.str "%a" H.pp h)
    QCheck.Gen.(
      let* edges = list_size (int_bound 12) (pair (int_bound 5) (int_bound 5)) in
      let h = List.fold_left (fun h r -> H.alloc h r ~mark:false) (H.make ~n_refs:6 ~n_fields:6) [ 0; 1; 2; 3; 4; 5 ] in
      return (List.fold_left (fun h (a, b) -> H.set_field h a b (Some b)) h edges))

let prop_reach_monotone =
  QCheck.Test.make ~name:"reachability is monotone in roots" ~count:200
    (QCheck.pair arbitrary_heap (QCheck.list_of_size (QCheck.Gen.int_bound 4) QCheck.(int_bound 5)))
    (fun (h, roots) ->
      let small = R.reachable_set h roots in
      let big = R.reachable_set h (0 :: roots) in
      List.for_all (fun r -> List.mem r big) small)

let prop_reach_closed =
  QCheck.Test.make ~name:"reachable set is transitively closed" ~count:200 arbitrary_heap
    (fun h ->
      let reach = R.reachable_set h [ 0 ] in
      List.for_all
        (fun r ->
          match H.get h r with
          | None -> true
          | Some o -> List.for_all (fun c -> List.mem c reach) (O.children o))
        reach)

let prop_white_reach_subset =
  QCheck.Test.make ~name:"white-reachable is a subset of reachable" ~count:200 arbitrary_heap
    (fun h ->
      let white _ = true in
      let wr = R.white_reachable_set h ~white [ 0 ] in
      let r = R.reachable_set h [ 0 ] in
      List.for_all (fun x -> List.mem x r) wr)

let suite =
  [
    Alcotest.test_case "object fields" `Quick test_obj_fields;
    Alcotest.test_case "object mark" `Quick test_obj_mark;
    Alcotest.test_case "alloc and free" `Quick test_heap_alloc_free;
    Alcotest.test_case "out-of-range references" `Quick test_heap_bounds;
    Alcotest.test_case "field updates" `Quick test_heap_field_update;
    Alcotest.test_case "marked_with partitions the domain" `Quick test_marked_with;
    Alcotest.test_case "reachability along a chain" `Quick test_reachable_chain;
    Alcotest.test_case "reachability through a cycle" `Quick test_reachable_cycle;
    Alcotest.test_case "dangling roots are reachable" `Quick test_reachable_includes_dangling_roots;
    Alcotest.test_case "grey protection via white chains" `Quick test_white_reachability;
    Alcotest.test_case "white chains stop at non-white nodes" `Quick test_white_chain_stops_at_nonwhite;
    Alcotest.test_case "sources reached as endpoints still expand" `Quick test_source_reached_as_endpoint_first;
    Alcotest.test_case "zero-length chains protect" `Quick test_zero_length_chain;
    Alcotest.test_case "shape catalogue" `Quick test_shapes;
    Alcotest.test_case "per-mutator shape roots" `Quick test_shape_roots_cycle;
    Alcotest.test_case "shape size clamping" `Quick test_chain_shape_bounds;
    QCheck_alcotest.to_alcotest prop_reach_monotone;
    QCheck_alcotest.to_alcotest prop_reach_closed;
    QCheck_alcotest.to_alcotest prop_white_reach_subset;
  ]
