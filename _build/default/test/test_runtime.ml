(* Tests for the concrete Domains-based runtime: heap primitives, the mark
   CAS, deterministic collection of garbage vs retention of rooted
   structure, and the stress harness (including the barrier ablation, which
   must fault). *)

module H = Runtime.Rheap
module Sh = Runtime.Rshared
module M = Runtime.Rmutator
module C = Runtime.Rcollector

let test_heap_basics () =
  let h = H.make ~n_slots:4 ~n_fields:2 in
  let r = H.alloc h ~mark:true in
  Alcotest.(check bool) "allocated" true (H.is_allocated h r);
  Alcotest.(check bool) "mark installed" true (H.mark h r);
  Alcotest.(check int) "fields null" H.null (H.field h r 0);
  H.set_field h r 1 r;
  Alcotest.(check int) "field set" r (H.field h r 1);
  let e = H.epoch h r in
  H.free h r;
  Alcotest.(check bool) "freed" false (H.is_allocated h r);
  Alcotest.(check int) "epoch bumped" (e + 1) (H.epoch h r);
  Alcotest.(check int) "live count" 0 (H.live_count h)

let test_heap_exhaustion () =
  let h = H.make ~n_slots:2 ~n_fields:1 in
  let a = H.alloc h ~mark:false and b = H.alloc h ~mark:false in
  Alcotest.(check bool) "two slots" true (a <> H.null && b <> H.null && a <> b);
  Alcotest.(check int) "third alloc fails" H.null (H.alloc h ~mark:false);
  H.free h a;
  Alcotest.(check bool) "slot recycled" true (H.alloc h ~mark:false <> H.null)

let test_mark_cas () =
  let sh = Sh.make ~n_slots:4 ~n_fields:1 ~n_muts:0 () in
  let r = H.alloc sh.Sh.heap ~mark:(not (Atomic.get sh.Sh.f_m)) in
  (* phase Idle: mark must not fire *)
  Alcotest.(check (list int)) "idle: no marking" [] (Sh.mark sh r []);
  Atomic.set sh.Sh.phase Sh.Mark;
  (match Sh.mark sh r [] with
  | [ r' ] -> Alcotest.(check int) "won and greyed" r r'
  | _ -> Alcotest.fail "expected to win the CAS");
  (* second attempt: fast path, already marked *)
  Alcotest.(check (list int)) "idempotent" [] (Sh.mark sh r []);
  Alcotest.(check bool) "fast path counted" true (Atomic.get sh.Sh.barrier_fast_path > 0)

let test_mark_null_and_freed () =
  let sh = Sh.make ~n_slots:2 ~n_fields:1 ~n_muts:0 () in
  Atomic.set sh.Sh.phase Sh.Mark;
  Alcotest.(check (list int)) "null ignored" [] (Sh.mark sh H.null []);
  let r = H.alloc sh.Sh.heap ~mark:false in
  H.free sh.Sh.heap r;
  Alcotest.(check (list int)) "freed ignored" [] (Sh.mark sh r [])

(* One deterministic collection: a rooted chain survives, detached garbage
   goes, floating garbage goes one cycle later. *)
let test_cycle_retains_and_collects () =
  let sh = Sh.make ~n_slots:8 ~n_fields:1 ~n_muts:1 () in
  let h = sh.Sh.heap in
  let sense () = Atomic.get sh.Sh.f_a in
  (* rooted chain a -> b; detached d *)
  let a = H.alloc h ~mark:(sense ()) in
  let b = H.alloc h ~mark:(sense ()) in
  let d = H.alloc h ~mark:(sense ()) in
  H.set_field h a 0 b;
  let m = M.make sh 0 ~roots:[ a ] in
  let done_ = Atomic.make false in
  let gc =
    Domain.spawn (fun () ->
        C.cycle sh;
        C.cycle sh;
        Atomic.set done_ true)
  in
  while not (Atomic.get done_) do
    M.poll m;
    Domain.cpu_relax ()
  done;
  Domain.join gc;
  Alcotest.(check bool) "root survives" true (H.is_allocated h a);
  Alcotest.(check bool) "chain survives" true (H.is_allocated h b);
  Alcotest.(check bool) "garbage collected" false (H.is_allocated h d);
  Alcotest.(check int) "cycles" 2 (Atomic.get sh.Sh.cycles);
  M.validate_roots m

let test_floating_garbage_two_cycles () =
  let sh = Sh.make ~n_slots:8 ~n_fields:1 ~n_muts:1 () in
  let h = sh.Sh.heap in
  let a = H.alloc h ~mark:(Atomic.get sh.Sh.f_a) in
  let b = H.alloc h ~mark:(Atomic.get sh.Sh.f_a) in
  H.set_field h a 0 b;
  let m = M.make sh 0 ~roots:[ a ] in
  let phase = Atomic.make 0 in
  let gc =
    Domain.spawn (fun () ->
        C.cycle sh;
        Atomic.set phase 1;
        while Atomic.get phase = 1 do Domain.cpu_relax () done;
        C.cycle sh;
        C.cycle sh;
        Atomic.set phase 3)
  in
  while Atomic.get phase = 0 do M.poll m; Domain.cpu_relax () done;
  (* drop the edge to b between cycles (collector idle: no barrier fires) *)
  M.store m a 0 H.null;
  Atomic.set phase 2;
  while Atomic.get phase <> 3 do M.poll m; Domain.cpu_relax () done;
  Domain.join gc;
  Alcotest.(check bool) "a survives" true (H.is_allocated h a);
  Alcotest.(check bool) "b collected within two cycles" false (H.is_allocated h b)

let test_stress_uniform_safe () =
  let s = Runtime.Harness.run ~n_muts:2 ~n_slots:64 ~duration:0.3 () in
  Alcotest.(check (option string)) "safe" None s.Runtime.Harness.violation;
  Alcotest.(check bool) "made progress" true (s.Runtime.Harness.cycles > 0)

let test_stress_lists_safe () =
  let s =
    Runtime.Harness.run ~n_muts:2 ~n_slots:128 ~duration:1.0 ~workload:Runtime.Rmutator.Lists
      ~trace_pause:0.0002 ()
  in
  Alcotest.(check (option string)) "safe under the adversarial workload" None
    s.Runtime.Harness.violation

let test_stress_no_barriers_faults () =
  (* the Fig. 1 attack against a barrier-less collector must fault; the
     schedule is OS-dependent, so allow a few attempts *)
  let rec attempt k =
    let s =
      Runtime.Harness.run ~n_muts:2 ~n_slots:128 ~duration:4.0 ~barriers:false
        ~workload:Runtime.Rmutator.Lists ~trace_pause:0.0002 ~seed:(42 + k) ()
    in
    match s.Runtime.Harness.violation with
    | Some _ -> ()
    | None -> if k < 3 then attempt (k + 1) else Alcotest.fail "barrier-less run stayed safe"
  in
  attempt 0

let suite =
  [
    Alcotest.test_case "heap primitives" `Quick test_heap_basics;
    Alcotest.test_case "heap exhaustion and recycling" `Quick test_heap_exhaustion;
    Alcotest.test_case "mark CAS and fast path" `Quick test_mark_cas;
    Alcotest.test_case "mark ignores null and freed" `Quick test_mark_null_and_freed;
    Alcotest.test_case "a cycle retains roots, collects garbage" `Quick test_cycle_retains_and_collects;
    Alcotest.test_case "floating garbage goes within two cycles" `Quick test_floating_garbage_two_cycles;
    Alcotest.test_case "stress: uniform workload is safe" `Quick test_stress_uniform_safe;
    Alcotest.test_case "stress: adversarial lists are safe" `Quick test_stress_lists_safe;
    Alcotest.test_case "stress: no barriers faults" `Slow test_stress_no_barriers_faults;
  ]
