(* Unit tests for the collector model's building blocks: the Sys process's
   responses (TSO reads/writes, fences, the lock, allocation, work-lists,
   handshake ghosts), the colour interpretation, and model assembly across
   every variant. *)

open Core.Types
module St = Core.State
module Cfg = Core.Config

let cfg = { Cfg.default with n_muts = 2; n_refs = 3; n_fields = 1 }

let shape = Gcheap.Shapes.single ~n_refs:3 ~n_fields:1

let sd0 () = Core.Model.initial_sys_data cfg shape

let sys_of sd = St.L_sys sd

(* Run one response and project the new sys data and value. *)
let respond sd req ~from =
  match Core.Sysproc.respond cfg (from, req) (sys_of sd) with
  | [ (St.L_sys sd', v) ] -> (sd', v)
  | [] -> Alcotest.fail "request unexpectedly blocked"
  | _ -> Alcotest.fail "expected a single deterministic response"

let blocked sd req ~from = Core.Sysproc.respond cfg (from, req) (sys_of sd) = []

let gc = Cfg.pid_gc
let mut0 = Cfg.pid_mut cfg 0
let mut1 = Cfg.pid_mut cfg 1

(* -- TSO reads and writes -------------------------------------------------- *)

let test_write_buffers_then_commits () =
  let sd, _ = respond (sd0 ()) (Req_write (W_mark (0, true))) ~from:mut0 in
  Alcotest.(check int) "buffered" 1 (List.length (St.buf_of sd mut0));
  Alcotest.(check (option bool)) "memory stale" (Some false) (Gcheap.Heap.mark sd.St.s_mem.St.heap 0);
  match Core.Sysproc.dequeue cfg (sys_of sd) with
  | [ St.L_sys sd' ] ->
    Alcotest.(check (option bool)) "committed" (Some true) (Gcheap.Heap.mark sd'.St.s_mem.St.heap 0);
    Alcotest.(check int) "drained" 0 (List.length (St.buf_of sd' mut0))
  | _ -> Alcotest.fail "one dequeue expected"

let test_read_forwards_own_buffer () =
  let sd, _ = respond (sd0 ()) (Req_write (W_mark (0, true))) ~from:mut0 in
  let _, v = respond sd (Req_read (L_mark 0)) ~from:mut0 in
  Alcotest.(check bool) "own buffered value" true (v = V_bool true);
  let _, v' = respond sd (Req_read (L_mark 0)) ~from:mut1 in
  Alcotest.(check bool) "other thread reads memory" true (v' = V_bool false)

let test_buffer_bound_blocks () =
  let sd, _ = respond (sd0 ()) (Req_write (W_mark (0, true))) ~from:mut0 in
  (* default bound in this cfg is 2 *)
  let sd, _ = respond sd (Req_write (W_mark (1, true))) ~from:mut0 in
  Alcotest.(check bool) "third write blocks" true
    (blocked sd (Req_write (W_mark (2, true))) ~from:mut0)

let test_mfence_requires_empty_buffer () =
  let sd = sd0 () in
  let sd', _ = respond sd (Req_write (W_fA true)) ~from:gc in
  Alcotest.(check bool) "fence blocked" true (blocked sd' Req_mfence ~from:gc);
  Alcotest.(check bool) "fence passes when empty" false (blocked sd Req_mfence ~from:gc)

let test_lock_protocol () =
  let sd, _ = respond (sd0 ()) Req_lock ~from:mut0 in
  Alcotest.(check (option int)) "held" (Some mut0) sd.St.s_lock;
  Alcotest.(check bool) "relock blocked" true (blocked sd Req_lock ~from:mut1);
  Alcotest.(check bool) "reads of others blocked" true (blocked sd (Req_read L_fA) ~from:mut1);
  Alcotest.(check bool) "holder reads fine" false (blocked sd (Req_read L_fA) ~from:mut0);
  (* unlock with pending write is blocked; drain first *)
  let sd, _ = respond sd (Req_write (W_mark (0, true))) ~from:mut0 in
  Alcotest.(check bool) "unlock needs empty buffer" true (blocked sd Req_unlock ~from:mut0);
  let sd = match Core.Sysproc.dequeue cfg (sys_of sd) with [ St.L_sys s ] -> s | _ -> Alcotest.fail "?" in
  let sd, _ = respond sd Req_unlock ~from:mut0 in
  Alcotest.(check (option int)) "released" None sd.St.s_lock

let test_lock_blocks_other_commits () =
  let sd, _ = respond (sd0 ()) (Req_write (W_mark (0, true))) ~from:mut1 in
  let sd, _ = respond sd Req_lock ~from:mut0 in
  Alcotest.(check int) "mut1's commit blocked while mut0 holds the lock" 0
    (List.length (Core.Sysproc.dequeue cfg (sys_of sd)))

let test_sc_memory_commits_at_once () =
  let cfg_sc = { cfg with Cfg.sc_memory = true } in
  match Core.Sysproc.respond cfg_sc (mut0, Req_write (W_mark (0, true))) (sys_of (sd0 ())) with
  | [ (St.L_sys sd', V_unit) ] ->
    Alcotest.(check (option bool)) "visible" (Some true) (Gcheap.Heap.mark sd'.St.s_mem.St.heap 0);
    Alcotest.(check int) "no buffering" 0 (List.length (St.buf_of sd' mut0))
  | _ -> Alcotest.fail "single response expected"

let test_dangling_access_flagged () =
  let sd, v = respond (sd0 ()) (Req_read (L_mark 2)) ~from:mut0 in
  Alcotest.(check bool) "default value" true (v = V_bool false);
  Alcotest.(check bool) "dangling recorded" true sd.St.s_dangling

(* -- Allocation and free ---------------------------------------------------- *)

let test_alloc_nondet_over_free_refs () =
  let sd = sd0 () in
  let succs = Core.Sysproc.respond cfg (mut0, Req_alloc true) (sys_of sd) in
  (* refs 1 and 2 are free in the "single" shape *)
  Alcotest.(check int) "one successor per free ref" 2 (List.length succs);
  List.iter
    (fun (s, v) ->
      match (s, v) with
      | St.L_sys sd', V_ref (Some r) ->
        Alcotest.(check bool) "installed" true (Gcheap.Heap.valid_ref sd'.St.s_mem.St.heap r);
        Alcotest.(check (option bool)) "mark" (Some true) (Gcheap.Heap.mark sd'.St.s_mem.St.heap r)
      | _ -> Alcotest.fail "alloc shape")
    succs

let test_alloc_full_heap_returns_null () =
  let sd = sd0 () in
  let sd = { sd with St.s_mem = { sd.St.s_mem with St.heap = (Gcheap.Shapes.chain ~n_refs:3 ~n_fields:1 3).Gcheap.Shapes.heap } } in
  let _, v = respond sd (Req_alloc false) ~from:mut0 in
  Alcotest.(check bool) "NULL on exhaustion" true (v = V_ref None)

let test_free_removes () =
  let sd, _ = respond (sd0 ()) (Req_free 0) ~from:gc in
  Alcotest.(check bool) "gone" false (Gcheap.Heap.valid_ref sd.St.s_mem.St.heap 0)

(* -- Work-lists and ghost honorary grey ------------------------------------- *)

let test_wl_add_dedup_and_ghg_clear () =
  let sd = St.set_ghg (sd0 ()) mut0 (Some 0) in
  let sd, _ = respond sd (Req_wl_add 0) ~from:mut0 in
  let sd, _ = respond sd (Req_wl_add 0) ~from:mut0 in
  Alcotest.(check (list int)) "deduplicated" [ 0 ] (St.wl_of sd mut0);
  Alcotest.(check (option int)) "ghg retired" None (St.ghg_of sd mut0)

let test_wl_transfer_is_atomic_union () =
  let sd = St.set_wl (St.set_wl (sd0 ()) mut0 [ 1; 2 ]) gc [ 0 ] in
  let sd, _ = respond sd Req_wl_transfer ~from:mut0 in
  Alcotest.(check (list int)) "collector union" [ 0; 1; 2 ] (St.wl_of sd gc);
  Alcotest.(check (list int)) "mutator emptied" [] (St.wl_of sd mut0)

let test_wl_pick_nondet_no_removal () =
  let sd = St.set_wl (sd0 ()) gc [ 1; 2 ] in
  let succs = Core.Sysproc.respond cfg (gc, Req_wl_pick) (sys_of sd) in
  Alcotest.(check int) "one pick per grey" 2 (List.length succs);
  List.iter
    (fun (s, _) ->
      match s with
      | St.L_sys sd' -> Alcotest.(check (list int)) "no removal" [ 1; 2 ] (St.wl_of sd' gc)
      | _ -> Alcotest.fail "sys state expected")
    succs;
  let _, v = respond (St.set_wl (sd0 ()) gc []) Req_wl_pick ~from:gc in
  Alcotest.(check bool) "empty pick is None" true (v = V_ref None)

let test_wl_remove_blackens () =
  let sd = St.set_wl (sd0 ()) gc [ 1; 2 ] in
  let sd, _ = respond sd (Req_wl_remove 1) ~from:gc in
  Alcotest.(check (list int)) "removed" [ 2 ] (St.wl_of sd gc)

let test_write_ghg_atomic () =
  let sd, _ = respond (sd0 ()) (Req_write_ghg (W_mark (0, true), 0)) ~from:mut0 in
  Alcotest.(check (option int)) "ghg set with the store" (Some 0) (St.ghg_of sd mut0);
  Alcotest.(check int) "store buffered" 1 (List.length (St.buf_of sd mut0))

(* -- Handshake ghost structure ---------------------------------------------- *)

let test_handshake_ghosts () =
  let sd = sd0 () in
  Alcotest.(check bool) "initially done" true (St.hs_done sd 0 && St.hs_done sd 1);
  let sd, _ = respond sd (Req_hs_begin Hs_nop1) ~from:gc in
  Alcotest.(check bool) "begin clears done" false (St.hs_done sd 0 || St.hs_done sd 1);
  let sd, _ = respond sd (Req_hs_set 0) ~from:gc in
  Alcotest.(check bool) "bit up" true (St.hs_bit sd 0);
  let _, v = respond sd Req_hs_poll ~from:gc in
  Alcotest.(check bool) "poll sees pending" true (v = V_bool true);
  let _, v = respond sd Req_hs_read ~from:mut0 in
  Alcotest.(check bool) "mutator reads type+bit" true (v = V_hs (Hs_nop1, true));
  let sd, _ = respond sd Req_hs_done ~from:mut0 in
  Alcotest.(check bool) "bit down" false (St.hs_bit sd 0);
  Alcotest.(check bool) "done recorded" true (St.hs_done sd 0);
  Alcotest.(check bool) "mut0 now in hp_Idle" true (St.mut_hp sd 0 = Hp_idle);
  Alcotest.(check bool) "mut1 still pre-round" true (St.mut_hp sd 1 = Hp_idle_mark_sweep);
  let sd, _ = respond sd (Req_hs_set 1) ~from:gc in
  let sd, _ = respond sd Req_hs_done ~from:mut1 in
  let _, v = respond sd Req_hs_poll ~from:gc in
  Alcotest.(check bool) "poll clear after both" true (v = V_bool false)

let test_mut_black_transitions () =
  let sd = sd0 () in
  Alcotest.(check bool) "initially black (pre-cycle)" true (St.mut_black sd 0);
  let sd, _ = respond sd (Req_hs_begin Hs_nop1) ~from:gc in
  let sd, _ = respond sd (Req_hs_set 0) ~from:gc in
  let sd, _ = respond sd Req_hs_done ~from:mut0 in
  Alcotest.(check bool) "white after idle sync" false (St.mut_black sd 0);
  let sd, _ = respond sd (Req_hs_begin Hs_get_roots) ~from:gc in
  let sd, _ = respond sd (Req_hs_set 0) ~from:gc in
  Alcotest.(check bool) "still white mid-round" false (St.mut_black sd 0);
  let sd, _ = respond sd Req_hs_done ~from:mut0 in
  Alcotest.(check bool) "black after roots sampled" true (St.mut_black sd 0)

(* -- Colours ----------------------------------------------------------------- *)

let test_colour_interpretation () =
  let sd = sd0 () in
  (* object 0 exists with mark=false, fM=false: marked, not grey => black *)
  Alcotest.(check bool) "black" true (Core.Color.is_black cfg sd 0);
  let sd = St.set_wl sd mut0 [ 0 ] in
  Alcotest.(check bool) "greyed by the work-list" true (Core.Color.is_grey cfg sd 0);
  Alcotest.(check bool) "no longer black" false (Core.Color.is_black cfg sd 0);
  (* flip the sense: 0 becomes white while still grey — the CAS window *)
  let sd = { sd with St.s_mem = { sd.St.s_mem with St.fM = true } } in
  Alcotest.(check bool) "white" true (Core.Color.is_white sd 0);
  Alcotest.(check bool) "white and grey overlap" true (Core.Color.is_grey cfg sd 0)

let test_ghg_counts_as_grey () =
  let sd = St.set_ghg (sd0 ()) mut1 (Some 0) in
  Alcotest.(check bool) "honorary grey" true (Core.Color.is_grey cfg sd 0);
  Alcotest.(check (list int)) "in the grey set" [ 0 ] (Core.Color.greys cfg sd)

let test_grey_protection_in_colours () =
  (* heap: grey 0 -> white 1; white 2 unprotected *)
  let heap = (Gcheap.Shapes.chain ~n_refs:3 ~n_fields:1 2).Gcheap.Shapes.heap in
  let heap = Gcheap.Heap.alloc heap 2 ~mark:false in
  let heap = Gcheap.Heap.set_mark heap 0 true in
  let sd = sd0 () in
  let sd = { sd with St.s_mem = { sd.St.s_mem with St.heap; St.fM = true } } in
  let sd = St.set_wl sd gc [ 0 ] in
  Alcotest.(check bool) "1 protected" true (Core.Color.is_grey_protected cfg sd 1);
  Alcotest.(check bool) "2 not protected" false (Core.Color.is_grey_protected cfg sd 2)

(* -- Buffered insertions/deletions ------------------------------------------ *)

let test_buffered_deletions_with_overrides () =
  (* heap: 0.f0 = 1 committed.  Buffer: write 0.f0 := 2 then 0.f0 := NULL.
     Deletions: 1 (overwritten by the first write) and 2 (overwritten by
     the second, after the first's effect). *)
  let heap = (Gcheap.Shapes.single ~n_refs:3 ~n_fields:1).Gcheap.Shapes.heap in
  let heap = Gcheap.Heap.alloc (Gcheap.Heap.alloc heap 1 ~mark:false) 2 ~mark:false in
  let heap = Gcheap.Heap.set_field heap 0 0 (Some 1) in
  let sd = sd0 () in
  let sd = { sd with St.s_mem = { sd.St.s_mem with St.heap } } in
  let sd = St.set_buf sd mut0 [ W_field (0, 0, Some 2); W_field (0, 0, None) ] in
  Alcotest.(check (list int)) "both deletions seen" [ 1; 2 ]
    (Core.Invariants.buffered_deletions sd mut0);
  Alcotest.(check (list int)) "insertion seen" [ 2 ] (Core.Invariants.buffered_insertions sd mut0)

(* -- Model assembly ----------------------------------------------------------- *)

let test_model_builds_for_all_variants () =
  List.iter
    (fun (v : Core.Variants.t) ->
      let c = v.Core.Variants.tweak { cfg with Cfg.n_muts = 2 } in
      let m = Core.Model.make c shape in
      Alcotest.(check int)
        (v.Core.Variants.name ^ " process count")
        4
        (Cimp.System.n_procs m.Core.Model.system))
    Core.Variants.all

let test_initial_invariants_hold_on_all_shapes () =
  List.iter
    (fun (s : Gcheap.Shapes.t) ->
      let c = { cfg with Cfg.n_refs = 4 } in
      let m = Core.Model.make c s in
      List.iter
        (fun (i : Core.Invariants.t) ->
          Alcotest.(check bool)
            (s.Gcheap.Shapes.name ^ " / " ^ i.Core.Invariants.name)
            true
            (i.Core.Invariants.check m.Core.Model.system))
        (Core.Invariants.all c))
    (Gcheap.Shapes.all ~n_refs:4 ~n_fields:1)

let test_dangling_root_caught () =
  (* a shape whose mutator roots point at nothing must violate safety *)
  let s = Gcheap.Shapes.empty ~n_refs:3 ~n_fields:1 in
  let s = { s with Gcheap.Shapes.roots = [ [ 1 ] ] } in
  let m = Core.Model.make { cfg with Cfg.n_muts = 1 } s in
  let v = Core.Invariants.valid_refs_inv { cfg with Cfg.n_muts = 1 } in
  Alcotest.(check bool) "violation detected" false (v.Core.Invariants.check m.Core.Model.system)

let test_hp_mapping () =
  Alcotest.(check bool) "nop1 -> Idle" true (hp_of_hs Hs_nop1 = Hp_idle);
  Alcotest.(check bool) "nop2 -> IdleInit" true (hp_of_hs Hs_nop2 = Hp_idle_init);
  Alcotest.(check bool) "nop3 -> InitMark" true (hp_of_hs Hs_nop3 = Hp_init_mark);
  Alcotest.(check bool) "roots -> IdleMarkSweep" true (hp_of_hs Hs_get_roots = Hp_idle_mark_sweep);
  (* pred walks the cycle of Fig. 3 backwards *)
  Alcotest.(check bool) "pred nop1 = get-work (cycle wrap)" true (hs_pred Hs_nop1 = Hs_get_work);
  Alcotest.(check bool) "pred nop2 = nop1" true (hs_pred Hs_nop2 = Hs_nop1);
  Alcotest.(check bool) "pred nop3 = nop2" true (hs_pred Hs_nop3 = Hs_nop2);
  Alcotest.(check bool) "pred nop4 = nop3" true (hs_pred Hs_nop4 = Hs_nop3);
  Alcotest.(check bool) "pred roots = nop4" true (hs_pred Hs_get_roots = Hs_nop4)

let suite =
  [
    Alcotest.test_case "writes buffer then commit" `Quick test_write_buffers_then_commits;
    Alcotest.test_case "reads forward from the own buffer" `Quick test_read_forwards_own_buffer;
    Alcotest.test_case "bounded buffers block" `Quick test_buffer_bound_blocks;
    Alcotest.test_case "mfence waits for the buffer" `Quick test_mfence_requires_empty_buffer;
    Alcotest.test_case "lock protocol (Fig. 9)" `Quick test_lock_protocol;
    Alcotest.test_case "lock blocks other commits" `Quick test_lock_blocks_other_commits;
    Alcotest.test_case "SC ablation commits at once" `Quick test_sc_memory_commits_at_once;
    Alcotest.test_case "dangling access is flagged" `Quick test_dangling_access_flagged;
    Alcotest.test_case "allocation is nondeterministic over free refs" `Quick test_alloc_nondet_over_free_refs;
    Alcotest.test_case "allocation returns NULL when full" `Quick test_alloc_full_heap_returns_null;
    Alcotest.test_case "free removes from the domain" `Quick test_free_removes;
    Alcotest.test_case "wl-add dedups and retires the ghg" `Quick test_wl_add_dedup_and_ghg_clear;
    Alcotest.test_case "wl-transfer is an atomic union" `Quick test_wl_transfer_is_atomic_union;
    Alcotest.test_case "wl-pick is nondeterministic, no removal" `Quick test_wl_pick_nondet_no_removal;
    Alcotest.test_case "wl-remove blackens" `Quick test_wl_remove_blackens;
    Alcotest.test_case "the marking store sets ghg atomically" `Quick test_write_ghg_atomic;
    Alcotest.test_case "handshake bits and ghosts" `Quick test_handshake_ghosts;
    Alcotest.test_case "mutators blacken at get-roots" `Quick test_mut_black_transitions;
    Alcotest.test_case "colour interpretation incl. overlap" `Quick test_colour_interpretation;
    Alcotest.test_case "honorary greys are grey" `Quick test_ghg_counts_as_grey;
    Alcotest.test_case "grey protection" `Quick test_grey_protection_in_colours;
    Alcotest.test_case "buffered deletions respect FIFO overrides" `Quick test_buffered_deletions_with_overrides;
    Alcotest.test_case "every variant assembles" `Quick test_model_builds_for_all_variants;
    Alcotest.test_case "initial states satisfy the catalogue" `Quick test_initial_invariants_hold_on_all_shapes;
    Alcotest.test_case "dangling roots violate valid_refs_inv" `Quick test_dangling_root_caught;
    Alcotest.test_case "handshake-phase mapping" `Quick test_hp_mapping;
  ]
