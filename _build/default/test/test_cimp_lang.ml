(* Tests for the CIMP concrete-language front-end: lexer, parser (with a
   pretty-print round-trip property), typechecker, and compilation onto the
   core semantics. *)

module T = Cimp_lang.Token
module Lx = Cimp_lang.Lexer
module P = Cimp_lang.Parser
module A = Cimp_lang.Ast
module Tc = Cimp_lang.Typecheck
module C = Cimp_lang.Compile

(* -- Lexer ------------------------------------------------------------------ *)

let tokens src = List.map (fun (t : Lx.located) -> t.Lx.token) (Lx.tokenize src)

let test_lex_basics () =
  Alcotest.(check int) "count" 8 (List.length (tokens "var x := 1 + 2;"));
  match tokens "x := y;" with
  | [ T.IDENT "x"; T.ASSIGN; T.IDENT "y"; T.SEMI; T.EOF ] -> ()
  | _ -> Alcotest.fail "unexpected token stream"

let test_lex_keywords_vs_idents () =
  (match tokens "while whiles" with
  | [ T.KW_while; T.IDENT "whiles"; T.EOF ] -> ()
  | _ -> Alcotest.fail "keyword prefix must not swallow identifiers");
  match tokens "truethy" with
  | [ T.IDENT "truethy"; T.EOF ] -> ()
  | _ -> Alcotest.fail "true prefix"

let test_lex_comments () =
  Alcotest.(check int) "hash comment" 1 (List.length (tokens "# a comment\n"));
  Alcotest.(check int) "slash comment" 2 (List.length (tokens "x // trailing\n"))

let test_lex_two_char_ops () =
  match tokens ":= -> .. == != <= >= && ||" with
  | [ T.ASSIGN; T.ARROW; T.DOTDOT; T.EQ; T.NEQ; T.LE; T.GE; T.ANDAND; T.OROR; T.EOF ] -> ()
  | _ -> Alcotest.fail "two-char operators"

let test_lex_positions () =
  match Lx.tokenize "x\n  y" with
  | [ _; { Lx.pos = { line = 2; col = 3 }; _ }; _ ] -> ()
  | _ -> Alcotest.fail "line/col tracking"

let test_lex_error () =
  Alcotest.check_raises "bad char"
    (Lx.Error ("unexpected character '?'", { Lx.line = 1; col = 1 }))
    (fun () -> ignore (Lx.tokenize "?"))

(* -- Parser ----------------------------------------------------------------- *)

let expr src = P.expression src

let test_precedence () =
  (match expr "1 + 2 * 3" with
  | A.E_binop (A.Add, A.E_int 1, A.E_binop (A.Mul, A.E_int 2, A.E_int 3)) -> ()
  | e -> Alcotest.fail (Fmt.str "precedence: %a" A.pp_expr e));
  match expr "a + 1 < b && c || d" with
  | A.E_binop (A.Or, A.E_binop (A.And, A.E_binop (A.Lt, _, _), A.E_var "c"), A.E_var "d") -> ()
  | e -> Alcotest.fail (Fmt.str "mixed: %a" A.pp_expr e)

let test_parens_and_unary () =
  (match expr "!(a == b)" with
  | A.E_not (A.E_binop (A.Eq, A.E_var "a", A.E_var "b")) -> ()
  | _ -> Alcotest.fail "not/parens");
  match expr "-x + 1" with
  | A.E_binop (A.Add, A.E_binop (A.Sub, A.E_int 0, A.E_var "x"), A.E_int 1) -> ()
  | _ -> Alcotest.fail "unary minus"

let test_parse_process () =
  let prog = P.program "process p { var x := 0; if x == 0 { x := 1; } else { skip; } }" in
  match prog with
  | [ { A.name = "p"; body = [ A.S_var ("x", _); A.S_if (_, [ A.S_assign ("x", _) ], [ A.S_skip ]) ] } ] ->
    ()
  | _ -> Alcotest.fail "process structure"

let test_parse_choose () =
  match P.program "process p { choose { skip; } or { skip; } or { skip; } }" with
  | [ { A.body = [ A.S_choose [ _; _; _ ] ]; _ } ] -> ()
  | _ -> Alcotest.fail "choose arms"

let test_parse_send_recv () =
  match P.program "process p { send c(1) -> r; recv d(x) reply x + 1; send e(2); }" with
  | [ { A.body = [ A.S_send ("c", _, Some "r"); A.S_recv ("d", "x", _); A.S_send ("e", _, None) ]; _ } ]
    -> ()
  | _ -> Alcotest.fail "communication forms"

let test_parse_error_position () =
  (try
     ignore (P.program "process p { var := 3; }");
     Alcotest.fail "expected parse error"
   with P.Error (_, pos) -> Alcotest.(check int) "error line" 1 pos.Lx.line)

(* Pretty-print then reparse: the ASTs must agree. *)
let roundtrip src =
  let prog = P.program src in
  let printed = Fmt.str "%a" A.pp_program prog in
  let reparsed =
    try P.program printed
    with P.Error (m, p) ->
      Alcotest.fail (Fmt.str "reparse failed at %d:%d (%s) on:@.%s" p.Lx.line p.Lx.col m printed)
  in
  Alcotest.(check bool) "round-trip preserves the AST" true (prog = reparsed)

let test_roundtrip_examples () =
  List.iter (fun (_, src, _) -> roundtrip src) Cimp_lang.Examples.all

(* -- Typechecker ------------------------------------------------------------ *)

let typecheck src = Tc.program (P.program src)

let test_typecheck_ok () =
  let chans = typecheck "process p { var x := 1; send c(x) -> x; } process q { recv c(y) reply y; }" in
  Alcotest.(check int) "one channel" 1 (List.length chans)

let expect_type_error src =
  try
    ignore (typecheck src);
    Alcotest.fail "expected a type error"
  with Tc.Error _ -> ()

let test_typecheck_undeclared () = expect_type_error "process p { x := 1; }"
let test_typecheck_mismatch () = expect_type_error "process p { var x := 1; x := true; }"
let test_typecheck_guard () = expect_type_error "process p { if 1 { skip; } }"
let test_typecheck_redeclare () = expect_type_error "process p { var x := 1; var x := 2; }"

let test_typecheck_channel_consistency () =
  expect_type_error
    "process p { send c(1); } process q { var b := true; send c(b); }"

let test_typecheck_havoc_bool () = expect_type_error "process p { var b := true; havoc b in 0 .. 1; }"

(* -- Compilation and execution ---------------------------------------------- *)

let explore ?(max_states = 100_000) src =
  Check.Explore.run ~max_states
    ~invariants:[ ("assertions", C.assertions_hold) ]
    (C.of_source src)

let test_compile_labels_unique () =
  List.iter
    (fun (name, src, _) ->
      let prog = P.program src in
      List.iter
        (fun p ->
          Alcotest.(check (list string))
            (name ^ ": unique labels in " ^ p.A.name)
            []
            (Cimp.Com.duplicate_labels (C.compile_process p)))
        prog)
    Cimp_lang.Examples.all

let test_run_examples () =
  List.iter
    (fun (name, src, _) ->
      let o = explore src in
      let expect_violation = name = "assert-fail" in
      Alcotest.(check bool)
        (name ^ " verdict")
        expect_violation
        (o.Check.Explore.violation <> None))
    Cimp_lang.Examples.all

let test_counter_race_outcomes () =
  let _, src, _ = Cimp_lang.Examples.counter_race in
  let sys = C.of_source src in
  let finals = ref [] in
  let record s =
    (if Cimp.System.steps s = [] then
       match List.assoc_opt "v" (Cimp.System.proc s 2).Cimp.Com.data with
       | Some (A.V_int v) when not (List.mem v !finals) -> finals := v :: !finals
       | _ -> ());
    true
  in
  ignore (Check.Explore.run ~max_states:100_000 ~invariants:[ ("rec", record) ] sys);
  Alcotest.(check (list int)) "lost update observable" [ 1; 2 ] (List.sort compare !finals)

let test_havoc_range () =
  let o = explore "process p { var x := 0; havoc x in 1 .. 3; assert x >= 1 && x <= 3; }" in
  Alcotest.(check bool) "in range" true (o.Check.Explore.violation = None);
  let o = explore "process p { var x := 0; havoc x in 1 .. 3; assert x != 2; }" in
  Alcotest.(check bool) "all values explored" true (o.Check.Explore.violation <> None)

let test_empty_havoc_blocks () =
  let o = explore "process p { var x := 0; havoc x in 3 .. 1; assert false; }" in
  (* empty range: the process blocks, the assert is unreachable *)
  Alcotest.(check bool) "assert unreachable" true (o.Check.Explore.violation = None)

let test_runtime_error_on_bad_channel_value () =
  (* well-typed by construction; runtime evaluation errors should not occur
     in the examples — smoke-check eval on a closed expression *)
  Alcotest.(check bool) "eval" true
    (C.eval [] (A.E_binop (A.Eq, A.E_int 2, A.E_int 2)) = A.V_bool true)

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick test_lex_basics;
    Alcotest.test_case "keywords vs identifiers" `Quick test_lex_keywords_vs_idents;
    Alcotest.test_case "comments" `Quick test_lex_comments;
    Alcotest.test_case "two-char operators" `Quick test_lex_two_char_ops;
    Alcotest.test_case "positions" `Quick test_lex_positions;
    Alcotest.test_case "lexer errors" `Quick test_lex_error;
    Alcotest.test_case "operator precedence" `Quick test_precedence;
    Alcotest.test_case "parentheses and unary ops" `Quick test_parens_and_unary;
    Alcotest.test_case "process parsing" `Quick test_parse_process;
    Alcotest.test_case "choose arms" `Quick test_parse_choose;
    Alcotest.test_case "send/recv forms" `Quick test_parse_send_recv;
    Alcotest.test_case "parse errors carry positions" `Quick test_parse_error_position;
    Alcotest.test_case "pretty-print round-trip" `Quick test_roundtrip_examples;
    Alcotest.test_case "typecheck accepts the well-typed" `Quick test_typecheck_ok;
    Alcotest.test_case "undeclared variable" `Quick test_typecheck_undeclared;
    Alcotest.test_case "assignment type mismatch" `Quick test_typecheck_mismatch;
    Alcotest.test_case "non-bool guard" `Quick test_typecheck_guard;
    Alcotest.test_case "redeclaration" `Quick test_typecheck_redeclare;
    Alcotest.test_case "channel signature consistency" `Quick test_typecheck_channel_consistency;
    Alcotest.test_case "havoc needs an int" `Quick test_typecheck_havoc_bool;
    Alcotest.test_case "compiled labels are unique" `Quick test_compile_labels_unique;
    Alcotest.test_case "examples run to their verdicts" `Quick test_run_examples;
    Alcotest.test_case "counter race loses an update" `Quick test_counter_race_outcomes;
    Alcotest.test_case "havoc explores the whole range" `Quick test_havoc_range;
    Alcotest.test_case "empty havoc blocks" `Quick test_empty_havoc_blocks;
    Alcotest.test_case "expression evaluation" `Quick test_runtime_error_on_bad_channel_value;
  ]
