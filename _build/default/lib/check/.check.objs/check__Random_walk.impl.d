lib/check/random_walk.ml: Cimp Fmt List Random Trace Unix
