lib/check/explore.mli: Cimp Fmt Trace
