lib/check/trace.ml: Array Cimp Fmt List
