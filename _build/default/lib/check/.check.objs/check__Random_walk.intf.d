lib/check/random_walk.mli: Cimp Fmt Trace
