lib/check/fingerprint.mli: Cimp Hashtbl
