lib/check/trace.mli: Cimp Fmt
