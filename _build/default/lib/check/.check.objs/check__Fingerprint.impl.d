lib/check/fingerprint.ml: Cimp Hashtbl List Stdlib
