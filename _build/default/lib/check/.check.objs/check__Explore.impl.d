lib/check/explore.ml: Cimp Fingerprint Fmt Hashtbl List Queue Trace Unix
