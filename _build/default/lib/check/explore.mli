(** Exhaustive explicit-state exploration: breadth-first search over a CIMP
    system's reachable states, evaluating invariants at every state.

    On a bounded instance this is the executable substitute for the paper's
    induction over the reachable-state set (Section 3.2), and it produces a
    shortest counterexample schedule when an invariant fails. *)

type ('a, 'v, 's) outcome = {
  states : int;  (** distinct states visited *)
  transitions : int;  (** transitions traversed *)
  depth : int;  (** BFS depth reached *)
  deadlocks : int;  (** states with no successors *)
  truncated : bool;  (** hit [max_states] before closing the state space *)
  violation : ('a, 'v, 's) Trace.t option;  (** first (shortest) violation *)
  elapsed : float;  (** wall-clock seconds *)
  covered : (int * Cimp.Label.t) list;
      (** (pid, label) pairs that fired (empty unless [track_coverage]);
          program locations never exercised indicate dead model code *)
}

val pp_outcome : ('a, 'v, 's) outcome Fmt.t

(** [run ~invariants initial] explores from [initial].  Invariants are
    (name, predicate) pairs checked at every state, including the initial
    one; exploration stops at the first violation, which BFS order makes a
    shortest one.

    @param max_states cap on distinct states (default 1,000,000); hitting
           it sets [truncated].
    @param normal_form explore {!Cimp.System.normalize} normal forms
           (default [true]): runs of deterministic local steps execute
           eagerly, so invariants are evaluated at atomic-action
           boundaries only.
    @param track_coverage record which (pid, label) pairs fire. *)
val run :
  ?max_states:int ->
  ?normal_form:bool ->
  ?track_coverage:bool ->
  invariants:(string * (('a, 'v, 's) Cimp.System.t -> bool)) list ->
  ('a, 'v, 's) Cimp.System.t ->
  ('a, 'v, 's) outcome
