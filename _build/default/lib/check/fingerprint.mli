(** Canonical fingerprints of global CIMP states.

    Control state is identified by the label spine of each process's frame
    stack; data states must be canonical plain OCaml data (no closures, no
    cycles, canonical collection representations), which everything in the
    GC model is — then polymorphic comparison and hashing are sound. *)

type t

val of_system : ('a, 'v, 's) Cimp.System.t -> t
val equal : t -> t -> bool
val hash : t -> int

module Table : Hashtbl.S with type key = t
