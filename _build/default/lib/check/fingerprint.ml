(* Canonical fingerprints of global CIMP states.

   Control state is identified by each process's label spine (commands
   themselves carry closures and cannot be compared); data states must be
   canonical plain OCaml data — everything in the GC model is ints, bools,
   lists, options and flat variants — so polymorphic equality and hashing
   are sound.  The pair is the key for the explorer's seen-set. *)

type t = { control : Cimp.Label.t list list; data : Stdlib.Obj.t list }

(* The data payloads are stashed as Obj.t to keep this module polymorphic in
   the system's state type; they are only ever consumed by the polymorphic
   [compare]/[Hashtbl.hash], never re-projected. *)
let of_system (sys : ('a, 'v, 's) Cimp.System.t) : t =
  let n = Cimp.System.n_procs sys in
  let control = Cimp.System.control_fingerprint sys in
  let data =
    List.init n (fun p -> Stdlib.Obj.repr (Cimp.System.proc sys p).Cimp.Com.data)
  in
  { control; data }

let equal (a : t) (b : t) = Stdlib.compare a b = 0
let hash (a : t) = Hashtbl.hash_param 64 256 a

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
