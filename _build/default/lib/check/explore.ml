(* Exhaustive explicit-state exploration.

   Breadth-first search over the CIMP system's reachable states, evaluating
   every supplied invariant at every state.  This is the executable
   substitute for the paper's induction over the reachable-state set
   (Section 3.2): on a bounded instance it *is* that induction, carried out
   by enumeration, and it additionally produces a shortest counterexample
   schedule when an invariant fails. *)

type ('a, 'v, 's) outcome = {
  states : int;  (* distinct states visited *)
  transitions : int;  (* transitions traversed *)
  depth : int;  (* BFS depth reached *)
  deadlocks : int;  (* states with no successors *)
  truncated : bool;  (* hit max_states before closure *)
  violation : ('a, 'v, 's) Trace.t option;  (* first (shortest) violation *)
  elapsed : float;  (* seconds *)
  covered : (int * Cimp.Label.t) list;
      (* (pid, label) pairs that fired, when coverage tracking is on:
         program locations never exercised indicate dead model code *)
}

let pp_outcome ppf o =
  Fmt.pf ppf "states=%d transitions=%d depth=%d deadlocks=%d%s %s (%.2fs)" o.states o.transitions
    o.depth o.deadlocks
    (if o.truncated then " TRUNCATED" else "")
    (match o.violation with None -> "all invariants hold" | Some t -> "VIOLATION: " ^ t.Trace.broken)
    o.elapsed

(* BFS.  [invariants] are (name, predicate) pairs checked at every state,
   including the initial one.  Stops at the first violation (BFS order
   makes it a shortest one).

   With [normal_form] (default), states are explored in the definite-tau
   normal form (Cimp.System.normalize): runs of deterministic local
   register/control steps — unobservable by other processes — execute
   eagerly, so invariants are evaluated at atomic-action boundaries only.
   This is the evaluation-context atomicity coarsening of Section 3. *)
let run ?(max_states = 1_000_000) ?(normal_form = true) ?(track_coverage = false) ~invariants
    initial =
  let norm sys = if normal_form then Cimp.System.normalize sys else sys in
  let initial = norm initial in
  let coverage = Hashtbl.create (if track_coverage then 512 else 1) in
  let record_event ev =
    if track_coverage then begin
      match ev with
      | Cimp.System.Tau (p, l) -> Hashtbl.replace coverage (p, l) ()
      | Cimp.System.Rendezvous { requester; req_label; responder; resp_label } ->
        Hashtbl.replace coverage (requester, req_label) ();
        Hashtbl.replace coverage (responder, resp_label) ()
    end
  in
  let t0 = Unix.gettimeofday () in
  let seen = Fingerprint.Table.create 65536 in
  (* parent pointers for trace reconstruction *)
  let parent = Fingerprint.Table.create 65536 in
  let q = Queue.create () in
  let states = ref 0 in
  let transitions = ref 0 in
  let deadlocks = ref 0 in
  let depth = ref 0 in
  let truncated = ref false in
  let violation = ref None in
  let check_state sys =
    match List.find_opt (fun (_, p) -> not (p sys)) invariants with
    | None -> None
    | Some (name, _) -> Some name
  in
  let reconstruct fp broken =
    (* walk parent pointers back to the root, then replay forward *)
    let rec back fp acc =
      match Fingerprint.Table.find_opt parent fp with
      | None -> acc
      | Some (pfp, event, state) -> back pfp ({ Trace.event; state } :: acc)
    in
    { Trace.initial; steps = back fp []; broken }
  in
  let enqueue ~from_fp ~event ~d sys =
    let fp = Fingerprint.of_system sys in
    if not (Fingerprint.Table.mem seen fp) then begin
      Fingerprint.Table.add seen fp ();
      (match (from_fp, event) with
      | Some pfp, Some ev -> Fingerprint.Table.add parent fp (pfp, ev, sys)
      | _ -> ());
      incr states;
      if d > !depth then depth := d;
      (match !violation with
      | Some _ -> ()
      | None -> (
        match check_state sys with
        | Some name -> violation := Some (reconstruct fp name)
        | None -> ()));
      Queue.add (fp, sys, d) q
    end
  in
  enqueue ~from_fp:None ~event:None ~d:0 initial;
  let continue = ref true in
  while !continue && not (Queue.is_empty q) && !violation = None do
    let fp, sys, d = Queue.pop q in
    let succs = Cimp.System.steps sys in
    if succs = [] then incr deadlocks;
    List.iter
      (fun (event, sys') ->
        incr transitions;
        record_event event;
        if !states < max_states then
          enqueue ~from_fp:(Some fp) ~event:(Some event) ~d:(d + 1) (norm sys')
        else truncated := true)
      succs;
    if !states >= max_states then truncated := true;
    if !truncated && Queue.is_empty q then continue := false
  done;
  {
    states = !states;
    transitions = !transitions;
    depth = !depth;
    deadlocks = !deadlocks;
    truncated = !truncated;
    violation = !violation;
    elapsed = Unix.gettimeofday () -. t0;
    covered = Hashtbl.fold (fun k () acc -> k :: acc) coverage [];
  }
