(* Counterexample traces: the sequence of scheduled events from the initial
   state to a state violating an invariant. *)

type ('a, 'v, 's) step = {
  event : Cimp.System.event;
  state : ('a, 'v, 's) Cimp.System.t;
}

type ('a, 'v, 's) t = {
  initial : ('a, 'v, 's) Cimp.System.t;
  steps : ('a, 'v, 's) step list;  (* in execution order *)
  broken : string;  (* name of the violated invariant *)
}

let length tr = List.length tr.steps

let final tr =
  match List.rev tr.steps with [] -> tr.initial | last :: _ -> last.state

(* Render just the event schedule; state dumps are the callers' business
   (they know the data-state type). *)
let pp ppf tr =
  let names =
    Array.init (Cimp.System.n_procs tr.initial) (Cimp.System.name tr.initial)
  in
  Fmt.pf ppf "@[<v>violated: %s (after %d steps)@,%a@]" tr.broken (length tr)
    (Fmt.list ~sep:Fmt.cut (fun ppf (i, s) ->
         Fmt.pf ppf "%3d. %a" i (Cimp.System.pp_event names) s.event))
    (List.mapi (fun i s -> (i + 1, s)) tr.steps)
