(* Randomized deep runs: where exhaustive exploration is infeasible (larger
   heaps, more mutators), schedule transitions uniformly at random for many
   steps, evaluating the invariants at every state.  Probabilistic rather
   than exhaustive, but it drives the model through thousands of collection
   cycles on instances the BFS cannot close. *)

type ('a, 'v, 's) outcome = {
  steps_taken : int;
  runs : int;  (* walks performed (restarts on dead ends) *)
  violation : ('a, 'v, 's) Trace.t option;
  elapsed : float;
}

let pp_outcome ppf o =
  Fmt.pf ppf "steps=%d runs=%d %s (%.2fs)" o.steps_taken o.runs
    (match o.violation with None -> "all invariants hold" | Some t -> "VIOLATION: " ^ t.Trace.broken)
    o.elapsed

let run ?(seed = 42) ?(steps = 100_000) ?(max_run_length = 5_000) ?(normal_form = true)
    ~invariants initial =
  let t0 = Unix.gettimeofday () in
  let norm sys = if normal_form then Cimp.System.normalize sys else sys in
  let initial = norm initial in
  let rng = Random.State.make [| seed |] in
  let check_state sys =
    match List.find_opt (fun (_, p) -> not (p sys)) invariants with
    | None -> None
    | Some (name, _) -> Some name
  in
  let violation = ref None in
  let taken = ref 0 in
  let runs = ref 0 in
  (match check_state initial with
  | Some name -> violation := Some { Trace.initial; steps = []; broken = name }
  | None -> ());
  while !violation = None && !taken < steps do
    incr runs;
    let sys = ref initial in
    let len = ref 0 in
    let rev_steps = ref [] in
    let continue = ref true in
    while !continue && !violation = None && !taken < steps && !len < max_run_length do
      match Cimp.System.steps !sys with
      | [] -> continue := false (* dead end; restart *)
      | succs ->
        let event, sys' = List.nth succs (Random.State.int rng (List.length succs)) in
        let sys' = norm sys' in
        sys := sys';
        incr taken;
        incr len;
        rev_steps := { Trace.event; state = sys' } :: !rev_steps;
        (match check_state sys' with
        | Some name ->
          violation := Some { Trace.initial; steps = List.rev !rev_steps; broken = name }
        | None -> ())
    done
  done;
  { steps_taken = !taken; runs = !runs; violation = !violation; elapsed = Unix.gettimeofday () -. t0 }
