(** Randomized deep runs: schedule transitions uniformly at random,
    checking invariants at every state.  Probabilistic where exhaustive
    exploration is infeasible (larger heaps, more mutators, unbounded
    cycles); drives the model through thousands of collection cycles. *)

type ('a, 'v, 's) outcome = {
  steps_taken : int;
  runs : int;  (** walks performed (restarts on dead ends) *)
  violation : ('a, 'v, 's) Trace.t option;
  elapsed : float;
}

val pp_outcome : ('a, 'v, 's) outcome Fmt.t

(** [run ~invariants initial] walks until [steps] scheduled steps have been
    taken or an invariant fails.  Deterministic in [seed].

    @param max_run_length restart after this many steps in one walk
    @param normal_form as in {!Explore.run} *)
val run :
  ?seed:int ->
  ?steps:int ->
  ?max_run_length:int ->
  ?normal_form:bool ->
  invariants:(string * (('a, 'v, 's) Cimp.System.t -> bool)) list ->
  ('a, 'v, 's) Cimp.System.t ->
  ('a, 'v, 's) outcome
