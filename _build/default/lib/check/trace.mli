(** Counterexample traces: the schedule of events from the initial state to
    a state violating an invariant. *)

type ('a, 'v, 's) step = { event : Cimp.System.event; state : ('a, 'v, 's) Cimp.System.t }

type ('a, 'v, 's) t = {
  initial : ('a, 'v, 's) Cimp.System.t;
  steps : ('a, 'v, 's) step list;  (** in execution order *)
  broken : string;  (** name of the violated invariant *)
}

val length : ('a, 'v, 's) t -> int

(** The violating state ([initial] if the trace is empty). *)
val final : ('a, 'v, 's) t -> ('a, 'v, 's) Cimp.System.t

(** Render the event schedule (state dumps are the callers' business:
    they know the data-state type — see {!Core.Dump.pp_trace}). *)
val pp : ('a, 'v, 's) t Fmt.t
