(* Objects, after Section 3.1: an object consists of a garbage-collection
   mark and a partial map from fields to references-or-NULL.  We abstract
   from non-reference payloads exactly as the paper does.

   References are drawn from a fixed finite set 0..n_refs-1 (the paper's
   arbitrary non-empty R, bounded for model checking); fields are 0..n_fields-1.
   Everything is canonical plain data so whole states can be hashed
   polymorphically. *)

type rf = int
type fld = int

type t = {
  mark : bool;  (* the raw flag; its colour meaning is contingent on f_M *)
  fields : rf option list;  (* indexed by field; None is NULL *)
}

let make ~mark ~n_fields = { mark; fields = List.init n_fields (fun _ -> None) }

let field o f = List.nth o.fields f

let set_field o f r = { o with fields = List.mapi (fun i v -> if i = f then r else v) o.fields }

let set_mark o m = { o with mark = m }

let n_fields o = List.length o.fields

(* All non-NULL references stored in the object's fields. *)
let children o = List.filter_map (fun v -> v) o.fields

let pp ppf o =
  Fmt.pf ppf "{mark=%b; fields=[%a]}" o.mark
    (Fmt.list ~sep:Fmt.semi (Fmt.option ~none:(Fmt.any "-") Fmt.int))
    o.fields
