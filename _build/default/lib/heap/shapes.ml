(* Initial heap shapes for the exploration experiments.

   Each shape builds a heap over a given reference universe plus a
   suggestive mutator-root assignment.  The [fig1] shape reconstructs the
   grey-protection scenario of the paper's Figure 1: a chain through which a
   deletion can hide a live object from the collector. *)

type t = {
  name : string;
  heap : Heap.t;
  roots : Obj.rf list list;  (* one root set per mutator; cycled if fewer *)
}

let roots_for shape m =
  match shape.roots with
  | [] -> []
  | rs -> List.nth rs (m mod List.length rs)

(* No objects at all; everything must come from allocation. *)
let empty ~n_refs ~n_fields = { name = "empty"; heap = Heap.make ~n_refs ~n_fields; roots = [ [] ] }

(* A single object, rooted. *)
let single ~n_refs ~n_fields =
  let heap = Heap.alloc (Heap.make ~n_refs ~n_fields) 0 ~mark:false in
  { name = "single"; heap; roots = [ [ 0 ] ] }

(* A chain 0 -> 1 -> ... -> k-1 through field 0, rooted at 0. *)
let chain ~n_refs ~n_fields k =
  let k = min k n_refs in
  let heap = ref (Heap.make ~n_refs ~n_fields) in
  for r = 0 to k - 1 do
    heap := Heap.alloc !heap r ~mark:false
  done;
  for r = 0 to k - 2 do
    heap := Heap.set_field !heap r 0 (Some (r + 1))
  done;
  { name = Printf.sprintf "chain%d" k; heap = !heap; roots = [ [ 0 ] ] }

(* A cycle over the first k references. *)
let cycle ~n_refs ~n_fields k =
  let k = min k n_refs in
  let c = chain ~n_refs ~n_fields k in
  let heap = if k > 0 then Heap.set_field c.heap (k - 1) 0 (Some 0) else c.heap in
  { name = Printf.sprintf "cycle%d" k; heap; roots = [ [ 0 ] ] }

(* Two roots sharing a tail: 0 -> 2 <- 1, mutator roots {0} and {1}. *)
let shared ~n_refs ~n_fields =
  let heap = ref (Heap.make ~n_refs ~n_fields) in
  List.iter (fun r -> heap := Heap.alloc !heap r ~mark:false) [ 0; 1; 2 ];
  heap := Heap.set_field !heap 0 0 (Some 2);
  heap := Heap.set_field !heap 1 0 (Some 2);
  { name = "shared"; heap = !heap; roots = [ [ 0 ]; [ 1 ] ] }

(* The Figure 1 configuration: B -> W and G -> o -> W with B=0, G=1, o=2,
   W=3 (the chain node o makes the white chain non-trivial).  A mutator
   holding root B can delete the edge o -> W; without the deletion barrier
   the collector never discovers W. *)
let fig1 ~n_refs ~n_fields =
  let n_refs = max n_refs 4 in
  let heap = ref (Heap.make ~n_refs ~n_fields) in
  List.iter (fun r -> heap := Heap.alloc !heap r ~mark:false) [ 0; 1; 2; 3 ];
  heap := Heap.set_field !heap 0 0 (Some 3);
  heap := Heap.set_field !heap 1 0 (Some 2);
  heap := Heap.set_field !heap 2 0 (Some 3);
  { name = "fig1"; heap = !heap; roots = [ [ 0; 1 ] ] }

let all ~n_refs ~n_fields =
  [
    empty ~n_refs ~n_fields;
    single ~n_refs ~n_fields;
    chain ~n_refs ~n_fields 3;
    cycle ~n_refs ~n_fields 3;
    shared ~n_refs ~n_fields;
    fig1 ~n_refs ~n_fields;
  ]

let by_name ~n_refs ~n_fields name =
  List.find_opt (fun s -> s.name = name) (all ~n_refs ~n_fields)
