(** Initial heap shapes for the experiments: small configurations plus a
    per-mutator root assignment.  [fig1] reconstructs the paper's Figure 1
    grey-protection scenario. *)

type t = {
  name : string;
  heap : Heap.t;
  roots : Obj.rf list list;  (** one root set per mutator; cycled if fewer *)
}

val roots_for : t -> int -> Obj.rf list
(** The root set for mutator [m] (cycling through [roots]). *)

val empty : n_refs:int -> n_fields:int -> t
val single : n_refs:int -> n_fields:int -> t
val chain : n_refs:int -> n_fields:int -> int -> t
(** [chain k]: 0 -> 1 -> ... -> k-1 through field 0, rooted at 0. *)

val cycle : n_refs:int -> n_fields:int -> int -> t
val shared : n_refs:int -> n_fields:int -> t
(** Two roots sharing a tail: 0 -> 2 <- 1, mutator roots {0} and {1}. *)

val fig1 : n_refs:int -> n_fields:int -> t
(** B(0) -> W(3) and G(1) -> o(2) -> W(3): deleting o -> W can hide the
    live W without the deletion barrier. *)

val all : n_refs:int -> n_fields:int -> t list
val by_name : n_refs:int -> n_fields:int -> string -> t option
