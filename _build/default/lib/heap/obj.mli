(** Objects, after the paper's Section 3.1: a garbage-collection mark and a
    map from fields to references-or-NULL; non-reference payloads are
    abstracted away. *)

type rf = int
(** References: drawn from the bounded universe [0 .. n_refs-1]. *)

type fld = int
(** Field indices: [0 .. n_fields-1]. *)

type t = {
  mark : bool;  (** the raw flag; its colour meaning is contingent on f_M *)
  fields : rf option list;  (** indexed by field; [None] is NULL *)
}

val make : mark:bool -> n_fields:int -> t
val field : t -> fld -> rf option
val set_field : t -> fld -> rf option -> t
val set_mark : t -> bool -> t
val n_fields : t -> int

val children : t -> rf list
(** All non-NULL references stored in the object's fields. *)

val pp : t Fmt.t
