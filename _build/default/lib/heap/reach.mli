(** Reachability through the heap (Section 3.2): paths always go via the
    committed heap; TSO-buffer and ghost roots are assembled by the caller
    ({!Core.Invariants.extended_roots}). *)

val reachable_set : Heap.t -> Obj.rf list -> Obj.rf list
(** Everything reachable from the roots.  The roots themselves are
    included whether or not they denote objects — a dangling root is
    "reachable" and thus a safety violation. *)

val reaches : Heap.t -> src:Obj.rf -> dst:Obj.rf -> bool
val reachable : Heap.t -> Obj.rf list -> Obj.rf -> bool

val white_reachable_set : Heap.t -> white:(Obj.rf -> bool) -> Obj.rf list -> Obj.rf list
(** Grey protection (Fig. 1): everything reachable from the sources via
    chains whose interior nodes are all white.  Sources expand
    unconditionally (they are the greys); a node reached first as a
    non-white endpoint still expands if it is itself a source. *)
