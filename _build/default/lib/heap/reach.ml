(* Reachability through the heap (Section 3.2, "Collector Predicates"):
   a reference reaches another if there is a path from the former to the
   latter through objects on the heap; a reachable reference is one reached
   from some root.  The TSO refinements (buffered writes and in-flight
   deletion-barrier references as extra roots) are applied by the caller
   (Core.Invariants), which assembles the root set; paths themselves always
   go via the committed heap, as the paper prescribes. *)

(* All references reachable from [roots] (the roots are included, whether or
   not they denote live objects — dangling roots are exactly what the safety
   property forbids). *)
let reachable_set heap roots =
  let n = Heap.n_refs heap in
  let seen = Array.make n false in
  let rec visit r =
    if r >= 0 && r < n && not seen.(r) then begin
      seen.(r) <- true;
      match Heap.get heap r with
      | None -> ()
      | Some o -> List.iter visit (Obj.children o)
    end
  in
  List.iter visit roots;
  List.filter (fun r -> r >= 0 && r < n && seen.(r)) (List.init n (fun i -> i))

let reaches heap ~src ~dst = List.mem dst (reachable_set heap [ src ])

let reachable heap roots r = List.mem r (reachable_set heap roots)

(* Reachability restricted to chains of *white* intermediate objects: used
   for grey protection.  [white r] says object r is white.  Returns the set
   of references reachable from [srcs] via paths all of whose intermediate
   nodes (including the endpoints' predecessors, i.e. every node we pass
   through) are white; the sources themselves are included regardless of
   colour, matching Grey ->w* White with a chain of length >= 0. *)
let white_reachable_set heap ~white srcs =
  let n = Heap.n_refs heap in
  let seen = Array.make n false in
  let expanded = Array.make n false in
  (* [source]: sources start chains unconditionally; interior nodes continue
     a chain only if white.  A node can be reached first as a non-white
     chain endpoint and later turn out to be a source itself, so reachedness
     and expandedness are tracked separately. *)
  let rec visit ~source r =
    if r >= 0 && r < n then begin
      seen.(r) <- true;
      if (source || white r) && not expanded.(r) then begin
        expanded.(r) <- true;
        match Heap.get heap r with
        | None -> ()
        | Some o -> List.iter (visit ~source:false) (Obj.children o)
      end
    end
  in
  List.iter (visit ~source:true) srcs;
  List.filter (fun r -> r >= 0 && r < n && seen.(r)) (List.init n (fun i -> i))
