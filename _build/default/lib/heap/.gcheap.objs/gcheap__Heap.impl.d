lib/heap/heap.ml: Fmt List Obj Option
