lib/heap/shapes.ml: Heap List Obj Printf
