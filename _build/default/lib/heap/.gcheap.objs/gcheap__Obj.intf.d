lib/heap/obj.mli: Fmt
