lib/heap/heap.mli: Fmt Obj
