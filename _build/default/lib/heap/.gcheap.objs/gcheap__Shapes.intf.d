lib/heap/shapes.mli: Heap Obj
