lib/heap/obj.ml: Fmt List
