lib/heap/reach.ml: Array Heap List Obj
