lib/heap/reach.mli: Heap Obj
