(* The heap: a partial map from references to objects (Section 3.1), whose
   domain doubles as the set of allocated references.  Represented as a
   fixed-length list over the bounded reference universe so that heaps are
   canonical data. *)

type t = {
  n_fields : int;
  cells : Obj.t option list;  (* indexed by reference; None is free *)
}

let make ~n_refs ~n_fields = { n_fields; cells = List.init n_refs (fun _ -> None) }

let n_refs h = List.length h.cells

let valid_ref h r = r >= 0 && r < n_refs h && List.nth h.cells r <> None

let get h r = if r >= 0 && r < n_refs h then List.nth h.cells r else None

let domain h =
  List.filteri (fun r _ -> List.nth h.cells r <> None) (List.init (n_refs h) (fun i -> i))

let free_refs h =
  List.filteri (fun r _ -> List.nth h.cells r = None) (List.init (n_refs h) (fun i -> i))

let update h r f =
  {
    h with
    cells = List.mapi (fun i c -> if i = r then Option.map f c else c) h.cells;
  }

let set h r o = { h with cells = List.mapi (fun i c -> if i = r then o else c) h.cells }

(* Allocation installs a fresh all-NULL object with the given mark; the
   caller picks the reference (non-deterministically, per the paper's atomic
   allocation abstraction). *)
let alloc h r ~mark = set h r (Some (Obj.make ~mark ~n_fields:h.n_fields))

let free h r = set h r None

let set_field h r f v = update h r (fun o -> Obj.set_field o f v)
let set_mark h r m = update h r (fun o -> Obj.set_mark o m)

let field h r f = Option.bind (get h r) (fun o -> Obj.field o f)
let mark h r = Option.map (fun o -> o.Obj.mark) (get h r)

(* References marked with flag value [m]. *)
let marked_with h m =
  List.filter (fun r -> mark h r = Some m) (domain h)

let pp ppf h =
  let cell ppf (r, c) =
    match c with
    | None -> Fmt.pf ppf "%d:free" r
    | Some o -> Fmt.pf ppf "%d:%a" r Obj.pp o
  in
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut cell)
    (List.mapi (fun r c -> (r, c)) h.cells)
