(** The heap: a partial map from references to objects whose domain doubles
    as the set of allocated references (Section 3.1), over a bounded
    reference universe.  Heaps are canonical plain data (fingerprintable). *)

type t

val make : n_refs:int -> n_fields:int -> t
(** An empty heap over references [0 .. n_refs-1]. *)

val n_refs : t -> int

val valid_ref : t -> Obj.rf -> bool
(** Is there an object at this reference?  The headline safety property
    asserts this for every reachable reference. *)

val get : t -> Obj.rf -> Obj.t option
val domain : t -> Obj.rf list
val free_refs : t -> Obj.rf list

val alloc : t -> Obj.rf -> mark:bool -> t
(** Install a fresh all-NULL object with the given mark at a (caller-chosen)
    reference — the paper's atomic allocation abstraction. *)

val free : t -> Obj.rf -> t
(** Fig. 2 line 44: remove a reference from the domain. *)

val set_field : t -> Obj.rf -> Obj.fld -> Obj.rf option -> t
(** No-op when the cell is free (the caller records dangling commits). *)

val set_mark : t -> Obj.rf -> bool -> t
val field : t -> Obj.rf -> Obj.fld -> Obj.rf option
val mark : t -> Obj.rf -> bool option

val marked_with : t -> bool -> Obj.rf list
(** References whose mark flag equals the given sense. *)

val pp : t Fmt.t
