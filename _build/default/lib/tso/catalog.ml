(* The classic litmus tests with their published x86-TSO classifications
   (Sewell et al., CACM 2010; Owens et al.).  Addresses: x = 0, y = 1.
   Experiment E9 (Fig. 9) runs this catalogue under both the TSO machine and
   the SC baseline and checks every classification. *)

open Litmus

let x = 0
let y = 1

let test ~name ~description ?(mem_size = 2) ?(n_regs = 2) ?(observed_mem = []) ~threads ~observed_regs
    ~target ~allowed_tso ~allowed_sc () =
  { name; description; mem_size; n_regs; threads; observed_regs; observed_mem; target; allowed_tso; allowed_sc }

(* SB: the store-buffering (Dekker) example — the signature relaxed
   behaviour of TSO, and the reason the collector needs its handshake
   fences. *)
let sb =
  test ~name:"SB" ~description:"store buffering: both loads may miss both stores"
    ~threads:[ [ St (x, Imm 1); Ld (0, y) ]; [ St (y, Imm 1); Ld (0, x) ] ]
    ~observed_regs:[ (0, 0); (1, 0) ] ~target:[ 0; 0 ] ~allowed_tso:true ~allowed_sc:false ()

(* SB with MFENCE after each store: the fence drains the buffer, restoring
   SC for this shape — exactly the paper's handshake store-fence. *)
let sb_mfence =
  test ~name:"SB+mfence" ~description:"store buffering with MFENCEs: forbidden"
    ~threads:[ [ St (x, Imm 1); Mf; Ld (0, y) ]; [ St (y, Imm 1); Mf; Ld (0, x) ] ]
    ~observed_regs:[ (0, 0); (1, 0) ] ~target:[ 0; 0 ] ~allowed_tso:false ~allowed_sc:false ()

(* SB with LOCK'd stores: LOCK'd instructions flush, as the collector's CAS
   does (Section 2.3). *)
let sb_xchg =
  test ~name:"SB+xchg" ~description:"store buffering with LOCK XCHG stores: forbidden"
    ~n_regs:2
    ~threads:[ [ Xchg (1, x, Imm 1); Ld (0, y) ]; [ Xchg (1, y, Imm 1); Ld (0, x) ] ]
    ~observed_regs:[ (0, 0); (1, 0) ] ~target:[ 0; 0 ] ~allowed_tso:false ~allowed_sc:false ()

(* MP: message passing — TSO keeps same-thread stores in order and loads in
   order, so the stale read is forbidden. *)
let mp =
  test ~name:"MP" ~description:"message passing: stale data read is forbidden under TSO"
    ~threads:[ [ St (x, Imm 1); St (y, Imm 1) ]; [ Ld (0, y); Ld (1, x) ] ]
    ~observed_regs:[ (1, 0); (1, 1) ] ~target:[ 1; 0 ] ~allowed_tso:false ~allowed_sc:false ()

(* LB: load buffering — needs load-store reordering, which TSO forbids. *)
let lb =
  test ~name:"LB" ~description:"load buffering: forbidden under TSO"
    ~threads:[ [ Ld (0, x); St (y, Imm 1) ]; [ Ld (0, y); St (x, Imm 1) ] ]
    ~observed_regs:[ (0, 0); (1, 0) ] ~target:[ 1; 1 ] ~allowed_tso:false ~allowed_sc:false ()

(* CoRR: per-location coherence — reads of one location never go backwards. *)
let corr =
  test ~name:"CoRR" ~description:"read-read coherence on one location"
    ~threads:[ [ St (x, Imm 1) ]; [ Ld (0, x); Ld (1, x) ] ]
    ~observed_regs:[ (1, 0); (1, 1) ] ~target:[ 1; 0 ] ~allowed_tso:false ~allowed_sc:false ()

(* IRIW: independent reads of independent writes — forbidden because TSO
   commits stores to a single shared memory (multi-copy atomic). *)
let iriw =
  test ~name:"IRIW" ~description:"independent reads of independent writes: forbidden"
    ~threads:
      [ [ St (x, Imm 1) ]; [ St (y, Imm 1) ]; [ Ld (0, x); Ld (1, y) ]; [ Ld (0, y); Ld (1, x) ] ]
    ~observed_regs:[ (2, 0); (2, 1); (3, 0); (3, 1) ]
    ~target:[ 1; 0; 1; 0 ] ~allowed_tso:false ~allowed_sc:false ()

(* WRC: write-to-read causality — forbidden under TSO. *)
let wrc =
  test ~name:"WRC" ~description:"write-to-read causality: forbidden"
    ~threads:[ [ St (x, Imm 1) ]; [ Ld (0, x); St (y, Imm 1) ]; [ Ld (0, y); Ld (1, x) ] ]
    ~observed_regs:[ (1, 0); (2, 0); (2, 1) ]
    ~target:[ 1; 1; 0 ] ~allowed_tso:false ~allowed_sc:false ()

(* n6 (Sewell et al. example): store-buffer forwarding lets a thread read
   its own uncommitted store while missing another thread's committed one —
   allowed under TSO, impossible under SC. *)
let n6 =
  test ~name:"n6" ~description:"intra-thread forwarding (allowed TSO, forbidden SC)"
    ~observed_mem:[ x ]
    ~threads:[ [ St (x, Imm 1); Ld (0, x); Ld (1, y) ]; [ St (y, Imm 2); St (x, Imm 2) ] ]
    ~observed_regs:[ (0, 0); (0, 1) ]
    ~target:[ 1; 0; 1 ] ~allowed_tso:true ~allowed_sc:false ()

(* 2+2W: write-write reordering across threads — forbidden, since buffers
   are FIFO. *)
let w2plus2 =
  test ~name:"2+2W" ~description:"2+2W: cross write-write reordering forbidden"
    ~observed_mem:[ x; y ]
    ~threads:[ [ St (x, Imm 1); St (y, Imm 2) ]; [ St (y, Imm 1); St (x, Imm 2) ] ]
    ~observed_regs:[] ~target:[ 1; 1 ] ~allowed_tso:false ~allowed_sc:false ()

let all = [ sb; sb_mfence; sb_xchg; mp; lb; corr; iriw; wrc; n6; w2plus2 ]

let run_all () = List.map Litmus.run all

(* -- PSO probes (extension): with per-address-only FIFO, message passing
   and 2+2W become observable while single-location coherence survives.
   These validate the PSO machine used by the E13 experiment. *)

let pso_outcomes test =
  let outcomes, _ = Litmus.outcomes ~mode:Machine.PSO test in
  outcomes

let pso_observes test = List.mem test.Litmus.target (pso_outcomes test)

(* Expected under PSO: MP's stale read and 2+2W's write inversion become
   observable; SB stays observable; CoRR stays forbidden (coherence). *)
let pso_expectations =
  [ (mp, true); (w2plus2, true); (sb, true); (corr, false); (sb_mfence, false) ]

let run_pso () =
  List.map (fun (t, expect) -> (t.Litmus.name, expect, pso_observes t)) pso_expectations
