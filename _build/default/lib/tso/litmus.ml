(* Litmus-test harness over the TSO/SC machines.

   A test gives one straight-line program per thread in terms of
   architecture-level instructions, a set of observables (registers and
   final memory), and a target relaxed outcome with its expected
   admissibility under x86-TSO and under SC.  [outcomes] enumerates every
   reachable final state exhaustively (memoised BFS over the machine's
   labelled transition system), so the reported sets are exact for the
   model — mirroring how x86-TSO's adequacy was established observationally
   in Sewell et al. *)

type instr =
  | Ld of Machine.reg * Machine.addr
  | St of Machine.addr * Machine.operand
  | Mf
  | Xchg of Machine.reg * Machine.addr * Machine.operand
    (* LOCK XCHG: atomically load into the register and store the operand *)

(* Compile to micro-ops; LOCK'd instructions expand to Lock/.../Unlock as in
   Fig. 9's treatment of locked CMPXCHG. *)
let compile_instr = function
  | Ld (r, a) -> [ Machine.Load (r, a) ]
  | St (a, v) -> [ Machine.Store (a, v) ]
  | Mf -> [ Machine.Mfence ]
  | Xchg (r, a, v) -> [ Machine.Lock; Machine.Load (r, a); Machine.Store (a, v); Machine.Unlock ]

let compile_thread instrs = Array.of_list (List.concat_map compile_instr instrs)

type test = {
  name : string;
  description : string;
  mem_size : int;
  n_regs : int;
  threads : instr list list;
  observed_regs : (Machine.tid * Machine.reg) list;
  observed_mem : Machine.addr list;
  target : int list;  (* the candidate relaxed outcome, as observables *)
  allowed_tso : bool;
  allowed_sc : bool;
}

let observe test st =
  List.map (fun (t, r) -> List.nth (List.nth (Machine.regs_of st) t) r) test.observed_regs
  @ List.map (fun a -> List.nth (Machine.mem_of st) a) test.observed_mem

(* Exhaustive enumeration of final-state observations. *)
let outcomes ?(mode = Machine.TSO) test =
  let init =
    Machine.initial ~mode ~mem_size:test.mem_size ~n_regs:test.n_regs
      (List.map compile_thread test.threads)
  in
  let seen = Hashtbl.create 4096 in
  let finals = Hashtbl.create 64 in
  let rec go = function
    | [] -> ()
    | st :: rest ->
      if Hashtbl.mem seen st then go rest
      else begin
        Hashtbl.add seen st ();
        if Machine.final st then Hashtbl.replace finals (observe test st) ();
        let succs = List.map snd (Machine.steps st) in
        go (List.rev_append succs rest)
      end
  in
  go [ init ];
  let result = Hashtbl.fold (fun k () acc -> k :: acc) finals [] in
  (List.sort compare result, Hashtbl.length seen)

type verdict = {
  test : test;
  tso_outcomes : int list list;
  sc_outcomes : int list list;
  tso_states : int;
  sc_states : int;
  tso_observed : bool;  (* target outcome reachable under TSO *)
  sc_observed : bool;
  ok : bool;  (* matches the published x86-TSO classification *)
}

let run test =
  let tso_outcomes, tso_states = outcomes ~mode:Machine.TSO test in
  let sc_outcomes, sc_states = outcomes ~mode:Machine.SC test in
  let tso_observed = List.mem test.target tso_outcomes in
  let sc_observed = List.mem test.target sc_outcomes in
  {
    test;
    tso_outcomes;
    sc_outcomes;
    tso_states;
    sc_states;
    tso_observed;
    sc_observed;
    ok = tso_observed = test.allowed_tso && sc_observed = test.allowed_sc;
  }

let pp_outcome ppf o =
  Fmt.pf ppf "(%s)" (String.concat "," (List.map string_of_int o))

let pp_verdict ppf v =
  Fmt.pf ppf "%-12s target=%a  TSO:%s(%d states)  SC:%s(%d states)  %s" v.test.name pp_outcome
    v.test.target
    (if v.tso_observed then "observed " else "forbidden")
    v.tso_states
    (if v.sc_observed then "observed " else "forbidden")
    v.sc_states
    (if v.ok then "OK" else "MISMATCH")
