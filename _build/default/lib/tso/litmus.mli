(** Litmus-test harness: architecture-level thread programs, exhaustive
    enumeration of final-state observations under TSO and SC, and
    verdicts against the published x86-TSO classifications (experiment
    E9). *)

type instr =
  | Ld of Machine.reg * Machine.addr
  | St of Machine.addr * Machine.operand
  | Mf
  | Xchg of Machine.reg * Machine.addr * Machine.operand
      (** LOCK XCHG: expands to Lock/Load/Store/Unlock *)

val compile_instr : instr -> Machine.micro list
val compile_thread : instr list -> Machine.micro array

type test = {
  name : string;
  description : string;
  mem_size : int;
  n_regs : int;
  threads : instr list list;
  observed_regs : (Machine.tid * Machine.reg) list;
  observed_mem : Machine.addr list;
  target : int list;  (** the candidate relaxed outcome *)
  allowed_tso : bool;  (** published classification under x86-TSO *)
  allowed_sc : bool;
}

val outcomes : ?mode:Machine.mode -> test -> int list list * int
(** Exhaustively enumerate the final-state observations; also returns the
    number of distinct machine states explored. *)

type verdict = {
  test : test;
  tso_outcomes : int list list;
  sc_outcomes : int list list;
  tso_states : int;
  sc_states : int;
  tso_observed : bool;
  sc_observed : bool;
  ok : bool;  (** matches the published classification *)
}

val run : test -> verdict
val pp_outcome : int list Fmt.t
val pp_verdict : verdict Fmt.t
