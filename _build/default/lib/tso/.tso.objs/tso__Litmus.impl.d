lib/tso/litmus.ml: Array Fmt Hashtbl List Machine String
