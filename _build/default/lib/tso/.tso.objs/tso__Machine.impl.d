lib/tso/machine.ml: Array Fmt List
