lib/tso/catalog.ml: List Litmus Machine
