lib/tso/catalog.mli: Litmus
