lib/tso/litmus.mli: Fmt Machine
