lib/tso/machine.mli: Fmt
