(** An operational x86-TSO machine after Sewell et al., the memory model the
    paper verifies against (Section 2.4, Fig. 9): per-thread FIFO store
    buffers with forwarding, MFENCE, and a global machine lock for LOCK'd
    instruction sequences.  [SC] mode commits stores immediately — the
    sequentially consistent baseline of experiment E9.

    States are immutable plain data, so exploration can memoise them. *)

type addr = int
type value = int
type reg = int
type tid = int

type mode =
  | TSO
  | SC
  | PSO
      (** partial store order: per-address FIFO only; stores to different
          addresses may commit out of order (the first weakening toward
          ARM/POWER that the paper's Section 4 contemplates) *)

type micro =
  | Load of reg * addr
  | Load_reg of reg * addr * reg  (** load from [base + regs.(idx)] *)
  | Store of addr * operand
  | Mfence  (** blocks until the issuing thread's buffer drains *)
  | Lock  (** begin a LOCK'd sequence: blocks others' reads and commits *)
  | Unlock  (** requires the holder's buffer empty: flush-and-publish *)
  | Jump_if_eq of reg * value * int  (** relative branch *)

and operand = Imm of value | Reg of reg

type thread = { code : micro array; pc : int; regs : value list; buf : (addr * value) list }
type state = { mode : mode; mem : value list; threads : thread list; lock : tid option }

type label = Exec of tid * int | Commit of tid

val pp_label : label Fmt.t

val initial : ?mode:mode -> mem_size:int -> n_regs:int -> micro array list -> state
val steps : state -> (label * state) list
(** All successors: each thread's next instruction (when enabled) and the
    storage subsystem committing some thread's oldest buffered store. *)

val final : state -> bool
(** All threads retired, all buffers drained, lock free. *)

val not_blocked : state -> tid -> bool
val read_value : state -> thread -> addr -> value
(** Buffer-forwarding read: the thread's newest buffered store to the
    address, else shared memory. *)

val regs_of : state -> value list list
val mem_of : state -> value list
