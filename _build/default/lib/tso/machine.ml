(* An operational x86-TSO machine after Sewell et al. [35], the memory model
   the paper verifies against (Section 2.4, Fig. 9).

   Each hardware thread has a FIFO store buffer; stores are buffered and
   asynchronously committed to shared memory; loads snoop the issuing
   thread's own buffer (most recent store to the address wins) before
   falling through to memory; MFENCE waits for the issuing thread's buffer
   to drain; LOCK'd instruction sequences hold a global machine lock that
   blocks other threads' memory reads and buffer commits, and release
   requires an empty buffer — giving LOCK'd instructions their
   flush-and-publish semantics.

   The same machine degraded with [mode = SC] commits stores immediately,
   yielding the sequentially consistent baseline used by the litmus
   experiments (E9) to exhibit exactly the relaxed behaviours x86-TSO adds.

   States are immutable plain data so exploration can memoise them with
   polymorphic hashing. *)

type addr = int
type value = int
type reg = int
type tid = int

type mode = TSO | SC | PSO
(* PSO: like TSO but store buffers are only per-address FIFO — stores to
   *different* addresses may commit out of order (partial store order, the
   first weakening on the road to ARM/POWER that Section 4 contemplates). *)

(* Micro-operations.  Litmus-level instructions (Litmus.instr) compile down
   to these; LOCK'd read-modify-writes become Lock/.../Unlock sequences as
   in Fig. 9. *)
type micro =
  | Load of reg * addr
  | Load_reg of reg * addr * reg
    (* [Load_reg (r, base, idx)]: load from address [base + regs.(idx)] *)
  | Store of addr * operand
  | Mfence
  | Lock
  | Unlock
  | Jump_if_eq of reg * value * int  (* relative branch for tiny loops *)

and operand = Imm of value | Reg of reg

type thread = {
  code : micro array;
  pc : int;
  regs : value list;  (* indexed by register number *)
  buf : (addr * value) list;  (* oldest first *)
}

type state = {
  mode : mode;
  mem : value list;  (* indexed by address *)
  threads : thread list;
  lock : tid option;
}

type label =
  | Exec of tid * int  (* thread t executed the micro-op at pc *)
  | Commit of tid      (* system committed t's oldest buffered store *)

let pp_label ppf = function
  | Exec (t, pc) -> Fmt.pf ppf "t%d@%d" t pc
  | Commit t -> Fmt.pf ppf "commit(t%d)" t

let nth_set xs i v = List.mapi (fun j x -> if j = i then v else x) xs

let initial ?(mode = TSO) ~mem_size ~n_regs codes =
  {
    mode;
    mem = List.init mem_size (fun _ -> 0);
    threads =
      List.map (fun code -> { code; pc = 0; regs = List.init n_regs (fun _ -> 0); buf = [] }) codes;
    lock = None;
  }

(* A thread is blocked when another thread holds the machine lock. *)
let not_blocked st t = match st.lock with None -> true | Some owner -> owner = t

(* Buffer-forwarding read: most recent buffered store to [a] by this thread,
   else shared memory. *)
let read_value st th a =
  let rec newest acc = function
    | [] -> acc
    | (a', v) :: rest -> newest (if a' = a then Some v else acc) rest
  in
  match newest None th.buf with Some v -> v | None -> List.nth st.mem a

let operand_value th = function Imm v -> v | Reg r -> List.nth th.regs r


let set_thread st t th = { st with threads = nth_set st.threads t th }

let done_ th = th.pc >= Array.length th.code

(* All successors of a state, labelled. *)
let steps st =
  let acc = ref [] in
  let push l s = acc := (l, s) :: !acc in
  List.iteri
    (fun t th ->
      (* Commit rule.  TSO: dequeue t's oldest write.  PSO: dequeue any
         buffered write with no older write to the same address (coherence
         is kept; cross-address order is not). *)
      (if not_blocked st t then
         match st.mode with
         | TSO | SC -> (
           match th.buf with
           | (a, v) :: rest ->
             push (Commit t) (set_thread { st with mem = nth_set st.mem a v } t { th with buf = rest })
           | [] -> ())
         | PSO ->
           List.iteri
             (fun i (a, v) ->
               let older_same =
                 List.exists (fun (a', _) -> a' = a) (List.filteri (fun j _ -> j < i) th.buf)
               in
               if not older_same then begin
                 let buf = List.filteri (fun j _ -> j <> i) th.buf in
                 push (Commit t) (set_thread { st with mem = nth_set st.mem a v } t { th with buf })
               end)
             th.buf);
      if not (done_ th) then begin
        let advance th' = set_thread st t { th' with pc = th.pc + 1 } in
        match th.code.(th.pc) with
        | Load (r, a) ->
          if not_blocked st t then
            push (Exec (t, th.pc)) (advance { th with regs = nth_set th.regs r (read_value st th a) })
        | Load_reg (r, base, idx) ->
          if not_blocked st t then begin
            let a = base + List.nth th.regs idx in
            push (Exec (t, th.pc)) (advance { th with regs = nth_set th.regs r (read_value st th a) })
          end
        | Store (a, op) ->
          let v = operand_value th op in
          if st.mode = SC then begin
            (* SC baseline: the store is globally visible at once. *)
            if not_blocked st t then
              push (Exec (t, th.pc)) (set_thread { st with mem = nth_set st.mem a v } t { th with pc = th.pc + 1 })
          end
          else push (Exec (t, th.pc)) (advance { th with buf = th.buf @ [ (a, v) ] })
        | Mfence -> if th.buf = [] then push (Exec (t, th.pc)) (advance th)
        | Lock ->
          if st.lock = None then
            push (Exec (t, th.pc)) { (advance th) with lock = Some t }
        | Unlock ->
          if st.lock = Some t && th.buf = [] then
            push (Exec (t, th.pc)) { (advance th) with lock = None }
        | Jump_if_eq (r, v, delta) ->
          if not_blocked st t then begin
            let target = if List.nth th.regs r = v then th.pc + delta else th.pc + 1 in
            push (Exec (t, th.pc)) (set_thread st t { th with pc = target })
          end
      end)
    st.threads;
  !acc

(* Final: every thread has retired all its instructions and drained its
   buffer, and the lock is free. *)
let final st =
  st.lock = None && List.for_all (fun th -> done_ th && th.buf = []) st.threads

let regs_of st = List.map (fun th -> th.regs) st.threads
let mem_of st = st.mem
