(** The classic litmus tests with their published x86-TSO classifications
    (Sewell et al., CACM 2010).  Experiment E9 runs all of them under both
    machines and checks every classification. *)

(** store buffering (Dekker): TSO's signature relaxation *)
val sb : Litmus.test

(** fences restore order *)
val sb_mfence : Litmus.test

(** so do LOCK'd instructions (the marking CAS) *)
val sb_xchg : Litmus.test

(** message passing: stale read forbidden *)
val mp : Litmus.test

(** load buffering: forbidden *)
val lb : Litmus.test

(** per-location read coherence *)
val corr : Litmus.test

(** TSO is multi-copy atomic *)
val iriw : Litmus.test

(** write-to-read causality *)
val wrc : Litmus.test

(** intra-thread forwarding: allowed TSO, forbidden SC *)
val n6 : Litmus.test

(** cross write-write reordering forbidden *)
val w2plus2 : Litmus.test

val all : Litmus.test list
val run_all : unit -> Litmus.verdict list

(** {1 PSO probes (extension, experiment E13)} *)

val pso_observes : Litmus.test -> bool
(** Is the test's target outcome reachable under the PSO machine? *)

val pso_expectations : (Litmus.test * bool) list
(** Expected PSO classifications: MP and 2+2W become observable, SB stays
    observable, CoRR (coherence) and fenced SB stay forbidden. *)

val run_pso : unit -> (string * bool * bool) list
(** (name, expected-observable, observed) per probe. *)
