(* Named variants of the collector: the paper's algorithm, the ablations
   that remove one load-bearing mechanism each (the checker must find a
   counterexample), and the Section 4 "Observations" (conjectured-safe
   optimisations the checker probes).

   [expectation] records what a sound checker should report, which is what
   the E1/E6/E10 experiment tables assert. *)

type expectation =
  | Safe  (* all safety invariants hold on every explored instance *)
  | Unsafe  (* some safety invariant must fail on small instances *)
  | Conjectured_safe  (* paper Section 4: expected safe, not proved there *)

type t = {
  name : string;
  description : string;
  expectation : expectation;
  tweak : Config.t -> Config.t;
}

let paper =
  {
    name = "paper";
    description = "the verified collector exactly as in Figs. 2, 5, 6";
    expectation = Safe;
    tweak = Fun.id;
  }

let no_deletion_barrier =
  {
    name = "no-deletion-barrier";
    description = "Fig. 1's scenario: without the snapshot barrier a mutator hides live objects";
    expectation = Unsafe;
    tweak = (fun c -> { c with Config.deletion_barrier = false });
  }

let no_insertion_barrier =
  {
    name = "no-insertion-barrier";
    description =
      "without the incremental-update barrier a store behind the wavefront escapes the snapshot";
    expectation = Unsafe;
    tweak = (fun c -> { c with Config.insertion_barrier = false });
  }

let no_barriers =
  {
    name = "no-barriers";
    description = "both write barriers removed: a plain non-concurrent mark-sweep run concurrently";
    expectation = Unsafe;
    tweak = (fun c -> { c with Config.deletion_barrier = false; insertion_barrier = false });
  }

let alloc_white =
  {
    name = "alloc-white";
    description = "ignore f_A: objects allocated during marking stay white and get swept";
    expectation = Unsafe;
    tweak = (fun c -> { c with Config.alloc_white = true });
  }

let no_fences =
  {
    name = "no-fences";
    description = "drop the four handshake MFENCEs of Section 2.4 (store buffers never forced out)";
    expectation = Unsafe;
    tweak = (fun c -> { c with Config.handshake_fences = false });
  }

let no_cas =
  {
    name = "no-cas";
    description =
      "mark without the LOCK'd CAS: safe for marks (idempotent) but grey ownership is no longer \
       exclusive, breaking valid_W_inv";
    expectation = Safe (* for the *safety* invariants; valid_W_inv is expected to fail *);
    tweak = (fun c -> { c with Config.cas_mark = false });
  }

let sc_memory =
  {
    name = "sc-memory";
    description = "sequentially consistent memory (every store commits at once): the SC baseline";
    expectation = Safe;
    tweak = (fun c -> { c with Config.sc_memory = true });
  }

let pso_memory =
  {
    name = "pso-memory";
    description =
      "extension: partial store order (per-location FIFO only) — does the collector survive \
       the first weakening toward ARM/POWER with its existing fences and CAS?";
    expectation = Conjectured_safe;  (* an open question; the checker reports *)
    tweak = (fun c -> { c with Config.pso_memory = true });
  }

(* Section 4, Observations. *)

let o1_skip_init_handshakes =
  {
    name = "o1-skip-init-handshakes";
    description =
      "Observation 1: remove the two middle initialization handshakes (nop2, nop3) on x86-TSO";
    expectation = Conjectured_safe;
    tweak = (fun c -> { c with Config.skip_init_handshakes = true });
  }

let o2_insertion_skip_after_roots =
  {
    name = "o2-ins-barrier-off-after-roots";
    description =
      "Observation 2: skip the insertion barrier once the mutator's roots are marked, at the \
       cost of an extra branch";
    expectation = Conjectured_safe;
    tweak = (fun c -> { c with Config.insertion_skip_after_roots = true });
  }

let ablations =
  [ no_deletion_barrier; no_insertion_barrier; no_barriers; alloc_white; no_fences ]

let observations = [ o1_skip_init_handshakes; o2_insertion_skip_after_roots ]

let all = (paper :: ablations) @ [ no_cas; sc_memory; pso_memory ] @ observations

let by_name n = List.find_opt (fun v -> v.name = n) all
