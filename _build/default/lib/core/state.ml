(* Local data states of the three process kinds (Section 3.1: "The local
   states of the software components abstractly represent the program
   counters, the registers, and the stacks that are thread-local"), plus
   the Sys state that encapsulates TSO, allocation, handshakes, work-lists
   and ghost state.

   CIMP's system semantics uses one data-state type for every process, so
   the three records are injected into the sum [t]. *)

open Types

(* Registers for one inlined expansion of the [mark] sequence (Fig. 5).
   Each software process has one set; mark expansions never nest. *)
type mark_regs = {
  mk_ref : rf option;  (* the reference being marked (None: skip) *)
  mk_fM : bool;  (* f_M as loaded at Fig. 5 line 2 *)
  mk_flag : bool;  (* the last-loaded mark flag *)
  mk_phase : phase;  (* phase as loaded at line 4 *)
  mk_winner : bool;  (* did we win the CAS? *)
}

let mark_regs0 =
  { mk_ref = None; mk_fM = false; mk_flag = false; mk_phase = Ph_idle; mk_winner = false }

type gc_data = {
  g_fM : bool;  (* the collector owns f_M and keeps its value locally *)
  g_src : rf option;  (* mark loop: the grey object being scanned *)
  g_fld : int;  (* mark loop: current field index *)
  g_sweep : rf list;  (* sweep: remaining snapshot of the heap domain *)
  g_ref : rf option;  (* sweep: current candidate *)
  g_flag : bool;  (* sweep: its loaded flag *)
  g_hs_m : int;  (* handshake: next mutator to signal *)
  g_any_pending : bool;  (* handshake: result of the last poll *)
  g_w_empty : bool;  (* mark loop: result of the last W-emptiness test *)
  g_cycles : int;  (* completed mark-sweep cycles (for bounded runs) *)
  g_mark : mark_regs;
}

let gc_data0 =
  {
    g_fM = false;
    g_src = None;
    g_fld = 0;
    g_sweep = [];
    g_ref = None;
    g_flag = false;
    g_hs_m = 0;
    g_any_pending = false;
    g_w_empty = true;
    g_cycles = 0;
    g_mark = mark_regs0;
  }

type mut_data = {
  m_roots : rf list;  (* sorted set: the mutator's roots (stack/registers) *)
  m_src : rf option;  (* chosen source object for Load/Store *)
  m_dst : rf option;  (* chosen reference to store *)
  m_fld : int;  (* chosen field *)
  m_loaded : rf option;  (* result of a Load / old value for the deletion barrier *)
  m_fA : bool;  (* f_A as loaded before an allocation *)
  m_hs_pending : bool;  (* own handshake bit as last read *)
  m_hs_type : hs;  (* handshake type as last read *)
  m_rooted : bool;  (* passed get-roots this cycle (drives O2's extra branch) *)
  m_todo : rf list;  (* roots still to mark during the get-roots handshake *)
  m_ops : int;  (* heap operations performed (for bounded runs) *)
  m_mark : mark_regs;
}

let mut_data0 roots =
  {
    m_roots = List.sort_uniq compare roots;
    m_src = None;
    m_dst = None;
    m_fld = 0;
    m_loaded = None;
    m_fA = false;
    m_hs_pending = false;
    m_hs_type = Hs_get_work;
    m_rooted = true;  (* pre-cycle: as if the previous cycle sampled them *)
    m_todo = [];
    m_ops = 0;
    m_mark = mark_regs0;
  }

(* TSO-visible shared memory. *)
type mem = { fA : bool; fM : bool; phase : phase; heap : Gcheap.Heap.t }

type sys_data = {
  s_mem : mem;
  s_bufs : write list list;  (* store buffer per software pid, oldest first *)
  s_lock : int option;  (* pid holding the TSO lock *)
  s_hs_type : hs;  (* type of the current/most recent handshake round *)
  s_hs_pending : bool list;  (* per mutator: bit set by GC, cleared by mutator *)
  s_hs_done : bool list;
    (* ghost, per mutator: completed the current round (cleared at hs-begin,
       set at the mutator's hs-done) — the executable form of the paper's
       per-mutator handshake counters *)
  s_hs_mut_hs : hs list;
    (* ghost, per mutator: type of the round it most recently completed;
       determines its handshake phase along the bottom of Fig. 3 *)
  s_W : rf list list;  (* work-list per software pid (0 = the collector's W) *)
  s_ghg : rf option list;  (* ghost_honorary_grey per software pid *)
  s_dangling : bool;  (* ghost: a memory access hit a freed cell *)
}

type t = L_gc of gc_data | L_mut of mut_data | L_sys of sys_data

(* Partial projections; misuse is a programming error in the model. *)
let gc = function L_gc d -> d | _ -> invalid_arg "State.gc"
let mut = function L_mut d -> d | _ -> invalid_arg "State.mut"
let sys = function L_sys d -> d | _ -> invalid_arg "State.sys"

let map_gc f = function L_gc d -> L_gc (f d) | _ -> invalid_arg "State.map_gc"
let map_mut f = function L_mut d -> L_mut (f d) | _ -> invalid_arg "State.map_mut"
let map_sys f = function L_sys d -> L_sys (f d) | _ -> invalid_arg "State.map_sys"

(* -- Memory operations (the do-write-action / read of Fig. 9) ------------ *)

let do_write mem = function
  | W_fA b -> ({ mem with fA = b }, true)
  | W_fM b -> ({ mem with fM = b }, true)
  | W_phase p -> ({ mem with phase = p }, true)
  | W_mark (r, b) ->
    if Gcheap.Heap.valid_ref mem.heap r then
      ({ mem with heap = Gcheap.Heap.set_mark mem.heap r b }, true)
    else (mem, false)  (* dangling commit: recorded by the caller *)
  | W_field (r, f, v) ->
    if Gcheap.Heap.valid_ref mem.heap r then
      ({ mem with heap = Gcheap.Heap.set_field mem.heap r f v }, true)
    else (mem, false)

(* Read a location from memory (no buffer forwarding; see [read] below).
   Reads of freed cells yield a default and are flagged as dangling. *)
let mem_read mem = function
  | L_fA -> (V_bool mem.fA, true)
  | L_fM -> (V_bool mem.fM, true)
  | L_phase -> (V_phase mem.phase, true)
  | L_mark r -> (
    match Gcheap.Heap.mark mem.heap r with
    | Some b -> (V_bool b, true)
    | None -> (V_bool false, false))
  | L_field (r, f) ->
    if Gcheap.Heap.valid_ref mem.heap r then (V_ref (Gcheap.Heap.field mem.heap r f), true)
    else (V_ref None, false)

(* The value a buffered write would install, for forwarding. *)
let value_of_write = function
  | W_fA b | W_fM b | W_mark (_, b) -> V_bool b
  | W_phase p -> V_phase p
  | W_field (_, _, v) -> V_ref v

(* TSO read with store-buffer forwarding: the most recent write to this
   location in the reader's own buffer wins, else shared memory. *)
let read sd p loc =
  let buf = List.nth sd.s_bufs p in
  let forwarded =
    List.fold_left (fun acc w -> if loc_of_write w = loc then Some w else acc) None buf
  in
  match forwarded with
  | Some w -> (value_of_write w, true)
  | None -> mem_read sd.s_mem loc

let buf_of sd p = List.nth sd.s_bufs p
let set_buf sd p b = { sd with s_bufs = List.mapi (fun i x -> if i = p then b else x) sd.s_bufs }

let wl_of sd p = List.nth sd.s_W p
let set_wl sd p w = { sd with s_W = List.mapi (fun i x -> if i = p then w else x) sd.s_W }

let ghg_of sd p = List.nth sd.s_ghg p
let set_ghg sd p g = { sd with s_ghg = List.mapi (fun i x -> if i = p then g else x) sd.s_ghg }

let hs_bit sd m = List.nth sd.s_hs_pending m
let set_hs_bit sd m b =
  { sd with s_hs_pending = List.mapi (fun i x -> if i = m then b else x) sd.s_hs_pending }

(* A software process is blocked while another holds the TSO lock. *)
let not_blocked sd p = match sd.s_lock with None -> true | Some q -> q = p

(* -- Ghost handshake-phase relation (Fig. 3, bottom row) ----------------- *)

(* The collector's handshake phase: determined by the round it initiated
   most recently. *)
let gc_hp sd = hp_of_hs sd.s_hs_type

let hs_done sd m = List.nth sd.s_hs_done m
let set_hs_done sd m b =
  { sd with s_hs_done = List.mapi (fun i x -> if i = m then b else x) sd.s_hs_done }

(* Mutator m's handshake phase: the round it most recently completed. *)
let mut_hp sd m = hp_of_hs (List.nth sd.s_hs_mut_hs m)

(* Has mutator m's root snapshot been taken this cycle (making it "black")? *)
let mut_black sd m =
  match List.nth sd.s_hs_mut_hs m with
  | Hs_get_roots | Hs_get_work -> true
  | Hs_nop1 | Hs_nop2 | Hs_nop3 | Hs_nop4 -> false
