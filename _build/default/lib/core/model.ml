(* Assembly of the full model:  GC || M1 || ... || Mn || Sys  (Section 3.1).

   The initial state places the collector at the top of its loop (about to
   run the idle-sync handshake of Fig. 2 lines 3-4), the mutators at their
   top-of-loop GC-safe points, and Sys with: the shape's heap (all objects
   marked with the current sense, i.e. black), f_A = f_M, phase = Idle,
   empty buffers and work-lists, no lock, and the ghost handshake state
   recording a just-completed termination round — exactly the paper's
   steady idle configuration ("the collector is idle to begin with ...
   at this point the entire heap is black"). *)

open Types

type sys = (msg, value, State.t) Cimp.System.t

type t = { cfg : Config.t; shape : Gcheap.Shapes.t; system : sys }

let programs cfg =
  let coms =
    [ Collector.process cfg ]
    @ List.init cfg.Config.n_muts (fun m -> Mutator.process cfg m)
    @ [ Sysproc.process cfg ]
  in
  coms

(* Labels must be unique within each process for control fingerprinting. *)
let validate_labels cfg =
  List.iteri
    (fun p com ->
      match Cimp.Com.duplicate_labels com with
      | [] -> ()
      | dups ->
        invalid_arg
          (Fmt.str "Model: duplicate labels in %s: %a" (Config.proc_name cfg p)
             Fmt.(list ~sep:comma string)
             dups))
    (programs cfg)

let initial_sys_data cfg (shape : Gcheap.Shapes.t) =
  let n_soft = Config.n_software cfg in
  {
    State.s_mem = { State.fA = false; fM = false; phase = Ph_idle; heap = shape.Gcheap.Shapes.heap };
    s_bufs = List.init n_soft (fun _ -> []);
    s_lock = None;
    s_hs_type = Hs_get_work;
    s_hs_pending = List.init cfg.Config.n_muts (fun _ -> false);
    s_hs_done = List.init cfg.Config.n_muts (fun _ -> true);
    s_hs_mut_hs = List.init cfg.Config.n_muts (fun _ -> Hs_get_work);
    s_W = List.init n_soft (fun _ -> []);
    s_ghg = List.init n_soft (fun _ -> None);
    s_dangling = false;
  }

let make cfg (shape : Gcheap.Shapes.t) : t =
  if Gcheap.Heap.n_refs shape.Gcheap.Shapes.heap <> cfg.Config.n_refs then
    invalid_arg "Model.make: shape/config n_refs mismatch";
  validate_labels cfg;
  let data p =
    if p = Config.pid_gc then State.L_gc State.gc_data0
    else if p = Config.pid_sys cfg then State.L_sys (initial_sys_data cfg shape)
    else State.L_mut (State.mut_data0 (Gcheap.Shapes.roots_for shape (p - 1)))
  in
  let coms = programs cfg in
  let procs = Array.of_list (List.mapi (fun p com -> Cimp.Com.make [ com ] (data p)) coms) in
  let names = Array.init (Config.n_procs cfg) (Config.proc_name cfg) in
  { cfg; shape; system = Cimp.System.make names procs }

(* -- Projections used by the invariants and the experiment drivers ------- *)

let sys_data (sys : sys) cfg = State.sys (Cimp.System.proc sys (Config.pid_sys cfg)).Cimp.Com.data
let gc_data (sys : sys) = State.gc (Cimp.System.proc sys Config.pid_gc).Cimp.Com.data
let mut_data (sys : sys) cfg m =
  State.mut (Cimp.System.proc sys (Config.pid_mut cfg m)).Cimp.Com.data

(* Is process p's control inside a label whose name starts with [prefix]? *)
let at_prefix (sys : sys) p prefix =
  List.exists
    (fun lbl -> String.length lbl >= String.length prefix && String.sub lbl 0 (String.length prefix) = prefix)
    (Cimp.Com.at_labels (Cimp.System.proc sys p))
