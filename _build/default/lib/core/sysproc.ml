(* The Sys process (Fig. 9, extended): it encapsulates the x86-TSO memory
   system, allocation, the handshake bits, the work-lists and the ghost
   state — "the variables that the run-time system designers consider to be
   global reside here" (Section 3.1).

   Sys is reactive: an everlasting external choice between answering one
   request and committing one buffered write (the only internal transition,
   Fig. 9's sys-dequeue-write-buffer).  A request that cannot currently be
   served (lock held, full buffer, non-empty buffer at a fence) simply has
   no response transitions, which blocks the requester until the state
   changes — CIMP rendezvous gives us Fig. 9's side conditions for free. *)

open Types
open State

type com = (msg, value, State.t) Cimp.Com.t

(* Apply a write for process p: buffered under TSO, immediate under the SC
   ablation.  [ghg] optionally sets p's ghost honorary grey in the same
   step (the Fig. 5 marking store). *)
let apply_write cfg sd p w ~ghg =
  let sd = match ghg with None -> sd | Some r -> set_ghg sd p (Some r) in
  if cfg.Config.sc_memory then begin
    let mem', ok = do_write sd.s_mem w in
    Some { sd with s_mem = mem'; s_dangling = sd.s_dangling || not ok }
  end
  else if List.length (buf_of sd p) < cfg.Config.buf_bound then
    Some (set_buf sd p (buf_of sd p @ [ w ]))
  else None (* buffer full: requester waits (bounded-buffer discipline) *)

let respond cfg ((p, req) : msg) (s : State.t) : (State.t * value) list =
  let sd = sys s in
  let ret sd' v = [ (L_sys sd', v) ] in
  let blocked = not (not_blocked sd p) in
  match req with
  | Req_read loc ->
    if blocked then []
    else begin
      let v, ok = read sd p loc in
      ret { sd with s_dangling = sd.s_dangling || not ok } v
    end
  | Req_write w -> (
    match apply_write cfg sd p w ~ghg:None with Some sd' -> ret sd' V_unit | None -> [])
  | Req_write_ghg (w, r) -> (
    match apply_write cfg sd p w ~ghg:(Some r) with Some sd' -> ret sd' V_unit | None -> [])
  | Req_mfence -> if buf_of sd p = [] then ret sd V_unit else []
  | Req_lock -> if sd.s_lock = None then ret { sd with s_lock = Some p } V_unit else []
  | Req_unlock ->
    if sd.s_lock = Some p && buf_of sd p = [] then ret { sd with s_lock = None } V_unit else []
  | Req_alloc mark ->
    (* The paper's coarsest abstraction: allocation atomically installs an
       initialised object at a non-deterministically chosen free reference.
       A full heap answers NULL rather than blocking the mutator forever. *)
    if blocked then []
    else begin
      match Gcheap.Heap.free_refs sd.s_mem.heap with
      | [] -> ret sd (V_ref None)
      | frs ->
        List.map
          (fun r ->
            let heap = Gcheap.Heap.alloc sd.s_mem.heap r ~mark in
            (L_sys { sd with s_mem = { sd.s_mem with heap } }, V_ref (Some r)))
          frs
    end
  | Req_free r ->
    (* Fig. 2 line 44: atomic removal from the heap domain. *)
    if blocked then []
    else begin
      let heap = Gcheap.Heap.free sd.s_mem.heap r in
      ret { sd with s_mem = { sd.s_mem with heap } } V_unit
    end
  | Req_hs_begin h ->
    ret { sd with s_hs_type = h; s_hs_done = List.map (fun _ -> false) sd.s_hs_done } V_unit
  | Req_hs_set m -> ret (set_hs_bit sd m true) V_unit
  | Req_hs_poll -> ret sd (V_bool (List.exists Fun.id sd.s_hs_pending))
  | Req_hs_read -> ret sd (V_hs (sd.s_hs_type, hs_bit sd (p - 1)))
  | Req_hs_done ->
    let m = p - 1 in
    let sd = set_hs_bit sd m false in
    let sd = set_hs_done sd m true in
    ret
      { sd with s_hs_mut_hs = List.mapi (fun i h -> if i = m then sd.s_hs_type else h) sd.s_hs_mut_hs }
      V_unit
  | Req_wl_add r ->
    (* Fig. 5 lines 12-14: the CAS winner greys the object on its own
       work-list and retires its ghost honorary grey. *)
    ret (set_ghg (set_wl sd p (Iset.add r (wl_of sd p))) p None) V_unit
  | Req_wl_transfer ->
    (* Fig. 2 lines 20/34: atomic W <- W u Wm; Wm <- empty. *)
    let sd' = set_wl (set_wl sd Config.pid_gc (Iset.union (wl_of sd Config.pid_gc) (wl_of sd p))) p [] in
    ret sd' V_unit
  | Req_wl_pick -> (
    (* Fig. 2 line 27: src <- r. r in W — a non-deterministic pick, without
       removal (the object stays grey until blackened at line 30). *)
    match wl_of sd Config.pid_gc with
    | [] -> ret sd (V_ref None)
    | refs -> List.map (fun r -> (L_sys sd, V_ref (Some r))) refs)
  | Req_wl_remove r -> ret (set_wl sd Config.pid_gc (Iset.remove r (wl_of sd Config.pid_gc))) V_unit
  | Req_wl_empty -> ret sd (V_bool (wl_of sd Config.pid_gc = []))
  | Req_heap_snapshot ->
    (* Fig. 2 line 38: refs <- heap. *)
    if blocked then [] else ret sd (V_refs (Gcheap.Heap.domain sd.s_mem.heap))

(* Fig. 9's only internal transition: commit a pending write of some
   unblocked software process — the oldest one under TSO; under the PSO
   extension, any write with no older write to the same location (coherence
   kept, cross-location order relaxed). *)
let dequeue cfg (s : State.t) : State.t list =
  let sd = sys s in
  let commits = ref [] in
  let commit p w rest =
    let mem', ok = do_write sd.s_mem w in
    commits :=
      L_sys (set_buf { sd with s_mem = mem'; s_dangling = sd.s_dangling || not ok } p rest)
      :: !commits
  in
  for p = 0 to Config.n_software cfg - 1 do
    if not_blocked sd p then begin
      let buf = buf_of sd p in
      if cfg.Config.pso_memory then
        List.iteri
          (fun i w ->
            let loc = loc_of_write w in
            let older_same =
              List.exists (fun w' -> loc_of_write w' = loc) (List.filteri (fun j _ -> j < i) buf)
            in
            if not older_same then commit p w (List.filteri (fun j _ -> j <> i) buf))
          buf
      else
        match buf with w :: rest -> commit p w rest | [] -> ()
    end
  done;
  !commits

let process cfg : com =
  Cimp.Com.Loop
    (Cimp.Com.Choose
       [
         Cimp.Com.Response ("sys:respond", respond cfg);
         Cimp.Com.Local_op ("sys:dequeue", dequeue cfg);
       ])
