(* Shared vocabulary of the collector model (Sections 2 and 3.1).

   All data here is canonical plain data (ints, bools, lists, variants) so
   that whole global states can be fingerprinted with polymorphic hashing by
   the checker. *)

type rf = Gcheap.Obj.rf
type fld = Gcheap.Obj.fld

(* Collector phases, as communicated through the [phase] control variable
   (Fig. 2; Fig. 3 collapses Mark and Sweep into "MarkSweep" for the
   mutators' view). *)
type phase = Ph_idle | Ph_init | Ph_mark | Ph_sweep

let pp_phase ppf p =
  Fmt.string ppf (match p with Ph_idle -> "Idle" | Ph_init -> "Init" | Ph_mark -> "Mark" | Ph_sweep -> "Sweep")

(* Handshake types.  Figure 2 has four no-op rounds (lines 3-4, 6-7, 9-10,
   13-14), the root-marking round (15-20) and the mark-loop-termination
   rounds (31-34).  We keep the four no-ops distinct because the
   handshake-phase relation of Fig. 3 is indexed by them. *)
type hs = Hs_nop1 | Hs_nop2 | Hs_nop3 | Hs_nop4 | Hs_get_roots | Hs_get_work

let pp_hs ppf h =
  Fmt.string ppf
    (match h with
    | Hs_nop1 -> "nop1"
    | Hs_nop2 -> "nop2"
    | Hs_nop3 -> "nop3"
    | Hs_nop4 -> "nop4"
    | Hs_get_roots -> "get-roots"
    | Hs_get_work -> "get-work")

(* The handshake phases along the bottom of Fig. 3.  A process is "in"
   hp X between completing the handshake that initiates X and completing
   the next one. *)
type hp = Hp_idle | Hp_idle_init | Hp_init_mark | Hp_idle_mark_sweep

let pp_hp ppf h =
  Fmt.string ppf
    (match h with
    | Hp_idle -> "hp_Idle"
    | Hp_idle_init -> "hp_IdleInit"
    | Hp_init_mark -> "hp_InitMark"
    | Hp_idle_mark_sweep -> "hp_IdleMarkSweep")

let hp_of_hs = function
  | Hs_nop1 -> Hp_idle
  | Hs_nop2 -> Hp_idle_init
  | Hs_nop3 -> Hp_init_mark
  | Hs_nop4 | Hs_get_roots | Hs_get_work -> Hp_idle_mark_sweep

(* The handshake preceding [h] in the cycle; get-work also precedes nop1
   (cycle wrap) and itself (repeated termination rounds).  Used to place a
   mutator that has not yet completed the current round. *)
let hs_pred = function
  | Hs_nop1 -> Hs_get_work
  | Hs_nop2 -> Hs_nop1
  | Hs_nop3 -> Hs_nop2
  | Hs_nop4 -> Hs_nop3
  | Hs_get_roots -> Hs_nop4
  | Hs_get_work -> Hs_get_roots (* or a previous get-work: same hp *)

(* TSO-visible memory locations: the three collector control variables plus
   per-object mark flags and reference fields (Section 3.1 makes all of
   these subject to TSO). *)
type loc = L_fA | L_fM | L_phase | L_mark of rf | L_field of rf * fld

let pp_loc ppf = function
  | L_fA -> Fmt.string ppf "fA"
  | L_fM -> Fmt.string ppf "fM"
  | L_phase -> Fmt.string ppf "phase"
  | L_mark r -> Fmt.pf ppf "mark(%d)" r
  | L_field (r, f) -> Fmt.pf ppf "%d.f%d" r f

(* Buffered write actions (the contents of TSO store buffers). *)
type write =
  | W_fA of bool
  | W_fM of bool
  | W_phase of phase
  | W_mark of rf * bool
  | W_field of rf * fld * rf option

let loc_of_write = function
  | W_fA _ -> L_fA
  | W_fM _ -> L_fM
  | W_phase _ -> L_phase
  | W_mark (r, _) -> L_mark r
  | W_field (r, f, _) -> L_field (r, f)

let pp_write ppf = function
  | W_fA b -> Fmt.pf ppf "fA:=%b" b
  | W_fM b -> Fmt.pf ppf "fM:=%b" b
  | W_phase p -> Fmt.pf ppf "phase:=%a" pp_phase p
  | W_mark (r, b) -> Fmt.pf ppf "mark(%d):=%b" r b
  | W_field (r, f, v) ->
    Fmt.pf ppf "%d.f%d:=%a" r f (Fmt.option ~none:(Fmt.any "null") Fmt.int) v

(* Values travelling back from Sys to a requester. *)
type value =
  | V_unit
  | V_bool of bool
  | V_phase of phase
  | V_ref of rf option
  | V_refs of rf list
  | V_hs of hs * bool  (* handshake type, pending? *)

(* Requests to the Sys process.  The requester's pid is part of the
   message, as in Fig. 9 where requests are pairs (p, ro-...). *)
type req =
  | Req_read of loc
  | Req_write of write
  | Req_mfence
  | Req_lock
  | Req_unlock
  | Req_alloc of bool  (* the mark to install, loaded from fA beforehand *)
  | Req_free of rf
  | Req_hs_begin of hs  (* collector: announce round type *)
  | Req_hs_set of int  (* collector: set mutator m's pending bit *)
  | Req_hs_poll  (* collector: V_bool(any bit still pending) *)
  | Req_hs_read  (* mutator: V_hs(type, own bit) *)
  | Req_hs_done  (* mutator: clear own bit *)
  | Req_wl_add of rf  (* add to caller's work-list; clears caller's ghg *)
  | Req_wl_transfer  (* mutator: W <- W u Wm, Wm <- empty *)
  | Req_wl_pick  (* collector: V_ref(some element of W), no removal *)
  | Req_wl_remove of rf  (* collector: W <- W minus {ref} (blacken) *)
  | Req_wl_empty  (* collector: V_bool(W = empty) *)
  | Req_write_ghg of write * rf
    (* the marking store of Fig. 5 line 8: buffer the mark write and set the
       caller's ghost_honorary_grey in one step, as the Isabelle model
       attaches the ghost assignment to the store *)
  | Req_heap_snapshot  (* collector sweep: V_refs(domain of heap) *)

type msg = int * req  (* requester pid, request *)

let pp_req ppf = function
  | Req_read l -> Fmt.pf ppf "read %a" pp_loc l
  | Req_write w -> Fmt.pf ppf "write %a" pp_write w
  | Req_mfence -> Fmt.string ppf "mfence"
  | Req_lock -> Fmt.string ppf "lock"
  | Req_unlock -> Fmt.string ppf "unlock"
  | Req_alloc m -> Fmt.pf ppf "alloc(mark=%b)" m
  | Req_free r -> Fmt.pf ppf "free %d" r
  | Req_hs_begin h -> Fmt.pf ppf "hs-begin %a" pp_hs h
  | Req_hs_set m -> Fmt.pf ppf "hs-set mut%d" m
  | Req_hs_poll -> Fmt.string ppf "hs-poll"
  | Req_hs_read -> Fmt.string ppf "hs-read"
  | Req_hs_done -> Fmt.string ppf "hs-done"
  | Req_wl_add r -> Fmt.pf ppf "wl-add %d" r
  | Req_wl_transfer -> Fmt.string ppf "wl-transfer"
  | Req_wl_pick -> Fmt.string ppf "wl-pick"
  | Req_wl_remove r -> Fmt.pf ppf "wl-remove %d" r
  | Req_wl_empty -> Fmt.string ppf "wl-empty"
  | Req_write_ghg (w, r) -> Fmt.pf ppf "write %a [ghg := %d]" pp_write w r
  | Req_heap_snapshot -> Fmt.string ppf "heap-snapshot"

(* -- Small sorted-set helpers over int lists ------------------------------ *)

module Iset = struct
  let add x s = if List.mem x s then s else List.sort compare (x :: s)
  let remove x s = List.filter (fun y -> y <> x) s
  let mem = List.mem
  let union a b = List.fold_left (fun s x -> add x s) a b
end
