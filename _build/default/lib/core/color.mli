(** The tricolor interpretation of Section 3.2, including its TSO-induced
    overlaps: an object is white if unmarked on the committed heap, grey if
    on some work-list or a ghost honorary grey, black if marked and not
    grey — and during a winning CAS an object can be white and grey at
    once. *)

val greys : Config.t -> State.sys_data -> Types.rf list
(** All grey references: every software process's work-list plus the ghost
    honorary greys. *)

val is_grey : Config.t -> State.sys_data -> Types.rf -> bool

val is_marked : State.sys_data -> Types.rf -> bool
(** Marked w.r.t. the committed memory's f_M sense. *)

val is_white : State.sys_data -> Types.rf -> bool
val is_black : Config.t -> State.sys_data -> Types.rf -> bool

val whites : State.sys_data -> Types.rf list
val marked : State.sys_data -> Types.rf list
val blacks : Config.t -> State.sys_data -> Types.rf list

val grey_protected_whites : Config.t -> State.sys_data -> Types.rf list
(** White objects reachable from some grey via a chain of zero or more
    white objects (Fig. 1's protection). *)

val is_grey_protected : Config.t -> State.sys_data -> Types.rf -> bool
