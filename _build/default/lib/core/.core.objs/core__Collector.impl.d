lib/core/collector.ml: Cimp Config Mark Option State Types
