lib/core/state.ml: Gcheap List Types
