lib/core/invariants.ml: Cimp Color Config Fun Gcheap List Model State String Types
