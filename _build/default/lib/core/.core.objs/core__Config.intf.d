lib/core/config.mli:
