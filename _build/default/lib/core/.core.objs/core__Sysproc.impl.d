lib/core/sysproc.ml: Cimp Config Fun Gcheap Iset List State Types
