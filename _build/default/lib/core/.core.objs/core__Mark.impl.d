lib/core/mark.ml: Cimp Config State Types
