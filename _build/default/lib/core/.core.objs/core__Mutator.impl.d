lib/core/mutator.ml: Cimp Config Iset List Mark Option State Types
