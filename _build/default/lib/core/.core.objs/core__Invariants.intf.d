lib/core/invariants.mli: Config Model State Types
