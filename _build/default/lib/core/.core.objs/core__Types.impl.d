lib/core/types.ml: Fmt Gcheap List
