lib/core/variants.mli: Config
