lib/core/color.mli: Config State Types
