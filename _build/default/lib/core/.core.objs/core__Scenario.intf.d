lib/core/scenario.mli: Check Config Gcheap Model State Types Variants
