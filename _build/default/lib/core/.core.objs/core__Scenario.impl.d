lib/core/scenario.ml: Check Config Fun Gcheap Invariants List Model Variants
