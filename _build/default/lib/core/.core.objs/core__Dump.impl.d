lib/core/dump.ml: Check Config Fmt Gcheap Model State Types
