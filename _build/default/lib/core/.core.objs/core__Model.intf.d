lib/core/model.mli: Cimp Config Gcheap State Types
