lib/core/variants.ml: Config Fun List
