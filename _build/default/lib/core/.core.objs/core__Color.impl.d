lib/core/color.ml: Config Fun Gcheap List State
