lib/core/model.ml: Array Cimp Collector Config Fmt Gcheap List Mutator State String Sysproc Types
