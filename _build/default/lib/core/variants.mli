(** Named variants of the collector: the paper's algorithm, ablations that
    each remove one load-bearing mechanism (the checker must find a
    counterexample), and the Section 4 Observations (conjectured-safe
    optimisations). *)

type expectation =
  | Safe  (** all safety invariants hold on every explored instance *)
  | Unsafe  (** some safety invariant must fail on small instances *)
  | Conjectured_safe  (** Section 4: expected safe, not proved in the paper *)

type t = {
  name : string;
  description : string;
  expectation : expectation;
  tweak : Config.t -> Config.t;
}

val paper : t
val no_deletion_barrier : t
val no_insertion_barrier : t
val no_barriers : t
val alloc_white : t
val no_fences : t
val no_cas : t
val sc_memory : t
val pso_memory : t
val o1_skip_init_handshakes : t
val o2_insertion_skip_after_roots : t

val ablations : t list
(** The five variants expected to break safety. *)

val observations : t list
(** The Section 4 conjectures. *)

val all : t list
val by_name : string -> t option
