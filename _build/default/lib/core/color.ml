(* The tricolor interpretation of Section 3.2 ("Collector Predicates and
   Invariants"), including its two TSO-induced subtleties:

   - an object is *white* if it is not marked on the (committed) heap,
     *grey* if it is on some work-list or is some process's
     ghost_honorary_grey, and *black* if it is marked and not grey;
   - the colours overlap: during a winning CAS an object can be white
     (mark still in the winner's store buffer) and grey (ghost honorary
     grey) at once, and without the ghost it would look black between the
     CAS and the work-list insertion.

   Marks are interpreted against the committed memory's f_M sense. *)

open State

(* All grey references: work-lists of every software process plus the ghost
   honorary greys. *)
let greys cfg sd =
  let n = Config.n_software cfg in
  let wl = List.concat (List.filteri (fun p _ -> p < n) sd.s_W) in
  let ghg = List.filter_map Fun.id sd.s_ghg in
  List.sort_uniq compare (wl @ ghg)

let is_grey cfg sd r = List.mem r (greys cfg sd)

(* Marked on the heap w.r.t. the committed sense of f_M. *)
let is_marked sd r = Gcheap.Heap.mark sd.s_mem.heap r = Some sd.s_mem.fM

let is_white sd r = Gcheap.Heap.mark sd.s_mem.heap r = Some (not sd.s_mem.fM)

let is_black cfg sd r = is_marked sd r && not (is_grey cfg sd r)

let whites sd = Gcheap.Heap.marked_with sd.s_mem.heap (not sd.s_mem.fM)
let marked sd = Gcheap.Heap.marked_with sd.s_mem.heap sd.s_mem.fM
let blacks cfg sd = List.filter (fun r -> not (is_grey cfg sd r)) (marked sd)

(* Grey-protected whites: white objects reachable from some grey via a
   chain of zero or more white objects (Fig. 1). *)
let grey_protected_whites cfg sd =
  let white r = is_white sd r in
  let protected_set =
    Gcheap.Reach.white_reachable_set sd.s_mem.heap ~white (greys cfg sd)
  in
  List.filter white protected_set

let is_grey_protected cfg sd r = is_white sd r && List.mem r (grey_protected_whites cfg sd)
