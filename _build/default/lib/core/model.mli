(** Assembly of the full model:  GC || M1 || ... || Mn || Sys
    (Section 3.1), plus the projections the invariants and experiment
    drivers use.

    The initial state is the paper's steady idle configuration: the
    collector at the top of its loop, the heap uniformly black, f_A = f_M,
    phase = Idle, buffers and work-lists empty, the handshake ghosts
    recording a just-completed termination round. *)

type sys = (Types.msg, Types.value, State.t) Cimp.System.t

type t = { cfg : Config.t; shape : Gcheap.Shapes.t; system : sys }

val make : Config.t -> Gcheap.Shapes.t -> t
(** @raise Invalid_argument if the shape's size disagrees with the
    configuration or a process program has duplicate labels. *)

val programs : Config.t -> (Types.msg, Types.value, State.t) Cimp.Com.t list
val validate_labels : Config.t -> unit
val initial_sys_data : Config.t -> Gcheap.Shapes.t -> State.sys_data

(** {1 Projections} *)

val sys_data : sys -> Config.t -> State.sys_data
val gc_data : sys -> State.gc_data
val mut_data : sys -> Config.t -> int -> State.mut_data

val at_prefix : sys -> int -> string -> bool
(** Is process [p]'s control inside a label starting with the prefix?
    Used for control-scoped invariants (e.g. the in-flight deletion
    barrier's register root). *)
