(* Human-readable dumps of global model states, used when printing
   counterexample traces and by the examples. *)

open Types
open State

let pp_buf ppf buf =
  Fmt.pf ppf "[%a]" (Fmt.list ~sep:Fmt.semi pp_write) buf

let pp_sys_data cfg ppf sd =
  Fmt.pf ppf "@[<v>mem: fA=%b fM=%b phase=%a@,heap:@,  @[<v>%a@]@," sd.s_mem.fA sd.s_mem.fM
    pp_phase sd.s_mem.phase Gcheap.Heap.pp sd.s_mem.heap;
  Fmt.pf ppf "lock=%a  hs=%a pending=[%a] done=[%a]@,"
    (Fmt.option ~none:(Fmt.any "-") Fmt.int)
    sd.s_lock pp_hs sd.s_hs_type
    (Fmt.list ~sep:Fmt.comma Fmt.bool)
    sd.s_hs_pending
    (Fmt.list ~sep:Fmt.comma Fmt.bool)
    sd.s_hs_done;
  for p = 0 to Config.n_software cfg - 1 do
    Fmt.pf ppf "%s: buf=%a W=[%a] ghg=%a@," (Config.proc_name cfg p) pp_buf (buf_of sd p)
      (Fmt.list ~sep:Fmt.comma Fmt.int)
      (wl_of sd p)
      (Fmt.option ~none:(Fmt.any "-") Fmt.int)
      (ghg_of sd p)
  done;
  Fmt.pf ppf "dangling=%b@]" sd.s_dangling

let pp_mut_data ppf (d : mut_data) =
  Fmt.pf ppf "roots=[%a] rooted=%b" (Fmt.list ~sep:Fmt.comma Fmt.int) d.m_roots d.m_rooted

let pp_gc_data ppf (d : gc_data) =
  Fmt.pf ppf "fM=%b src=%a sweep=[%a]" d.g_fM
    (Fmt.option ~none:(Fmt.any "-") Fmt.int)
    d.g_src
    (Fmt.list ~sep:Fmt.comma Fmt.int)
    d.g_sweep

(* Dump the full global state of a model system. *)
let pp_state cfg ppf sys =
  Fmt.pf ppf "@[<v>collector: %a@," pp_gc_data (Model.gc_data sys);
  for m = 0 to cfg.Config.n_muts - 1 do
    Fmt.pf ppf "mut%d: %a@," m pp_mut_data (Model.mut_data sys cfg m)
  done;
  Fmt.pf ppf "%a@]" (pp_sys_data cfg) (Model.sys_data sys cfg)

(* A trace with the final state expanded. *)
let pp_trace cfg ppf (tr : ('a, 'v, State.t) Check.Trace.t) =
  Fmt.pf ppf "@[<v>%a@,@,final state:@,%a@]" Check.Trace.pp tr (pp_state cfg)
    (Check.Trace.final tr)
