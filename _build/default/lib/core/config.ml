(* Model configuration: instance bounds and the ablation/variant switches.

   The [true, true, ...] defaults give the paper's collector; each switch
   either removes a mechanism the proof depends on (expected: the checker
   finds a safety violation) or enacts one of the paper's Section 4
   "Observations" (expected: still safe). *)

type t = {
  n_muts : int;
  n_refs : int;
  n_fields : int;
  buf_bound : int;  (* TSO store-buffer capacity (paper: unbounded) *)
  sc_memory : bool;  (* commit stores immediately: the SC baseline *)
  pso_memory : bool;
    (* extension: partial store order — buffers are per-location FIFO only,
       stores to different locations may commit out of order (first step
       toward the ARM/POWER models of Section 4) *)
  deletion_barrier : bool;  (* Fig. 6 line 8: the snapshot barrier *)
  insertion_barrier : bool;  (* Fig. 6 line 9: the incremental-update barrier *)
  insertion_skip_after_roots : bool;
    (* O2: mutators that passed get-roots skip the insertion barrier
       (extra branch in the store barrier) *)
  alloc_white : bool;  (* ablation: ignore fA, always allocate unmarked *)
  handshake_fences : bool;  (* ablation: drop all four handshake MFENCEs *)
  skip_init_handshakes : bool;
    (* O1: drop the two middle initialization rounds (nop2, nop3) *)
  cas_mark : bool;  (* ablation (false): mark without the LOCK'd CAS *)
  mut_load : bool;  (* mutator operation repertoire, for targeted runs *)
  mut_store : bool;
  mut_alloc : bool;
  mut_discard : bool;
  mut_mfence : bool;
  max_cycles : int;
    (* 0 = the paper's everlasting control loop; k > 0 bounds the run to k
       mark-sweep cycles so that exhaustive exploration can close *)
  max_mut_ops : int;
    (* 0 = unbounded mutators; k > 0 gives each mutator a budget of k
       heap operations (handshaking stays free), again for closure *)
}

let default =
  {
    n_muts = 1;
    n_refs = 3;
    n_fields = 1;
    buf_bound = 2;
    sc_memory = false;
    pso_memory = false;
    deletion_barrier = true;
    insertion_barrier = true;
    insertion_skip_after_roots = false;
    alloc_white = false;
    handshake_fences = true;
    skip_init_handshakes = false;
    cas_mark = true;
    mut_load = true;
    mut_store = true;
    mut_alloc = true;
    mut_discard = true;
    mut_mfence = true;
    max_cycles = 0;
    max_mut_ops = 0;
  }

(* Process identifiers within the CIMP system: the collector, then the
   mutators, then Sys.  Store buffers, work-lists and ghost-grey slots are
   indexed by the software pids 0..n_muts (collector and mutators). *)
let pid_gc = 0
let pid_mut _cfg m = 1 + m
let pid_sys cfg = 1 + cfg.n_muts
let n_procs cfg = cfg.n_muts + 2
let n_software cfg = cfg.n_muts + 1

let proc_name cfg p =
  if p = pid_gc then "gc"
  else if p = pid_sys cfg then "sys"
  else Printf.sprintf "mut%d" (p - 1)
