(** Model configuration: instance bounds and the ablation/variant switches.

    The defaults give the paper's collector; each switch either removes a
    mechanism the proof depends on (the checker then finds a safety
    violation) or enacts one of the paper's Section 4 Observations. *)

type t = {
  n_muts : int;
  n_refs : int;
  n_fields : int;
  buf_bound : int;  (** TSO store-buffer capacity (the paper leaves it unspecified) *)
  sc_memory : bool;  (** commit stores immediately: the SC baseline *)
  pso_memory : bool;
      (** extension: partial store order — per-location FIFO only (first
          step toward ARM/POWER, Section 4) *)
  deletion_barrier : bool;  (** Fig. 6: the snapshot barrier *)
  insertion_barrier : bool;  (** Fig. 6: the incremental-update barrier *)
  insertion_skip_after_roots : bool;
      (** O2: mutators past get-roots skip the insertion barrier *)
  alloc_white : bool;  (** ablation: ignore f_A, always allocate unmarked *)
  handshake_fences : bool;  (** ablation: drop the four handshake MFENCEs *)
  skip_init_handshakes : bool;  (** O1: drop the two middle init rounds *)
  cas_mark : bool;  (** ablation (false): mark without the LOCK'd CAS *)
  mut_load : bool;  (** mutator operation repertoire, for targeted runs *)
  mut_store : bool;
  mut_alloc : bool;
  mut_discard : bool;
  mut_mfence : bool;
  max_cycles : int;  (** 0 = everlasting; k bounds the run to k cycles *)
  max_mut_ops : int;  (** 0 = unbounded; k = per-mutator heap-op budget *)
}

val default : t

(** {1 Process identifiers within the CIMP system} *)

val pid_gc : int
val pid_mut : t -> int -> int
val pid_sys : t -> int
val n_procs : t -> int

val n_software : t -> int
(** Collector + mutators: the processes with store buffers, work-lists and
    ghost honorary greys. *)

val proc_name : t -> int -> string
