(* CIMP command syntax and the per-process small-step semantics of Fig. 7.

   CIMP extends IMP with process-algebra-style rendezvous, control and data
   non-determinism, and flat parallel composition (built in [System]).  We
   use the customary mix of a deep embedding of commands and a shallow
   embedding of expressions: guards and state updates are OCaml functions
   over the process's local data state ['s].

   Type parameters, following the paper's presentation:
   - ['a] is the type of rendezvous messages (the paper's alpha), computed by
     the sender's REQUEST as a function of its local state;
   - ['v] is the type of response values (the paper's beta), chosen
     non-deterministically by the receiver's RESPONSE;
   - ['s] is the local data state of a process.

   A process's local control state is a frame stack of commands (Fig. 7,
   second rule); [norm] keeps stacks in the canonical form where the head is
   never a [Seq], so that control states have a unique representation and
   can be fingerprinted by their label spine. *)

type ('a, 'v, 's) t =
  | Skip of Label.t
  | Local_op of Label.t * ('s -> 's list)
  | Request of Label.t * ('s -> 'a) * ('v -> 's -> 's)
  | Response of Label.t * ('a -> 's -> ('s * 'v) list)
  | Seq of ('a, 'v, 's) t * ('a, 'v, 's) t
  | If of Label.t * ('s -> bool) * ('a, 'v, 's) t * ('a, 'v, 's) t
  | While of Label.t * ('s -> bool) * ('a, 'v, 's) t
  | Loop of ('a, 'v, 's) t
  | Choose of ('a, 'v, 's) t list

(* Derived forms. *)

let skip l = Skip l
let seq cs = match cs with [] -> invalid_arg "Com.seq: empty" | c :: cs -> List.fold_left (fun a b -> Seq (a, b)) c cs
let assign l f = Local_op (l, fun s -> [ f s ])
let guard l p = Local_op (l, fun s -> if p s then [ s ] else [])
let if_ l p c = If (l, p, c, Skip (l ^ ":endif"))

(* The leftmost-leaf label of a command: the location of the next atomic
   action to execute if this command is at the head of the stack. *)
let rec head_label = function
  | Skip l | Local_op (l, _) | Request (l, _, _) | Response (l, _) | If (l, _, _, _) | While (l, _, _) -> l
  | Seq (a, _) -> head_label a
  | Loop c -> head_label c
  | Choose [] -> "<empty-choice>"
  | Choose (c :: _) -> head_label c

(* All labels occurring in a command, for the uniqueness check. *)
let labels com =
  let rec go acc = function
    | Skip l | Local_op (l, _) | Request (l, _, _) | Response (l, _) -> l :: acc
    | Seq (a, b) -> go (go acc a) b
    | If (l, _, a, b) -> go (go (l :: acc) a) b
    | While (l, _, c) -> go (l :: acc) c
    | Loop c -> go acc c
    | Choose cs -> List.fold_left go acc cs
  in
  go [] com

(* Check that no label occurs twice; returns the duplicates. *)
let duplicate_labels com =
  let tbl = Hashtbl.create 64 in
  let dups = ref [] in
  let record l =
    if Hashtbl.mem tbl l then dups := l :: !dups else Hashtbl.add tbl l ()
  in
  List.iter record (labels com);
  List.sort_uniq Label.compare !dups

(* -- Frame stacks and local configurations ------------------------------- *)

type ('a, 'v, 's) config = { stack : ('a, 'v, 's) t list; data : 's }

(* Canonical form: decompose Seq at the head of the stack.  Loop and Choose
   are left in place; their unfolding happens transparently in the offer
   functions below, so the stored representation stays canonical. *)
let rec norm = function
  | Seq (a, b) :: rest -> norm (a :: b :: rest)
  | stack -> stack

let make stack data = { stack = norm stack; data }

(* The spine of head labels of each stack frame.  With unique labels this
   identifies the control state; used by [Check.Fingerprint]. *)
let stack_labels stack = List.map head_label stack

(* Labels at which control may take its next atomic action.  A [Choose]
   offers all of its alternatives; other commands offer their head.  This is
   the executable counterpart of the paper's [at p l] predicate. *)
let at_labels { stack; _ } =
  let rec heads acc c =
    match c with
    | Seq (a, _) -> heads acc a
    | Loop body -> heads acc body
    | Choose cs -> List.fold_left heads acc cs
    | Skip l | Local_op (l, _) | Request (l, _, _) | Response (l, _) | If (l, _, _, _) | While (l, _, _) ->
      l :: acc
  in
  match stack with [] -> [] | c :: _ -> List.sort_uniq Label.compare (heads [] c)

let terminated { stack; _ } = stack = []

(* -- Offers: the three kinds of transitions a process can make ----------- *)

(* tau-successors: local computation and control-flow steps.  Guard
   evaluation (If/While) counts as one atomic step, as in the Isabelle
   semantics; Loop and Choose unfold without consuming a step, so that an
   external choice commits only when one alternative performs its first
   action (this is what lets Fig. 9's Sys process offer all its RESPONSE
   branches simultaneously). *)
let rec tau_steps { stack; data } =
  match stack with
  | [] -> []
  | Skip l :: rest -> [ (l, make rest data) ]
  | Local_op (l, f) :: rest -> List.map (fun d -> (l, make rest d)) (f data)
  | If (l, p, a, b) :: rest ->
    [ (l, make ((if p data then a else b) :: rest) data) ]
  | While (l, p, c) :: rest as whole ->
    if p data then [ (l, make (c :: whole) data) ] else [ (l, make rest data) ]
  | Loop c :: _ as whole -> tau_steps { stack = norm (c :: whole); data }
  | Choose cs :: rest ->
    List.concat_map (fun c -> tau_steps { stack = norm (c :: rest); data }) cs
  | Seq (a, b) :: rest -> tau_steps { stack = norm (a :: b :: rest); data }
  | (Request _ | Response _) :: _ -> []

(* A *definite* tau step: the process's entire enabled behaviour is exactly
   one deterministic local/control step.  Such steps touch only the
   process's own registers and control point, so no other process can
   observe whether they have happened; executing them eagerly yields the
   evaluation-context normal form the paper uses to generate verification
   conditions "in terms of atomic actions" (Section 3).  Heads under a
   Choose are never definite (stepping would commit the choice), and
   Local_ops with zero or several successors are genuine
   blocking/non-determinism. *)
let rec definite_tau { stack; data } =
  match stack with
  | Skip _ :: rest -> Some (make rest data)
  | If (_, p, a, b) :: rest -> Some (make ((if p data then a else b) :: rest) data)
  | While (_, p, c) :: rest as whole ->
    Some (if p data then make (c :: whole) data else make rest data)
  | Local_op (_, f) :: rest -> (
    match f data with [ d ] -> Some (make rest d) | _ -> None)
  | Loop c :: _ as whole -> definite_tau { stack = norm (c :: whole); data }
  | Seq (a, b) :: rest -> definite_tau { stack = norm (a :: b :: rest); data }
  | (Choose _ | Request _ | Response _) :: _ | [] -> None

(* Request offers: the message alpha (a function of the local state, per
   Fig. 7 third rule) together with the continuation applied to the
   responder's value beta. *)
let rec requests { stack; data } =
  match stack with
  | Request (l, act, apply) :: rest ->
    [ (l, act data, fun v -> make rest (apply v data)) ]
  | Loop c :: _ as whole -> requests { stack = norm (c :: whole); data }
  | Choose cs :: rest ->
    List.concat_map (fun c -> requests { stack = norm (c :: rest); data }) cs
  | Seq (a, b) :: rest -> requests { stack = norm (a :: b :: rest); data }
  | _ -> []

(* Response offers for a given request alpha: each yields the responder's
   successor configuration and the value beta sent back (Fig. 7, last
   rule). *)
let rec responses alpha { stack; data } =
  match stack with
  | Response (l, f) :: rest ->
    List.map (fun (d, v) -> (l, make rest d, v)) (f alpha data)
  | Loop c :: _ as whole -> responses alpha { stack = norm (c :: whole); data }
  | Choose cs :: rest ->
    List.concat_map (fun c -> responses alpha { stack = norm (c :: rest); data }) cs
  | Seq (a, b) :: rest -> responses alpha { stack = norm (a :: b :: rest); data }
  | _ -> []
