(** Structural pretty-printer for CIMP commands: renders the control
    skeleton and labels (expressions are shallowly embedded closures).
    Used to eyeball that a generated program matches the paper's
    pseudo-code ([gcmodel program]) and to read stack states. *)

val pp : ('a, 'v, 's) Com.t Fmt.t
val pp_stack : ('a, 'v, 's) Com.t list Fmt.t
val to_string : ('a, 'v, 's) Com.t -> string
