(* Structural pretty-printer for CIMP commands.

   Guards and state transformers are shallowly embedded (OCaml closures), so
   only the control skeleton and labels can be rendered; this is exactly what
   is needed to read counterexample traces and to eyeball that a generated
   program matches the paper's pseudo-code. *)

open Com

let rec pp ppf = function
  | Skip l -> Fmt.pf ppf "{%s} skip" l
  | Local_op (l, _) -> Fmt.pf ppf "{%s} localop" l
  | Request (l, _, _) -> Fmt.pf ppf "{%s} request" l
  | Response (l, _) -> Fmt.pf ppf "{%s} response" l
  | Seq (a, b) -> Fmt.pf ppf "@[<v>%a;;@,%a@]" pp a pp b
  | If (l, _, a, b) ->
    Fmt.pf ppf "@[<v2>{%s} if ... then@,%a@]@,@[<v2>else@,%a@]" l pp a pp b
  | While (l, _, c) -> Fmt.pf ppf "@[<v2>{%s} while ... do@,%a@]" l pp c
  | Loop c -> Fmt.pf ppf "@[<v2>loop@,%a@]" pp c
  | Choose cs ->
    Fmt.pf ppf "@[<v2>choose@,%a@]" (Fmt.list ~sep:(Fmt.any "@,[] ") pp) cs

let pp_stack ppf stack =
  Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any " . ") Label.pp) (Com.stack_labels stack)

let to_string c = Fmt.str "%a" pp c
