(** CIMP commands and the per-process small-step semantics of the paper's
    Fig. 7.

    CIMP extends IMP with process-algebra-style rendezvous, control and
    data non-determinism, and flat parallel composition (see {!System}).
    Commands are deeply embedded; expressions (guards, state updates,
    message constructors) are shallowly embedded as OCaml functions over
    the process's local data state ['s].

    Type parameters follow the paper: ['a] is the rendezvous message type
    (alpha), ['v] the response value type (beta), ['s] the local data
    state. *)

type ('a, 'v, 's) t =
  | Skip of Label.t  (** no-op; one tau step *)
  | Local_op of Label.t * ('s -> 's list)
      (** LOCALOP R: update the local state non-deterministically; an empty
          successor list blocks *)
  | Request of Label.t * ('s -> 'a) * ('v -> 's -> 's)
      (** REQUEST act val: offer the message [act s]; on rendezvous, apply
          the responder's value to the local state *)
  | Response of Label.t * ('a -> 's -> ('s * 'v) list)
      (** RESPONSE act: accept a message, non-deterministically choose a
          successor state and reply value; an empty list refuses *)
  | Seq of ('a, 'v, 's) t * ('a, 'v, 's) t  (** sequential composition *)
  | If of Label.t * ('s -> bool) * ('a, 'v, 's) t * ('a, 'v, 's) t
      (** guard evaluation takes one atomic step *)
  | While of Label.t * ('s -> bool) * ('a, 'v, 's) t
  | Loop of ('a, 'v, 's) t  (** everlasting repetition; unfolds transparently *)
  | Choose of ('a, 'v, 's) t list
      (** external choice: offers the union of its branches' first actions
          and commits only when one branch acts *)

(** {1 Derived forms} *)

val skip : Label.t -> ('a, 'v, 's) t

(** [seq cs] is the left-nested sequential composition of [cs].
    @raise Invalid_argument on the empty list. *)
val seq : ('a, 'v, 's) t list -> ('a, 'v, 's) t

(** [assign l f] deterministically updates the local state. *)
val assign : Label.t -> ('s -> 's) -> ('a, 'v, 's) t

(** [guard l p] blocks unless [p] holds. *)
val guard : Label.t -> ('s -> bool) -> ('a, 'v, 's) t

(** [if_ l p c] is [If (l, p, c, skip)]. *)
val if_ : Label.t -> ('s -> bool) -> ('a, 'v, 's) t -> ('a, 'v, 's) t

(** {1 Labels} *)

(** The leftmost-leaf label: the location of the next atomic action if
    this command runs next. *)
val head_label : ('a, 'v, 's) t -> Label.t

(** All labels occurring in a command. *)
val labels : ('a, 'v, 's) t -> Label.t list

(** Labels occurring more than once (they would confuse control
    fingerprinting; {!Core.Model} rejects such programs). *)
val duplicate_labels : ('a, 'v, 's) t -> Label.t list

(** {1 Local configurations (frame stacks)} *)

(** A process's local state: a frame stack of commands paired with its
    data state (Fig. 7, second rule). *)
type ('a, 'v, 's) config = { stack : ('a, 'v, 's) t list; data : 's }

(** [make stack data] builds a configuration in canonical form (no [Seq]
    at the head of the stack). *)
val make : ('a, 'v, 's) t list -> 's -> ('a, 'v, 's) config

val norm : ('a, 'v, 's) t list -> ('a, 'v, 's) t list

(** The spine of head labels of the stack frames; with unique labels this
    identifies the control state. *)
val stack_labels : ('a, 'v, 's) t list -> Label.t list

(** Labels at which control can take its next atomic action — the
    executable counterpart of the paper's [at p l] predicate.  A [Choose]
    contributes all of its branch heads. *)
val at_labels : ('a, 'v, 's) config -> Label.t list

val terminated : ('a, 'v, 's) config -> bool

(** {1 Transition offers} *)

(** All tau successors, each labelled with the location that fired. *)
val tau_steps : ('a, 'v, 's) config -> (Label.t * ('a, 'v, 's) config) list

(** All request offers: the firing label, the message, and the
    continuation awaiting the responder's value. *)
val requests : ('a, 'v, 's) config -> (Label.t * 'a * ('v -> ('a, 'v, 's) config)) list

(** All response offers for a given message: the firing label, the
    responder's successor, and the value sent back. *)
val responses : 'a -> ('a, 'v, 's) config -> (Label.t * ('a, 'v, 's) config * 'v) list

(** If the process's entire enabled behaviour is exactly one deterministic
    local/control step, its successor; such steps are unobservable by
    other processes and may be executed eagerly ({!System.normalize}). *)
val definite_tau : ('a, 'v, 's) config -> ('a, 'v, 's) config option
