(* Program-location labels.

   Every CIMP command carries a label, written [{l}] in the paper (Fig. 7).
   Labels serve two purposes: they anchor the [at p l] local assertions of
   Section 3.2, and they let the model checker fingerprint control state
   without inspecting the (closure-bearing) command syntax.  Labels must be
   unique within a program; [Cimp.Com.check_labels] enforces this. *)

type t = string

let compare = String.compare
let equal = String.equal
let pp = Fmt.string

(* A small generator for machine-made labels, used when expanding a template
   (e.g. the [mark] code sequence) several times within one program. *)
let fresh_counter = ref 0

let fresh prefix =
  incr fresh_counter;
  Printf.sprintf "%s#%d" prefix !fresh_counter
