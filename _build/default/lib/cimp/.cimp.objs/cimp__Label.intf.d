lib/cimp/label.mli: Fmt
