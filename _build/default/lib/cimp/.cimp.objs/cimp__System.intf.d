lib/cimp/system.mli: Com Fmt Label
