lib/cimp/pretty.mli: Com Fmt
