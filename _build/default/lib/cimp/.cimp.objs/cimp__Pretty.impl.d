lib/cimp/pretty.ml: Com Fmt Label
