lib/cimp/com.ml: Hashtbl Label List
