lib/cimp/com.mli: Label
