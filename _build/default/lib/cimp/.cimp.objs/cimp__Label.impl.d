lib/cimp/label.ml: Fmt Printf String
