lib/cimp/system.ml: Array Com Fmt Label List
