(** Program-location labels.

    Every CIMP command carries a label, written [{l}] in the paper (Fig. 7).
    Labels anchor the paper's [at p l] local assertions and let the model
    checker fingerprint control state; they must be unique within a
    process's program. *)

type t = string

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t

(** [fresh prefix] generates a label that is unique for the lifetime of the
    process (a global counter), for expanding code templates several times
    within one program. *)
val fresh : string -> t
