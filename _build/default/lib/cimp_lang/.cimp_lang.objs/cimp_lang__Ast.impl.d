lib/cimp_lang/ast.ml: Fmt List
