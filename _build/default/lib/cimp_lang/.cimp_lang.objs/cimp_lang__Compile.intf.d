lib/cimp_lang/compile.mli: Ast Cimp
