lib/cimp_lang/token.ml: Fmt
