lib/cimp_lang/parser.mli: Ast Lexer
