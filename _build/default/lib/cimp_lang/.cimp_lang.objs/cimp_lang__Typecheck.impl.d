lib/cimp_lang/typecheck.ml: Ast Fmt List
