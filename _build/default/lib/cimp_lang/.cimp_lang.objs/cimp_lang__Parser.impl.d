lib/cimp_lang/parser.ml: Ast Fmt Lexer List Token
