lib/cimp_lang/lexer.ml: List Printf String Token
