lib/cimp_lang/examples.mli:
