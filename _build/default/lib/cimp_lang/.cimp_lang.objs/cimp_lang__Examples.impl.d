lib/cimp_lang/examples.ml: List
