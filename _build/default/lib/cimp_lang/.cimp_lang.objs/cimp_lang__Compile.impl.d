lib/cimp_lang/compile.ml: Array Ast Cimp List Parser Printf Typecheck
