lib/cimp_lang/typecheck.mli: Ast Fmt
