(** Canned CIMP-language programs used by the Fig. 7/8 experiments, tests
    and documentation: (name, source, note) triples. *)

val ping_pong : string * string * string
val counter_race : string * string * string
val nondet_choice : string * string * string

val assert_fail : string * string * string
(** A failing assertion the checker must find. *)

val handshake_sketch : string * string * string
(** Three-party rendezvous mimicking the handshake anatomy of Fig. 4. *)

val all : (string * string * string) list
val by_name : string -> (string * string * string) option
