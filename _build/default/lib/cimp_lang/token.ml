(* Tokens of the CIMP concrete syntax.

   The paper presents CIMP as a language "plausible to both communities"
   (system designers and verifiers); this front-end gives it a concrete
   syntax so that small process systems — the paper's Fig. 7/8 examples,
   teaching material, litmus-style tests — can be written as text and
   compiled onto the core semantics. *)

type t =
  | INT of int
  | IDENT of string
  | KW_process
  | KW_var
  | KW_skip
  | KW_if
  | KW_else
  | KW_while
  | KW_loop
  | KW_choose
  | KW_or
  | KW_send
  | KW_recv
  | KW_reply
  | KW_havoc
  | KW_in
  | KW_true
  | KW_false
  | KW_assert
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | SEMI
  | ASSIGN  (* := *)
  | ARROW  (* -> *)
  | DOTDOT  (* .. *)
  | PLUS
  | MINUS
  | STAR
  | EQ  (* == *)
  | NEQ  (* != *)
  | LT
  | LE
  | GT
  | GE
  | ANDAND
  | OROR
  | BANG
  | EOF

let pp ppf = function
  | INT n -> Fmt.pf ppf "%d" n
  | IDENT s -> Fmt.pf ppf "%s" s
  | KW_process -> Fmt.string ppf "process"
  | KW_var -> Fmt.string ppf "var"
  | KW_skip -> Fmt.string ppf "skip"
  | KW_if -> Fmt.string ppf "if"
  | KW_else -> Fmt.string ppf "else"
  | KW_while -> Fmt.string ppf "while"
  | KW_loop -> Fmt.string ppf "loop"
  | KW_choose -> Fmt.string ppf "choose"
  | KW_or -> Fmt.string ppf "or"
  | KW_send -> Fmt.string ppf "send"
  | KW_recv -> Fmt.string ppf "recv"
  | KW_reply -> Fmt.string ppf "reply"
  | KW_havoc -> Fmt.string ppf "havoc"
  | KW_in -> Fmt.string ppf "in"
  | KW_true -> Fmt.string ppf "true"
  | KW_false -> Fmt.string ppf "false"
  | KW_assert -> Fmt.string ppf "assert"
  | LBRACE -> Fmt.string ppf "{"
  | RBRACE -> Fmt.string ppf "}"
  | LPAREN -> Fmt.string ppf "("
  | RPAREN -> Fmt.string ppf ")"
  | SEMI -> Fmt.string ppf ";"
  | ASSIGN -> Fmt.string ppf ":="
  | ARROW -> Fmt.string ppf "->"
  | DOTDOT -> Fmt.string ppf ".."
  | PLUS -> Fmt.string ppf "+"
  | MINUS -> Fmt.string ppf "-"
  | STAR -> Fmt.string ppf "*"
  | EQ -> Fmt.string ppf "=="
  | NEQ -> Fmt.string ppf "!="
  | LT -> Fmt.string ppf "<"
  | LE -> Fmt.string ppf "<="
  | GT -> Fmt.string ppf ">"
  | GE -> Fmt.string ppf ">="
  | ANDAND -> Fmt.string ppf "&&"
  | OROR -> Fmt.string ppf "||"
  | BANG -> Fmt.string ppf "!"
  | EOF -> Fmt.string ppf "<eof>"

let keyword_of_string = function
  | "process" -> Some KW_process
  | "var" -> Some KW_var
  | "skip" -> Some KW_skip
  | "if" -> Some KW_if
  | "else" -> Some KW_else
  | "while" -> Some KW_while
  | "loop" -> Some KW_loop
  | "choose" -> Some KW_choose
  | "or" -> Some KW_or
  | "send" -> Some KW_send
  | "recv" -> Some KW_recv
  | "reply" -> Some KW_reply
  | "havoc" -> Some KW_havoc
  | "in" -> Some KW_in
  | "true" -> Some KW_true
  | "false" -> Some KW_false
  | "assert" -> Some KW_assert
  | _ -> None
