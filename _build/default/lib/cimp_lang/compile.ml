(* Compilation of the CIMP concrete language onto the core CIMP semantics.

   The local data state of a compiled process is a flat variable
   environment; rendezvous messages are (channel, value) pairs; replies are
   values.  [assert] compiles to a conditional that raises a reserved flag
   in the local state, which the [assertions_hold] invariant observes —
   this is how checker-visible properties are written in the surface
   language. *)

type value = Ast.value
type env = (string * value) list

type msg = string * value  (* channel, payload *)

type com = (msg, value, env) Cimp.Com.t
type system = (msg, value, env) Cimp.System.t

let assert_flag = "_assert_failed"

exception Runtime of string

let lookup env x =
  match List.assoc_opt x env with
  | Some v -> v
  | None -> raise (Runtime (Printf.sprintf "unbound variable %s" x))

let as_int = function Ast.V_int n -> n | Ast.V_bool _ -> raise (Runtime "expected int")
let as_bool = function Ast.V_bool b -> b | Ast.V_int _ -> raise (Runtime "expected bool")

let set env x v =
  if List.mem_assoc x env then List.map (fun (y, w) -> if y = x then (y, v) else (y, w)) env
  else env @ [ (x, v) ]

let rec eval env : Ast.expr -> value = function
  | Ast.E_int n -> Ast.V_int n
  | Ast.E_bool b -> Ast.V_bool b
  | Ast.E_var x -> lookup env x
  | Ast.E_not e -> Ast.V_bool (not (as_bool (eval env e)))
  | Ast.E_binop (op, a, b) -> (
    let va = eval env a and vb = eval env b in
    match op with
    | Ast.Add -> Ast.V_int (as_int va + as_int vb)
    | Ast.Sub -> Ast.V_int (as_int va - as_int vb)
    | Ast.Mul -> Ast.V_int (as_int va * as_int vb)
    | Ast.Lt -> Ast.V_bool (as_int va < as_int vb)
    | Ast.Le -> Ast.V_bool (as_int va <= as_int vb)
    | Ast.Gt -> Ast.V_bool (as_int va > as_int vb)
    | Ast.Ge -> Ast.V_bool (as_int va >= as_int vb)
    | Ast.Eq -> Ast.V_bool (va = vb)
    | Ast.Neq -> Ast.V_bool (va <> vb)
    | Ast.And -> Ast.V_bool (as_bool va && as_bool vb)
    | Ast.Or -> Ast.V_bool (as_bool va || as_bool vb))

let eval_bool env e = as_bool (eval env e)

(* Compile one process.  Labels are [name:k] with k a statement counter, so
   they are unique within the process as the checker requires. *)
let compile_process (p : Ast.process) : com =
  let counter = ref 0 in
  let fresh what =
    incr counter;
    Printf.sprintf "%s:%d:%s" p.Ast.name !counter what
  in
  let rec stmt : Ast.stmt -> com = function
    | Ast.S_skip -> Cimp.Com.Skip (fresh "skip")
    | Ast.S_var (x, e) | Ast.S_assign (x, e) ->
      Cimp.Com.assign (fresh ("set-" ^ x)) (fun env -> set env x (eval env e))
    | Ast.S_if (e, t, f) ->
      Cimp.Com.If (fresh "if", (fun env -> eval_bool env e), block "then" t, block "else" f)
    | Ast.S_while (e, b) ->
      Cimp.Com.While (fresh "while", (fun env -> eval_bool env e), block "body" b)
    | Ast.S_loop b -> Cimp.Com.Loop (block "loop" b)
    | Ast.S_choose bs -> Cimp.Com.Choose (List.map (block "alt") bs)
    | Ast.S_send (ch, e, binder) ->
      Cimp.Com.Request
        ( fresh ("send-" ^ ch),
          (fun env -> (ch, eval env e)),
          fun reply env -> match binder with None -> env | Some x -> set env x reply )
    | Ast.S_recv (ch, x, reply_expr) ->
      Cimp.Com.Response
        ( fresh ("recv-" ^ ch),
          fun (ch', payload) env ->
            if ch' <> ch then []
            else begin
              let env' = set env x payload in
              [ (env', eval env' reply_expr) ]
            end )
    | Ast.S_havoc (x, lo, hi) ->
      Cimp.Com.Local_op
        ( fresh ("havoc-" ^ x),
          fun env ->
            let lo = as_int (eval env lo) and hi = as_int (eval env hi) in
            if hi < lo then []
            else List.init (hi - lo + 1) (fun i -> set env x (Ast.V_int (lo + i))) )
    | Ast.S_assert e ->
      Cimp.Com.If
        ( fresh "assert",
          (fun env -> eval_bool env e),
          Cimp.Com.Skip (fresh "assert-ok"),
          Cimp.Com.assign (fresh "assert-fail") (fun env -> set env assert_flag (Ast.V_bool true))
        )
  and block tag = function
    | [] -> Cimp.Com.Skip (fresh (tag ^ "-empty"))
    | stmts -> Cimp.Com.seq (List.map stmt stmts)
  in
  block "top" p.Ast.body

(* Initial environment: all variables declared anywhere in the process,
   initialised by evaluating declarations would be wrong (they may depend
   on runtime state); instead declarations execute as assignments and
   [set] extends the environment on first write.  The assert flag starts
   false so that environments are comparable. *)
let initial_env : env = [ (assert_flag, Ast.V_bool false) ]

(* Build a runnable system from a program. *)
let system (prog : Ast.program) : system =
  ignore (Typecheck.program prog);
  let names = Array.of_list (List.map (fun (p : Ast.process) -> p.Ast.name) prog) in
  let procs =
    Array.of_list
      (List.map (fun p -> Cimp.Com.make [ compile_process p ] initial_env) prog)
  in
  Cimp.System.make names procs

(* The invariant exported to the checker: no process has tripped an
   [assert]. *)
let assertions_hold (sys : system) =
  let ok p =
    match List.assoc_opt assert_flag (Cimp.System.proc sys p).Cimp.Com.data with
    | Some (Ast.V_bool true) -> false
    | _ -> true
  in
  let rec go p = p >= Cimp.System.n_procs sys || (ok p && go (p + 1)) in
  go 0

(* Convenience: parse, typecheck, compile. *)
let of_source src = system (Parser.program src)
