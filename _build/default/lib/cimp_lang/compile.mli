(** Compilation of the CIMP concrete language onto the core CIMP
    semantics: local states are variable environments, rendezvous messages
    are (channel, value) pairs.  [assert] raises a reserved flag that
    {!assertions_hold} observes — checker-visible properties are written in
    the surface language. *)

type value = Ast.value
type env = (string * value) list
type msg = string * value

type com = (msg, value, env) Cimp.Com.t
type system = (msg, value, env) Cimp.System.t

exception Runtime of string

val eval : env -> Ast.expr -> value
(** @raise Runtime on unbound variables or type confusion (the typechecker
    prevents both for checked programs). *)

val compile_process : Ast.process -> com
(** Labels are [name:k:kind], unique within the process. *)

val initial_env : env

val system : Ast.program -> system
(** Typecheck and compile a whole program. *)

val assertions_hold : system -> bool
(** The invariant exported to the checker: no process tripped an assert. *)

val of_source : string -> system
(** Parse, typecheck, compile. *)

val assert_flag : string
