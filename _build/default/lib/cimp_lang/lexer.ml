(* Hand-rolled lexer for the CIMP concrete syntax.  Produces tokens with
   line/column positions for error reporting.  Comments run from '#' (or
   '//') to end of line. *)

type pos = { line : int; col : int }

type located = { token : Token.t; pos : pos }

exception Error of string * pos

let error msg pos = raise (Error (msg, pos))

type cursor = { src : string; mutable off : int; mutable line : int; mutable bol : int }

let make src = { src; off = 0; line = 1; bol = 0 }

let pos_of c = { line = c.line; col = c.off - c.bol + 1 }

let peek c = if c.off < String.length c.src then Some c.src.[c.off] else None

let peek2 c = if c.off + 1 < String.length c.src then Some c.src.[c.off + 1] else None

let advance c =
  (match peek c with
  | Some '\n' ->
    c.line <- c.line + 1;
    c.bol <- c.off + 1
  | _ -> ());
  c.off <- c.off + 1

let is_digit ch = ch >= '0' && ch <= '9'
let is_ident_start ch = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || ch = '_'
let is_ident ch = is_ident_start ch || is_digit ch

let rec skip_trivia c =
  match peek c with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance c;
    skip_trivia c
  | Some '#' ->
    skip_line c;
    skip_trivia c
  | Some '/' when peek2 c = Some '/' ->
    skip_line c;
    skip_trivia c
  | _ -> ()

and skip_line c =
  match peek c with
  | Some '\n' | None -> ()
  | Some _ ->
    advance c;
    skip_line c

let lex_number c =
  let start = c.off in
  while (match peek c with Some ch -> is_digit ch | None -> false) do
    advance c
  done;
  Token.INT (int_of_string (String.sub c.src start (c.off - start)))

let lex_word c =
  let start = c.off in
  while (match peek c with Some ch -> is_ident ch | None -> false) do
    advance c
  done;
  let word = String.sub c.src start (c.off - start) in
  match Token.keyword_of_string word with Some kw -> kw | None -> Token.IDENT word

let next c : located =
  skip_trivia c;
  let pos = pos_of c in
  let simple tok = advance c; tok in
  let two tok = advance c; advance c; tok in
  let token =
    match peek c with
    | None -> Token.EOF
    | Some ch when is_digit ch -> lex_number c
    | Some ch when is_ident_start ch -> lex_word c
    | Some '{' -> simple Token.LBRACE
    | Some '}' -> simple Token.RBRACE
    | Some '(' -> simple Token.LPAREN
    | Some ')' -> simple Token.RPAREN
    | Some ';' -> simple Token.SEMI
    | Some '+' -> simple Token.PLUS
    | Some '*' -> simple Token.STAR
    | Some ':' when peek2 c = Some '=' -> two Token.ASSIGN
    | Some '-' when peek2 c = Some '>' -> two Token.ARROW
    | Some '-' -> simple Token.MINUS
    | Some '.' when peek2 c = Some '.' -> two Token.DOTDOT
    | Some '=' when peek2 c = Some '=' -> two Token.EQ
    | Some '!' when peek2 c = Some '=' -> two Token.NEQ
    | Some '!' -> simple Token.BANG
    | Some '<' when peek2 c = Some '=' -> two Token.LE
    | Some '<' -> simple Token.LT
    | Some '>' when peek2 c = Some '=' -> two Token.GE
    | Some '>' -> simple Token.GT
    | Some '&' when peek2 c = Some '&' -> two Token.ANDAND
    | Some '|' when peek2 c = Some '|' -> two Token.OROR
    | Some ch -> error (Printf.sprintf "unexpected character %C" ch) pos
  in
  { token; pos }

(* Tokenize a whole source string. *)
let tokenize src =
  let c = make src in
  let rec go acc =
    let t = next c in
    if t.token = Token.EOF then List.rev (t :: acc) else go (t :: acc)
  in
  go []
