(** Recursive-descent parser for the CIMP concrete syntax.  See the
    implementation header for the grammar. *)

exception Error of string * Lexer.pos

val program : string -> Ast.program
(** Parse a full program from source text.
    @raise Error with a message and position on malformed input. *)

val expression : string -> Ast.expr
(** Parse a single expression (tests, tooling). *)
