(* Abstract syntax of the CIMP concrete language.

   Values are ints and bools; channels are named.  [Send] is CIMP's REQUEST
   (the message is a channel name paired with a value computed from local
   state; the optional binder receives the reply), [Recv] is RESPONSE (the
   binder receives the request payload, the reply expression is evaluated
   in the updated local state).  [Havoc] is data non-determinism; [Choose]
   is control non-determinism (external choice, committed at the first
   action of a branch). *)

type value = V_int of int | V_bool of bool

let pp_value ppf = function V_int n -> Fmt.int ppf n | V_bool b -> Fmt.bool ppf b

type binop = Add | Sub | Mul | Eq | Neq | Lt | Le | Gt | Ge | And | Or

type expr =
  | E_int of int
  | E_bool of bool
  | E_var of string
  | E_binop of binop * expr * expr
  | E_not of expr

type stmt =
  | S_skip
  | S_var of string * expr  (* declaration with initializer *)
  | S_assign of string * expr
  | S_if of expr * block * block
  | S_while of expr * block
  | S_loop of block
  | S_choose of block list
  | S_send of string * expr * string option  (* channel, payload, reply binder *)
  | S_recv of string * string * expr  (* channel, request binder, reply expr *)
  | S_havoc of string * expr * expr  (* var, inclusive range *)
  | S_assert of expr

and block = stmt list

type process = { name : string; body : block }

type program = process list

let pp_binop ppf op =
  Fmt.string ppf
    (match op with
    | Add -> "+"
    | Sub -> "-"
    | Mul -> "*"
    | Eq -> "=="
    | Neq -> "!="
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">="
    | And -> "&&"
    | Or -> "||")

let rec pp_expr ppf = function
  | E_int n -> Fmt.int ppf n
  | E_bool b -> Fmt.bool ppf b
  | E_var x -> Fmt.string ppf x
  | E_binop (op, a, b) -> Fmt.pf ppf "(%a %a %a)" pp_expr a pp_binop op pp_expr b
  | E_not e -> Fmt.pf ppf "!%a" pp_expr e

let rec pp_stmt ppf = function
  | S_skip -> Fmt.string ppf "skip;"
  | S_var (x, e) -> Fmt.pf ppf "var %s := %a;" x pp_expr e
  | S_assign (x, e) -> Fmt.pf ppf "%s := %a;" x pp_expr e
  | S_if (e, t, []) -> Fmt.pf ppf "@[<v2>if %a {@,%a@]@,}" pp_expr e pp_block t
  | S_if (e, t, f) ->
    Fmt.pf ppf "@[<v2>if %a {@,%a@]@,@[<v2>} else {@,%a@]@,}" pp_expr e pp_block t pp_block f
  | S_while (e, b) -> Fmt.pf ppf "@[<v2>while %a {@,%a@]@,}" pp_expr e pp_block b
  | S_loop b -> Fmt.pf ppf "@[<v2>loop {@,%a@]@,}" pp_block b
  | S_choose [] -> Fmt.string ppf "choose { }"
  | S_choose (b :: bs) ->
    Fmt.pf ppf "@[<v2>choose {@,%a@]@,}" pp_block b;
    List.iter (fun b -> Fmt.pf ppf " @[<v2>or {@,%a@]@,}" pp_block b) bs
  | S_send (ch, e, None) -> Fmt.pf ppf "send %s(%a);" ch pp_expr e
  | S_send (ch, e, Some x) -> Fmt.pf ppf "send %s(%a) -> %s;" ch pp_expr e x
  | S_recv (ch, x, reply) -> Fmt.pf ppf "recv %s(%s) reply %a;" ch x pp_expr reply
  | S_havoc (x, lo, hi) -> Fmt.pf ppf "havoc %s in %a .. %a;" x pp_expr lo pp_expr hi
  | S_assert e -> Fmt.pf ppf "assert %a;" pp_expr e

and pp_block ppf b = Fmt.(list ~sep:cut pp_stmt) ppf b

let pp_process ppf p = Fmt.pf ppf "@[<v2>process %s {@,%a@]@,}" p.name pp_block p.body

let pp_program ppf prog = Fmt.(list ~sep:(any "@,@,") pp_process) ppf prog
