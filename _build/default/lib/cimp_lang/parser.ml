(* Recursive-descent parser for the CIMP concrete syntax.

   Grammar (EBNF):

     program  ::= process*
     process  ::= "process" IDENT block
     block    ::= "{" stmt* "}"
     stmt     ::= "skip" ";"
                | "var" IDENT ":=" expr ";"
                | IDENT ":=" expr ";"
                | "if" expr block ("else" block)?
                | "while" expr block
                | "loop" block
                | "choose" block ("or" block)+
                | "send" IDENT "(" expr ")" ("->" IDENT)? ";"
                | "recv" IDENT "(" IDENT ")" "reply" expr ";"
                | "havoc" IDENT "in" expr ".." expr ";"
                | "assert" expr ";"
     expr     ::= orexp
     orexp    ::= andexp ("||" andexp)*
     andexp   ::= cmpexp ("&&" cmpexp)*
     cmpexp   ::= addexp (("=="|"!="|"<"|"<="|">"|">=") addexp)?
     addexp   ::= mulexp (("+"|"-") mulexp)*
     mulexp   ::= unary ("*" unary)*
     unary    ::= "!" unary | "-" unary | atom
     atom     ::= INT | "true" | "false" | IDENT | "(" expr ")"
*)

exception Error of string * Lexer.pos

type t = { mutable toks : Lexer.located list }

let error p msg =
  let pos =
    match p.toks with { Lexer.pos; _ } :: _ -> pos | [] -> { Lexer.line = 0; col = 0 }
  in
  raise (Error (msg, pos))

let peek p = match p.toks with { Lexer.token; _ } :: _ -> token | [] -> Token.EOF

let advance p = match p.toks with _ :: rest -> p.toks <- rest | [] -> ()

let expect p tok =
  if peek p = tok then advance p
  else error p (Fmt.str "expected '%a', found '%a'" Token.pp tok Token.pp (peek p))

let expect_ident p =
  match peek p with
  | Token.IDENT x ->
    advance p;
    x
  | t -> error p (Fmt.str "expected identifier, found '%a'" Token.pp t)

(* -- Expressions ---------------------------------------------------------- *)

let rec parse_expr p = parse_or p

and parse_or p =
  let lhs = parse_and p in
  if peek p = Token.OROR then begin
    advance p;
    Ast.E_binop (Ast.Or, lhs, parse_or p)
  end
  else lhs

and parse_and p =
  let lhs = parse_cmp p in
  if peek p = Token.ANDAND then begin
    advance p;
    Ast.E_binop (Ast.And, lhs, parse_and p)
  end
  else lhs

and parse_cmp p =
  let lhs = parse_add p in
  let op =
    match peek p with
    | Token.EQ -> Some Ast.Eq
    | Token.NEQ -> Some Ast.Neq
    | Token.LT -> Some Ast.Lt
    | Token.LE -> Some Ast.Le
    | Token.GT -> Some Ast.Gt
    | Token.GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance p;
    Ast.E_binop (op, lhs, parse_add p)

and parse_add p =
  let rec go lhs =
    match peek p with
    | Token.PLUS ->
      advance p;
      go (Ast.E_binop (Ast.Add, lhs, parse_mul p))
    | Token.MINUS ->
      advance p;
      go (Ast.E_binop (Ast.Sub, lhs, parse_mul p))
    | _ -> lhs
  in
  go (parse_mul p)

and parse_mul p =
  let rec go lhs =
    if peek p = Token.STAR then begin
      advance p;
      go (Ast.E_binop (Ast.Mul, lhs, parse_unary p))
    end
    else lhs
  in
  go (parse_unary p)

and parse_unary p =
  match peek p with
  | Token.BANG ->
    advance p;
    Ast.E_not (parse_unary p)
  | Token.MINUS ->
    advance p;
    Ast.E_binop (Ast.Sub, Ast.E_int 0, parse_unary p)
  | _ -> parse_atom p

and parse_atom p =
  match peek p with
  | Token.INT n ->
    advance p;
    Ast.E_int n
  | Token.KW_true ->
    advance p;
    Ast.E_bool true
  | Token.KW_false ->
    advance p;
    Ast.E_bool false
  | Token.IDENT x ->
    advance p;
    Ast.E_var x
  | Token.LPAREN ->
    advance p;
    let e = parse_expr p in
    expect p Token.RPAREN;
    e
  | t -> error p (Fmt.str "expected expression, found '%a'" Token.pp t)

(* -- Statements ----------------------------------------------------------- *)

let rec parse_block p =
  expect p Token.LBRACE;
  let rec go acc =
    if peek p = Token.RBRACE then begin
      advance p;
      List.rev acc
    end
    else go (parse_stmt p :: acc)
  in
  go []

and parse_stmt p =
  match peek p with
  | Token.KW_skip ->
    advance p;
    expect p Token.SEMI;
    Ast.S_skip
  | Token.KW_var ->
    advance p;
    let x = expect_ident p in
    expect p Token.ASSIGN;
    let e = parse_expr p in
    expect p Token.SEMI;
    Ast.S_var (x, e)
  | Token.KW_if ->
    advance p;
    let e = parse_expr p in
    let t = parse_block p in
    let f = if peek p = Token.KW_else then (advance p; parse_block p) else [] in
    Ast.S_if (e, t, f)
  | Token.KW_while ->
    advance p;
    let e = parse_expr p in
    Ast.S_while (e, parse_block p)
  | Token.KW_loop ->
    advance p;
    Ast.S_loop (parse_block p)
  | Token.KW_choose ->
    advance p;
    let first = parse_block p in
    let rec alts acc =
      if peek p = Token.KW_or then begin
        advance p;
        alts (parse_block p :: acc)
      end
      else List.rev acc
    in
    Ast.S_choose (first :: alts [])
  | Token.KW_send ->
    advance p;
    let ch = expect_ident p in
    expect p Token.LPAREN;
    let e = parse_expr p in
    expect p Token.RPAREN;
    let binder =
      if peek p = Token.ARROW then begin
        advance p;
        Some (expect_ident p)
      end
      else None
    in
    expect p Token.SEMI;
    Ast.S_send (ch, e, binder)
  | Token.KW_recv ->
    advance p;
    let ch = expect_ident p in
    expect p Token.LPAREN;
    let x = expect_ident p in
    expect p Token.RPAREN;
    expect p Token.KW_reply;
    let e = parse_expr p in
    expect p Token.SEMI;
    Ast.S_recv (ch, x, e)
  | Token.KW_havoc ->
    advance p;
    let x = expect_ident p in
    expect p Token.KW_in;
    let lo = parse_expr p in
    expect p Token.DOTDOT;
    let hi = parse_expr p in
    expect p Token.SEMI;
    Ast.S_havoc (x, lo, hi)
  | Token.KW_assert ->
    advance p;
    let e = parse_expr p in
    expect p Token.SEMI;
    Ast.S_assert e
  | Token.IDENT x ->
    advance p;
    expect p Token.ASSIGN;
    let e = parse_expr p in
    expect p Token.SEMI;
    Ast.S_assign (x, e)
  | t -> error p (Fmt.str "expected statement, found '%a'" Token.pp t)

let parse_process p =
  expect p Token.KW_process;
  let name = expect_ident p in
  let body = parse_block p in
  { Ast.name; body }

let parse_program p =
  let rec go acc =
    if peek p = Token.EOF then List.rev acc else go (parse_process p :: acc)
  in
  go []

(* Entry point: parse a full program from source text. *)
let program src =
  let p = { toks = Lexer.tokenize src } in
  let prog = parse_program p in
  prog

(* Parse a single expression (used by tests and the REPL-ish tooling). *)
let expression src =
  let p = { toks = Lexer.tokenize src } in
  let e = parse_expr p in
  expect p Token.EOF;
  e
