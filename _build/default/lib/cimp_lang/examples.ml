(* Canned CIMP-language programs used by the Fig. 7/8 experiments, the
   tests, and the documentation.  Each is a (name, source, note) triple. *)

let ping_pong =
  ( "ping-pong",
    {|
process ping {
  var n := 0;
  while n < 3 {
    send ping(n) -> n;
  }
  assert n >= 3;
}

process pong {
  var seen := 0;
  loop {
    recv ping(x) reply x + 1;
    seen := seen + 1;
  }
}
|},
    "a request/response pair exercising the rendezvous rule of Fig. 8" )

let counter_race =
  ( "counter-race",
    {|
process alice {
  send read(0) -> a;
  send write(a + 1) -> a;
}

process bob {
  send read(0) -> b;
  send write(b + 1) -> b;
}

process cell {
  var v := 0;
  loop {
    choose {
      recv read(x) reply v;
    } or {
      recv write(w) reply w;
      v := w;
    }
  }
}
|},
    "the classic lost-update race: interleaving both reads before both writes loses one increment"
  )

let nondet_choice =
  ( "nondet-choice",
    {|
process chooser {
  var x := 0;
  havoc x in 1 .. 3;
  choose {
    assert x >= 1;
  } or {
    assert x <= 3;
  }
}
|},
    "data non-determinism (havoc) combined with external choice" )

let assert_fail =
  ( "assert-fail",
    {|
process doomed {
  var x := 0;
  havoc x in 0 .. 2;
  assert x != 2;
}
|},
    "a failing assertion the checker must find (x = 2 is reachable)" )

let handshake_sketch =
  ( "handshake-sketch",
    {|
# A miniature of the collector's soft handshake (Fig. 4): the gc raises a
# bit at the system, the mutator polls for it and acknowledges; the gc
# waits for the acknowledgement.
process gc {
  send raise(1) -> ack;
  var seen := 0;
  while seen == 0 {
    send poll(0) -> seen;
  }
  assert seen == 1;
}

process mut {
  var pending := 0;
  while pending == 0 {
    send check(0) -> pending;
  }
  send ack(1) -> pending;
}

process sys {
  var bit := 0;
  var done := 0;
  loop {
    choose {
      recv raise(x) reply x;
      bit := 1;
    } or {
      recv check(x) reply bit;
    } or {
      recv ack(x) reply x;
      done := 1;
    } or {
      recv poll(x) reply done;
    }
  }
}
|},
    "three-party rendezvous mimicking the handshake anatomy of Fig. 4" )

let all = [ ping_pong; counter_race; nondet_choice; assert_fail; handshake_sketch ]

let by_name n = List.find_opt (fun (name, _, _) -> name = n) all
